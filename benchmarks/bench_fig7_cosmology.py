"""Bench F7 — regenerate Figure 7 / Section 4.3: the cosmology run.

Two halves:

1. **Real run, scaled down** — a 125 Mpc/h LCDM box (the figure's
   size) evolved from a = 0.1 to z = 0.3 with the PM comoving
   integrator; halos are found with FoF and clustering measured with
   the two-point correlation function — the data products behind the
   figure's density image.
2. **Run model at paper scale** — the 134-million-particle, 700-step,
   250-processor production run: 10^16 flops in ~24 hours (112
   Gflop/s), 1.5 TB written, 417 MB/s average and ~7 GB/s peak I/O.
3. **Communication-mode comparison** — the production force solve on
   the simulated cluster at P = 8, blocking request/reply versus the
   latency-hiding async layer (batched requests + cell cache + LET
   prefetch).  The headline number is the blocked-span fraction from
   :func:`repro.obs.load_imbalance` — the paper's point that hiding
   latency, not adding bandwidth, is what makes the treecode scale.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import ParallelConfig, parallel_tree_accelerations
from repro.cosmology import (
    LCDM,
    PAPER_RUN,
    ComovingSimulation,
    correlation_function,
    friends_of_friends,
    zeldovich_ics,
)
from repro.obs import load_imbalance, wait_summary
from repro.simmpi import SpaceSimulatorCost


def _comm_modes(n=1200, ranks=8, seed=9):
    """Blocked-fraction comparison of the two communication schedules.

    Same particles, same MAC, same cost model — only ``config.comm``
    changes, so the forces are bit-identical and any difference in
    blocked time is purely the communication strategy.
    """
    rng = np.random.default_rng(seed)
    r = rng.random(n) ** (2.0 / 3.0)
    d = rng.standard_normal((n, 3))
    d /= np.linalg.norm(d, axis=1, keepdims=True)
    pos, masses = r[:, None] * d, np.full(n, 1.0 / n)
    out = {}
    for mode in ("blocking", "async"):
        res = parallel_tree_accelerations(
            pos, masses, n_ranks=ranks,
            config=ParallelConfig(theta=0.7, eps=0.02, comm=mode),
            cost=SpaceSimulatorCost(),
        )
        sim = res.sim
        out[mode] = {
            "blocked_frac": load_imbalance(sim.observer, sim.elapsed)["blocked_frac"],
            "virtual_ms": sim.elapsed * 1e3,
            "mbytes_sent": sim.total_bytes_sent / 1e6,
            "accelerations": res.accelerations,
            "comm_stats": dict(res.comm),
            "waits": wait_summary(sim.observer),
        }
    return out


def _build(n_side=20, comm_n=1200):
    a_final = 1.0 / 1.3  # z = 0.3, the figure's epoch
    ics = zeldovich_ics(n_side=n_side, box_mpc_h=125.0, a_start=0.1, cosmology=LCDM,
                        seed=7, k_cut_fraction=0.8)
    sim = ComovingSimulation(ics)
    rms0 = sim.density_rms()
    sim.run_to(a_final, dlna=0.05)
    rms1 = sim.density_rms()
    halos = friends_of_friends(sim.positions, min_members=8)
    edges = np.array([0.02, 0.05, 0.1, 0.2, 0.35, 0.5])
    centers, xi = correlation_function(sim.positions, edges)
    comm = _comm_modes(n=comm_n)
    return sim, rms0, rms1, halos, centers, xi, comm


def test_fig7_cosmology(benchmark):
    sim, rms0, rms1, halos, centers, xi, comm = benchmark.pedantic(
        _build, rounds=1, iterations=1)
    print()
    print(f"box evolved to a = {sim.a:.3f} (z = {1/sim.a - 1:.2f}; paper figure: z = 0.3, "
          f"{LCDM.lookback_gyr(0.3):.1f} Gyr lookback)")
    print(f"density contrast rms: {rms0:.3f} -> {rms1:.3f} "
          f"(structure formed: x{rms1/rms0:.1f})")
    print(f"FoF halos (>= 8 particles): {halos.n_halos}; "
          f"largest {halos.halos[0].n_members if halos.n_halos else 0} particles")
    print(format_table(
        ["r (box units)", "xi(r)"],
        [[c, x] for c, x in zip(centers, xi)],
        "Two-point correlation function at z = 0.3",
    ))
    print()
    model = PAPER_RUN
    print(format_table(
        ["quantity", "paper", "model"],
        [
            ["total flops", 1e16, model.total_flops],
            ["wall hours", 24.0, model.wall_seconds / 3600.0],
            ["sustained Gflop/s", 112.0, model.achieved_gflops],
            ["avg I/O Mbyte/s", 417.0, model.average_io_bytes_s / 1e6],
            ["peak I/O Gbyte/s", 7.0, model.peak_io_bytes_s / 1e9],
        ],
        "Section 4.3 production-run model (134M particles, 250 procs)",
    ))
    print()
    print(format_table(
        ["comm mode", "blocked frac", "virtual ms", "MB sent"],
        [[m, d["blocked_frac"], d["virtual_ms"], d["mbytes_sent"]]
         for m, d in comm.items()],
        "Force solve at P = 8: blocking vs latency-hiding comm",
    ))
    assert rms1 > 4.0 * rms0          # structure grew into the nonlinear regime
    assert halos.n_halos >= 3          # halos formed
    assert xi[0] > xi[1] > abs(xi[-1])  # clustering declines with scale
    assert xi[0] > 0.6                 # strongly clustered at small separations
    assert abs(model.achieved_gflops - 112.0) / 112.0 < 0.15
    # The latency-hiding layer must reduce time spent blocked without
    # touching the physics.
    assert np.array_equal(comm["async"]["accelerations"],
                          comm["blocking"]["accelerations"])
    assert comm["async"]["blocked_frac"] < comm["blocking"]["blocked_frac"]


def _counters(r) -> dict:
    asynchronous = r[6]["async"]
    stats = asynchronous["comm_stats"]
    hits = stats.get("cache_hits", 0.0)
    misses = stats.get("cache_misses", 0.0)
    out = {
        "rms_initial": r[1],
        "rms_final": r[2],
        "n_halos": r[3].n_halos,
        "xi_bins": len(r[5]),
        "blocked_frac_blocking": r[6]["blocking"]["blocked_frac"],
        "blocked_frac_async": asynchronous["blocked_frac"],
        "comm_virtual_ms_blocking": r[6]["blocking"]["virtual_ms"],
        "comm_virtual_ms_async": asynchronous["virtual_ms"],
        # Latency-hiding layer health (async force solve): the cell
        # cache and the engine's wait-state mix, the fleet gate's eyes
        # on the Section 4 communication story.
        "cellcache.hits": hits,
        "cellcache.misses": misses,
        "cellcache.evictions": stats.get("cache_evictions", 0.0),
        "cellcache.hit_rate": hits / max(1.0, hits + misses),
    }
    for cause, s in asynchronous["waits"]["by_cause"].items():
        out[f"wait.{cause}_s"] = s
    return out


#: Reduced smoke: the full z=0.3 box plus a P=8 force solve costs ~9 s;
#: smoke shrinks the PM grid and the comm problem and reports under a
#: distinct record name so full-mode baselines stay clean.
FLEET = {"tags": ("figure", "cosmology", "comm"), "smoke": "reduced"}


def main(smoke: bool = False) -> dict:
    from _harness import run_main

    n_side, comm_n = (10, 500) if smoke else (20, 1200)
    return run_main(
        "fig7_cosmology_smoke" if smoke else "fig7_cosmology",
        lambda: _build(n_side=n_side, comm_n=comm_n),
        params={"n_side": n_side, "comm_n": comm_n,
                "box_mpc_h": 125.0, "a_final": 1.0 / 1.3},
        counters=_counters,
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced grid/comm problem under the "
                             "fig7_cosmology_smoke record name")
    main(smoke=parser.parse_args().smoke)
