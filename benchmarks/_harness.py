"""Uniform benchmark-record harness for ``benchmarks/bench_*.py``.

Every bench module exposes ``main() -> dict`` built on :func:`run_main`:
it runs the module's ``_build`` payload once, wall-times it, and returns
a record with a fixed shape — name, params, measured seconds, virtual
(simulated) seconds, named counters, git revision, and host — validated
against ``benchmarks/schema.json``.  With ``REPRO_BENCH_DIR`` set, the
record is also written to ``$REPRO_BENCH_DIR/BENCH_<name>.json`` so a
sweep over all benches leaves one machine-readable file per figure or
table.

The schema checker is a deliberate small subset of JSON Schema
(``type``, ``required``, ``properties``, ``additionalProperties``,
``pattern``, ``minimum``, ``items``) so the suite needs no third-party
validator; it lives in :mod:`repro.obs.schemacheck` (shared with the
fleet ledger and the ``python -m repro.obs validate`` CI step) and is
re-exported here.
"""

from __future__ import annotations

import json
import os
import platform
import re
import subprocess
import time
from typing import Any, Callable, Mapping

from repro.obs.schemacheck import check_value as _check

__all__ = [
    "HISTORY_ENV",
    "SCHEMA_PATH",
    "SCHEMA_VERSION",
    "append_history",
    "bench_record",
    "emit",
    "git_rev",
    "load_schema",
    "run_main",
    "validate_record",
]

SCHEMA_VERSION = 1

#: When set, every validated record is appended to this JSONL file (a
#: directory means ``<dir>/history.jsonl``) — the longitudinal input of
#: the ``python -m repro.obs compare`` regression gate.
HISTORY_ENV = "REPRO_BENCH_HISTORY"
SCHEMA_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "schema.json")


def git_rev() -> str:
    """Short hash of the checked-out revision, or ``"unknown"``."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and re.fullmatch(r"[0-9a-f]{7,40}", rev) else "unknown"


def load_schema() -> dict:
    with open(SCHEMA_PATH) as fh:
        return json.load(fh)


def validate_record(record: Any, schema: Mapping | None = None) -> list[str]:
    """Check ``record`` against the subset JSON Schema; returns errors."""
    errors: list[str] = []
    _check(record, schema if schema is not None else load_schema(), "record", errors)
    return errors


def bench_record(
    name: str,
    *,
    params: Mapping | None = None,
    seconds: float,
    virtual_seconds: float = 0.0,
    counters: Mapping[str, float] | None = None,
    notes: str = "",
    shards: list[Mapping] | None = None,
) -> dict:
    """Assemble (but do not validate) one uniform benchmark record.

    ``shards`` is the optional per-shard breakdown campaign benches
    attach (fingerprint, status, seconds per shard); scalar benches
    omit it and their records keep the original shape.
    """
    record = {
        "schema_version": SCHEMA_VERSION,
        "name": str(name),
        "params": dict(params or {}),
        "seconds": float(seconds),
        "virtual_seconds": float(virtual_seconds),
        "counters": {str(k): float(v) for k, v in dict(counters or {}).items()},
        "git_rev": git_rev(),
        "host": f"{platform.system()}-{platform.machine()}-py{platform.python_version()}",
        "notes": str(notes),
    }
    if shards is not None:
        record["shards"] = [dict(s) for s in shards]
    return record


def emit(record: Mapping, out_dir: str | None = None) -> str | None:
    """Write ``BENCH_<name>.json``; a no-op unless a directory is given.

    ``out_dir`` defaults to the ``REPRO_BENCH_DIR`` environment
    variable; when neither is set the record stays in memory only.
    Returns the path written, or None.
    """
    out_dir = out_dir or os.environ.get("REPRO_BENCH_DIR")
    if not out_dir:
        return None
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{record['name']}.json")
    with open(path, "w") as fh:
        fh.write(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def append_history(record: Mapping, path: str | None = None) -> str | None:
    """Append one record (plus a UTC timestamp) to the history JSONL.

    ``path`` defaults to the ``REPRO_BENCH_HISTORY`` environment
    variable; with neither set, this is a no-op.  The file is the
    longitudinal record ``repro.obs.history`` computes rolling baselines
    from; lines are self-contained JSON objects, oldest first.

    The append is **atomic**: the existing history plus the new line is
    written to a temp file which then replaces the original via
    ``os.replace``.  A bench run killed mid-append can therefore never
    truncate or tear ``baseline.jsonl`` — the reader sees either the
    old history or the new one, both well-formed.  History files are
    small (one line per bench run), so the rewrite is cheap.
    """
    path = path or os.environ.get(HISTORY_ENV)
    if not path:
        return None
    if os.path.isdir(path):
        path = os.path.join(path, "history.jsonl")
    path = os.path.abspath(path)
    parent = os.path.dirname(path)
    os.makedirs(parent, exist_ok=True)
    entry = dict(record)
    entry["ts"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    existing = ""
    if os.path.exists(path):
        with open(path) as fh:
            existing = fh.read()
        if existing and not existing.endswith("\n"):
            existing += "\n"  # heal a pre-atomic torn tail
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w") as fh:
            fh.write(existing)
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)
    return path


def run_main(
    name: str,
    build: Callable[[], Any],
    *,
    params: Mapping | None = None,
    counters: Mapping[str, float] | Callable[[Any], Mapping[str, float]] | None = None,
    virtual_seconds: float | Callable[[Any], float] | None = None,
    notes: str = "",
    quiet: bool = False,
    shards: list[Mapping] | Callable[[Any], list[Mapping]] | None = None,
) -> dict:
    """Run one bench payload and return its validated record.

    ``counters``, ``virtual_seconds``, and ``shards`` may be callables
    taking the payload's return value, so each bench derives its
    headline numbers from what it actually computed.
    """
    t0 = time.perf_counter()
    result = build()
    seconds = time.perf_counter() - t0
    record = bench_record(
        name,
        params=params,
        seconds=seconds,
        virtual_seconds=float(
            virtual_seconds(result) if callable(virtual_seconds)
            else (virtual_seconds or 0.0)
        ),
        counters=counters(result) if callable(counters) else counters,
        notes=notes,
        shards=shards(result) if callable(shards) else shards,
    )
    errors = validate_record(record)
    if errors:
        raise ValueError(f"bench record for {name!r} violates schema.json: {errors}")
    emit(record)
    append_history(record)
    if not quiet:
        print(json.dumps(record, indent=2, sort_keys=True))
    return record
