"""Bench F8 — regenerate Figure 8 / Section 4.4: rotating core collapse.

Collapses a rotating n=3 polytrope with the full stack — tree gravity,
SPH with artificial viscosity, the stiffening nuclear EOS, gray FLD
neutrino transport — through core bounce, then computes the Figure 8
diagnostic: the specific-angular-momentum distribution versus polar
angle, with the equator carrying orders of magnitude more angular
momentum than the 15-degree polar cone.
"""

import numpy as np

from repro.analysis import format_table
from repro.sph import (
    CollapseConfig,
    CollapseSimulation,
    add_rotation,
    angular_momentum_by_angle,
    cone_vs_equator_angular_momentum,
    polytrope_particles,
)


def _build(n_particles=350, max_steps=160):
    pos, m, u = polytrope_particles(n_particles, seed=11)
    vel = add_rotation(pos, omega0=0.45, r0=0.25)
    cfg = CollapseConfig()
    sim = CollapseSimulation(pos, vel, m, u, cfg)
    for _ in range(max_steps):
        sim.step()
        if sim.history.bounced(cfg.eos.rho_nuc):
            break
    centers, j = angular_momentum_by_angle(sim.positions, sim.velocities, m)
    l_cone, l_eq = cone_vs_equator_angular_momentum(sim.positions, sim.velocities, m)
    return sim, cfg, centers, j, l_cone, l_eq


def test_fig8_supernova(benchmark):
    sim, cfg, centers, j, l_cone, l_eq = benchmark.pedantic(_build, rounds=1, iterations=1)
    print()
    hist = sim.history
    print(f"collapse: central density {hist.central_density[0]:.1f} -> "
          f"peak {hist.max_density:.1f} (nuclear density {cfg.eos.rho_nuc}); "
          f"bounced: {hist.bounced(cfg.eos.rho_nuc)} at t = {sim.time:.3f}")
    print(f"peak neutrino luminosity: {max(hist.neutrino_luminosity):.3e} (code units)")
    print(format_table(
        ["polar angle (deg)", "mean |j_z|"],
        [[c, val] for c, val in zip(centers, j)],
        "Figure 8 diagnostic: specific angular momentum vs polar angle",
    ))
    ratio = l_eq / max(l_cone, 1e-300)
    print(f"total |L_z|: 15-degree polar cone {l_cone:.3e} vs equatorial band {l_eq:.3e} "
          f"-> ratio {ratio:.0f} (paper: ~2 orders of magnitude)")
    assert hist.bounced(cfg.eos.rho_nuc)
    assert j[-1] > 5.0 * max(j[0], 1e-300)  # bulk of j along the equator
    assert ratio > 30.0                      # approaching the paper's 100x
    assert max(hist.neutrino_luminosity) > 0


#: Reduced smoke: the 350-particle collapse-to-bounce run costs ~3 s;
#: smoke collapses a smaller polytrope for fewer steps under a distinct
#: record name so full-mode baselines stay clean.
FLEET = {"tags": ("figure", "supernova", "sph"), "smoke": "reduced"}


def main(smoke: bool = False) -> dict:
    from _harness import run_main

    n_particles, max_steps = (200, 90) if smoke else (350, 160)
    return run_main(
        "fig8_supernova_smoke" if smoke else "fig8_supernova",
        lambda: _build(n_particles=n_particles, max_steps=max_steps),
        params={"n_particles": n_particles, "max_steps": max_steps},
        counters=lambda r: {
            "l_cone": r[4],
            "l_equator": r[5],
            "angle_bins": len(r[2]),
        },
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="smaller polytrope, fewer steps, under the "
                             "fig8_supernova_smoke record name")
    main(smoke=parser.parse_args().smoke)
