"""Bench T6 — regenerate Table 6: treecode performance across machines.

Runs the actual parallel hashed oct-tree on the paper's standard
problem (a spherical cosmological-IC particle distribution) over the
simulated Space Simulator, measures virtual-time Mflop/s per
processor, and prints it against the historical survey.  The per-node
kernel efficiency is set from the Table 5 icc kernel rate (1357
Mflop/s of 5060 peak); the achieved per-proc rate then lands in the
neighborhood of the paper's 623.9 Mflop/s — with the shortfall from
communication and traversal overhead, exactly as on the real machine.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import ParallelConfig, parallel_tree_accelerations
from repro.machine import TABLE6_MACHINES
from repro.simmpi import SpaceSimulatorCost


def _sphere(n, seed=7):
    """The 'spherical distribution representing the initial evolution
    of a cosmological N-body simulation' (Section 4.2)."""
    rng = np.random.default_rng(seed)
    r = rng.random(n) ** (1.0 / 3.0)
    d = rng.standard_normal((n, 3))
    d /= np.linalg.norm(d, axis=1, keepdims=True)
    pos = r[:, None] * d * (1.0 + 0.05 * rng.standard_normal((n, 1)))
    return pos, np.full(n, 1.0 / n)


def _build():
    pos, m = _sphere(6000)
    cfg = ParallelConfig(theta=0.8, eps=0.01, bucket_size=32,
                         kernel_efficiency=1357.0 / 5060.0)
    result = parallel_tree_accelerations(
        pos, m, n_ranks=4, config=cfg, cost=SpaceSimulatorCost()
    )
    return result


def test_table6_treecode_history(benchmark):
    result = benchmark.pedantic(_build, rounds=1, iterations=1)
    print()
    rows = [[m.year, m.site, m.machine, m.procs, m.gflops, m.mflops_per_proc]
            for m in TABLE6_MACHINES]
    print(format_table(
        ["Year", "Site", "Machine", "Procs", "Gflop/s", "Mflops/proc"],
        rows, "Table 6: historical treecode performance (paper survey)",
    ))
    mfpp = result.mflops_per_proc
    print(f"\nsimulated SS (4 ranks, N=6000): {mfpp:.0f} Mflop/s per processor "
          f"(paper, 288 procs at ~78x the per-rank load: 623.9)")
    print(f"parallel efficiency: {result.sim.parallel_efficiency():.2f}")
    ss = next(m for m in TABLE6_MACHINES if m.machine == "Space Simulator")
    # Shape check: within a factor ~2 of the paper's per-proc rate and
    # between Green Destiny and ASCI QB, as the survey has it.
    assert 0.4 * ss.mflops_per_proc < mfpp < 2.0 * ss.mflops_per_proc
    gd = next(m for m in TABLE6_MACHINES if m.machine == "Green Destiny")
    assert mfpp > gd.mflops_per_proc


def _counters(r) -> dict:
    from repro.obs import wait_summary

    hits = r.comm.get("cache_hits", 0.0)
    misses = r.comm.get("cache_misses", 0.0)
    out = {
        "mflops_per_proc": r.mflops_per_proc,
        "parallel_efficiency": r.sim.parallel_efficiency(),
        # Latency-hiding health on the Table 6 workload: cell-cache
        # effectiveness (the fleet gate holds hit_rate's floor) and the
        # engine's wait-state mix in virtual seconds.
        "cellcache.hits": hits,
        "cellcache.misses": misses,
        "cellcache.evictions": r.comm.get("cache_evictions", 0.0),
        "cellcache.hit_rate": hits / max(1.0, hits + misses),
    }
    for cause, s in wait_summary(r.sim.observer)["by_cause"].items():
        out[f"wait.{cause}_s"] = s
    return out


#: Already CI-cheap (one 4-rank force solve), so smoke == full.
FLEET = {"tags": ("table", "treecode", "comm"), "smoke": "full"}


def main(smoke: bool = False) -> dict:
    from _harness import run_main

    return run_main(
        "table6_treecode_history", _build,
        params={"n": 6000, "n_ranks": 4, "theta": 0.8},
        counters=_counters,
        virtual_seconds=lambda r: r.sim.elapsed,
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-budget run (same workload for this bench)")
    main(smoke=parser.parse_args().smoke)
