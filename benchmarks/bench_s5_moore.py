"""Bench S5 — regenerate the Section 5 Moore's-law analysis.

Six years, four doublings: disk $/GB beat Moore by ~7x, memory by ~2x;
NPB class B throughput improved 12.6/10.0/15.5/15.5x at half the
per-processor cost; the N-body code's 140x sits on the 150x Moore line
given the 9.4x price ratio.
"""

from repro.analysis import format_table
from repro.cluster import (
    LOKI_BOM,
    LOKI_NPB_CLASS_B_16P,
    NBODY_LOKI_VS_SS,
    SPACE_SIMULATOR_BOM,
    SS_NPB_CLASS_B_16P,
    disk_dollars_per_gb,
    moore_factor,
    npb_improvement_ratios,
    npb_price_performance_vs_moore,
    ram_dollars_per_mb,
)


def _build():
    commodity = {
        "disk $/GB": (disk_dollars_per_gb(LOKI_BOM), disk_dollars_per_gb(SPACE_SIMULATOR_BOM)),
        "RAM $/MB": (ram_dollars_per_mb(LOKI_BOM), ram_dollars_per_mb(SPACE_SIMULATOR_BOM)),
    }
    return commodity, npb_improvement_ratios(), npb_price_performance_vs_moore()


def test_s5_moore(benchmark):
    commodity, npb, vs_moore = benchmark(_build)
    moore = moore_factor(6.0)
    print()
    rows = [
        [name, loki, ss, loki / ss, (loki / ss) / moore]
        for name, (loki, ss) in commodity.items()
    ]
    print(format_table(
        ["commodity", "Loki 1996", "SS 2002", "improvement", "vs Moore (16x)"],
        rows, "Section 5: commodity price scaling",
    ))
    print(format_table(
        ["NPB class B", "Loki 16p Mflops", "SS 16p Mflops", "ratio", "price/perf vs Moore"],
        [[b, LOKI_NPB_CLASS_B_16P[b], SS_NPB_CLASS_B_16P[b], npb[b], vs_moore[b]]
         for b in npb],
        "Section 5: NPB class B, 16 processors",
    ))
    c = NBODY_LOKI_VS_SS
    print(f"\nN-body: Loki {c.loki_gflops} Gflop/s -> SS {c.ss_gflops} Gflop/s "
          f"= {c.performance_ratio:.0f}x measured vs {c.predicted_ratio():.0f}x "
          f"Moore-predicted (price ratio {c.price_ratio:.1f})")
    assert moore == 16.0
    disk_gain = commodity["disk $/GB"][0] / commodity["disk $/GB"][1]
    assert abs(disk_gain / 16.0 - 6.7) < 0.4
    ram_gain = commodity["RAM $/MB"][0] / commodity["RAM $/MB"][1]
    assert abs(ram_gain / 16.0 - 2.0) < 0.1
    assert abs(npb["BT"] - 12.6) < 0.1 and abs(npb["LU"] - 15.5) < 0.1
    assert abs(c.performance_ratio - 140.6) < 1.0
    assert abs(c.predicted_ratio() - 150.0) < 8.0


#: Fleet registry metadata: this bench is already CI-cheap, so
#: smoke mode runs the full workload under the same record name.
FLEET = {"tags": ('section', 'hardware'), "smoke": "full"}


def main(smoke: bool = False) -> dict:
    from _harness import run_main

    return run_main(
        "s5_moore", _build,
        params={"years": 6.0},
        counters=lambda r: {
            "commodities": len(r[0]),
            "npb_benches": len(r[1]),
        },
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-budget run (same workload for this bench)")
    main(smoke=parser.parse_args().smoke)
