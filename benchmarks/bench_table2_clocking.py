"""Bench T2 — regenerate Table 2: the clock-sensitivity study.

All fourteen benchmarks under the four BIOS configurations.  The
normal column anchors absolute rates and the slow-mem/slow-CPU columns
calibrate the two-component model; the overclock column is a genuine
prediction, compared cell by cell against the paper.
"""

from repro.analysis import format_table
from repro.machine import OVERCLOCK, TABLE2_CONFIGS, TABLE2_MEASURED, table2_profiles


def _build():
    profiles = table2_profiles()
    rows = []
    for name, profile in profiles.items():
        row = [name] + [profile.rate(cfg) for cfg in TABLE2_CONFIGS]
        row.append(TABLE2_MEASURED[name][3])  # measured overclock
        rows.append(row)
    return rows


def test_table2_clocking(benchmark):
    rows = benchmark(_build)
    print()
    print(format_table(
        ["benchmark", "normal", "slow mem", "slow CPU", "overclock (model)", "overclock (paper)"],
        rows,
        "Table 2: clock-scaling model vs measurement",
    ))
    profiles = table2_profiles()
    for name, profile in profiles.items():
        measured = TABLE2_MEASURED[name][3]
        predicted = profile.rate(OVERCLOCK)
        assert abs(predicted / measured - 1.0) < 0.05, name
    # The paper's headline: most benchmarks track memory bandwidth.
    memory_bound = [n for n, p in profiles.items() if p.memory_boundedness > 0.5]
    assert {"copy", "add", "scale", "triad", "SP", "MG", "CG"} <= set(memory_bound)


#: Fleet registry metadata: this bench is already CI-cheap, so
#: smoke mode runs the full workload under the same record name.
FLEET = {"tags": ('table', 'hardware'), "smoke": "full"}


def main(smoke: bool = False) -> dict:
    from _harness import run_main

    return run_main(
        "table2_clocking", _build,
        counters=lambda rows: {"rows": len(rows)},
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-budget run (same workload for this bench)")
    main(smoke=parser.parse_args().smoke)
