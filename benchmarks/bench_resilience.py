"""Bench resilience — expected runtime vs checkpoint interval.

Monte-Carlo validation of the Section 2.1 checkpoint economics against
the live fault-injection machinery: a synthetic step-loop job runs
under :func:`repro.resilience.run_resilient` with crashes sampled at a
controlled job MTBF, sweeping the checkpoint interval.  The measured
mean wall time must track the first-order analytic model
(:func:`repro.cluster.checkpoint.expected_runtime`) and bottom out
near Young's interval ``sqrt(2 * dump * MTBF)``.
"""

import dataclasses

import numpy as np

from repro.analysis import format_table
from repro.cluster.checkpoint import expected_runtime, young_interval
from repro.cluster.reliability import FailureModel
from repro.machine.node import DiskSpec, SPACE_SIMULATOR_NODE
from repro.resilience import (
    ResilienceConfig,
    node_crash_rate_per_hour,
    run_resilient,
    sample_fault_plan,
)

N_RANKS = 8
STEP_S = 60.0
N_STEPS = 60                 # W = 1 hour of useful work
WORK_S = N_STEPS * STEP_S
MTBF_S = 1800.0              # engineered job MTBF: ~2 failures per run
DUMP_S = 30.0                # engineered checkpoint dump cost
RESTART_S = 120.0
INTERVALS_S = (60.0, 120.0, 240.0, 360.0, 600.0, 1200.0, 1800.0)
N_SEEDS = 25

# A node whose disk writes cost ~DUMP_S regardless of (tiny) state size,
# so the virtual dump price is under experimental control.
DUMP_NODE = dataclasses.replace(
    SPACE_SIMULATOR_NODE,
    disk=DiskSpec(seek_ms=DUMP_S * 1e3, sustained_mbytes_s=1e6),
)


def stepper(ckpt):
    """One rank of the synthetic job: N_STEPS timesteps, checkpointing."""

    def program(comm):
        snap = ckpt.restored(comm.rank)
        step = int(snap.meta["step"]) if snap is not None else 0
        while step < N_STEPS:
            yield comm.elapse(STEP_S)
            step += 1
            yield from ckpt.save(comm, {"step": np.array([step])}, meta={"step": step})
        yield comm.barrier()

    return program


def crash_plan(seed: int):
    """Crashes only, scaled so the whole job sees MTBF_S on average."""
    base = node_crash_rate_per_hour(FailureModel())
    scale = (3600.0 / MTBF_S) / (N_RANKS * base)
    return sample_fault_plan(
        N_RANKS, 24.0, seed=seed, crash_rate_scale=scale, repair_hours=0.0,
        soft_rate_per_node_hour=0.0, link_rate_per_node_hour=0.0,
    )


def _sweep(tmpdir):
    rows = []
    for tau in INTERVALS_S:
        walls, fails = [], []
        for seed in range(N_SEEDS):
            cfg = ResilienceConfig(
                checkpoint_dir=str(tmpdir / f"tau{int(tau)}-s{seed}"),
                interval_s=tau, restart_s=RESTART_S,
                max_restarts=500, node=DUMP_NODE,
            )
            out = run_resilient(stepper, N_RANKS, faults=crash_plan(seed), config=cfg)
            walls.append(out.wall_s)
            fails.append(len(out.failures))
        analytic = expected_runtime(
            WORK_S / 3600.0, DUMP_S / 3600.0, MTBF_S / 3600.0,
            tau / 3600.0, RESTART_S / 3600.0,
        ) * 3600.0
        rows.append([tau, float(np.mean(walls)), analytic, float(np.mean(fails))])
    return rows


def test_resilience_interval_sweep(benchmark, tmp_path):
    rows = benchmark.pedantic(_sweep, args=(tmp_path,), rounds=1, iterations=1)
    tau_young = young_interval(DUMP_S / 3600.0, MTBF_S / 3600.0) * 3600.0
    print()
    print(format_table(
        ["interval s", "MC wall s", "analytic s", "mean failures"],
        [[f"{r[0]:.0f}", f"{r[1]:.0f}", f"{r[2]:.0f}", f"{r[3]:.2f}"] for r in rows],
        f"Wall time vs checkpoint interval (W={WORK_S:.0f}s, MTBF={MTBF_S:.0f}s, "
        f"dump={DUMP_S:.0f}s); Young = {tau_young:.0f}s",
    ))

    # First-order model and Monte-Carlo agree within noise at every tau.
    for tau, mc, analytic, _ in rows:
        assert 0.75 < mc / analytic < 1.3, (tau, mc, analytic)

    # Young's interval sits at (or next to) the measured minimum.
    mc_by_tau = {r[0]: r[1] for r in rows}
    nearest = min(INTERVALS_S, key=lambda t: abs(t - tau_young))
    assert mc_by_tau[nearest] < 1.1 * min(mc_by_tau.values())

    # Checkpointing too rarely must genuinely hurt: the longest interval
    # pays the full rework tax the short ones amortize away.
    assert mc_by_tau[INTERVALS_S[-1]] > mc_by_tau[nearest]


def _counters(rows) -> dict:
    mean_wall = sum(r[1] for r in rows) / len(rows)
    mean_failures = sum(r[3] for r in rows) / len(rows)
    # Recovery time in *virtual* seconds — how much the faulted runs
    # exceed the W seconds of useful work, i.e. dumps + rework +
    # restarts.  Deterministic (seeded fault plans), so the fleet gate
    # can hold it tight across heterogeneous runners.
    overhead = mean_wall - WORK_S
    return {
        "rows": len(rows),
        "mean_failures": mean_failures,
        "recovery_overhead_s": overhead,
        "recovery_per_failure_s": overhead / max(mean_failures, 1e-9),
    }


#: The record's sweep is already the reduced 3x3 grid (the 25-seed
#: pytest benchmark is separate), so smoke runs the same workload.
FLEET = {"tags": ("resilience", "checkpoint"), "smoke": "full"}


def main(smoke: bool = False) -> dict:
    import tempfile
    from pathlib import Path

    from _harness import run_main

    # Reduced sweep: the full 25-seed x 7-interval grid is the slow
    # pytest benchmark; the record only needs the sweep's shape.
    global N_SEEDS, INTERVALS_S
    saved = (N_SEEDS, INTERVALS_S)
    N_SEEDS, INTERVALS_S = 3, INTERVALS_S[:3]
    try:
        with tempfile.TemporaryDirectory() as tmp:
            return run_main(
                "resilience", lambda: _sweep(Path(tmp)),
                params={"n_seeds": N_SEEDS, "intervals_s": list(INTERVALS_S),
                        "n_ranks": N_RANKS, "restart_s": RESTART_S},
                counters=_counters,
                virtual_seconds=lambda rows: sum(r[1] for r in rows),
                notes="reduced sweep (3 seeds, 3 intervals)",
            )
    finally:
        N_SEEDS, INTERVALS_S = saved


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-budget run (same reduced sweep as full)")
    main(smoke=parser.parse_args().smoke)
