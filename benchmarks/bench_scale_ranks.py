"""Bench SR — rank scaling past the paper: treecode steps at P ∈ {512, 1024, 2560}.

The Space Simulator stopped at 294 processors; the related work
(Dubinski's 512-CPU teraflop Beowulf, the 2560-node PACS-CS) points
well past it.  This bench drives one full parallel treecode force
calculation — decomposition sort, branch allgather, latency-hiding
traversal, evaluation — through the discrete-event engine at rank
counts up to 2560 in a single process, the scale the PR-7 engine
refactor (indexed matching, tree collectives, sparse request rounds,
sampled tracing) exists to make routine.

The workload is deliberately communication-dominated: two particles
per rank keeps the arithmetic trivial, so what the record measures is
the simulation machinery itself — events processed, request traffic,
and the virtual time the cost model assigns the collective-heavy step.
``--smoke`` runs the same pipeline at P ∈ {128, 256} in a few seconds
for CI, recorded under its own name so the full-scale baselines stay
unpolluted.
"""

import argparse

import numpy as np

from repro.core.parallel import ParallelConfig, parallel_tree_accelerations
from repro.simmpi.cost import SpaceSimulatorCost

PROCS = (512, 1024, 2560)
SMOKE_PROCS = (128, 256)
PARTICLES_PER_RANK = 2


def _run_one(n_ranks: int) -> dict:
    rng = np.random.default_rng(20030512 + n_ranks)
    pos = rng.random((PARTICLES_PER_RANK * n_ranks, 3))
    res = parallel_tree_accelerations(
        pos,
        n_ranks=n_ranks,
        config=ParallelConfig(),
        cost=SpaceSimulatorCost(),
        record_trace=False,  # scaling runs keep memory flat
    )
    assert np.isfinite(res.accelerations).all()
    return {
        "virtual_s": float(res.sim.elapsed),
        "rounds": float(res.comm.get("rounds", 0.0)),
        "requests": float(res.comm.get("requests", 0.0)),
        "prefetch_fetched": float(res.comm.get("prefetch_fetched", 0.0)),
    }


def _build(procs=PROCS):
    return {p: _run_one(p) for p in procs}


def test_scale_ranks_smoke(benchmark):
    out = benchmark.pedantic(lambda: _build(SMOKE_PROCS), rounds=1, iterations=1)
    for p in SMOKE_PROCS:
        assert out[p]["virtual_s"] > 0.0
    # More ranks means more collective/request traffic, never less.
    assert out[SMOKE_PROCS[-1]]["requests"] >= out[SMOKE_PROCS[0]]["requests"]


def _record(procs, name):
    from _harness import run_main

    def counters(result):
        out = {}
        for p, r in result.items():
            for k, v in r.items():
                out[f"{k}_p{p}"] = v
        return out

    return run_main(
        name, lambda: _build(procs),
        params={"procs": list(procs), "per_rank": PARTICLES_PER_RANK},
        counters=counters,
        virtual_seconds=lambda result: max(r["virtual_s"] for r in result.values()),
        notes="one parallel treecode force step per rank count, "
              "communication-dominated (2 particles/rank)",
    )


#: Reduced smoke: the full rank ladder runs for minutes; CI keeps to
#: SMOKE_PROCS under the scale_ranks_smoke record name.
FLEET = {"tags": ("scale", "simmpi"), "smoke": "reduced"}


def main(smoke: bool = False) -> dict:
    if smoke:
        return _record(SMOKE_PROCS, "scale_ranks_smoke")
    return _record(PROCS, "scale_ranks")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"CI mode: P in {SMOKE_PROCS} under a distinct record name",
    )
    main(smoke=parser.parse_args().smoke)
