"""Bench S21 — regenerate the Section 2.1 failure statistics.

Monte-Carlo replays of the cluster's first nine months against the
paper's observed counts (install defects and service failures per
component), plus the SMART-prediction claim and node availability.
"""

import numpy as np

from repro.analysis import format_table
from repro.cluster import (
    INSTALL_DEFECTS,
    SERVICE_FAILURES_9MO,
    SS_COMPONENTS,
    FailureModel,
)


def _build(trials=400):
    model = FailureModel()
    sims = [model.simulate(seed=s) for s in range(trials)]
    mean_install = {
        c.kind: float(np.mean([s.install_defects[c.kind] for s in sims])) for c in SS_COMPONENTS
    }
    mean_service = {
        c.kind: float(np.mean([s.service_failures[c.kind] for s in sims])) for c in SS_COMPONENTS
    }
    smart = sum(s.smart_predicted for s in sims) / max(
        sum(s.service_failures["disk drive"] for s in sims), 1
    )
    avail = float(np.mean([s.availability for s in sims]))
    return model, mean_install, mean_service, smart, avail


def test_s21_reliability(benchmark):
    model, mean_install, mean_service, smart, avail = benchmark.pedantic(
        _build, rounds=1, iterations=1
    )
    print()
    rows = [
        [c.kind, INSTALL_DEFECTS[c.kind], mean_install[c.kind],
         SERVICE_FAILURES_9MO[c.kind], mean_service[c.kind],
         c.mtbf_hours / 8766.0 if np.isfinite(c.mtbf_hours) else float("inf")]
        for c in SS_COMPONENTS
    ]
    print(format_table(
        ["component", "install (paper)", "install (MC)", "9-mo (paper)", "9-mo (MC)", "MTBF years"],
        rows, "Section 2.1: component failures, 294-node cluster",
    ))
    print(f"SMART-predicted fraction of disk failures: {smart:.2f} (paper: 'a majority')")
    print(f"mean node availability over 9 months: {avail:.4f}")
    for c in SS_COMPONENTS:
        assert abs(mean_install[c.kind] - INSTALL_DEFECTS[c.kind]) <= max(
            1.0, 0.3 * INSTALL_DEFECTS[c.kind]
        ), c.kind
        assert abs(mean_service[c.kind] - SERVICE_FAILURES_9MO[c.kind]) <= max(
            1.0, 0.3 * SERVICE_FAILURES_9MO[c.kind]
        ), c.kind
    assert smart > 0.5
    assert avail > 0.995


#: Fleet registry metadata: this bench is already CI-cheap, so
#: smoke mode runs the full workload under the same record name.
FLEET = {"tags": ('section', 'reliability'), "smoke": "full"}


def main(smoke: bool = False) -> dict:
    from _harness import run_main

    return run_main(
        "s21_reliability", lambda: _build(trials=100),
        params={"trials": 100},
        counters=lambda r: {
            "availability": r[4],
            "smart_predicted_ratio": r[3],
        },
        notes="reduced Monte-Carlo trial count",
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-budget run (same workload for this bench)")
    main(smoke=parser.parse_args().smoke)
