"""Bench F5 — regenerate Figure 5: NPB class C scaling on the SS.

Class C is smaller, so scaling sags at high processor counts — except
LU, whose per-processor rate *rises* around 64 processors when the
local planes drop into L2 ("likely due to the problem being divided
into enough pieces that it fits into L2 cache"), the figure's
signature feature.
"""

from repro.analysis import format_table
from repro.nas import space_simulator_npb_model

BENCHES = ("BT", "SP", "LU", "CG", "FT", "IS")
# 1..256 regenerate the paper's Figure 5; 512/1024/2560 extrapolate
# past the Space Simulator (see EXPERIMENTS.md, "Scaling past the
# paper").  Paper-anchored assertions stay pinned to the 256 column.
PROCS = (1, 4, 16, 64, 256, 512, 1024, 2560)


def _build():
    ss = space_simulator_npb_model()
    per = {b: [ss.mops_per_proc(b, "C", p) for p in PROCS] for b in BENCHES}
    return per


def test_fig5_scaling_class_c(benchmark):
    per = benchmark(_build)
    print()
    print(format_table(
        ["procs"] + list(BENCHES),
        [[p] + [per[b][i] for b in BENCHES] for i, p in enumerate(PROCS)],
        "Figure 5: class C per-processor Mop/s",
    ))
    lu = per["LU"]
    # The LU feature: higher per-proc rate at 64 than at 1.
    assert lu[PROCS.index(64)] > lu[0]
    # And class C scaling is worse than class D at 256 procs.
    ss = space_simulator_npb_model()
    for b in ("BT", "LU"):
        eff_c = per[b][PROCS.index(256)] / per[b][PROCS.index(16)]
        eff_d = ss.mops_per_proc(b, "D", 256) / ss.mops_per_proc(b, "D", 16)
        assert eff_d > eff_c, b


#: Fleet registry metadata: this bench is already CI-cheap, so
#: smoke mode runs the full workload under the same record name.
FLEET = {"tags": ('figure', 'npb'), "smoke": "full"}


def main(smoke: bool = False) -> dict:
    from _harness import run_main

    return run_main(
        "fig5_npb_scaling_c", _build,
        params={"benches": list(BENCHES), "procs": list(PROCS)},
        counters=lambda per: {
            "curves": len(per),
            "points": sum(len(v) for v in per.values()),
        },
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-budget run (same workload for this bench)")
    main(smoke=parser.parse_args().smoke)
