"""Bench T3 — regenerate Table 3: 64-processor class C NPB vs ASCI Q.

Also executes the real class-S mini-kernels first (verified answers),
so the rates below stand on exercised arithmetic, then prints the
calibrated model's Table 3.
"""

from repro.analysis import format_table
from repro.nas import (
    Q_MEASURED_C64,
    SS_MEASURED_C64,
    asci_q_npb_model,
    run_bt,
    run_cg,
    run_ft,
    run_is,
    run_lu,
    run_sp,
    space_simulator_npb_model,
)

_KERNELS = {"BT": run_bt, "SP": run_sp, "LU": run_lu, "CG": run_cg, "FT": run_ft, "IS": run_is}


def _build():
    verified = {name: fn("S").verified for name, fn in _KERNELS.items()}
    ss = space_simulator_npb_model()
    q = asci_q_npb_model()
    rows = []
    for bench in SS_MEASURED_C64:
        rows.append([
            bench,
            ss.mops(bench, "C", 64),
            SS_MEASURED_C64[bench],
            q.mops(bench, "C", 64),
            Q_MEASURED_C64[bench],
        ])
    return verified, rows


def test_table3_npb_class_c_64(benchmark):
    verified, rows = benchmark.pedantic(_build, rounds=1, iterations=1)
    print()
    print("kernel self-verification (class S):", verified)
    print(format_table(
        ["benchmark", "SS model", "SS paper", "Q model", "Q paper"],
        rows,
        "Table 3: 64-processor class C NPB (Mop/s)",
    ))
    assert all(verified.values())
    for bench, ss_model, ss_paper, q_model, q_paper in rows:
        assert abs(ss_model / ss_paper - 1.0) < 1e-6, bench  # calibration column
        assert abs(q_model / q_paper - 1.0) < 1e-6, bench


#: Fleet registry metadata: this bench is already CI-cheap, so
#: smoke mode runs the full workload under the same record name.
FLEET = {"tags": ('table', 'npb'), "smoke": "full"}


def main(smoke: bool = False) -> dict:
    from _harness import run_main

    return run_main(
        "table3_npb_c64", _build,
        params={"klass": "C", "procs": 64},
        counters=lambda r: {
            "verified": sum(r[0].values()),
            "rows": len(r[1]),
        },
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-budget run (same workload for this bench)")
    main(smoke=parser.parse_args().smoke)
