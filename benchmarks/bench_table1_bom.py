"""Bench T1 — regenerate Table 1: the Space Simulator bill of materials.

Prints the line items and the derived figures the caption quotes
($483,855 total, $1646/node average with $728 of network, 5.06 Gflop/s
peak per node).
"""

from repro.analysis import format_table
from repro.cluster import SPACE_SIMULATOR_BOM


def _build():
    bom = SPACE_SIMULATOR_BOM
    rows = [
        [item.quantity, item.unit_price if item.unit_price is not None else "", item.total, item.description]
        for item in bom.items
    ]
    rows.append(["", "", bom.total_cost, f"Total  (${bom.cost_per_node:.0f}/node, "
                 f"{bom.peak_mflops_per_node/1000:.2f} Gflop/s peak/node)"])
    return bom, rows


def test_table1_bom(benchmark):
    bom, rows = benchmark(_build)
    print()
    print(format_table(["Qty", "Price", "Ext.", "Description"], rows,
                       "Table 1: Space Simulator architecture and price (September 2002)"))
    print(f"network share per node: ${bom.network_cost_per_node:.0f} "
          f"({100*bom.network_fraction:.0f}%)")
    assert bom.total_cost == 483_855.0
    assert round(bom.cost_per_node) == 1646
    assert abs(bom.peak_gflops - 1487.6) < 1.0


#: Fleet registry metadata: this bench is already CI-cheap, so
#: smoke mode runs the full workload under the same record name.
FLEET = {"tags": ('table', 'hardware'), "smoke": "full"}


def main(smoke: bool = False) -> dict:
    from _harness import run_main

    return run_main(
        "table1_bom", _build,
        counters=lambda r: {
            "total_cost": r[0].total_cost,
            "cost_per_node": r[0].cost_per_node,
            "rows": len(r[1]),
        },
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-budget run (same workload for this bench)")
    main(smoke=parser.parse_args().smoke)
