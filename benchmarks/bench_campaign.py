"""Bench campaign — scenario-catalog engine throughput and dedupe.

Runs a mixed catalog (cluster checkpoint sweep plus, in the full
variant, a small cosmology box and an SPH collapse) through
:func:`repro.campaign.run_campaign` twice against the same store: the
first pass computes every unique shard, the second must be pure cache
hits.  The record's counters report the dedupe and cache hit rates the
perf gate tracks, and the optional ``shards`` field carries the
per-shard fingerprint/status/kind/seconds breakdown from the
operational store — the one bench exercising the schema's array
sub-record.

``--smoke`` restricts the catalog to closed-form cluster scenarios so
the CI perf-gate step finishes in well under a second.
"""

import argparse
import tempfile

from repro.campaign import (
    ClusterSpec,
    CosmologySpec,
    ResultStore,
    SupernovaSpec,
    run_campaign,
    sweep,
)


def catalog(smoke: bool) -> list:
    specs = [
        *sweep(ClusterSpec(work_hours=24.0), n_nodes=[64, 128, 294, 512]),
        ClusterSpec(work_hours=24.0, n_nodes=294),  # duplicate -> dedupe hit
    ]
    if not smoke:
        specs += [
            CosmologySpec(n_side=4, a_final=0.12),
            SupernovaSpec(n_particles=40, n_steps=1),
        ]
    return specs


def _run_twice(root: str, specs: list) -> dict:
    first = run_campaign(specs, root, workers=1)
    second = run_campaign(specs, root, workers=1)
    rows = ResultStore(root).load_shards()
    return {
        "first": first,
        "second": second,
        "shards": [
            {
                "fingerprint": r["fingerprint"],
                "status": r["status"],
                "kind": r["kind"],
                "seconds": max(0.0, float(r.get("seconds") or 0.0)),
            }
            for r in rows
        ],
    }


#: Reduced smoke: the smoke catalog drops the cosmology/supernova
#: specs, so it reports under a distinct record name to keep full-mode
#: baselines clean.
FLEET = {"tags": ("campaign",), "smoke": "reduced"}


def main(smoke: bool = False) -> dict:
    from _harness import run_main

    specs = catalog(smoke)
    with tempfile.TemporaryDirectory() as tmp:
        return run_main(
            "campaign_smoke" if smoke else "campaign",
            lambda: _run_twice(tmp, specs),
            params={"n_specs": len(specs), "workers": 1, "smoke": smoke},
            counters=lambda out: {
                "shards": out["first"].total_shards,
                "unique": out["first"].unique,
                "computed": out["first"].computed,
                "dedupe_hits": out["first"].dedupe_hits,
                "dedupe_hit_rate": out["first"].dedupe_hits / out["first"].total_shards,
                "cache_hits": out["second"].cache_hits,
                "rerun_hit_rate": out["second"].hit_rate,
                "failed": out["first"].failed + out["second"].failed,
            },
            shards=lambda out: out["shards"],
            notes="smoke catalog (closed-form cluster only)" if smoke
            else "full catalog (cluster + cosmology + supernova)",
        )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="cluster-only catalog for the CI perf gate")
    main(smoke=parser.parse_args().smoke)
