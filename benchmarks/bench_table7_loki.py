"""Bench T7 — regenerate Table 7: the Loki bill of materials (Sept 1996)."""

from repro.analysis import format_table
from repro.cluster import LOKI_BOM


def _build():
    rows = [
        [item.quantity, item.unit_price if item.unit_price is not None else "", item.total, item.description]
        for item in LOKI_BOM.items
    ]
    rows.append(["", "", LOKI_BOM.total_cost,
                 f"Total  (${LOKI_BOM.cost_per_node:.0f}/node, "
                 f"{LOKI_BOM.peak_mflops_per_node:.0f} Mflop/s peak/node)"])
    return rows


def test_table7_loki(benchmark):
    rows = benchmark(_build)
    print()
    print(format_table(["Qty", "Price", "Ext.", "Description"], rows,
                       "Table 7: Loki architecture and price (September 1996)"))
    assert LOKI_BOM.total_cost == 51_379.0
    assert round(LOKI_BOM.cost_per_node) == 3211


#: Fleet registry metadata: this bench is already CI-cheap, so
#: smoke mode runs the full workload under the same record name.
FLEET = {"tags": ('table', 'hardware'), "smoke": "full"}


def main(smoke: bool = False) -> dict:
    from _harness import run_main

    return run_main(
        "table7_loki", _build,
        counters=lambda rows: {"total_cost": LOKI_BOM.total_cost, "rows": len(rows)},
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-budget run (same workload for this bench)")
    main(smoke=parser.parse_args().smoke)
