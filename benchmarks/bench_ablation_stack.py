"""Ablation: message-passing stack and fabric under the treecode.

The application-level version of the paper's Linpack finding (switching
MPICH -> LAM bought 14%): run the identical parallel treecode under
cost models built from each Figure 2 stack, and with the inter-switch
trunk bottleneck removed, and compare virtual wall time.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import ParallelConfig, parallel_tree_accelerations
from repro.network import FIGURE2_STACKS
from repro.network.switch import FabricModel
from repro.simmpi import SpaceSimulatorCost


def _cloud(n=3000, seed=8):
    rng = np.random.default_rng(seed)
    r = rng.random(n) ** (1.0 / 3.0)
    d = rng.standard_normal((n, 3))
    d /= np.linalg.norm(d, axis=1, keepdims=True)
    return r[:, None] * d, np.full(n, 1.0 / n)


def _build():
    pos, m = _cloud()
    cfg = ParallelConfig(theta=0.8, eps=0.01, kernel_efficiency=0.27)
    rows = []
    for stack in FIGURE2_STACKS:
        cost = SpaceSimulatorCost(stack=stack)
        sim = parallel_tree_accelerations(pos, m, n_ranks=8, config=cfg, cost=cost).sim
        rows.append([stack.name, sim.elapsed * 1e3,
                     np.mean([s.blocked_s for s in sim.stats]) * 1e3,
                     sim.parallel_efficiency()])
    return rows


def test_ablation_message_stack(benchmark):
    rows = benchmark.pedantic(_build, rounds=1, iterations=1)
    print()
    print(format_table(
        ["stack", "virtual ms", "blocked ms/rank", "parallel eff"],
        rows, "Ablation: software stack under the parallel treecode (8 ranks)",
    ))
    times = {r[0]: r[1] for r in rows}
    # Raw TCP is the floor; mpich 1.2.5 the slowest MPI, as in Fig 2.
    assert times["TCP"] <= min(times.values()) + 1e-9
    assert times["mpich 1.2.5"] >= max(v for k, v in times.items())
    # The LAM -> mpich gap at the application level is a few percent to
    # tens of percent, same order as the paper's Linpack delta.
    gap = times["mpich 1.2.5"] / times["LAM 6.5.9 -O"]
    assert 1.0 < gap < 1.6


def main() -> dict:
    from _harness import run_main

    return run_main(
        "ablation_stack", _build,
        params={"n_ranks": 8, "stacks": [s.name for s in FIGURE2_STACKS]},
        counters=lambda rows: {"rows": len(rows)},
        virtual_seconds=lambda rows: sum(r[1] for r in rows) / 1e3,
    )


if __name__ == "__main__":
    main()
