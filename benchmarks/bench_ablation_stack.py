"""Ablation: message-passing stack and fabric under the treecode.

The application-level version of the paper's Linpack finding (switching
MPICH -> LAM bought 14%): run the identical parallel treecode under
cost models built from each Figure 2 stack, and with the inter-switch
trunk bottleneck removed, and compare virtual wall time.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import ParallelConfig, parallel_tree_accelerations
from repro.network import FIGURE2_STACKS
from repro.network.switch import FabricModel
from repro.simmpi import SpaceSimulatorCost


def _cloud(n=3000, seed=8):
    rng = np.random.default_rng(seed)
    r = rng.random(n) ** (1.0 / 3.0)
    d = rng.standard_normal((n, 3))
    d /= np.linalg.norm(d, axis=1, keepdims=True)
    return r[:, None] * d, np.full(n, 1.0 / n)


def _build(n=3000, n_ranks=8):
    pos, m = _cloud(n)
    cfg = ParallelConfig(theta=0.8, eps=0.01, kernel_efficiency=0.27)
    rows = []
    for stack in FIGURE2_STACKS:
        cost = SpaceSimulatorCost(stack=stack)
        sim = parallel_tree_accelerations(pos, m, n_ranks=n_ranks, config=cfg, cost=cost).sim
        rows.append([stack.name, sim.elapsed * 1e3,
                     np.mean([s.blocked_s for s in sim.stats]) * 1e3,
                     sim.parallel_efficiency()])
    return rows


def test_ablation_message_stack(benchmark):
    rows = benchmark.pedantic(_build, rounds=1, iterations=1)
    print()
    print(format_table(
        ["stack", "virtual ms", "blocked ms/rank", "parallel eff"],
        rows, "Ablation: software stack under the parallel treecode (8 ranks)",
    ))
    times = {r[0]: r[1] for r in rows}
    # Raw TCP is the floor; mpich 1.2.5 the slowest MPI, as in Fig 2.
    assert times["TCP"] <= min(times.values()) + 1e-9
    assert times["mpich 1.2.5"] >= max(v for k, v in times.items())
    # The LAM -> mpich gap at the application level is a few percent to
    # tens of percent, same order as the paper's Linpack delta.
    gap = times["mpich 1.2.5"] / times["LAM 6.5.9 -O"]
    assert 1.0 < gap < 1.6


#: Reduced smoke: one treecode force solve per Figure 2 stack costs
#: ~3 s at N=3000/P=8; smoke shrinks the cloud and rank count under a
#: distinct record name so full-mode baselines stay clean.
FLEET = {"tags": ("ablation", "network", "treecode"), "smoke": "reduced"}


def main(smoke: bool = False) -> dict:
    from _harness import run_main

    n, n_ranks = (1200, 4) if smoke else (3000, 8)
    return run_main(
        "ablation_stack_smoke" if smoke else "ablation_stack",
        lambda: _build(n=n, n_ranks=n_ranks),
        params={"n": n, "n_ranks": n_ranks,
                "stacks": [s.name for s in FIGURE2_STACKS]},
        counters=lambda rows: {"rows": len(rows)},
        virtual_seconds=lambda rows: sum(r[1] for r in rows) / 1e3,
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="smaller cloud and rank count under the "
                             "ablation_stack_smoke record name")
    main(smoke=parser.parse_args().smoke)
