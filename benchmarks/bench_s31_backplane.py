"""Bench S31 — regenerate the Section 3.1 switch-backplane measurements.

The hypercube-pairs probe: intra-module pairs are non-blocking; 16
streams crossing one module boundary total ~6000 Mbit/s; traffic
between the two chassis shares the 8 Gbit/s trunk, which "limits the
scaling of codes running on more than about 256 processors".
"""

from repro.analysis import format_table
from repro.network import (
    SPACE_SIMULATOR_FABRIC,
    cross_module_flows,
    effective_pairwise_mbits,
    hypercube_pairs,
    pair_flows,
)


def _build():
    fabric = SPACE_SIMULATOR_FABRIC
    cross16 = fabric.aggregate_mbits(cross_module_flows(fabric, 0, 1, n_streams=16))
    intra = fabric.flow_rates(pair_flows(fabric, hypercube_pairs(16, 0)))
    sweep = [(p, effective_pairwise_mbits(fabric, p)) for p in (16, 64, 128, 224, 256, 294)]
    return cross16, intra, sweep


def test_s31_backplane(benchmark):
    cross16, intra, sweep = benchmark(_build)
    print()
    print(f"intra-module pair rate: {min(intra):.0f} Mbit/s per flow (non-blocking)")
    print(f"16->16 cross-module aggregate: {cross16:.0f} Mbit/s (paper: ~6000)")
    print(format_table(
        ["procs", "worst hypercube pair Mbit/s"],
        [[p, r] for p, r in sweep],
        "Per-pair bandwidth under simultaneous hypercube traffic",
    ))
    assert min(intra) == 1000.0
    assert abs(cross16 - 6000.0) < 100.0
    by_p = dict(sweep)
    assert by_p[16] == 1000.0
    assert by_p[294] < 0.5 * by_p[224]  # the >256-processor cliff


#: Fleet registry metadata: this bench is already CI-cheap, so
#: smoke mode runs the full workload under the same record name.
FLEET = {"tags": ('section', 'network'), "smoke": "full"}


def main(smoke: bool = False) -> dict:
    from _harness import run_main

    return run_main(
        "s31_backplane", _build,
        params={"n_streams": 16},
        counters=lambda r: {
            "cross16_mbits": r[0],
            "sweep_points": len(r[2]),
        },
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-budget run (same workload for this bench)")
    main(smoke=parser.parse_args().smoke)
