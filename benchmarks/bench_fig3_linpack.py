"""Bench F3 — regenerate Figure 3: cluster Linpack and the TOP500 story.

Runs the real HPL kernel at laptop scale (residual-checked), then the
calibrated cluster model: LAM 757.1 Gflop/s (calibration), the MPICH
prediction against the measured 665.1, the TOP500 rank placements, and
the 63.9 cents/Mflop/s price/performance milestone.
"""

from repro.cluster import (
    SS_LINPACK_APR2003,
    SS_LINPACK_NOV2002,
    TOP500_JUN2003,
    TOP500_NOV2002,
    estimate_rank,
    price_per_mflops_cents,
)
from repro.linpack import (
    calibrated_space_simulator_model,
    predicted_mpich_gflops,
    run_hpl,
)


def _build():
    kernel = run_hpl(n=384, block=64)
    model = calibrated_space_simulator_model()
    lam = model.gflops()
    mpich = predicted_mpich_gflops()
    return kernel, model, lam, mpich


def test_fig3_linpack(benchmark):
    kernel, model, lam, mpich = benchmark.pedantic(_build, rounds=1, iterations=1)
    print()
    print(f"real HPL kernel: n={kernel.n} residual={kernel.residual:.2e} "
          f"passed={kernel.passed} ({kernel.gflops:.2f} Gflop/s on this host)")
    print(f"cluster N* = {model.problem_size():,}")
    print(f"LAM 6.5.9 + ATLAS 3.5 : {lam:7.1f} Gflop/s (paper: {SS_LINPACK_APR2003})")
    print(f"MPICH 1.2.x predicted : {mpich:7.1f} Gflop/s (paper: {SS_LINPACK_NOV2002})")
    print(f"rank on 20th TOP500 at 665.1: #{estimate_rank(665.1, TOP500_NOV2002)} (paper: #85)")
    print(f"rank on 21st TOP500 at 757.1: #{estimate_rank(757.1, TOP500_JUN2003)} (paper: #88)")
    print(f"757.1 would rank on 20th list: #{estimate_rank(757.1, TOP500_NOV2002)} (paper: #69)")
    print(f"price/performance: {price_per_mflops_cents():.1f} cents/Mflop/s (paper: 63.9)")
    assert kernel.passed
    assert abs(lam - SS_LINPACK_APR2003) < 0.1
    assert abs(mpich / SS_LINPACK_NOV2002 - 1.0) < 0.10
    assert price_per_mflops_cents() < 100.0


#: Fleet registry metadata: this bench is already CI-cheap, so
#: smoke mode runs the full workload under the same record name.
FLEET = {"tags": ('figure', 'linpack'), "smoke": "full"}


def main(smoke: bool = False) -> dict:
    from _harness import run_main

    return run_main(
        "fig3_linpack", _build,
        params={"n": 384, "block": 64},
        counters=lambda r: {
            "kernel_gflops": r[0].gflops,
            "kernel_residual": r[0].residual,
            "model_gflops": r[2],
            "mpich_gflops": r[3],
        },
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-budget run (same workload for this bench)")
    main(smoke=parser.parse_args().smoke)
