"""Bench S35 — regenerate the Section 3.5 SPEC CPU2000 results.

The modeled marks (790 int / 742 fp, with the Table 2 clock-scaling
columns) and the price/performance arithmetic: $1.20 per SPECfp at the
$888 node price, the HP rx2600 breakeven near $2500, and the July-2003
sub-$1.00 update.
"""

from repro.analysis import format_table
from repro.machine import TABLE2_CONFIGS
from repro.spec import (
    HP_RX2600_SPECFP,
    NODE_COST_NO_NETWORK,
    breakeven_price_vs,
    price_per_specfp,
    spec_scores,
)


def _build():
    table = {cfg.name: spec_scores(cfg) for cfg in TABLE2_CONFIGS}
    return table


def test_s35_spec(benchmark):
    table = benchmark(_build)
    print()
    print(format_table(
        ["config", "CINT2000", "CFP2000"],
        [[name, scores["CINT2000"], scores["CFP2000"]] for name, scores in table.items()],
        "SPEC CPU2000 model under the Table 2 clock configurations",
    ))
    print(f"$/SPECfp at ${NODE_COST_NO_NETWORK:.0f}/node: {price_per_specfp():.2f} (paper: $1.20)")
    print(f"HP rx2600 ({HP_RX2600_SPECFP:.0f} SPECfp) breakeven price: "
          f"${breakeven_price_vs():.0f} (paper: < $2500)")
    print(f"July 2003 ($200 cheaper node): ${price_per_specfp(688.0):.2f}/SPECfp "
          f"(paper: 'better than $1.00')")
    assert round(table["normal"]["CINT2000"]) == 790
    assert round(table["normal"]["CFP2000"]) == 742
    assert abs(price_per_specfp() - 1.20) < 0.01
    assert price_per_specfp(688.0) < 1.00


#: Fleet registry metadata: this bench is already CI-cheap, so
#: smoke mode runs the full workload under the same record name.
FLEET = {"tags": ('section', 'hardware'), "smoke": "full"}


def main(smoke: bool = False) -> dict:
    from _harness import run_main

    return run_main(
        "s35_spec", _build,
        counters=lambda table: {"configs": len(table)},
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-budget run (same workload for this bench)")
    main(smoke=parser.parse_args().smoke)
