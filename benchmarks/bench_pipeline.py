"""Bench pipeline — distribution validation of end-to-end observables.

Draws an ensemble of full pipeline scenarios (ICs → PM structure →
FoF halos → P(k) → SPH core collapse) through
:func:`repro.pipeline.run_ensemble`, then validates the *distribution*
of the emitted observables — moments and quantile envelopes against
the committed reference bands below — rather than any single run.
A second pass over the same store must be pure cache hits, so the
record's counters carry both the science moments and the campaign
hit rates the fleet gate tracks.

``--smoke`` shrinks the box to ``n_side=6`` (too coherent to form
halos, so the halo-count bands only apply in full mode) and the
ensemble to 8 scenarios, finishing in well under a second for the CI
fleet; full mode runs 12 scenarios of the halo-forming default box.
"""

import argparse
import tempfile

from repro.campaign import PipelineSpec, ResultStore
from repro.pipeline import Grid, Uniform, ensemble_statistics, run_ensemble

#: Committed reference envelopes: metric -> statistic -> (lo, hi).
#: Bands are ±~40% around the measured ensemble values (seeds below),
#: wide enough for cross-platform float drift, tight enough that a
#: physics regression (lost halos, dead neutrino burst, wrong growth)
#: trips them.
SMOKE_ENVELOPES = {
    "density_rms": {"mean": (0.09, 0.21), "q50": (0.09, 0.21)},
    "rms_displacement": {"mean": (0.004, 0.011)},
    "pk_total": {"mean": (2000.0, 6200.0)},
    "max_density": {"mean": (4.0, 26.0)},
    "time_to_peak": {"mean": (0.01, 0.12), "q50": (0.01, 0.12)},
    "peak_luminosity": {"min": (0.0, 1.0), "max": (1e-5, 0.1)},
}

FULL_ENVELOPES = {
    "density_rms": {"mean": (0.45, 0.95), "q50": (0.45, 0.95)},
    "rms_displacement": {"mean": (0.005, 0.014)},
    "n_halos": {"mean": (5.0, 35.0), "max": (8.0, 80.0)},
    "largest_halo": {"max": (4.0, 60.0)},
    "pk_total": {"mean": (8000.0, 30000.0)},
    "max_density": {"mean": (5.0, 30.0)},
    "time_to_peak": {"mean": (0.01, 0.10), "q50": (0.01, 0.10)},
    "peak_luminosity": {"max": (1e-5, 0.1)},
}


def ensemble_args(smoke: bool) -> tuple:
    if smoke:
        base = PipelineSpec(n_side=6, a_final=0.3, sn_particles=24, sn_steps=2)
        n = 8
    else:
        base = PipelineSpec()
        n = 12
    distributions = {
        "seed": Grid(values=(1, 2, 3, 4, 5, 6)),
        "omega0": Uniform(low=0.15, high=0.45),
    }
    return base, distributions, n


def check_envelopes(stats: dict, envelopes: dict) -> list:
    """Every committed (metric, statistic) band must hold; quantiles
    must be ordered.  Returns the violations (empty = pass)."""
    bad = []
    for metric, bands in envelopes.items():
        if metric not in stats:
            bad.append(f"{metric}: missing from ensemble statistics")
            continue
        entry = stats[metric]
        for stat, (lo, hi) in bands.items():
            v = entry[stat]
            if not lo <= v <= hi:
                bad.append(f"{metric}.{stat}={v:.6g} outside [{lo:.6g}, {hi:.6g}]")
    for metric, entry in stats.items():
        if not entry["q10"] <= entry["q50"] <= entry["q90"]:
            bad.append(f"{metric}: quantiles out of order")
    return bad


def _run(root: str, smoke: bool) -> dict:
    base, distributions, n = ensemble_args(smoke)
    first = run_ensemble(base, distributions, n, root, seed=7)
    second = run_ensemble(base, distributions, n, root, seed=7)
    stats = ensemble_statistics([r["summary"] for r in first.results])
    violations = check_envelopes(stats, SMOKE_ENVELOPES if smoke else FULL_ENVELOPES)
    if violations:
        raise AssertionError(
            "pipeline observable distributions left their envelopes:\n  "
            + "\n  ".join(violations)
        )
    rows = ResultStore(root).load_shards()
    return {
        "first": first.report,
        "second": second.report,
        "stats": stats,
        "shards": [
            {
                "fingerprint": r["fingerprint"],
                "status": r["status"],
                "kind": r["kind"],
                "seconds": max(0.0, float(r.get("seconds") or 0.0)),
            }
            for r in rows
        ],
    }


#: Reduced smoke: the smoke box is too small to form halos, so it
#: reports under a distinct record name to keep full-mode baselines
#: (which gate halo statistics) clean.
FLEET = {"tags": ("pipeline", "cosmology", "sph", "campaign"), "smoke": "reduced"}


def main(smoke: bool = False) -> dict:
    from _harness import run_main

    _, _, n = ensemble_args(smoke)
    with tempfile.TemporaryDirectory() as tmp:
        return run_main(
            "pipeline_smoke" if smoke else "pipeline",
            lambda: _run(tmp, smoke),
            params={"n_scenarios": n, "smoke": smoke},
            counters=lambda out: {
                "scenarios": out["first"].total_shards,
                "computed": out["first"].computed,
                "cache_hits": out["second"].cache_hits,
                "rerun_hit_rate": out["second"].hit_rate,
                "failed": out["first"].failed + out["second"].failed,
                "density_rms_mean": out["stats"]["density_rms"]["mean"],
                "density_rms_std": out["stats"]["density_rms"]["std"],
                "n_halos_mean": out["stats"]["n_halos"]["mean"],
                "largest_halo_max": out["stats"]["largest_halo"]["max"],
                "pk_total_mean": out["stats"]["pk_total"]["mean"],
                "time_to_peak_q50": out["stats"]["time_to_peak"]["q50"],
                "max_density_mean": out["stats"]["max_density"]["mean"],
            },
            shards=lambda out: out["shards"],
            notes="smoke ensemble (n_side=6, no halo bands)" if smoke
            else "full ensemble (halo-forming n_side=12 box)",
        )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="8-scenario small-box ensemble for the CI fleet")
    main(smoke=parser.parse_args().smoke)
