"""Bench F2 — regenerate Figure 2: NetPIPE curves for five stacks.

Prints the bandwidth-versus-message-size series and the caption's
headline numbers: TCP peaks at 779 Mbit/s; latencies are 79 us (TCP),
83 us (LAM), 87 us (mpich/mpich2); mpich-1.2.5 lags at large messages;
LAM -O beats plain LAM; mpich2-0.92 fixes the mpich large-message
problem.
"""

import numpy as np

from repro.analysis import format_table
from repro.network import FIGURE2_STACKS, summarize, sweep


def _build():
    sizes = np.array([2**i for i in range(0, 25, 2)])
    series = {s.name: [p.mbits_s for p in sweep(s, sizes)] for s in FIGURE2_STACKS}
    summaries = [summarize(s) for s in FIGURE2_STACKS]
    return sizes, series, summaries


def test_fig2_netpipe(benchmark):
    sizes, series, summaries = benchmark(_build)
    print()
    headers = ["bytes"] + list(series)
    rows = [[int(n)] + [series[name][i] for name in series] for i, n in enumerate(sizes)]
    print(format_table(headers, rows, "Figure 2: bandwidth (Mbit/s) vs message size"))
    print()
    print(format_table(
        ["stack", "latency us", "peak Mbit/s", "n1/2 bytes"],
        [[s.stack, s.latency_us, s.peak_mbits_s, s.half_bandwidth_bytes] for s in summaries],
    ))
    by_name = {s.stack: s for s in summaries}
    assert abs(by_name["TCP"].peak_mbits_s - 779.0) < 8.0
    assert abs(by_name["TCP"].latency_us - 79.0) < 1.0
    assert abs(by_name["LAM 6.5.9"].latency_us - 83.0) < 1.0
    assert abs(by_name["mpich 1.2.5"].latency_us - 87.0) < 1.0
    big = series["mpich 1.2.5"][-1]
    assert all(series[name][-1] > big for name in series if name != "mpich 1.2.5")


#: Fleet registry metadata: this bench is already CI-cheap, so
#: smoke mode runs the full workload under the same record name.
FLEET = {"tags": ('figure', 'network'), "smoke": "full"}


def main(smoke: bool = False) -> dict:
    from _harness import run_main

    return run_main(
        "fig2_netpipe", _build,
        params={"stacks": [s.name for s in FIGURE2_STACKS], "n_sizes": 13},
        counters=lambda r: {
            "series": len(r[1]),
            "peak_mbits_s": max(max(v) for v in r[1].values()),
        },
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-budget run (same workload for this bench)")
    main(smoke=parser.parse_args().smoke)
