"""Bench F6 — regenerate Figure 6: Morton curve and 2-D tree.

Left panel: the self-similar load-balancing curve — centrally
condensed 2-D points ordered along the Morton curve and cut into
equal-work processor domains.  Right panel: the adaptive tree over the
same distribution.  The bench emits the underlying data (curve order,
domain boundaries, cell statistics) and asserts the properties the
figure illustrates: curve locality, contiguous balanced domains, and
deeper tree cells where the particles concentrate.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import build_tree, decompose, morton_traversal_order_2d


def _points(n=3000, seed=42):
    rng = np.random.default_rng(seed)
    r = rng.random(n) ** 3
    ang = rng.random(n) * 2 * np.pi
    return 0.5 + 0.45 * np.column_stack([r * np.cos(ang), r * np.sin(ang)])


def _build():
    pts = _points()
    order = morton_traversal_order_2d(pts)
    curve = pts[order]
    jumps = np.linalg.norm(np.diff(curve, axis=0), axis=1)
    pos3d = np.column_stack([pts, np.full(pts.shape[0], 0.5)])
    dd = decompose(pos3d, n_pieces=8)
    tree = build_tree(pos3d, bucket_size=8)
    return pts, jumps, dd, tree


def test_fig6_morton(benchmark):
    pts, jumps, dd, tree = benchmark(_build)
    print()
    print(f"Morton curve over {pts.shape[0]} centrally condensed points:")
    print(f"  median inter-point jump along curve: {np.median(jumps):.4f} box units")
    print(f"  random-order jump for comparison   : "
          f"{np.linalg.norm(np.diff(pts, axis=0), axis=1).mean():.4f}")
    print(format_table(
        ["domain", "particles", "work share"],
        [[p, int(c), s] for p, (c, s) in enumerate(zip(dd.counts(), dd.work_shares()))],
        "Equal-work domains along the curve (8 processors)",
    ))
    levels, counts = np.unique(tree.level, return_counts=True)
    print(format_table(["tree level", "cells"], list(map(list, zip(levels, counts))),
                       "Adaptive tree over the condensed distribution"))
    # Curve locality.
    assert np.median(jumps) < 0.03
    # Domains are balanced and contiguous.
    assert np.all(np.abs(dd.work_shares() - 1.0) < 0.05)
    # The tree refines where particles concentrate: max level well
    # beyond the uniform-expectation log8(N/bucket).
    uniform_depth = np.log(pts.shape[0] / 8) / np.log(8)
    assert tree.level.max() > uniform_depth + 1


#: Fleet registry metadata: this bench is already CI-cheap, so
#: smoke mode runs the full workload under the same record name.
FLEET = {"tags": ('figure', 'treecode'), "smoke": "full"}


def main(smoke: bool = False) -> dict:
    import numpy as _np

    from _harness import run_main

    return run_main(
        "fig6_morton", _build,
        params={"n_pieces": 8, "bucket_size": 8},
        counters=lambda r: {
            "n_points": int(r[0].shape[0]),
            "median_jump": float(_np.median(r[1])),
            "n_cells": int(r[3].n_cells),
        },
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-budget run (same workload for this bench)")
    main(smoke=parser.parse_args().smoke)
