"""Bench T4 — regenerate Table 4: 256-processor class D NPB vs ASCI Q.

Unlike Table 3 (the calibration point), every number here is a
*prediction* of the calibrated models; the assertions check the shape
claims: every prediction within 2x, ASCI Q ahead on every benchmark,
and the paper's performance ordering preserved.
"""

from repro.analysis import format_table
from repro.nas import (
    Q_MEASURED_D256,
    SS_MEASURED_D256,
    asci_q_npb_model,
    space_simulator_npb_model,
)


def _build():
    ss = space_simulator_npb_model()
    q = asci_q_npb_model()
    rows = []
    for bench in SS_MEASURED_D256:
        rows.append([
            bench,
            ss.mops(bench, "D", 256),
            SS_MEASURED_D256[bench],
            ss.mops(bench, "D", 256) / SS_MEASURED_D256[bench],
            q.mops(bench, "D", 256),
            Q_MEASURED_D256[bench],
            q.mops(bench, "D", 256) / Q_MEASURED_D256[bench],
        ])
    return rows


def test_table4_npb_class_d_256(benchmark):
    rows = benchmark(_build)
    print()
    print(format_table(
        ["benchmark", "SS model", "SS paper", "SS ratio", "Q model", "Q paper", "Q ratio"],
        rows,
        "Table 4: 256-processor class D NPB (Mop/s) — pure prediction",
    ))
    for bench, ss_m, ss_p, ss_r, q_m, q_p, q_r in rows:
        assert 0.5 < ss_r < 2.0, bench
        assert 0.5 < q_r < 2.0, bench
        assert q_m > ss_m, bench  # Q wins every class D row, as in the paper
    ss_rank = sorted((r[0] for r in rows), key=lambda b: -dict((x[0], x[1]) for x in rows)[b])
    assert ss_rank == ["LU", "BT", "SP", "FT", "CG"]


#: Fleet registry metadata: this bench is already CI-cheap, so
#: smoke mode runs the full workload under the same record name.
FLEET = {"tags": ('table', 'npb'), "smoke": "full"}


def main(smoke: bool = False) -> dict:
    from _harness import run_main

    return run_main(
        "table4_npb_d256", _build,
        params={"klass": "D", "procs": 256},
        counters=lambda rows: {"rows": len(rows)},
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-budget run (same workload for this bench)")
    main(smoke=parser.parse_args().smoke)
