"""Ablation: quadrupole moments in the far-field expansion.

The HOT code carries quadrupoles (the 70-flop cell interaction); this
ablation zeroes them and measures the accuracy loss at fixed opening
angle — the justification for paying the extra moments instead of
tightening theta.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import build_tree, compute_forces, direct_accelerations, OpeningAngleMAC


def _cloud(n=1500, seed=9):
    rng = np.random.default_rng(seed)
    r = rng.random(n) ** 2
    d = rng.standard_normal((n, 3))
    d /= np.linalg.norm(d, axis=1, keepdims=True)
    return r[:, None] * d, np.full(n, 1.0 / n)


def _build():
    pos, m = _cloud()
    exact = direct_accelerations(pos, m, eps=0.02)
    rows = []
    for theta in (0.8, 0.6, 0.4):
        tree = build_tree(pos, m)
        with_q = compute_forces(tree, mac=OpeningAngleMAC(theta), eps=0.02)
        tree_mono = build_tree(pos, m)
        tree_mono.quad[:] = 0.0  # monopole-only ablation
        without_q = compute_forces(tree_mono, mac=OpeningAngleMAC(theta), eps=0.02)

        def median_err(res):
            num = np.linalg.norm(res.accelerations - exact.accelerations, axis=1)
            den = np.linalg.norm(exact.accelerations, axis=1) + 1e-30
            return float(np.median(num / den))

        e_q, e_m = median_err(with_q), median_err(without_q)
        rows.append([theta, e_q, e_m, e_m / e_q])
    return rows


def test_ablation_quadrupole(benchmark):
    rows = benchmark.pedantic(_build, rounds=1, iterations=1)
    print()
    print(format_table(
        ["theta", "median err (quad)", "median err (mono)", "mono/quad"],
        rows, "Ablation: quadrupole far field vs monopole only",
    ))
    for theta, e_q, e_m, ratio in rows:
        assert e_m > e_q, theta
    # At the production theta the quadrupole buys at least ~3x accuracy.
    mid = rows[1]
    assert mid[3] > 3.0


#: Fleet registry metadata: this bench is already CI-cheap, so
#: smoke mode runs the full workload under the same record name.
FLEET = {"tags": ('ablation', 'treecode'), "smoke": "full"}


def main(smoke: bool = False) -> dict:
    from _harness import run_main

    return run_main(
        "ablation_quadrupole", _build,
        params={"thetas": [0.8, 0.6, 0.4]},
        counters=lambda rows: {
            "rows": len(rows),
            "max_gain": max(r[3] for r in rows),
        },
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-budget run (same workload for this bench)")
    main(smoke=parser.parse_args().smoke)
