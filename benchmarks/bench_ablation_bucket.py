"""Ablation: leaf bucket size.

Small buckets mean a deeper tree (more cell interactions, shorter
direct lists); large buckets the reverse.  The sweet spot for a
vectorized inner loop sits at tens of particles per leaf — the reason
the original HOT (and this reproduction) default near 32.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import build_tree, tree_accelerations
from repro.machine.specs import FLOPS_PER_INTERACTION
from repro.core.traversal import FLOPS_PER_CELL_INTERACTION


def _cloud(n=2000, seed=6):
    rng = np.random.default_rng(seed)
    return rng.random((n, 3)), np.full(n, 1.0 / n)


def _build():
    pos, m = _cloud()
    rows = []
    for bucket in (4, 8, 16, 32, 64, 128):
        tree = build_tree(pos, m, bucket_size=bucket)
        res = tree_accelerations(pos, m, theta=0.6, eps=0.01, bucket_size=bucket)
        flops = res.counts.p2p * FLOPS_PER_INTERACTION + res.counts.p2c * FLOPS_PER_CELL_INTERACTION
        rows.append([bucket, tree.n_cells, res.counts.p2p, res.counts.p2c, flops / 1e6])
    return rows


def test_ablation_bucket_size(benchmark):
    rows = benchmark.pedantic(_build, rounds=1, iterations=1)
    print()
    print(format_table(
        ["bucket", "cells", "p2p", "p2c", "Mflops"],
        rows, "Ablation: leaf bucket size",
    ))
    buckets = [r[0] for r in rows]
    cells = [r[1] for r in rows]
    p2p = [r[2] for r in rows]
    p2c = [r[3] for r in rows]
    # Structural monotonicity: bigger buckets -> fewer cells, more
    # direct work, fewer cell interactions.
    assert all(a >= b for a, b in zip(cells, cells[1:]))
    assert all(a <= b * 1.05 for a, b in zip(p2p, p2p[1:]))
    assert all(a >= b for a, b in zip(p2c, p2c[1:]))
    # Large buckets waste flops on direct work: the pure-flop count at
    # bucket 64 exceeds the small-bucket regime.  (Real machines add a
    # per-group overhead that pushes the wall-clock optimum up toward
    # ~32, which is why the defaults sit there.)
    flops = [r[4] for r in rows]
    assert flops[buckets.index(64)] > 1.5 * flops[buckets.index(8)]


#: Fleet registry metadata: this bench is already CI-cheap, so
#: smoke mode runs the full workload under the same record name.
FLEET = {"tags": ('ablation', 'treecode'), "smoke": "full"}


def main(smoke: bool = False) -> dict:
    from _harness import run_main

    return run_main(
        "ablation_bucket", _build,
        params={"buckets": [4, 8, 16, 32, 64, 128]},
        counters=lambda rows: {
            "rows": len(rows),
            "min_mflops": min(r[4] for r in rows),
        },
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-budget run (same workload for this bench)")
    main(smoke=parser.parse_args().smoke)
