"""Bench wallclock — end-to-end parallel run time, bucket-attributed.

Three legs of the same :func:`repro.core.parallel_nbody_run` problem:

1. **reference** — the kept per-group evaluator on the serial numpy
   backend (the pre-batching configuration, still selectable via
   ``ParallelConfig(eval="pergroup")``);
2. **optimized** — the CSR-pooled batched evaluator on the
   ``multiprocess`` backend, run under the wall-clock profiler so the
   record carries the kernel/engine/comm/serialization/other share of
   every elapsed second;
3. **check** — batched on serial numpy, to assert the multiprocess leg
   is *bit-identical* to serial before any speedup is reported.

The headline counters are ``wall_reference_s``, ``wall_optimized_s``,
and their ratio ``speedup``, plus one ``bucket_*_share`` counter per
attribution bucket and the two invariants the wallclock layer promises
(``bit_identical``, ``partition_exact``) recorded as 0/1 gates.
``params`` records ``cpu_count`` and the worker count so a speedup
measured on a one-core host is read as what it is: the multiprocess
backend falls back inline there, and the gain is the batched evaluator.

``--smoke`` shrinks N so the CI perf-gate step finishes in seconds; it
reports under the distinct record name ``wallclock_smoke``.
"""

import argparse
import os
import time

import numpy as np

from repro.core import ParallelConfig, parallel_nbody_run
from repro.core.backend_wall import WallBackend
from repro.core.procpool import MultiprocessBackend, resolve_pool_workers
from repro.obs import wallclock as wc

#: Reduced smoke: a much smaller N than the full bench, so it reports
#: under a distinct record name to keep full-mode baselines clean.
FLEET = {"tags": ("wallclock", "parallel", "backend"), "smoke": "reduced"}


def _problem(n: int, seed: int):
    rng = np.random.default_rng(seed)
    r = rng.random(n) ** (2.0 / 3.0)
    d = rng.standard_normal((n, 3))
    d /= np.linalg.norm(d, axis=1, keepdims=True)
    return r[:, None] * d, np.full(n, 1.0 / n)


def _leg(pos, m, ranks, steps, config):
    t0 = time.perf_counter()
    res = parallel_nbody_run(pos, m, n_ranks=ranks, n_steps=steps,
                             dt=1e-3, config=config)
    return time.perf_counter() - t0, res


def _measure(n: int, ranks: int, steps: int, seed: int) -> dict:
    pos, m = _problem(n, seed)
    theta, eps = 0.7, 0.02

    ref_s, ref = _leg(pos, m, ranks, steps,
                      ParallelConfig(theta=theta, eps=eps, eval="pergroup"))

    mp = MultiprocessBackend()
    try:
        with wc.profile() as prof:
            opt_s, opt = _leg(
                pos, m, ranks, steps,
                ParallelConfig(theta=theta, eps=eps, eval="batched",
                               backend=WallBackend(mp)))
    finally:
        mp.close()
    report = prof.report()

    chk_s, chk = _leg(pos, m, ranks, steps,
                      ParallelConfig(theta=theta, eps=eps, eval="batched"))

    bit_identical = (
        np.array_equal(opt.positions, chk.positions)
        and np.array_equal(opt.velocities, chk.velocities)
        and all(np.array_equal(a, b) for a, b in
                zip(opt.step_accelerations, chk.step_accelerations))
    )
    if not bit_identical:
        raise AssertionError(
            "multiprocess batched run diverged from serial batched run")
    partition_exact = sum(report.buckets.values()) == report.elapsed
    if not partition_exact:
        raise AssertionError("wallclock buckets do not partition elapsed")

    return {
        "reference_s": ref_s,
        "optimized_s": opt_s,
        "check_s": chk_s,
        "report": report,
        "virtual_seconds": opt.sim.elapsed,
        "bit_identical": bit_identical,
        "partition_exact": partition_exact,
    }


def main(smoke: bool = False) -> dict:
    from _harness import run_main

    n = 4000 if smoke else 100_000
    ranks, steps, seed = (4, 1, 11) if smoke else (8, 1, 11)

    def counters(out):
        rep = out["report"]
        c = {
            "wall_reference_s": out["reference_s"],
            "wall_optimized_s": out["optimized_s"],
            "wall_serial_batched_s": out["check_s"],
            "speedup": out["reference_s"] / out["optimized_s"],
            "bit_identical": float(out["bit_identical"]),
            "partition_exact": float(out["partition_exact"]),
        }
        for name in wc.BUCKETS:
            c[f"bucket_{name}_share"] = rep.fraction(name)
        return c

    return run_main(
        "wallclock_smoke" if smoke else "wallclock",
        lambda: _measure(n, ranks, steps, seed),
        params={
            "n": n, "ranks": ranks, "steps": steps, "seed": seed,
            "cpu_count": os.cpu_count() or 1,
            "workers": resolve_pool_workers(None),
        },
        counters=counters,
        virtual_seconds=lambda out: out["virtual_seconds"],
        notes=("pergroup/serial vs batched/multiprocess; reduced N"
               if smoke else
               "pergroup/serial vs batched/multiprocess at N=1e5"),
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced N for the CI perf gate")
    main(smoke=parser.parse_args().smoke)
