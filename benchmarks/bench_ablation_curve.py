"""Ablation: space-filling curve — Morton versus Hilbert.

Section 4.2 chooses Morton keys for their arithmetic convenience while
"maintaining as much spatial locality as possible".  This ablation
quantifies what the alternative buys: Hilbert ordering has strictly
unit-step adjacency (no diagonal block jumps), slightly tighter curve
locality, and a modestly smaller domain-decomposition surface — at the
cost of losing the parent/child bit arithmetic the whole hashed-tree
design rests on.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import BoundingBox, keys_from_positions
from repro.core.hilbert import (
    curve_jump_stats,
    decomposition_surface,
    hilbert_keys_from_positions,
)


def _clouds(n=3000):
    rng = np.random.default_rng(12)
    uniform = rng.random((n, 3))
    r = rng.random(n) ** 3
    d = rng.standard_normal((n, 3))
    d /= np.linalg.norm(d, axis=1, keepdims=True)
    clustered = 0.5 + 0.45 * r[:, None] * d
    return {"uniform": uniform, "clustered": clustered}


def _build(n=3000):
    box = BoundingBox(np.zeros(3), 1.0)
    rows = []
    for name, pos in _clouds(n).items():
        orders = {
            "Morton": np.argsort(keys_from_positions(pos, box)),
            "Hilbert": np.argsort(hilbert_keys_from_positions(pos, box)),
            "random": np.random.default_rng(0).permutation(pos.shape[0]),
        }
        for curve, order in orders.items():
            med, mx = curve_jump_stats(pos, order)
            cross = decomposition_surface(pos, order, 8, radius=0.05)
            rows.append([name, curve, med, mx, cross])
    return rows


def test_ablation_curve(benchmark):
    rows = benchmark.pedantic(_build, rounds=1, iterations=1)
    print()
    print(format_table(
        ["distribution", "ordering", "median jump", "max jump", "split pairs"],
        rows, "Ablation: space-filling curve locality (8-way decomposition)",
    ))
    by = {(r[0], r[1]): r for r in rows}
    for dist in ("uniform", "clustered"):
        morton, hilbert, rand = by[(dist, "Morton")], by[(dist, "Hilbert")], by[(dist, "random")]
        # Hilbert never jumps as far as Morton's worst diagonal.
        assert hilbert[3] < morton[3], dist
        # Both curves have far tighter typical jumps than random order.
        assert morton[2] < 0.3 * rand[2], dist
        assert hilbert[2] < 0.3 * rand[2], dist
    # Decomposition surface: meaningful where the interaction radius is
    # small against the local density (the uniform cloud); in the
    # clustered core at this radius nearly every pair is a neighbor and
    # no ordering can help — which the numbers show.
    morton, hilbert, rand = by[("uniform", "Morton")], by[("uniform", "Hilbert")], by[("uniform", "random")]
    assert morton[4] < 0.2 * rand[4]
    assert hilbert[4] < 0.2 * rand[4]
    assert hilbert[4] <= 1.2 * morton[4]


#: Reduced smoke: the 3000-point decomposition-surface scan costs ~3 s
#: (pairwise radius counts); smoke shrinks the clouds under a distinct
#: record name so full-mode baselines stay clean.
FLEET = {"tags": ("ablation", "treecode"), "smoke": "reduced"}


def main(smoke: bool = False) -> dict:
    from _harness import run_main

    n = 1200 if smoke else 3000
    return run_main(
        "ablation_curve_smoke" if smoke else "ablation_curve",
        lambda: _build(n=n),
        params={"n": n, "n_pieces": 8, "radius": 0.05},
        counters=lambda rows: {"rows": len(rows)},
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="smaller clouds under the ablation_curve_smoke "
                             "record name")
    main(smoke=parser.parse_args().smoke)
