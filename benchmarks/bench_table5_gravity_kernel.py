"""Bench T5 — regenerate Table 5: the gravity micro-kernel survey.

Three parts: (1) run both kernel variants for real on this host (libm
sqrt versus Karp's add/multiply-only reciprocal square root), verify
they agree numerically, and report this machine's Mflop/s under the
paper's 38-flop accounting; (2) print the paper's eleven-processor
survey with the derived micro-architecture interpretation (effective
flops/cycle, implied sqrt+divide latency); (3) check the survey's
qualitative claims — Karp wins big exactly where hardware sqrt is slow.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import interaction_kernel, measure_kernel_mflops
from repro.machine import TABLE5_PROCESSORS


def _build():
    rng = np.random.default_rng(0)
    sources = rng.standard_normal((2048, 3))
    masses = rng.random(2048)
    a1, p1 = interaction_kernel(np.zeros(3), sources, masses, eps=0.01, method="libm")
    a2, p2 = interaction_kernel(np.zeros(3), sources, masses, eps=0.01, method="karp")
    agreement = float(np.abs(a1 - a2).max() / np.abs(a1).max())
    host = {m: measure_kernel_mflops(m, n_sources=2048, repeats=10) for m in ("libm", "karp")}
    return agreement, host


def test_table5_gravity_kernel(benchmark):
    agreement, host = benchmark.pedantic(_build, rounds=1, iterations=1)
    print()
    rows = [
        [p.name, p.measured_libm_mflops, p.measured_karp_mflops,
         p.karp_speedup, p.effective_flops_per_cycle, p.implied_sqrtdiv_cycles]
        for p in TABLE5_PROCESSORS
    ]
    rows.append(["THIS HOST (numpy)", host["libm"].mflops, host["karp"].mflops,
                 host["karp"].mflops / host["libm"].mflops, "", ""])
    print(format_table(
        ["processor", "libm", "Karp", "Karp/libm", "eff flops/cyc", "sqrt+div cyc"],
        rows,
        "Table 5: gravitational micro-kernel Mflop/s (paper survey + this host)",
    ))
    print(f"libm/Karp numerical agreement: {agreement:.2e} relative")
    assert agreement < 1e-10
    assert host["libm"].mflops > 0 and host["karp"].mflops > 0
    # Qualitative claims of the survey:
    by_name = {p.name: p for p in TABLE5_PROCESSORS}
    assert by_name["533-MHz Alpha EV56"].karp_speedup > 3.0
    assert by_name["2530-MHz Intel P4 (icc)"].measured_libm_mflops > 1.4 * by_name[
        "2530-MHz Intel P4"].measured_libm_mflops


def main() -> dict:
    from _harness import run_main

    return run_main(
        "table5_gravity_kernel", _build,
        params={"n_sources": 2048, "repeats": 10},
        counters=lambda r: {
            "agreement": r[0],
            "libm_mflops": r[1]["libm"].mflops,
            "karp_mflops": r[1]["karp"].mflops,
        },
    )


if __name__ == "__main__":
    main()
