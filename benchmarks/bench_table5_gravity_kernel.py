"""Bench T5 — regenerate Table 5: the gravity micro-kernel survey.

Four parts: (1) run both kernel variants for real on this host (libm
sqrt versus Karp's add/multiply-only reciprocal square root), verify
they agree numerically, and report this machine's Mflop/s under the
paper's 38-flop accounting; (2) print the paper's eleven-processor
survey with the derived micro-architecture interpretation (effective
flops/cycle, implied sqrt+divide latency); (3) check the survey's
qualitative claims — Karp wins big exactly where hardware sqrt is slow;
(4) time the batched interaction-list evaluation against the
historical one-group-at-a-time tree walker at N=50k for every
registered kernel backend, asserting identical interaction counts.
Part (4) takes ~25 s; it runs under ``pytest --benchmark-only`` and as
``python bench_table5_gravity_kernel.py --speedup``.
"""

import time

import numpy as np

from repro.analysis import format_table
from repro.core import (
    available_backends,
    build_tree,
    compute_forces,
    compute_forces_reference,
    interaction_kernel,
    measure_kernel_mflops,
)
from repro.machine import TABLE5_PROCESSORS


def _build():
    rng = np.random.default_rng(0)
    sources = rng.standard_normal((2048, 3))
    masses = rng.random(2048)
    a1, p1 = interaction_kernel(np.zeros(3), sources, masses, eps=0.01, method="libm")
    a2, p2 = interaction_kernel(np.zeros(3), sources, masses, eps=0.01, method="karp")
    agreement = float(np.abs(a1 - a2).max() / np.abs(a1).max())
    host = {m: measure_kernel_mflops(m, n_sources=2048, repeats=10) for m in ("libm", "karp")}
    return agreement, host


def test_table5_gravity_kernel(benchmark):
    agreement, host = benchmark.pedantic(_build, rounds=1, iterations=1)
    print()
    rows = [
        [p.name, p.measured_libm_mflops, p.measured_karp_mflops,
         p.karp_speedup, p.effective_flops_per_cycle, p.implied_sqrtdiv_cycles]
        for p in TABLE5_PROCESSORS
    ]
    rows.append(["THIS HOST (numpy)", host["libm"].mflops, host["karp"].mflops,
                 host["karp"].mflops / host["libm"].mflops, "", ""])
    print(format_table(
        ["processor", "libm", "Karp", "Karp/libm", "eff flops/cyc", "sqrt+div cyc"],
        rows,
        "Table 5: gravitational micro-kernel Mflop/s (paper survey + this host)",
    ))
    print(f"libm/Karp numerical agreement: {agreement:.2e} relative")
    assert agreement < 1e-10
    assert host["libm"].mflops > 0 and host["karp"].mflops > 0
    # Qualitative claims of the survey:
    by_name = {p.name: p for p in TABLE5_PROCESSORS}
    assert by_name["533-MHz Alpha EV56"].karp_speedup > 3.0
    assert by_name["2530-MHz Intel P4 (icc)"].measured_libm_mflops > 1.4 * by_name[
        "2530-MHz Intel P4"].measured_libm_mflops


def _plummer(n, seed=0):
    rng = np.random.default_rng(seed)
    u = rng.random(n)
    r = np.clip(1.0 / np.sqrt(u ** (-2.0 / 3.0) - 1.0), None, 10.0)
    d = rng.standard_normal((n, 3))
    d /= np.linalg.norm(d, axis=1, keepdims=True)
    return r[:, None] * d, np.full(n, 1.0 / n)


def _speedup_build(n=50_000, theta=0.6, eps=0.01, bucket=32, repeats=2):
    """Batched evaluation vs the pre-batching walker at production N."""
    pos, m = _plummer(n)
    tree = build_tree(pos, m, bucket_size=bucket)

    t0 = time.perf_counter()
    ref = compute_forces_reference(tree, eps=eps)
    t_ref = time.perf_counter() - t0

    out = {"n": n, "reference_seconds": t_ref, "backends": {}}
    for backend in available_backends():
        best, res = np.inf, None
        for _ in range(repeats):
            t0 = time.perf_counter()
            res = compute_forces(tree, eps=eps, backend=backend)
            best = min(best, time.perf_counter() - t0)
        assert res.counts == ref.counts, backend
        maxdiff = float(np.abs(res.accelerations - ref.accelerations).max())
        out["backends"][backend] = {
            "seconds": best, "speedup": t_ref / best, "maxdiff": maxdiff,
        }
    return out


def test_batched_vs_walker_speedup(benchmark):
    r = benchmark.pedantic(_speedup_build, rounds=1, iterations=1)
    print()
    rows = [
        [b, r["reference_seconds"], s["seconds"], s["speedup"], s["maxdiff"]]
        for b, s in sorted(r["backends"].items())
    ]
    print(format_table(
        ["backend", "walker s", "batched s", "speedup", "max |da|"],
        rows,
        f"Batched interaction-list evaluation vs per-group walker, N={r['n']}",
    ))
    for b, s in r["backends"].items():
        assert s["maxdiff"] < 1e-10, b
    assert r["backends"]["numpy"]["speedup"] > 3.0


#: Already CI-cheap (micro-kernel timings); smoke == full.  The
#: heavyweight batched-speedup record stays behind --speedup and out of
#: the fleet catalog.
FLEET = {"tags": ("table", "kernel"), "smoke": "full"}


def main(smoke: bool = False) -> dict:
    from _harness import run_main

    return run_main(
        "table5_gravity_kernel", _build,
        params={"n_sources": 2048, "repeats": 10},
        counters=lambda r: {
            "agreement": r[0],
            "libm_mflops": r[1]["libm"].mflops,
            "karp_mflops": r[1]["karp"].mflops,
        },
    )


def speedup_main() -> dict:
    from _harness import run_main

    def counters(r):
        out = {"reference_seconds": r["reference_seconds"]}
        for b, s in r["backends"].items():
            out[f"{b}_seconds"] = s["seconds"]
            out[f"{b}_speedup"] = s["speedup"]
        return out

    return run_main(
        "table5_batched_speedup", _speedup_build,
        params={"n": 50_000, "theta": 0.6, "eps": 0.01, "bucket": 32},
        counters=counters,
    )


if __name__ == "__main__":
    import sys

    main(smoke="--smoke" in sys.argv)
    if "--speedup" in sys.argv:
        speedup_main()
