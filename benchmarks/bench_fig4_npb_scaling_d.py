"""Bench F4 — regenerate Figure 4: NPB class D scaling on the SS.

Prints total and per-processor Mop/s over the processor sweep.  The
paper's point: class D is big enough that "perfect scaling would be a
straight horizontal line" — per-proc rates stay near-flat out to 256.
"""

from repro.analysis import format_table
from repro.nas import space_simulator_npb_model

BENCHES = ("BT", "SP", "LU", "CG", "FT")
# 16..256 regenerate the paper's Figure 4; 512/1024/2560 extrapolate the
# same analytic model past the Space Simulator toward the PACS-CS-scale
# machines named in PAPERS.md (see EXPERIMENTS.md, "Scaling past the
# paper").  Paper-anchored assertions stay pinned to the 256 column.
PROCS = (16, 32, 64, 121, 256, 512, 1024, 2560)


def _build():
    ss = space_simulator_npb_model()
    total = {b: [ss.mops(b, "D", p) for p in PROCS] for b in BENCHES}
    per = {b: [ss.mops_per_proc(b, "D", p) for p in PROCS] for b in BENCHES}
    return total, per


def test_fig4_scaling_class_d(benchmark):
    total, per = benchmark(_build)
    print()
    print(format_table(
        ["procs"] + list(BENCHES),
        [[p] + [total[b][i] for b in BENCHES] for i, p in enumerate(PROCS)],
        "Figure 4 (left): class D total Mop/s",
    ))
    print(format_table(
        ["procs"] + list(BENCHES),
        [[p] + [per[b][i] for b in BENCHES] for i, p in enumerate(PROCS)],
        "Figure 4 (right): class D per-processor Mop/s",
    ))
    i256 = PROCS.index(256)
    for b in ("BT", "LU"):
        # Near-flat per-proc line: 256-proc rate within 35% of 16-proc.
        assert per[b][i256] > 0.65 * per[b][0], b
    # SP sags more — the paper's own Table 4 has it at 114.6 Mop/s per
    # processor at D/256, ~0.6 of its small-count rate.
    assert per["SP"][i256] > 0.5 * per["SP"][0]
    for b in ("BT", "SP", "LU"):
        assert total[b][i256] > total[b][0]  # totals keep growing
        # Past the paper the model crosses its calibration knee (the
        # per-proc rate steps down beyond 256), but class D stays big
        # enough that aggregate throughput keeps rising out to 2560.
        assert total[b][-1] > total[b][i256], b


#: Fleet registry metadata: this bench is already CI-cheap, so
#: smoke mode runs the full workload under the same record name.
FLEET = {"tags": ('figure', 'npb'), "smoke": "full"}


def main(smoke: bool = False) -> dict:
    from _harness import run_main

    return run_main(
        "fig4_npb_scaling_d", _build,
        params={"benches": list(BENCHES), "procs": list(PROCS)},
        counters=lambda r: {
            "curves": len(r[0]),
            "points": sum(len(v) for v in r[0].values()),
        },
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-budget run (same workload for this bench)")
    main(smoke=parser.parse_args().smoke)
