"""Bench F4 — regenerate Figure 4: NPB class D scaling on the SS.

Prints total and per-processor Mop/s over the processor sweep.  The
paper's point: class D is big enough that "perfect scaling would be a
straight horizontal line" — per-proc rates stay near-flat out to 256.
"""

from repro.analysis import format_table
from repro.nas import space_simulator_npb_model

BENCHES = ("BT", "SP", "LU", "CG", "FT")
PROCS = (16, 32, 64, 121, 256)


def _build():
    ss = space_simulator_npb_model()
    total = {b: [ss.mops(b, "D", p) for p in PROCS] for b in BENCHES}
    per = {b: [ss.mops_per_proc(b, "D", p) for p in PROCS] for b in BENCHES}
    return total, per


def test_fig4_scaling_class_d(benchmark):
    total, per = benchmark(_build)
    print()
    print(format_table(
        ["procs"] + list(BENCHES),
        [[p] + [total[b][i] for b in BENCHES] for i, p in enumerate(PROCS)],
        "Figure 4 (left): class D total Mop/s",
    ))
    print(format_table(
        ["procs"] + list(BENCHES),
        [[p] + [per[b][i] for b in BENCHES] for i, p in enumerate(PROCS)],
        "Figure 4 (right): class D per-processor Mop/s",
    ))
    for b in ("BT", "LU"):
        # Near-flat per-proc line: 256-proc rate within 35% of 16-proc.
        assert per[b][-1] > 0.65 * per[b][0], b
    # SP sags more — the paper's own Table 4 has it at 114.6 Mop/s per
    # processor at D/256, ~0.6 of its small-count rate.
    assert per["SP"][-1] > 0.5 * per["SP"][0]
    for b in ("BT", "SP", "LU"):
        assert total[b][-1] > total[b][0]  # totals keep growing


def main() -> dict:
    from _harness import run_main

    return run_main(
        "fig4_npb_scaling_d", _build,
        params={"benches": list(BENCHES), "procs": list(PROCS)},
        counters=lambda r: {
            "curves": len(r[0]),
            "points": sum(len(v) for v in r[0].values()),
        },
    )


if __name__ == "__main__":
    main()
