"""Ablation: the multipole acceptance criterion.

The treecode's fundamental accuracy-versus-cost dial.  Sweeps the
Barnes-Hut opening angle and compares against the Salmon-Warren-style
absolute-error MAC at matched cost, quantifying the paper's claim that
"properly used, these methods do not contribute significantly to the
total solution error".
"""

import numpy as np

from repro.analysis import format_table
from repro.core import (
    AbsoluteErrorMAC,
    direct_accelerations,
    tree_accelerations,
)


def _cloud(n=1500, seed=5):
    rng = np.random.default_rng(seed)
    r = rng.random(n) ** (1.0 / 3.0)
    d = rng.standard_normal((n, 3))
    d /= np.linalg.norm(d, axis=1, keepdims=True)
    return r[:, None] * d, np.full(n, 1.0 / n)


def _build():
    pos, m = _cloud()
    exact = direct_accelerations(pos, m, eps=0.02)
    a_scale = float(np.linalg.norm(exact.accelerations, axis=1).mean())
    rows = []
    for theta in (1.0, 0.8, 0.6, 0.4, 0.25):
        res = tree_accelerations(pos, m, theta=theta, eps=0.02)
        rel = np.linalg.norm(res.accelerations - exact.accelerations, axis=1) / (
            np.linalg.norm(exact.accelerations, axis=1) + 1e-30
        )
        total = res.counts.p2p + res.counts.p2c
        rows.append([f"BH theta={theta}", np.median(rel), np.percentile(rel, 99),
                     total, total / (pos.shape[0] ** 2)])
    budgets = (1e-2, 1e-3, 1e-4)
    for budget_frac in budgets:
        mac = AbsoluteErrorMAC(budget_frac * a_scale)
        res = tree_accelerations(pos, m, eps=0.02, mac=mac)
        rel = np.linalg.norm(res.accelerations - exact.accelerations, axis=1) / (
            np.linalg.norm(exact.accelerations, axis=1) + 1e-30
        )
        total = res.counts.p2p + res.counts.p2c
        rows.append([f"abs-err {budget_frac:g}", np.median(rel), np.percentile(rel, 99),
                     total, total / (pos.shape[0] ** 2)])
    return rows, budgets


def test_ablation_mac(benchmark):
    rows, budgets = benchmark.pedantic(_build, rounds=1, iterations=1)
    print()
    print(format_table(
        ["MAC", "median rel err", "99th pct err", "interactions", "frac of N^2"],
        rows, "Ablation: opening criterion vs accuracy vs cost",
    ))
    bh = [r for r in rows if r[0].startswith("BH")]
    # Tighter theta -> monotonically better accuracy and higher cost.
    errs = [r[1] for r in bh]
    costs = [r[3] for r in bh]
    assert all(a >= b for a, b in zip(errs, errs[1:]))
    assert all(a <= b for a, b in zip(costs, costs[1:]))
    # The absolute-error MAC honors its budget: the 99th-percentile
    # error stays an order of magnitude inside each requested bound
    # (the analytic criterion is conservative).
    abs_rows = [r for r in rows if r[0].startswith("abs")]
    for (name, med, e99, *_), budget in zip(abs_rows, budgets):
        assert e99 < budget, name
    # And tighter budgets yield tighter medians.
    meds = [r[1] for r in abs_rows]
    assert all(a >= b for a, b in zip(meds, meds[1:]))


#: Fleet registry metadata: this bench is already CI-cheap, so
#: smoke mode runs the full workload under the same record name.
FLEET = {"tags": ('ablation', 'treecode'), "smoke": "full"}


def main(smoke: bool = False) -> dict:
    from _harness import run_main

    return run_main(
        "ablation_mac", _build,
        params={"thetas": [1.0, 0.8, 0.6, 0.4, 0.25]},
        counters=lambda r: {"rows": len(r[0]), "budgets": len(r[1])},
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-budget run (same workload for this bench)")
    main(smoke=parser.parse_args().smoke)
