"""Dissipationless dark-halo collapse (Section 4.1, reference [18]).

The galactic-dynamics application of the treecode: a cold, slowly
rotating, quadrupolar-perturbed sphere collapses violently, relaxes
toward virial equilibrium, and settles into a centrally concentrated
triaxial halo whose angular momentum aligns with its minor axis — the
result of Warren, Quinn, Salmon & Zurek (1992), whose simulations this
code lineage was built for.

Run:  python examples/dark_halo_collapse.py
"""

import numpy as np

from repro.core import nbody_simulate
from repro.galaxy import (
    axis_ratios,
    cold_collapse_ics,
    density_profile,
    half_mass_radius,
    spin_alignment,
    virial_ratio,
)


def main() -> None:
    n = 400
    pos, vel, masses = cold_collapse_ics(n, spin=0.2, perturbation=0.25, seed=18)
    print(f"cold collapse: N = {n}, spin parameter 0.2, quadrupole perturbation 0.25")
    print(f"initial virial ratio 2T/|W| = {virial_ratio(pos, vel, masses):.3f} (cold)")
    print(f"initial half-mass radius    = {half_mass_radius(pos, masses):.3f}\n")

    integ = nbody_simulate(pos, vel, masses, dt=0.02, n_steps=0, theta=0.7, eps=0.05)
    print("   t     2T/|W|   r_half")
    for epoch in range(6):
        integ.run(0.02, 25)
        q = virial_ratio(integ.positions, integ.velocities, masses)
        rh = half_mass_radius(integ.positions, masses)
        print(f"  {integ.time:4.1f}   {q:6.3f}   {rh:6.3f}")

    print("\nfinal density profile (initial uniform value: 0.239):")
    centers, rho = density_profile(integ.positions, masses, n_bins=8)
    for c, r in zip(centers, rho):
        if r > 0:
            print(f"  r = {c:6.3f}   rho = {r:8.3f}")

    ba, ca, _ = axis_ratios(integ.positions, masses)
    align = spin_alignment(integ.positions, integ.velocities, masses)
    print(f"\nhalo shape: b/a = {ba:.2f}, c/a = {ca:.2f} (triaxial)")
    print(f"spin-minor-axis alignment |cos| = {align:.2f} "
          f"(ref [18]: J aligns with the minor axis)")


if __name__ == "__main__":
    main()
