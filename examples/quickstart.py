"""Quickstart: hashed oct-tree gravity in five minutes.

Builds a Plummer-sphere star cluster, computes gravitational
accelerations with the hashed oct-tree at several opening angles,
checks them against direct O(N^2) summation, and integrates a few
leapfrog steps with an energy audit — the minimal tour of the public
API (build_tree / tree_accelerations / direct_accelerations /
LeapfrogIntegrator).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    LeapfrogIntegrator,
    direct_accelerations,
    total_energy,
    tree_accelerations,
)


def plummer_sphere(n: int, seed: int = 42) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Positions, velocities, masses of an isotropic Plummer model."""
    rng = np.random.default_rng(seed)
    u = rng.random(n)
    r = 1.0 / np.sqrt(u ** (-2.0 / 3.0) - 1.0)
    r = np.clip(r, None, 8.0)
    direction = rng.standard_normal((n, 3))
    direction /= np.linalg.norm(direction, axis=1, keepdims=True)
    pos = r[:, None] * direction
    # Cold-ish start: small isotropic velocities.
    vel = 0.1 * rng.standard_normal((n, 3))
    masses = np.full(n, 1.0 / n)
    vel -= (masses[:, None] * vel).sum(axis=0) / masses.sum()
    return pos, vel, masses


def main() -> None:
    n = 2000
    eps = 0.05
    pos, vel, masses = plummer_sphere(n)
    print(f"Plummer sphere: N = {n}, softening eps = {eps}")

    print("\n-- force accuracy vs direct summation ------------------------")
    exact = direct_accelerations(pos, masses, eps=eps)
    for theta in (1.0, 0.8, 0.6, 0.4):
        approx = tree_accelerations(pos, masses, theta=theta, eps=eps)
        err = np.linalg.norm(approx.accelerations - exact.accelerations, axis=1)
        rel = err / np.linalg.norm(exact.accelerations, axis=1)
        total = approx.counts.p2p + approx.counts.p2c
        frac = total / (n * (n - 1))
        print(
            f"theta={theta:.1f}: median rel err {np.median(rel):.2e}, "
            f"99th pct {np.percentile(rel, 99):.2e}, "
            f"interactions {100 * frac:.1f}% of N^2"
        )

    print("\n-- a few dynamical steps with an energy audit -----------------")
    ke0, pe0, e0 = total_energy(pos, vel, masses, eps=eps)
    print(f"t=0.00  KE={ke0:+.4f}  PE={pe0:+.4f}  E={e0:+.5f}")

    def accel(x: np.ndarray) -> np.ndarray:
        return tree_accelerations(x, masses, theta=0.6, eps=eps).accelerations

    integ = LeapfrogIntegrator(accel, pos.copy(), vel.copy(), masses)
    dt = 0.02
    for step in range(1, 11):
        integ.step(dt)
        if step % 5 == 0:
            ke, pe, e = total_energy(integ.positions, integ.velocities, masses, eps=eps)
            print(f"t={integ.time:.2f}  KE={ke:+.4f}  PE={pe:+.4f}  E={e:+.5f} "
                  f"(drift {abs((e - e0) / e0):.2e})")
    print("\nDone.  See examples/cosmology_box.py and "
          "examples/supernova_collapse.py for the paper's applications.")


if __name__ == "__main__":
    main()
