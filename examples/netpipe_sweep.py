"""NetPIPE over the modeled gigabit stacks (Figure 2).

Sweeps message sizes over every Figure 2 messaging-stack model, prints
the bandwidth curves and summary metrics, and draws a log-log ASCII
rendition of the figure.

Run:  python examples/netpipe_sweep.py
"""

import numpy as np

from repro.analysis import format_table
from repro.network import FIGURE2_STACKS, summarize, sweep


def ascii_curves(series: dict, sizes: np.ndarray, height: int = 16, width: int = 64) -> str:
    """Log-x linear-y multi-series plot using one glyph per stack."""
    glyphs = "TLOM2"
    y_max = max(max(v) for v in series.values()) * 1.05
    grid = [[" "] * width for _ in range(height)]
    log_lo, log_hi = np.log10(sizes[0]), np.log10(sizes[-1])
    for g, (name, values) in zip(glyphs, series.items()):
        for n, v in zip(sizes, values):
            x = int((np.log10(n) - log_lo) / (log_hi - log_lo) * (width - 1))
            y = height - 1 - int(v / y_max * (height - 1))
            grid[y][x] = g
    lines = ["".join(row) for row in grid]
    legend = "   ".join(f"{g}={name}" for g, name in zip(glyphs, series))
    return "\n".join(lines) + f"\n{'-' * width}\n{legend}"


def main() -> None:
    sizes = np.array([2**i for i in range(0, 25)])
    series = {s.name: [p.mbits_s for p in sweep(s, sizes)] for s in FIGURE2_STACKS}
    print(format_table(
        ["stack", "latency us", "peak Mbit/s", "n1/2 bytes"],
        [[s.stack, round(s.latency_us, 1), round(s.peak_mbits_s, 1),
          int(s.half_bandwidth_bytes)] for s in map(summarize, FIGURE2_STACKS)],
        "NetPIPE summary (paper: TCP 779 Mbit/s at 79 us; LAM 83 us; mpich 87 us)",
    ))
    print("\nbandwidth vs message size (log x):\n")
    print(ascii_curves(series, sizes))


if __name__ == "__main__":
    main()
