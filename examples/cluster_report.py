"""The machine itself: procurement, power, reliability, economics.

Walks through everything Section 2 and Section 5 report about the
Space Simulator as a physical artifact: the bill of materials, the
power/cooling envelope, a Monte-Carlo replay of nine months of
component failures, the TOP500 placement, and the Moore's-law
price/performance ledger against Loki.

Run:  python examples/cluster_report.py
"""

import numpy as np

from repro.analysis import format_table
from repro.cluster import (
    LOKI_BOM,
    NBODY_LOKI_VS_SS,
    SPACE_SIMULATOR_BOM,
    SPACE_SIMULATOR_POWER,
    SS_COMPONENTS,
    TOP500_JUN2003,
    TOP500_NOV2002,
    FailureModel,
    disk_dollars_per_gb,
    estimate_rank,
    npb_improvement_ratios,
    price_per_mflops_cents,
    ram_dollars_per_mb,
)


def main() -> None:
    bom = SPACE_SIMULATOR_BOM
    print("=" * 70)
    print("THE SPACE SIMULATOR — cluster report")
    print("=" * 70)
    print(f"\n{bom.n_nodes} nodes, ${bom.total_cost:,.0f} total "
          f"(${bom.cost_per_node:,.0f}/node, {100 * bom.network_fraction:.0f}% network)")
    print(f"peak: {bom.peak_gflops:,.1f} Gflop/s "
          f"({bom.peak_mflops_per_node / 1000:.2f} Gflop/s per node)")

    print("\n-- power budget -----------------------------------------------")
    p = SPACE_SIMULATOR_POWER
    print(f"draw: {p.total_watts / 1000:.1f} kW against the {p.cooling_limit_watts / 1000:.0f} kW "
          f"cooling limit (headroom {p.cooling_headroom_watts / 1000:.1f} kW)")
    print(f"power strips: {p.nodes_per_strip()} nodes per 15 A strip, "
          f"{p.strips_needed()} strips")

    print("\n-- nine months of failures (Monte-Carlo vs observed) -----------")
    model = FailureModel()
    sims = [model.simulate(seed=s) for s in range(200)]
    rows = []
    for comp in SS_COMPONENTS:
        mc = float(np.mean([s.service_failures[comp.kind] for s in sims]))
        rows.append([comp.kind, comp.service_failures, f"{mc:.1f}",
                     f"{comp.mtbf_hours / 8766:.0f}" if np.isfinite(comp.mtbf_hours) else "inf"])
    print(format_table(["component", "observed", "simulated", "MTBF (years)"], rows))
    print(f"expected node availability: {model.expected_availability():.4f}")

    print("\n-- TOP500 placement ---------------------------------------------")
    print(f"Nov 2002 list at 665.1 Gflop/s: rank #{estimate_rank(665.1, TOP500_NOV2002)}")
    print(f"Jun 2003 list at 757.1 Gflop/s: rank #{estimate_rank(757.1, TOP500_JUN2003)}")
    print(f"price/performance: {price_per_mflops_cents():.1f} cents per Mflop/s "
          f"— the first TOP500 machine under $1")

    print("\n-- six years after Loki (Moore's law says 16x) -------------------")
    print(f"disk:   ${disk_dollars_per_gb(LOKI_BOM):.0f}/GB -> "
          f"${disk_dollars_per_gb(SPACE_SIMULATOR_BOM):.2f}/GB")
    print(f"memory: ${ram_dollars_per_mb(LOKI_BOM):.2f}/MB -> "
          f"${ram_dollars_per_mb(SPACE_SIMULATOR_BOM):.2f}/MB")
    print("NPB class B (16 procs):",
          ", ".join(f"{b} {r:.1f}x" for b, r in npb_improvement_ratios().items()))
    c = NBODY_LOKI_VS_SS
    print(f"N-body: {c.performance_ratio:.0f}x measured vs "
          f"{c.predicted_ratio():.0f}x Moore-predicted")


if __name__ == "__main__":
    main()
