"""A self-propagating vortex ring on the tree (Section 4.1, ref [9]).

The "generic design" in action: the same hashed oct-tree that computes
gravity evaluates regularized Biot-Savart induction for vortex
particles.  A discretized vortex ring translates along its axis at
close to Kelvin's classical speed while conserving circulation and
impulse.

Run:  python examples/vortex_ring.py
"""

import numpy as np

from repro.vortex import (
    ring_centroid,
    ring_radius,
    ring_speed_kelvin,
    vortex_ring,
)


def main() -> None:
    gamma, radius, core = 1.0, 1.0, 0.1
    ring = vortex_ring(96, gamma=gamma, radius=radius, sigma=core)
    kelvin = ring_speed_kelvin(gamma, radius, core)
    print(f"vortex ring: Gamma = {gamma}, R = {radius}, core = {core}, "
          f"{ring.n_particles} particles")
    print(f"Kelvin's thin-ring speed: U = {kelvin:.4f}\n")
    print(f"total circulation (closed loop): {np.abs(ring.total_circulation).max():.2e}")
    print(f"linear impulse I_z = {ring.linear_impulse[2]:.4f} "
          f"(analytic: {gamma * np.pi * radius**2:.4f})\n")

    dt = 0.1
    z_prev = ring_centroid(ring)[2]
    print("    t      z       R      measured U")
    print(f"  0.00  {z_prev:6.3f}  {ring_radius(ring):6.3f}        -")
    for step in range(1, 9):
        ring.step(dt, theta=0.4)
        z = ring_centroid(ring)[2]
        print(f"  {step * dt:4.2f}  {z:6.3f}  {ring_radius(ring):6.3f}   {(z - z_prev) / dt:9.4f}")
        z_prev = z
    print(f"\nKelvin prediction {kelvin:.4f}; the discrete algebraic-core ring "
          "travels a bit slower, as expected.")


if __name__ == "__main__":
    main()
