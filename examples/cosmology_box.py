"""Cosmological structure formation in a 125 Mpc/h box (Figure 7).

Generates Zel'dovich initial conditions from a sigma8-normalized BBKS
spectrum, evolves the box with the particle-mesh comoving integrator
to z = 0.3 (the epoch of the paper's Figure 7), finds halos with
friends-of-friends, measures the two-point correlation function, and
renders an ASCII projection of the large-scale structure.

Run:  python examples/cosmology_box.py
"""

import numpy as np

from repro.cosmology import (
    LCDM,
    ComovingSimulation,
    correlation_function,
    friends_of_friends,
    zeldovich_ics,
)


def ascii_density_map(positions: np.ndarray, width: int = 64, depth: float = 0.3) -> str:
    """Projected density of a slab, rendered as ASCII shades."""
    slab = positions[positions[:, 2] < depth]
    img, _, _ = np.histogram2d(
        slab[:, 0], slab[:, 1], bins=width, range=[[0, 1], [0, 1]]
    )
    shades = " .:-=+*#%@"
    norm = img / max(img.max(), 1)
    rows = []
    for row in norm.T[::-1]:
        rows.append("".join(shades[min(int(v ** 0.5 * (len(shades) - 1) + 0.5), 9)] for v in row))
    return "\n".join(rows)


def main() -> None:
    box = 125.0  # Mpc/h, the Figure 7 volume
    z_final = 0.3
    print(f"LCDM box: {box} Mpc/h, Om={LCDM.omega_m}, sigma8={LCDM.sigma8}")
    print(f"target epoch z = {z_final} "
          f"({LCDM.lookback_gyr(z_final):.1f} Gyr before the present)\n")

    ics = zeldovich_ics(n_side=20, box_mpc_h=box, a_start=0.1, seed=7, k_cut_fraction=0.8)
    print(f"{ics.n_particles} particles; initial rms displacement "
          f"{ics.rms_displacement() * box:.2f} Mpc/h at a = {ics.a_start}")

    sim = ComovingSimulation(ics)
    checkpoints = [0.2, 0.4, 1.0 / (1.0 + z_final)]
    print("\n   a      z     delta_rms")
    print(f"  {sim.a:.3f}  {1 / sim.a - 1:5.2f}  {sim.density_rms():8.3f}")
    for a in checkpoints:
        sim.run_to(a, dlna=0.05)
        print(f"  {sim.a:.3f}  {1 / sim.a - 1:5.2f}  {sim.density_rms():8.3f}")

    halos = friends_of_friends(sim.positions, min_members=8)
    print(f"\nFoF halos (b=0.2, >=8 particles): {halos.n_halos}")
    for i, h in enumerate(halos.halos[:5]):
        print(f"  halo {i}: {h.n_members:4d} particles at "
              f"({h.center[0] * box:6.1f}, {h.center[1] * box:6.1f}, {h.center[2] * box:6.1f}) Mpc/h")

    edges = np.array([0.02, 0.05, 0.1, 0.2, 0.35, 0.5])
    centers, xi = correlation_function(sim.positions, edges)
    print("\ntwo-point correlation function:")
    for c, x in zip(centers, xi):
        print(f"  r = {c * box:6.1f} Mpc/h   xi = {x:+.3f}")

    print(f"\nprojected structure at z = {1 / sim.a - 1:.2f} "
          f"(front {0.3 * box:.0f} Mpc/h slab):\n")
    print(ascii_density_map(sim.positions))


if __name__ == "__main__":
    main()
