"""The parallel hashed oct-tree on a simulated Beowulf cluster.

Runs the full HOT pipeline — parallel key sort, branch exchange,
tree traversal with asynchronous batched messages — on SimMPI with the
calibrated Space Simulator cost model, and reports how virtual wall
time, communication, and per-processor Mflop/s change with processor
count: the scaling story behind Table 6.

Run:  python examples/parallel_treecode_demo.py
      python examples/parallel_treecode_demo.py --trace out.json
          (writes a Chrome trace_event file of the 8-rank run; open it
          at https://ui.perfetto.dev or chrome://tracing)
      python examples/parallel_treecode_demo.py --analyze
          (wait-state classification, per-rank load balance, and the
          critical path of the 8-rank run — same analyses as
          ``python -m repro.obs analyze``, without the trace file)
"""

import argparse
import json

import numpy as np

from repro.analysis import format_table
from repro.core import ParallelConfig, direct_accelerations, parallel_tree_accelerations
from repro.obs import chrome_trace
from repro.simmpi import SpaceSimulatorCost, render_timeline


def cosmological_sphere(n: int, seed: int = 7) -> tuple[np.ndarray, np.ndarray]:
    """The paper's standard benchmark problem: a spherical region of a
    cosmological initial-condition particle set."""
    rng = np.random.default_rng(seed)
    r = rng.random(n) ** (1.0 / 3.0)
    d = rng.standard_normal((n, 3))
    d /= np.linalg.norm(d, axis=1, keepdims=True)
    return r[:, None] * d, np.full(n, 1.0 / n)


def write_trace(path: str, sim) -> None:
    """Export the run's spans as Chrome trace_event JSON, cross-checking
    the trace against the engine's own per-rank accounting first."""
    doc = chrome_trace(sim.observer, process_name="parallel treecode")
    for rank, stats in enumerate(sim.stats):
        traced = sum(
            span.duration
            for span in sim.observer.spans
            if span.track == rank and span.cat == "compute"
        )
        if abs(traced - stats.compute_s) > 1e-9:
            raise AssertionError(
                f"rank {rank}: traced compute {traced!r} != stats {stats.compute_s!r}"
            )
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
    print(f"\nwrote Chrome trace ({len(doc['traceEvents'])} events) to {path}; "
          f"per-rank compute totals match engine stats to 1e-9.")


def analyze(sim) -> None:
    """Wait-state, load-balance, and critical-path diagnosis of a run."""
    from repro.obs import critical_path, load_imbalance, wait_summary
    from repro.obs.analysis import (
        format_critical_path,
        format_imbalance,
        format_wait_summary,
    )

    print()
    print(format_wait_summary(wait_summary(sim.observer)))
    print()
    print(format_imbalance(load_imbalance(sim.observer, sim.elapsed)))
    print()
    print(format_critical_path(critical_path(sim.observer, sim.elapsed)))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", metavar="OUT.json", default=None,
                        help="write the 8-rank run as Chrome trace_event JSON")
    parser.add_argument("--analyze", action="store_true",
                        help="print wait-state / load-balance / critical-path "
                             "diagnosis of the 8-rank run")
    parser.add_argument("--backend", default=None,
                        help="kernel backend for the per-rank force kernels "
                             "(numpy; numba when installed; default: "
                             "REPRO_BACKEND or numpy)")
    parser.add_argument("--comm", default="async", choices=("async", "blocking"),
                        help="communication schedule: latency-hiding batched "
                             "requests (async, default) or the blocking "
                             "request-per-cell reference — forces are "
                             "bit-identical either way")
    opts = parser.parse_args()
    n = 4000
    pos, masses = cosmological_sphere(n)
    cfg = ParallelConfig(theta=0.8, eps=0.01, kernel_efficiency=1357.0 / 5060.0,
                         backend=opts.backend, comm=opts.comm)
    print(f"spherical cosmology problem: N = {n}, theta = {cfg.theta}, "
          f"comm = {cfg.comm}")

    exact = direct_accelerations(pos, masses, eps=cfg.eps)
    rows = []
    for ranks in (1, 2, 4, 8):
        result = parallel_tree_accelerations(
            pos, masses, n_ranks=ranks, config=cfg, cost=SpaceSimulatorCost()
        )
        err = np.linalg.norm(result.accelerations - exact.accelerations, axis=1)
        rel = float(np.median(err / np.linalg.norm(exact.accelerations, axis=1)))
        sim = result.sim
        rows.append([
            ranks,
            sim.elapsed * 1e3,
            sim.total_compute_s / ranks * 1e3,
            np.mean([s.blocked_s for s in sim.stats]) * 1e3,
            sim.total_bytes_sent / 1e6,
            result.mflops_per_proc,
            f"{rel:.1e}",
        ])
    print()
    print(format_table(
        ["ranks", "virtual ms", "compute ms/rank", "blocked ms/rank",
         "MB sent", "Mflops/proc", "median err"],
        rows,
        "Parallel treecode on the simulated Space Simulator",
    ))
    print("\nNote how communication wait grows with processor count while the\n"
          "median force error stays pinned at the MAC level — the balance the\n"
          "paper's Table 6 tracks across a decade of machines.  Re-run with\n"
          "--comm blocking to see what the latency-hiding layer buys.")

    final = parallel_tree_accelerations(
        pos, masses, n_ranks=8, config=cfg, cost=SpaceSimulatorCost()
    )
    print()
    print(render_timeline(final.sim.trace, final.sim.elapsed))
    if opts.analyze:
        analyze(final.sim)
    if opts.trace:
        write_trace(opts.trace, final.sim)


if __name__ == "__main__":
    main()
