"""Rotating core-collapse supernova (Section 4.4 / Figure 8).

Builds a rotating n=3 polytropic stellar core, removes part of its
pressure support (the collapse trigger), and evolves it with the full
coupled stack: tree gravity + SPH + the stiffening nuclear equation of
state + gray flux-limited-diffusion neutrino transport.  The core
collapses, bounces at nuclear density, and the angular-momentum
distribution develops the strong pole-equator asymmetry of Figure 8.

Run:  python examples/supernova_collapse.py
"""

import numpy as np

from repro.sph import (
    CollapseConfig,
    CollapseSimulation,
    add_rotation,
    angular_momentum_by_angle,
    cone_vs_equator_angular_momentum,
    polytrope_particles,
)


def main() -> None:
    n = 400
    pos, masses, u = polytrope_particles(n, seed=11)
    vel = add_rotation(pos, omega0=0.45, r0=0.25)
    cfg = CollapseConfig()
    print(f"rotating n=3 polytrope: {n} SPH particles, "
          f"Omega_0 = 0.45, nuclear density = {cfg.eos.rho_nuc} (code units)")
    print(f"pressure deficit triggering collapse: {cfg.pressure_deficit:.0%}\n")

    sim = CollapseSimulation(pos, vel, masses, u, cfg)
    print("  step     t      rho_max   L_nu")
    bounce_step = None
    for step in range(1, 201):
        sim.step()
        if step % 20 == 0 or (bounce_step is None and sim.history.bounced(cfg.eos.rho_nuc)):
            h = sim.history
            print(f"  {step:4d}  {sim.time:6.3f}  {h.central_density[-1]:9.2f}  "
                  f"{h.neutrino_luminosity[-1]:.2e}")
        if bounce_step is None and sim.history.bounced(cfg.eos.rho_nuc):
            bounce_step = step
            print(f"  >>> core bounce at t = {sim.time:.3f} "
                  f"(peak density {sim.history.max_density:.1f})")
        if bounce_step is not None and step > bounce_step + 15:
            break

    print("\nangular momentum vs polar angle (Figure 8 diagnostic):")
    centers, j = angular_momentum_by_angle(sim.positions, sim.velocities, masses)
    jmax = max(j.max(), 1e-30)
    for c, val in zip(centers, j):
        bar = "#" * int(40 * val / jmax)
        print(f"  {c:5.1f} deg  {val:.3e}  {bar}")
    l_cone, l_eq = cone_vs_equator_angular_momentum(sim.positions, sim.velocities, masses)
    print(f"\ntotal |L_z|: 15-degree polar cone = {l_cone:.3e}, "
          f"equatorial band = {l_eq:.3e}")
    print(f"equator/pole ratio: {l_eq / max(l_cone, 1e-30):.0f}x "
          f"(paper: about two orders of magnitude)")


if __name__ == "__main__":
    main()
