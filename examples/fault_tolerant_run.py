"""Surviving node crashes: the parallel treecode under fault injection.

Samples a failure schedule from the Section 2.1 component reliability
model, runs the SimMPI parallel treecode under it with checkpoint/
restart enabled, and shows that the recovered forces are bit-for-bit
identical to a fault-free run — the property that made the paper's
months-long production simulations possible on commodity hardware.

Run:  python examples/fault_tolerant_run.py
"""

import dataclasses
import shutil
import tempfile

import numpy as np

from repro.cluster.checkpoint import job_mtbf_hours, young_interval_seconds
from repro.core import ParallelConfig, parallel_tree_accelerations
from repro.machine.node import DiskSpec, SPACE_SIMULATOR_NODE
from repro.resilience import ResilienceConfig
from repro.simmpi import FaultEvent, FaultPlan, UniformCost


def main() -> None:
    rng = np.random.default_rng(2003)
    n, n_ranks = 3000, 8
    r = rng.random(n) ** (1.0 / 3.0)
    d = rng.standard_normal((n, 3))
    d /= np.linalg.norm(d, axis=1, keepdims=True)
    pos, masses = r[:, None] * d, np.full(n, 1.0 / n)

    cfg = ParallelConfig(theta=0.8, eps=0.01)
    cost = UniformCost(latency_s=20e-6, mbytes_s=150.0, mflops=800.0)
    # 2003-vintage IDE disks need ~12 ms per seek; give the checkpoint
    # path a modern disk so the dump commits within this short demo run.
    node = dataclasses.replace(
        SPACE_SIMULATOR_NODE, disk=DiskSpec(seek_ms=0.001, sustained_mbytes_s=1000.0)
    )

    state_bytes = pos.nbytes + masses.nbytes
    print(f"parallel treecode: N = {n}, {n_ranks} simulated ranks")
    print(f"job MTBF at {n_ranks} nodes (Section 2.1 rates): "
          f"{job_mtbf_hours(n_ranks):.0f} h")
    print(f"Young's checkpoint interval for this state size: "
          f"{young_interval_seconds(n_ranks, state_bytes / n_ranks):.0f} s")

    free = parallel_tree_accelerations(pos, masses, n_ranks=n_ranks, config=cfg, cost=cost)
    print(f"\nfault-free run: {free.sim.elapsed * 1e3:.1f} virtual ms")

    # Kill node 3 at 70% of the fault-free runtime — after the
    # post-exchange checkpoint has committed, before the answer exists.
    crash_t = 0.7 * free.sim.elapsed
    faults = FaultPlan([FaultEvent("crash", 3, crash_t)])
    ckpt_dir = tempfile.mkdtemp(prefix="ss-fault-demo-")
    try:
        faulty = parallel_tree_accelerations(
            pos, masses, n_ranks=n_ranks, config=cfg, cost=cost, faults=faults,
            resilience=ResilienceConfig(checkpoint_dir=ckpt_dir, restart_s=60.0, node=node),
        )
        res = faulty.resilience
        print(f"\ninjected crash: rank 3 at t = {crash_t * 1e3:.1f} ms")
        for f in res.failures:
            print(f"  attempt {f.attempt}: rank {f.rank} died "
                  f"{f.time_in_attempt_s * 1e3:.1f} ms in")
        print(f"attempts: {res.attempts}, checkpoints committed: {res.checkpoints}, "
              f"restored from epoch: {res.restored_from_epoch}")
        print(f"wall time with failures: {res.wall_s * 1e3:.1f} virtual ms "
              f"({res.lost_s * 1e3:.1f} ms lost to the crash)")

        identical = (np.array_equal(faulty.accelerations, free.accelerations)
                     and np.array_equal(faulty.potentials, free.potentials))
        print(f"\nrecovered forces identical to fault-free run, bit for bit: {identical}")
    finally:
        shutil.rmtree(ckpt_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
