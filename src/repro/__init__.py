"""repro — reproduction of "The Space Simulator" (Warren, Fryer & Goda, SC'03).

A production-quality Python library that rebuilds the paper's entire
stack: the hashed oct-tree N-body/SPH application codes (``repro.core``,
``repro.sph``, ``repro.cosmology``), a calibrated simulation of the
294-processor gigabit-ethernet Beowulf cluster itself (``repro.machine``,
``repro.network``, ``repro.simmpi``, ``repro.cluster``), and the full
benchmark suite used in the paper's evaluation (``repro.stream``,
``repro.linpack``, ``repro.nas``, ``repro.spec``).

See DESIGN.md for the system inventory and the per-experiment index, and
EXPERIMENTS.md for paper-versus-measured results for every table and
figure.
"""

__version__ = "1.0.0"

__all__ = [
    "machine",
    "network",
    "simmpi",
    "core",
    "stream",
    "linpack",
    "nas",
    "spec",
    "sph",
    "cosmology",
    "cluster",
    "analysis",
]
