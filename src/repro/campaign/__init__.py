"""repro.campaign — batch simulation-as-a-service.

The front door for sweeps: a *scenario spec* (cosmology realization,
supernova progenitor, cluster configuration) is one request, a JSONL
*catalog* of specs is one campaign, and :func:`run_campaign` shards
the catalog across an OS-process worker pool, dedupes identical work
by content-addressed fingerprint, resumes partial campaigns through
the two-phase checkpoint ledger, and finalizes a queryable
JSONL + sqlite result store.

Quickstart::

    from repro.campaign import ClusterSpec, run_campaign, sweep
    report = run_campaign(sweep(ClusterSpec(), n_nodes=[64, 128, 294]),
                          "campaign_out", workers=4)
    print(report.to_dict())

Or from the shell: ``python -m repro.campaign --help``.
"""

from .fingerprint import (
    canonical_json,
    canonical_json_bytes,
    scenario_fingerprint,
    scenario_fingerprint_hex,
)
from .runner import CampaignReport, run_campaign
from .spec import (
    SPEC_KINDS,
    BenchSpec,
    ClusterSpec,
    CosmologySpec,
    PipelineSpec,
    ScenarioSpec,
    SupernovaSpec,
    load_catalog,
    save_catalog,
    spec_from_dict,
    sweep,
)
from .store import SHARD_STATUSES, ResultStore
from .workers import WORKERS_ENV, execute_shard, resolve_workers

__all__ = [
    # specs / catalogs
    "ScenarioSpec",
    "CosmologySpec",
    "SupernovaSpec",
    "ClusterSpec",
    "BenchSpec",
    "PipelineSpec",
    "SPEC_KINDS",
    "spec_from_dict",
    "load_catalog",
    "save_catalog",
    "sweep",
    # fingerprints
    "canonical_json",
    "canonical_json_bytes",
    "scenario_fingerprint",
    "scenario_fingerprint_hex",
    # store
    "ResultStore",
    "SHARD_STATUSES",
    # execution
    "CampaignReport",
    "run_campaign",
    "WORKERS_ENV",
    "resolve_workers",
    "execute_shard",
]
