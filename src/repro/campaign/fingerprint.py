"""Content-addressed scenario fingerprints.

The campaign engine's dedupe, resume, and result store all key on one
identity: the fingerprint of a scenario spec.  It generalizes
:meth:`repro.core.cellserver.CellServer.branch_fingerprint` — the same
digest primitive (:func:`repro.core.cellserver.content_fingerprint`,
16-byte blake2b) applied to *canonical JSON* instead of particle
bytes.  Canonical means: keys sorted recursively, compact separators,
ASCII-only, no NaN/Infinity — so the digest depends on scenario
content alone, never on dict insertion order, interpreter hash
randomization, or which process computed it.  Two campaigns submitted
years apart address the same cache entry iff they describe the same
physics.

Fingerprints are exposed in two forms: raw 16-byte digests for
checkpoint ledgers (stored as uint8 arrays) and 32-char lowercase hex
for JSONL/sqlite rows and log lines.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from ..core.cellserver import content_fingerprint

__all__ = [
    "canonical_json",
    "canonical_json_bytes",
    "scenario_fingerprint",
    "scenario_fingerprint_hex",
]

#: Bump when the canonical encoding itself changes incompatibly; part
#: of the hashed content so old stores can never alias new scenarios.
ENCODING_VERSION = 1


def canonical_json(obj: Any) -> str:
    """The unique JSON encoding of ``obj`` used for fingerprinting.

    >>> canonical_json({"b": 1, "a": [1.5, "x"]})
    '{"a":[1.5,"x"],"b":1}'
    >>> canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})
    True
    """
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), ensure_ascii=True, allow_nan=False
    )


def canonical_json_bytes(obj: Any) -> bytes:
    return canonical_json(obj).encode("ascii")


def scenario_fingerprint(spec: "ScenarioSpec | Mapping") -> bytes:
    """16-byte content digest of a scenario spec (or its dict form)."""
    from .spec import as_spec

    d = as_spec(spec).to_dict()
    return content_fingerprint([
        b"repro.campaign.scenario/v%d:" % ENCODING_VERSION,
        canonical_json_bytes(d),
    ])


def scenario_fingerprint_hex(spec: "ScenarioSpec | Mapping") -> str:
    """The fingerprint as 32 lowercase hex chars (store/CLI form)."""
    return scenario_fingerprint(spec).hex()
