"""OS-process execution of campaign shards.

SimMPI simulates parallelism inside one interpreter; the campaign
layer is where this repo uses *real* cores.  Shards are independent by
construction (a spec is pure data, a result is pure content), so the
pool is :class:`repro.core.procpool.ProcPool` — no shared state,
results travel back by value, and the coordinator remains the only
process that ever writes the store or the checkpoint ledger.  A worker
therefore cannot corrupt a campaign: a task exception becomes a
``failed`` shard record inside :func:`execute_shard`, and a *dying*
worker (SIGKILL, OOM) is retried once in a rebuilt pool before it too
becomes an error record — never an exception out of the generator.

Worker count resolution, in priority order: explicit ``workers=``
kwarg, the ``REPRO_CAMPAIGN_WORKERS`` environment variable, serial.
``workers <= 1`` means run in-process with no executor at all — the
serial fallback is the reference implementation the differential suite
compares pools against.
"""

from __future__ import annotations

import os
import time
from typing import Iterable, Iterator, Mapping

from ..core.procpool import ProcPool
from .spec import spec_from_dict

__all__ = ["WORKERS_ENV", "resolve_workers", "execute_shard", "run_shards"]

WORKERS_ENV = "REPRO_CAMPAIGN_WORKERS"


def resolve_workers(workers: int | None = None) -> int:
    """Effective worker count (>= 1); see module docstring for order."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(f"{WORKERS_ENV} must be an integer, got {env!r}")
        else:
            workers = 1
    return max(1, int(workers))


def execute_shard(spec_dict: Mapping, throttle: float = 0.0) -> dict:
    """Run one shard; the unit of work a pool worker executes.

    Takes the spec in dict form (cheap to pickle, and identical to
    what the catalog file holds) and returns a self-describing record.
    Failures are *data*, not exceptions: a deterministic physics error
    must not kill the pool, it must become a ``failed`` shard row.
    ``throttle`` sleeps before computing — a pacing knob for crash
    drills and load tests; it cannot affect the result content.
    """
    if throttle > 0:
        time.sleep(throttle)
    t0 = time.perf_counter()
    try:
        spec = spec_from_dict(spec_dict)
        result = spec.run()
    except Exception as exc:  # noqa: BLE001 — error becomes shard data
        return {
            "kind": str(spec_dict.get("kind", "?")),
            "spec": dict(spec_dict),
            "error": f"{type(exc).__name__}: {exc}",
            "seconds": time.perf_counter() - t0,
        }
    return {
        "kind": spec.kind,
        "spec": spec.to_dict(),
        "result": result,
        "seconds": time.perf_counter() - t0,
    }


def run_shards(
    items: Iterable[tuple[str, Mapping]],
    *,
    workers: int = 1,
    throttle: float = 0.0,
) -> Iterator[tuple[str, dict]]:
    """Execute ``(fingerprint_hex, spec_dict)`` shards, yielding each
    ``(fingerprint_hex, record)`` as it completes.

    Serial (``workers <= 1``) yields in submission order; pooled yields
    in completion order.  Consumers must not rely on ordering — the
    runner checkpoints per completion and canonicalizes order at
    finalization, which is exactly what makes the two modes
    bit-identical at the store level.

    Pool-level failures (a worker killed hard enough to exhaust the
    retry) surface as :func:`execute_shard`-shaped error records, so a
    chaos event degrades to one failed shard row instead of aborting
    the campaign.
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        for fp, spec_dict in items:
            yield fp, execute_shard(spec_dict, throttle)
        return
    with ProcPool(workers=min(workers, len(items))) as pool:
        args_list = [(spec_dict, throttle) for _, spec_dict in items]
        for result in pool.imap_unordered(execute_shard, args_list):
            fp, spec_dict = items[result.index]
            if result.ok:
                yield fp, result.value
            else:
                yield fp, {
                    "kind": str(spec_dict.get("kind", "?")),
                    "spec": dict(spec_dict),
                    "error": result.error,
                    "seconds": 0.0,
                }
