"""Scenario specs: the request language of the campaign engine.

A campaign is a catalog of *scenario specs* — frozen dataclasses that
say exactly what to simulate and nothing about how.  Three kinds map
onto the paper's three workload families:

* :class:`CosmologySpec` — a Zel'dovich-seeded PM comoving run
  (Section 4.3), executed by
  :func:`repro.cosmology.simulation.run_campaign_scenario`;
* :class:`SupernovaSpec` — a rotating core-collapse progenitor
  (Section 4.4), executed by
  :func:`repro.sph.collapse.run_campaign_scenario`;
* :class:`ClusterSpec` — a cluster configuration evaluated under the
  Section 2.1 checkpoint economics, executed by
  :func:`repro.cluster.checkpoint.run_campaign_scenario`.

A fourth kind makes the benchmark suite itself campaign work:
:class:`BenchSpec` names one ``benchmarks/bench_*.py`` entry point
(plus its smoke/full parameterization) and is executed by
:func:`repro.obs.fleet.run_bench_scenario` — which is how the fleet
runner (`python -m repro.obs fleet`) inherits dedupe, crash-safe
resume, and the worker pool for free.

A fifth kind chains the workload families end to end:
:class:`PipelineSpec` parameterizes the full "supernovae to cosmology"
observable pipeline (ICs → structure formation → FoF halos → P(k) →
SPH core collapse) and is executed by
:func:`repro.pipeline.driver.run_campaign_scenario`, emitting the
typed products of :mod:`repro.pipeline.products`.

Every spec round-trips through plain JSON dicts (``to_dict`` /
:func:`spec_from_dict`), which is what makes scenarios
content-addressable: the canonical encoding of that dict *is* the
scenario's identity (see :mod:`repro.campaign.fingerprint`).  Specs
are pure data — ``run()`` dispatches to the owning subsystem's entry
point, and every entry point returns JSON scalars only, so results are
bit-comparable across processes and machines.

:func:`sweep` builds catalogs: the cartesian product of parameter
lists over a base spec, the campaign analogue of SNTD-style templated
batch jobs.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import os
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping

__all__ = [
    "ScenarioSpec",
    "CosmologySpec",
    "SupernovaSpec",
    "ClusterSpec",
    "BenchSpec",
    "PipelineSpec",
    "SPEC_KINDS",
    "spec_from_dict",
    "load_catalog",
    "save_catalog",
    "sweep",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """Base scenario: one unit of campaign work, pure data.

    Subclasses set ``kind`` (the registry key in :data:`SPEC_KINDS`)
    and implement :meth:`_entry_point`.  Frozen so a spec can be a dict
    key and so its fingerprint cannot drift after catalog admission.
    """

    kind = "abstract"

    def to_dict(self) -> dict:
        """JSON-ready dict carrying ``kind`` plus every parameter."""
        d = {"kind": self.kind}
        d.update(dataclasses.asdict(self))
        return d

    @classmethod
    def from_dict(cls, d: Mapping) -> "ScenarioSpec":
        params = {k: v for k, v in d.items() if k != "kind"}
        return cls(**params)

    @staticmethod
    def _entry_point() -> Callable[[Mapping], dict]:
        raise NotImplementedError

    def run(self) -> dict:
        """Execute the scenario; returns JSON scalars only."""
        params = self.to_dict()
        params.pop("kind")
        return self._entry_point()(params)


@dataclass(frozen=True)
class CosmologySpec(ScenarioSpec):
    """One LCDM PM-cosmology realization (Section 4.3 workload)."""

    kind = "cosmology"

    n_side: int = 4
    a_start: float = 0.05
    a_final: float = 0.2
    dlna: float = 0.05
    seed: int = 20031115
    box_mpc_h: float = 125.0
    h: float = 0.7
    omega_m: float = 0.3
    omega_l: float = 0.7
    omega_b: float = 0.045
    n_s: float = 1.0
    sigma8: float = 0.9

    def __post_init__(self) -> None:
        if self.n_side < 2:
            raise ValueError("n_side must be >= 2")
        if not 0 < self.a_start < self.a_final:
            raise ValueError("need 0 < a_start < a_final")
        if self.dlna <= 0:
            raise ValueError("dlna must be positive")

    @staticmethod
    def _entry_point():
        from ..cosmology.simulation import run_campaign_scenario

        return run_campaign_scenario


@dataclass(frozen=True)
class SupernovaSpec(ScenarioSpec):
    """One rotating core-collapse progenitor (Section 4.4 workload)."""

    kind = "supernova"

    n_particles: int = 48
    n_steps: int = 3
    n_poly: float = 3.0
    seed: int = 20031115
    omega0: float = 0.3
    r0: float = 0.3
    pressure_deficit: float = 0.55
    n_target_neighbors: int = 12
    with_neutrinos: bool = False

    def __post_init__(self) -> None:
        if self.n_particles < 8:
            raise ValueError("n_particles must be >= 8")
        if self.n_steps < 0:
            raise ValueError("n_steps must be non-negative")
        if not 0 < self.pressure_deficit <= 1:
            raise ValueError("pressure_deficit must be in (0, 1]")

    @staticmethod
    def _entry_point():
        from ..sph.collapse import run_campaign_scenario

        return run_campaign_scenario


@dataclass(frozen=True)
class ClusterSpec(ScenarioSpec):
    """One cluster configuration under checkpoint economics (Sec 2.1)."""

    kind = "cluster"

    n_nodes: int = 294
    work_hours: float = 24.0
    state_gb_per_node: float = 6.0
    restart_hours: float = 0.5

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.work_hours <= 0 or self.state_gb_per_node <= 0:
            raise ValueError("work_hours and state_gb_per_node must be positive")
        if self.restart_hours < 0:
            raise ValueError("restart_hours must be non-negative")

    @staticmethod
    def _entry_point():
        from ..cluster.checkpoint import run_campaign_scenario

        return run_campaign_scenario


@dataclass(frozen=True)
class BenchSpec(ScenarioSpec):
    """One ``benchmarks/bench_<bench>.py`` run as a campaign shard.

    ``bench`` is the module stem (``fig7_cosmology``), ``smoke``
    selects the CI-budget parameterization every bench must declare
    (see :func:`repro.obs.fleet.build_registry`).  The result is the
    bench's own schema-validated record, so a fleet campaign's store is
    a machine-readable performance study.
    """

    kind = "bench"

    bench: str = ""
    smoke: bool = True

    def __post_init__(self) -> None:
        import re

        if not re.fullmatch(r"[a-z0-9][a-z0-9_]*", self.bench or ""):
            raise ValueError(
                f"bench must be a bench module stem like 'fig7_cosmology', "
                f"got {self.bench!r}"
            )

    @staticmethod
    def _entry_point():
        from ..obs.fleet import run_bench_scenario

        return run_bench_scenario


@dataclass(frozen=True)
class PipelineSpec(ScenarioSpec):
    """One end-to-end pipeline scenario: ICs → structure → halos →
    P(k) → core collapse, in a single campaign shard.

    The cosmology half defaults to the cheapest box that actually
    forms FoF halos under Zel'dovich + PM (``n_side=12`` to ``a=0.77``
    — smaller lattices stay too coherent to shell-cross); the
    supernova half matches :class:`SupernovaSpec`'s small rotating
    progenitor, its seed chained from the upstream halo catalog (see
    :func:`repro.pipeline.stages.chain_seed`).  Executed by
    :func:`repro.pipeline.driver.run_campaign_scenario`; the result
    payload carries a flat ``summary`` plus the nested ``products``.

    >>> PipelineSpec().to_dict()["kind"]
    'pipeline'
    >>> PipelineSpec(n_side=8, a_final=0.3).n_side
    8
    """

    kind = "pipeline"

    # -- cosmology box (Fig-7 workload) ---------------------------------
    n_side: int = 12
    box_mpc_h: float = 125.0
    a_start: float = 0.1
    a_final: float = 0.77
    dlna: float = 0.1
    k_cut_fraction: float = 1.0
    seed: int = 20031115
    h: float = 0.7
    omega_m: float = 0.3
    omega_l: float = 0.7
    omega_b: float = 0.045
    n_s: float = 1.0
    sigma8: float = 0.9
    # -- halo catalog / power spectrum ----------------------------------
    linking_length: float = 0.25
    min_members: int = 2
    pk_bins: int = 6
    # -- supernova progenitor (Fig-8 workload) --------------------------
    sn_particles: int = 32
    sn_steps: int = 3
    n_poly: float = 3.0
    omega0: float = 0.3
    r0: float = 0.3
    pressure_deficit: float = 0.55
    n_target_neighbors: int = 12
    with_neutrinos: bool = True

    def __post_init__(self) -> None:
        if self.n_side < 4:
            raise ValueError("n_side must be >= 4 (the IC grid floor)")
        if not 0 < self.a_start < self.a_final:
            raise ValueError("need 0 < a_start < a_final")
        if self.dlna <= 0:
            raise ValueError("dlna must be positive")
        if not 0 < self.k_cut_fraction <= 1:
            raise ValueError("k_cut_fraction must be in (0, 1]")
        if self.linking_length <= 0 or self.min_members < 1:
            raise ValueError("need linking_length > 0 and min_members >= 1")
        if self.pk_bins < 2:
            raise ValueError("pk_bins must be >= 2")
        if self.sn_particles < 8:
            raise ValueError("sn_particles must be >= 8")
        if self.sn_steps < 1:
            raise ValueError("sn_steps must be >= 1")
        if not 0 < self.pressure_deficit <= 1:
            raise ValueError("pressure_deficit must be in (0, 1]")

    @staticmethod
    def _entry_point():
        from ..pipeline.driver import run_campaign_scenario

        return run_campaign_scenario


SPEC_KINDS: dict[str, type[ScenarioSpec]] = {
    cls.kind: cls
    for cls in (CosmologySpec, SupernovaSpec, ClusterSpec, BenchSpec, PipelineSpec)
}


def spec_from_dict(d: Mapping) -> ScenarioSpec:
    """Rebuild a spec from its JSON dict (inverse of ``to_dict``).

    Key order in ``d`` is irrelevant — identity is content, not
    encoding (the fingerprint property suite pins this).
    """
    kind = d.get("kind")
    if kind not in SPEC_KINDS:
        raise ValueError(f"unknown scenario kind {kind!r}; known: {sorted(SPEC_KINDS)}")
    return SPEC_KINDS[kind].from_dict(d)


def as_spec(obj: ScenarioSpec | Mapping) -> ScenarioSpec:
    """Coerce a spec object or its dict form to a spec object."""
    if isinstance(obj, ScenarioSpec):
        return obj
    return spec_from_dict(obj)


def load_catalog(path: str) -> list[ScenarioSpec]:
    """Read a JSONL catalog: one spec dict per line, blanks ignored."""
    specs: list[ScenarioSpec] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                specs.append(spec_from_dict(json.loads(line)))
            except (json.JSONDecodeError, TypeError, ValueError) as exc:
                raise ValueError(f"{path}:{lineno}: bad catalog line: {exc}") from exc
    return specs


def save_catalog(specs: Iterable[ScenarioSpec | Mapping], path: str) -> str:
    """Write a JSONL catalog atomically (temp file + rename)."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        for spec in specs:
            fh.write(json.dumps(as_spec(spec).to_dict(), sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


def sweep(base: ScenarioSpec, **grid: Iterable) -> Iterator[ScenarioSpec]:
    """Cartesian-product catalog builder.

    Yields one spec per combination of the keyword lists, applied over
    ``base`` with ``dataclasses.replace`` — so every yielded spec is
    validated by its ``__post_init__``.

    >>> list(sweep(ClusterSpec(), n_nodes=[64, 128]))[1].n_nodes
    128
    """
    names = sorted(grid)
    for combo in itertools.product(*(list(grid[name]) for name in names)):
        yield dataclasses.replace(base, **dict(zip(names, combo)))
