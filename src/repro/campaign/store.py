"""The campaign result store: queryable, append-only-in-spirit, split
by determinism.

One campaign directory holds two classes of data and never mixes them:

* ``results.jsonl`` — the *deterministic* product: one canonical JSON
  line per unique scenario (fingerprint, kind, spec, result), written
  atomically at campaign finalization in catalog order.  Two runs of
  the same catalog — serial or pooled, fresh or resumed — produce
  byte-identical files; the differential suite enforces it.
* ``shards.jsonl`` — the *operational* record: one line per catalog
  entry with status (``computed`` / ``dedupe`` / ``resumed`` /
  ``cached`` / ``failed``), wall seconds, and errors.  Timings are
  real, so this file is deliberately outside the bit-identity
  contract.

``index.sqlite`` is a disposable query accelerator rebuilt from
``results.jsonl`` whenever it is stale — JSONL stays the source of
truth, the way ``benchmarks/baseline.jsonl`` does for the perf gate.
``events.jsonl`` is a live append-only progress log for humans tailing
a running campaign; crash recovery never reads it (that is the
checkpoint ledger's job, see :mod:`repro.campaign.runner`).
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Any, Iterable, Mapping

from .fingerprint import canonical_json

__all__ = ["ResultStore", "SHARD_STATUSES"]

#: Every status a shard row may carry.
SHARD_STATUSES = ("computed", "dedupe", "resumed", "cached", "failed")

_RESULT_KEYS = ("fingerprint", "kind", "spec", "result")


class ResultStore:
    """Files-on-disk view of one campaign directory."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.results_path = os.path.join(root, "results.jsonl")
        self.shards_path = os.path.join(root, "shards.jsonl")
        self.events_path = os.path.join(root, "events.jsonl")
        self.db_path = os.path.join(root, "index.sqlite")

    # -- deterministic results ------------------------------------------
    @staticmethod
    def canonical_result_line(record: Mapping) -> str:
        """The byte-stable line for one unique scenario's result.

        Only the deterministic keys survive; operational fields the
        runner carries alongside (``seconds``) are stripped here so
        they can never leak into the bit-identity surface.
        """
        return canonical_json({k: record[k] for k in _RESULT_KEYS})

    def write_results(self, records: Iterable[Mapping]) -> str:
        """Atomically replace ``results.jsonl`` (temp + ``os.replace``)."""
        tmp = f"{self.results_path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            for record in records:
                fh.write(self.canonical_result_line(record) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.results_path)
        return self.results_path

    def load_results(self) -> dict[str, dict]:
        """Finalized results keyed by fingerprint hex ({} if none)."""
        out: dict[str, dict] = {}
        if not os.path.exists(self.results_path):
            return out
        with open(self.results_path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    record = json.loads(line)
                    out[record["fingerprint"]] = record
        return out

    # -- operational record ---------------------------------------------
    def write_shards(self, rows: Iterable[Mapping]) -> str:
        tmp = f"{self.shards_path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            for row in rows:
                fh.write(json.dumps(row, sort_keys=True) + "\n")
        os.replace(tmp, self.shards_path)
        return self.shards_path

    def load_shards(self) -> list[dict]:
        if not os.path.exists(self.shards_path):
            return []
        with open(self.shards_path) as fh:
            return [json.loads(line) for line in fh if line.strip()]

    def append_event(self, event: Mapping) -> None:
        """Best-effort progress line; a torn tail is acceptable here."""
        with open(self.events_path, "a") as fh:
            fh.write(json.dumps(event, sort_keys=True) + "\n")

    # -- sqlite query side ----------------------------------------------
    def _index_stale(self) -> bool:
        if not os.path.exists(self.db_path):
            return True
        if not os.path.exists(self.results_path):
            return False
        return os.path.getmtime(self.db_path) < os.path.getmtime(self.results_path)

    def build_index(self) -> str:
        """(Re)build ``index.sqlite`` from the JSONL source of truth."""
        tmp = f"{self.db_path}.tmp.{os.getpid()}"
        if os.path.exists(tmp):
            os.remove(tmp)
        con = sqlite3.connect(tmp)
        try:
            con.execute(
                "CREATE TABLE results ("
                " fingerprint TEXT PRIMARY KEY, kind TEXT NOT NULL,"
                " spec TEXT NOT NULL, result TEXT NOT NULL)"
            )
            con.execute(
                "CREATE TABLE shards ("
                " idx INTEGER PRIMARY KEY, fingerprint TEXT NOT NULL,"
                " kind TEXT NOT NULL, status TEXT NOT NULL,"
                " seconds REAL, error TEXT)"
            )
            con.execute("CREATE INDEX results_kind ON results(kind)")
            con.executemany(
                "INSERT INTO results VALUES (?, ?, ?, ?)",
                [
                    (r["fingerprint"], r["kind"],
                     canonical_json(r["spec"]), canonical_json(r["result"]))
                    for r in self.load_results().values()
                ],
            )
            con.executemany(
                "INSERT INTO shards VALUES (?, ?, ?, ?, ?, ?)",
                [
                    (row["index"], row["fingerprint"], row["kind"], row["status"],
                     row.get("seconds"), row.get("error"))
                    for row in self.load_shards()
                ],
            )
            con.commit()
        finally:
            con.close()
        os.replace(tmp, self.db_path)
        return self.db_path

    def query(self, kind: str | None = None, limit: int | None = None) -> list[dict]:
        """Results (spec + result decoded), optionally by kind.

        Served from sqlite; the index is rebuilt first when missing or
        older than ``results.jsonl``.
        """
        if self._index_stale():
            self.build_index()
        if not os.path.exists(self.db_path):
            return []
        sql = "SELECT fingerprint, kind, spec, result FROM results"
        args: list[Any] = []
        if kind is not None:
            sql += " WHERE kind = ?"
            args.append(kind)
        sql += " ORDER BY fingerprint"
        if limit is not None:
            sql += " LIMIT ?"
            args.append(int(limit))
        con = sqlite3.connect(self.db_path)
        try:
            rows = con.execute(sql, args).fetchall()
        finally:
            con.close()
        return [
            {"fingerprint": fp, "kind": k,
             "spec": json.loads(spec), "result": json.loads(result)}
            for fp, k, spec, result in rows
        ]

    def status(self) -> dict:
        """Shard-status tallies plus unique-result count."""
        shards = self.load_shards()
        counts = {status: 0 for status in SHARD_STATUSES}
        for row in shards:
            counts[row["status"]] = counts.get(row["status"], 0) + 1
        return {
            "results": len(self.load_results()),
            "shards": len(shards),
            "by_status": counts,
        }
