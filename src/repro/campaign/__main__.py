"""``python -m repro.campaign`` — the campaign service CLI.

Subcommands:

* ``example`` — emit a small mixed demo catalog (JSONL to stdout or
  ``--out``), the three-line quickstart's first line;
* ``run CATALOG --dir DIR`` — run or resume a campaign; prints the
  report as JSON.  ``--workers`` overrides ``REPRO_CAMPAIGN_WORKERS``;
  ``--throttle`` paces shards (crash drills / load tests);
* ``status DIR`` — shard tallies of a campaign directory;
* ``query DIR [--kind K] [--limit N]`` — result rows as JSON lines,
  served from the sqlite index.

The crash-recovery suite drives ``run`` as a real subprocess and
SIGKILLs it mid-campaign; everything it needs to resume afterwards is
in the campaign directory, never in this process.
"""

from __future__ import annotations

import argparse
import json
import sys

from .runner import run_campaign
from .spec import (
    ClusterSpec,
    CosmologySpec,
    PipelineSpec,
    SupernovaSpec,
    load_catalog,
    save_catalog,
    sweep,
)
from .store import ResultStore


def _cmd_example(args: argparse.Namespace) -> int:
    specs = [
        *sweep(ClusterSpec(work_hours=24.0), n_nodes=[64, 128, 294]),
        *sweep(CosmologySpec(n_side=4, a_final=0.15), seed=[1, 2]),
        SupernovaSpec(n_particles=40, n_steps=2),
        # one fast end-to-end pipeline scenario (ICs -> ... -> collapse)
        PipelineSpec(n_side=4, a_final=0.2, sn_particles=16, sn_steps=2,
                     with_neutrinos=False),
        ClusterSpec(n_nodes=294),  # duplicate of the sweep: a dedupe hit
    ]
    if args.out:
        save_catalog(specs, args.out)
    else:
        for spec in specs:
            print(json.dumps(spec.to_dict(), sort_keys=True))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    catalog = load_catalog(args.catalog)
    report = run_campaign(
        catalog,
        args.dir,
        workers=args.workers,
        throttle=args.throttle,
    )
    print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    return 1 if report.failed else 0


def _cmd_status(args: argparse.Namespace) -> int:
    print(json.dumps(ResultStore(args.dir).status(), indent=2, sort_keys=True))
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    for row in ResultStore(args.dir).query(kind=args.kind, limit=args.limit):
        print(json.dumps(row, sort_keys=True))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Batch simulation-as-a-service over scenario catalogs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("example", help="emit a small demo catalog (JSONL)")
    p.add_argument("--out", help="write to this file instead of stdout")
    p.set_defaults(func=_cmd_example)

    p = sub.add_parser("run", help="run or resume a campaign")
    p.add_argument("catalog", help="JSONL catalog of scenario specs")
    p.add_argument("--dir", required=True, help="campaign directory (store + checkpoints)")
    p.add_argument("--workers", type=int, default=None,
                   help=f"process pool size (default: $REPRO_CAMPAIGN_WORKERS or serial)")
    p.add_argument("--throttle", type=float, default=0.0,
                   help="seconds to sleep before each shard (pacing/testing)")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("status", help="shard tallies of a campaign directory")
    p.add_argument("dir")
    p.set_defaults(func=_cmd_status)

    p = sub.add_parser("query", help="print result rows as JSON lines")
    p.add_argument("dir")
    p.add_argument("--kind", default=None, help="filter by scenario kind")
    p.add_argument("--limit", type=int, default=None)
    p.set_defaults(func=_cmd_query)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
