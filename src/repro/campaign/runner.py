"""The campaign runner: shard, dedupe, execute, checkpoint, finalize.

One call — :func:`run_campaign` — is the batch front door the ROADMAP
names: a request is a scenario spec, a campaign is a catalog of them,
and hot scenarios are cache hits.  The pipeline:

1. **Fingerprint** every catalog entry
   (:func:`repro.campaign.fingerprint.scenario_fingerprint_hex`).
   Duplicate specs collapse to one shard (*dedupe hits*).
2. **Reuse** everything already known: finalized results in the store
   (*cache hits*, cross-campaign) and the checkpoint ledger of a
   partially-run campaign (*resume hits*, intra-campaign).
3. **Execute** the remaining unique shards — serially or on an
   OS-process pool (:mod:`repro.campaign.workers`).
4. **Checkpoint** after every completion through the PR-1
   :class:`repro.resilience.checkpoint.CheckpointStore` two-phase
   commit: the full result ledger is written as epoch ``N``, then the
   COMMIT marker drops.  A coordinator killed mid-write leaves a torn
   epoch that resume ignores; a committed epoch guarantees every shard
   in it is never recomputed.  Old epochs are pruned so disk stays
   bounded.
5. **Finalize** the store: canonical ``results.jsonl`` in catalog
   order (bit-identical across serial/pooled/resumed runs),
   operational ``shards.jsonl``, and the sqlite query index.

Dedupe/cache/resume/compute tallies go both into the returned
:class:`CampaignReport` and into ``campaign.*`` counters on the
:mod:`repro.obs` recorder passed as ``observer``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from ..obs import NULL, Recorder
from ..resilience.checkpoint import CheckpointStore
from .fingerprint import scenario_fingerprint_hex
from .spec import ScenarioSpec, as_spec
from .store import ResultStore
from .workers import resolve_workers, run_shards

__all__ = ["CampaignReport", "run_campaign", "CHECKPOINT_SUBDIR"]

#: Checkpoint ledger location inside a campaign directory.
CHECKPOINT_SUBDIR = "checkpoints"


@dataclass
class CampaignReport:
    """What one :func:`run_campaign` call did, in numbers."""

    root: str
    total_shards: int = 0
    unique: int = 0
    computed: int = 0
    dedupe_hits: int = 0
    cache_hits: int = 0
    resume_hits: int = 0
    failed: int = 0
    seconds: float = 0.0
    workers: int = 1
    computed_fingerprints: list[str] = field(default_factory=list)
    errors: dict[str, str] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Fraction of catalog entries served without computing."""
        if self.total_shards == 0:
            return 0.0
        hits = self.dedupe_hits + self.cache_hits + self.resume_hits
        return hits / self.total_shards

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "total_shards": self.total_shards,
            "unique": self.unique,
            "computed": self.computed,
            "dedupe_hits": self.dedupe_hits,
            "cache_hits": self.cache_hits,
            "resume_hits": self.resume_hits,
            "failed": self.failed,
            "hit_rate": self.hit_rate,
            "seconds": self.seconds,
            "workers": self.workers,
            "errors": dict(self.errors),
        }


def _ledger_arrays(records: list[dict]) -> dict[str, np.ndarray]:
    """The ledger as snapshot arrays: one 16-byte digest row per record.

    The digest matrix makes the ledger self-checking — on load each
    record's spec is re-fingerprinted and compared — and satisfies the
    snapshot format's at-least-one-array rule.
    """
    if records:
        digests = np.array(
            [np.frombuffer(bytes.fromhex(r["fingerprint"]), dtype=np.uint8) for r in records]
        )
    else:
        digests = np.zeros((0, 16), dtype=np.uint8)
    return {"digests": digests}


def _load_ledger(ckpt: CheckpointStore) -> dict[str, dict]:
    """Committed ledger records by fingerprint ({} when no epoch).

    Records whose stored fingerprint no longer matches their spec's
    recomputed fingerprint (an :data:`~repro.campaign.fingerprint.ENCODING_VERSION`
    bump, or a corrupted ledger that slipped past checksums) are
    dropped — stale identities must recompute, never alias.
    """
    epoch = ckpt.latest_committed()
    if epoch is None:
        return {}
    snap = ckpt.load_rank(epoch, 0)
    out: dict[str, dict] = {}
    for record in snap.meta.get("records", []):
        if scenario_fingerprint_hex(record["spec"]) == record["fingerprint"]:
            out[record["fingerprint"]] = record
    return out


def run_campaign(
    catalog: Iterable[ScenarioSpec | Mapping],
    store_dir: str,
    *,
    workers: int | None = None,
    observer: Recorder = NULL,
    throttle: float = 0.0,
    checkpoint_keep: int = 3,
) -> CampaignReport:
    """Run (or resume) a campaign over ``catalog`` into ``store_dir``.

    ``workers`` follows :func:`repro.campaign.workers.resolve_workers`
    (kwarg, then ``REPRO_CAMPAIGN_WORKERS``, then serial).  Returns a
    :class:`CampaignReport`; raises ``RuntimeError`` if the process
    pool dies under the coordinator — completed shards are already
    committed, so rerunning the same call resumes instead of redoing.
    """
    t_wall = time.perf_counter()
    n_workers = resolve_workers(workers)
    specs = [as_spec(s) for s in catalog]
    fps = [scenario_fingerprint_hex(s) for s in specs]

    store = ResultStore(store_dir)
    ckpt = CheckpointStore(os.path.join(store_dir, CHECKPOINT_SUBDIR))

    report = CampaignReport(root=store_dir, total_shards=len(specs), workers=n_workers)
    t0 = observer.now()

    # Unique shards in catalog-first-occurrence order; later duplicates
    # are dedupe hits against the first.
    order: list[str] = []
    spec_by_fp: dict[str, ScenarioSpec] = {}
    for fp, spec in zip(fps, specs):
        if fp in spec_by_fp:
            report.dedupe_hits += 1
        else:
            order.append(fp)
            spec_by_fp[fp] = spec
    report.unique = len(order)

    # Known results: finalized store first, then the checkpoint ledger
    # of a partially-run campaign.
    cached = store.load_results()
    ledger = _load_ledger(ckpt)
    known: dict[str, dict] = {}
    status: dict[str, str] = {}
    for fp in order:
        if fp in cached:
            known[fp] = cached[fp]
            status[fp] = "cached"
            report.cache_hits += 1
        elif fp in ledger:
            known[fp] = ledger[fp]
            status[fp] = "resumed"
            report.resume_hits += 1

    pending = [(fp, spec_by_fp[fp].to_dict()) for fp in order if fp not in known]
    epoch = ckpt.latest_committed()
    epoch = 0 if epoch is None else epoch + 1
    seconds_by_fp: dict[str, float] = {}

    try:
        for fp, record in run_shards(pending, workers=n_workers, throttle=throttle):
            seconds = float(record.pop("seconds", 0.0))
            seconds_by_fp[fp] = seconds
            if "error" in record:
                status[fp] = "failed"
                report.failed += 1
                report.errors[fp] = record["error"]
                store.append_event({"event": "failed", "fingerprint": fp,
                                    "error": record["error"]})
                observer.count("campaign.failed")
                continue
            record["fingerprint"] = fp
            known[fp] = record
            status[fp] = "computed"
            report.computed += 1
            report.computed_fingerprints.append(fp)
            now = observer.now()
            observer.add_span(f"shard:{record['kind']}", max(0.0, now - seconds), now,
                              cat="campaign", args={"fingerprint": fp})
            observer.count("campaign.computed")
            store.append_event({"event": "computed", "fingerprint": fp,
                                "seconds": seconds})
            # Two-phase commit of the full ledger: every shard completed
            # so far survives any crash from here on.
            records = [known[f] for f in order if f in known]
            ckpt.write_rank(epoch, 0, _ledger_arrays(records), {"records": records})
            ckpt.commit(epoch, {"completed": len(records)})
            ckpt.prune(keep_last=checkpoint_keep)
            epoch += 1
    except BrokenProcessPool as exc:
        raise RuntimeError(
            f"campaign worker pool died ({exc}); completed shards are committed "
            f"under {ckpt.root} — rerun the same campaign to resume"
        ) from exc

    # Finalize: canonical results in catalog order, then the
    # operational shard rows, then the query index.
    store.write_results([known[fp] for fp in order if fp in known])
    rows = []
    seen: set[str] = set()
    for index, fp in enumerate(fps):
        row = {
            "index": index,
            "fingerprint": fp,
            "kind": specs[index].kind,
            "status": "dedupe" if fp in seen else status[fp],
            "seconds": seconds_by_fp.get(fp, 0.0) if fp not in seen else 0.0,
        }
        if fp not in seen and fp in report.errors:
            row["error"] = report.errors[fp]
        rows.append(row)
        seen.add(fp)
    store.write_shards(rows)
    store.build_index()

    observer.count("campaign.shards", report.total_shards)
    observer.count("campaign.dedupe_hits", report.dedupe_hits)
    observer.count("campaign.cache_hits", report.cache_hits)
    observer.count("campaign.resume_hits", report.resume_hits)
    observer.add_span("campaign", t0, observer.now(), cat="campaign",
                      args={"shards": report.total_shards, "workers": n_workers})
    report.seconds = time.perf_counter() - t_wall
    store.append_event({"event": "finalized", **report.to_dict()})
    return report
