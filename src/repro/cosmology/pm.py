"""Particle-mesh gravity for periodic cosmological boxes.

The paper's production code is the treecode, but a periodic comoving
box needs periodic gravity; the classic companion is the FFT
particle-mesh solver (the original HOT handled periodicity with Ewald
sums — DESIGN.md records the substitution).  Cloud-in-cell deposit,
Poisson solve with the grid-corrected Green's function, spectral
gradient, and CIC force interpolation back to the particles; fully
vectorized.

Units here are "box units": the box has side 1, total mass 1, and the
Poisson equation solved is ``del^2 phi = delta`` (density contrast
source); callers scale by the physical prefactor (see
``repro.cosmology.simulation``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["cic_deposit", "cic_interpolate", "PMSolver"]


def cic_deposit(positions: np.ndarray, grid: int, weights: np.ndarray | None = None) -> np.ndarray:
    """Cloud-in-cell mass deposit onto a periodic grid (box side 1)."""
    positions = np.asarray(positions, dtype=np.float64)
    n = positions.shape[0]
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError("positions must be (N, 3)")
    if grid < 2:
        raise ValueError("grid must be >= 2")
    if weights is None:
        weights = np.full(n, 1.0)
    x = np.mod(positions, 1.0) * grid
    i0 = np.floor(x).astype(np.int64)
    f = x - i0
    i0 = np.mod(i0, grid)
    i1 = np.mod(i0 + 1, grid)
    rho = np.zeros((grid, grid, grid))
    for dx, wx in ((i0[:, 0], 1 - f[:, 0]), (i1[:, 0], f[:, 0])):
        for dy, wy in ((i0[:, 1], 1 - f[:, 1]), (i1[:, 1], f[:, 1])):
            for dz, wz in ((i0[:, 2], 1 - f[:, 2]), (i1[:, 2], f[:, 2])):
                np.add.at(rho, (dx, dy, dz), weights * wx * wy * wz)
    return rho


def cic_interpolate(field: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """CIC interpolation of a grid field (or stacked fields) to points.

    ``field`` has shape (grid, grid, grid) or (k, grid, grid, grid).
    """
    single = field.ndim == 3
    fields = field[None] if single else field
    grid = fields.shape[1]
    x = np.mod(np.asarray(positions, dtype=np.float64), 1.0) * grid
    i0 = np.floor(x).astype(np.int64)
    f = x - i0
    i0 = np.mod(i0, grid)
    i1 = np.mod(i0 + 1, grid)
    out = np.zeros((fields.shape[0], positions.shape[0]))
    for dx, wx in ((i0[:, 0], 1 - f[:, 0]), (i1[:, 0], f[:, 0])):
        for dy, wy in ((i0[:, 1], 1 - f[:, 1]), (i1[:, 1], f[:, 1])):
            for dz, wz in ((i0[:, 2], 1 - f[:, 2]), (i1[:, 2], f[:, 2])):
                w = wx * wy * wz
                out += fields[:, dx, dy, dz] * w
    return out[0] if single else out


class PMSolver:
    """FFT Poisson solver on a periodic unit box."""

    def __init__(self, grid: int = 64, deconvolve: bool = True):
        if grid < 4:
            raise ValueError("grid must be >= 4")
        self.grid = grid
        k1 = 2.0 * np.pi * np.fft.fftfreq(grid) * grid  # integer wavenumbers * 2pi
        kx, ky, kz = np.meshgrid(k1, k1, k1, indexing="ij")
        k2 = kx**2 + ky**2 + kz**2
        k2[0, 0, 0] = 1.0  # zero mode removed below
        self._k = (kx, ky, kz)
        self._inv_k2 = 1.0 / k2
        self._inv_k2[0, 0, 0] = 0.0
        if deconvolve:
            # CIC window: W(k) = prod sinc^2(k_i / (2 grid)).  Deposit
            # and interpolation each convolve once; compensate both so
            # mid-band forces are unbiased (standard PM practice).
            def sinc(x):
                return np.sinc(x / np.pi)  # np.sinc is sin(pi x)/(pi x)

            w = (
                sinc(kx / (2.0 * grid)) * sinc(ky / (2.0 * grid)) * sinc(kz / (2.0 * grid))
            ) ** 2
            self._decon = 1.0 / np.maximum(w, 0.3) ** 2
        else:
            self._decon = np.ones_like(k2)

    def density_contrast(self, positions: np.ndarray, weights: np.ndarray | None = None) -> np.ndarray:
        """CIC delta = rho/rho_bar - 1."""
        rho = cic_deposit(positions, self.grid, weights)
        mean = rho.mean()
        if mean == 0:
            raise ValueError("no mass deposited")
        return rho / mean - 1.0

    def potential(self, delta: np.ndarray) -> np.ndarray:
        """Solve del^2 phi = delta (unit box, spectral)."""
        if delta.shape != (self.grid,) * 3:
            raise ValueError("delta grid shape mismatch")
        dk = np.fft.fftn(delta)
        phik = -dk * self._inv_k2
        return np.real(np.fft.ifftn(phik))

    def accelerations(self, positions: np.ndarray, weights: np.ndarray | None = None) -> np.ndarray:
        """g = -grad phi at the particles, for del^2 phi = delta."""
        delta = self.density_contrast(positions, weights)
        dk = np.fft.fftn(delta)
        phik = -dk * self._inv_k2 * self._decon
        kx, ky, kz = self._k
        acc_grids = np.empty((3, self.grid, self.grid, self.grid))
        for axis, k in enumerate((kx, ky, kz)):
            acc_grids[axis] = np.real(np.fft.ifftn(-1j * k * phik))
        acc = cic_interpolate(acc_grids, positions)
        return acc.T.copy()
