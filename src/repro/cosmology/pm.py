"""Particle-mesh gravity for periodic cosmological boxes.

The paper's production code is the treecode, but a periodic comoving
box needs periodic gravity; the classic companion is the FFT
particle-mesh solver (the original HOT handled periodicity with Ewald
sums — DESIGN.md records the substitution).  Cloud-in-cell deposit,
Poisson solve with the grid-corrected Green's function, spectral
gradient, and CIC force interpolation back to the particles; fully
vectorized.

The deposit/interpolation hot paths route through the kernel-backend
registry (:mod:`repro.core.backend`).  The batched deposit issues the
eight CIC corner scatters as **one** ``bincount_sum`` over the
concatenated corner streams — ``np.bincount`` and ``np.add.at`` both
accumulate sequentially in input order, and the concatenation preserves
the reference loop's corner-major order, so the fast path is
bit-identical to :func:`cic_deposit_reference` (pinned by
``tests/test_cosmology_backend_differential.py``).  The batched
interpolation gathers from the flattened grid and accumulates corner by
corner in the reference order, so it is bit-identical too.

Units here are "box units": the box has side 1, total mass 1, and the
Poisson equation solved is ``del^2 phi = delta`` (density contrast
source); callers scale by the physical prefactor (see
``repro.cosmology.simulation``).
"""

from __future__ import annotations

import numpy as np

from ..core.backend import get_backend

__all__ = [
    "cic_deposit",
    "cic_deposit_reference",
    "cic_interpolate",
    "cic_interpolate_reference",
    "PMSolver",
]


def _cic_corners(positions: np.ndarray, grid: int):
    """Shared CIC geometry: wrapped lower/upper indices and fractions."""
    x = np.mod(positions, 1.0) * grid
    i0 = np.floor(x).astype(np.int64)
    f = x - i0
    i0 = np.mod(i0, grid)
    i1 = np.mod(i0 + 1, grid)
    return i0, i1, f


def _validate_deposit(positions: np.ndarray, grid: int) -> np.ndarray:
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError("positions must be (N, 3)")
    if grid < 2:
        raise ValueError("grid must be >= 2")
    return positions


def cic_deposit_reference(
    positions: np.ndarray, grid: int, weights: np.ndarray | None = None
) -> np.ndarray:
    """Cloud-in-cell deposit via eight ``np.add.at`` corner scatters.

    The historical implementation, kept as the differential-test anchor
    for :func:`cic_deposit`.
    """
    positions = _validate_deposit(positions, grid)
    n = positions.shape[0]
    if weights is None:
        weights = np.full(n, 1.0)
    i0, i1, f = _cic_corners(positions, grid)
    rho = np.zeros((grid, grid, grid))
    for dx, wx in ((i0[:, 0], 1 - f[:, 0]), (i1[:, 0], f[:, 0])):
        for dy, wy in ((i0[:, 1], 1 - f[:, 1]), (i1[:, 1], f[:, 1])):
            for dz, wz in ((i0[:, 2], 1 - f[:, 2]), (i1[:, 2], f[:, 2])):
                np.add.at(rho, (dx, dy, dz), weights * wx * wy * wz)
    return rho


def cic_deposit(
    positions: np.ndarray,
    grid: int,
    weights: np.ndarray | None = None,
    *,
    backend=None,
) -> np.ndarray:
    """Cloud-in-cell mass deposit onto a periodic grid (box side 1).

    Batched: the eight corner scatters are concatenated, corner-major,
    into one backend ``bincount_sum`` — bit-identical to
    :func:`cic_deposit_reference` because both accumulate the same
    addend sequence in the same order per cell.
    """
    positions = _validate_deposit(positions, grid)
    n = positions.shape[0]
    if weights is None:
        weights = np.full(n, 1.0)
    kb = get_backend(backend)
    i0, i1, f = _cic_corners(positions, grid)
    idx_parts = []
    w_parts = []
    # Same corner-major order as the reference loop: x outer, z inner.
    for dx, wx in ((i0[:, 0], 1 - f[:, 0]), (i1[:, 0], f[:, 0])):
        for dy, wy in ((i0[:, 1], 1 - f[:, 1]), (i1[:, 1], f[:, 1])):
            for dz, wz in ((i0[:, 2], 1 - f[:, 2]), (i1[:, 2], f[:, 2])):
                idx_parts.append((dx * grid + dy) * grid + dz)
                w_parts.append(weights * wx * wy * wz)
    flat = kb.bincount_sum(np.concatenate(idx_parts), np.concatenate(w_parts), grid**3)
    return flat.reshape(grid, grid, grid)


def cic_interpolate_reference(field: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """CIC interpolation via per-corner 3-axis fancy gathers.

    The historical implementation, kept as the anchor for
    :func:`cic_interpolate`.
    """
    single = field.ndim == 3
    fields = field[None] if single else field
    grid = fields.shape[1]
    i0, i1, f = _cic_corners(np.asarray(positions, dtype=np.float64), grid)
    out = np.zeros((fields.shape[0], positions.shape[0]))
    for dx, wx in ((i0[:, 0], 1 - f[:, 0]), (i1[:, 0], f[:, 0])):
        for dy, wy in ((i0[:, 1], 1 - f[:, 1]), (i1[:, 1], f[:, 1])):
            for dz, wz in ((i0[:, 2], 1 - f[:, 2]), (i1[:, 2], f[:, 2])):
                w = wx * wy * wz
                out += fields[:, dx, dy, dz] * w
    return out[0] if single else out


def cic_interpolate(
    field: np.ndarray, positions: np.ndarray, *, backend=None
) -> np.ndarray:
    """CIC interpolation of a grid field (or stacked fields) to points.

    ``field`` has shape (grid, grid, grid) or (k, grid, grid, grid).
    Batched: one flat-index gather per corner instead of a 3-axis fancy
    gather, accumulated in the reference corner order — bit-identical
    to :func:`cic_interpolate_reference`.  (``backend`` is accepted for
    interface symmetry; a gather has no scatter step to route.)
    """
    del backend  # gathers have no backend-routed op; kwarg kept for symmetry
    single = field.ndim == 3
    fields = field[None] if single else field
    grid = fields.shape[1]
    flat = fields.reshape(fields.shape[0], -1)
    i0, i1, f = _cic_corners(np.asarray(positions, dtype=np.float64), grid)
    out = np.zeros((fields.shape[0], positions.shape[0]))
    for dx, wx in ((i0[:, 0], 1 - f[:, 0]), (i1[:, 0], f[:, 0])):
        for dy, wy in ((i0[:, 1], 1 - f[:, 1]), (i1[:, 1], f[:, 1])):
            for dz, wz in ((i0[:, 2], 1 - f[:, 2]), (i1[:, 2], f[:, 2])):
                w = wx * wy * wz
                out += flat[:, (dx * grid + dy) * grid + dz] * w
    return out[0] if single else out


class PMSolver:
    """FFT Poisson solver on a periodic unit box."""

    def __init__(self, grid: int = 64, deconvolve: bool = True, backend=None):
        if grid < 4:
            raise ValueError("grid must be >= 4")
        self.grid = grid
        self.backend = backend
        k1 = 2.0 * np.pi * np.fft.fftfreq(grid) * grid  # integer wavenumbers * 2pi
        kx, ky, kz = np.meshgrid(k1, k1, k1, indexing="ij")
        k2 = kx**2 + ky**2 + kz**2
        k2[0, 0, 0] = 1.0  # zero mode removed below
        self._k = (kx, ky, kz)
        self._inv_k2 = 1.0 / k2
        self._inv_k2[0, 0, 0] = 0.0
        if deconvolve:
            # CIC window: W(k) = prod sinc^2(k_i / (2 grid)).  Deposit
            # and interpolation each convolve once; compensate both so
            # mid-band forces are unbiased (standard PM practice).
            def sinc(x):
                return np.sinc(x / np.pi)  # np.sinc is sin(pi x)/(pi x)

            w = (
                sinc(kx / (2.0 * grid)) * sinc(ky / (2.0 * grid)) * sinc(kz / (2.0 * grid))
            ) ** 2
            self._decon = 1.0 / np.maximum(w, 0.3) ** 2
        else:
            self._decon = np.ones_like(k2)

    def density_contrast(self, positions: np.ndarray, weights: np.ndarray | None = None) -> np.ndarray:
        """CIC delta = rho/rho_bar - 1."""
        rho = cic_deposit(positions, self.grid, weights, backend=self.backend)
        mean = rho.mean()
        if mean == 0:
            raise ValueError("no mass deposited")
        return rho / mean - 1.0

    def potential(self, delta: np.ndarray) -> np.ndarray:
        """Solve del^2 phi = delta (unit box, spectral)."""
        if delta.shape != (self.grid,) * 3:
            raise ValueError("delta grid shape mismatch")
        dk = np.fft.fftn(delta)
        phik = -dk * self._inv_k2
        return np.real(np.fft.ifftn(phik))

    def accelerations(self, positions: np.ndarray, weights: np.ndarray | None = None) -> np.ndarray:
        """g = -grad phi at the particles, for del^2 phi = delta."""
        delta = self.density_contrast(positions, weights)
        dk = np.fft.fftn(delta)
        phik = -dk * self._inv_k2 * self._decon
        kx, ky, kz = self._k
        acc_grids = np.empty((3, self.grid, self.grid, self.grid))
        for axis, k in enumerate((kx, ky, kz)):
            acc_grids[axis] = np.real(np.fft.ifftn(-1j * k * phik))
        acc = cic_interpolate(acc_grids, positions, backend=self.backend)
        return acc.T.copy()
