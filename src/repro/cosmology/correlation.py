"""Clustering statistics: two-point correlation and measured P(k).

The quantitative face of "galaxy formation and clustering" (Section
4.3): the two-point correlation function xi(r) by periodic pair counts
against the analytic random expectation, and the density power
spectrum measured from the particles on a grid (used to validate the
initial conditions against the input linear spectrum).

The binning hot loops route through the kernel-backend registry.  Pair
counts are integers, and the ``searchsorted`` + ``bincount_sum`` fast
path assigns every separation to the same bin as ``np.histogram``
(including the closed last bin), so :func:`pair_counts_periodic` is
**bit-identical** to its reference.  The power-spectrum binner selects
the same mode set per bin (half-open bins on every bin, matching the
reference's strict ``<`` comparisons) but reduces each bin with a
sequential ``bincount_sum`` instead of ``np.mean``'s pairwise
summation, so its k/P values agree to ~1e-12 relative, not to the bit
— the tolerance ``tests/test_cosmology_backend_differential.py`` pins.
"""

from __future__ import annotations

import numpy as np

from ..core.backend import get_backend
from .pm import cic_deposit

__all__ = [
    "pair_counts_periodic",
    "pair_counts_periodic_reference",
    "correlation_function",
    "measured_power_spectrum",
    "measured_power_spectrum_reference",
]


def _validate_pair_edges(positions, edges):
    positions = np.mod(np.asarray(positions, dtype=np.float64), 1.0)
    edges = np.asarray(edges, dtype=np.float64)
    if np.any(np.diff(edges) <= 0) or edges[0] < 0:
        raise ValueError("edges must be increasing and non-negative")
    if edges[-1] > 0.5:
        raise ValueError("separations beyond box/2 are ambiguous on a torus")
    return positions, edges


def _block_separations(positions, lo, hi):
    """Unique-pair separations of block [lo, hi) against all j > i."""
    n = positions.shape[0]
    d = positions[lo:hi, None, :] - positions[None, :, :]
    d -= np.round(d)
    r = np.sqrt((d**2).sum(axis=2))
    jj = np.arange(n)[None, :].repeat(hi - lo, axis=0)
    ii = np.arange(lo, hi)[:, None].repeat(n, axis=1)
    return r[jj > ii]


def pair_counts_periodic_reference(
    positions: np.ndarray, edges: np.ndarray, block: int = 512
) -> np.ndarray:
    """Pair histogram via ``np.histogram`` — the differential anchor."""
    positions, edges = _validate_pair_edges(positions, edges)
    n = positions.shape[0]
    counts = np.zeros(edges.size - 1, dtype=np.int64)
    for lo in range(0, n, block):
        hi = min(lo + block, n)
        counts += np.histogram(_block_separations(positions, lo, hi), bins=edges)[0]
    return counts


def pair_counts_periodic(
    positions: np.ndarray,
    edges: np.ndarray,
    block: int = 512,
    *,
    backend=None,
) -> np.ndarray:
    """Histogram of unique pair separations on a periodic unit box.

    Batched: bin assignment by ``searchsorted`` (with ``np.histogram``'s
    closed last bin) and integer accumulation by backend
    ``bincount_sum`` — bit-identical counts to
    :func:`pair_counts_periodic_reference`.
    """
    positions, edges = _validate_pair_edges(positions, edges)
    n = positions.shape[0]
    kb = get_backend(backend)
    nbins = edges.size - 1
    counts = np.zeros(nbins, dtype=np.int64)
    for lo in range(0, n, block):
        hi = min(lo + block, n)
        r = _block_separations(positions, lo, hi)
        bi = np.searchsorted(edges, r, side="right") - 1
        bi[r == edges[-1]] = nbins - 1  # np.histogram closes the last bin
        bi = bi[(bi >= 0) & (bi < nbins)]
        counts += kb.bincount_sum(bi, None, nbins)
    return counts


def correlation_function(
    positions: np.ndarray, edges: np.ndarray, *, backend=None
) -> tuple[np.ndarray, np.ndarray]:
    """(bin centers, xi(r)) with the analytic-random (natural) estimator.

    On a periodic box the expected random pair count in a shell is
    exact — ``N(N-1)/2 * V_shell`` for a unit box — so xi = DD/RR - 1
    without generating randoms.
    """
    positions = np.asarray(positions, dtype=np.float64)
    n = positions.shape[0]
    dd = pair_counts_periodic(positions, edges, backend=backend)
    shell = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    rr = 0.5 * n * (n - 1) * shell
    centers = 0.5 * (edges[:-1] + edges[1:])
    xi = dd / rr - 1.0
    return centers, xi


def _power_modes(positions, grid, box_mpc_h, n_bins):
    """Shared mode measurement: (kmag, pk_flat, edges) for k > 0 modes."""
    positions = np.asarray(positions, dtype=np.float64)
    n = positions.shape[0]
    if grid < 4 or box_mpc_h <= 0 or n_bins < 2:
        raise ValueError("invalid measurement parameters")
    if n == 0:
        raise ValueError("no particles")
    rho = cic_deposit(positions, grid)
    delta = rho / rho.mean() - 1.0
    dk = np.fft.fftn(delta) / grid**3
    pk_grid = np.abs(dk) ** 2 * box_mpc_h**3
    kf = 2.0 * np.pi / box_mpc_h
    k1 = np.fft.fftfreq(grid) * grid * kf
    kx, ky, kz = np.meshgrid(k1, k1, k1, indexing="ij")
    kmag = np.sqrt(kx**2 + ky**2 + kz**2).ravel()
    pk_flat = pk_grid.ravel()
    keep = kmag > 0
    edges = np.linspace(kf, kf * grid / 2, n_bins + 1)
    return kmag[keep], pk_flat[keep], edges


def measured_power_spectrum_reference(
    positions: np.ndarray,
    grid: int = 32,
    box_mpc_h: float = 1.0,
    n_bins: int = 12,
    subtract_shot_noise: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """P(k) with a per-bin ``np.mean`` loop — the differential anchor."""
    n = np.asarray(positions).shape[0]
    kmag, pk_flat, edges = _power_modes(positions, grid, box_mpc_h, n_bins)
    k_out = np.zeros(n_bins)
    p_out = np.zeros(n_bins)
    shot = box_mpc_h**3 / n if subtract_shot_noise else 0.0
    for b in range(n_bins):
        sel = (kmag >= edges[b]) & (kmag < edges[b + 1])
        if np.any(sel):
            k_out[b] = kmag[sel].mean()
            p_out[b] = pk_flat[sel].mean() - shot
    good = k_out > 0
    return k_out[good], p_out[good]


def measured_power_spectrum(
    positions: np.ndarray,
    grid: int = 32,
    box_mpc_h: float = 1.0,
    n_bins: int = 12,
    subtract_shot_noise: bool = True,
    *,
    backend=None,
) -> tuple[np.ndarray, np.ndarray]:
    """(k, P(k)) from the CIC density of the particles.

    ``box_mpc_h`` scales the unit box to physical units so the result
    is directly comparable to the input linear spectrum.  Shot noise
    ``V/N`` is subtracted by default — turn that off for displaced-
    lattice particle loads, which are sub-Poisson by construction.

    Batched: one ``searchsorted`` bin assignment (half-open on every
    bin, matching the reference's strict upper comparisons — no closed
    last bin here) and backend ``bincount_sum`` reductions.  Same mode
    set per bin as :func:`measured_power_spectrum_reference`; values
    agree to summation-order tolerance (~1e-12 relative).
    """
    n = np.asarray(positions).shape[0]
    kmag, pk_flat, edges = _power_modes(positions, grid, box_mpc_h, n_bins)
    kb = get_backend(backend)
    nbins = n_bins
    bi = np.searchsorted(edges, kmag, side="right") - 1
    valid = (bi >= 0) & (bi < nbins)
    bi, kv, pv = bi[valid], kmag[valid], pk_flat[valid]
    cnt = kb.bincount_sum(bi, None, nbins)
    k_sum = kb.bincount_sum(bi, kv, nbins)
    p_sum = kb.bincount_sum(bi, pv, nbins)
    shot = box_mpc_h**3 / n if subtract_shot_noise else 0.0
    k_out = np.zeros(nbins)
    p_out = np.zeros(nbins)
    nonempty = cnt > 0
    k_out[nonempty] = k_sum[nonempty] / cnt[nonempty]
    p_out[nonempty] = p_sum[nonempty] / cnt[nonempty] - shot
    good = k_out > 0
    return k_out[good], p_out[good]
