"""Clustering statistics: two-point correlation and measured P(k).

The quantitative face of "galaxy formation and clustering" (Section
4.3): the two-point correlation function xi(r) by periodic pair counts
against the analytic random expectation, and the density power
spectrum measured from the particles on a grid (used to validate the
initial conditions against the input linear spectrum).
"""

from __future__ import annotations

import numpy as np

from .pm import cic_deposit

__all__ = ["pair_counts_periodic", "correlation_function", "measured_power_spectrum"]


def pair_counts_periodic(
    positions: np.ndarray, edges: np.ndarray, block: int = 512
) -> np.ndarray:
    """Histogram of unique pair separations on a periodic unit box."""
    positions = np.mod(np.asarray(positions, dtype=np.float64), 1.0)
    n = positions.shape[0]
    edges = np.asarray(edges, dtype=np.float64)
    if np.any(np.diff(edges) <= 0) or edges[0] < 0:
        raise ValueError("edges must be increasing and non-negative")
    if edges[-1] > 0.5:
        raise ValueError("separations beyond box/2 are ambiguous on a torus")
    counts = np.zeros(edges.size - 1, dtype=np.int64)
    for lo in range(0, n, block):
        hi = min(lo + block, n)
        d = positions[lo:hi, None, :] - positions[None, :, :]
        d -= np.round(d)
        r = np.sqrt((d**2).sum(axis=2))
        iu = np.triu_indices(hi - lo, k=1, m=n)  # not quite unique; fix below
        # Unique pairs: only count j > i in global indexing.
        jj = np.arange(n)[None, :].repeat(hi - lo, axis=0)
        ii = np.arange(lo, hi)[:, None].repeat(n, axis=1)
        mask = jj > ii
        counts += np.histogram(r[mask], bins=edges)[0]
    return counts


def correlation_function(
    positions: np.ndarray, edges: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """(bin centers, xi(r)) with the analytic-random (natural) estimator.

    On a periodic box the expected random pair count in a shell is
    exact — ``N(N-1)/2 * V_shell`` for a unit box — so xi = DD/RR - 1
    without generating randoms.
    """
    positions = np.asarray(positions, dtype=np.float64)
    n = positions.shape[0]
    dd = pair_counts_periodic(positions, edges)
    shell = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    rr = 0.5 * n * (n - 1) * shell
    centers = 0.5 * (edges[:-1] + edges[1:])
    xi = dd / rr - 1.0
    return centers, xi


def measured_power_spectrum(
    positions: np.ndarray,
    grid: int = 32,
    box_mpc_h: float = 1.0,
    n_bins: int = 12,
    subtract_shot_noise: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """(k, P(k)) from the CIC density of the particles.

    ``box_mpc_h`` scales the unit box to physical units so the result
    is directly comparable to the input linear spectrum.  Shot noise
    ``V/N`` is subtracted by default — turn that off for displaced-
    lattice particle loads, which are sub-Poisson by construction.
    """
    positions = np.asarray(positions, dtype=np.float64)
    n = positions.shape[0]
    if grid < 4 or box_mpc_h <= 0 or n_bins < 2:
        raise ValueError("invalid measurement parameters")
    rho = cic_deposit(positions, grid)
    delta = rho / rho.mean() - 1.0
    dk = np.fft.fftn(delta) / grid**3
    pk_grid = np.abs(dk) ** 2 * box_mpc_h**3
    kf = 2.0 * np.pi / box_mpc_h
    k1 = np.fft.fftfreq(grid) * grid * kf
    kx, ky, kz = np.meshgrid(k1, k1, k1, indexing="ij")
    kmag = np.sqrt(kx**2 + ky**2 + kz**2).ravel()
    pk_flat = pk_grid.ravel()
    keep = kmag > 0
    kmag, pk_flat = kmag[keep], pk_flat[keep]
    edges = np.linspace(kf, kf * grid / 2, n_bins + 1)
    k_out = np.zeros(n_bins)
    p_out = np.zeros(n_bins)
    shot = box_mpc_h**3 / n if subtract_shot_noise else 0.0
    for b in range(n_bins):
        sel = (kmag >= edges[b]) & (kmag < edges[b + 1])
        if np.any(sel):
            k_out[b] = kmag[sel].mean()
            p_out[b] = pk_flat[sel].mean() - shot
    good = k_out > 0
    return k_out[good], p_out[good]
