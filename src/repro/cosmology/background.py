"""FRW background cosmology: expansion history and linear growth.

The paper's simulations are flat LCDM ("the parameters describing the
large-scale Universe are now known to extraordinary precision" —
Section 4.3; WMAP-era values are the defaults here).  This module
provides the Hubble rate, time-redshift relations, and the linear
growth factor used by the initial-conditions generator and by the
Zel'dovich validation tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.integrate import quad

__all__ = ["Cosmology", "LCDM", "EDS"]


@dataclass(frozen=True)
class Cosmology:
    """Flat FRW cosmology (curvature = 1 - Om - Ol fixed to 0 here)."""

    h: float = 0.7  # H0 / (100 km/s/Mpc)
    omega_m: float = 0.3
    omega_l: float = 0.7
    omega_b: float = 0.045
    n_s: float = 1.0
    sigma8: float = 0.9

    def __post_init__(self) -> None:
        if self.h <= 0 or self.omega_m <= 0 or self.sigma8 <= 0:
            raise ValueError("h, omega_m, sigma8 must be positive")
        if abs(self.omega_m + self.omega_l - 1.0) > 1e-8:
            raise ValueError("only flat cosmologies are supported")
        if not 0 <= self.omega_b < self.omega_m:
            raise ValueError("omega_b must be within omega_m")

    # -- expansion ------------------------------------------------------
    def e_of_a(self, a: np.ndarray | float) -> np.ndarray | float:
        """H(a) / H0 for flat LCDM."""
        a = np.asarray(a, dtype=np.float64)
        if np.any(a <= 0):
            raise ValueError("scale factor must be positive")
        out = np.sqrt(self.omega_m / a**3 + self.omega_l)
        return float(out) if out.ndim == 0 else out

    def hubble_time_gyr(self) -> float:
        """1/H0 in Gyr."""
        return 9.778 / self.h

    def omega_m_of_a(self, a: float) -> float:
        e2 = self.omega_m / a**3 + self.omega_l
        return self.omega_m / (a**3 * e2)

    def age_gyr(self, a: float = 1.0) -> float:
        """Cosmic time at scale factor ``a`` (flat LCDM integral)."""
        if a <= 0:
            raise ValueError("scale factor must be positive")
        integrand = lambda x: 1.0 / (x * self.e_of_a(x))
        t, _ = quad(integrand, 1e-8, a)
        return t * self.hubble_time_gyr()

    def lookback_gyr(self, z: float) -> float:
        """Lookback time to redshift ``z`` (Fig 7's "3.5 billion years
        prior to the present epoch" at z = 0.3)."""
        if z < 0:
            raise ValueError("redshift must be non-negative")
        return self.age_gyr(1.0) - self.age_gyr(1.0 / (1.0 + z))

    # -- growth ----------------------------------------------------------
    def growth_factor(self, a: float) -> float:
        """Linear growth D(a), normalized so D(1) = 1.

        The standard integral ``D ~ H(a) * int da' / (a' H(a'))^3``.
        """
        if a <= 0:
            raise ValueError("scale factor must be positive")

        def integral(upper: float) -> float:
            val, _ = quad(lambda x: 1.0 / (x * self.e_of_a(x)) ** 3, 1e-8, upper)
            return val

        d = self.e_of_a(a) * integral(a)
        d1 = self.e_of_a(1.0) * integral(1.0)
        return d / d1

    def growth_rate(self, a: float) -> float:
        """f = dlnD/dlna, well approximated by Omega_m(a)^0.55."""
        return self.omega_m_of_a(a) ** 0.55


#: WMAP-era concordance cosmology, the paper's working model.
LCDM = Cosmology()

#: Einstein-de Sitter: the analytic playground (D = a exactly).
EDS = Cosmology(h=0.7, omega_m=1.0, omega_l=0.0, omega_b=0.045, sigma8=0.9)
