"""Friends-of-friends halo finding.

The standard definition of a dark-matter halo in simulations like the
paper's: particles closer than ``b`` times the mean interparticle
separation belong to the same group ("dark matter halos" whose
"sub-structure" the Section 4.3 runs resolve).  Periodic boundaries are
honored; linking uses a cell grid so only neighboring cells are
searched, and group merging is union-find with path compression.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Halo", "FofResult", "friends_of_friends"]


class _UnionFind:
    def __init__(self, n: int):
        self.parent = np.arange(n, dtype=np.int64)

    def find(self, i: int) -> int:
        root = i
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[i] != root:  # path compression
            self.parent[i], i = root, self.parent[i]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


@dataclass(frozen=True)
class Halo:
    """One FoF group."""

    members: np.ndarray  # particle indices
    center: np.ndarray  # center of mass, periodic-aware (box units)
    mass: float

    @property
    def n_members(self) -> int:
        return self.members.size


@dataclass
class FofResult:
    halos: list[Halo]
    group_id: np.ndarray  # per particle; -1 for field particles

    @property
    def n_halos(self) -> int:
        return len(self.halos)

    def mass_function(self, bins: np.ndarray) -> np.ndarray:
        """Halo counts per membership bin (the N(M) diagnostic)."""
        sizes = np.array([h.n_members for h in self.halos])
        counts, _ = np.histogram(sizes, bins=bins)
        return counts


def _periodic_com(positions: np.ndarray, masses: np.ndarray) -> np.ndarray:
    """Center of mass on a periodic unit box via circular means."""
    angles = 2.0 * np.pi * positions
    s = np.average(np.sin(angles), axis=0, weights=masses)
    c = np.average(np.cos(angles), axis=0, weights=masses)
    return np.mod(np.arctan2(s, c) / (2.0 * np.pi), 1.0)


def friends_of_friends(
    positions: np.ndarray,
    masses: np.ndarray | None = None,
    *,
    linking_length: float = 0.2,
    min_members: int = 10,
) -> FofResult:
    """FoF groups on a periodic unit box.

    ``linking_length`` is in units of the mean interparticle separation
    (the community-standard b = 0.2 default); ``min_members`` drops
    spurious few-particle groups, as every halo catalog does.
    """
    positions = np.mod(np.asarray(positions, dtype=np.float64), 1.0)
    n = positions.shape[0]
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError("positions must be (N, 3)")
    if masses is None:
        masses = np.full(n, 1.0 / n)
    if linking_length <= 0 or min_members < 1:
        raise ValueError("invalid FoF parameters")
    link = linking_length * n ** (-1.0 / 3.0)  # box units
    # Cell grid with cells >= the linking length.
    n_cells = max(int(1.0 / link), 1)
    n_cells = min(n_cells, 64)
    cell = (positions * n_cells).astype(np.int64) % n_cells
    cell_id = (cell[:, 0] * n_cells + cell[:, 1]) * n_cells + cell[:, 2]
    order = np.argsort(cell_id, kind="stable")
    sorted_ids = cell_id[order]
    boundaries = np.concatenate(
        [[0], np.flatnonzero(np.diff(sorted_ids)) + 1, [n]]
    )
    members_of: dict[int, np.ndarray] = {
        int(sorted_ids[boundaries[i]]): order[boundaries[i] : boundaries[i + 1]]
        for i in range(boundaries.size - 1)
    }
    uf = _UnionFind(n)
    link2 = link * link
    offsets = [(dx, dy, dz) for dx in (-1, 0, 1) for dy in (-1, 0, 1) for dz in (-1, 0, 1)]
    for cid, idx_a in members_of.items():
        cz = cid % n_cells
        cy = (cid // n_cells) % n_cells
        cx = cid // (n_cells * n_cells)
        for dx, dy, dz in offsets:
            nid = (
                ((cx + dx) % n_cells) * n_cells + ((cy + dy) % n_cells)
            ) * n_cells + ((cz + dz) % n_cells)
            if nid < cid:
                continue  # each cell pair once
            idx_b = members_of.get(int(nid))
            if idx_b is None:
                continue
            d = positions[idx_a][:, None, :] - positions[idx_b][None, :, :]
            d -= np.round(d)  # periodic minimum image
            close = (d**2).sum(axis=2) <= link2
            for ia, ib in zip(*np.nonzero(close)):
                if nid != cid or idx_a[ia] < idx_b[ib]:
                    uf.union(int(idx_a[ia]), int(idx_b[ib]))
    roots = np.array([uf.find(i) for i in range(n)])
    group_id = np.full(n, -1, dtype=np.int64)
    halos: list[Halo] = []
    for root in np.unique(roots):
        members = np.flatnonzero(roots == root)
        if members.size < min_members:
            continue
        gid = len(halos)
        group_id[members] = gid
        halos.append(
            Halo(
                members=members,
                center=_periodic_com(positions[members], masses[members]),
                mass=float(masses[members].sum()),
            )
        )
    halos.sort(key=lambda h: -h.mass)
    # Re-map group ids to the sorted order.
    remap = {id(h): i for i, h in enumerate(halos)}
    new_gid = np.full(n, -1, dtype=np.int64)
    for i, h in enumerate(halos):
        new_gid[h.members] = i
    return FofResult(halos, new_gid)
