"""Friends-of-friends halo finding.

The standard definition of a dark-matter halo in simulations like the
paper's: particles closer than ``b`` times the mean interparticle
separation belong to the same group ("dark matter halos" whose
"sub-structure" the Section 4.3 runs resolve).  Periodic boundaries are
honored; linking uses a cell grid so only neighboring cells are
searched.

Two implementations share the grid hashing and the halo extraction:

* :func:`friends_of_friends_reference` — per-pair Python union-find
  with path compression, the historical implementation.
* :func:`friends_of_friends` — the default batched path: close pairs
  are collected per cell-pair block (the same vectorized distance
  test), and connected components are solved by min-label propagation
  — backend ``scatter_min`` hooks plus pointer jumping.

They produce **bit-identical catalogs**: the union-find's
``parent[max] = min`` rule makes every final root the minimum particle
index of its component (induction over unions), and min-label
propagation converges to exactly that labeling; identical roots walk
through the shared extraction to identical halos and group ids
(pinned by ``tests/test_cosmology_backend_differential.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.backend import get_backend

__all__ = ["Halo", "FofResult", "friends_of_friends", "friends_of_friends_reference"]


class _UnionFind:
    def __init__(self, n: int):
        self.parent = np.arange(n, dtype=np.int64)

    def find(self, i: int) -> int:
        root = i
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[i] != root:  # path compression
            self.parent[i], i = root, self.parent[i]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


@dataclass(frozen=True)
class Halo:
    """One FoF group."""

    members: np.ndarray  # particle indices
    center: np.ndarray  # center of mass, periodic-aware (box units)
    mass: float

    @property
    def n_members(self) -> int:
        return self.members.size


@dataclass
class FofResult:
    halos: list[Halo]
    group_id: np.ndarray  # per particle; -1 for field particles

    @property
    def n_halos(self) -> int:
        return len(self.halos)

    def mass_function(self, bins: np.ndarray) -> np.ndarray:
        """Halo counts per membership bin (the N(M) diagnostic)."""
        sizes = np.array([h.n_members for h in self.halos])
        counts, _ = np.histogram(sizes, bins=bins)
        return counts


def _periodic_com(positions: np.ndarray, masses: np.ndarray) -> np.ndarray:
    """Center of mass on a periodic unit box via circular means."""
    angles = 2.0 * np.pi * positions
    s = np.average(np.sin(angles), axis=0, weights=masses)
    c = np.average(np.cos(angles), axis=0, weights=masses)
    return np.mod(np.arctan2(s, c) / (2.0 * np.pi), 1.0)


def _prepare(positions, masses, linking_length, min_members):
    """Shared validation + grid hashing for both implementations.

    Returns ``(positions, masses, link2, n_cells, members_of)`` with
    ``members_of`` mapping cell id -> member particle indices, or
    ``None`` for an empty input (no particles — no halos).
    """
    positions = np.mod(np.asarray(positions, dtype=np.float64), 1.0)
    n = positions.shape[0]
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError("positions must be (N, 3)")
    if masses is None:
        masses = np.full(n, 1.0 / n) if n else np.zeros(0)
    if linking_length <= 0 or min_members < 1:
        raise ValueError("invalid FoF parameters")
    if n == 0:
        return None
    link = linking_length * n ** (-1.0 / 3.0)  # box units
    # Cell grid with cells >= the linking length.
    n_cells = max(int(1.0 / link), 1)
    n_cells = min(n_cells, 64)
    cell = (positions * n_cells).astype(np.int64) % n_cells
    cell_id = (cell[:, 0] * n_cells + cell[:, 1]) * n_cells + cell[:, 2]
    order = np.argsort(cell_id, kind="stable")
    sorted_ids = cell_id[order]
    boundaries = np.concatenate(
        [[0], np.flatnonzero(np.diff(sorted_ids)) + 1, [n]]
    )
    members_of: dict[int, np.ndarray] = {
        int(sorted_ids[boundaries[i]]): order[boundaries[i] : boundaries[i + 1]]
        for i in range(boundaries.size - 1)
    }
    return positions, masses, link * link, n_cells, members_of


_NEIGHBOR_OFFSETS = [
    (dx, dy, dz) for dx in (-1, 0, 1) for dy in (-1, 0, 1) for dz in (-1, 0, 1)
]


def _cell_pairs(members_of: dict[int, np.ndarray], n_cells: int):
    """Yield ``(idx_a, idx_b, same_cell)`` member blocks to link, each
    unordered cell pair exactly once (the reference's visit order)."""
    for cid, idx_a in members_of.items():
        cz = cid % n_cells
        cy = (cid // n_cells) % n_cells
        cx = cid // (n_cells * n_cells)
        for dx, dy, dz in _NEIGHBOR_OFFSETS:
            nid = (
                ((cx + dx) % n_cells) * n_cells + ((cy + dy) % n_cells)
            ) * n_cells + ((cz + dz) % n_cells)
            if nid < cid:
                continue  # each cell pair once
            idx_b = members_of.get(int(nid))
            if idx_b is None:
                continue
            yield idx_a, idx_b, nid == cid


def _close_pairs(positions, idx_a, idx_b, link2):
    """Boolean (A, B) matrix of periodic separations <= link."""
    d = positions[idx_a][:, None, :] - positions[idx_b][None, :, :]
    d -= np.round(d)  # periodic minimum image
    return (d**2).sum(axis=2) <= link2


def _extract_halos(roots, positions, masses, min_members) -> FofResult:
    """Roots -> catalog; shared, so identical roots give identical halos."""
    n = positions.shape[0]
    group_id = np.full(n, -1, dtype=np.int64)
    halos: list[Halo] = []
    for root in np.unique(roots):
        members = np.flatnonzero(roots == root)
        if members.size < min_members:
            continue
        gid = len(halos)
        group_id[members] = gid
        halos.append(
            Halo(
                members=members,
                center=_periodic_com(positions[members], masses[members]),
                mass=float(masses[members].sum()),
            )
        )
    halos.sort(key=lambda h: -h.mass)
    # Re-map group ids to the sorted order.
    new_gid = np.full(n, -1, dtype=np.int64)
    for i, h in enumerate(halos):
        new_gid[h.members] = i
    return FofResult(halos, new_gid)


def friends_of_friends_reference(
    positions: np.ndarray,
    masses: np.ndarray | None = None,
    *,
    linking_length: float = 0.2,
    min_members: int = 10,
) -> FofResult:
    """FoF via per-pair union-find — the differential-test anchor."""
    prep = _prepare(positions, masses, linking_length, min_members)
    if prep is None:
        return FofResult([], np.full(0, -1, dtype=np.int64))
    positions, masses, link2, n_cells, members_of = prep
    n = positions.shape[0]
    uf = _UnionFind(n)
    for idx_a, idx_b, same_cell in _cell_pairs(members_of, n_cells):
        close = _close_pairs(positions, idx_a, idx_b, link2)
        for ia, ib in zip(*np.nonzero(close)):
            if not same_cell or idx_a[ia] < idx_b[ib]:
                uf.union(int(idx_a[ia]), int(idx_b[ib]))
    roots = np.array([uf.find(i) for i in range(n)])
    return _extract_halos(roots, positions, masses, min_members)


def _connected_minima(n: int, a: np.ndarray, b: np.ndarray, kb) -> np.ndarray:
    """Per-particle minimum index of its connected component.

    Min-label propagation: every particle starts labeled with its own
    index; each round scatters the smaller endpoint label across every
    edge (backend ``scatter_min``) and then pointer-jumps labels to
    their fixpoint.  Labels only decrease and are bounded by the true
    component minimum, which is reachable, so the loop converges — to
    the same labeling the union-find's ``parent[max] = min`` rule
    produces.
    """
    labels = np.arange(n, dtype=np.int64)
    if a.size == 0:
        return labels
    while True:
        prev = labels.copy()
        m = np.minimum(labels[a], labels[b])
        kb.scatter_min(labels, a, m)
        kb.scatter_min(labels, b, m)
        while True:  # pointer jumping: label of my label
            nxt = labels[labels]
            if np.array_equal(nxt, labels):
                break
            labels = nxt
        if np.array_equal(labels, prev):
            return labels


def friends_of_friends(
    positions: np.ndarray,
    masses: np.ndarray | None = None,
    *,
    linking_length: float = 0.2,
    min_members: int = 10,
    backend=None,
) -> FofResult:
    """FoF groups on a periodic unit box.

    ``linking_length`` is in units of the mean interparticle separation
    (the community-standard b = 0.2 default); ``min_members`` drops
    spurious few-particle groups, as every halo catalog does.

    Batched: close pairs are collected per cell-pair block and solved
    as one connected-components problem — bit-identical to
    :func:`friends_of_friends_reference` (module docstring has the
    argument).
    """
    prep = _prepare(positions, masses, linking_length, min_members)
    if prep is None:
        return FofResult([], np.full(0, -1, dtype=np.int64))
    positions, masses, link2, n_cells, members_of = prep
    n = positions.shape[0]
    kb = get_backend(backend)
    pair_a: list[np.ndarray] = []
    pair_b: list[np.ndarray] = []
    for idx_a, idx_b, same_cell in _cell_pairs(members_of, n_cells):
        close = _close_pairs(positions, idx_a, idx_b, link2)
        if same_cell:
            # Keep each unordered pair once; drop self-pairs.  (The
            # reference unions a < b only; the extra b > a pairs a
            # dedup would keep are unions of already-joined nodes —
            # component structure is unchanged either way.)
            ia, ib = np.nonzero(np.triu(close, k=1))
        else:
            ia, ib = np.nonzero(close)
        if ia.size:
            pair_a.append(idx_a[ia])
            pair_b.append(idx_b[ib])
    a = np.concatenate(pair_a) if pair_a else np.zeros(0, dtype=np.int64)
    b = np.concatenate(pair_b) if pair_b else np.zeros(0, dtype=np.int64)
    roots = _connected_minima(n, a, b, kb)
    return _extract_halos(roots, positions, masses, min_members)
