"""Zel'dovich initial conditions for cosmological boxes.

Generates a Gaussian random realization of the linear power spectrum
on a grid, derives the displacement field ``psi = -grad(phi)`` with
``del^2 phi = delta`` spectrally, and moves particles off a uniform
lattice by ``D(a) psi`` with velocities ``a H f D psi`` — the Zel'dovich
approximation, the standard starting point of every cosmological
N-body run of the paper's era.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .background import Cosmology, LCDM
from .power import PowerSpectrum

__all__ = ["InitialConditions", "zeldovich_ics", "gaussian_field"]


def gaussian_field(
    grid: int,
    box_mpc_h: float,
    power: PowerSpectrum,
    a: float,
    seed: int,
    k_cut_fraction: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """(delta grid, displacement grids (3, n, n, n)) at scale factor a.

    The field is built in k-space with the correct reality symmetry
    (real ifft of unit Gaussian modes scaled by sqrt(P k-volume)).
    Displacements are in box units (box side = 1).

    ``k_cut_fraction`` zeroes modes above that fraction of the grid
    Nyquist — the standard IC hygiene that keeps all seeded power in
    the band where a PM integrator evolves it accurately.
    """
    if grid < 4 or box_mpc_h <= 0:
        raise ValueError("grid >= 4 and positive box size required")
    if not 0 < k_cut_fraction <= 1.0:
        raise ValueError("k_cut_fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    kf = 2.0 * np.pi / box_mpc_h  # fundamental mode, h/Mpc
    k1 = np.fft.fftfreq(grid) * grid * kf
    kx, ky, kz = np.meshgrid(k1, k1, k1, indexing="ij")
    k = np.sqrt(kx**2 + ky**2 + kz**2)
    # White Gaussian modes with Hermitian symmetry via real-field FFT.
    white = rng.standard_normal((grid, grid, grid))
    wk = np.fft.fftn(white) / grid**1.5  # unit-variance complex modes
    pk = power(np.maximum(k, 1e-10).ravel(), a).reshape(k.shape)
    pk[0, 0, 0] = 0.0
    k_nyquist = kf * grid / 2.0
    pk[k > k_cut_fraction * k_nyquist] = 0.0
    amplitude = np.sqrt(pk * (kf / (2.0 * np.pi)) ** 3) * grid**3
    dk = wk * amplitude / box_mpc_h**0  # delta_k, dimensionless
    delta = np.real(np.fft.ifftn(dk))
    # Displacement: psi_k = -i k / k^2 delta_k, converted to box units.
    k2 = k**2
    k2[0, 0, 0] = 1.0
    psi = np.empty((3, grid, grid, grid))
    for axis, kv in enumerate((kx, ky, kz)):
        psik = 1j * kv / k2 * dk
        psi[axis] = np.real(np.fft.ifftn(psik)) / box_mpc_h  # Mpc/h -> box units
    return delta, psi


@dataclass
class InitialConditions:
    """Particles ready for a comoving simulation (box units, side 1)."""

    positions: np.ndarray  # (N, 3) in [0, 1)
    velocities: np.ndarray  # (N, 3), dx/d(ln a) "displacement velocity"
    a_start: float
    box_mpc_h: float
    cosmology: Cosmology
    delta_grid: np.ndarray

    @property
    def n_particles(self) -> int:
        return self.positions.shape[0]

    def rms_displacement(self) -> float:
        """RMS Zel'dovich displacement in box units (sanity metric)."""
        lattice = _lattice(round(self.n_particles ** (1 / 3)))
        d = self.positions - lattice
        d -= np.round(d)  # periodic wrap
        return float(np.sqrt((d**2).sum(axis=1).mean()))


def _lattice(n_side: int) -> np.ndarray:
    g = (np.arange(n_side) + 0.5) / n_side
    return np.stack(np.meshgrid(g, g, g, indexing="ij"), axis=-1).reshape(-1, 3)


def zeldovich_ics(
    n_side: int = 16,
    box_mpc_h: float = 125.0,
    a_start: float = 0.05,
    cosmology: Cosmology = LCDM,
    seed: int = 20031115,
    k_cut_fraction: float = 1.0,
) -> InitialConditions:
    """Zel'dovich ICs for ``n_side**3`` particles.

    ``box_mpc_h`` defaults to the paper's 125 Mpc ("a portion of the
    Universe about 125 Megaparsecs on a side", Fig 7).  Velocities are
    stored as d(x)/d(ln a) in box units — the natural variable of the
    growth-factor leapfrog in :mod:`repro.cosmology.simulation`.
    """
    if n_side < 2:
        raise ValueError("n_side must be >= 2")
    if not 0 < a_start < 1:
        raise ValueError("a_start must be in (0, 1)")
    power = PowerSpectrum(cosmology)
    grid = n_side  # displacement grid matched to the particle lattice
    _, psi = gaussian_field(grid, box_mpc_h, power, 1.0, seed, k_cut_fraction)  # at a=1
    d = cosmology.growth_factor(a_start)
    f = cosmology.growth_rate(a_start)
    lattice = _lattice(n_side)
    # Interpolate psi at lattice points = grid points (1:1 mapping).
    disp = np.stack([psi[i].ravel() for i in range(3)], axis=1)
    positions = np.mod(lattice + d * disp, 1.0)
    velocities = f * d * disp  # dx/dlna = f D psi
    delta, _ = gaussian_field(grid, box_mpc_h, power, a_start, seed, k_cut_fraction)
    return InitialConditions(positions, velocities, a_start, box_mpc_h, cosmology, delta)
