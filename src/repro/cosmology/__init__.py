"""Cosmological N-body simulation (Section 4.3, Figure 7).

FRW background and linear growth, BBKS power spectra, Zel'dovich
initial conditions, periodic particle-mesh gravity with a
growth-factor-exact comoving leapfrog, friends-of-friends halo
finding, clustering statistics, and the performance model of the
paper's 134-million-particle production run.
"""

from .background import EDS, LCDM, Cosmology
from .correlation import (
    correlation_function,
    measured_power_spectrum,
    measured_power_spectrum_reference,
    pair_counts_periodic,
    pair_counts_periodic_reference,
)
from .fof import FofResult, Halo, friends_of_friends, friends_of_friends_reference
from .ics import InitialConditions, gaussian_field, zeldovich_ics
from .pm import (
    PMSolver,
    cic_deposit,
    cic_deposit_reference,
    cic_interpolate,
    cic_interpolate_reference,
)
from .power import PowerSpectrum, bbks_transfer, tophat_window
from .simulation import PAPER_RUN, ComovingSimulation, CosmologyRunModel

__all__ = [
    "Cosmology",
    "LCDM",
    "EDS",
    "PowerSpectrum",
    "bbks_transfer",
    "tophat_window",
    "InitialConditions",
    "zeldovich_ics",
    "gaussian_field",
    "PMSolver",
    "cic_deposit",
    "cic_deposit_reference",
    "cic_interpolate",
    "cic_interpolate_reference",
    "ComovingSimulation",
    "CosmologyRunModel",
    "PAPER_RUN",
    "Halo",
    "FofResult",
    "friends_of_friends",
    "friends_of_friends_reference",
    "pair_counts_periodic",
    "pair_counts_periodic_reference",
    "correlation_function",
    "measured_power_spectrum",
    "measured_power_spectrum_reference",
]
