"""Linear matter power spectrum: BBKS transfer function + sigma8 norm.

The initial conditions of Section 4.3 ("gravitational collapse of
primordial density fluctuations") start from a linear CDM spectrum.
The Bardeen-Bond-Kaiser-Szalay (BBKS) transfer function with the
Sugiyama baryon correction is the classic analytic form the early HOT
cosmology runs used; amplitude is fixed by sigma8 through the top-hat
variance integral.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.integrate import quad

from .background import Cosmology, LCDM

__all__ = ["PowerSpectrum", "bbks_transfer", "tophat_window"]


def bbks_transfer(k: np.ndarray, gamma: float) -> np.ndarray:
    """BBKS CDM transfer function; ``k`` in h/Mpc, ``gamma`` the shape.

    T(q) with q = k / Gamma, the standard fit accurate to a few percent
    over the scales N-body simulations resolve.
    """
    k = np.asarray(k, dtype=np.float64)
    if np.any(k < 0):
        raise ValueError("wavenumbers must be non-negative")
    if gamma <= 0:
        raise ValueError("shape parameter must be positive")
    q = np.maximum(k, 1e-30) / gamma
    t = (
        np.log(1.0 + 2.34 * q)
        / (2.34 * q)
        * (1.0 + 3.89 * q + (16.1 * q) ** 2 + (5.46 * q) ** 3 + (6.71 * q) ** 4) ** -0.25
    )
    return np.where(k > 0, t, 1.0)


def tophat_window(x: np.ndarray) -> np.ndarray:
    """Fourier transform of the real-space top-hat, W(x) = 3 j1(x)/x."""
    x = np.asarray(x, dtype=np.float64)
    small = np.abs(x) < 1e-4
    safe = np.where(small, 1.0, x)
    w = 3.0 * (np.sin(safe) - safe * np.cos(safe)) / safe**3
    return np.where(small, 1.0 - x**2 / 10.0, w)


@dataclass
class PowerSpectrum:
    """sigma8-normalized linear P(k) for a cosmology.

    Units: k in h/Mpc, P in (Mpc/h)^3.  ``at_redshift`` scales the
    amplitude with the growth factor squared.
    """

    cosmology: Cosmology = LCDM

    def __post_init__(self) -> None:
        cosmo = self.cosmology
        # Sugiyama (1995) shape parameter with baryon correction.
        self.gamma = cosmo.omega_m * cosmo.h * np.exp(
            -cosmo.omega_b * (1.0 + np.sqrt(2.0 * cosmo.h) / cosmo.omega_m)
        )
        self._norm = 1.0
        self._norm = (cosmo.sigma8 / np.sqrt(self.sigma_r(8.0))) ** 2

    def unnormalized(self, k: np.ndarray) -> np.ndarray:
        k = np.asarray(k, dtype=np.float64)
        return k**self.cosmology.n_s * bbks_transfer(k, self.gamma) ** 2

    def __call__(self, k: np.ndarray, a: float = 1.0) -> np.ndarray:
        """P(k, a) in (Mpc/h)^3."""
        d = self.cosmology.growth_factor(a)
        return self._norm * self.unnormalized(k) * d * d

    def sigma_r(self, r_mpc_h: float, a: float = 1.0) -> float:
        """Top-hat variance sigma^2(R) (so sigma8^2 at R=8)."""
        if r_mpc_h <= 0:
            raise ValueError("radius must be positive")
        d = self.cosmology.growth_factor(a)

        def integrand(lnk: float) -> float:
            k = np.exp(lnk)
            return (
                k**3
                * self._norm
                * float(self.unnormalized(np.array([k]))[0])
                * float(tophat_window(np.array([k * r_mpc_h]))[0]) ** 2
                / (2.0 * np.pi**2)
            )

        val, _ = quad(integrand, np.log(1e-5), np.log(1e3), limit=200)
        return val * d * d
