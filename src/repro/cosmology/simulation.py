"""Comoving-coordinate N-body evolution and the Section 4.3 run model.

:class:`ComovingSimulation` integrates collisionless particles in a
periodic unit box using ln(a) as the time variable.  With
``u = dx/dln a`` the equation of motion is

.. math::

    u' = -\\left(2 - \\tfrac{3}{2}\\Omega_m(a)\\right) u
         + \\tfrac{3}{2}\\Omega_m(a)\\, \\tilde g(x),
    \\qquad \\nabla^2 \\tilde\\phi = \\delta,\\ \\tilde g = -\\nabla\\tilde\\phi

whose linear solutions are exactly the growth factors D(a) — which is
also the validation: a Zel'dovich realization must amplify like
D(a) until shell crossing (asserted by the test suite).  The kick is
semi-implicit in the Hubble-friction term for unconditional stability.

:class:`CosmologyRunModel` is the performance model of the paper's
flagship run: 134 million particles, ~700 timesteps, 24 hours on 250
processors, 10^16 flops (112 Gflop/s), 1.5 TB written at an average
417 Mbyte/s with peak parallel-local-disk I/O near 7 Gbyte/s.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..machine.node import DiskSpec, NodeSpec, SPACE_SIMULATOR_NODE
from ..machine.specs import FLOPS_PER_INTERACTION
from .background import Cosmology, LCDM
from .ics import InitialConditions, zeldovich_ics
from .pm import PMSolver

__all__ = ["ComovingSimulation", "CosmologyRunModel", "PAPER_RUN", "run_campaign_scenario"]


class ComovingSimulation:
    """KDK leapfrog in ln(a) over PM gravity (periodic unit box).

    ``pm_grid`` defaults to the particle lattice dimension: a grid
    commensurate with the initial lattice is *blind* to the lattice
    pattern (each particle CIC-splits evenly), so the measured density
    contrast is pure perturbation.  Incommensurate grids alias the
    lattice into O(1) spurious power — avoid them.
    """

    def __init__(self, ics: InitialConditions, pm_grid: int | None = None):
        self.cosmology: Cosmology = ics.cosmology
        self.positions = np.mod(ics.positions.copy(), 1.0)
        self.velocities = ics.velocities.copy()  # dx/dlna
        self.a = ics.a_start
        if pm_grid is None:
            pm_grid = max(round(ics.n_particles ** (1.0 / 3.0)), 4)
        self.solver = PMSolver(pm_grid)
        self.steps_taken = 0
        self._g = None

    def _coefficients(self) -> tuple[float, float]:
        om = self.cosmology.omega_m_of_a(self.a)
        return 2.0 - 1.5 * om, 1.5 * om  # friction alpha, source beta

    def _kick(self, dlna: float) -> None:
        alpha, beta = self._coefficients()
        if self._g is None:
            self._g = self.solver.accelerations(self.positions)
        # Semi-implicit in the friction term.
        self.velocities = (self.velocities + dlna * beta * self._g) / (1.0 + dlna * alpha)

    def step(self, dlna: float = 0.05) -> None:
        """One KDK step of size ``dlna`` in ln(a)."""
        if dlna <= 0:
            raise ValueError("dlna must be positive")
        self._kick(dlna / 2.0)
        self.positions = np.mod(self.positions + dlna * self.velocities, 1.0)
        self.a *= np.exp(dlna)
        self._g = self.solver.accelerations(self.positions)
        self._kick(dlna / 2.0)
        self.steps_taken += 1

    def run_to(self, a_final: float, dlna: float = 0.05) -> None:
        """Advance to scale factor ``a_final``."""
        if a_final <= self.a:
            raise ValueError("a_final must exceed the current scale factor")
        n = int(np.ceil(np.log(a_final / self.a) / dlna))
        actual = np.log(a_final / self.a) / n
        for _ in range(n):
            self.step(actual)

    def density_rms(self, grid: int | None = None) -> float:
        """RMS density contrast on the PM grid (growth diagnostic)."""
        solver = self.solver if grid is None else PMSolver(grid)
        delta = solver.density_contrast(self.positions)
        return float(np.sqrt((delta**2).mean()))

    # -- checkpoint / restart --------------------------------------------
    def checkpoint(self, directory: str) -> str:
        """Write a restartable snapshot (see repro.core.snapshot)."""
        from ..core.snapshot import write_snapshot

        c = self.cosmology
        return write_snapshot(
            directory,
            {"positions": self.positions, "velocities": self.velocities},
            meta={
                "kind": "comoving",
                "a": self.a,
                "steps_taken": self.steps_taken,
                "pm_grid": self.solver.grid,
                "h": c.h, "omega_m": c.omega_m, "omega_l": c.omega_l,
                "omega_b": c.omega_b, "n_s": c.n_s, "sigma8": c.sigma8,
            },
        )

    @classmethod
    def restore(cls, directory: str) -> "ComovingSimulation":
        """Resume exactly from a checkpoint (bit-deterministic)."""
        from ..core.snapshot import SnapshotError, read_snapshot

        snap = read_snapshot(directory)
        if snap.meta.get("kind") != "comoving":
            raise SnapshotError("snapshot is not a comoving simulation checkpoint")
        obj = cls.__new__(cls)
        obj.cosmology = Cosmology(
            h=snap.meta["h"], omega_m=snap.meta["omega_m"], omega_l=snap.meta["omega_l"],
            omega_b=snap.meta["omega_b"], n_s=snap.meta["n_s"], sigma8=snap.meta["sigma8"],
        )
        obj.positions = snap["positions"].copy()
        obj.velocities = snap["velocities"].copy()
        obj.a = float(snap.meta["a"])
        obj.solver = PMSolver(int(snap.meta["pm_grid"]))
        obj.steps_taken = int(snap.meta["steps_taken"])
        obj._g = None
        return obj


def run_campaign_scenario(params: Mapping) -> dict:
    """Campaign entry point: one cosmology scenario → summary dict.

    ``params`` are the fields of
    :class:`repro.campaign.spec.CosmologySpec`: lattice ``n_side``,
    start/final scale factors, step size, realization ``seed``, box
    size, and the flat-FRW cosmology knobs.  Runs Zel'dovich ICs
    through the PM comoving integrator and returns JSON-scalar
    observables only — the contract every campaign scenario follows so
    results are content-addressable and bit-comparable across runs.
    """
    cosmo = Cosmology(
        h=float(params.get("h", 0.7)),
        omega_m=float(params.get("omega_m", 0.3)),
        omega_l=float(params.get("omega_l", 0.7)),
        omega_b=float(params.get("omega_b", 0.045)),
        n_s=float(params.get("n_s", 1.0)),
        sigma8=float(params.get("sigma8", 0.9)),
    )
    a_start = float(params.get("a_start", 0.05))
    a_final = float(params.get("a_final", 0.2))
    ics = zeldovich_ics(
        n_side=int(params.get("n_side", 4)),
        box_mpc_h=float(params.get("box_mpc_h", 125.0)),
        a_start=a_start,
        cosmology=cosmo,
        seed=int(params.get("seed", 20031115)),
    )
    rms_initial = ics.rms_displacement()
    sim = ComovingSimulation(ics)
    sim.run_to(a_final, dlna=float(params.get("dlna", 0.05)))
    return {
        "a_final": float(sim.a),
        "steps": int(sim.steps_taken),
        "n_particles": int(ics.n_particles),
        "density_rms": sim.density_rms(),
        "rms_displacement_initial": float(rms_initial),
        "growth_ratio": float(cosmo.growth_factor(a_final) / cosmo.growth_factor(a_start)),
    }


@dataclass(frozen=True)
class CosmologyRunModel:
    """Performance model of a production cosmology run (Section 4.3)."""

    n_particles: float = 134e6
    n_steps: int = 700
    interactions_per_particle: float = 2800.0
    n_procs: int = 250
    proc_mflops: float = 500.0  # sustained treecode rate per processor
    data_written_bytes: float = 1.5e12
    io_duty_efficiency: float = 0.06  # avg-to-peak I/O ratio (checkpoint cadence)
    node: NodeSpec = field(default_factory=lambda: SPACE_SIMULATOR_NODE)

    def __post_init__(self) -> None:
        if min(self.n_particles, self.n_steps, self.n_procs, self.proc_mflops) <= 0:
            raise ValueError("invalid run parameters")
        if not 0 < self.io_duty_efficiency <= 1:
            raise ValueError("io_duty_efficiency must be a fraction")

    @property
    def total_flops(self) -> float:
        """The paper's 10^16."""
        return (
            self.n_particles
            * self.n_steps
            * self.interactions_per_particle
            * FLOPS_PER_INTERACTION
        )

    @property
    def compute_seconds(self) -> float:
        return self.total_flops / (self.n_procs * self.proc_mflops * 1e6)

    @property
    def peak_io_bytes_s(self) -> float:
        """Parallel local-disk peak (paper: "near 7 Gbytes/sec")."""
        disk: DiskSpec = self.node.disk
        return self.n_procs * disk.sustained_mbytes_s * 1e6

    @property
    def average_io_bytes_s(self) -> float:
        """Average rate during I/O phases (paper: 417 Mbyte/s)."""
        return self.peak_io_bytes_s * self.io_duty_efficiency

    @property
    def io_seconds(self) -> float:
        return self.data_written_bytes / self.average_io_bytes_s

    @property
    def wall_seconds(self) -> float:
        return self.compute_seconds + self.io_seconds

    @property
    def achieved_gflops(self) -> float:
        """Sustained rate over the whole run (paper: 112 Gflop/s)."""
        return self.total_flops / self.wall_seconds / 1e9

    @property
    def runs_per_week(self) -> float:
        """Paper: "several 134 million particle ... simulations per week"."""
        return 7 * 86400.0 / self.wall_seconds


#: The run quoted in Section 4.3 (proc_mflops set so compute+I/O fills
#: the stated 24 hours).
PAPER_RUN = CosmologyRunModel()
