"""Cluster-scale HPL performance model (Figure 3).

The Space Simulator's Linpack story: 665.1 Gflop/s on 288 processors
with MPICH 1.2.4 (November 2002, #85 on the TOP500), improved to 757.1
Gflop/s with LAM 6.5.9 and a newer ATLAS (April 2003, #88 on the 21st
list) — the first TOP500 machine under one dollar per Mflop/s.

The model decomposes HPL time in the standard way::

    T = 2N^3 / (3 P r_node)                          (DGEMM)
      + beta_v * 8 N^2 / (sqrt(P) * BW)              (panel/update traffic)
      + (N / nb) * log2(P) * alpha                   (broadcast latencies)

``r_node`` is the single-node Linpack rate (Table 2: 3.302 Gflop/s,
i.e. 65.3% of peak with ATLAS), ``BW``/``alpha`` come from the
messaging-stack model, and the single constant ``beta_v`` is calibrated
once against the LAM 757.1 Gflop/s measurement.  The MPICH point — and
everything else (scaling curves, the effect of problem size) — is then
a prediction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..machine.node import NodeSpec, SPACE_SIMULATOR_NODE
from ..network.stacks import LAM_O, MPICH_125, MessagingStack
from .hpl import hpl_flops

__all__ = [
    "ClusterHplModel",
    "SS_NODE_LINPACK_GFLOPS",
    "calibrated_space_simulator_model",
    "PAPER_LAM_GFLOPS",
    "PAPER_MPICH_GFLOPS",
]

#: Table 2, Linpack row, normal configuration (single node, Gflop/s).
SS_NODE_LINPACK_GFLOPS = 3.302
#: Figure 3 measurements.
PAPER_MPICH_GFLOPS = 665.1
PAPER_LAM_GFLOPS = 757.1


@dataclass(frozen=True)
class ClusterHplModel:
    """Parametric HPL estimate for a homogeneous cluster."""

    node: NodeSpec = SPACE_SIMULATOR_NODE
    n_procs: int = 288
    stack: MessagingStack = LAM_O
    node_gflops: float = SS_NODE_LINPACK_GFLOPS
    block: int = 64
    beta_v: float = 1.0

    def __post_init__(self) -> None:
        if self.n_procs < 1 or self.node_gflops <= 0 or self.block < 1:
            raise ValueError("invalid model parameters")
        if self.beta_v < 0:
            raise ValueError("beta_v must be non-negative")

    def problem_size(self, mem_fraction: float = 0.8) -> int:
        """Largest N fitting in a fraction of the cluster's memory."""
        if not 0 < mem_fraction <= 1:
            raise ValueError("mem_fraction must be in (0, 1]")
        total_bytes = self.n_procs * self.node.ram_mb * 1e6
        return int(math.sqrt(mem_fraction * total_bytes / 8.0))

    def time_s(self, n: int) -> float:
        if n < 1:
            raise ValueError("n must be >= 1")
        p = self.n_procs
        t_comp = hpl_flops(n) / (p * self.node_gflops * 1e9)
        bw_bytes = self.stack.asymptotic_mbits_s * 1e6 / 8.0
        t_vol = self.beta_v * 8.0 * n * n / (math.sqrt(p) * bw_bytes)
        t_lat = (n / self.block) * max(math.log2(p), 1.0) * self.stack.latency_us * 1e-6
        return t_comp + t_vol + t_lat

    def gflops(self, n: int | None = None) -> float:
        n = self.problem_size() if n is None else n
        return hpl_flops(n) / self.time_s(n) / 1e9

    def efficiency(self, n: int | None = None) -> float:
        """Fraction of P x single-node Linpack achieved."""
        return self.gflops(n) / (self.n_procs * self.node_gflops)

    def with_stack(self, stack: MessagingStack) -> "ClusterHplModel":
        return replace(self, stack=stack)

    def with_procs(self, n_procs: int) -> "ClusterHplModel":
        return replace(self, n_procs=n_procs)


def calibrated_space_simulator_model() -> ClusterHplModel:
    """The 288-processor model with ``beta_v`` fit to the LAM result.

    Solves ``gflops(N*) == 757.1`` for ``beta_v`` in closed form (the
    time model is linear in ``beta_v``); the MPICH figure and every
    scaling prediction follow with no further freedom.
    """
    base = ClusterHplModel(beta_v=0.0)
    n = base.problem_size()
    t_target = hpl_flops(n) / (PAPER_LAM_GFLOPS * 1e9)
    t_nocomm = base.time_s(n)
    if t_target <= t_nocomm:
        raise RuntimeError("target exceeds the communication-free bound")
    bw_bytes = base.stack.asymptotic_mbits_s * 1e6 / 8.0
    unit_vol = 8.0 * n * n / (math.sqrt(base.n_procs) * bw_bytes)
    beta_v = (t_target - t_nocomm) / unit_vol
    return replace(base, beta_v=beta_v)


def predicted_mpich_gflops() -> float:
    """The Nov-2002 MPICH result as predicted from the LAM calibration."""
    model = calibrated_space_simulator_model().with_stack(MPICH_125)
    return model.gflops()
