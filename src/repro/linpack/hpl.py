"""High-Performance-Linpack-style solver: blocked LU with pivoting.

The real numerical core behind the Figure 3 / Table 2 Linpack numbers:
a right-looking, blocked LU factorization with partial pivoting, a
triangular solve, and HPL's scaled residual check.  At laptop scale the
kernel verifies the arithmetic is genuinely Linpack; the cluster-scale
Gflop/s numbers come from :mod:`repro.linpack.model`, which consumes
this kernel's operation count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..obs import NULL, Recorder

__all__ = ["HplResult", "lu_factor_blocked", "lu_solve", "hpl_flops", "run_hpl"]


def hpl_flops(n: int) -> float:
    """The official HPL operation count: 2/3 n^3 + 2 n^2."""
    return (2.0 / 3.0) * n**3 + 2.0 * n**2


def lu_factor_blocked(a: np.ndarray, block: int = 64) -> tuple[np.ndarray, np.ndarray]:
    """In-place blocked LU with partial pivoting; returns (LU, piv).

    Right-looking algorithm: factor a panel (unblocked, with row
    swaps), apply the pivots across the trailing matrix, triangular-
    solve the block row, then rank-``block`` update the trailing
    submatrix with DGEMM — the structure that lets ATLAS's matmul carry
    the flops, which is why Linpack sits at the CPU-bound corner of
    Table 2.
    """
    a = np.ascontiguousarray(a, dtype=np.float64)
    n = a.shape[0]
    if a.ndim != 2 or a.shape[1] != n:
        raise ValueError("matrix must be square")
    if block < 1:
        raise ValueError("block must be >= 1")
    piv = np.arange(n)
    for k in range(0, n, block):
        kb = min(block, n - k)
        # Unblocked panel factorization with partial pivoting.
        for j in range(k, k + kb):
            p = j + int(np.argmax(np.abs(a[j:, j])))
            if a[p, j] == 0.0:
                raise np.linalg.LinAlgError("matrix is singular")
            if p != j:
                a[[j, p], :] = a[[p, j], :]
                piv[[j, p]] = piv[[p, j]]
            a[j + 1 :, j] /= a[j, j]
            if j + 1 < k + kb:
                a[j + 1 :, j + 1 : k + kb] -= np.outer(a[j + 1 :, j], a[j, j + 1 : k + kb])
        if k + kb < n:
            # Block row: solve L11 @ U12 = A12.
            l11 = np.tril(a[k : k + kb, k : k + kb], -1) + np.eye(kb)
            a[k : k + kb, k + kb :] = np.linalg.solve(l11, a[k : k + kb, k + kb :])
            # Trailing update (the DGEMM).
            a[k + kb :, k + kb :] -= a[k + kb :, k : k + kb] @ a[k : k + kb, k + kb :]
    return a, piv


def lu_solve(lu: np.ndarray, piv: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` from the factored form."""
    n = lu.shape[0]
    x = b[piv].astype(np.float64).copy()
    for i in range(1, n):  # forward substitution (unit lower)
        x[i] -= lu[i, :i] @ x[:i]
    for i in range(n - 1, -1, -1):  # back substitution
        x[i] = (x[i] - lu[i, i + 1 :] @ x[i + 1 :]) / lu[i, i]
    return x


@dataclass(frozen=True)
class HplResult:
    """Outcome of one HPL run at laptop scale."""

    n: int
    seconds: float
    gflops: float
    residual: float
    passed: bool


def run_hpl(
    n: int = 512, block: int = 64, seed: int = 42, observer: Recorder | None = None
) -> HplResult:
    """One HPL-style run: factor, solve, and check the scaled residual.

    The pass criterion is HPL's: ``||Ax-b||_inf / (eps ||A||_1 ||x||_1 n)``
    below 16.  With ``observer``, the factor and solve phases are
    recorded as nested wall-clock spans under ``hpl.run``, and the HPL
    operation count lands in the ``hpl.flops`` counter.
    """
    obs = observer if observer is not None else NULL
    rng = np.random.default_rng(seed)
    a0 = rng.random((n, n)) - 0.5
    b = rng.random(n) - 0.5
    with obs.span("hpl.run", cat="bench", n=n, block=block):
        t0 = time.perf_counter()
        with obs.span("hpl.factor", cat="bench"):
            lu, piv = lu_factor_blocked(a0.copy(), block)
        with obs.span("hpl.solve", cat="bench"):
            x = lu_solve(lu, piv, b)
        dt = time.perf_counter() - t0
    obs.count("hpl.flops", hpl_flops(n))
    resid = np.abs(a0 @ x - b).max()
    scaled = resid / (np.finfo(np.float64).eps * np.abs(a0).sum(axis=1).max() * np.abs(x).sum() * n)
    return HplResult(n, dt, hpl_flops(n) / dt / 1e9, scaled, bool(scaled < 16.0))
