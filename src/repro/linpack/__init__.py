"""Linpack: real blocked LU kernel + cluster HPL model (Fig 3, Table 2)."""

from .hpl import HplResult, hpl_flops, lu_factor_blocked, lu_solve, run_hpl
from .model import (
    PAPER_LAM_GFLOPS,
    PAPER_MPICH_GFLOPS,
    SS_NODE_LINPACK_GFLOPS,
    ClusterHplModel,
    calibrated_space_simulator_model,
    predicted_mpich_gflops,
)

__all__ = [
    "HplResult",
    "hpl_flops",
    "lu_factor_blocked",
    "lu_solve",
    "run_hpl",
    "ClusterHplModel",
    "calibrated_space_simulator_model",
    "predicted_mpich_gflops",
    "SS_NODE_LINPACK_GFLOPS",
    "PAPER_LAM_GFLOPS",
    "PAPER_MPICH_GFLOPS",
]
