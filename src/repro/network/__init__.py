"""Gigabit-ethernet network models: stacks, NetPIPE, switch fabric.

The reproduction's stand-in for the 3c996B-T NICs and the Foundry
FastIron 1500+800 fabric (DESIGN.md substitution table).  Calibrated
against the Figure 2 curve features (779 Mbit/s TCP peak, 79-87 us
latencies) and the Section 3.1 backplane measurements (6000 Mbit/s
cross-module, 8 Gbit/s trunk).
"""

from .netpipe import NetpipePoint, NetpipeSummary, message_sizes, summarize, sweep
from .stacks import (
    FIGURE2_STACKS,
    LAM,
    LAM_O,
    MPICH2_092,
    MPICH_125,
    TCP,
    MessagingStack,
)
from .switch import (
    FASTIRON_800,
    FASTIRON_1500,
    SPACE_SIMULATOR_FABRIC,
    FabricModel,
    Flow,
    PortLocation,
    SwitchSpec,
)
from .topology import (
    bisection_flows,
    cross_module_flows,
    effective_pairwise_mbits,
    hypercube_pairs,
    pair_flows,
)

__all__ = [
    "MessagingStack",
    "TCP",
    "LAM",
    "LAM_O",
    "MPICH2_092",
    "MPICH_125",
    "FIGURE2_STACKS",
    "NetpipePoint",
    "NetpipeSummary",
    "message_sizes",
    "sweep",
    "summarize",
    "SwitchSpec",
    "FabricModel",
    "Flow",
    "PortLocation",
    "FASTIRON_1500",
    "FASTIRON_800",
    "SPACE_SIMULATOR_FABRIC",
    "hypercube_pairs",
    "pair_flows",
    "cross_module_flows",
    "bisection_flows",
    "effective_pairwise_mbits",
]
