"""NetPIPE-style point-to-point sweep over a messaging stack.

NetPIPE measures ping-pong time across an exponential ladder of message
sizes and reports achieved bandwidth versus size; Figure 2 of the paper
plots the result for five stacks.  :func:`sweep` regenerates that curve
from a :class:`~repro.network.stacks.MessagingStack`, and
:func:`summarize` extracts the two headline numbers the paper quotes:
small-message latency and peak bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .stacks import MessagingStack

__all__ = ["NetpipePoint", "NetpipeSummary", "message_sizes", "sweep", "summarize"]


@dataclass(frozen=True)
class NetpipePoint:
    """One measurement: message size and achieved bandwidth/time."""

    nbytes: int
    mbits_s: float
    time_us: float


@dataclass(frozen=True)
class NetpipeSummary:
    """Headline NetPIPE metrics for one stack."""

    stack: str
    latency_us: float
    peak_mbits_s: float
    half_bandwidth_bytes: float


def message_sizes(max_bytes: int = 16 * 1024 * 1024, points_per_octave: int = 3) -> np.ndarray:
    """NetPIPE's geometric ladder of message sizes from 1 byte up.

    Real NetPIPE perturbs each size +/- a few bytes; that detail does
    not affect the model, so the ladder here is exact powers scaled
    within each octave.
    """
    if max_bytes < 1:
        raise ValueError("max_bytes must be >= 1")
    if points_per_octave < 1:
        raise ValueError("points_per_octave must be >= 1")
    n_octaves = int(np.ceil(np.log2(max_bytes)))
    exponents = np.arange(0, n_octaves * points_per_octave + 1) / points_per_octave
    sizes = np.unique(np.round(2.0**exponents).astype(np.int64))
    return sizes[sizes <= max_bytes]


def sweep(stack: MessagingStack, sizes: np.ndarray | None = None) -> list[NetpipePoint]:
    """Bandwidth-versus-size curve for ``stack`` (Figure 2's series)."""
    if sizes is None:
        sizes = message_sizes()
    points = []
    for n in sizes:
        n = int(n)
        t = stack.time_s(n)
        points.append(NetpipePoint(n, stack.bandwidth_mbits_s(n), t * 1e6))
    return points


def summarize(stack: MessagingStack, sizes: np.ndarray | None = None) -> NetpipeSummary:
    """Latency / peak-bandwidth summary, as quoted in the Fig 2 caption.

    Latency follows NetPIPE's convention: one-way time of a minimal
    (1-byte) message.  Peak bandwidth is the best point on the sweep.
    """
    points = sweep(stack, sizes)
    return NetpipeSummary(
        stack=stack.name,
        latency_us=stack.time_s(1) * 1e6,
        peak_mbits_s=max(p.mbits_s for p in points),
        half_bandwidth_bytes=stack.half_bandwidth_bytes(),
    )
