"""Cluster-level traffic patterns over the switch fabric.

Provides the traffic generators used by the Section 3.1 backplane
characterization (simultaneous pair traffic along hypercube edges) and
general bisection measurements, mapping MPI ranks onto physical switch
ports via :class:`~repro.network.switch.FabricModel.locate`.
"""

from __future__ import annotations

from .switch import FabricModel, Flow, PortLocation

__all__ = [
    "hypercube_pairs",
    "pair_flows",
    "cross_module_flows",
    "bisection_flows",
    "effective_pairwise_mbits",
]


def hypercube_pairs(n_ranks: int, dimension: int) -> list[tuple[int, int]]:
    """Partner pairs along edge ``dimension`` of the rank hypercube.

    Rank ``i`` pairs with ``i ^ (1 << dimension)``; each unordered pair
    is listed once, lower rank first.  Ranks whose partner falls outside
    ``n_ranks`` (non-power-of-two cluster sizes) are skipped, which is
    what the paper's probe program does on 294 nodes.
    """
    if n_ranks <= 0:
        raise ValueError("n_ranks must be positive")
    if dimension < 0:
        raise ValueError("dimension must be non-negative")
    bit = 1 << dimension
    pairs = []
    for i in range(n_ranks):
        j = i ^ bit
        if i < j < n_ranks:
            pairs.append((i, j))
    return pairs


def pair_flows(fabric: FabricModel, pairs: list[tuple[int, int]]) -> list[Flow]:
    """Bidirectional flows (two per pair) for simultaneous pair traffic."""
    flows = []
    for a, b in pairs:
        la, lb = fabric.locate(a), fabric.locate(b)
        flows.append(Flow(la, lb))
        flows.append(Flow(lb, la))
    return flows


def cross_module_flows(
    fabric: FabricModel, src_module: int, dst_module: int, *, switch: int = 0, n_streams: int = 16
) -> list[Flow]:
    """The paper's 16-to-16 cross-module saturation test.

    ``n_streams`` ports on ``src_module`` each send to the corresponding
    port on ``dst_module``; the aggregate observed in the paper was
    about 6000 Mbit/s against the 8 Gbit/s raw backplane.
    """
    spec = fabric.switches[switch]
    if n_streams > spec.ports_per_module:
        raise ValueError(f"module has only {spec.ports_per_module} ports")
    if src_module == dst_module:
        raise ValueError("source and destination modules must differ")
    return [
        Flow(
            PortLocation(switch, src_module, p),
            PortLocation(switch, dst_module, p),
        )
        for p in range(n_streams)
    ]


def bisection_flows(fabric: FabricModel, n_ranks: int) -> list[Flow]:
    """Every rank in the lower half sends to its mirror in the upper half.

    With ranks cabled in port order, this stresses every module uplink
    and — once ``n_ranks`` spans both chassis — the inter-switch trunk,
    exposing the >256-processor scaling limit the paper notes.
    """
    if n_ranks < 2 or n_ranks % 2:
        raise ValueError("n_ranks must be an even number >= 2")
    half = n_ranks // 2
    return [Flow(fabric.locate(i), fabric.locate(i + half)) for i in range(half)]


def effective_pairwise_mbits(fabric: FabricModel, n_ranks: int) -> float:
    """Worst-case per-rank bandwidth over all hypercube dimensions.

    This is the number a tightly synchronized exchange (like HPL's
    broadcast rings or the treecode's batched request traffic) actually
    sees; it degrades once a dimension's pairs cross the trunk.
    """
    if n_ranks < 2:
        raise ValueError("need at least 2 ranks")
    worst = float("inf")
    dim = 0
    while (1 << dim) < n_ranks:
        pairs = hypercube_pairs(n_ranks, dim)
        if pairs:
            flows = pair_flows(fabric, pairs)
            rates = fabric.flow_rates(flows)
            worst = min(worst, min(rates))
        dim += 1
    return worst
