"""Model of the Foundry FastIron switch fabric.

Section 3.1 characterizes the fabric with a purpose-built MPI test that
drives simultaneous pair traffic along hypercube edges and observes:

* within a 16-port switch module, messages are non-blocking (each pair
  gets full gigabit line rate);
* the backplane capacity from one module to another is 8 Gbit/s raw,
  of which 16 simultaneous streams sustain about 6000 Mbit/s;
* the Space Simulator's fabric is a FastIron 1500 trunked to a FastIron
  800, and traffic between the two switches shares an 8 Gbit/s trunk —
  "this limits the scaling of codes running on more than about 256
  processors."

The model is a capacitated-link network with **max-min fair** rate
allocation (progressive water-filling).  A flow crosses: its source
port, possibly its source module's backplane uplink, possibly the
inter-switch trunk, possibly the destination module's backplane
downlink, and the destination port.  Ports carry 1 Gbit/s per
direction; module backplane links carry ``8000 * backplane_efficiency``
Mbit/s (the 0.75 default reproduces the measured 6000 Mbit/s); the
trunk carries 8000 Mbit/s of fiber.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PortLocation",
    "Flow",
    "SwitchSpec",
    "FabricModel",
    "SPACE_SIMULATOR_FABRIC",
    "FASTIRON_1500",
    "FASTIRON_800",
]

PORT_MBITS = 1000.0
MODULE_RAW_MBITS = 8000.0
TRUNK_MBITS = 8000.0


@dataclass(frozen=True)
class SwitchSpec:
    """A chassis switch built from 16-port gigabit modules."""

    name: str
    modules: int
    ports_per_module: int = 16

    def __post_init__(self) -> None:
        if self.modules <= 0 or self.ports_per_module <= 0:
            raise ValueError("modules and ports_per_module must be positive")

    @property
    def ports(self) -> int:
        return self.modules * self.ports_per_module


#: 224 ports cabled on the lower switch in Figure 1.
FASTIRON_1500 = SwitchSpec("Foundry FastIron 1500", modules=14)
#: The 800 provides the remaining ports (304 total across the fabric).
FASTIRON_800 = SwitchSpec("Foundry FastIron 800", modules=5)


@dataclass(frozen=True, order=True)
class PortLocation:
    """Physical location of a port: (switch index, module index, port index)."""

    switch: int
    module: int
    port: int


@dataclass(frozen=True)
class Flow:
    """A unidirectional stream between two ports."""

    src: PortLocation
    dst: PortLocation


class FabricModel:
    """Max-min fair throughput model of a trunked multi-switch fabric."""

    def __init__(
        self,
        switches: tuple[SwitchSpec, ...] = (FASTIRON_1500, FASTIRON_800),
        *,
        backplane_efficiency: float = 0.75,
        trunk_mbits: float = TRUNK_MBITS,
        port_mbits: float = PORT_MBITS,
    ):
        if not switches:
            raise ValueError("at least one switch is required")
        if not 0 < backplane_efficiency <= 1:
            raise ValueError("backplane_efficiency must be in (0, 1]")
        self.switches = switches
        self.backplane_efficiency = backplane_efficiency
        self.trunk_mbits = trunk_mbits
        self.port_mbits = port_mbits

    @property
    def total_ports(self) -> int:
        return sum(s.ports for s in self.switches)

    def locate(self, port_index: int) -> PortLocation:
        """Map a flat 0-based port index to its physical location.

        Ports are numbered switch by switch, module by module — the
        natural cabling order for a cluster (node *i* plugs into port
        *i*).
        """
        if port_index < 0:
            raise ValueError(f"port index must be non-negative, got {port_index}")
        remaining = port_index
        for s_idx, spec in enumerate(self.switches):
            if remaining < spec.ports:
                return PortLocation(s_idx, remaining // spec.ports_per_module, remaining % spec.ports_per_module)
            remaining -= spec.ports
        raise ValueError(f"port index {port_index} exceeds fabric size {self.total_ports}")

    def _validate(self, loc: PortLocation) -> None:
        if not 0 <= loc.switch < len(self.switches):
            raise ValueError(f"no such switch: {loc.switch}")
        spec = self.switches[loc.switch]
        if not 0 <= loc.module < spec.modules:
            raise ValueError(f"no module {loc.module} on {spec.name}")
        if not 0 <= loc.port < spec.ports_per_module:
            raise ValueError(f"no port {loc.port} on a {spec.ports_per_module}-port module")

    def _flow_links(self, flow: Flow) -> list[tuple]:
        """Capacitated links traversed by a flow, as hashable link ids."""
        self._validate(flow.src)
        self._validate(flow.dst)
        links: list[tuple] = [("port_tx", flow.src)]
        same_switch = flow.src.switch == flow.dst.switch
        same_module = same_switch and flow.src.module == flow.dst.module
        if not same_module:
            links.append(("module_up", flow.src.switch, flow.src.module))
            if not same_switch:
                links.append(("trunk",))
            links.append(("module_down", flow.dst.switch, flow.dst.module))
        links.append(("port_rx", flow.dst))
        return links

    def _capacity(self, link: tuple) -> float:
        kind = link[0]
        if kind in ("port_tx", "port_rx"):
            return self.port_mbits
        if kind in ("module_up", "module_down"):
            return MODULE_RAW_MBITS * self.backplane_efficiency
        if kind == "trunk":
            return self.trunk_mbits
        raise ValueError(f"unknown link kind {kind!r}")

    def flow_rates(self, flows: list[Flow]) -> list[float]:
        """Max-min fair rate (Mbit/s) for each flow via water-filling.

        Repeatedly finds the most contended link (smallest residual
        capacity per unsaturated flow), freezes its flows at the fair
        share, and removes the used capacity, until all flows are fixed.
        """
        if not flows:
            return []
        flow_links = [self._flow_links(f) for f in flows]
        residual: dict[tuple, float] = {}
        members: dict[tuple, set[int]] = {}
        for i, links in enumerate(flow_links):
            for link in links:
                residual.setdefault(link, self._capacity(link))
                members.setdefault(link, set()).add(i)
        rates = [0.0] * len(flows)
        unfixed = set(range(len(flows)))
        while unfixed:
            # Bottleneck link: minimal fair share among links with
            # active flows.
            best_link = None
            best_share = float("inf")
            for link, flow_set in members.items():
                active = flow_set & unfixed
                if not active:
                    continue
                share = residual[link] / len(active)
                if share < best_share:
                    best_share = share
                    best_link = link
            if best_link is None:
                break
            saturated = members[best_link] & unfixed
            for i in saturated:
                rates[i] = best_share
                for link in flow_links[i]:
                    residual[link] -= best_share
                unfixed.discard(i)
        return rates

    def aggregate_mbits(self, flows: list[Flow]) -> float:
        """Total fabric throughput for a flow set."""
        return sum(self.flow_rates(flows))


#: The fabric as installed: FastIron 1500 + 800, 304 gigabit ports.
SPACE_SIMULATOR_FABRIC = FabricModel()
