"""Models of the message-passing stacks measured in Figure 2.

Section 3.1 measures point-to-point performance with NetPIPE for five
software stacks over the same 3c996B-T gigabit hardware:

=================  ============  ==========================
stack               latency       asymptotic bandwidth
=================  ============  ==========================
raw TCP             79 us         779 Mbit/s
LAM 6.5.9 -O        83 us         ~750 Mbit/s
LAM 6.5.9           83 us         ~660 Mbit/s (hetero mode
                                  packs/converts every buffer)
mpich2 0.92b        87 us         ~740 Mbit/s
mpich 1.2.5         87 us         ~560 Mbit/s (extra internal
                                  copy on its rendezvous path)
=================  ============  ==========================

Each stack is a Hockney-style latency/bandwidth model with an optional
per-byte software overhead term representing extra copies or data
conversion, which is what separates the curves at large message sizes
(the feature Figure 2 is about).  The TCP numbers are the calibration
anchor (the paper prints them exactly); the MPI stacks' large-message
separations are set to match the figure's visual ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "MessagingStack",
    "TCP",
    "LAM_O",
    "LAM",
    "MPICH2_092",
    "MPICH_125",
    "FIGURE2_STACKS",
]


@dataclass(frozen=True)
class MessagingStack:
    """Hockney model with software copy overhead.

    One-way time for an ``n``-byte message::

        t(n) = latency + n / wire_bandwidth + copies * n / copy_bandwidth

    ``copy_mbytes_s`` is the rate of the extra in-memory copies the
    stack performs (bounded by node STREAM bandwidth); ``copies`` is how
    many such passes the stack makes over the payload.
    """

    name: str
    latency_us: float
    wire_mbits_s: float
    copies: float = 0.0
    copy_mbytes_s: float = 1200.0
    eager_threshold: int = 64 * 1024
    rendezvous_us: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_us <= 0 or self.wire_mbits_s <= 0:
            raise ValueError("latency and bandwidth must be positive")
        if self.copies < 0 or self.copy_mbytes_s <= 0:
            raise ValueError("copy parameters must be non-negative / positive")

    def time_s(self, nbytes: int) -> float:
        """One-way transfer time for an ``nbytes`` message."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        t = self.latency_us * 1e-6
        t += nbytes * 8.0 / (self.wire_mbits_s * 1e6)
        t += self.copies * nbytes / (self.copy_mbytes_s * 1e6)
        if nbytes > self.eager_threshold:
            t += self.rendezvous_us * 1e-6
        return t

    def bandwidth_mbits_s(self, nbytes: int) -> float:
        """Achieved bandwidth (NetPIPE's y-axis) for a message size."""
        if nbytes == 0:
            return 0.0
        return nbytes * 8.0 / self.time_s(nbytes) / 1e6

    @property
    def asymptotic_mbits_s(self) -> float:
        """Large-message bandwidth limit."""
        per_byte = 8.0 / (self.wire_mbits_s * 1e6) + self.copies / (self.copy_mbytes_s * 1e6)
        return 8.0 / per_byte / 1e6

    def half_bandwidth_bytes(self) -> float:
        """n_1/2: message size achieving half the asymptotic bandwidth."""
        per_byte = 8.0 / (self.wire_mbits_s * 1e6) + self.copies / (self.copy_mbytes_s * 1e6)
        return (self.latency_us * 1e-6 + self.rendezvous_us * 1e-6) / per_byte


#: Raw TCP over the 3c996B-T (Fig 2: 779 Mbit/s, 79 us).
TCP = MessagingStack("TCP", latency_us=79.0, wire_mbits_s=779.0)

#: LAM 6.5.9 with -O (homogeneous): thin shim over TCP.
LAM_O = MessagingStack("LAM 6.5.9 -O", latency_us=83.0, wire_mbits_s=760.0)

#: LAM 6.5.9 default (heterogeneous): packs/converts every buffer,
#: which costs sustained bandwidth at every message size.
LAM = MessagingStack("LAM 6.5.9", latency_us=83.0, wire_mbits_s=660.0, copies=0.10)

#: mpich2 0.92 beta: solved mpich-1.2.5's large-message problem.
MPICH2_092 = MessagingStack("mpich2 0.92b", latency_us=87.0, wire_mbits_s=745.0)

#: mpich 1.2.5: non-overlapped rendezvous chunking serializes protocol
#: processing with the wire (the slow large-message curve in Fig 2).
MPICH_125 = MessagingStack(
    "mpich 1.2.5",
    latency_us=87.0,
    wire_mbits_s=560.0,
    copies=0.10,
    eager_threshold=128 * 1024,
    rendezvous_us=90.0,
)

#: The five curves of Figure 2, fastest first.
FIGURE2_STACKS: tuple[MessagingStack, ...] = (TCP, LAM_O, MPICH2_092, LAM, MPICH_125)
