"""Generic ASCII Gantt rendering over spans.

The poor man's Vampir view, generalized: any span list renders as one
row per track with category-coded glyphs.  :func:`repro.simmpi.trace.render_timeline`
is a thin adapter over this renderer, preserving its historical output
byte for byte.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from .model import Span

__all__ = ["render_spans", "DEFAULT_SYMBOLS"]

#: Category -> glyph.  ``compute`` overwrites anything; others only
#: fill blank cells, so compute/wait overlaps read as compute.
DEFAULT_SYMBOLS: dict[str, str] = {
    "compute": "#",
    "blocked": ".",
    "collective": ".",
    "failed": "X",
}


def render_spans(
    spans: Iterable[Span],
    elapsed: float,
    *,
    n_tracks: int | None = None,
    width: int = 72,
    symbols: Mapping[str, str] | None = None,
    header: str | None = None,
    track_label: str = "rank",
) -> str:
    """Render spans as an ASCII timeline, one row per track."""
    spans = list(spans)
    if not spans:
        return "(empty trace)"
    if elapsed <= 0:
        raise ValueError("elapsed must be positive")
    if width < 10:
        raise ValueError("width must be >= 10")
    glyphs = dict(DEFAULT_SYMBOLS)
    if symbols:
        glyphs.update(symbols)
    if n_tracks is None:
        n_tracks = max(s.track for s in spans) + 1
    if header is None:
        header = (
            f"timeline ({elapsed:.3g}s virtual, "
            "'#'=compute '.'=blocked 'X'=crash):"
        )
    lines = [header]
    for track in range(n_tracks):
        row = [" "] * width
        for s in spans:
            if s.track != track:
                continue
            lo = int(s.t_start / elapsed * width)
            if s.cat == "failed":
                row[min(lo, width - 1)] = glyphs.get("failed", "X")
                continue
            ch = glyphs.get(s.cat, ".")
            hi = max(int(s.t_end / elapsed * width), lo + 1)
            for i in range(lo, min(hi, width)):
                if row[i] == " " or ch == "#":
                    row[i] = ch
        lines.append(f"{track_label} {track:3d} |{''.join(row)}|")
    return "\n".join(lines)
