"""repro.obs: the unified instrumentation layer.

One vocabulary — :class:`~repro.obs.model.Span`,
:class:`~repro.obs.model.Counter`, :class:`~repro.obs.model.Gauge`,
collected by a :class:`~repro.obs.model.Recorder` — shared by every
measured subsystem: SimMPI's engine (virtual-time compute / blocked /
collective spans per rank), the parallel treecode's phases, the NPB
and Linpack host harnesses, the resilience restart loop, and the
``benchmarks/`` record emitter.

Exporters turn one recorded run into every view this repo needs:

* :func:`~repro.obs.export.chrome_trace` — Chrome ``trace_event`` JSON
  for Perfetto / ``chrome://tracing``;
* :func:`~repro.obs.export.metrics` — a flat ``name -> number`` dict;
* :func:`~repro.obs.ascii_art.render_spans` — the classic ASCII Gantt;
* :func:`~repro.obs.export.dumps_canonical` — byte-stable JSON for the
  golden-trace regression suite.

When observation is off, the shared :data:`~repro.obs.model.NULL`
recorder makes every hook a constant-time no-op.
"""

from .ascii_art import DEFAULT_SYMBOLS, render_spans
from .export import (
    canonical_floats,
    chrome_trace,
    dumps_canonical,
    metrics,
    parse_chrome_trace,
)
from .model import (
    NULL,
    Counter,
    Gauge,
    NullRecorder,
    Recorder,
    Span,
    validate_nesting,
)

__all__ = [
    "Span",
    "Counter",
    "Gauge",
    "Recorder",
    "NullRecorder",
    "NULL",
    "validate_nesting",
    "chrome_trace",
    "parse_chrome_trace",
    "metrics",
    "dumps_canonical",
    "canonical_floats",
    "render_spans",
    "DEFAULT_SYMBOLS",
]
