"""repro.obs: the unified instrumentation layer.

One vocabulary — :class:`~repro.obs.model.Span`,
:class:`~repro.obs.model.Counter`, :class:`~repro.obs.model.Gauge`,
collected by a :class:`~repro.obs.model.Recorder` — shared by every
measured subsystem: SimMPI's engine (virtual-time compute / blocked /
collective spans per rank), the parallel treecode's phases, the NPB
and Linpack host harnesses, the resilience restart loop, and the
``benchmarks/`` record emitter.

Exporters turn one recorded run into every view this repo needs:

* :func:`~repro.obs.export.chrome_trace` — Chrome ``trace_event`` JSON
  for Perfetto / ``chrome://tracing``;
* :func:`~repro.obs.export.metrics` — a flat ``name -> number`` dict;
* :func:`~repro.obs.ascii_art.render_spans` — the classic ASCII Gantt;
* :func:`~repro.obs.export.dumps_canonical` — byte-stable JSON for the
  golden-trace regression suite.

When observation is off, the shared :data:`~repro.obs.model.NULL`
recorder makes every hook a constant-time no-op.
"""

from .analysis import (
    WAIT_CAUSES,
    PathSegment,
    WaitState,
    attribute_phases,
    classify_waits,
    critical_path,
    critical_path_summary,
    load_imbalance,
    wait_summary,
)
from .ascii_art import DEFAULT_SYMBOLS, render_spans
from .export import (
    canonical_floats,
    chrome_trace,
    dumps_canonical,
    metrics,
    parse_chrome_trace,
    recorder_from_chrome_trace,
)
from .history import (
    DEFAULT_FLEET_GATES,
    BenchComparison,
    ComparisonReport,
    MetricGate,
    MultiComparisonReport,
    compare_history,
    compare_history_multi,
    format_comparison_report,
    format_multi_report,
    load_history,
    parse_gate_spec,
    robust_baseline,
)
from .model import (
    NULL,
    Counter,
    Gauge,
    NullRecorder,
    Recorder,
    Span,
    validate_nesting,
)
from .report import (
    fleet_report,
    html_report,
    svg_sparkline,
    svg_timeline,
    write_fleet_report,
    write_report,
)
from .wallclock import (
    BUCKETS,
    WallclockReport,
    WallProfiler,
    bucket,
    format_report,
    profile,
    replay,
)

__all__ = [
    "Span",
    "Counter",
    "Gauge",
    "Recorder",
    "NullRecorder",
    "NULL",
    "validate_nesting",
    "chrome_trace",
    "parse_chrome_trace",
    "recorder_from_chrome_trace",
    "metrics",
    "dumps_canonical",
    "canonical_floats",
    "render_spans",
    "DEFAULT_SYMBOLS",
    # analysis
    "WAIT_CAUSES",
    "WaitState",
    "PathSegment",
    "classify_waits",
    "wait_summary",
    "critical_path",
    "critical_path_summary",
    "load_imbalance",
    "attribute_phases",
    # history / regression gate
    "BenchComparison",
    "ComparisonReport",
    "MetricGate",
    "MultiComparisonReport",
    "DEFAULT_FLEET_GATES",
    "load_history",
    "robust_baseline",
    "compare_history",
    "compare_history_multi",
    "format_comparison_report",
    "format_multi_report",
    "parse_gate_spec",
    # wall-clock attribution
    "BUCKETS",
    "WallProfiler",
    "WallclockReport",
    "bucket",
    "profile",
    "replay",
    "format_report",
    # report
    "html_report",
    "fleet_report",
    "svg_timeline",
    "svg_sparkline",
    "write_report",
    "write_fleet_report",
]
