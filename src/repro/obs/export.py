"""Exporters: Chrome ``trace_event`` JSON, flat metrics, canonical dumps.

The Chrome trace format (loadable in Perfetto or ``chrome://tracing``)
is the interchange target: every span becomes a complete ``"ph": "X"``
event with ``tid`` = track (per-rank lanes), ``ts``/``dur`` in
microseconds, and the exact second-resolution interval duplicated into
``args`` so consumers never lose precision to the microsecond
convention.  :func:`parse_chrome_trace` inverts the export — the
round-trip is property-tested.

:func:`dumps_canonical` renders any JSON-able object byte-stably:
floats are normalized to 9 significant digits (absorbing formatting
and last-ulp arithmetic differences), keys are sorted, separators
fixed.  The golden-trace regression suite compares these bytes against
committed fixtures, so any semantic change to engine scheduling fails
loudly instead of drifting silently.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from .model import Recorder, Span

__all__ = [
    "chrome_trace",
    "parse_chrome_trace",
    "recorder_from_chrome_trace",
    "metrics",
    "dumps_canonical",
    "canonical_floats",
]


def _spans_of(source: Recorder | Iterable[Span]) -> list[Span]:
    if isinstance(source, Recorder):
        return list(source.spans)
    return list(source)


def chrome_trace(
    source: Recorder | Iterable[Span],
    *,
    process_name: str = "repro",
    track_names: dict[int, str] | None = None,
) -> dict:
    """Build a Chrome ``trace_event`` document from recorded spans.

    Events are emitted in canonical order ``(t_start, track, name)``
    so the same run always serializes identically.  Counters (when the
    source is a :class:`Recorder`) become a single ``"ph": "C"`` sample
    at the end of the trace — their running totals.
    """
    spans = _spans_of(source)
    tracks = sorted({s.track for s in spans})
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for track in tracks:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": track,
                "args": {"name": (track_names or {}).get(track, f"rank {track}")},
            }
        )
    for s in sorted(spans, key=lambda s: (s.t_start, s.track, s.name, s.t_end)):
        args = {"dur_s": s.t_end - s.t_start, "t_start_s": s.t_start}
        args.update(s.args_dict)
        events.append(
            {
                "name": s.name,
                "cat": s.cat or "span",
                "ph": "X",
                "ts": s.t_start * 1e6,
                "dur": (s.t_end - s.t_start) * 1e6,
                "pid": 0,
                "tid": s.track,
                "args": args,
            }
        )
    if isinstance(source, Recorder):
        t_end = max((s.t_end for s in spans), default=0.0)
        for name in sorted(source.counters):
            events.append(
                {
                    "name": name,
                    "ph": "C",
                    "cat": "counter",
                    "ts": t_end * 1e6,
                    "pid": 0,
                    "tid": 0,
                    "args": {"value": source.counters[name].value},
                }
            )
        for name in sorted(source.gauges):
            g = source.gauges[name]
            events.append(
                {
                    "name": name,
                    "ph": "C",
                    "cat": "gauge",
                    "ts": t_end * 1e6,
                    "pid": 0,
                    "tid": 0,
                    # Perfetto plots "value"; the min/max envelope and
                    # sample count ride along for the round-trip (the
                    # infinite empty-envelope sentinels are not JSON,
                    # so an unsampled gauge exports value only).
                    "args": (
                        {"value": g.value, "lo": g.lo, "hi": g.hi,
                         "samples": g.samples}
                        if g.samples
                        else {"value": g.value, "samples": 0}
                    ),
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs"},
    }


def parse_chrome_trace(doc: dict) -> list[Span]:
    """Rebuild spans from a Chrome trace document (the export inverse).

    Only ``"ph": "X"`` events carry spans; the exact-seconds ``args``
    fields written by :func:`chrome_trace` are preferred over the
    microsecond ``ts``/``dur`` when present.
    """
    spans: list[Span] = []
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") != "X":
            continue
        args = dict(ev.get("args", {}))
        t0 = args.pop("t_start_s", ev["ts"] / 1e6)
        dur = args.pop("dur_s", ev.get("dur", 0.0) / 1e6)
        cat = ev.get("cat", "")
        spans.append(
            Span(
                name=ev["name"],
                t_start=t0,
                t_end=t0 + dur,
                track=ev.get("tid", 0),
                cat="" if cat == "span" else cat,
                args=tuple(sorted(args.items())),
            )
        )
    return spans


def recorder_from_chrome_trace(doc: dict) -> Recorder:
    """Rebuild a full :class:`Recorder` from a Chrome trace document.

    Spans come from :func:`parse_chrome_trace`; ``"ph": "C"`` events
    written by :func:`chrome_trace` restore counters (``cat:
    "counter"``) and gauges (``cat: "gauge"``, including the min/max
    envelope and sample count) — the exporter's full inverse, so
    ``analyze``/``report`` runs on a trace file see the same meters the
    live run recorded.
    """
    rec = Recorder()
    rec.spans = parse_chrome_trace(doc)
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") != "C":
            continue
        args = ev.get("args", {})
        if ev.get("cat") == "gauge":
            g = rec.gauge(ev["name"])
            g.value = float(args.get("value", 0.0))
            g.samples = int(args.get("samples", 0))
            if g.samples:
                g.lo = float(args.get("lo", g.value))
                g.hi = float(args.get("hi", g.value))
        else:
            rec.counter(ev["name"]).value = float(args.get("value", 0.0))
    return rec


def metrics(source: Recorder | Iterable[Span]) -> dict[str, float]:
    """Flatten a recorder into one ``name -> number`` dict.

    Keys: ``counter.<name>``, ``gauge.<name>`` (plus ``.min``/``.max``),
    and per span name ``span.<name>.count`` / ``span.<name>.total_s``.
    """
    out: dict[str, float] = {}
    spans = _spans_of(source)
    totals: dict[str, float] = {}
    counts: dict[str, int] = {}
    for s in spans:
        totals[s.name] = totals.get(s.name, 0.0) + s.duration
        counts[s.name] = counts.get(s.name, 0) + 1
    for name in sorted(totals):
        out[f"span.{name}.count"] = counts[name]
        out[f"span.{name}.total_s"] = totals[name]
    if isinstance(source, Recorder):
        for name in sorted(source.counters):
            out[f"counter.{name}"] = source.counters[name].value
        for name in sorted(source.gauges):
            g = source.gauges[name]
            out[f"gauge.{name}"] = g.value
            if g.samples:
                out[f"gauge.{name}.min"] = g.lo
                out[f"gauge.{name}.max"] = g.hi
    return out


def canonical_floats(obj: Any, sig: int = 9) -> Any:
    """Recursively normalize floats to ``sig`` significant digits.

    Integers (and bools) pass through untouched; containers are
    rebuilt.  This is what makes canonical dumps byte-stable across
    formatting conventions and last-bit arithmetic noise.
    """
    if isinstance(obj, bool) or obj is None:
        return obj
    if isinstance(obj, float):
        return float(f"{obj:.{sig}g}")
    if isinstance(obj, dict):
        return {k: canonical_floats(v, sig) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonical_floats(v, sig) for v in obj]
    return obj


def dumps_canonical(obj: Any, sig: int = 9) -> str:
    """Byte-stable JSON: normalized floats, sorted keys, fixed separators."""
    return json.dumps(
        canonical_floats(obj, sig),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    ) + "\n"
