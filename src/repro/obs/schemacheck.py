"""A deliberate small subset of JSON Schema, importable everywhere.

The uniform benchmark records (``benchmarks/schema.json``), the fleet
ledger (``fleet.jsonl``), and the committed regression baseline
(``benchmarks/baseline.jsonl``) all validate against the same subset
validator: ``type``, ``required``, ``properties``,
``additionalProperties``, ``pattern``, ``minimum``, ``items``.  It
lived in ``benchmarks/_harness.py`` originally; it moved here so the
``python -m repro.obs validate`` CI step and the fleet runner can check
records without importing the bench harness, and the harness now
delegates to this module — one validator, never two drifting copies.

No third-party dependency: the subset is small enough to hand-roll and
large enough for every record shape this repo emits.
"""

from __future__ import annotations

import json
import re
from typing import Any, Iterable, Mapping

__all__ = ["check_value", "validate_value", "validate_jsonl_lines"]

_TYPES: dict[str, tuple[type, ...]] = {
    "object": (dict,),
    "array": (list,),
    "string": (str,),
    "number": (int, float),
    "integer": (int,),
    "boolean": (bool,),
    "null": (type(None),),
}


def _type_ok(value: Any, name: str) -> bool:
    if name in ("number", "integer") and isinstance(value, bool):
        return False  # bool is an int in Python but not in JSON Schema
    return isinstance(value, _TYPES[name])


def check_value(value: Any, schema: Mapping, path: str, errors: list[str]) -> None:
    """Recursive subset check; appends human-readable errors."""
    declared = schema.get("type")
    if declared is not None:
        names = [declared] if isinstance(declared, str) else list(declared)
        if not any(_type_ok(value, n) for n in names):
            errors.append(f"{path}: expected type {'/'.join(names)}, got {type(value).__name__}")
            return
    if isinstance(value, str) and "pattern" in schema:
        if not re.search(schema["pattern"], value):
            errors.append(f"{path}: {value!r} does not match pattern {schema['pattern']!r}")
    if isinstance(value, (int, float)) and not isinstance(value, bool) and "minimum" in schema:
        if value < schema["minimum"]:
            errors.append(f"{path}: {value} is below minimum {schema['minimum']}")
    if isinstance(value, list):
        items = schema.get("items")
        if isinstance(items, dict):
            for i, item in enumerate(value):
                check_value(item, items, f"{path}[{i}]", errors)
    if isinstance(value, dict):
        props = schema.get("properties", {})
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{path}: missing required property {key!r}")
        extra = schema.get("additionalProperties", True)
        for key, item in value.items():
            if key in props:
                check_value(item, props[key], f"{path}.{key}", errors)
            elif extra is False:
                errors.append(f"{path}: unexpected property {key!r}")
            elif isinstance(extra, dict):
                check_value(item, extra, f"{path}.{key}", errors)


def validate_value(value: Any, schema: Mapping, root: str = "record") -> list[str]:
    """Check one value against a subset schema; returns all errors."""
    errors: list[str] = []
    check_value(value, schema, root, errors)
    return errors


def validate_jsonl_lines(lines: Iterable[str], schema: Mapping) -> list[str]:
    """Validate every non-blank line of a JSONL stream.

    Corrupt JSON is an error here (unlike the forgiving history
    *reader*): a committed baseline or fleet ledger must be fully
    well-formed, not merely salvageable.
    """
    errors: list[str] = []
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: invalid JSON: {exc}")
            continue
        errors.extend(validate_value(record, schema, root=f"line {lineno}"))
    return errors
