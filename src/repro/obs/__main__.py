"""``python -m repro.obs`` — trace analysis & regression tracking CLI.

Three subcommands drive the analysis stack from the shell:

``analyze TRACE.json``
    Wait-state breakdown, per-rank load balance, and the critical path
    of a Chrome-trace file written by :func:`repro.obs.chrome_trace`
    (e.g. ``examples/parallel_treecode_demo.py --trace``).  With
    ``--predict pred.json``, adds the perf-model attribution table;
    predictions map phase names to seconds or Workload fields
    (``{"force": {"flops": 1e9, "mem_bytes": 2e8}}``).

``report TRACE.json -o out.html``
    The same analyses as one self-contained HTML file (inline SVG
    timeline, no external assets) — openable straight from disk.

``compare HISTORY.jsonl``
    The bench regression gate: rolling-baseline comparison of the
    longitudinal record ``benchmarks/_harness.py`` appends under
    ``REPRO_BENCH_HISTORY``.  Exits 1 when any bench regressed beyond
    the threshold and the noise model, which is what CI keys off.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from .analysis import (
    attribute_phases,
    critical_path,
    format_attribution,
    format_critical_path,
    format_imbalance,
    format_wait_summary,
    load_imbalance,
    wait_summary,
)
from .export import recorder_from_chrome_trace
from .history import compare_history, format_comparison_report, load_history
from .report import write_report


def _load_trace(path: str):
    with open(path) as fh:
        doc = json.load(fh)
    rec = recorder_from_chrome_trace(doc)
    elapsed = max((s.t_end for s in rec.spans), default=0.0)
    return rec, elapsed


def _load_predictions(path: str | None) -> dict[str, Any] | None:
    if path is None:
        return None
    with open(path) as fh:
        pred = json.load(fh)
    if not isinstance(pred, dict):
        raise SystemExit(f"{path}: predictions must be a JSON object")
    return pred


def _cmd_analyze(opts: argparse.Namespace) -> int:
    rec, elapsed = _load_trace(opts.trace)
    print(f"{opts.trace}: {len(rec.spans)} spans, elapsed {elapsed:.6g}s")
    print()
    print(format_wait_summary(wait_summary(rec)))
    print()
    print(format_imbalance(load_imbalance(rec, elapsed)))
    print()
    print(format_critical_path(critical_path(rec, elapsed), max_rows=opts.max_rows))
    predictions = _load_predictions(opts.predict)
    if predictions:
        print()
        print(format_attribution(
            attribute_phases(rec, predictions, threshold=opts.threshold)
        ))
    if rec.counters:
        print()
        print("counters: " + ", ".join(
            f"{name}={rec.counters[name].value:g}" for name in sorted(rec.counters)
        ))
    return 0


def _cmd_report(opts: argparse.Namespace) -> int:
    rec, elapsed = _load_trace(opts.trace)
    history_text = None
    if opts.history:
        report = compare_history(
            load_history(opts.history),
            metric=opts.metric, threshold=opts.threshold, window=opts.window,
        )
        history_text = format_comparison_report(report)
    path = write_report(
        opts.output,
        rec,
        title=opts.title or f"repro.obs report: {opts.trace}",
        elapsed=elapsed,
        predictions=_load_predictions(opts.predict),
        history_text=history_text,
    )
    print(f"wrote {path}")
    return 0


def _cmd_compare(opts: argparse.Namespace) -> int:
    entries = load_history(opts.history)
    report = compare_history(
        entries,
        metric=opts.metric,
        threshold=opts.threshold,
        window=opts.window,
    )
    if opts.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_comparison_report(report))
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="trace analysis and bench regression tracking",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_an = sub.add_parser("analyze", help="wait states, load balance, critical path")
    p_an.add_argument("trace", help="Chrome trace_event JSON (repro.obs.chrome_trace)")
    p_an.add_argument("--predict", metavar="PRED.json", default=None,
                      help="phase -> seconds or Workload-field predictions")
    p_an.add_argument("--threshold", type=float, default=0.25,
                      help="attribution divergence threshold (default 0.25)")
    p_an.add_argument("--max-rows", type=int, default=20,
                      help="critical-path rows to print (default 20)")
    p_an.set_defaults(func=_cmd_analyze)

    p_rep = sub.add_parser("report", help="self-contained HTML report")
    p_rep.add_argument("trace", help="Chrome trace_event JSON input")
    p_rep.add_argument("-o", "--output", required=True, help="HTML output path")
    p_rep.add_argument("--title", default=None)
    p_rep.add_argument("--predict", metavar="PRED.json", default=None)
    p_rep.add_argument("--history", metavar="HISTORY.jsonl", default=None,
                       help="also embed a bench-history comparison")
    p_rep.add_argument("--metric", default="seconds")
    p_rep.add_argument("--threshold", type=float, default=0.05)
    p_rep.add_argument("--window", type=int, default=5)
    p_rep.set_defaults(func=_cmd_report)

    p_cmp = sub.add_parser("compare", help="bench-history regression gate")
    p_cmp.add_argument("history", help="history.jsonl (see REPRO_BENCH_HISTORY)")
    p_cmp.add_argument("--metric", default="seconds",
                       help="record field or counters.<name> (default seconds; "
                            "use virtual_seconds for machine-independent gating)")
    p_cmp.add_argument("--threshold", type=float, default=0.05,
                       help="relative slowdown that counts as a regression")
    p_cmp.add_argument("--window", type=int, default=5,
                       help="rolling-baseline window of prior runs")
    p_cmp.add_argument("--json", action="store_true", help="machine-readable output")
    p_cmp.set_defaults(func=_cmd_compare)

    opts = parser.parse_args(argv)
    return opts.func(opts)


if __name__ == "__main__":
    sys.exit(main())
