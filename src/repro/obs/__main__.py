"""``python -m repro.obs`` — trace analysis & regression tracking CLI.

Three subcommands drive the analysis stack from the shell:

``analyze TRACE.json``
    Wait-state breakdown, per-rank load balance, and the critical path
    of a Chrome-trace file written by :func:`repro.obs.chrome_trace`
    (e.g. ``examples/parallel_treecode_demo.py --trace``).  With
    ``--predict pred.json``, adds the perf-model attribution table;
    predictions map phase names to seconds or Workload fields
    (``{"force": {"flops": 1e9, "mem_bytes": 2e8}}``).

``report TRACE.json -o out.html``
    The same analyses as one self-contained HTML file (inline SVG
    timeline, no external assets) — openable straight from disk.

``compare HISTORY.jsonl``
    The bench regression gate: rolling-baseline comparison of the
    longitudinal record ``benchmarks/_harness.py`` appends under
    ``REPRO_BENCH_HISTORY``.  Exits 1 when any bench regressed beyond
    the threshold and the noise model, which is what CI keys off.

``fleet``
    Run the whole benchmark suite (or ``--bench`` subsets) as one
    campaign (:mod:`repro.obs.fleet`): content-fingerprinted dedupe,
    crash-safe resume, ``--workers`` parallelism, one ``fleet.jsonl``
    ledger line per bench.  ``--baseline`` + ``--gate`` runs the
    multi-metric regression gate over the committed history;
    ``--html`` writes the self-contained fleet report.  Exits 1 on a
    failed bench or a gate regression.

``validate FILE.jsonl [...]``
    Strict schema check of record files (``benchmarks/baseline.jsonl``,
    ``fleet.jsonl``) against ``benchmarks/schema.json`` — corrupt JSON
    is an error here, unlike the forgiving history reader.

``wallclock``
    Where did the wall-clock go: runs a small
    :func:`repro.core.parallel.parallel_nbody_run` under the
    :mod:`repro.obs.wallclock` profiler with the kernel backend wrapped
    in :class:`repro.core.backend_wall.WallBackend`, and prints the
    bucket attribution table (kernel / engine / comm / serialization /
    other — an exact partition of elapsed wall seconds) followed by the
    virtual-time critical path of the same run.  ``--json`` saves the
    raw profiler events; ``--replay EVENTS.json`` re-derives the table
    from a saved event file instead of running (the deterministic
    regression path the golden-trace test pins).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any

from .analysis import (
    attribute_phases,
    critical_path,
    format_attribution,
    format_critical_path,
    format_imbalance,
    format_wait_summary,
    load_imbalance,
    wait_summary,
)
from .export import recorder_from_chrome_trace
from .history import compare_history, format_comparison_report, load_history
from .report import write_report


def _load_trace(path: str):
    with open(path) as fh:
        doc = json.load(fh)
    rec = recorder_from_chrome_trace(doc)
    elapsed = max((s.t_end for s in rec.spans), default=0.0)
    return rec, elapsed


def _load_predictions(path: str | None) -> dict[str, Any] | None:
    if path is None:
        return None
    with open(path) as fh:
        pred = json.load(fh)
    if not isinstance(pred, dict):
        raise SystemExit(f"{path}: predictions must be a JSON object")
    return pred


def _cmd_analyze(opts: argparse.Namespace) -> int:
    rec, elapsed = _load_trace(opts.trace)
    print(f"{opts.trace}: {len(rec.spans)} spans, elapsed {elapsed:.6g}s")
    print()
    print(format_wait_summary(wait_summary(rec)))
    print()
    print(format_imbalance(load_imbalance(rec, elapsed)))
    print()
    print(format_critical_path(critical_path(rec, elapsed), max_rows=opts.max_rows))
    predictions = _load_predictions(opts.predict)
    if predictions:
        print()
        print(format_attribution(
            attribute_phases(rec, predictions, threshold=opts.threshold)
        ))
    if rec.counters:
        print()
        print("counters: " + ", ".join(
            f"{name}={rec.counters[name].value:g}" for name in sorted(rec.counters)
        ))
    return 0


def _cmd_report(opts: argparse.Namespace) -> int:
    rec, elapsed = _load_trace(opts.trace)
    history_text = None
    if opts.history:
        report = compare_history(
            load_history(opts.history),
            metric=opts.metric, threshold=opts.threshold, window=opts.window,
        )
        history_text = format_comparison_report(report)
    path = write_report(
        opts.output,
        rec,
        title=opts.title or f"repro.obs report: {opts.trace}",
        elapsed=elapsed,
        predictions=_load_predictions(opts.predict),
        history_text=history_text,
    )
    print(f"wrote {path}")
    return 0


def _cmd_fleet(opts: argparse.Namespace) -> int:
    from .fleet import build_registry, run_fleet
    from .history import (
        DEFAULT_FLEET_GATES,
        compare_history_multi,
        format_multi_report,
        parse_gate_spec,
    )
    from .report import write_fleet_report

    if opts.list:
        registry = build_registry(opts.bench_dir)
        for entry in sorted(registry.values(), key=lambda e: e.name):
            print(f"{entry.name:30s} smoke={entry.smoke:8s} tags={','.join(entry.tags)}")
        return 0

    run = run_fleet(
        opts.bench or None,
        out_dir=opts.out,
        smoke=not opts.full,
        workers=opts.workers,
        bench_dir=opts.bench_dir,
        throttle=opts.throttle,
        history=opts.history,
    )
    print(json.dumps(run.to_dict(), indent=2, sort_keys=True))
    for record in run.failed:
        print(f"FAILED {record['fleet']['bench']}: "
              f"{record['fleet'].get('error', '?')}", file=sys.stderr)

    multi = None
    baseline = load_history(opts.baseline) if opts.baseline else []
    if opts.gate or opts.gate_spec:
        gates = (
            tuple(parse_gate_spec(s) for s in opts.gate_spec)
            if opts.gate_spec else DEFAULT_FLEET_GATES
        )
        live = [r for r in run.rows if r["fleet"]["status"] != "failed"]
        multi = compare_history_multi(baseline + live, gates, window=opts.window)
        print()
        print(format_multi_report(multi))

    if opts.html:
        path = write_fleet_report(
            opts.html, run.rows, history=baseline, multi=multi,
            title=f"fleet {run.fleet_id[:12]} ({run.mode})",
        )
        print(f"wrote {path}")

    if not run.ok:
        return 1
    return 0 if multi is None or multi.ok else 1


def _cmd_validate(opts: argparse.Namespace) -> int:
    from .fleet import default_bench_dir
    from .schemacheck import validate_jsonl_lines

    schema_path = opts.schema
    if schema_path is None:
        schema_path = os.path.join(default_bench_dir(), "schema.json")
    with open(schema_path) as fh:
        schema = json.load(fh)
    bad = 0
    for path in opts.files:
        with open(path) as fh:
            errors = validate_jsonl_lines(fh, schema)
        if errors:
            bad += 1
            print(f"{path}: {len(errors)} schema violation(s)")
            for err in errors:
                print(f"  - {err}")
        else:
            with open(path) as fh:
                n = sum(1 for line in fh if line.strip())
            print(f"{path}: OK ({n} record(s))")
    return 1 if bad else 0


def _cmd_wallclock(opts: argparse.Namespace) -> int:
    from . import wallclock as wc

    if opts.replay:
        with open(opts.replay) as fh:
            events = wc.load_events(fh)
        print(wc.format_report(wc.replay(events).report()))
        return 0

    import numpy as np

    from ..core.backend import get_backend
    from ..core.backend_wall import WallBackend
    from ..core.parallel import ParallelConfig, parallel_nbody_run
    from .model import Recorder

    rng = np.random.default_rng(opts.seed)
    pos = rng.random((opts.n, 3))
    kb = WallBackend(get_backend(opts.backend))
    cfg = ParallelConfig(backend=kb, eval=opts.eval)
    rec = Recorder()
    with wc.profile() as prof:
        parallel_nbody_run(
            pos, n_ranks=opts.ranks, n_steps=opts.steps, dt=1e-3,
            config=cfg, observer=rec,
        )
    rep = prof.finalize()
    print(f"parallel_nbody_run: n={opts.n} ranks={opts.ranks} "
          f"steps={opts.steps} backend={kb.name} eval={opts.eval}")
    print()
    print(wc.format_report(rep))
    elapsed = max((s.t_end for s in rec.spans), default=0.0)
    if rec.spans:
        print()
        print(format_critical_path(critical_path(rec, elapsed), max_rows=opts.max_rows))
    if opts.json:
        with open(opts.json, "w") as fh:
            wc.save_events(prof, fh)
        print(f"wrote {opts.json}")
    return 0


def _cmd_compare(opts: argparse.Namespace) -> int:
    entries = load_history(opts.history)
    report = compare_history(
        entries,
        metric=opts.metric,
        threshold=opts.threshold,
        window=opts.window,
    )
    if opts.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_comparison_report(report))
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="trace analysis and bench regression tracking",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_an = sub.add_parser("analyze", help="wait states, load balance, critical path")
    p_an.add_argument("trace", help="Chrome trace_event JSON (repro.obs.chrome_trace)")
    p_an.add_argument("--predict", metavar="PRED.json", default=None,
                      help="phase -> seconds or Workload-field predictions")
    p_an.add_argument("--threshold", type=float, default=0.25,
                      help="attribution divergence threshold (default 0.25)")
    p_an.add_argument("--max-rows", type=int, default=20,
                      help="critical-path rows to print (default 20)")
    p_an.set_defaults(func=_cmd_analyze)

    p_rep = sub.add_parser("report", help="self-contained HTML report")
    p_rep.add_argument("trace", help="Chrome trace_event JSON input")
    p_rep.add_argument("-o", "--output", required=True, help="HTML output path")
    p_rep.add_argument("--title", default=None)
    p_rep.add_argument("--predict", metavar="PRED.json", default=None)
    p_rep.add_argument("--history", metavar="HISTORY.jsonl", default=None,
                       help="also embed a bench-history comparison")
    p_rep.add_argument("--metric", default="seconds")
    p_rep.add_argument("--threshold", type=float, default=0.05)
    p_rep.add_argument("--window", type=int, default=5)
    p_rep.set_defaults(func=_cmd_report)

    p_cmp = sub.add_parser("compare", help="bench-history regression gate")
    p_cmp.add_argument("history", help="history.jsonl (see REPRO_BENCH_HISTORY)")
    p_cmp.add_argument("--metric", default="seconds",
                       help="record field or counters.<name> (default seconds; "
                            "use virtual_seconds for machine-independent gating)")
    p_cmp.add_argument("--threshold", type=float, default=0.05,
                       help="relative slowdown that counts as a regression")
    p_cmp.add_argument("--window", type=int, default=5,
                       help="rolling-baseline window of prior runs")
    p_cmp.add_argument("--json", action="store_true", help="machine-readable output")
    p_cmp.set_defaults(func=_cmd_compare)

    p_fl = sub.add_parser("fleet", help="run the bench suite as one campaign")
    p_fl.add_argument("--out", default="fleet-out",
                      help="output directory: campaign store + fleet.jsonl "
                           "(default fleet-out)")
    p_fl.add_argument("--bench", action="append", default=[], metavar="NAME",
                      help="run only this bench (repeatable; default: all)")
    p_fl.add_argument("--full", action="store_true",
                      help="full-workload parameterizations (default: smoke)")
    p_fl.add_argument("--workers", type=int, default=None,
                      help="campaign worker processes (default: "
                           "REPRO_CAMPAIGN_WORKERS or serial)")
    p_fl.add_argument("--bench-dir", default=None,
                      help="bench suite directory (default: benchmarks/ or "
                           "REPRO_BENCH_ROOT)")
    p_fl.add_argument("--list", action="store_true",
                      help="print the registry and exit")
    p_fl.add_argument("--baseline", metavar="HISTORY.jsonl", default=None,
                      help="longitudinal history for gates and sparklines")
    p_fl.add_argument("--gate", action="store_true",
                      help="run the multi-metric regression gate against "
                           "--baseline (exit 1 on regression)")
    p_fl.add_argument("--gate-spec", action="append", default=[],
                      metavar="METRIC[:THR[:DIR]]",
                      help="override the default gates (repeatable), e.g. "
                           "virtual_seconds:0.15 or "
                           "counters.cellcache.hit_rate:0.1:higher")
    p_fl.add_argument("--window", type=int, default=5,
                      help="rolling-baseline window (default 5)")
    p_fl.add_argument("--html", metavar="OUT.html", default=None,
                      help="also write the self-contained fleet report")
    p_fl.add_argument("--history", metavar="PATH", default=None,
                      help="append freshly computed records to this history "
                           "file (default: REPRO_BENCH_HISTORY)")
    p_fl.add_argument("--throttle", type=float, default=0.0,
                      help="per-shard pacing delay, for crash drills")
    p_fl.set_defaults(func=_cmd_fleet)

    p_wc = sub.add_parser("wallclock", help="wall-clock bucket attribution report")
    p_wc.add_argument("--n", type=int, default=4000, help="particles (default 4000)")
    p_wc.add_argument("--ranks", type=int, default=4, help="simulated ranks (default 4)")
    p_wc.add_argument("--steps", type=int, default=2, help="leapfrog steps (default 2)")
    p_wc.add_argument("--backend", default=None,
                      help="kernel backend to wrap (default: REPRO_BACKEND or numpy)")
    p_wc.add_argument("--eval", default="batched", choices=("batched", "pergroup"),
                      help="force evaluation strategy (default batched)")
    p_wc.add_argument("--seed", type=int, default=11)
    p_wc.add_argument("--max-rows", type=int, default=10,
                      help="critical-path rows to print (default 10)")
    p_wc.add_argument("--json", metavar="EVENTS.json", default=None,
                      help="save the raw profiler event list")
    p_wc.add_argument("--replay", metavar="EVENTS.json", default=None,
                      help="re-derive the table from saved events (no run)")
    p_wc.set_defaults(func=_cmd_wallclock)

    p_val = sub.add_parser("validate", help="strict schema check of record JSONL")
    p_val.add_argument("files", nargs="+", help="baseline.jsonl / fleet.jsonl files")
    p_val.add_argument("--schema", default=None,
                       help="subset JSON Schema (default benchmarks/schema.json)")
    p_val.set_defaults(func=_cmd_validate)

    opts = parser.parse_args(argv)
    return opts.func(opts)


if __name__ == "__main__":
    sys.exit(main())
