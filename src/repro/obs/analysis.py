"""Trace analysis: wait states, critical path, imbalance, attribution.

The recorder (:mod:`repro.obs.model`) captures *what happened*; this
module answers *why it took that long* — the Vampir/Scalasca workflow
the paper's authors ran by hand on their per-rank timelines:

* :func:`classify_waits` assigns every blocked span exactly one cause,
  Scalasca-style: a receiver stalled because the sender posted late
  (``late-sender``), a rendezvous sender stalled on a tardy receiver
  (``late-receiver``), wire time with both sides ready (``transfer``),
  and collective waits split into straggler time
  (``collective-imbalance``) vs. the operation's intrinsic cost
  (``collective-op``).  Classification relies on the happens-before
  metadata the SimMPI engine stamps into span args (peer rank, tag,
  post times, last-arriver info).
* :func:`critical_path` walks the happens-before DAG backward from the
  job's finish, hopping ranks at message matches and collective
  completions.  The returned segments partition ``[0, elapsed]``
  exactly, so their durations sum to the run's elapsed time — the
  identity the test suite pins to 1e-9.
* :func:`load_imbalance` reduces per-rank busy/blocked time to the
  summary statistics the paper's scaling sections reason with.
* :func:`attribute_phases` compares measured phase spans (key-sort,
  tree-build, traversal, force, NPB phases) against
  :class:`~repro.machine.perfmodel.PerfModel` predictions — a software
  roofline for the simulated cluster that flags diverging phases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from .model import Recorder, Span

__all__ = [
    "WAIT_CAUSES",
    "WaitState",
    "PathSegment",
    "classify_waits",
    "wait_summary",
    "critical_path",
    "critical_path_summary",
    "load_imbalance",
    "attribute_phases",
    "format_wait_summary",
    "format_critical_path",
    "format_imbalance",
    "format_attribution",
]

#: Every cause :func:`classify_waits` can assign.
WAIT_CAUSES = (
    "late-sender",
    "late-receiver",
    "transfer",
    "collective-imbalance",
    "collective-op",
    "unclassified",
)

#: Span categories that represent communication wait.
_WAIT_CATS = frozenset({"blocked", "collective"})

_ATOL = 1e-12


def _spans_of(source: Recorder | Iterable[Span]) -> list[Span]:
    if isinstance(source, Recorder):
        return list(source.spans)
    return list(source)


@dataclass(frozen=True)
class WaitState:
    """One blocked span with its assigned cause.

    ``imbalance_s``/``op_s`` decompose collective waits (time spent
    waiting for the last arriver vs. the operation itself); both are
    zero for point-to-point waits.
    """

    span: Span
    cause: str
    seconds: float
    imbalance_s: float = 0.0
    op_s: float = 0.0


def _classify_one(s: Span) -> WaitState:
    a = s.args_dict
    dur = s.duration
    if s.cat == "collective" or a.get("wait") == "collective":
        t_last = a.get("t_last")
        if t_last is None:
            return WaitState(s, "unclassified", dur)
        imb = min(max(float(t_last) - s.t_start, 0.0), dur)
        op = dur - imb
        cause = "collective-imbalance" if imb > op else "collective-op"
        return WaitState(s, cause, dur, imbalance_s=imb, op_s=op)
    kind = a.get("req_kind") or a.get("wait")
    t_peer = a.get("t_peer")
    if kind not in ("send", "recv") or t_peer is None:
        return WaitState(s, "unclassified", dur)
    if float(t_peer) > s.t_start + _ATOL:
        return WaitState(s, "late-sender" if kind == "recv" else "late-receiver", dur)
    return WaitState(s, "transfer", dur)


def classify_waits(source: Recorder | Iterable[Span]) -> list[WaitState]:
    """Assign every blocked/collective span exactly one wait-state cause."""
    return [_classify_one(s) for s in _spans_of(source) if s.cat in _WAIT_CATS]


def wait_summary(source: Recorder | Iterable[Span]) -> dict[str, Any]:
    """Aggregate wait states: seconds per cause, covering all blocked time.

    ``coverage`` is the classified fraction of total blocked time
    (excluding ``unclassified``); engine-produced traces reach 1.0.
    """
    states = classify_waits(source)
    by_cause = {cause: 0.0 for cause in WAIT_CAUSES}
    for ws in states:
        by_cause[ws.cause] += ws.seconds
    total = sum(by_cause.values())
    classified = total - by_cause["unclassified"]
    return {
        "total_blocked_s": total,
        "by_cause": by_cause,
        "n_waits": len(states),
        "coverage": 1.0 if total == 0.0 else classified / total,
        "collective_imbalance_s": sum(ws.imbalance_s for ws in states),
        "collective_op_s": sum(ws.op_s for ws in states),
    }


@dataclass(frozen=True)
class PathSegment:
    """One leg of the critical path: what rank ``track`` was doing on it."""

    track: int
    t_start: float
    t_end: float
    kind: str  # "compute" | "wait" | "collective" | "overhead"
    name: str

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


def critical_path(
    source: Recorder | Iterable[Span], elapsed: float | None = None
) -> list[PathSegment]:
    """Extract the run's critical path from its spans.

    Walks backward from the last-finishing rank at ``elapsed``.  Inside
    a wait whose cause is remote — a late sender, or a collective's
    last arriver — the walk hops to the responsible rank at the moment
    the dependency was created; otherwise it continues backward on the
    same rank.  Gaps with no recorded span (e.g. eager-send injection
    overhead, in-flight transfer of an already-posted message) become
    ``overhead`` segments.

    The returned segments are chronological and partition
    ``[0, elapsed]`` exactly: their durations sum to ``elapsed``.
    """
    spans = [
        s for s in _spans_of(source) if s.cat != "failed" and s.duration > _ATOL
    ]
    if elapsed is None:
        elapsed = max((s.t_end for s in spans), default=0.0)
    if elapsed <= _ATOL:
        return []
    if not spans:
        # Time passed but nothing was recorded (e.g. a run that was
        # pure eager-injection gaps): the whole span is untracked.
        return [PathSegment(0, 0.0, elapsed, "overhead", "untracked")]
    by_track: dict[int, list[Span]] = {}
    for s in spans:
        by_track.setdefault(s.track, []).append(s)
    for group in by_track.values():
        group.sort(key=lambda s: (s.t_start, s.t_end))
    ends = {tr: group[-1].t_end for tr, group in by_track.items()}
    last_end = max(ends.values())
    r = min(tr for tr, e in ends.items() if e >= last_end - _ATOL)
    t = elapsed

    def covering(track: int, before: float) -> Span | None:
        """Latest-starting span on ``track`` that starts before ``before``."""
        best = None
        for s in by_track.get(track, ()):
            if s.t_start < before - _ATOL:
                best = s
            else:
                break
        return best

    segments: list[PathSegment] = []
    while t > _ATOL:
        cur = covering(r, t)
        if cur is None:
            segments.append(PathSegment(r, 0.0, t, "overhead", "startup"))
            break
        if cur.t_end < t - _ATOL:
            segments.append(PathSegment(r, cur.t_end, t, "overhead", "untracked"))
            t = cur.t_end
            continue
        a = cur.args_dict
        if cur.cat == "collective" or a.get("wait") == "collective":
            t_last = a.get("t_last")
            last_rank = a.get("last_rank")
            if (
                t_last is not None
                and last_rank is not None
                and cur.t_start + _ATOL < float(t_last) < t - _ATOL
            ):
                segments.append(PathSegment(r, float(t_last), t, "collective", cur.name))
                t, r = float(t_last), int(last_rank)
                continue
            segments.append(PathSegment(r, cur.t_start, t, "collective", cur.name))
            t = cur.t_start
            continue
        if cur.cat in _WAIT_CATS:
            kind = a.get("req_kind") or a.get("wait")
            t_peer = a.get("t_peer")
            peer = a.get("peer")
            if (
                t_peer is not None
                and peer is not None
                and cur.t_start + _ATOL < float(t_peer) < t - _ATOL
            ):
                cause = (
                    "late-sender" if kind == "recv"
                    else "late-receiver" if kind == "send"
                    else "remote"
                )
                segments.append(
                    PathSegment(r, float(t_peer), t, "wait", f"{cause} (peer {peer})")
                )
                t, r = float(t_peer), int(peer)
                continue
            segments.append(PathSegment(r, cur.t_start, t, "wait", cur.name))
            t = cur.t_start
            continue
        segments.append(PathSegment(r, cur.t_start, t, "compute", cur.name))
        t = cur.t_start
    segments.reverse()
    return segments


def critical_path_summary(segments: Iterable[PathSegment]) -> dict[str, Any]:
    """Totals per segment kind, plus path length and rank switches."""
    segments = list(segments)
    by_kind: dict[str, float] = {}
    for seg in segments:
        by_kind[seg.kind] = by_kind.get(seg.kind, 0.0) + seg.duration
    switches = sum(
        1 for a, b in zip(segments, segments[1:]) if a.track != b.track
    )
    return {
        "length_s": sum(seg.duration for seg in segments),
        "n_segments": len(segments),
        "rank_switches": switches,
        "by_kind": by_kind,
    }


def load_imbalance(
    source: Recorder | Iterable[Span],
    elapsed: float | None = None,
    n_tracks: int | None = None,
) -> dict[str, Any]:
    """Per-rank busy/blocked accounting and imbalance statistics.

    ``imbalance`` is the classic ``max/mean - 1`` of per-rank compute
    time (0 means perfectly balanced); ``sigma_s`` its population
    standard deviation.  A zero-elapsed or empty run reports all-zero
    fractions — never a division error.
    """
    spans = _spans_of(source)
    if elapsed is None:
        elapsed = max((s.t_end for s in spans), default=0.0)
    if n_tracks is None:
        n_tracks = max((s.track + 1 for s in spans), default=0)
    compute = [0.0] * n_tracks
    blocked = [0.0] * n_tracks
    t_finish = [0.0] * n_tracks
    for s in spans:
        if not 0 <= s.track < n_tracks:
            continue
        if s.cat in _WAIT_CATS:
            blocked[s.track] += s.duration
        elif s.cat != "failed":
            compute[s.track] += s.duration
        t_finish[s.track] = max(t_finish[s.track], s.t_end)
    safe = elapsed if elapsed > 0 else 1.0
    ranks = [
        {
            "rank": i,
            "compute_s": compute[i],
            "blocked_s": blocked[i],
            "overhead_s": max(t_finish[i] - compute[i] - blocked[i], 0.0),
            "idle_s": max(elapsed - t_finish[i], 0.0),
            "compute_frac": compute[i] / safe if elapsed > 0 else 0.0,
            "blocked_frac": blocked[i] / safe if elapsed > 0 else 0.0,
        }
        for i in range(n_tracks)
    ]
    mean = sum(compute) / n_tracks if n_tracks else 0.0
    peak = max(compute, default=0.0)
    var = (
        sum((c - mean) ** 2 for c in compute) / n_tracks if n_tracks else 0.0
    )
    return {
        "elapsed": elapsed,
        "n_ranks": n_tracks,
        "ranks": ranks,
        "mean_compute_s": mean,
        "max_compute_s": peak,
        "sigma_s": var ** 0.5,
        "imbalance": (peak / mean - 1.0) if mean > 0 else 0.0,
        "blocked_frac": (
            sum(blocked) / (n_tracks * elapsed) if n_tracks and elapsed > 0 else 0.0
        ),
    }


def attribute_phases(
    source: Recorder | Iterable[Span],
    predictions: Mapping[str, Any],
    *,
    model: Any | None = None,
    threshold: float = 0.25,
) -> list[dict[str, Any]]:
    """Compare measured phase spans against perf-model predictions.

    ``predictions`` maps a phase (span) name to either a predicted
    per-occurrence time in seconds, a
    :class:`~repro.machine.perfmodel.Workload`, or a mapping of
    Workload fields; workloads are evaluated through ``model`` (a
    :class:`~repro.machine.perfmodel.PerfModel`, defaulting to the
    Space Simulator node).  Phases whose measured mean diverges from
    the prediction by more than ``threshold`` (relative, either
    direction) are flagged.  Measured phases with no prediction are
    reported with ``predicted_s=None`` so unmodeled time is visible.
    """
    from ..machine.perfmodel import PerfModel, Workload

    spans = _spans_of(source)
    totals: dict[str, float] = {}
    counts: dict[str, int] = {}
    for s in spans:
        if s.cat in _WAIT_CATS or s.cat == "failed":
            continue
        totals[s.name] = totals.get(s.name, 0.0) + s.duration
        counts[s.name] = counts.get(s.name, 0) + 1

    def predicted_seconds(value: Any) -> float:
        nonlocal model
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, Mapping):
            value = Workload(**value)
        if isinstance(value, Workload):
            if model is None:
                from ..machine.node import SPACE_SIMULATOR_NODE

                model = PerfModel(SPACE_SIMULATOR_NODE)
            return model.time_s(value)
        raise TypeError(f"prediction must be seconds or a Workload, got {value!r}")

    rows: list[dict[str, Any]] = []
    for name in sorted(set(totals) | set(predictions)):
        count = counts.get(name, 0)
        total = totals.get(name, 0.0)
        mean = total / count if count else 0.0
        if name in predictions:
            pred = predicted_seconds(predictions[name])
            ratio = mean / pred if pred > 0 else float("inf")
            diverges = not (1.0 / (1.0 + threshold) <= ratio <= 1.0 + threshold)
        else:
            pred, ratio, diverges = None, None, None
        rows.append(
            {
                "phase": name,
                "count": count,
                "measured_total_s": total,
                "measured_mean_s": mean,
                "predicted_s": pred,
                "ratio": ratio,
                "diverges": diverges,
            }
        )
    return rows


# -- text renderers (shared by the CLI and the demo) ---------------------

def format_wait_summary(summary: Mapping[str, Any]) -> str:
    from ..analysis.tables import format_table

    total = summary["total_blocked_s"]
    rows = [
        [cause, seconds, (seconds / total if total > 0 else 0.0)]
        for cause, seconds in summary["by_cause"].items()
        if seconds > 0 or cause != "unclassified"
    ]
    table = format_table(
        ["cause", "seconds", "fraction"],
        rows,
        f"wait states ({summary['n_waits']} blocked spans, "
        f"{total:.4g}s total, coverage {summary['coverage']:.0%})",
    )
    return table


def format_critical_path(
    segments: Iterable[PathSegment], max_rows: int = 20
) -> str:
    from ..analysis.tables import format_table

    segments = list(segments)
    summary = critical_path_summary(segments)
    shown = sorted(segments, key=lambda s: -s.duration)[:max_rows]
    shown.sort(key=lambda s: s.t_start)
    rows = [
        [f"{seg.t_start:.6g}", f"{seg.t_end:.6g}", seg.track, seg.kind, seg.name,
         seg.duration]
        for seg in shown
    ]
    head = (
        f"critical path: {summary['length_s']:.6g}s over "
        f"{summary['n_segments']} segments, {summary['rank_switches']} rank "
        "switches; by kind: "
        + ", ".join(f"{k} {v:.4g}s" for k, v in sorted(summary["by_kind"].items()))
    )
    table = format_table(
        ["start", "end", "rank", "kind", "segment", "seconds"],
        rows,
        head if len(shown) == len(segments)
        else head + f" (longest {len(shown)} shown)",
    )
    return table


def format_imbalance(stats: Mapping[str, Any]) -> str:
    from ..analysis.tables import format_table

    rows = [
        [r["rank"], r["compute_s"], r["blocked_s"], r["overhead_s"], r["idle_s"],
         r["compute_frac"]]
        for r in stats["ranks"]
    ]
    return format_table(
        ["rank", "compute s", "blocked s", "overhead s", "idle s", "busy frac"],
        rows,
        f"load balance: imbalance {stats['imbalance']:.1%}, "
        f"sigma {stats['sigma_s']:.4g}s, "
        f"blocked {stats['blocked_frac']:.1%} of {stats['n_ranks']} ranks x "
        f"{stats['elapsed']:.4g}s",
    )


def format_attribution(rows: Iterable[Mapping[str, Any]]) -> str:
    from ..analysis.tables import format_table

    table_rows = []
    for row in rows:
        table_rows.append([
            row["phase"],
            row["count"],
            row["measured_mean_s"],
            row["predicted_s"] if row["predicted_s"] is not None else "-",
            f"{row['ratio']:.3g}" if row["ratio"] is not None else "-",
            {True: "DIVERGES", False: "ok", None: "unmodeled"}[row["diverges"]],
        ])
    return format_table(
        ["phase", "count", "measured mean s", "predicted s", "ratio", "verdict"],
        table_rows,
        "perf-model attribution (measured vs roofline prediction)",
    )
