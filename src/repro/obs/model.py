"""Core instrumentation model: spans, counters, gauges, recorders.

Every measured thing in this reproduction reduces to three primitives:

* :class:`Span` — a named interval ``[t_start, t_end]`` on a *track*
  (a simulated rank, a host thread, a job lane).  Spans nest: a
  recorder's context-manager API keeps a per-track stack so children
  are always contained in their parents and siblings never overlap —
  the well-formedness :func:`validate_nesting` checks and the property
  suite pins.
* :class:`Counter` — a monotonically increasing total (bytes sent,
  interactions evaluated).  ``add`` rejects negative deltas so a
  counter read is always a valid rate numerator.
* :class:`Gauge` — a last-value-wins sample (queue depth, residual).

Two clocks coexist.  SimMPI components record spans in **virtual
time** by passing explicit ``t_start``/``t_end`` to :meth:`Recorder.add_span`;
host-side harnesses (NPB, Linpack) use the context manager
:meth:`Recorder.span`, which reads the recorder's wall clock relative
to its origin.  Exporters (:mod:`repro.obs.export`) don't care which —
a span is a span.

Disabled instrumentation must cost nothing: :data:`NULL` is a shared
:class:`NullRecorder` whose every method is a constant-time no-op, so
hot paths can call ``obs.count(...)`` unconditionally.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

__all__ = [
    "Span",
    "Counter",
    "Gauge",
    "Recorder",
    "NullRecorder",
    "NULL",
    "validate_nesting",
]


@dataclass(frozen=True)
class Span:
    """One named, categorized interval on one track.

    ``args`` is a sorted tuple of ``(key, value)`` pairs rather than a
    dict so spans are hashable — exporter round-trip tests compare
    event *multisets*.
    """

    name: str
    t_start: float
    t_end: float
    track: int = 0
    cat: str = ""
    args: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.t_end < self.t_start:
            raise ValueError(f"span {self.name!r} ends before it starts")

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def args_dict(self) -> dict[str, Any]:
        return dict(self.args)


def _freeze_args(args: dict[str, Any] | None) -> tuple[tuple[str, Any], ...]:
    if not args:
        return ()
    return tuple(sorted(args.items()))


@dataclass
class Counter:
    """Monotone running total."""

    name: str
    value: float = 0.0

    def add(self, delta: float = 1.0) -> None:
        if delta < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (delta={delta})")
        self.value += delta


@dataclass
class Gauge:
    """Last-value sample, with min/max envelope."""

    name: str
    value: float = 0.0
    lo: float = float("inf")
    hi: float = float("-inf")
    samples: int = 0

    def set(self, value: float) -> None:
        self.value = value
        self.lo = min(self.lo, value)
        self.hi = max(self.hi, value)
        self.samples += 1


class _SpanContext:
    """Open frame of ``Recorder.span``; records the span on exit."""

    __slots__ = ("_rec", "name", "track", "cat", "_args", "_t0")

    def __init__(self, rec: "Recorder", name: str, track: int, cat: str, args: dict | None):
        self._rec = rec
        self.name = name
        self.track = track
        self.cat = cat
        self._args = args
        self._t0 = 0.0

    def __enter__(self) -> "_SpanContext":
        self._t0 = self._rec.now()
        self._rec._stacks.setdefault(self.track, []).append(self)
        return self

    def __exit__(self, *exc) -> None:
        stack = self._rec._stacks[self.track]
        if not stack or stack[-1] is not self:
            raise RuntimeError(f"span {self.name!r} closed out of order on track {self.track}")
        stack.pop()
        self._rec.add_span(
            self.name, self._t0, self._rec.now(),
            track=self.track, cat=self.cat, args=self._args,
        )


class Recorder:
    """Collects spans, counters, and gauges for one observed activity.

    ``clock`` supplies wall time for the context-manager span API; the
    recorder's origin is captured at construction so recorded times
    start near zero.  Virtual-time producers bypass the clock entirely
    via :meth:`add_span`.
    """

    enabled: bool = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._origin = clock()
        self.spans: list[Span] = []
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self._stacks: dict[int, list[_SpanContext]] = {}

    # -- time -----------------------------------------------------------
    def now(self) -> float:
        """Wall seconds since this recorder was created."""
        return self._clock() - self._origin

    # -- spans ----------------------------------------------------------
    def add_span(
        self,
        name: str,
        t_start: float,
        t_end: float,
        *,
        track: int = 0,
        cat: str = "",
        args: dict[str, Any] | None = None,
    ) -> None:
        """Record an explicit interval (virtual or precomputed times)."""
        self.spans.append(Span(name, t_start, t_end, track, cat, _freeze_args(args)))

    def span(self, name: str, *, track: int = 0, cat: str = "", **args: Any) -> _SpanContext:
        """Context manager: a wall-clock span on this recorder's clock."""
        return _SpanContext(self, name, track, cat, args or None)

    # -- counters and gauges --------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def count(self, name: str, delta: float = 1.0) -> None:
        self.counter(name).add(delta)

    def gauge(self, name: str, value: float | None = None) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        if value is not None:
            g.set(value)
        return g


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, *exc) -> None:
        pass


class _NullCounter:
    __slots__ = ()
    value = 0.0

    def add(self, delta: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass


_NULL_SPAN = _NullSpanContext()
_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()


class NullRecorder(Recorder):
    """Recorder whose every operation is a no-op: the disabled path.

    Shared as :data:`NULL`; instrumented code holds a reference and
    calls it unconditionally, paying one attribute lookup and an empty
    call when observation is off.
    """

    enabled = False
    spans: tuple = ()  # type: ignore[assignment]
    counters: dict = {}
    gauges: dict = {}

    def __init__(self) -> None:  # no clock capture, no state
        pass

    def now(self) -> float:
        return 0.0

    def add_span(self, name, t_start, t_end, *, track=0, cat="", args=None) -> None:
        pass

    def span(self, name, *, track=0, cat="", **args):
        return _NULL_SPAN

    def counter(self, name):
        return _NULL_COUNTER

    def count(self, name, delta: float = 1.0) -> None:
        pass

    def gauge(self, name, value=None):
        return _NULL_GAUGE


#: The shared disabled recorder.
NULL = NullRecorder()


def validate_nesting(spans: Iterable[Span], atol: float = 1e-12) -> None:
    """Raise ``ValueError`` unless spans form a forest per track.

    On every track, any two spans must be either disjoint or one
    contained in the other (to ``atol`` slack) — the invariant the
    context-manager API guarantees by construction and the property
    suite asserts.
    """
    by_track: dict[int, list[Span]] = {}
    for s in spans:
        by_track.setdefault(s.track, []).append(s)
    for track, group in by_track.items():
        group.sort(key=lambda s: (s.t_start, -s.t_end))
        stack: list[Span] = []
        for s in group:
            while stack and stack[-1].t_end <= s.t_start + atol:
                stack.pop()
            if stack and s.t_end > stack[-1].t_end + atol:
                raise ValueError(
                    f"track {track}: span {s.name!r} [{s.t_start}, {s.t_end}] "
                    f"partially overlaps {stack[-1].name!r} "
                    f"[{stack[-1].t_start}, {stack[-1].t_end}]"
                )
            stack.append(s)
