"""Longitudinal bench history: rolling baselines and a regression gate.

``benchmarks/_harness.py`` appends every schema-validated bench record
as one JSON line to a history file (``REPRO_BENCH_HISTORY``).  This
module is the read side: it groups the lines per bench name in file
order (oldest first), computes a rolling baseline over the most recent
``window`` prior runs, and flags the latest run as a regression when it
is slower than the baseline by more than both

* a relative ``threshold`` (default 5%), and
* three robust sigmas of the baseline's own noise (median absolute
  deviation scaled to a normal sigma),

so a genuinely noisy bench needs a larger excursion to trip the gate
than a deterministic one.  Virtual (simulated) seconds are
deterministic, which is what makes the CI gate meaningful across
heterogeneous runners: compare with ``metric="virtual_seconds"``.

Blessing an intentional change is simply appending new honest runs:
once the new timing dominates the window, it *is* the baseline (see
EXPERIMENTS.md for the workflow).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

__all__ = [
    "BenchComparison",
    "ComparisonReport",
    "load_history",
    "robust_baseline",
    "compare_history",
    "format_comparison_report",
]

#: How many baseline sigmas the latest run must exceed, in addition to
#: the relative threshold, before it counts as a regression.
NOISE_SIGMAS = 3.0

#: MAD -> sigma scale factor for normally distributed noise.
_MAD_TO_SIGMA = 1.4826


def load_history(path: str) -> list[dict]:
    """Parse a ``history.jsonl`` file; blank/corrupt lines are skipped.

    Returns entries in file order — the longitudinal order every
    baseline computation relies on.
    """
    entries: list[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict) and "name" in entry:
                entries.append(entry)
    return entries


def robust_baseline(values: Iterable[float]) -> tuple[float, float]:
    """Median and MAD-derived sigma of a sample (the noise model)."""
    xs = sorted(values)
    if not xs:
        raise ValueError("baseline requires at least one value")
    med = _median(xs)
    mad = _median(sorted(abs(x - med) for x in xs))
    return med, _MAD_TO_SIGMA * mad


def _median(sorted_xs: list[float]) -> float:
    n = len(sorted_xs)
    mid = n // 2
    if n % 2:
        return sorted_xs[mid]
    return 0.5 * (sorted_xs[mid - 1] + sorted_xs[mid])


@dataclass(frozen=True)
class BenchComparison:
    """Latest run of one bench against its rolling baseline."""

    name: str
    n_runs: int
    baseline: float | None
    sigma: float | None
    latest: float | None
    delta: float | None  # latest/baseline - 1, when comparable
    status: str  # "ok" | "regression" | "improvement" | "skipped"
    reason: str = ""


@dataclass
class ComparisonReport:
    """Outcome of a full-history comparison."""

    metric: str
    threshold: float
    window: int
    rows: list[BenchComparison] = field(default_factory=list)

    @property
    def regressions(self) -> list[BenchComparison]:
        return [r for r in self.rows if r.status == "regression"]

    @property
    def improvements(self) -> list[BenchComparison]:
        return [r for r in self.rows if r.status == "improvement"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict[str, Any]:
        return {
            "metric": self.metric,
            "threshold": self.threshold,
            "window": self.window,
            "ok": self.ok,
            "benches": [vars(r) for r in self.rows],
        }


def _metric_value(entry: Mapping, metric: str) -> float | None:
    value = entry.get(metric)
    if metric.startswith("counters."):
        value = entry.get("counters", {}).get(metric.split(".", 1)[1])
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def compare_history(
    entries: Iterable[Mapping],
    *,
    metric: str = "seconds",
    threshold: float = 0.05,
    window: int = 5,
    noise_sigmas: float = NOISE_SIGMAS,
) -> ComparisonReport:
    """Compare each bench's latest run against its rolling baseline.

    ``metric`` names a top-level record field (``seconds``,
    ``virtual_seconds``) or a counter via ``counters.<name>``.  Runs
    whose metric is missing or non-positive are excluded (a bench that
    never reports virtual time is skipped rather than failed).
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    if window < 1:
        raise ValueError("window must be >= 1")
    by_name: dict[str, list[float]] = {}
    for entry in entries:
        value = _metric_value(entry, metric)
        if value is not None and value > 0:
            by_name.setdefault(str(entry["name"]), []).append(value)
    report = ComparisonReport(metric=metric, threshold=threshold, window=window)
    for name in sorted(by_name):
        values = by_name[name]
        if len(values) < 2:
            report.rows.append(BenchComparison(
                name, len(values), None, None, values[-1] if values else None,
                None, "skipped", "needs at least 2 runs with this metric",
            ))
            continue
        latest = values[-1]
        base_window = values[max(0, len(values) - 1 - window):-1]
        med, sigma = robust_baseline(base_window)
        delta = latest / med - 1.0
        if latest > med * (1.0 + threshold) and latest > med + noise_sigmas * sigma:
            status = "regression"
            reason = (
                f"{metric} {latest:.6g} is {delta:+.1%} vs baseline {med:.6g} "
                f"(threshold {threshold:.0%}, noise sigma {sigma:.3g})"
            )
        elif latest < med * (1.0 - threshold) and latest < med - noise_sigmas * sigma:
            status = "improvement"
            reason = f"{metric} improved {delta:+.1%} vs baseline {med:.6g}"
        else:
            status = "ok"
            reason = ""
        report.rows.append(BenchComparison(
            name, len(values), med, sigma, latest, delta, status, reason,
        ))
    return report


def format_comparison_report(report: ComparisonReport) -> str:
    """Human-readable comparison table plus a one-line verdict."""
    from ..analysis.tables import format_table

    rows = []
    for r in report.rows:
        rows.append([
            r.name,
            r.n_runs,
            r.baseline if r.baseline is not None else "-",
            r.latest if r.latest is not None else "-",
            f"{r.delta:+.1%}" if r.delta is not None else "-",
            r.status,
        ])
    table = format_table(
        ["bench", "runs", "baseline", "latest", "delta", "status"],
        rows,
        f"bench history: metric={report.metric} threshold={report.threshold:.0%} "
        f"window={report.window}",
    )
    if report.ok:
        verdict = (
            f"OK: no regressions across {len(report.rows)} bench(es)"
            + (f", {len(report.improvements)} improvement(s)" if report.improvements else "")
        )
    else:
        lines = "\n".join(f"  - {r.name}: {r.reason}" for r in report.regressions)
        verdict = f"REGRESSION in {len(report.regressions)} bench(es):\n{lines}"
    return f"{table}\n{verdict}"
