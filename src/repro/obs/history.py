"""Longitudinal bench history: rolling baselines and a regression gate.

``benchmarks/_harness.py`` appends every schema-validated bench record
as one JSON line to a history file (``REPRO_BENCH_HISTORY``).  This
module is the read side: it groups the lines per bench name in file
order (oldest first), computes a rolling baseline over the most recent
``window`` prior runs, and flags the latest run as a regression when it
is slower than the baseline by more than both

* a relative ``threshold`` (default 5%), and
* three robust sigmas of the baseline's own noise (median absolute
  deviation scaled to a normal sigma),

so a genuinely noisy bench needs a larger excursion to trip the gate
than a deterministic one.  Virtual (simulated) seconds are
deterministic, which is what makes the CI gate meaningful across
heterogeneous runners: compare with ``metric="virtual_seconds"``.

Blessing an intentional change is simply appending new honest runs:
once the new timing dominates the window, it *is* the baseline (see
EXPERIMENTS.md for the workflow).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

__all__ = [
    "BenchComparison",
    "ComparisonReport",
    "MetricGate",
    "MultiComparisonReport",
    "DEFAULT_FLEET_GATES",
    "load_history",
    "robust_baseline",
    "compare_history",
    "compare_history_multi",
    "format_comparison_report",
    "format_multi_report",
    "parse_gate_spec",
]

#: How many baseline sigmas the latest run must exceed, in addition to
#: the relative threshold, before it counts as a regression.
NOISE_SIGMAS = 3.0

#: MAD -> sigma scale factor for normally distributed noise.
_MAD_TO_SIGMA = 1.4826


def load_history(path: str) -> list[dict]:
    """Parse a ``history.jsonl`` file; blank/corrupt lines are skipped.

    Returns entries in file order — the longitudinal order every
    baseline computation relies on.
    """
    entries: list[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict) and "name" in entry:
                entries.append(entry)
    return entries


def robust_baseline(values: Iterable[float]) -> tuple[float, float]:
    """Median and MAD-derived sigma of a sample (the noise model)."""
    xs = sorted(values)
    if not xs:
        raise ValueError("baseline requires at least one value")
    med = _median(xs)
    mad = _median(sorted(abs(x - med) for x in xs))
    return med, _MAD_TO_SIGMA * mad


def _median(sorted_xs: list[float]) -> float:
    n = len(sorted_xs)
    mid = n // 2
    if n % 2:
        return sorted_xs[mid]
    return 0.5 * (sorted_xs[mid - 1] + sorted_xs[mid])


@dataclass(frozen=True)
class BenchComparison:
    """Latest run of one bench against its rolling baseline."""

    name: str
    n_runs: int
    baseline: float | None
    sigma: float | None
    latest: float | None
    delta: float | None  # latest/baseline - 1, when comparable
    status: str  # "ok" | "regression" | "improvement" | "skipped"
    reason: str = ""


@dataclass
class ComparisonReport:
    """Outcome of a full-history comparison."""

    metric: str
    threshold: float
    window: int
    direction: str = "lower"  # "lower" | "higher" — which way is better
    rows: list[BenchComparison] = field(default_factory=list)

    @property
    def regressions(self) -> list[BenchComparison]:
        return [r for r in self.rows if r.status == "regression"]

    @property
    def improvements(self) -> list[BenchComparison]:
        return [r for r in self.rows if r.status == "improvement"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict[str, Any]:
        return {
            "metric": self.metric,
            "threshold": self.threshold,
            "window": self.window,
            "direction": self.direction,
            "ok": self.ok,
            "benches": [vars(r) for r in self.rows],
        }


def _resolve_path(obj: Any, path: str) -> Any:
    """Resolve a dotted metric path against (possibly nested) mappings.

    A flat key containing dots wins at every level (``counters`` in
    bench records is a flat ``str -> float`` mapping whose keys may
    themselves be dotted, e.g. ``"cellcache.hit_rate"``); otherwise the
    path descends one mapping per segment, so nested layouts like
    ``{"counters": {"cellcache": {"hits": 5}}}`` resolve too.  Records
    with neither shape yield None and are skipped, never dropped with a
    wrong value.
    """
    if not isinstance(obj, Mapping):
        return None
    if path in obj:
        return obj[path]
    head, _, rest = path.partition(".")
    if rest and head in obj:
        return _resolve_path(obj[head], rest)
    return None


def _metric_value(entry: Mapping, metric: str) -> float | None:
    value = _resolve_path(entry, metric)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def compare_history(
    entries: Iterable[Mapping],
    *,
    metric: str = "seconds",
    threshold: float = 0.05,
    window: int = 5,
    noise_sigmas: float = NOISE_SIGMAS,
    direction: str = "lower",
) -> ComparisonReport:
    """Compare each bench's latest run against its rolling baseline.

    ``metric`` names a top-level record field (``seconds``,
    ``virtual_seconds``) or a dotted path into nested or flat-dotted
    mappings (``counters.cache_hits``, ``counters.cellcache.hit_rate``).
    Runs whose metric is missing or non-positive are excluded (a bench
    that never reports virtual time is skipped rather than failed).

    ``direction`` says which way is better: ``"lower"`` (timings — a
    higher latest value regresses) or ``"higher"`` (rates like cache
    hit rate — a *lower* latest value regresses).
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    if window < 1:
        raise ValueError("window must be >= 1")
    if direction not in ("lower", "higher"):
        raise ValueError(f"direction must be 'lower' or 'higher', got {direction!r}")
    by_name: dict[str, list[float]] = {}
    for entry in entries:
        value = _metric_value(entry, metric)
        if value is not None and value > 0:
            by_name.setdefault(str(entry["name"]), []).append(value)
    report = ComparisonReport(
        metric=metric, threshold=threshold, window=window, direction=direction,
    )
    for name in sorted(by_name):
        values = by_name[name]
        if len(values) < 2:
            report.rows.append(BenchComparison(
                name, len(values), None, None, values[-1] if values else None,
                None, "skipped", "needs at least 2 runs with this metric",
            ))
            continue
        latest = values[-1]
        base_window = values[max(0, len(values) - 1 - window):-1]
        med, sigma = robust_baseline(base_window)
        delta = latest / med - 1.0
        worse = latest > med * (1.0 + threshold) and latest > med + noise_sigmas * sigma
        better = latest < med * (1.0 - threshold) and latest < med - noise_sigmas * sigma
        if direction == "higher":
            worse, better = better, worse
        if worse:
            status = "regression"
            reason = (
                f"{metric} {latest:.6g} is {delta:+.1%} vs baseline {med:.6g} "
                f"(threshold {threshold:.0%}, noise sigma {sigma:.3g}, "
                f"{direction} is better)"
            )
        elif better:
            status = "improvement"
            reason = f"{metric} improved {delta:+.1%} vs baseline {med:.6g}"
        else:
            status = "ok"
            reason = ""
        report.rows.append(BenchComparison(
            name, len(values), med, sigma, latest, delta, status, reason,
        ))
    return report


@dataclass(frozen=True)
class MetricGate:
    """One gated metric: what to compare, how far it may drift, which
    way is better.  The unit of the fleet's multi-metric CI gate."""

    metric: str
    threshold: float = 0.05
    direction: str = "lower"

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.direction not in ("lower", "higher"):
            raise ValueError(
                f"direction must be 'lower' or 'higher', got {self.direction!r}"
            )


#: The fleet CI gate: deterministic virtual seconds are the sharp edge,
#: wall-clock is an order-of-magnitude backstop only — fleet shards run
#: under worker-pool contention, which swings wall time several-fold
#: run to run, so anything tighter than 400% flakes — recovery
#: overhead guards the resilience benches (virtual, hence tight-able),
#: and the cell-cache hit rate gates *downward* drift of the
#: latency-hiding layer's effectiveness.
DEFAULT_FLEET_GATES: tuple[MetricGate, ...] = (
    MetricGate("virtual_seconds", 0.15),
    MetricGate("seconds", 4.0),
    MetricGate("counters.recovery_overhead_s", 0.25),
    MetricGate("counters.cellcache.hit_rate", 0.10, direction="higher"),
)


@dataclass
class MultiComparisonReport:
    """One :class:`ComparisonReport` per gated metric, one verdict."""

    window: int
    reports: list[ComparisonReport] = field(default_factory=list)

    @property
    def regressions(self) -> list[tuple[str, BenchComparison]]:
        return [(rep.metric, row) for rep in self.reports for row in rep.regressions]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def gate_status(self, name: str) -> dict[str, str]:
        """Per-metric status ("ok"/"regression"/...) for one bench."""
        out: dict[str, str] = {}
        for rep in self.reports:
            for row in rep.rows:
                if row.name == name:
                    out[rep.metric] = row.status
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "window": self.window,
            "ok": self.ok,
            "metrics": [rep.to_dict() for rep in self.reports],
        }


def compare_history_multi(
    entries: Iterable[Mapping],
    gates: Iterable[MetricGate] = DEFAULT_FLEET_GATES,
    *,
    window: int = 5,
    noise_sigmas: float = NOISE_SIGMAS,
) -> MultiComparisonReport:
    """The multi-metric regression gate over one shared history.

    Runs :func:`compare_history` once per :class:`MetricGate`; the
    verdict is the conjunction — any regression in any gated metric
    fails the whole gate.  Benches missing a metric are skipped for
    that metric only (a closed-form bench has no recovery time; that
    must not mask a treecode cache regression).
    """
    entries = list(entries)
    multi = MultiComparisonReport(window=window)
    for gate in gates:
        multi.reports.append(compare_history(
            entries,
            metric=gate.metric,
            threshold=gate.threshold,
            window=window,
            noise_sigmas=noise_sigmas,
            direction=gate.direction,
        ))
    return multi


def parse_gate_spec(spec: str) -> MetricGate:
    """Parse a CLI gate spec ``metric[:threshold[:direction]]``.

    >>> parse_gate_spec("virtual_seconds:0.15")
    MetricGate(metric='virtual_seconds', threshold=0.15, direction='lower')
    >>> parse_gate_spec("counters.cellcache.hit_rate:0.1:higher").direction
    'higher'
    """
    parts = spec.split(":")
    if not parts[0]:
        raise ValueError(f"empty metric in gate spec {spec!r}")
    if len(parts) > 3:
        raise ValueError(f"gate spec {spec!r} has too many fields")
    threshold = float(parts[1]) if len(parts) > 1 and parts[1] else 0.05
    direction = parts[2] if len(parts) > 2 else "lower"
    return MetricGate(parts[0], threshold, direction)


def format_comparison_report(report: ComparisonReport) -> str:
    """Human-readable comparison table plus a one-line verdict."""
    from ..analysis.tables import format_table

    rows = []
    for r in report.rows:
        rows.append([
            r.name,
            r.n_runs,
            r.baseline if r.baseline is not None else "-",
            r.latest if r.latest is not None else "-",
            f"{r.delta:+.1%}" if r.delta is not None else "-",
            r.status,
        ])
    table = format_table(
        ["bench", "runs", "baseline", "latest", "delta", "status"],
        rows,
        f"bench history: metric={report.metric} threshold={report.threshold:.0%} "
        f"window={report.window}",
    )
    if report.ok:
        verdict = (
            f"OK: no regressions across {len(report.rows)} bench(es)"
            + (f", {len(report.improvements)} improvement(s)" if report.improvements else "")
        )
    else:
        lines = "\n".join(f"  - {r.name}: {r.reason}" for r in report.regressions)
        verdict = f"REGRESSION in {len(report.regressions)} bench(es):\n{lines}"
    return f"{table}\n{verdict}"


def format_multi_report(multi: MultiComparisonReport) -> str:
    """All per-metric tables plus the one conjoined verdict."""
    blocks = [format_comparison_report(rep) for rep in multi.reports]
    if multi.ok:
        verdict = (
            f"FLEET GATE OK: no regressions across "
            f"{len(multi.reports)} gated metric(s)"
        )
    else:
        lines = "\n".join(
            f"  - [{metric}] {row.name}: {row.reason}"
            for metric, row in multi.regressions
        )
        verdict = (
            f"FLEET GATE REGRESSION in {len(multi.regressions)} "
            f"bench-metric pair(s):\n{lines}"
        )
    return "\n\n".join(blocks + [verdict])
