"""Self-contained HTML run reports: SVG timeline + analysis tables.

:func:`html_report` renders one recorded run as a single HTML file with
**no external assets** — inline CSS, inline SVG — so it can be opened
straight from disk or attached to a CI build.  It embeds:

* a per-rank SVG timeline (the Vampir view: compute / blocked /
  collective marks, critical path outlined underneath);
* the wait-state breakdown, load-imbalance table, and — when phase
  predictions are supplied — the perf-model attribution table from
  :mod:`repro.obs.analysis`;
* counter totals and, optionally, a bench-history comparison from
  :mod:`repro.obs.history`.

Every value shown in the SVG is also present in an HTML table, and
category identity is carried by the legend text and per-mark tooltips,
never by color alone.
"""

from __future__ import annotations

import html
from typing import Any, Iterable, Mapping

from .analysis import (
    PathSegment,
    attribute_phases,
    classify_waits,
    critical_path,
    critical_path_summary,
    load_imbalance,
    wait_summary,
)
from .model import Recorder, Span

__all__ = [
    "svg_timeline",
    "svg_sparkline",
    "html_report",
    "fleet_report",
    "write_report",
    "write_fleet_report",
    "CATEGORY_COLORS",
    "WAIT_BAR_COLORS",
]

#: Category -> (light, dark) fill; a validated categorical palette
#: (blue/orange/aqua), reserved red for crashes, neutral gray for
#: untracked time.  Identity is never color-alone: the legend and
#: per-mark tooltips name every category.
CATEGORY_COLORS: dict[str, tuple[str, str]] = {
    "compute": ("#2a78d6", "#3987e5"),
    "blocked": ("#eb6834", "#d95926"),
    "collective": ("#1baf7a", "#199e70"),
    "failed": ("#e34948", "#e66767"),
    "other": ("#9a9890", "#6f6e68"),
}

_CSS = """
:root { color-scheme: light dark; }
body {
  font: 14px/1.45 system-ui, sans-serif;
  margin: 2rem auto; max-width: 72rem; padding: 0 1rem;
  background: #fcfcfb; color: #0b0b0b;
}
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: 0.5rem 0; }
th, td { padding: 0.25rem 0.7rem; text-align: right; }
th { border-bottom: 1px solid #52514e; color: #52514e; font-weight: 600; }
td:first-child, th:first-child { text-align: left; }
tr:nth-child(even) td { background: #f0efec; }
.legend { display: flex; gap: 1.2rem; flex-wrap: wrap; margin: 0.4rem 0; color: #52514e; }
.legend span { display: inline-flex; align-items: center; gap: 0.35rem; }
.swatch { width: 0.85rem; height: 0.85rem; border-radius: 3px; display: inline-block; }
.muted { color: #52514e; }
.bad { color: #b3261e; font-weight: 600; }
.ok { color: #1d6f42; font-weight: 600; }
svg text { font: 11px system-ui, sans-serif; fill: #52514e; }
@media (prefers-color-scheme: dark) {
  body { background: #1a1a19; color: #ffffff; }
  th { border-color: #c3c2b7; color: #c3c2b7; }
  tr:nth-child(even) td { background: #262624; }
  .legend, .muted { color: #c3c2b7; }
  .bad { color: #e66767; } .ok { color: #54b47e; }
  svg text { fill: #c3c2b7; }
}
"""


def _spans_of(source: Recorder | Iterable[Span]) -> list[Span]:
    if isinstance(source, Recorder):
        return list(source.spans)
    return list(source)


def _fill(cat: str, dark: bool = False) -> str:
    light, dk = CATEGORY_COLORS.get(cat, CATEGORY_COLORS["other"])
    return dk if dark else light


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return html.escape(str(value))


def _table(headers: list[str], rows: list[list[Any]]) -> str:
    head = "".join(f"<th>{html.escape(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_fmt(v)}</td>" for v in row) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def svg_timeline(
    source: Recorder | Iterable[Span],
    elapsed: float | None = None,
    *,
    path: Iterable[PathSegment] | None = None,
    width: int = 960,
    row_h: int = 20,
    track_names: Mapping[int, str] | None = None,
) -> str:
    """Inline SVG Gantt: one lane per track, category-colored marks.

    When ``path`` (critical-path segments) is given, the path is drawn
    as a connected underline hopping between lanes.  Every mark carries
    a ``<title>`` tooltip naming the span, its category, and duration.
    """
    spans = _spans_of(source)
    if elapsed is None:
        elapsed = max((s.t_end for s in spans), default=0.0)
    if not spans or elapsed <= 0:
        return "<p class='muted'>(empty trace)</p>"
    tracks = sorted({s.track for s in spans})
    lane = {tr: i for i, tr in enumerate(tracks)}
    label_w, pad = 72, 6
    plot_w = width - label_w - pad
    height = len(tracks) * (row_h + 4) + 24

    def x(t: float) -> float:
        return label_w + plot_w * t / elapsed

    parts = [
        f"<svg viewBox='0 0 {width} {height}' width='100%' "
        "xmlns='http://www.w3.org/2000/svg' role='img' "
        "aria-label='per-rank timeline'>"
    ]
    for tr in tracks:
        y = lane[tr] * (row_h + 4) + 14
        name = (track_names or {}).get(tr, f"rank {tr}")
        parts.append(
            f"<text x='{label_w - 8}' y='{y + row_h * 0.7:.1f}' "
            f"text-anchor='end'>{html.escape(name)}</text>"
        )
    for s in sorted(spans, key=lambda s: (s.track, s.t_start)):
        cat = s.cat if s.cat in CATEGORY_COLORS else (
            "other" if s.cat not in ("compute", "blocked", "collective", "failed")
            else s.cat
        )
        y = lane[s.track] * (row_h + 4) + 14
        x0, x1 = x(s.t_start), x(s.t_end)
        w = max(x1 - x0, 0.75)
        tip = html.escape(
            f"{s.name} [{s.cat or 'span'}] {s.duration:.6g}s "
            f"({s.t_start:.6g} - {s.t_end:.6g}) rank {s.track}"
        )
        parts.append(
            f"<rect x='{x0:.2f}' y='{y}' width='{w:.2f}' height='{row_h}' "
            f"rx='3' fill='{_fill(cat)}' stroke='#fcfcfb' stroke-width='1'>"
            f"<title>{tip}</title></rect>"
        )
    if path:
        pts = []
        for seg in path:
            y = lane.get(seg.track, 0) * (row_h + 4) + 14 + row_h + 2
            pts.append((x(seg.t_start), y))
            pts.append((x(seg.t_end), y))
        poly = " ".join(f"{px:.2f},{py}" for px, py in pts)
        parts.append(
            f"<polyline points='{poly}' fill='none' stroke='#0b0b0b' "
            "stroke-width='1.8' stroke-dasharray='5,3' opacity='0.75'>"
            "<title>critical path</title></polyline>"
        )
    axis_y = len(tracks) * (row_h + 4) + 14
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        parts.append(
            f"<text x='{x(frac * elapsed):.1f}' y='{axis_y + 8}' "
            f"text-anchor='middle'>{frac * elapsed:.4g}s</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


def _legend(with_path: bool) -> str:
    items = []
    for cat in ("compute", "blocked", "collective", "failed", "other"):
        items.append(
            f"<span><i class='swatch' style='background:{_fill(cat)}'></i>"
            f"{cat}</span>"
        )
    if with_path:
        items.append("<span>&#8212;&#8212; (dashed) critical path</span>")
    return f"<div class='legend'>{''.join(items)}</div>"


def html_report(
    source: Recorder | Iterable[Span],
    *,
    title: str = "repro.obs run report",
    elapsed: float | None = None,
    predictions: Mapping[str, Any] | None = None,
    model: Any | None = None,
    counters: Mapping[str, float] | None = None,
    history_text: str | None = None,
    track_names: Mapping[int, str] | None = None,
) -> str:
    """Render one run as a single self-contained HTML document."""
    spans = _spans_of(source)
    if counters is None and isinstance(source, Recorder):
        counters = {k: c.value for k, c in sorted(source.counters.items())}
    if elapsed is None:
        elapsed = max((s.t_end for s in spans), default=0.0)
    segs = critical_path(spans, elapsed)
    cp = critical_path_summary(segs)
    waits = wait_summary(spans)
    states = classify_waits(spans)
    imb = load_imbalance(spans, elapsed)

    sections: list[str] = []
    sections.append(
        "<h2>Timeline</h2>"
        + _legend(bool(segs))
        + svg_timeline(spans, elapsed, path=segs, track_names=track_names)
    )

    by_kind = ", ".join(f"{k} {v:.4g}s" for k, v in sorted(cp["by_kind"].items()))
    sections.append(
        "<h2>Critical path</h2>"
        f"<p>Length <b>{cp['length_s']:.6g}s</b> (= elapsed) over "
        f"{cp['n_segments']} segments with {cp['rank_switches']} rank "
        f"switches; time on path: {html.escape(by_kind)}.</p>"
        + _table(
            ["start s", "end s", "rank", "kind", "segment", "seconds"],
            [[seg.t_start, seg.t_end, seg.track, seg.kind, seg.name, seg.duration]
             for seg in segs],
        )
    )

    wait_rows = [
        [cause, secs, (secs / waits["total_blocked_s"]) if waits["total_blocked_s"] else 0.0]
        for cause, secs in waits["by_cause"].items()
        if secs > 0 or cause != "unclassified"
    ]
    sections.append(
        "<h2>Wait states</h2>"
        f"<p>{waits['n_waits']} blocked spans, "
        f"{waits['total_blocked_s']:.4g}s total, classification coverage "
        f"<b>{waits['coverage']:.0%}</b> ({len(states)} spans assigned "
        "exactly one cause).</p>"
        + _table(["cause", "seconds", "fraction"], wait_rows)
    )

    sections.append(
        "<h2>Load balance</h2>"
        f"<p>Compute imbalance <b>{imb['imbalance']:.1%}</b> "
        f"(max/mean - 1), sigma {imb['sigma_s']:.4g}s; "
        f"{imb['blocked_frac']:.1%} of rank-time blocked.</p>"
        + _table(
            ["rank", "compute s", "blocked s", "overhead s", "idle s", "busy frac"],
            [[r["rank"], r["compute_s"], r["blocked_s"], r["overhead_s"],
              r["idle_s"], r["compute_frac"]] for r in imb["ranks"]],
        )
    )

    if predictions:
        rows = attribute_phases(spans, predictions, model=model)
        sections.append(
            "<h2>Perf-model attribution</h2>"
            "<p>Measured phase means vs roofline predictions; "
            "phases off by more than 25% are flagged.</p>"
            + _table(
                ["phase", "count", "measured mean s", "predicted s", "ratio", "verdict"],
                [[r["phase"], r["count"], r["measured_mean_s"], r["predicted_s"],
                  r["ratio"],
                  {True: "DIVERGES", False: "ok", None: "unmodeled"}[r["diverges"]]]
                 for r in rows],
            )
        )

    if counters:
        sections.append(
            "<h2>Counters</h2>"
            + _table(["counter", "total"], [[k, v] for k, v in counters.items()])
        )

    if history_text:
        sections.append(
            "<h2>Bench history</h2>"
            f"<pre class='muted'>{html.escape(history_text)}</pre>"
        )

    return (
        "<!doctype html><html lang='en'><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title><style>{_CSS}</style></head><body>"
        f"<h1>{html.escape(title)}</h1>"
        f"<p class='muted'>elapsed {elapsed:.6g}s &middot; "
        f"{imb['n_ranks']} rank(s) &middot; {len(spans)} spans</p>"
        + "".join(sections)
        + "</body></html>\n"
    )


def write_report(path: str, source: Recorder | Iterable[Span], **kwargs: Any) -> str:
    """Write :func:`html_report` output to ``path``; returns the path."""
    doc = html_report(source, **kwargs)
    with open(path, "w") as fh:
        fh.write(doc)
    return path


# ---------------------------------------------------------------------------
# Fleet report: the whole bench suite on one page.
# ---------------------------------------------------------------------------

#: Wait-cause -> fill for the stacked breakdown bars.  Identity is
#: never color-alone: every segment carries a <title> tooltip and the
#: same numbers appear in the adjacent table cells.
WAIT_BAR_COLORS: dict[str, str] = {
    "late-sender": "#eb6834",
    "late-receiver": "#d95926",
    "transfer": "#9a9890",
    "collective-op": "#1baf7a",
    "collective-imbalance": "#2a78d6",
    "unclassified": "#52514e",
}


def svg_sparkline(
    values: Iterable[float],
    *,
    width: int = 130,
    height: int = 26,
    label: str = "",
) -> str:
    """Tiny inline trend line for one bench metric series.

    Degenerate inputs degrade gracefully rather than erroring: an empty
    series renders a muted placeholder, a single point renders one dot,
    and a flat series draws its line mid-band instead of dividing by a
    zero range.  The full series is in the ``<title>`` tooltip.
    """
    vals = [float(v) for v in values]
    if not vals:
        return "<span class='muted'>(no history)</span>"
    pad = 3.0
    lo, hi = min(vals), max(vals)
    span = hi - lo

    def y(v: float) -> float:
        if span == 0:
            return height / 2.0
        return pad + (height - 2 * pad) * (1.0 - (v - lo) / span)

    def x(i: int) -> float:
        if len(vals) == 1:
            return width / 2.0
        return pad + (width - 2 * pad) * i / (len(vals) - 1)

    tip = html.escape(
        (f"{label}: " if label else "") + ", ".join(f"{v:.6g}" for v in vals)
    )
    parts = [
        f"<svg viewBox='0 0 {width} {height}' width='{width}' height='{height}' "
        f"xmlns='http://www.w3.org/2000/svg' role='img' "
        f"aria-label='{html.escape(label) or 'trend'}'><title>{tip}</title>"
    ]
    if len(vals) > 1:
        pts = " ".join(f"{x(i):.2f},{y(v):.2f}" for i, v in enumerate(vals))
        parts.append(
            f"<polyline points='{pts}' fill='none' stroke='#2a78d6' "
            "stroke-width='1.5'/>"
        )
    parts.append(
        f"<circle cx='{x(len(vals) - 1):.2f}' cy='{y(vals[-1]):.2f}' r='2.4' "
        "fill='#d95926'/>"
    )
    parts.append("</svg>")
    return "".join(parts)


def _wait_bar(by_cause: Mapping[str, float], width: int = 220, height: int = 14) -> str:
    """One stacked horizontal bar of wait seconds per cause."""
    total = sum(v for v in by_cause.values() if v > 0)
    if total <= 0:
        return "<span class='muted'>(no blocked time)</span>"
    parts = [
        f"<svg viewBox='0 0 {width} {height}' width='{width}' height='{height}' "
        "xmlns='http://www.w3.org/2000/svg' role='img' "
        "aria-label='wait-state breakdown'>"
    ]
    x0 = 0.0
    for cause in sorted(by_cause):
        v = by_cause[cause]
        if v <= 0:
            continue
        w = width * v / total
        fill = WAIT_BAR_COLORS.get(cause, WAIT_BAR_COLORS["unclassified"])
        tip = html.escape(f"{cause}: {v:.6g}s ({v / total:.0%})")
        parts.append(
            f"<rect x='{x0:.2f}' y='0' width='{max(w, 0.5):.2f}' "
            f"height='{height}' fill='{fill}'><title>{tip}</title></rect>"
        )
        x0 += w
    parts.append("</svg>")
    return "".join(parts)


def _metric_series(history: Iterable[Mapping], name: str, metric: str) -> list[float]:
    """History values of one metric for one bench, oldest first."""
    from .history import _metric_value

    out = []
    for entry in history:
        if entry.get("name") != name:
            continue
        value = _metric_value(entry, metric)
        if value is not None:
            out.append(value)
    return out


def _wait_causes(record: Mapping) -> dict[str, float]:
    """``wait.<cause>_s`` counters of one record, as cause -> seconds."""
    out = {}
    for key, value in record.get("counters", {}).items():
        if key.startswith("wait.") and key.endswith("_s"):
            out[key[len("wait."):-len("_s")]] = float(value)
    return out


def _gate_cell(statuses: Mapping[str, str]) -> str:
    """The red/green gate column for one bench.

    ``regression`` anywhere is red; all-skipped means the gate never
    saw this bench (no baseline yet) and renders muted, not green.
    """
    seen = set(statuses.values())
    if "regression" in seen:
        detail = ", ".join(m for m, s in sorted(statuses.items()) if s == "regression")
        return f"<span class='bad'>FAIL ({html.escape(detail)})</span>"
    if seen and seen != {"skipped"}:
        return "<span class='ok'>OK</span>"
    return "<span class='muted'>no baseline</span>"


def fleet_report(
    rows: Iterable[Mapping],
    *,
    history: Iterable[Mapping] | None = None,
    multi: Any | None = None,
    title: str = "repro.obs fleet report",
) -> str:
    """Render one fleet ledger as a single self-contained HTML page.

    ``rows`` is the ``fleet.jsonl`` content (:func:`repro.obs.fleet.load_fleet`);
    ``history`` the longitudinal record behind the per-bench sparklines
    (wall seconds, virtual seconds, cell-cache hit rate); ``multi`` a
    :class:`repro.obs.history.MultiComparisonReport` driving the
    red/green gate column.  Output is deterministic for fixed inputs —
    no timestamps, no environment — so golden-file tests can pin it.
    """
    rows = list(rows)
    history = list(history or [])
    fleet_meta = rows[0]["fleet"] if rows else {}
    n_failed = sum(1 for r in rows if r["fleet"]["status"] == "failed")

    body_rows = []
    for r in rows:
        meta = r["fleet"]
        name = str(r.get("name", meta["bench"]))
        wall = _metric_series(history, name, "seconds") + [float(r["seconds"])]
        virt = _metric_series(history, name, "virtual_seconds")
        v_now = float(r.get("virtual_seconds", 0.0))
        if v_now > 0:
            virt.append(v_now)
        hit = _metric_series(history, name, "counters.cellcache.hit_rate")
        hit_now = r.get("counters", {}).get("cellcache.hit_rate")
        if hit_now is not None:
            hit.append(float(hit_now))
        status = meta["status"]
        status_cell = (
            f"<span class='bad'>{html.escape(status)}</span>" if status == "failed"
            else html.escape(status)
        )
        gate = _gate_cell(multi.gate_status(name)) if multi is not None else (
            "<span class='muted'>-</span>"
        )
        body_rows.append(
            "<tr>"
            f"<td>{html.escape(name)}</td>"
            f"<td>{status_cell}</td>"
            f"<td>{html.escape(', '.join(meta.get('tags', [])))}</td>"
            f"<td>{_fmt(float(r['seconds']))}</td>"
            f"<td>{svg_sparkline(wall, label=f'{name} wall s')}</td>"
            f"<td>{_fmt(v_now) if v_now > 0 else '-'}</td>"
            f"<td>{svg_sparkline(virt, label=f'{name} virtual s')}</td>"
            f"<td>{svg_sparkline(hit, label=f'{name} cache hit rate')}</td>"
            f"<td>{gate}</td>"
            "</tr>"
        )
    head = "".join(
        f"<th>{html.escape(h)}</th>"
        for h in ["bench", "status", "tags", "wall s", "wall trend",
                  "virtual s", "virtual trend", "cache hit trend", "gate"]
    )
    summary = (
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{''.join(body_rows)}</tbody></table>"
    )

    sections = [
        "<h2>Suite</h2>"
        + (
            f"<p class='bad'>{n_failed} bench(es) FAILED</p>" if n_failed
            else "<p class='ok'>all benches completed</p>"
        )
        + summary
    ]

    wait_rows = []
    for r in rows:
        causes = _wait_causes(r)
        if not causes:
            continue
        total = sum(causes.values())
        top = max(causes, key=lambda c: causes[c]) if total > 0 else "-"
        wait_rows.append([
            html.escape(str(r.get("name", ""))), total, top, _wait_bar(causes),
        ])
    if wait_rows:
        body = "".join(
            "<tr>" + "".join(
                f"<td>{cell if isinstance(cell, str) else _fmt(cell)}</td>"
                for cell in row
            ) + "</tr>"
            for row in wait_rows
        )
        sections.append(
            "<h2>Wait states</h2>"
            "<p class='muted'>Engine wait-state mix (virtual seconds) for "
            "benches that record it; hover a segment for cause and share.</p>"
            "<table><thead><tr><th>bench</th><th>blocked s</th>"
            "<th>dominant cause</th><th>breakdown</th></tr></thead>"
            f"<tbody>{body}</tbody></table>"
        )

    if multi is not None:
        from .history import format_multi_report

        sections.append(
            "<h2>Multi-metric gate</h2>"
            f"<pre class='muted'>{html.escape(format_multi_report(multi))}</pre>"
        )

    subtitle = (
        f"fleet {html.escape(str(fleet_meta.get('id', '?')))} &middot; "
        f"mode {html.escape(str(fleet_meta.get('mode', '?')))} &middot; "
        f"{len(rows)} bench(es)"
    )
    return (
        "<!doctype html><html lang='en'><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title><style>{_CSS}</style></head><body>"
        f"<h1>{html.escape(title)}</h1>"
        f"<p class='muted'>{subtitle}</p>"
        + "".join(sections)
        + "</body></html>\n"
    )


def write_fleet_report(path: str, rows: Iterable[Mapping], **kwargs: Any) -> str:
    """Write :func:`fleet_report` output to ``path``; returns the path."""
    doc = fleet_report(rows, **kwargs)
    with open(path, "w") as fh:
        fh.write(doc)
    return path
