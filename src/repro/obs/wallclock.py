"""Wall-clock attribution: where did the real time go?

The discrete-event engine accounts *virtual* seconds exactly (and the
PR-3 critical path partitions them over [0, elapsed] exactly); this
module does the same for *real* seconds.  A :class:`WallProfiler`
charges every instant of wall-clock between its construction and
:meth:`~WallProfiler.finalize` to exactly one named bucket — the
innermost active one, or ``"other"`` when none is active — so the
bucket totals partition elapsed time by construction, mirroring the
critical-path invariant.

Buckets used by the instrumented call sites:

* ``kernel`` — batched force/SPH kernels (via
  :class:`repro.core.backend_wall.WallBackend`) and multiprocess shard
  execution.
* ``engine`` — the SimMPI event loop: scheduling plus all rank host
  code not claimed by a deeper bucket.
* ``comm`` — engine-side message matching and collective bookkeeping.
* ``serialization`` — cell-record wire conversion when serving remote
  requests, and process-pool argument marshalling.
* ``other`` — everything outside the instrumented regions (setup,
  result assembly).

Instrumented sections are synchronous with respect to the profiler:
a bucket must be exited in the frame that entered it.  Rank *programs*
are coroutines the engine interleaves, so generator code must never
hold a bucket across a yield — the instrumentation therefore lives in
the engine loop, the dispatch branches, and the kernel layer, all of
which run to completion.

The profiler is event-sourced: every enter/exit is recorded as
``(op, name, t)`` and a recorded event list replays to the identical
report (the golden-fixture regression in
``tests/test_obs_wallclock.py``).  Activation follows the module-global
pattern of :data:`repro.obs.NULL` — :func:`profile` installs a
profiler as :data:`ACTIVE`, and :func:`bucket` is a zero-cost no-op
context when none is installed.

With no profiler installed, instrumented code pays nothing:

>>> with bucket("kernel"):      # no ACTIVE profiler: a no-op context
...     pass

Install one (an injected fake clock makes the charges exact):

>>> t = iter([0.0, 1.0, 4.0, 5.0])
>>> with profile(clock=lambda: next(t)) as prof:
...     with bucket("kernel"):
...         pass
>>> prof.report().buckets["kernel"]
3.0
"""

from __future__ import annotations

import contextlib
import json
import time
from dataclasses import dataclass
from typing import Iterable, Mapping, TextIO

__all__ = [
    "BUCKETS",
    "WallProfiler",
    "WallclockReport",
    "ACTIVE",
    "profile",
    "bucket",
    "replay",
    "load_events",
    "save_events",
    "format_report",
]

#: Canonical bucket names, in report order.  Profilers accept any
#: name; these are the ones the instrumented hot paths charge.
BUCKETS = ("kernel", "engine", "comm", "serialization", "other")


@dataclass
class WallclockReport:
    """Bucket totals partitioning ``[0, elapsed]`` wall seconds."""

    buckets: dict[str, float]
    elapsed: float

    def fraction(self, name: str) -> float:
        return self.buckets.get(name, 0.0) / self.elapsed if self.elapsed else 0.0

    def to_dict(self) -> dict:
        return {"elapsed_s": self.elapsed, "buckets": dict(self.buckets)}


class WallProfiler:
    """Stack-based innermost-bucket wall-clock attribution.

    Every call to :meth:`enter`/:meth:`exit`/:meth:`finalize` charges
    the span since the previous call to the bucket that was innermost
    during it.  The charges telescope over ``[t0, t_final]``, so the
    bucket totals are an exact partition of elapsed time — nothing
    counted twice, nothing dropped:

    >>> t = iter([0.0, 1.0, 3.0, 4.0])
    >>> p = WallProfiler(clock=lambda: next(t))
    >>> p.enter("kernel"); p.exit()
    >>> report = p.finalize()
    >>> report.buckets == {"other": 2.0, "kernel": 2.0}
    True
    >>> report.elapsed
    4.0
    """

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._stack: list[str] = []
        self.buckets: dict[str, float] = {}
        self._t0 = self._last = float(clock())
        # The init event anchors t0 so a replayed profiler charges the
        # pre-first-bucket gap to "other" exactly like the original.
        self.events: list[tuple[str, str, float]] = [("init", "", self._t0)]
        self._final: float | None = None

    # -- event-sourced core ---------------------------------------------
    def _charge(self, now: float) -> None:
        name = self._stack[-1] if self._stack else "other"
        self.buckets[name] = self.buckets.get(name, 0.0) + (now - self._last)
        self._last = now

    def enter(self, name: str, now: float | None = None) -> None:
        now = float(self._clock()) if now is None else float(now)
        self._charge(now)
        self._stack.append(str(name))
        self.events.append(("enter", str(name), now))

    def exit(self, now: float | None = None) -> None:
        if not self._stack:
            raise RuntimeError("bucket exit without a matching enter")
        now = float(self._clock()) if now is None else float(now)
        self._charge(now)
        name = self._stack.pop()
        self.events.append(("exit", name, now))

    def finalize(self, now: float | None = None) -> WallclockReport:
        """Charge the tail and freeze; safe to call more than once."""
        if self._final is None:
            now = float(self._clock()) if now is None else float(now)
            while self._stack:  # unwind anything left open
                self._charge(now)
                self.events.append(("exit", self._stack.pop(), now))
            self._charge(now)
            self._final = now
            self.events.append(("final", "", now))
        return self.report()

    # -- convenience ------------------------------------------------------
    @contextlib.contextmanager
    def bucket(self, name: str):
        self.enter(name)
        try:
            yield self
        finally:
            self.exit()

    @property
    def elapsed(self) -> float:
        end = self._final if self._final is not None else self._last
        return end - self._t0

    def report(self) -> WallclockReport:
        return WallclockReport(dict(self.buckets), self.elapsed)


#: The installed profiler, or None.  Hot paths consult it through
#: :func:`bucket`, which costs one global load when inactive.
ACTIVE: WallProfiler | None = None

_INACTIVE = contextlib.nullcontext()


@contextlib.contextmanager
def profile(clock=time.perf_counter):
    """Install a fresh profiler as :data:`ACTIVE` for the duration."""
    global ACTIVE
    prof = WallProfiler(clock=clock)
    prev, ACTIVE = ACTIVE, prof
    try:
        yield prof
    finally:
        ACTIVE = prev
        prof.finalize()


def bucket(name: str):
    """Context charging the active profiler; no-op when none is."""
    prof = ACTIVE
    return prof.bucket(name) if prof is not None else _INACTIVE


# -- replay / persistence -----------------------------------------------


def replay(events: Iterable[tuple[str, str, float]]) -> WallProfiler:
    """Rebuild a profiler from a recorded event list.

    Deterministic: the same events produce the same bucket totals, so
    a saved trace is a regression fixture for the attribution logic.

    >>> t = iter([0.0, 2.0, 5.0, 6.0])
    >>> p = WallProfiler(clock=lambda: next(t))
    >>> with p.bucket("comm"): pass
    >>> p.finalize().buckets == replay(p.events).report().buckets
    True
    """
    events = list(events)
    if not events:
        raise ValueError("empty event list")
    t0 = float(events[0][2])
    prof = WallProfiler(clock=lambda: t0)
    prof.events.clear()  # rebuilt verbatim from the input below
    prof.events.append(("init", "", t0))
    for op, name, t in events:
        if op == "init":
            pass  # t0 anchor, consumed above
        elif op == "enter":
            prof.enter(name, now=t)
        elif op == "exit":
            prof.exit(now=t)
        elif op == "final":
            prof.finalize(now=t)
        else:
            raise ValueError(f"unknown wallclock event op {op!r}")
    return prof


def save_events(prof: WallProfiler, fh: TextIO) -> None:
    json.dump({"schema": 1, "events": [list(e) for e in prof.events]}, fh, indent=2)
    fh.write("\n")


def load_events(fh: TextIO) -> list[tuple[str, str, float]]:
    doc = json.load(fh)
    return [(str(op), str(name), float(t)) for op, name, t in doc["events"]]


def format_report(report: WallclockReport, extra: Mapping[str, float] | None = None) -> str:
    """ASCII bucket table, largest first, with the exact-sum footer."""
    lines = [f"{'bucket':<14} {'seconds':>12} {'share':>8}"]
    ordered = sorted(report.buckets.items(), key=lambda kv: -kv[1])
    for name, s in ordered:
        lines.append(f"{name:<14} {s:>12.6f} {100.0 * report.fraction(name):>7.2f}%")
    total = sum(report.buckets.values())
    lines.append(f"{'total':<14} {total:>12.6f} {'100.00%':>8}")
    lines.append(f"elapsed {report.elapsed:.6f} s (buckets partition it exactly)")
    if extra:
        for k, v in extra.items():
            lines.append(f"{k}: {v:.6g}")
    return "\n".join(lines)
