"""The benchmark fleet: every ``benchmarks/bench_*.py`` as one campaign.

The repo's benches each know how to measure one figure or table and
emit one schema-validated record (``benchmarks/_harness.py``).  This
module is the layer above: a **registry** that enumerates the whole
suite and refuses benches that don't declare a smoke parameterization,
a **scenario adapter** (:class:`repro.campaign.spec.BenchSpec` +
:func:`run_bench_scenario`) that turns one bench run into one campaign
shard, and a **fleet runner** (:func:`run_fleet`, surfaced as
``python -m repro.obs fleet``) that pushes the catalog through
:func:`repro.campaign.runner.run_campaign` — so the suite inherits
content-fingerprinted dedupe, cross-run caching, crash-safe resume,
and the OS-process worker pool without any bench knowing about them.

The product is ``fleet.jsonl``: one ledger line per catalog entry —
the bench's own record plus a ``fleet`` stamp (deterministic fleet id,
smoke/full mode, shard status, wall seconds, registry tags) — every
line valid against ``benchmarks/schema.json``.  Failed shards become
schema-valid rows too (status ``failed``, synthesized record carrying
the error), so a fleet ledger is always complete: 26 catalog entries
in, 26 rows out.

Two deliberate containment rules keep concurrent workers honest:

* ``run_bench_scenario`` strips ``REPRO_BENCH_DIR`` /
  ``REPRO_BENCH_HISTORY`` from the worker's environment, because
  ``append_history``'s read-modify-replace is atomic against crashes
  but not against *concurrent writers*.  The fleet coordinator appends
  freshly-computed records to the history centrally, single-writer.
* Bench stdout (each bench prints its record) is swallowed in the
  worker; the coordinator owns all reporting.

The read side: :func:`load_fleet` for the ledger,
:func:`repro.obs.history.compare_history_multi` for the multi-metric
gate, and :func:`repro.obs.report.fleet_report` for the HTML view.
"""

from __future__ import annotations

import contextlib
import hashlib
import importlib.util
import inspect
import io
import json
import os
import sys
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from .model import NULL, Recorder
from .schemacheck import validate_value

__all__ = [
    "BENCH_ROOT_ENV",
    "FLEET_FILE",
    "SMOKE_KINDS",
    "BenchEntry",
    "FleetError",
    "FleetRun",
    "build_registry",
    "default_bench_dir",
    "fleet_id",
    "load_fleet",
    "run_bench_scenario",
    "run_fleet",
]

#: Overrides where the bench suite lives (tests point it at fixtures).
BENCH_ROOT_ENV = "REPRO_BENCH_ROOT"

#: Ledger filename written into the fleet output directory.
FLEET_FILE = "fleet.jsonl"

#: Valid ``FLEET["smoke"]`` declarations: ``"full"`` means the smoke
#: workload *is* the full workload (already CI-cheap); ``"reduced"``
#: means smoke mode cuts the problem down and must emit its record
#: under a distinct ``<name>_smoke`` name so full-mode rolling
#: baselines are never polluted with small-workload timings.
SMOKE_KINDS = ("full", "reduced")

#: Environment the worker must not see (single-writer rule above).
_SUPPRESSED_ENV = ("REPRO_BENCH_DIR", "REPRO_BENCH_HISTORY")


class FleetError(ValueError):
    """A bench suite or fleet-ledger contract violation."""


def default_bench_dir() -> str:
    """The ``benchmarks/`` directory (``REPRO_BENCH_ROOT`` overrides)."""
    env = os.environ.get(BENCH_ROOT_ENV, "").strip()
    if env:
        return env
    here = os.path.dirname(os.path.abspath(__file__))  # src/repro/obs
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "benchmarks")


def _load_bench_module(bench_dir: str, stem: str):
    """Import ``bench_<stem>.py`` under a private module name.

    ``bench_dir`` goes on ``sys.path`` first because bench modules do
    ``from _harness import run_main`` at call time.  Loaded modules are
    cached in ``sys.modules`` so registry building and shard execution
    in the same process import each file once.
    """
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    name = f"_fleet_bench_{stem}"
    if name in sys.modules:
        return sys.modules[name]
    path = os.path.join(bench_dir, f"bench_{stem}.py")
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:
        raise FleetError(f"cannot load bench module {path}")
    mod = importlib.util.module_from_spec(spec)
    sys.modules[name] = mod
    try:
        spec.loader.exec_module(mod)
    except BaseException:
        sys.modules.pop(name, None)
        raise
    return mod


def _harness(bench_dir: str):
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    import _harness  # noqa: PLC0415 — lives next to the benches

    return _harness


@dataclass(frozen=True)
class BenchEntry:
    """One registered bench: module stem, file, and FLEET metadata."""

    name: str  # module stem, e.g. "fig7_cosmology"
    path: str
    tags: tuple[str, ...]
    smoke: str  # one of SMOKE_KINDS

    @property
    def smoke_record_name(self) -> str:
        """Record name the bench emits in smoke mode."""
        return self.name if self.smoke == "full" else f"{self.name}_smoke"


def build_registry(bench_dir: str | None = None) -> dict[str, BenchEntry]:
    """Enumerate the suite; refuse benches without a smoke contract.

    Every ``bench_*.py`` must expose ``main(smoke: bool = False)`` and a
    module-level ``FLEET = {"tags": (...), "smoke": "full" | "reduced"}``.
    Any offender fails the *whole* registry with one error naming all of
    them — a fleet with silently missing benches would report green on
    partial coverage, which is worse than failing loudly.
    """
    bench_dir = bench_dir or default_bench_dir()
    if not os.path.isdir(bench_dir):
        raise FleetError(f"bench directory not found: {bench_dir}")
    entries: dict[str, BenchEntry] = {}
    problems: list[str] = []
    for filename in sorted(os.listdir(bench_dir)):
        if not (filename.startswith("bench_") and filename.endswith(".py")):
            continue
        stem = filename[len("bench_"):-len(".py")]
        try:
            mod = _load_bench_module(bench_dir, stem)
        except Exception as exc:  # noqa: BLE001 — collected, not fatal per-file
            problems.append(f"{filename}: import failed ({type(exc).__name__}: {exc})")
            continue
        main = getattr(mod, "main", None)
        if not callable(main):
            problems.append(f"{filename}: no callable main()")
            continue
        if "smoke" not in inspect.signature(main).parameters:
            problems.append(f"{filename}: main() lacks a smoke= parameter")
            continue
        meta = getattr(mod, "FLEET", None)
        if not isinstance(meta, Mapping):
            problems.append(f"{filename}: no FLEET metadata dict")
            continue
        smoke = meta.get("smoke")
        if smoke not in SMOKE_KINDS:
            problems.append(
                f"{filename}: FLEET['smoke'] must be one of {SMOKE_KINDS}, got {smoke!r}"
            )
            continue
        tags = tuple(str(t) for t in meta.get("tags", ()))
        entries[stem] = BenchEntry(
            name=stem, path=os.path.join(bench_dir, filename), tags=tags, smoke=smoke,
        )
    if problems:
        listing = "\n".join(f"  - {p}" for p in problems)
        raise FleetError(
            f"{len(problems)} bench(es) violate the fleet smoke contract "
            f"(main(smoke=...) plus FLEET metadata):\n{listing}"
        )
    if not entries:
        raise FleetError(f"no bench_*.py found under {bench_dir}")
    return entries


def run_bench_scenario(params: Mapping) -> dict:
    """Campaign entry point for :class:`~repro.campaign.spec.BenchSpec`.

    Runs one bench's ``main(smoke=...)`` in this (worker) process with
    record side channels disabled — environment-driven emit/history is
    popped for the duration, stdout is swallowed — and returns the
    bench record itself as the shard result.
    """
    bench = str(params["bench"])
    smoke = bool(params.get("smoke", True))
    mod = _load_bench_module(default_bench_dir(), bench)
    saved = {k: os.environ.pop(k) for k in _SUPPRESSED_ENV if k in os.environ}
    try:
        with contextlib.redirect_stdout(io.StringIO()):
            record = mod.main(smoke=smoke)
    finally:
        os.environ.update(saved)
    if not isinstance(record, dict):
        raise TypeError(f"bench {bench!r} main() returned {type(record).__name__}, not dict")
    return record


def fleet_id(catalog: Iterable, smoke: bool) -> str:
    """Deterministic 32-hex id of a fleet: content of its catalog.

    Same catalog + same mode -> same id, across machines and runs —
    the fleet analogue of a scenario fingerprint, and what makes the
    HTML report and golden-file tests reproducible.
    """
    from ..campaign.fingerprint import canonical_json
    from ..campaign.spec import as_spec

    h = hashlib.blake2b(digest_size=16)
    h.update(b"fleet/smoke" if smoke else b"fleet/full")
    for spec in catalog:
        h.update(canonical_json(as_spec(spec).to_dict()).encode())
        h.update(b"\n")
    return h.hexdigest()


@dataclass
class FleetRun:
    """What one :func:`run_fleet` call produced."""

    fleet_id: str
    mode: str  # "smoke" | "full"
    out_dir: str
    ledger_path: str
    rows: list[dict] = field(default_factory=list)
    campaign: "object | None" = None  # CampaignReport

    @property
    def status_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for row in self.rows:
            status = row["fleet"]["status"]
            counts[status] = counts.get(status, 0) + 1
        return counts

    @property
    def failed(self) -> list[dict]:
        return [r for r in self.rows if r["fleet"]["status"] == "failed"]

    @property
    def ok(self) -> bool:
        return not self.failed

    def to_dict(self) -> dict:
        d = {
            "fleet_id": self.fleet_id,
            "mode": self.mode,
            "out_dir": self.out_dir,
            "ledger_path": self.ledger_path,
            "benches": len(self.rows),
            "ok": self.ok,
            "status_counts": self.status_counts,
        }
        if self.campaign is not None:
            d["campaign"] = self.campaign.to_dict()
        return d


def run_fleet(
    benches: Sequence[str] | None = None,
    *,
    out_dir: str,
    smoke: bool = True,
    workers: int | None = None,
    bench_dir: str | None = None,
    observer: Recorder = NULL,
    throttle: float = 0.0,
    history: str | None = None,
) -> FleetRun:
    """Run the bench suite (or a subset) as one campaign.

    ``benches`` selects registry stems (default: every registered
    bench, sorted); unknown names fail fast.  ``out_dir`` receives the
    campaign store under ``campaign/`` — rerunning the same fleet into
    the same directory is all cache hits, and a fleet killed mid-run
    resumes from its committed shards — plus the ``fleet.jsonl``
    ledger.  ``history`` (or ``REPRO_BENCH_HISTORY``) receives one
    appended line per *freshly computed* record, written only by this
    coordinator process.
    """
    from ..campaign.runner import run_campaign
    from ..campaign.spec import BenchSpec
    from ..campaign.store import ResultStore

    bench_dir = bench_dir or default_bench_dir()
    registry = build_registry(bench_dir)
    if benches is None:
        names = sorted(registry)
    else:
        unknown = sorted(set(benches) - set(registry))
        if unknown:
            raise FleetError(
                f"unknown bench(es) {unknown}; registered: {sorted(registry)}"
            )
        names = list(benches)

    catalog = [BenchSpec(bench=name, smoke=smoke) for name in names]
    mode = "smoke" if smoke else "full"
    fid = fleet_id(catalog, smoke)
    os.makedirs(out_dir, exist_ok=True)
    campaign_dir = os.path.join(out_dir, "campaign")

    # Shard execution resolves the suite via default_bench_dir(), both
    # in-process and in pool workers (which inherit the environment at
    # fork/spawn) — so an explicit bench_dir must ride the env var.
    saved_root = os.environ.get(BENCH_ROOT_ENV)
    os.environ[BENCH_ROOT_ENV] = bench_dir
    t0 = observer.now()
    try:
        report = run_campaign(
            catalog, campaign_dir, workers=workers, observer=observer, throttle=throttle,
        )
    finally:
        if saved_root is None:
            os.environ.pop(BENCH_ROOT_ENV, None)
        else:
            os.environ[BENCH_ROOT_ENV] = saved_root

    store = ResultStore(campaign_dir)
    results = store.load_results()
    shard_rows = store.load_shards()  # catalog order, one row per entry
    harness = _harness(bench_dir)
    schema = harness.load_schema()

    rows: list[dict] = []
    for name, shard in zip(names, shard_rows):
        entry = registry[name]
        fp = shard["fingerprint"]
        status = shard["status"]
        error = shard.get("error") or report.errors.get(fp, "")
        if fp in results:
            record = dict(results[fp]["result"])
        else:
            # Failed shard (or dedupe of one): synthesize a schema-valid
            # row so the ledger always covers the full catalog.
            record = harness.bench_record(
                name,
                params={"smoke": smoke},
                seconds=float(shard.get("seconds", 0.0)),
                notes=f"FAILED: {error}" if error else "FAILED: no result",
            )
        stamp = {
            "id": fid,
            "mode": mode,
            "bench": name,
            "status": status,
            "shard_seconds": float(shard.get("seconds", 0.0)),
            "tags": list(entry.tags),
        }
        if error:
            stamp["error"] = str(error)
        record["fleet"] = stamp
        errors = validate_value(record, schema)
        if errors:
            raise FleetError(
                f"fleet row for bench {name!r} violates schema.json: {errors}"
            )
        rows.append(record)

    ledger_path = os.path.join(out_dir, FLEET_FILE)
    tmp = f"{ledger_path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w") as fh:
            for row in rows:
                fh.write(json.dumps(row, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, ledger_path)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)

    # Single-writer history append: only freshly computed records join
    # the longitudinal baseline (cache/resume hits are old news, failed
    # rows would poison rolling medians with near-zero timings).
    history = history or os.environ.get(harness.HISTORY_ENV)
    if history:
        for row in rows:
            if row["fleet"]["status"] == "computed":
                harness.append_history(row, history)

    observer.count("fleet.benches", len(rows))
    observer.count("fleet.failed", len([r for r in rows if r["fleet"]["status"] == "failed"]))
    observer.add_span("fleet", t0, observer.now(), cat="fleet",
                      args={"id": fid, "mode": mode, "benches": len(rows)})
    return FleetRun(
        fleet_id=fid, mode=mode, out_dir=out_dir, ledger_path=ledger_path,
        rows=rows, campaign=report,
    )


def load_fleet(path: str) -> list[dict]:
    """Read a ``fleet.jsonl`` ledger (rows in catalog order).

    Forgiving like :func:`repro.obs.history.load_history` — blank or
    corrupt lines are skipped; rows without a ``fleet`` stamp are not
    fleet rows and are skipped too.  Strict validation is the
    ``python -m repro.obs validate`` verb's job.
    """
    rows: list[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(row, dict) and isinstance(row.get("fleet"), dict):
                rows.append(row)
    return rows
