"""Regularized Biot-Savart evaluation: direct and tree-accelerated.

Section 4.1: *"Using a generic design, we have implemented a variety
of modules to solve problems in galactic dynamics and cosmology as
well as fluid-dynamical problems using smoothed particle
hydrodynamics, a vortex particle method and boundary integral
methods."*  This module is the vortex-particle instantiation of that
generic design: the *same* hashed oct-tree, MAC, and group-walk
machinery as gravity, evaluating

.. math::

    u(x) = -\\frac{1}{4\\pi} \\sum_p K_\\sigma(|x - x_p|)\\,
           (x - x_p) \\times \\alpha_p

with the Winckelmans-Leonard high-order algebraic smoothing

.. math::

    K_\\sigma(r) = \\frac{r^2 + \\tfrac{5}{2}\\sigma^2}
                       {(r^2 + \\sigma^2)^{5/2}}

(the kernel of reference [9] of the paper, whose authors include
Winckelmans and Warren).  Far-field cells are approximated by their
total circulation vector at the circulation-weighted centroid — the
vector analogue of the gravity monopole.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.mac import OpeningAngleMAC
from ..core.traversal import _collect_lists
from ..core.tree import Tree, build_tree

__all__ = ["VortexSystem", "direct_velocities", "tree_velocities", "wl_kernel"]

_INV_4PI = 1.0 / (4.0 * np.pi)


def wl_kernel(r2: np.ndarray, sigma: float) -> np.ndarray:
    """Winckelmans-Leonard K_sigma as a function of r^2."""
    if sigma < 0:
        raise ValueError("core radius must be non-negative")
    s2 = sigma * sigma
    return (r2 + 2.5 * s2) / np.power(r2 + s2, 2.5)


def _cross(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Cross product along the last axis (explicit, fast for (N,3))."""
    out = np.empty(np.broadcast(a, b).shape)
    out[..., 0] = a[..., 1] * b[..., 2] - a[..., 2] * b[..., 1]
    out[..., 1] = a[..., 2] * b[..., 0] - a[..., 0] * b[..., 2]
    out[..., 2] = a[..., 0] * b[..., 1] - a[..., 1] * b[..., 0]
    return out


def direct_velocities(
    positions: np.ndarray,
    alphas: np.ndarray,
    targets: np.ndarray | None = None,
    *,
    sigma: float = 0.05,
    block: int = 512,
) -> np.ndarray:
    """O(N M) regularized Biot-Savart sum (the reference evaluation)."""
    positions = np.ascontiguousarray(positions, dtype=np.float64)
    alphas = np.ascontiguousarray(alphas, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 3 or alphas.shape != positions.shape:
        raise ValueError("positions and alphas must both be (N, 3)")
    targets = positions if targets is None else np.ascontiguousarray(targets, dtype=np.float64)
    out = np.zeros((targets.shape[0], 3))
    for lo in range(0, targets.shape[0], block):
        hi = min(lo + block, targets.shape[0])
        dr = targets[lo:hi, None, :] - positions[None, :, :]
        r2 = np.einsum("ijk,ijk->ij", dr, dr)
        k = wl_kernel(r2, sigma)
        out[lo:hi] = -_INV_4PI * np.einsum("ij,ijk->ik", k, _cross(dr, alphas[None, :, :]))
    return out


@dataclass
class VortexSystem:
    """A set of vortex particles with tree-accelerated induction.

    ``alphas`` are the particle circulation vectors (vorticity times
    volume).  The tree is built with ``|alpha|`` as the MAC weight, and
    per-cell circulation vectors come from prefix sums over the
    Morton-sorted particles, exactly like the gravity multipoles.
    """

    positions: np.ndarray
    alphas: np.ndarray
    sigma: float = 0.05

    def __post_init__(self) -> None:
        self.positions = np.ascontiguousarray(self.positions, dtype=np.float64)
        self.alphas = np.ascontiguousarray(self.alphas, dtype=np.float64)
        if self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ValueError("positions must be (N, 3)")
        if self.alphas.shape != self.positions.shape:
            raise ValueError("alphas must match positions")
        if self.sigma <= 0:
            raise ValueError("core radius must be positive")

    @property
    def n_particles(self) -> int:
        return self.positions.shape[0]

    @property
    def total_circulation(self) -> np.ndarray:
        """Sum of alpha — invariant under induced motion (Kelvin)."""
        return self.alphas.sum(axis=0)

    @property
    def linear_impulse(self) -> np.ndarray:
        """(1/2) sum x cross alpha — the fluid impulse invariant."""
        return 0.5 * _cross(self.positions, self.alphas).sum(axis=0)

    def velocities(self, *, theta: float = 0.45, bucket_size: int = 32) -> np.ndarray:
        """Induced velocity at every particle, tree-accelerated."""
        return tree_velocities(
            self.positions, self.alphas, sigma=self.sigma, theta=theta, bucket_size=bucket_size
        )

    def step(self, dt: float, *, theta: float = 0.45) -> None:
        """Advance particles with midpoint (RK2) convection.

        Vortex stretching is omitted (transport-only dynamics); total
        circulation is therefore exactly conserved, and rings translate
        self-similarly — the regime the tests validate.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        u1 = self.velocities(theta=theta)
        mid = VortexSystem(self.positions + 0.5 * dt * u1, self.alphas, self.sigma)
        u2 = mid.velocities(theta=theta)
        self.positions = self.positions + dt * u2


def _cell_circulations(tree: Tree, alphas_sorted: np.ndarray) -> np.ndarray:
    """Per-cell circulation vectors via prefix sums (contiguous runs)."""
    n = tree.n_particles
    cum = np.zeros((n + 1, 3))
    np.cumsum(alphas_sorted, axis=0, out=cum[1:])
    return cum[tree.start + tree.count] - cum[tree.start]


def tree_velocities(
    positions: np.ndarray,
    alphas: np.ndarray,
    *,
    sigma: float = 0.05,
    theta: float = 0.45,
    bucket_size: int = 32,
) -> np.ndarray:
    """Tree-accelerated induced velocities at the particles.

    Near field (opened leaves plus the group itself) uses the exact
    regularized kernel; accepted cells contribute their circulation
    monopole via the far-field (unsmoothed) kernel.
    """
    positions = np.ascontiguousarray(positions, dtype=np.float64)
    alphas = np.ascontiguousarray(alphas, dtype=np.float64)
    if alphas.shape != positions.shape:
        raise ValueError("alphas must match positions")
    weights = np.linalg.norm(alphas, axis=1)
    # Massless particles still occupy tree slots; tiny floor keeps the
    # |alpha|-weighted centroids defined.
    weights = np.maximum(weights, 1e-300)
    tree = build_tree(positions, weights, bucket_size=bucket_size)
    alphas_sorted = alphas[tree.order]
    cell_alpha = _cell_circulations(tree, alphas_sorted)
    mac = OpeningAngleMAC(theta)

    out = np.zeros((tree.n_particles, 3))
    for group in tree.leaf_ids:
        sl = tree.particles_of(group)
        sinks = tree.positions[sl]
        cells, parts = _collect_lists(tree, group, mac)
        if cells.size:
            dr = sinks[:, None, :] - tree.com[cells][None, :, :]
            r2 = np.einsum("ijk,ijk->ij", dr, dr)
            k = 1.0 / np.power(r2, 1.5)  # far field: unsmoothed
            out[sl] += -_INV_4PI * np.einsum(
                "ij,ijk->ik", k, _cross(dr, cell_alpha[cells][None, :, :])
            )
        own = np.arange(sl.start, sl.stop, dtype=np.int64)
        all_parts = np.concatenate([parts, own]) if parts.size else own
        dr = sinks[:, None, :] - tree.positions[all_parts][None, :, :]
        r2 = np.einsum("ijk,ijk->ij", dr, dr)
        k = wl_kernel(r2, sigma)
        out[sl] += -_INV_4PI * np.einsum(
            "ij,ijk->ik", k, _cross(dr, alphas_sorted[all_parts][None, :, :])
        )
    result = np.empty_like(out)
    result[tree.order] = out
    return result
