"""Vortex particle method on the hashed oct-tree (Section 4.1).

One of the paper's "generic design" payoffs: the same tree, MAC, and
interaction-list machinery as gravity, evaluating regularized
Biot-Savart induction for vortex particles (the method of the paper's
reference [9], Ploumans, Winckelmans, Salmon, Leonard & Warren 2002).
"""

from .biot_savart import VortexSystem, direct_velocities, tree_velocities, wl_kernel
from .ring import ring_centroid, ring_radius, ring_speed_kelvin, vortex_ring

__all__ = [
    "VortexSystem",
    "direct_velocities",
    "tree_velocities",
    "wl_kernel",
    "vortex_ring",
    "ring_speed_kelvin",
    "ring_centroid",
    "ring_radius",
]
