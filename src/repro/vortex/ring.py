"""Vortex-ring setups and diagnostics.

The canonical vortex-method validation: a thin circular vortex ring of
circulation Gamma, radius R, and core radius a self-propagates along
its axis at Kelvin's speed

.. math::

    U = \\frac{\\Gamma}{4\\pi R}\\left(\\ln\\frac{8R}{a} -
        \\frac{1}{4}\\right)

(for a thin uniform-vorticity core).  :func:`vortex_ring` discretizes
the ring as particles; :func:`ring_speed_kelvin` is the analytic
target the tests and the bluff-body-style example compare against.
"""

from __future__ import annotations

import numpy as np

from .biot_savart import VortexSystem

__all__ = ["vortex_ring", "ring_speed_kelvin", "ring_centroid", "ring_radius"]


def vortex_ring(
    n_particles: int = 64,
    *,
    gamma: float = 1.0,
    radius: float = 1.0,
    center_z: float = 0.0,
    sigma: float = 0.1,
) -> VortexSystem:
    """A circular vortex ring in the z = ``center_z`` plane, axis +z.

    Each particle carries circulation ``Gamma * ds`` along the local
    tangent; positive ``gamma`` propels the ring toward +z.
    """
    if n_particles < 8:
        raise ValueError("need at least 8 particles to resolve a ring")
    if radius <= 0 or sigma <= 0:
        raise ValueError("radius and sigma must be positive")
    phi = 2.0 * np.pi * np.arange(n_particles) / n_particles
    pos = np.column_stack([radius * np.cos(phi), radius * np.sin(phi), np.full(n_particles, center_z)])
    ds = 2.0 * np.pi * radius / n_particles
    tangent = np.column_stack([-np.sin(phi), np.cos(phi), np.zeros(n_particles)])
    alphas = gamma * ds * tangent
    return VortexSystem(pos, alphas, sigma=sigma)


def ring_speed_kelvin(gamma: float, radius: float, core: float) -> float:
    """Kelvin's thin-ring self-induced translation speed."""
    if radius <= 0 or core <= 0 or core >= radius:
        raise ValueError("need 0 < core < radius")
    return gamma / (4.0 * np.pi * radius) * (np.log(8.0 * radius / core) - 0.25)


def ring_centroid(system: VortexSystem) -> np.ndarray:
    """|alpha|-weighted centroid (tracks the ring's position)."""
    w = np.linalg.norm(system.alphas, axis=1)
    return np.average(system.positions, axis=0, weights=w)


def ring_radius(system: VortexSystem) -> float:
    """Mean cylindrical radius about the centroid axis."""
    c = ring_centroid(system)
    dx = system.positions[:, 0] - c[0]
    dy = system.positions[:, 1] - c[1]
    return float(np.mean(np.hypot(dx, dy)))
