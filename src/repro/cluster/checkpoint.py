"""Checkpoint/restart economics for long cluster runs.

Section 4.4's production runs take "roughly 4 months" at 32 processors
and Section 2.1 documents real failure rates; surviving such runs
requires checkpointing, and the checkpoint cadence is a genuine design
decision on a machine with the paper's disk bandwidth.  This module
provides the standard analysis:

* :func:`young_interval` — Young's optimal checkpoint interval
  ``sqrt(2 * dump_cost * MTBF)``;
* :func:`expected_runtime` — expected completion time of a run with
  exponential failures, checkpoint dumps, and restart/rework costs;
* :func:`job_mtbf_hours` — system MTBF seen by a job on ``n`` of the
  cluster's nodes, derived from the Section 2.1 component rates;
* :class:`CheckpointPlan` — everything assembled for a given job,
  including the dump cost implied by the node's local-disk bandwidth
  (the paper's parallel-local-I/O strategy makes dumps cheap, which is
  why a 24-hour 250-processor run was feasible in one piece).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..machine.node import NodeSpec, SPACE_SIMULATOR_NODE
from .reliability import SS_COMPONENTS, ComponentPopulation

__all__ = [
    "job_mtbf_hours",
    "young_interval",
    "young_interval_seconds",
    "expected_runtime",
    "CheckpointPlan",
    "run_campaign_scenario",
]


def run_campaign_scenario(params) -> dict:
    """Campaign entry point: one cluster-configuration scenario.

    ``params`` are the fields of
    :class:`repro.campaign.spec.ClusterSpec`: job width, useful work,
    per-node checkpoint state, and restart cost.  Evaluates the
    Section 2.1 checkpoint economics (:class:`CheckpointPlan`) for that
    configuration and returns JSON scalars only — the campaign scenario
    contract.  These scenarios are pure closed-form arithmetic, so a
    campaign can sweep thousands of cluster configurations per second;
    they are also the fast shard type the campaign test suite leans on.
    """
    plan = CheckpointPlan(
        n_nodes=int(params.get("n_nodes", 294)),
        work_hours=float(params.get("work_hours", 24.0)),
        state_bytes_per_node=float(params.get("state_gb_per_node", 6.0)) * 1e9,
        restart_hours=float(params.get("restart_hours", 0.5)),
    )
    return {
        "n_nodes": plan.n_nodes,
        "mtbf_hours": plan.mtbf_hours,
        "dump_hours": plan.dump_hours,
        "optimal_interval_hours": plan.optimal_interval_hours,
        "expected_wall_hours": plan.expected_wall_hours,
        "overhead_fraction": plan.overhead_fraction,
        "expected_failures": plan.expected_failures,
    }


def job_mtbf_hours(
    n_nodes: int, components: tuple[ComponentPopulation, ...] = SS_COMPONENTS
) -> float:
    """MTBF experienced by a job spanning ``n_nodes`` nodes.

    Sums the per-node failure rates of every component class (scaled
    by count-per-node on the 294-node reference cluster) and inverts.
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    per_node_rate = 0.0
    for comp in components:
        per_unit = comp.failures_per_hour
        units_per_node = comp.count / 294.0
        per_node_rate += per_unit * units_per_node
    if per_node_rate == 0:
        return math.inf
    return 1.0 / (per_node_rate * n_nodes)


def young_interval(dump_hours: float, mtbf_hours: float) -> float:
    """Young's first-order optimal checkpoint interval."""
    if dump_hours <= 0 or mtbf_hours <= 0:
        raise ValueError("dump cost and MTBF must be positive")
    return math.sqrt(2.0 * dump_hours * mtbf_hours)


def young_interval_seconds(
    n_nodes: int,
    state_bytes_per_node: float,
    node: NodeSpec = SPACE_SIMULATOR_NODE,
) -> float:
    """Young's interval, in virtual seconds, for a live SimMPI job.

    Convenience bridge for :mod:`repro.resilience`: the dump cost comes
    from the node's local-disk write bandwidth (the paper's parallel
    local-I/O strategy) and the MTBF from the §2.1 component rates.
    """
    if state_bytes_per_node <= 0:
        raise ValueError("state_bytes_per_node must be positive")
    dump_hours = node.disk.write_time_s(state_bytes_per_node / 1e6) / 3600.0
    return young_interval(dump_hours, job_mtbf_hours(n_nodes)) * 3600.0


def expected_runtime(
    work_hours: float,
    dump_hours: float,
    mtbf_hours: float,
    interval_hours: float | None = None,
    restart_hours: float = 0.5,
) -> float:
    """Expected wall time of a checkpointed run under random failures.

    The standard first-order model: each interval of useful work ``tau``
    costs ``tau + dump``; a failure (rate ``1/M``) loses on average half
    an interval plus the restart.  Expected time
    ``= work * (1 + dump/tau) * (1 + (tau/2 + restart)/M)``.
    """
    if work_hours <= 0:
        raise ValueError("work_hours must be positive")
    if restart_hours < 0:
        raise ValueError("restart_hours must be non-negative")
    tau = young_interval(dump_hours, mtbf_hours) if interval_hours is None else interval_hours
    if tau <= 0:
        raise ValueError("checkpoint interval must be positive")
    overhead = 1.0 + dump_hours / tau
    failure_tax = 1.0 + (tau / 2.0 + restart_hours) / mtbf_hours
    return work_hours * overhead * failure_tax


@dataclass(frozen=True)
class CheckpointPlan:
    """Checkpoint strategy for a specific job on the cluster."""

    n_nodes: int
    work_hours: float
    state_bytes_per_node: float
    node: NodeSpec = SPACE_SIMULATOR_NODE
    restart_hours: float = 0.5

    def __post_init__(self) -> None:
        if self.n_nodes < 1 or self.work_hours <= 0 or self.state_bytes_per_node <= 0:
            raise ValueError("invalid checkpoint plan")

    @property
    def dump_hours(self) -> float:
        """Checkpoint cost with the paper's parallel-local-disk I/O."""
        seconds = self.node.disk.write_time_s(self.state_bytes_per_node / 1e6)
        return seconds / 3600.0

    @property
    def mtbf_hours(self) -> float:
        return job_mtbf_hours(self.n_nodes)

    @property
    def optimal_interval_hours(self) -> float:
        return young_interval(self.dump_hours, self.mtbf_hours)

    @property
    def expected_wall_hours(self) -> float:
        return expected_runtime(
            self.work_hours, self.dump_hours, self.mtbf_hours,
            self.optimal_interval_hours, self.restart_hours,
        )

    @property
    def overhead_fraction(self) -> float:
        """Fractional time lost to dumps, rework, and restarts."""
        return self.expected_wall_hours / self.work_hours - 1.0

    @property
    def expected_failures(self) -> float:
        return self.expected_wall_hours / self.mtbf_hours
