"""TOP500 ranking context and the price/performance milestone (Fig 3).

Figure 3's claims: 665.1 Gflop/s ranked #85 on the 20th list (November
2002); the improved 757.1 Gflop/s ranked #88 on the 21st list (June
2003) and *would have* ranked #69 on the 20th; and the machine is "the
first example of a machine in the TOP500 with price/performance of
better than 1 dollar per Mflop/s" — 63.9 cents.

A sparse anchor table of each list (entries the community record
preserves, including the thresholds around the Space Simulator's
positions) supports rank interpolation, and the price/performance
arithmetic is computed from the Table 1 BOM.
"""

from __future__ import annotations

from dataclasses import dataclass

from .bom import SPACE_SIMULATOR_BOM

__all__ = [
    "Top500Anchor",
    "TOP500_NOV2002",
    "TOP500_JUN2003",
    "estimate_rank",
    "price_per_mflops_cents",
    "SS_LINPACK_NOV2002",
    "SS_LINPACK_APR2003",
]

SS_LINPACK_NOV2002 = 665.1
SS_LINPACK_APR2003 = 757.1


@dataclass(frozen=True)
class Top500Anchor:
    """One (rank, Rmax) point of a TOP500 list."""

    rank: int
    gflops: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.rank < 1 or self.gflops <= 0:
            raise ValueError("invalid anchor")


#: 20th list (November 2002), sparse anchors.  The Space Simulator's
#: own position pins rank 85; the #69 threshold is fixed by the paper's
#: "would have ranked #69" statement about 757.1 Gflop/s.
TOP500_NOV2002: tuple[Top500Anchor, ...] = (
    Top500Anchor(1, 35_860.0, "Earth Simulator"),
    Top500Anchor(2, 7_727.0, "ASCI Q (1st segment)"),
    Top500Anchor(5, 5_694.0, "ASCI White"),
    Top500Anchor(10, 3_241.0),
    Top500Anchor(25, 1_603.0),
    Top500Anchor(50, 996.9),
    Top500Anchor(69, 755.0),
    Top500Anchor(85, 665.1, "Space Simulator"),
    Top500Anchor(100, 590.0),
    Top500Anchor(250, 322.0),
    Top500Anchor(500, 195.8),
)

#: 21st list (June 2003), sparse anchors; SS at #88 with 757.1.
TOP500_JUN2003: tuple[Top500Anchor, ...] = (
    Top500Anchor(1, 35_860.0, "Earth Simulator"),
    Top500Anchor(2, 13_880.0, "ASCI Q"),
    Top500Anchor(10, 3_337.0),
    Top500Anchor(25, 2_004.0),
    Top500Anchor(50, 1_166.0),
    Top500Anchor(88, 757.1, "Space Simulator"),
    Top500Anchor(100, 713.3),
    Top500Anchor(250, 403.6),
    Top500Anchor(500, 245.1),
)


def estimate_rank(gflops: float, anchors: tuple[Top500Anchor, ...] = TOP500_NOV2002) -> int:
    """Interpolated list rank for a Linpack result.

    Log-linear interpolation between the bracketing anchors (TOP500
    Rmax versus rank is close to a power law through the mid-list).
    Results above the #1 anchor rank 1; below the #500 anchor, past
    the end of the list (501).
    """
    import math

    if gflops <= 0:
        raise ValueError("gflops must be positive")
    ordered = sorted(anchors, key=lambda a: a.rank)
    if gflops >= ordered[0].gflops:
        return 1
    if gflops < ordered[-1].gflops:
        return ordered[-1].rank + 1
    for hi, lo in zip(ordered, ordered[1:]):
        if lo.gflops <= gflops <= hi.gflops:
            if hi.gflops == lo.gflops:
                return lo.rank
            frac = (math.log(hi.gflops) - math.log(gflops)) / (
                math.log(hi.gflops) - math.log(lo.gflops)
            )
            return round(hi.rank + frac * (lo.rank - hi.rank))
    raise AssertionError("unreachable")


def price_per_mflops_cents(
    gflops: float = SS_LINPACK_APR2003, cost: float | None = None
) -> float:
    """Cents per Linpack Mflop/s (the paper's 63.9 headline)."""
    if gflops <= 0:
        raise ValueError("gflops must be positive")
    cost = SPACE_SIMULATOR_BOM.total_cost if cost is None else cost
    return 100.0 * cost / (gflops * 1000.0)
