"""Power budget model (Section 2): the 35 kW cooling constraint.

"We estimated the amount of cooling capacity available would limit the
cluster to about 35 kW of power dissipation."  The cluster also tripped
15-amp per-strip breakers until the power distribution was rebalanced
with a more conservative per-node figure — both constraints are
modeled here.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PowerBudget", "SPACE_SIMULATOR_POWER"]


@dataclass(frozen=True)
class PowerBudget:
    """Cluster electrical/thermal envelope."""

    n_nodes: int
    node_watts: float  # sustained per-node draw under load
    switch_watts: float
    cooling_limit_watts: float
    strip_amps: float = 15.0
    strip_volts: float = 120.0
    breaker_derate: float = 0.8  # continuous-load code derating

    def __post_init__(self) -> None:
        if min(self.n_nodes, self.node_watts, self.cooling_limit_watts) <= 0:
            raise ValueError("invalid power budget")
        if not 0 < self.breaker_derate <= 1:
            raise ValueError("breaker_derate must be in (0, 1]")

    @property
    def total_watts(self) -> float:
        return self.n_nodes * self.node_watts + self.switch_watts

    @property
    def within_cooling_limit(self) -> bool:
        return self.total_watts <= self.cooling_limit_watts

    @property
    def cooling_headroom_watts(self) -> float:
        return self.cooling_limit_watts - self.total_watts

    def nodes_per_strip(self) -> int:
        """Max nodes on one 15 A strip at the derated continuous limit.

        The paper's breaker trips correspond to loading strips against
        the full 15 A; the rebalancing used "a slightly more
        conservative maximum power consumption figure" — the derate.
        """
        usable_watts = self.strip_amps * self.strip_volts * self.breaker_derate
        return int(usable_watts // self.node_watts)

    def strips_needed(self) -> int:
        per = self.nodes_per_strip()
        if per == 0:
            raise ValueError("a single node exceeds one strip's capacity")
        return -(-self.n_nodes // per)  # ceil

    def max_nodes_under_cooling(self) -> int:
        return int((self.cooling_limit_watts - self.switch_watts) // self.node_watts)


#: ~110 W/node sustained (P4 2.53 + disk + NIC in the XPC chassis),
#: two chassis switches at ~1.5 kW total, against the 35 kW room.
SPACE_SIMULATOR_POWER = PowerBudget(
    n_nodes=294,
    node_watts=110.0,
    switch_watts=1500.0,
    cooling_limit_watts=35_000.0,
)
