"""Moore's-law price/performance analysis (Section 5).

Six years separate Loki (September 1996) and the Space Simulator
(September 2002): four 18-month doublings, a factor of 16.  The paper
measures the clusters against that yardstick:

* disk went from $111/GB to ~$1/GB — a factor ~7 *beyond* Moore;
* memory went from $7.35/MB to 23 cents/MB — ~2x beyond Moore;
* NPB class B 16-processor throughput improved 12.6x (BT), 10.0x (SP),
  15.5x (LU), 15.5x (MG) per machine, at half the per-processor cost —
  so price/performance beat Moore by 25% (BT) up to ~2x (LU, MG);
* the N-body code improved 140x machine-to-machine against a predicted
  150x (price ratio 9.4 x 16) — squarely on the Moore line.

All of those derivations are computed here from the BOMs and the
printed performance figures, not hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass

from .bom import BillOfMaterials, LOKI_BOM, SPACE_SIMULATOR_BOM

__all__ = [
    "moore_factor",
    "disk_dollars_per_gb",
    "ram_dollars_per_mb",
    "LOKI_NPB_CLASS_B_16P",
    "SS_NPB_CLASS_B_16P",
    "npb_improvement_ratios",
    "npb_price_performance_vs_moore",
    "NBodyComparison",
    "NBODY_LOKI_VS_SS",
]

YEARS_LOKI_TO_SS = 6.0


def moore_factor(years: float, doubling_months: float = 18.0) -> float:
    """Performance factor Moore's law predicts over ``years``."""
    if doubling_months <= 0:
        raise ValueError("doubling_months must be positive")
    return 2.0 ** (years * 12.0 / doubling_months)


def _find_item(bom: BillOfMaterials, needle: str):
    for item in bom.items:
        if needle.lower() in item.description.lower():
            return item
    raise ValueError(f"no item matching {needle!r} in {bom.name}")


def disk_dollars_per_gb(bom: BillOfMaterials) -> float:
    """$/GB of the cluster's disk line item."""
    if bom is LOKI_BOM:
        item = _find_item(bom, "Fireball")
        gb_per_drive = 3.24
    else:
        item = _find_item(bom, "Maxtor")
        gb_per_drive = 80.0
    return item.total / (item.quantity * gb_per_drive)


def ram_dollars_per_mb(bom: BillOfMaterials) -> float:
    """$/MB of the cluster's memory line item."""
    if bom is LOKI_BOM:
        item = _find_item(bom, "SIMMS")
        total_mb = bom.n_nodes * 128.0
    else:
        item = _find_item(bom, "SDRAM")
        total_mb = bom.n_nodes * 1024.0
    return item.total / total_mb


#: Section 5: 16-processor NPB class B Mflops.
LOKI_NPB_CLASS_B_16P = {"BT": 355.0, "SP": 255.0, "LU": 428.0, "MG": 296.0}
SS_NPB_CLASS_B_16P = {"BT": 4480.0, "SP": 2560.0, "LU": 6640.0, "MG": 4592.0}


def npb_improvement_ratios() -> dict[str, float]:
    """Machine-to-machine NPB class B ratios (12.6 / 10.0 / 15.5 / 15.5)."""
    return {b: SS_NPB_CLASS_B_16P[b] / LOKI_NPB_CLASS_B_16P[b] for b in LOKI_NPB_CLASS_B_16P}


def npb_price_performance_vs_moore(
    years: float = YEARS_LOKI_TO_SS, processor_cost_ratio: float = 0.5
) -> dict[str, float]:
    """Price/performance improvement relative to the Moore prediction.

    ``processor_cost_ratio`` is the SS-processor to Loki-node cost
    ratio ("each SS processor cost only half as much as the Loki
    nodes").  Values > 1 mean the clusters beat Moore's law.
    """
    if processor_cost_ratio <= 0:
        raise ValueError("processor_cost_ratio must be positive")
    moore = moore_factor(years)
    return {
        b: ratio / processor_cost_ratio / moore
        for b, ratio in npb_improvement_ratios().items()
    }


@dataclass(frozen=True)
class NBodyComparison:
    """The Section 5 treecode comparison."""

    loki_gflops: float
    ss_gflops: float
    loki_cost: float
    ss_cost: float

    @property
    def performance_ratio(self) -> float:
        return self.ss_gflops / self.loki_gflops

    @property
    def price_ratio(self) -> float:
        return self.ss_cost / self.loki_cost

    def predicted_ratio(self, years: float = YEARS_LOKI_TO_SS) -> float:
        """Moore-predicted performance ratio given the price ratio."""
        return self.price_ratio * moore_factor(years)

    def vs_moore(self, years: float = YEARS_LOKI_TO_SS) -> float:
        """Measured over predicted: ~0.93 (the paper's 140 vs 150)."""
        return self.performance_ratio / self.predicted_ratio(years)


NBODY_LOKI_VS_SS = NBodyComparison(
    loki_gflops=1.28,
    ss_gflops=180.0,
    loki_cost=LOKI_BOM.total_cost,
    ss_cost=SPACE_SIMULATOR_BOM.total_cost,
)
