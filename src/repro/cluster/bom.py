"""Bills of materials: the Space Simulator (Table 1) and Loki (Table 7).

Every line item as printed in the paper, with the derived quantities
the text quotes: $1646 per node average ($728 of it network), 5.06
Gflop/s peak per node, $483,855 total; Loki's $3211 per node at 200
Mflop/s peak.  The BOM layer feeds the price/performance analyses
(TOP500 ranking, SPECfp $/unit, the Section 5 Moore's-law comparison).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LineItem", "BillOfMaterials", "SPACE_SIMULATOR_BOM", "LOKI_BOM"]


@dataclass(frozen=True)
class LineItem:
    """One row of a procurement table."""

    quantity: int
    unit_price: float | None  # None when the paper prints only a total
    description: str
    total: float
    category: str  # node | network | infrastructure

    def __post_init__(self) -> None:
        if self.quantity < 0 or self.total < 0:
            raise ValueError("negative quantities/prices are not a thing")
        if self.unit_price is not None and abs(self.quantity * self.unit_price - self.total) > 1.0:
            raise ValueError(
                f"{self.description}: qty x unit != total "
                f"({self.quantity} x {self.unit_price} != {self.total})"
            )


@dataclass(frozen=True)
class BillOfMaterials:
    """A complete cluster procurement."""

    name: str
    date: str
    items: tuple[LineItem, ...]
    n_nodes: int
    peak_mflops_per_node: float

    def __post_init__(self) -> None:
        if self.n_nodes < 1 or self.peak_mflops_per_node <= 0:
            raise ValueError("invalid BOM header")

    @property
    def total_cost(self) -> float:
        return sum(item.total for item in self.items)

    @property
    def cost_per_node(self) -> float:
        return self.total_cost / self.n_nodes

    @property
    def network_cost(self) -> float:
        return sum(i.total for i in self.items if i.category == "network")

    @property
    def network_cost_per_node(self) -> float:
        return self.network_cost / self.n_nodes

    @property
    def network_fraction(self) -> float:
        return self.network_cost / self.total_cost

    @property
    def peak_gflops(self) -> float:
        return self.n_nodes * self.peak_mflops_per_node / 1000.0

    def dollars_per_peak_mflops(self) -> float:
        return self.total_cost / (self.peak_gflops * 1000.0)

    def dollars_per_measured_mflops(self, measured_gflops: float) -> float:
        if measured_gflops <= 0:
            raise ValueError("measured performance must be positive")
        return self.total_cost / (measured_gflops * 1000.0)

    def category_totals(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for item in self.items:
            out[item.category] = out.get(item.category, 0.0) + item.total
        return out


#: Table 1 as printed (September 2002 prices).
SPACE_SIMULATOR_BOM = BillOfMaterials(
    name="Space Simulator",
    date="2002-09",
    n_nodes=294,
    peak_mflops_per_node=5060.0,
    items=(
        LineItem(294, 280.0, "Shuttle SS51G mini system (bare)", 82_320.0, "node"),
        LineItem(294, 254.0, "Intel P4/2.53GHz, 533MHz FSB, 512k cache", 74_676.0, "node"),
        LineItem(588, 118.0, "512Mb DDR333 SDRAM (1024Mb per node)", 69_384.0, "node"),
        LineItem(294, 95.0, "3com 3c996B-T Gigabit Ethernet PCI card", 27_930.0, "network"),
        LineItem(294, 83.0, "Maxtor 4K080H4 80Gb 5400rpm Hard Disk", 24_402.0, "node"),
        LineItem(294, 35.0, "Assembly Labor/Extended Warranty", 10_290.0, "node"),
        LineItem(1, None, "Cat6 Ethernet cables", 4_000.0, "network"),
        LineItem(1, None, "Wire shelving/switch rack", 3_300.0, "infrastructure"),
        LineItem(1, None, "Power strips", 1_378.0, "infrastructure"),
        LineItem(1, None, "Foundry FastIron 1500+800, 304 Gigabit ports", 186_175.0, "network"),
    ),
)

#: Table 7 as printed (September 1996 prices).
LOKI_BOM = BillOfMaterials(
    name="Loki",
    date="1996-09",
    n_nodes=16,
    peak_mflops_per_node=200.0,
    items=(
        LineItem(16, 595.0, "Intel Pentium Pro 200 Mhz CPU/256k cache", 9_520.0, "node"),
        LineItem(16, 15.0, "Heat Sink and Fan", 240.0, "node"),
        LineItem(16, 295.0, "Intel VS440FX (Venus) motherboard", 4_720.0, "node"),
        LineItem(64, 235.0, "8x36 60ns parity FPM SIMMS (128 Mb per node)", 15_040.0, "node"),
        LineItem(16, 359.0, "Quantum Fireball 3240 Mbyte IDE Hard Drive", 5_744.0, "node"),
        LineItem(16, 85.0, "D-Link DFE-500TX 100 Mb Fast Ethernet PCI Card", 1_360.0, "network"),
        LineItem(16, 129.0, "SMC EtherPower 10/100 Fast Ethernet PCI Card", 2_064.0, "network"),
        LineItem(16, 59.0, "S3 Trio-64 1Mb PCI Video Card", 944.0, "node"),
        LineItem(16, 119.0, "ATX Case", 1_904.0, "node"),
        LineItem(2, 4794.0, "3Com SuperStack II Switch 3000, 8-port Fast Ethernet", 9_588.0, "network"),
        LineItem(1, None, "Ethernet cables", 255.0, "network"),
    ),
)
