"""Component reliability model and failure-injection simulation (§2.1).

The paper reports two failure populations for the 294-node cluster:

* **install-time defects** (dead on arrival or failing during the
  initial Linpack burn-in): 3 power supplies, 6 disk drives,
  4 motherboards, 6 DRAM sticks, 1 ethernet card;
* **nine-month service failures**: 2 power supplies, 16 disk drives,
  1 motherboard, 3 DRAM sticks, 1 loose fan — plus <10 soft node
  errors, 3 whole-cluster outages (PDU, 2 power cuts), and 4 soft
  switch-port failures cured by a power cycle.

The model treats install defects as Bernoulli per component and
service failures as exponential lifetimes at per-component rates fit
from the observed counts (the 9-month MLE).  A Monte-Carlo simulator
replays the cluster's life and yields distributions of failure counts
and node availability, and a SMART-style predictor marks the disk
failures the paper says were mostly predictable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ComponentPopulation",
    "SS_COMPONENTS",
    "INSTALL_DEFECTS",
    "SERVICE_FAILURES_9MO",
    "SOFT_NODE_ERRORS_9MO",
    "SWITCH_PORT_SOFT_FAILURES_9MO",
    "FailureModel",
    "SimulatedLife",
]

HOURS_9MO = 9 * 30 * 24.0

#: §2.1's transient failures, not tied to a replaced component: "<10"
#: soft node errors (taken at the bound) and 4 switch ports that went
#: soft until power-cycled.  These drive the slow-node and degraded-link
#: fault kinds in :mod:`repro.simmpi.faults`.
SOFT_NODE_ERRORS_9MO = 10
SWITCH_PORT_SOFT_FAILURES_9MO = 4


@dataclass(frozen=True)
class ComponentPopulation:
    """A fleet of identical components."""

    kind: str
    count: int
    install_defects: int
    service_failures: int
    observed_hours: float = HOURS_9MO
    smart_predictable: float = 0.0  # fraction flagged in advance

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("count must be positive")
        if not 0 <= self.install_defects <= self.count:
            raise ValueError("install defects out of range")
        if self.service_failures < 0 or self.observed_hours <= 0:
            raise ValueError("invalid service failure record")
        if not 0.0 <= self.smart_predictable <= 1.0:
            raise ValueError("smart_predictable must be a fraction")

    @property
    def install_defect_rate(self) -> float:
        return self.install_defects / self.count

    @property
    def failures_per_hour(self) -> float:
        """Per-component exponential rate (MLE from the observation)."""
        return self.service_failures / (self.count * self.observed_hours)

    @property
    def mtbf_hours(self) -> float:
        rate = self.failures_per_hour
        return np.inf if rate == 0 else 1.0 / rate

    @property
    def annualized_failure_rate(self) -> float:
        return self.failures_per_hour * 365.0 * 24.0


#: The Section 2.1 record.  Fans: the Shuttle heat pipe eliminated CPU
#: fans; one case-fan worked loose in nine months.  The paper says "a
#: majority of the drive failures can be predicted" with SMART.
SS_COMPONENTS: tuple[ComponentPopulation, ...] = (
    ComponentPopulation("power supply", 294, 3, 2),
    ComponentPopulation("disk drive", 294, 6, 16, smart_predictable=0.6),
    ComponentPopulation("motherboard", 294, 4, 1),
    ComponentPopulation("DRAM stick", 588, 6, 3),
    ComponentPopulation("ethernet card", 294, 1, 0),
    ComponentPopulation("fan", 294, 0, 1),
)

INSTALL_DEFECTS = {c.kind: c.install_defects for c in SS_COMPONENTS}
SERVICE_FAILURES_9MO = {c.kind: c.service_failures for c in SS_COMPONENTS}


@dataclass
class SimulatedLife:
    """Outcome of one Monte-Carlo cluster lifetime."""

    install_defects: dict[str, int]
    service_failures: dict[str, int]
    smart_predicted: int
    node_hours_lost: float
    availability: float


class FailureModel:
    """Monte-Carlo failure injection over a component catalog."""

    def __init__(
        self,
        components: tuple[ComponentPopulation, ...] = SS_COMPONENTS,
        *,
        repair_hours: float = 24.0,
        n_nodes: int = 294,
    ):
        if repair_hours < 0 or n_nodes < 1:
            raise ValueError("invalid model parameters")
        self.components = components
        self.repair_hours = repair_hours
        self.n_nodes = n_nodes

    def simulate(self, hours: float = HOURS_9MO, seed: int = 0) -> SimulatedLife:
        """One replay of the cluster's life."""
        if hours <= 0:
            raise ValueError("hours must be positive")
        rng = np.random.default_rng(seed)
        install: dict[str, int] = {}
        service: dict[str, int] = {}
        smart = 0
        node_hours_lost = 0.0
        for comp in self.components:
            install[comp.kind] = int(rng.binomial(comp.count, comp.install_defect_rate))
            lifetimes = rng.exponential(
                comp.mtbf_hours if np.isfinite(comp.mtbf_hours) else 1e12, comp.count
            )
            failures = int((lifetimes < hours).sum())
            service[comp.kind] = failures
            smart += int(rng.binomial(failures, comp.smart_predictable))
            node_hours_lost += failures * self.repair_hours
        total_node_hours = self.n_nodes * hours
        availability = 1.0 - node_hours_lost / total_node_hours
        return SimulatedLife(install, service, smart, node_hours_lost, availability)

    def expected_failures(self, hours: float = HOURS_9MO) -> dict[str, float]:
        """Analytic expectation per component kind."""
        return {
            c.kind: c.count * (1.0 - np.exp(-hours / c.mtbf_hours))
            if np.isfinite(c.mtbf_hours)
            else 0.0
            for c in self.components
        }

    def expected_availability(self, hours: float = HOURS_9MO) -> float:
        lost = sum(self.expected_failures(hours).values()) * self.repair_hours
        return 1.0 - lost / (self.n_nodes * hours)

    def failure_count_distribution(
        self, kind: str, hours: float = HOURS_9MO, trials: int = 2000, seed: int = 0
    ) -> np.ndarray:
        """Monte-Carlo histogram of service-failure counts for one kind."""
        comp = next((c for c in self.components if c.kind == kind), None)
        if comp is None:
            raise ValueError(f"unknown component kind {kind!r}")
        rng = np.random.default_rng(seed)
        p_fail = 1.0 - np.exp(-hours * comp.failures_per_hour)
        return rng.binomial(comp.count, p_fail, size=trials)
