"""The cluster itself: procurement, power, reliability, and economics.

Models everything Section 2 and Section 5 of the paper report about
the physical machine: the Table 1/Table 7 bills of materials, the 35 kW
power budget, nine months of component-failure statistics, the TOP500
ranking context, and the Moore's-law price/performance analysis.
"""

from .bom import LOKI_BOM, SPACE_SIMULATOR_BOM, BillOfMaterials, LineItem
from .checkpoint import (
    CheckpointPlan,
    expected_runtime,
    job_mtbf_hours,
    young_interval,
)
from .moore import (
    LOKI_NPB_CLASS_B_16P,
    NBODY_LOKI_VS_SS,
    SS_NPB_CLASS_B_16P,
    YEARS_LOKI_TO_SS,
    NBodyComparison,
    disk_dollars_per_gb,
    moore_factor,
    npb_improvement_ratios,
    npb_price_performance_vs_moore,
    ram_dollars_per_mb,
)
from .power import SPACE_SIMULATOR_POWER, PowerBudget
from .reliability import (
    INSTALL_DEFECTS,
    SERVICE_FAILURES_9MO,
    SS_COMPONENTS,
    ComponentPopulation,
    FailureModel,
    SimulatedLife,
)
from .top500 import (
    SS_LINPACK_APR2003,
    SS_LINPACK_NOV2002,
    TOP500_JUN2003,
    TOP500_NOV2002,
    Top500Anchor,
    estimate_rank,
    price_per_mflops_cents,
)

__all__ = [
    "LineItem",
    "BillOfMaterials",
    "SPACE_SIMULATOR_BOM",
    "LOKI_BOM",
    "PowerBudget",
    "SPACE_SIMULATOR_POWER",
    "ComponentPopulation",
    "FailureModel",
    "SimulatedLife",
    "SS_COMPONENTS",
    "INSTALL_DEFECTS",
    "SERVICE_FAILURES_9MO",
    "moore_factor",
    "disk_dollars_per_gb",
    "ram_dollars_per_mb",
    "npb_improvement_ratios",
    "npb_price_performance_vs_moore",
    "NBodyComparison",
    "NBODY_LOKI_VS_SS",
    "LOKI_NPB_CLASS_B_16P",
    "SS_NPB_CLASS_B_16P",
    "YEARS_LOKI_TO_SS",
    "Top500Anchor",
    "TOP500_NOV2002",
    "TOP500_JUN2003",
    "estimate_rank",
    "price_per_mflops_cents",
    "SS_LINPACK_NOV2002",
    "SS_LINPACK_APR2003",
    "CheckpointPlan",
    "job_mtbf_hours",
    "young_interval",
    "expected_runtime",
]
