"""Execution traces and ASCII timelines for SimMPI runs.

The engine records per-rank activity through the unified
:mod:`repro.obs` layer; this module keeps the historical SimMPI-facing
surface — the :class:`TraceEvent` record, the Gantt-style ASCII
timeline (the poor man's Vampir/Jumpshot, which is what one actually
stared at in 2003), and per-rank utilization summaries — as thin
adapters over that model.

Usage::

    result = run(program, 8, cost)
    print(render_timeline(result.trace, result.elapsed))

For richer views (Perfetto-loadable Chrome traces, flat metrics) use
``result.observer`` with :func:`repro.obs.chrome_trace` /
:func:`repro.obs.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs import Span, render_spans

__all__ = [
    "TraceEvent",
    "render_timeline",
    "utilization",
    "trace_to_spans",
    "spans_to_trace",
]


@dataclass(frozen=True)
class TraceEvent:
    """One activity interval of one rank."""

    rank: int
    t_start: float
    t_end: float
    kind: str  # "compute", "blocked", or "failed" (instantaneous crash)
    detail: str = ""

    def __post_init__(self) -> None:
        if self.t_end < self.t_start:
            raise ValueError("interval ends before it starts")

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


def trace_to_spans(trace: list[TraceEvent]) -> list[Span]:
    """Lift legacy trace events into obs spans (track = rank).

    Collective waits (detail ``collective #n (...)``) get their own
    category so exporters can tell communication structure from
    point-to-point blocking.
    """
    spans = []
    for e in trace:
        if e.kind == "blocked" and e.detail.startswith("collective"):
            cat = "collective"
        else:
            cat = e.kind
        name = e.detail if e.kind == "blocked" and e.detail else (e.detail or e.kind)
        spans.append(Span(name, e.t_start, e.t_end, track=e.rank, cat=cat))
    return spans


def spans_to_trace(spans: list[Span]) -> list[TraceEvent]:
    """Project obs spans back onto the legacy TraceEvent surface.

    ``compute`` spans keep their phase label as ``detail`` (empty for
    the anonymous ``compute``/``elapse`` defaults); ``collective``
    spans fold back into ``blocked``, which is what the pre-obs engine
    recorded them as.
    """
    out = []
    for s in spans:
        if s.cat == "compute":
            detail = "" if s.name in ("compute", "elapse") else s.name
            out.append(TraceEvent(s.track, s.t_start, s.t_end, "compute", detail))
        elif s.cat in ("blocked", "collective"):
            out.append(TraceEvent(s.track, s.t_start, s.t_end, "blocked", s.name))
        elif s.cat == "failed":
            out.append(TraceEvent(s.track, s.t_start, s.t_end, "failed", s.name))
    return out


def utilization(trace: list[TraceEvent], elapsed: float, n_ranks: int) -> list[dict]:
    """Per-rank breakdown: compute / blocked / idle fractions.

    Single pass over the trace grouped by rank (events from ranks
    outside ``[0, n_ranks)`` are ignored, as before).  A zero-elapsed
    run — nothing ever happened — has utilization 0.0 across the board
    rather than a division error; negative elapsed is still rejected.
    """
    if elapsed < 0:
        raise ValueError("elapsed must be non-negative")
    if elapsed == 0:
        return [
            {"rank": rank, "compute": 0.0, "blocked": 0.0, "idle": 0.0}
            for rank in range(n_ranks)
        ]
    compute = [0.0] * n_ranks
    blocked = [0.0] * n_ranks
    for e in trace:
        if 0 <= e.rank < n_ranks:
            if e.kind == "compute":
                compute[e.rank] += e.duration
            elif e.kind == "blocked":
                blocked[e.rank] += e.duration
    return [
        {
            "rank": rank,
            "compute": compute[rank] / elapsed,
            "blocked": blocked[rank] / elapsed,
            "idle": max(1.0 - (compute[rank] + blocked[rank]) / elapsed, 0.0),
        }
        for rank in range(n_ranks)
    ]


def render_timeline(
    trace: list[TraceEvent], elapsed: float, n_ranks: int | None = None, width: int = 72
) -> str:
    """ASCII Gantt chart: '#' compute, '.' blocked, 'X' crash, ' ' idle."""
    if not trace:
        return "(empty trace)"
    if elapsed <= 0:
        raise ValueError("elapsed must be positive")
    if width < 10:
        raise ValueError("width must be >= 10")
    return render_spans(
        trace_to_spans(trace), elapsed, n_tracks=n_ranks, width=width
    )
