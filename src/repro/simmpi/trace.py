"""Execution traces and ASCII timelines for SimMPI runs.

The engine records per-rank activity intervals (compute segments and
blocked spans, with what each rank was blocked on).  This module turns
those into the standard parallel-tools views: a Gantt-style ASCII
timeline (the poor man's Vampir/Jumpshot, which is what one actually
stared at in 2003) and per-rank utilization summaries.

Usage::

    result = run(program, 8, cost)
    print(render_timeline(result.trace, result.elapsed))
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TraceEvent", "render_timeline", "utilization"]


@dataclass(frozen=True)
class TraceEvent:
    """One activity interval of one rank."""

    rank: int
    t_start: float
    t_end: float
    kind: str  # "compute", "blocked", or "failed" (instantaneous crash)
    detail: str = ""

    def __post_init__(self) -> None:
        if self.t_end < self.t_start:
            raise ValueError("interval ends before it starts")

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


def utilization(trace: list[TraceEvent], elapsed: float, n_ranks: int) -> list[dict]:
    """Per-rank breakdown: compute / blocked / idle fractions."""
    if elapsed <= 0:
        raise ValueError("elapsed must be positive")
    out = []
    for rank in range(n_ranks):
        compute = sum(e.duration for e in trace if e.rank == rank and e.kind == "compute")
        blocked = sum(e.duration for e in trace if e.rank == rank and e.kind == "blocked")
        out.append(
            {
                "rank": rank,
                "compute": compute / elapsed,
                "blocked": blocked / elapsed,
                "idle": max(1.0 - (compute + blocked) / elapsed, 0.0),
            }
        )
    return out


def render_timeline(
    trace: list[TraceEvent], elapsed: float, n_ranks: int | None = None, width: int = 72
) -> str:
    """ASCII Gantt chart: '#' compute, '.' blocked, 'X' crash, ' ' idle."""
    if not trace:
        return "(empty trace)"
    if elapsed <= 0:
        raise ValueError("elapsed must be positive")
    if width < 10:
        raise ValueError("width must be >= 10")
    if n_ranks is None:
        n_ranks = max(e.rank for e in trace) + 1
    lines = [f"timeline ({elapsed:.3g}s virtual, '#'=compute '.'=blocked 'X'=crash):"]
    for rank in range(n_ranks):
        row = [" "] * width
        for e in trace:
            if e.rank != rank:
                continue
            lo = int(e.t_start / elapsed * width)
            if e.kind == "failed":
                row[min(lo, width - 1)] = "X"
                continue
            hi = max(int(e.t_end / elapsed * width), lo + 1)
            ch = "#" if e.kind == "compute" else "."
            for i in range(lo, min(hi, width)):
                if row[i] == " " or ch == "#":
                    row[i] = ch
        lines.append(f"rank {rank:3d} |{''.join(row)}|")
    return "\n".join(lines)
