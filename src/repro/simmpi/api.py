"""Operation descriptors and the rank-facing ``Comm`` API.

SimMPI programs are *generator functions*: a rank yields operation
descriptors to the engine and receives results back at the resumed
``yield`` expression, e.g.::

    def program(comm: Comm):
        right = (comm.rank + 1) % comm.size
        yield comm.isend(np.arange(4.0), dest=right, tag=0)
        data = yield comm.recv(source=ANY_SOURCE, tag=0)
        total = yield comm.allreduce(float(data.sum()))
        yield comm.compute(flops=1e9, mem_bytes=1e8)

The descriptor layer is deliberately dumb — all semantics (matching,
virtual time, reductions) live in :mod:`repro.simmpi.engine`.  Method
names and argument conventions follow mpi4py's lowercase object API so
the parallel treecode reads like an MPI code.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "MAX",
    "MIN",
    "SUM",
    "PROD",
    "payload_nbytes",
    "Request",
    "Op",
    "Send",
    "Recv",
    "Isend",
    "Irecv",
    "Wait",
    "Waitall",
    "Compute",
    "Elapse",
    "Now",
    "Probe",
    "CollectiveOp",
    "Barrier",
    "Bcast",
    "Reduce",
    "Allreduce",
    "Gather",
    "Allgather",
    "Scatter",
    "Alltoall",
    "Comm",
]

#: Wildcard source for receives (matches any sender).
ANY_SOURCE = -1
#: Wildcard tag for receives (matches any tag).
ANY_TAG = -1

# Reduction operators. Arrays reduce elementwise, scalars normally.
SUM = operator.add
PROD = operator.mul


def MAX(a, b):
    """Elementwise/scalar maximum reduction operator."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.maximum(a, b)
    return max(a, b)


def MIN(a, b):
    """Elementwise/scalar minimum reduction operator."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.minimum(a, b)
    return min(a, b)


def payload_nbytes(payload: Any) -> int:
    """Deterministic wire-size estimate for a message payload.

    NumPy arrays report their buffer size; bytes-likes their length;
    numbers 8 bytes; containers sum their elements plus a small framing
    overhead per element.  Anything else costs a flat 64 bytes — the
    point is reproducible cost accounting, not serialization fidelity.

    Returns the size in bytes as a plain ``int``.

    >>> payload_nbytes(np.zeros(16))
    128
    >>> payload_nbytes(b"abc"), payload_nbytes(3.5), payload_nbytes(None)
    (3, 8, 0)
    >>> payload_nbytes([np.zeros(2), 1])  # 16 + 8 payload, 8 + 8 framing
    40
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, (bool, int, float, complex, np.generic)):
        return 8
    if isinstance(payload, str):
        return len(payload.encode())
    if isinstance(payload, (list, tuple)):
        return sum(payload_nbytes(item) + 8 for item in payload)
    if isinstance(payload, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) + 8 for k, v in payload.items())
    return 64


class Request:
    """Handle for a nonblocking operation, returned by isend/irecv.

    Completion is managed entirely by the engine: ``complete_time`` is
    set when the transfer finishes in virtual time, ``value`` carries
    the received payload for irecv.
    """

    __slots__ = ("rank", "kind", "seq", "complete_time", "value", "cancelled", "match",
                 "waiters")

    def __init__(self, rank: int, kind: str, seq: int):
        self.rank = rank
        self.kind = kind
        self.seq = seq
        self.complete_time: float | None = None
        self.value: Any = None
        self.cancelled = False
        #: Matching metadata stamped by the engine when the transfer
        #: completes: peer rank, tag, post times — what the wait-state
        #: analyzer needs to reconstruct happens-before edges.
        self.match: dict[str, Any] | None = None
        #: Engine-internal: waiters registered on this request, woken
        #: when it completes (cleared on completion).
        self.waiters: list | None = None

    @property
    def is_complete(self) -> bool:
        return self.complete_time is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"done@{self.complete_time:.6g}" if self.is_complete else "pending"
        return f"<Request {self.kind} rank={self.rank} seq={self.seq} {state}>"


@dataclass(frozen=True)
class Op:
    """Base class for everything a rank may yield."""


@dataclass(frozen=True)
class Send(Op):
    dest: int
    tag: int
    payload: Any
    nbytes: int


@dataclass(frozen=True)
class Recv(Op):
    source: int
    tag: int


@dataclass(frozen=True)
class Isend(Op):
    dest: int
    tag: int
    payload: Any
    nbytes: int


@dataclass(frozen=True)
class Irecv(Op):
    source: int
    tag: int


@dataclass(frozen=True)
class Wait(Op):
    request: Request


@dataclass(frozen=True)
class Waitall(Op):
    requests: tuple[Request, ...]


@dataclass(frozen=True)
class Compute(Op):
    """Advance the local clock by a modeled computation.

    ``label`` names the phase for the instrumentation layer (e.g.
    ``"tree-build"``); it has no effect on timing.
    """

    flops: float
    mem_bytes: float
    flop_efficiency: float = 1.0
    label: str = ""


@dataclass(frozen=True)
class Elapse(Op):
    """Advance the local clock by a literal number of seconds (I/O,
    fixed overheads, anything outside the compute model).

    ``label`` names the interval for the instrumentation layer (e.g.
    ``"checkpoint-dump"``); it has no effect on timing.
    """

    seconds: float
    label: str = ""


@dataclass(frozen=True)
class Now(Op):
    """Query the rank's virtual clock."""


@dataclass(frozen=True)
class Probe(Op):
    """Nonblockingly check for a matchable incoming message.

    Returns ``(source, tag, nbytes)`` if a send is already posted that a
    recv with this signature would match, else ``None``.  This is the
    hook the treecode's ABM layer uses to service data requests while
    its own traversal continues.
    """

    source: int
    tag: int


@dataclass(frozen=True)
class CollectiveOp(Op):
    """Common shape of all collectives: matched across the whole comm."""

    kind: str
    payload: Any = None
    root: int = 0
    op: Callable[[Any, Any], Any] | None = None
    nbytes: int = 0


def Barrier() -> CollectiveOp:
    return CollectiveOp("barrier")


def Bcast(payload: Any, root: int) -> CollectiveOp:
    return CollectiveOp("bcast", payload=payload, root=root, nbytes=payload_nbytes(payload))


def Reduce(payload: Any, root: int, op: Callable = SUM) -> CollectiveOp:
    return CollectiveOp("reduce", payload=payload, root=root, op=op, nbytes=payload_nbytes(payload))


def Allreduce(payload: Any, op: Callable = SUM) -> CollectiveOp:
    return CollectiveOp("allreduce", payload=payload, op=op, nbytes=payload_nbytes(payload))


def Gather(payload: Any, root: int) -> CollectiveOp:
    return CollectiveOp("gather", payload=payload, root=root, nbytes=payload_nbytes(payload))


def Allgather(payload: Any, nbytes: int | None = None) -> CollectiveOp:
    return CollectiveOp(
        "allgather", payload=payload,
        nbytes=payload_nbytes(payload) if nbytes is None else int(nbytes),
    )


def Scatter(payload: Sequence | None, root: int) -> CollectiveOp:
    return CollectiveOp("scatter", payload=payload, root=root, nbytes=payload_nbytes(payload))


def Alltoall(payload: Sequence, nbytes: int | None = None) -> CollectiveOp:
    return CollectiveOp(
        "alltoall", payload=payload,
        nbytes=payload_nbytes(payload) if nbytes is None else int(nbytes),
    )


@dataclass
class Comm:
    """Rank-local facade: knows its rank/size and builds descriptors.

    The engine constructs one ``Comm`` per rank and passes it to the
    rank's program.  All methods are pure descriptor factories; yield
    the result to execute it.
    """

    rank: int
    size: int
    _stats: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not 0 <= self.rank < self.size:
            raise ValueError(f"rank {self.rank} out of range for size {self.size}")

    def _check_peer(self, peer: int, *, wildcard_ok: bool = False) -> None:
        if wildcard_ok and peer == ANY_SOURCE:
            return
        if not 0 <= peer < self.size:
            raise ValueError(f"peer rank {peer} out of range for size {self.size}")

    # -- point to point -------------------------------------------------
    def send(self, payload: Any, dest: int, tag: int = 0,
             nbytes: int | None = None) -> Send:
        """Blocking send to rank ``dest``; wire size via :func:`payload_nbytes`.

        Pass ``nbytes`` to override the estimated wire size — the
        escape hatch for deeply nested payloads whose recursive size
        walk would dominate (tree-collective protocol messages carry
        their running size this way)."""
        self._check_peer(dest)
        return Send(dest, tag, payload,
                    payload_nbytes(payload) if nbytes is None else int(nbytes))

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Recv:
        """Blocking receive; yields the matched payload.  ``source``/``tag``
        accept the :data:`ANY_SOURCE` / :data:`ANY_TAG` wildcards."""
        self._check_peer(source, wildcard_ok=True)
        return Recv(source, tag)

    def isend(self, payload: Any, dest: int, tag: int = 0,
              nbytes: int | None = None) -> Isend:
        """Nonblocking send; yields a :class:`Request` to wait on later.
        Messages between a (sender, receiver, tag) triple match FIFO.
        ``nbytes`` overrides the estimated wire size (see :meth:`send`)."""
        self._check_peer(dest)
        return Isend(dest, tag, payload,
                     payload_nbytes(payload) if nbytes is None else int(nbytes))

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Irecv:
        """Nonblocking receive; yields a :class:`Request` whose ``value``
        holds the payload once waited on."""
        self._check_peer(source, wildcard_ok=True)
        return Irecv(source, tag)

    def wait(self, request: Request) -> Wait:
        """Block until ``request`` completes; yields its received value."""
        return Wait(request)

    def waitall(self, requests: Sequence[Request]) -> Waitall:
        """Block until every request completes; yields the list of
        received values in the order the requests were given."""
        return Waitall(tuple(requests))

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Probe:
        """Nonblocking check for a matchable message; yields
        ``(source, tag, nbytes)`` or ``None`` without receiving."""
        self._check_peer(source, wildcard_ok=True)
        return Probe(source, tag)

    # -- local time -----------------------------------------------------
    def compute(
        self,
        flops: float,
        mem_bytes: float = 0.0,
        flop_efficiency: float = 1.0,
        label: str = "",
    ) -> Compute:
        """Advance this rank's virtual clock by a modeled computation of
        ``flops`` floating-point operations touching ``mem_bytes`` bytes;
        the cost model turns both into seconds (roofline-style)."""
        return Compute(flops, mem_bytes, flop_efficiency, label)

    def elapse(self, seconds: float, label: str = "") -> Elapse:
        """Advance this rank's virtual clock by ``seconds`` (virtual
        seconds) — for I/O and fixed overheads outside the compute model."""
        return Elapse(seconds, label)

    def now(self) -> Now:
        """Yield the rank's current virtual time in seconds."""
        return Now()

    # -- collectives ----------------------------------------------------
    def barrier(self) -> CollectiveOp:
        return Barrier()

    def bcast(self, payload: Any, root: int = 0) -> CollectiveOp:
        self._check_peer(root)
        return Bcast(payload if self.rank == root else None, root)

    def reduce(self, payload: Any, root: int = 0, op: Callable = SUM) -> CollectiveOp:
        self._check_peer(root)
        return Reduce(payload, root, op)

    def allreduce(self, payload: Any, op: Callable = SUM) -> CollectiveOp:
        return Allreduce(payload, op)

    def gather(self, payload: Any, root: int = 0) -> CollectiveOp:
        self._check_peer(root)
        return Gather(payload, root)

    def allgather(self, payload: Any, nbytes: int | None = None) -> CollectiveOp:
        """All ranks contribute one payload and every rank receives the
        list of all of them; ``nbytes`` overrides the wire-size walk."""
        return Allgather(payload, nbytes)

    def scatter(self, payload: Sequence | None, root: int = 0) -> CollectiveOp:
        self._check_peer(root)
        if self.rank == root:
            if payload is None or len(payload) != self.size:
                raise ValueError("scatter root must supply one item per rank")
            return Scatter(tuple(payload), root)
        return Scatter(None, root)

    def alltoall(self, payload: Sequence, nbytes: int | None = None) -> CollectiveOp:
        """Personalized exchange: rank ``i`` receives element ``i`` of
        every rank's list; ``nbytes`` overrides the wire-size walk
        (worth supplying at high rank counts — the default walk visits
        all P entries of the list)."""
        if len(payload) != self.size:
            raise ValueError("alltoall requires one item per rank")
        return Alltoall(tuple(payload), nbytes)
