"""Virtual-time cost models for SimMPI.

The engine charges three kinds of time:

* **compute** — a :class:`~repro.machine.perfmodel.Workload` executed on
  the rank's node (roofline model);
* **point-to-point** — a message between two ranks, costed by the
  messaging-stack model and degraded by the switch-fabric locality of
  the two endpoints (same module / cross module / cross trunk);
* **collective** — tree/ring algorithm estimates built from the p2p
  cost, matching what LAM/mpich actually implement.

:class:`ZeroCost` makes every operation free, which turns SimMPI into a
pure algorithm checker — handy in tests where only message *semantics*
matter.  :class:`SpaceSimulatorCost` is the calibrated model of the
actual cluster (LAM 6.5.9 -O over the Foundry fabric, P4 nodes).
"""

from __future__ import annotations

import math

from ..machine.node import NodeSpec, SPACE_SIMULATOR_NODE
from ..machine.perfmodel import PerfModel, Workload
from ..network.stacks import LAM_O, MessagingStack
from ..network.switch import FabricModel, SPACE_SIMULATOR_FABRIC

__all__ = ["CostModel", "ZeroCost", "UniformCost", "SpaceSimulatorCost"]


class CostModel:
    """Interface the engine consumes."""

    #: Eager-protocol threshold (bytes): sends at or below complete at
    #: the sender.  Subclasses may override to model a different stack.
    eager_nbytes: int = 64 * 1024

    def compute_time(self, rank: int, workload: Workload) -> float:
        raise NotImplementedError

    def p2p_time(self, src: int, dst: int, nbytes: int) -> float:
        raise NotImplementedError

    def collective_time(self, kind: str, size: int, nbytes: int) -> float:
        """Default: log-tree of p2p hops for rooted/latency collectives,
        ring terms for all-to-all style data movement."""
        if size <= 1:
            return 0.0
        rounds = max(1, math.ceil(math.log2(size)))
        if kind == "barrier":
            return rounds * self.p2p_time(0, size - 1, 0)
        if kind in ("bcast", "reduce"):
            return rounds * self.p2p_time(0, size - 1, nbytes)
        if kind == "allreduce":
            # reduce-scatter + allgather (Rabenseifner) ~ 2 x ring of n/P
            ring = (size - 1) * self.p2p_time(0, size - 1, max(nbytes // size, 1))
            return 2.0 * ring + rounds * self.p2p_time(0, size - 1, 0)
        if kind in ("gather", "scatter", "allgather"):
            return (size - 1) * self.p2p_time(0, size - 1, nbytes)
        if kind == "alltoall":
            per_peer = max(nbytes // size, 1)
            return (size - 1) * self.p2p_time(0, size - 1, per_peer)
        raise ValueError(f"unknown collective kind {kind!r}")


class ZeroCost(CostModel):
    """Every operation is instantaneous (semantics-only simulation)."""

    def compute_time(self, rank: int, workload: Workload) -> float:
        return 0.0

    def p2p_time(self, src: int, dst: int, nbytes: int) -> float:
        return 0.0

    def collective_time(self, kind: str, size: int, nbytes: int) -> float:
        return 0.0


class UniformCost(CostModel):
    """Flat latency/bandwidth network and fixed-rate CPUs.

    Useful for controlled experiments (e.g. testing that halving the
    bandwidth parameter doubles large-message time) without dragging in
    the full hardware catalog.
    """

    def __init__(
        self,
        *,
        latency_s: float = 50e-6,
        mbytes_s: float = 100.0,
        mflops: float = 1000.0,
    ):
        if latency_s < 0 or mbytes_s <= 0 or mflops <= 0:
            raise ValueError("latency must be >= 0; rates must be positive")
        self.latency_s = latency_s
        self.mbytes_s = mbytes_s
        self.mflops = mflops

    def compute_time(self, rank: int, workload: Workload) -> float:
        return workload.flops / (self.mflops * 1e6)

    def p2p_time(self, src: int, dst: int, nbytes: int) -> float:
        return self.latency_s + nbytes / (self.mbytes_s * 1e6)


class SpaceSimulatorCost(CostModel):
    """Calibrated cost model of the Space Simulator.

    Point-to-point messages pay the messaging-stack time; messages whose
    endpoints live on different switch modules or different chassis are
    additionally capped by their share of the backplane/trunk capacity
    under the assumption that ``congestion`` other flows share the same
    path (0 = uncontended).  This static treatment captures the fabric
    hierarchy without simulating every packet.
    """

    def __init__(
        self,
        *,
        node: NodeSpec = SPACE_SIMULATOR_NODE,
        stack: MessagingStack = LAM_O,
        fabric: FabricModel = SPACE_SIMULATOR_FABRIC,
        congestion: int = 0,
    ):
        if congestion < 0:
            raise ValueError("congestion must be non-negative")
        self.node = node
        self.stack = stack
        self.fabric = fabric
        self.congestion = congestion
        self._perf = PerfModel(node)

    def compute_time(self, rank: int, workload: Workload) -> float:
        return self._perf.time_s(workload)

    def _path_mbits(self, src: int, dst: int) -> float:
        """Bandwidth ceiling of the src->dst path given static sharing."""
        a = self.fabric.locate(src % self.fabric.total_ports)
        b = self.fabric.locate(dst % self.fabric.total_ports)
        ceiling = min(self.fabric.port_mbits, self.node.nic.effective_mbits_s)
        sharers = 1 + self.congestion
        backplane = 8000.0 * self.fabric.backplane_efficiency
        if a.switch != b.switch:
            # Crosses two module backplanes *and* the trunk.
            ceiling = min(ceiling, self.fabric.trunk_mbits / sharers, backplane / sharers)
        elif a.module != b.module:
            ceiling = min(ceiling, backplane / sharers)
        return ceiling

    def p2p_time(self, src: int, dst: int, nbytes: int) -> float:
        if src == dst:
            # local "message": one memory copy
            return nbytes / (self.node.stream_mbytes_s * 1e6)
        base = self.stack.time_s(nbytes)
        path = self._path_mbits(src, dst)
        wire = min(self.stack.asymptotic_mbits_s, path)
        extra = nbytes * 8.0 / (wire * 1e6) - nbytes * 8.0 / (self.stack.asymptotic_mbits_s * 1e6)
        return base + max(extra, 0.0)
