"""SimMPI: a deterministic discrete-event MPI for single-process runs.

The substrate every parallel component of this reproduction runs on
(see DESIGN.md section 4.1).  Rank programs are generator functions
over a :class:`~repro.simmpi.api.Comm`; the engine gives each rank a
virtual clock advanced by calibrated compute/network cost models, so
parallel *performance* (scaling curves, efficiency) is simulated with
fidelity a real laptop MPI could never provide, while the message
*semantics* (matching, collectives, reductions) execute for real on
real data.

Quick example::

    from repro.simmpi import run

    def ring(comm):
        right = (comm.rank + 1) % comm.size
        yield comm.isend(comm.rank, dest=right)
        value = yield comm.recv()
        total = yield comm.allreduce(value)
        return total

    result = run(ring, n_ranks=4)
    assert result.returns == [6, 6, 6, 6]
"""

from .api import (
    ANY_SOURCE,
    ANY_TAG,
    MAX,
    MIN,
    PROD,
    SUM,
    Comm,
    Request,
    payload_nbytes,
)
from . import patterns
from .cost import CostModel, SpaceSimulatorCost, UniformCost, ZeroCost
from .engine import (
    CollectiveMismatchError,
    DeadlockError,
    Engine,
    EventBudgetError,
    RankStats,
    SimResult,
    run,
)
from .faults import FaultEvent, FaultPlan, RankFailedError
from .trace import TraceEvent, render_timeline, utilization

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "Comm",
    "Request",
    "payload_nbytes",
    "CostModel",
    "ZeroCost",
    "UniformCost",
    "SpaceSimulatorCost",
    "Engine",
    "run",
    "SimResult",
    "RankStats",
    "DeadlockError",
    "CollectiveMismatchError",
    "EventBudgetError",
    "FaultEvent",
    "FaultPlan",
    "RankFailedError",
    "patterns",
    "TraceEvent",
    "render_timeline",
    "utilization",
]
