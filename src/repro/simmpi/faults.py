"""Fault taxonomy for SimMPI runs — the §2.1 failure record made executable.

The paper devotes Section 2.1 to nine months of component failures on
the 294-node cluster because surviving them is what a multi-month
production run actually requires.  :mod:`repro.cluster.reliability`
models that record analytically; this module is the injection side: a
:class:`FaultPlan` is a deterministic schedule of fault events that the
engine (:mod:`repro.simmpi.engine`) replays against a running
simulation, so the resilience machinery in :mod:`repro.resilience` can
be tested against the same failure statistics the paper reports.

Three fault kinds cover the paper's observations:

* ``"crash"`` — a node (rank) dies at a virtual time.  SimMPI models
  2003-era MPI: any rank death kills the whole job, surfaced as
  :class:`RankFailedError` from ``Engine.run`` at exactly the crash's
  virtual time.  Recovery is the application's problem (checkpoint /
  restart — see :mod:`repro.resilience.runner`).
* ``"slow"`` — a soft-error / thermally-throttled node: the rank's
  compute segments are stretched by ``factor`` for ``duration``
  seconds.  The paper counts "<10 soft node errors" in nine months.
* ``"link"`` — a degraded switch port: point-to-point transfers
  touching the rank are stretched by ``factor`` for ``duration``
  seconds (the paper's 4 soft switch-port failures cured by a power
  cycle).

Plans are plain data — sampling them from the measured §2.1 rates lives
in :func:`repro.resilience.sampling.sample_fault_plan`, keeping this
module free of any dependency above the engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["FAULT_KINDS", "FaultEvent", "FaultPlan", "RankFailedError"]

FAULT_KINDS = ("crash", "slow", "link")


class RankFailedError(RuntimeError):
    """A rank died mid-run (injected node crash); the job is lost.

    Mirrors what LAM/MPICH of the paper's era did on node death: the
    whole job aborts.  Carries the failed ``rank`` and the virtual
    ``time`` of the crash so a restart layer can account for lost work.
    """

    def __init__(self, rank: int, time: float):
        super().__init__(f"rank {rank} failed at t={time:.6g}s; job aborted")
        self.rank = rank
        self.time = time


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``time`` is virtual seconds from job start.  ``factor`` / ``duration``
    apply to ``slow`` and ``link`` events only; a crash is instantaneous
    and terminal for the job.
    """

    kind: str
    rank: int
    time: float
    factor: float = 1.0
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if self.rank < 0:
            raise ValueError("rank must be non-negative")
        if self.time < 0 or not math.isfinite(self.time):
            raise ValueError("fault time must be finite and non-negative")
        if self.kind != "crash":
            if self.factor < 1.0:
                raise ValueError("degradation factor must be >= 1")
            if self.duration <= 0:
                raise ValueError("slow/link faults need a positive duration")

    @property
    def t_end(self) -> float:
        return self.time if self.kind == "crash" else self.time + self.duration

    def active_at(self, t: float) -> bool:
        return self.time <= t < self.t_end


class FaultPlan:
    """An immutable, time-sorted schedule of fault events.

    The engine consumes crashes via :meth:`crashes` and queries the
    degradation factors per operation; the restart layer rewrites plans
    across attempts with :meth:`shifted` (repair semantics: history is
    dropped, the future moves to the new time origin).
    """

    def __init__(self, events: tuple[FaultEvent, ...] | list[FaultEvent] = ()):
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.time, e.rank, e.kind))
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = {k: sum(1 for e in self.events if e.kind == k) for k in FAULT_KINDS}
        return f"FaultPlan({len(self.events)} events: {kinds})"

    def validate_ranks(self, size: int) -> None:
        for e in self.events:
            if e.rank >= size:
                raise ValueError(f"fault targets rank {e.rank} but the job has {size} ranks")

    def crashes(self) -> list[FaultEvent]:
        """Crash events in schedule order (the engine arms the first)."""
        return [e for e in self.events if e.kind == "crash"]

    def compute_factor(self, rank: int, t: float) -> float:
        """Multiplier on compute time for ``rank`` at virtual time ``t``."""
        f = 1.0
        for e in self.events:
            if e.kind == "slow" and e.rank == rank and e.active_at(t):
                f *= e.factor
        return f

    def link_factor(self, src: int, dst: int, t: float) -> float:
        """Multiplier on a p2p transfer touching either endpoint at ``t``."""
        f = 1.0
        for e in self.events:
            if e.kind == "link" and e.rank in (src, dst) and e.active_at(t):
                f *= e.factor
        return f

    def shifted(self, origin: float) -> "FaultPlan":
        """The plan as seen from a restart at virtual time ``origin``.

        Crashes at or before ``origin`` are consumed (the node was
        repaired or replaced); slow/link windows still partly in the
        future are clipped to their remainder.  Event times are
        re-expressed relative to the new origin, matching a fresh
        ``Engine`` whose clocks restart at zero.
        """
        if origin < 0:
            raise ValueError("origin must be non-negative")
        out: list[FaultEvent] = []
        for e in self.events:
            if e.kind == "crash":
                if e.time > origin:
                    out.append(FaultEvent("crash", e.rank, e.time - origin))
            elif e.t_end > origin:
                start = max(e.time, origin)
                out.append(
                    FaultEvent(e.kind, e.rank, start - origin, e.factor, e.t_end - start)
                )
        return FaultPlan(out)
