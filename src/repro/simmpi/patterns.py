"""Composite communication patterns built from SimMPI point-to-point.

The engine provides collectives as primitives (cost-modeled
analytically); this module provides the same operations *composed from
p2p messages*, as real MPI implementations do internally.  They serve
three purposes: richer building blocks for rank programs (``sendrecv``,
halo exchanges), cross-checks that the analytic collective cost model
is in the right neighborhood of an explicit algorithm, and executable
documentation of the classic algorithms (binomial-tree broadcast,
ring allgather, pairwise-exchange alltoall).

All are generator functions to be delegated with ``yield from`` inside
a rank program::

    data = yield from patterns.sendrecv(comm, my_block, dest, source)
    everything = yield from patterns.ring_allgather(comm, my_block)
"""

from __future__ import annotations

from typing import Any, Generator

from .api import ANY_SOURCE, Comm

__all__ = [
    "sendrecv",
    "ring_shift",
    "ring_allgather",
    "binomial_bcast",
    "pairwise_alltoall",
]


def sendrecv(
    comm: Comm, payload: Any, dest: int, source: int = ANY_SOURCE, tag: int = 0
) -> Generator:
    """Simultaneous send+receive (deadlock-free by construction)."""
    req = yield comm.isend(payload, dest, tag)
    data = yield comm.recv(source, tag)
    yield comm.wait(req)
    return data


def ring_shift(comm: Comm, payload: Any, shift: int = 1, tag: int = 0) -> Generator:
    """Pass ``payload`` ``shift`` ranks to the right; receive from the left."""
    if comm.size == 1:
        return payload
    dest = (comm.rank + shift) % comm.size
    source = (comm.rank - shift) % comm.size
    data = yield from sendrecv(comm, payload, dest, source, tag)
    return data


def ring_allgather(comm: Comm, payload: Any, tag: int = 1_000) -> Generator:
    """Ring allgather: size-1 shifts, each forwarding the newest block.

    Returns the list of every rank's payload in rank order — the same
    contract as ``comm.allgather`` but executed message by message.
    """
    size, rank = comm.size, comm.rank
    blocks: list[Any] = [None] * size
    blocks[rank] = payload
    current = (rank, payload)
    for step in range(size - 1):
        current = yield from sendrecv(
            comm, current, (rank + 1) % size, (rank - 1) % size, tag + step
        )
        blocks[current[0]] = current[1]
    return blocks


def binomial_bcast(comm: Comm, payload: Any, root: int = 0, tag: int = 2_000) -> Generator:
    """Binomial-tree broadcast: log2(P) rounds of doubling senders."""
    size, rank = comm.size, comm.rank
    rel = (rank - root) % size
    data = payload if rank == root else None
    mask = 1
    while mask < size:
        if rel < mask:
            partner = rel | mask
            if partner < size:
                yield comm.send(data, dest=(partner + root) % size, tag=tag)
        elif rel < 2 * mask:
            data = yield comm.recv(source=((rel ^ mask) + root) % size, tag=tag)
        mask <<= 1
    return data


def pairwise_alltoall(comm: Comm, blocks: list[Any], tag: int = 3_000) -> Generator:
    """Pairwise-exchange alltoall: P-1 rounds of XOR/offset partners."""
    size, rank = comm.size, comm.rank
    if len(blocks) != size:
        raise ValueError("one block per destination rank required")
    out: list[Any] = [None] * size
    out[rank] = blocks[rank]
    for step in range(1, size):
        dest = (rank + step) % size
        source = (rank - step) % size
        received = yield from sendrecv(comm, blocks[dest], dest, source, tag + step)
        out[source] = received
    return out
