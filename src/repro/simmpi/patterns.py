"""Composite communication patterns built from SimMPI point-to-point.

The engine provides collectives as primitives (cost-modeled
analytically); this module provides the same operations *composed from
p2p messages*, as real MPI implementations do internally.  They serve
three purposes: richer building blocks for rank programs (``sendrecv``,
halo exchanges), cross-checks that the analytic collective cost model
is in the right neighborhood of an explicit algorithm, and executable
documentation of the classic algorithms (binomial-tree broadcast,
ring allgather, pairwise-exchange alltoall).

Two families coexist here:

* the classic teaching patterns (``ring_allgather``, ``binomial_bcast``,
  ``pairwise_alltoall``) with O(P) round structure, and
* the scalable **tree collectives** (``tree_gather``/``tree_reduce``/
  ``tree_allreduce``/``tree_bcast``/``tree_allgather``/``tree_scatter``/
  ``tree_barrier``) with O(log P) depth, built for the 1000+-rank runs.
  Their results are bit-identical to the engine's flat collectives —
  reductions gather payloads up a binomial tree and fold **in rank
  order at the root**, exactly like the flat left-fold, so floating-
  point non-associativity can never make the two disagree.

The ``allreduce``/``reduce``/``bcast``/``gather``/``allgather``/
``scatter``/``barrier`` wrappers select between the engine primitive
and the tree algorithm automatically by group size (flat at or below
:data:`FLAT_COLLECTIVE_MAX` ranks, tree above), so rank programs write
one call and get the scalable algorithm only where it pays.

All are generator functions to be delegated with ``yield from`` inside
a rank program::

    data = yield from patterns.sendrecv(comm, my_block, dest, source)
    everything = yield from patterns.ring_allgather(comm, my_block)
    total = yield from patterns.allreduce(comm, my_part)  # auto flat/tree
"""

from __future__ import annotations

from functools import reduce as _fold
from typing import Any, Callable, Generator

from .api import ANY_SOURCE, SUM, Comm, payload_nbytes

__all__ = [
    "sendrecv",
    "ring_shift",
    "ring_allgather",
    "binomial_bcast",
    "pairwise_alltoall",
    "batched_request_reply",
    "tree_gather",
    "tree_reduce",
    "tree_bcast",
    "tree_allreduce",
    "tree_allgather",
    "tree_scatter",
    "tree_barrier",
    "allreduce",
    "reduce",
    "bcast",
    "gather",
    "allgather",
    "scatter",
    "barrier",
    "FLAT_COLLECTIVE_MAX",
]

#: Group size at or below which the auto-selecting collective wrappers
#: use the engine's flat primitive; above it they switch to the tree
#: algorithms.  Small groups keep the analytically-costed primitive
#: (and its existing golden traces); large groups get O(log P) depth.
FLAT_COLLECTIVE_MAX = 32

#: Default tags of the :func:`batched_request_reply` message streams.
#: Requests and replies between the same pair of ranks are in flight
#: simultaneously; distinct tags keep the two streams from matching
#: each other while FIFO ordering disambiguates successive rounds.
REQUEST_TAG = 7_101
REPLY_TAG = 7_102


def sendrecv(
    comm: Comm, payload: Any, dest: int, source: int = ANY_SOURCE, tag: int = 0
) -> Generator:
    """Simultaneous send+receive (deadlock-free by construction)."""
    req = yield comm.isend(payload, dest, tag)
    data = yield comm.recv(source, tag)
    yield comm.wait(req)
    return data


def ring_shift(comm: Comm, payload: Any, shift: int = 1, tag: int = 0) -> Generator:
    """Pass ``payload`` ``shift`` ranks to the right; receive from the left."""
    if comm.size == 1:
        return payload
    dest = (comm.rank + shift) % comm.size
    source = (comm.rank - shift) % comm.size
    data = yield from sendrecv(comm, payload, dest, source, tag)
    return data


def ring_allgather(comm: Comm, payload: Any, tag: int = 1_000) -> Generator:
    """Ring allgather: size-1 shifts, each forwarding the newest block.

    Returns the list of every rank's payload in rank order — the same
    contract as ``comm.allgather`` but executed message by message.
    """
    size, rank = comm.size, comm.rank
    blocks: list[Any] = [None] * size
    blocks[rank] = payload
    current = (rank, payload)
    for step in range(size - 1):
        current = yield from sendrecv(
            comm, current, (rank + 1) % size, (rank - 1) % size, tag + step
        )
        blocks[current[0]] = current[1]
    return blocks


def binomial_bcast(comm: Comm, payload: Any, root: int = 0, tag: int = 2_000) -> Generator:
    """Binomial-tree broadcast: log2(P) rounds of doubling senders."""
    size, rank = comm.size, comm.rank
    rel = (rank - root) % size
    data = payload if rank == root else None
    mask = 1
    while mask < size:
        if rel < mask:
            partner = rel | mask
            if partner < size:
                yield comm.send(data, dest=(partner + root) % size, tag=tag)
        elif rel < 2 * mask:
            data = yield comm.recv(source=((rel ^ mask) + root) % size, tag=tag)
        mask <<= 1
    return data


def batched_request_reply(
    comm: Comm,
    requests_by_peer: list[Any],
    serve: Callable[[int, Any], Any],
    overlap: Generator | None = None,
    tag: int = REQUEST_TAG,
    sparse: bool | None = None,
) -> Generator:
    """One nonblocking round of batched request/reply with overlap.

    The latency-hiding primitive behind the HOT traversal: every rank
    simultaneously acts as a *client* (sending one coalesced request
    batch per peer) and a *server* (answering the batches that arrive
    from its peers), with an optional ``overlap`` generator — typically
    useful local computation — running while the requests are in
    flight.

    Parameters
    ----------
    requests_by_peer:
        Length-``comm.size`` list; entry ``p`` is the request batch for
        rank ``p`` (ignored at index ``comm.rank``).  In the dense
        exchange, empty batches are sent anyway so the pattern stays
        symmetric and deterministic — every rank posts exactly the same
        operations.  In the sparse exchange only truthy batches travel.
    serve:
        ``serve(peer, batch) -> reply`` called once per peer after that
        peer's request batch arrives.  It must not communicate.
    overlap:
        Optional generator delegated to (``yield from``) after all
        sends/receives are posted and before any wait — its compute
        charges fill the time the requests spend on the wire.
    tag:
        Base tag; requests use ``tag`` and replies ``tag + 1``.
    sparse:
        ``False`` runs the classic dense round: every rank exchanges
        with every peer, empty batches included — O(P²) messages, fine
        at the paper's machine size, and the behavior all existing
        traces were recorded against.  ``True`` first agrees on the
        active pairs with one alltoall of flags, then posts messages
        only where a batch actually travels — O(active pairs), the
        difference between minutes and hours of simulation at P = 2560
        when most batches are empty.  ``None`` (default) selects by
        group size: dense at or below :data:`FLAT_COLLECTIVE_MAX`
        ranks (preserving the existing goldens), sparse above.

    Returns
    -------
    (replies, overlap_result):
        ``replies`` is a length-``comm.size`` list with peer ``p``'s
        reply at index ``p`` (``None`` at ``comm.rank``, and in the
        sparse exchange also at peers we sent no batch to);
        ``overlap_result`` is the ``overlap`` generator's return value
        (``None`` when no generator was given).

    Must be called collectively: each rank participates in every round
    (callers typically decide how many rounds to run with an allreduce
    on the number of outstanding requests).
    """
    size, rank = comm.size, comm.rank
    if len(requests_by_peer) != size:
        raise ValueError("one request batch per peer rank required")
    peers = [p for p in range(size) if p != rank]
    if sparse is None:
        sparse = size > FLAT_COLLECTIVE_MAX
    if sparse:
        # One flag per destination; after the alltoall every rank knows
        # exactly which peers will send it a request batch, so both
        # message directions have a fixed, deterministic schedule.
        flags = [1 if p != rank and requests_by_peer[p] else 0 for p in range(size)]
        incoming = yield comm.alltoall(flags)
        senders = [p for p in peers if incoming[p]]
        targets = [p for p in peers if flags[p]]
    else:
        senders = targets = peers

    # Post all receives first (requests and replies), then launch the
    # request batches: from this point every message of the round is in
    # flight and the overlap work runs concurrently with the network.
    req_in = []
    for p in senders:
        r = yield comm.irecv(source=p, tag=tag)
        req_in.append(r)
    rep_in = []
    for p in targets:
        r = yield comm.irecv(source=p, tag=tag + 1)
        rep_in.append(r)
    out = []
    for p in targets:
        r = yield comm.isend(requests_by_peer[p], dest=p, tag=tag)
        out.append(r)

    overlap_result = None
    if overlap is not None:
        overlap_result = yield from overlap

    batches = yield comm.waitall(req_in)
    for p, batch in zip(senders, batches):
        r = yield comm.isend(serve(p, batch), dest=p, tag=tag + 1)
        out.append(r)

    replies: list[Any] = [None] * size
    answers = yield comm.waitall(rep_in)
    for p, answer in zip(targets, answers):
        replies[p] = answer
    yield comm.waitall(out)
    return replies, overlap_result


def pairwise_alltoall(comm: Comm, blocks: list[Any], tag: int = 3_000) -> Generator:
    """Pairwise-exchange alltoall: P-1 rounds of XOR/offset partners."""
    size, rank = comm.size, comm.rank
    if len(blocks) != size:
        raise ValueError("one block per destination rank required")
    out: list[Any] = [None] * size
    out[rank] = blocks[rank]
    for step in range(1, size):
        dest = (rank + step) % size
        source = (rank - step) % size
        received = yield from sendrecv(comm, blocks[dest], dest, source, tag + step)
        out[source] = received
    return out


# -- tree collectives ---------------------------------------------------
#
# All tree collectives are *collective calls*: every rank of the comm
# must enter them the same number of times, like the engine primitives.
# Protocol messages carry ``(payload, nbytes)`` pairs and pass the
# running size to ``comm.send(..., nbytes=...)`` explicitly, so the
# cost accounting stays exact while the recursive wire-size walk over
# ever-growing block dictionaries — O(P^2) entries across a gather —
# is never performed.

#: Base tags of the tree-collective message streams (distinct from the
#: classic patterns at 1000/2000/3000 and the request/reply pair at
#: 7101/7102; FIFO ordering disambiguates successive calls).
TREE_GATHER_TAG = 5_100
TREE_REDUCE_TAG = 5_150
TREE_ALLREDUCE_TAG = 5_200
TREE_BCAST_TAG = 5_250
TREE_ALLGATHER_TAG = 5_300
TREE_SCATTER_TAG = 5_400
TREE_BARRIER_TAG = 5_500

#: Per-entry framing overhead charged on tree protocol messages.
_FRAME_NBYTES = 16


def tree_gather(comm: Comm, payload: Any, root: int = 0,
                tag: int = TREE_GATHER_TAG) -> Generator:
    """Binomial-tree gather: log2(P) depth, contiguous block merging.

    Ranks fold their payload dictionaries up a binomial tree rooted at
    ``root``; the root returns the payloads **in absolute rank order**
    (the ``comm.gather`` contract), everyone else returns ``None``.
    """
    size, rank = comm.size, comm.rank
    rel = (rank - root) % size
    blocks: dict[int, Any] = {rel: payload}
    nbytes = payload_nbytes(payload)
    mask = 1
    while mask < size:
        if rel & mask:
            parent = ((rel ^ mask) + root) % size
            yield comm.send((blocks, nbytes), dest=parent, tag=tag,
                            nbytes=nbytes + _FRAME_NBYTES)
            return None
        child = rel | mask
        if child < size:
            got, got_nb = yield comm.recv(source=(child + root) % size, tag=tag)
            blocks.update(got)
            nbytes += got_nb
        mask <<= 1
    return [blocks[(r - root) % size] for r in range(size)]


def tree_reduce(comm: Comm, payload: Any, root: int = 0, op: Callable = SUM,
                tag: int = TREE_REDUCE_TAG) -> Generator:
    """Binomial-tree reduction, bit-identical to ``comm.reduce``.

    Payloads are *gathered* up the tree and folded left-to-right in
    rank order at the root — never partially combined at interior
    nodes — so floating-point results match the flat collective
    exactly, not just to rounding.  Root gets the folded value,
    everyone else ``None``.
    """
    gathered = yield from tree_gather(comm, payload, root=root, tag=tag)
    if gathered is None:
        return None
    return _fold(op, gathered)


def tree_bcast(comm: Comm, payload: Any, root: int = 0,
               tag: int = TREE_BCAST_TAG, nbytes: int | None = None) -> Generator:
    """Binomial-tree broadcast with sized protocol messages.

    Same round structure as :func:`binomial_bcast`, but the payload's
    wire size is computed once at the root and forwarded with the
    message, so broadcasting a P-entry list costs O(P) size accounting
    instead of O(P^2).  Every rank returns the same payload object.
    """
    size, rank = comm.size, comm.rank
    rel = (rank - root) % size
    if rank == root:
        data = payload
        nb = payload_nbytes(payload) if nbytes is None else int(nbytes)
    else:
        data, nb = None, 0
    mask = 1
    while mask < size:
        if rel < mask:
            partner = rel | mask
            if partner < size:
                yield comm.send((data, nb), dest=(partner + root) % size,
                                tag=tag, nbytes=nb + _FRAME_NBYTES)
        elif rel < 2 * mask:
            data, nb = yield comm.recv(source=((rel ^ mask) + root) % size, tag=tag)
        mask <<= 1
    return data


def tree_allreduce(comm: Comm, payload: Any, op: Callable = SUM,
                   tag: int = TREE_ALLREDUCE_TAG) -> Generator:
    """Reduce-to-root-0 then broadcast: bit-identical to ``comm.allreduce``.

    Like the flat collective, every rank receives the *same* folded
    object (payloads travel by reference inside the simulator).
    """
    folded = yield from tree_reduce(comm, payload, root=0, op=op, tag=tag)
    result = yield from tree_bcast(comm, folded, root=0, tag=tag + 1)
    return result


def tree_allgather(comm: Comm, payload: Any,
                   tag: int = TREE_ALLGATHER_TAG) -> Generator:
    """Allgather with O(log P) depth; matches ``comm.allgather``.

    Power-of-two groups use recursive doubling (each round exchanges
    the accumulated block dictionary with the rank ``2^k`` away);
    other sizes gather to rank 0 and broadcast.  Every rank returns a
    *fresh* list in rank order, like the flat collective.
    """
    size, rank = comm.size, comm.rank
    if size & (size - 1) == 0:
        blocks: dict[int, Any] = {rank: payload}
        nb = payload_nbytes(payload)
        mask, step = 1, 0
        while mask < size:
            partner = rank ^ mask
            # Snapshot the dict before sending: payloads travel by
            # reference, and this rank keeps mutating its own copy.
            req = yield comm.isend((dict(blocks), nb), partner, tag + step,
                                   nbytes=nb + _FRAME_NBYTES)
            got, got_nb = yield comm.recv(source=partner, tag=tag + step)
            yield comm.wait(req)
            blocks.update(got)
            nb += got_nb
            mask <<= 1
            step += 1
        return [blocks[r] for r in range(size)]
    gathered = yield from tree_gather(comm, payload, root=0, tag=tag)
    everything = yield from tree_bcast(comm, gathered, root=0, tag=tag + 64)
    return list(everything)


def tree_scatter(comm: Comm, items: "list[Any] | None", root: int = 0,
                 tag: int = TREE_SCATTER_TAG) -> Generator:
    """Binomial-tree scatter; matches ``comm.scatter`` (same objects).

    The root splits its item list into contiguous relative-rank block
    ranges and sends each subtree its half, halving at every level;
    each rank ends with exactly its own item.
    """
    size, rank = comm.size, comm.rank
    rel = (rank - root) % size
    if rank == root:
        if items is None or len(items) != size:
            raise ValueError("scatter root must supply one item per rank")
        blocks = {i: items[(i + root) % size] for i in range(size)}
        sizes = {i: payload_nbytes(blocks[i]) for i in range(size)}
        top = 1
        while top < size:
            top <<= 1
    else:
        b = rel & -rel  # lowest set bit: the level this rank receives at
        parent = ((rel ^ b) + root) % size
        blocks, sizes = yield comm.recv(source=parent, tag=tag)
        top = b
    mask = top >> 1
    while mask:
        child = rel | mask
        if child != rel and child < size:
            span = range(child, min(child + mask, size))
            sub = {i: blocks.pop(i) for i in span}
            sub_sizes = {i: sizes.pop(i) for i in span}
            nb = sum(sub_sizes.values())
            yield comm.send((sub, sub_sizes), dest=(child + root) % size,
                            tag=tag, nbytes=nb + _FRAME_NBYTES * len(sub))
        mask >>= 1
    return blocks[rel]


def tree_barrier(comm: Comm, tag: int = TREE_BARRIER_TAG) -> Generator:
    """Dissemination barrier: ceil(log2(P)) rounds, any group size.

    Round ``k`` exchanges a token with the ranks ``2^k`` away in both
    directions; after the last round every rank transitively heard
    from every other, which is exactly the barrier guarantee.
    """
    size, rank = comm.size, comm.rank
    mask, step = 1, 0
    while mask < size:
        dest = (rank + mask) % size
        source = (rank - mask) % size
        yield from sendrecv(comm, None, dest, source, tag + step)
        mask <<= 1
        step += 1
    return None


# -- automatic algorithm selection --------------------------------------

def _choose(algorithm: str, size: int, threshold: int | None) -> str:
    if algorithm not in ("auto", "flat", "tree"):
        raise ValueError(
            f"algorithm must be 'auto', 'flat', or 'tree', got {algorithm!r}"
        )
    if algorithm != "auto":
        return algorithm
    limit = FLAT_COLLECTIVE_MAX if threshold is None else int(threshold)
    return "flat" if size <= limit else "tree"


def allreduce(comm: Comm, payload: Any, op: Callable = SUM, *,
              algorithm: str = "auto", threshold: int | None = None) -> Generator:
    """Size-selected allreduce: flat primitive small, tree large.

    Bit-identical results either way (see :func:`tree_allreduce`);
    ``threshold`` overrides :data:`FLAT_COLLECTIVE_MAX` for this call.
    """
    if _choose(algorithm, comm.size, threshold) == "flat":
        result = yield comm.allreduce(payload, op=op)
    else:
        result = yield from tree_allreduce(comm, payload, op=op)
    return result


def reduce(comm: Comm, payload: Any, root: int = 0, op: Callable = SUM, *,
           algorithm: str = "auto", threshold: int | None = None) -> Generator:
    """Size-selected reduce-to-root (bit-identical to ``comm.reduce``)."""
    if _choose(algorithm, comm.size, threshold) == "flat":
        result = yield comm.reduce(payload, root=root, op=op)
    else:
        result = yield from tree_reduce(comm, payload, root=root, op=op)
    return result


def bcast(comm: Comm, payload: Any, root: int = 0, *,
          algorithm: str = "auto", threshold: int | None = None) -> Generator:
    """Size-selected broadcast (same object delivered to every rank)."""
    if _choose(algorithm, comm.size, threshold) == "flat":
        result = yield comm.bcast(payload, root=root)
    else:
        result = yield from tree_bcast(comm, payload, root=root)
    return result


def gather(comm: Comm, payload: Any, root: int = 0, *,
           algorithm: str = "auto", threshold: int | None = None) -> Generator:
    """Size-selected gather-to-root (rank-ordered list at the root)."""
    if _choose(algorithm, comm.size, threshold) == "flat":
        result = yield comm.gather(payload, root=root)
    else:
        result = yield from tree_gather(comm, payload, root=root)
    return result


def allgather(comm: Comm, payload: Any, *, nbytes: int | None = None,
              algorithm: str = "auto", threshold: int | None = None) -> Generator:
    """Size-selected allgather (fresh rank-ordered list on every rank).

    ``nbytes`` overrides the flat primitive's wire-size walk; the tree
    path sizes its own protocol messages incrementally.
    """
    if _choose(algorithm, comm.size, threshold) == "flat":
        result = yield comm.allgather(payload, nbytes=nbytes)
    else:
        result = yield from tree_allgather(comm, payload)
    return result


def scatter(comm: Comm, items: "list[Any] | None", root: int = 0, *,
            algorithm: str = "auto", threshold: int | None = None) -> Generator:
    """Size-selected scatter (each rank gets exactly its own item)."""
    if _choose(algorithm, comm.size, threshold) == "flat":
        result = yield comm.scatter(items, root=root)
    else:
        result = yield from tree_scatter(comm, items, root=root)
    return result


def barrier(comm: Comm, *, algorithm: str = "auto",
            threshold: int | None = None) -> Generator:
    """Size-selected barrier (flat primitive vs dissemination rounds)."""
    if _choose(algorithm, comm.size, threshold) == "flat":
        yield comm.barrier()
    else:
        yield from tree_barrier(comm)
    return None
