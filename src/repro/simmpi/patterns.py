"""Composite communication patterns built from SimMPI point-to-point.

The engine provides collectives as primitives (cost-modeled
analytically); this module provides the same operations *composed from
p2p messages*, as real MPI implementations do internally.  They serve
three purposes: richer building blocks for rank programs (``sendrecv``,
halo exchanges), cross-checks that the analytic collective cost model
is in the right neighborhood of an explicit algorithm, and executable
documentation of the classic algorithms (binomial-tree broadcast,
ring allgather, pairwise-exchange alltoall).

All are generator functions to be delegated with ``yield from`` inside
a rank program::

    data = yield from patterns.sendrecv(comm, my_block, dest, source)
    everything = yield from patterns.ring_allgather(comm, my_block)
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from .api import ANY_SOURCE, Comm

__all__ = [
    "sendrecv",
    "ring_shift",
    "ring_allgather",
    "binomial_bcast",
    "pairwise_alltoall",
    "batched_request_reply",
]

#: Default tags of the :func:`batched_request_reply` message streams.
#: Requests and replies between the same pair of ranks are in flight
#: simultaneously; distinct tags keep the two streams from matching
#: each other while FIFO ordering disambiguates successive rounds.
REQUEST_TAG = 7_101
REPLY_TAG = 7_102


def sendrecv(
    comm: Comm, payload: Any, dest: int, source: int = ANY_SOURCE, tag: int = 0
) -> Generator:
    """Simultaneous send+receive (deadlock-free by construction)."""
    req = yield comm.isend(payload, dest, tag)
    data = yield comm.recv(source, tag)
    yield comm.wait(req)
    return data


def ring_shift(comm: Comm, payload: Any, shift: int = 1, tag: int = 0) -> Generator:
    """Pass ``payload`` ``shift`` ranks to the right; receive from the left."""
    if comm.size == 1:
        return payload
    dest = (comm.rank + shift) % comm.size
    source = (comm.rank - shift) % comm.size
    data = yield from sendrecv(comm, payload, dest, source, tag)
    return data


def ring_allgather(comm: Comm, payload: Any, tag: int = 1_000) -> Generator:
    """Ring allgather: size-1 shifts, each forwarding the newest block.

    Returns the list of every rank's payload in rank order — the same
    contract as ``comm.allgather`` but executed message by message.
    """
    size, rank = comm.size, comm.rank
    blocks: list[Any] = [None] * size
    blocks[rank] = payload
    current = (rank, payload)
    for step in range(size - 1):
        current = yield from sendrecv(
            comm, current, (rank + 1) % size, (rank - 1) % size, tag + step
        )
        blocks[current[0]] = current[1]
    return blocks


def binomial_bcast(comm: Comm, payload: Any, root: int = 0, tag: int = 2_000) -> Generator:
    """Binomial-tree broadcast: log2(P) rounds of doubling senders."""
    size, rank = comm.size, comm.rank
    rel = (rank - root) % size
    data = payload if rank == root else None
    mask = 1
    while mask < size:
        if rel < mask:
            partner = rel | mask
            if partner < size:
                yield comm.send(data, dest=(partner + root) % size, tag=tag)
        elif rel < 2 * mask:
            data = yield comm.recv(source=((rel ^ mask) + root) % size, tag=tag)
        mask <<= 1
    return data


def batched_request_reply(
    comm: Comm,
    requests_by_peer: list[Any],
    serve: Callable[[int, Any], Any],
    overlap: Generator | None = None,
    tag: int = REQUEST_TAG,
) -> Generator:
    """One nonblocking round of batched request/reply with overlap.

    The latency-hiding primitive behind the HOT traversal: every rank
    simultaneously acts as a *client* (sending one coalesced request
    batch per peer) and a *server* (answering the batches that arrive
    from its peers), with an optional ``overlap`` generator — typically
    useful local computation — running while the requests are in
    flight.

    Parameters
    ----------
    requests_by_peer:
        Length-``comm.size`` list; entry ``p`` is the request batch for
        rank ``p`` (ignored at index ``comm.rank``).  Empty batches are
        sent anyway so the exchange stays symmetric and deterministic —
        every rank posts exactly the same pattern of operations.
    serve:
        ``serve(peer, batch) -> reply`` called once per peer after that
        peer's request batch arrives.  It must not communicate.
    overlap:
        Optional generator delegated to (``yield from``) after all
        sends/receives are posted and before any wait — its compute
        charges fill the time the requests spend on the wire.
    tag:
        Base tag; requests use ``tag`` and replies ``tag + 1``.

    Returns
    -------
    (replies, overlap_result):
        ``replies`` is a length-``comm.size`` list with peer ``p``'s
        reply at index ``p`` (``None`` at ``comm.rank``);
        ``overlap_result`` is the ``overlap`` generator's return value
        (``None`` when no generator was given).

    Must be called collectively: each rank participates in every round
    (callers typically decide how many rounds to run with an allreduce
    on the number of outstanding requests).
    """
    size, rank = comm.size, comm.rank
    if len(requests_by_peer) != size:
        raise ValueError("one request batch per peer rank required")
    peers = [p for p in range(size) if p != rank]

    # Post all receives first (requests and replies), then launch the
    # request batches: from this point every message of the round is in
    # flight and the overlap work runs concurrently with the network.
    req_in = []
    for p in peers:
        r = yield comm.irecv(source=p, tag=tag)
        req_in.append(r)
    rep_in = []
    for p in peers:
        r = yield comm.irecv(source=p, tag=tag + 1)
        rep_in.append(r)
    out = []
    for p in peers:
        r = yield comm.isend(requests_by_peer[p], dest=p, tag=tag)
        out.append(r)

    overlap_result = None
    if overlap is not None:
        overlap_result = yield from overlap

    batches = yield comm.waitall(req_in)
    for p, batch in zip(peers, batches):
        r = yield comm.isend(serve(p, batch), dest=p, tag=tag + 1)
        out.append(r)

    replies: list[Any] = [None] * size
    answers = yield comm.waitall(rep_in)
    for p, answer in zip(peers, answers):
        replies[p] = answer
    yield comm.waitall(out)
    return replies, overlap_result


def pairwise_alltoall(comm: Comm, blocks: list[Any], tag: int = 3_000) -> Generator:
    """Pairwise-exchange alltoall: P-1 rounds of XOR/offset partners."""
    size, rank = comm.size, comm.rank
    if len(blocks) != size:
        raise ValueError("one block per destination rank required")
    out: list[Any] = [None] * size
    out[rank] = blocks[rank]
    for step in range(1, size):
        dest = (rank + step) % size
        source = (rank - step) % size
        received = yield from sendrecv(comm, blocks[dest], dest, source, tag + step)
        out[source] = received
    return out
