"""Deterministic discrete-event execution of SimMPI programs.

The engine resumes rank generators in global virtual-time order.  Every
operation a rank yields is processed at that rank's current virtual
time; matches between sends and receives, collective completions, and
compute segments all schedule future resume events on a single heap
keyed by ``(time, sequence)``, so the simulation is bit-reproducible
regardless of host scheduling.

Message semantics follow MPI:

* point-to-point matching is FIFO per (source, dest) with tag and
  ``ANY_SOURCE``/``ANY_TAG`` wildcards, non-overtaking;
* sends at or below the cost model's eager threshold complete locally
  (buffered), larger sends complete only when matched (rendezvous);
* collectives match by per-rank call order and must agree in kind
  across the communicator, as the standard requires.

Time accounting: each rank carries its own clock; a resumed rank's
blocked interval is charged to ``blocked_s`` so benches can separate
compute from communication wait, which is exactly the decomposition the
paper's scaling discussions rely on.

Fault injection: an optional :class:`~repro.simmpi.faults.FaultPlan`
schedules §2.1-style failures against the run.  Slow-node and
link-degradation events stretch compute segments and transfers while
active; a node crash aborts the whole job (the 2003 MPI reality) by
raising :class:`~repro.simmpi.faults.RankFailedError` at exactly the
crash's virtual time — unless the doomed rank already finished, in
which case its node dying no longer takes the job down.  Checkpoint /
restart on top of this lives in :mod:`repro.resilience`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from functools import reduce as _fold
from typing import Any, Callable, Generator, Sequence

from ..machine.perfmodel import Workload
from ..obs import NULL, Recorder
from .api import (
    ANY_SOURCE,
    ANY_TAG,
    Alltoall,
    CollectiveOp,
    Comm,
    Compute,
    Elapse,
    Irecv,
    Isend,
    Now,
    Op,
    Probe,
    Recv,
    Request,
    Send,
    Wait,
    Waitall,
)
from .cost import CostModel, ZeroCost
from .faults import FaultPlan, RankFailedError
from .trace import TraceEvent, spans_to_trace

__all__ = [
    "DeadlockError",
    "CollectiveMismatchError",
    "RankFailedError",
    "RankStats",
    "SimResult",
    "Engine",
    "run",
]

#: Heap sentinel marking a scheduled node-crash event.
_CRASH = object()

#: Messages at or below this size complete at the sender immediately
#: (models MPI eager-protocol buffering). Cost models may override via
#: an ``eager_nbytes`` attribute.
DEFAULT_EAGER_NBYTES = 64 * 1024


class DeadlockError(RuntimeError):
    """All ranks blocked with no pending events: a genuine deadlock."""


class CollectiveMismatchError(RuntimeError):
    """Ranks disagreed on the kind of their n-th collective call."""


@dataclass
class RankStats:
    """Per-rank accounting accumulated during the run."""

    compute_s: float = 0.0
    blocked_s: float = 0.0
    bytes_sent: int = 0
    msgs_sent: int = 0
    bytes_received: int = 0
    msgs_received: int = 0


@dataclass
class SimResult:
    """Outcome of a simulation: per-rank clocks, stats, return values.

    ``observer`` is the :class:`~repro.obs.Recorder` that captured the
    run's spans and counters (None when tracing was disabled and no
    external observer was supplied); ``trace`` is the legacy per-rank
    interval view derived from it.
    """

    clocks: list[float]
    stats: list[RankStats]
    returns: list[Any]
    trace: list[TraceEvent] = field(default_factory=list)
    observer: Recorder | None = None

    @property
    def elapsed(self) -> float:
        """Virtual wall-clock of the parallel job (slowest rank)."""
        return max(self.clocks) if self.clocks else 0.0

    @property
    def total_compute_s(self) -> float:
        return sum(s.compute_s for s in self.stats)

    @property
    def total_bytes_sent(self) -> int:
        return sum(s.bytes_sent for s in self.stats)

    def parallel_efficiency(self) -> float:
        """compute-time / (ranks * elapsed): 1.0 means no comm wait."""
        if self.elapsed == 0.0 or not self.clocks:
            return 1.0
        return self.total_compute_s / (len(self.clocks) * self.elapsed)


@dataclass
class _SendRec:
    src: int
    dst: int
    tag: int
    payload: Any
    nbytes: int
    t_posted: float
    seq: int
    request: Request


@dataclass
class _RecvRec:
    dst: int
    source: int
    tag: int
    t_posted: float
    seq: int
    request: Request


@dataclass
class _Waiter:
    rank: int
    requests: tuple[Request, ...]
    t_posted: float
    single: bool


@dataclass
class _RankState:
    gen: Generator
    clock: float = 0.0
    done: bool = False
    blocked_since: float | None = None
    blocked_on: str = ""
    blocked_args: dict[str, Any] | None = None
    return_value: Any = None
    coll_count: int = 0
    stats: RankStats = field(default_factory=RankStats)


class Engine:
    """Runs a set of rank programs to completion under a cost model."""

    def __init__(
        self,
        programs: Sequence[Callable[[Comm], Generator]],
        cost: CostModel | None = None,
        record_trace: bool = True,
        faults: FaultPlan | None = None,
        observer: Recorder | None = None,
    ):
        if not programs:
            raise ValueError("at least one rank program is required")
        self.cost = cost if cost is not None else ZeroCost()
        self.record_trace = record_trace
        self.faults = faults
        if faults is not None:
            faults.validate_ranks(len(programs))
        # Observation: an explicit observer wins; otherwise tracing
        # allocates a private recorder, and disabled runs share the
        # no-op NULL recorder (zero-cost hooks).
        if observer is not None:
            self.observer = observer
        elif record_trace:
            self.observer = Recorder()
        else:
            self.observer = NULL
        self.trace: list[TraceEvent] = []
        self.eager_nbytes = getattr(self.cost, "eager_nbytes", DEFAULT_EAGER_NBYTES)
        self.size = len(programs)
        self._seq = itertools.count()
        self._events: list[tuple[float, int, int, Any]] = []  # (time, seq, rank, value)
        self._ranks: list[_RankState] = []
        self._pending_sends: dict[int, list[_SendRec]] = {i: [] for i in range(self.size)}
        self._pending_recvs: dict[int, list[_RecvRec]] = {i: [] for i in range(self.size)}
        self._waiters: list[_Waiter] = []
        self._collectives: dict[int, dict[int, tuple[CollectiveOp, float]]] = {}
        self.comms = [Comm(rank=i, size=self.size) for i in range(self.size)]
        for i, prog in enumerate(programs):
            gen = prog(self.comms[i])
            if not hasattr(gen, "send") or not hasattr(gen, "throw"):
                raise TypeError(
                    f"rank {i} program did not return a generator; "
                    "SimMPI programs must use 'yield' for every operation"
                )
            self._ranks.append(_RankState(gen=gen))

    # -- scheduling -----------------------------------------------------
    def _schedule(self, time: float, rank: int, value: Any = None) -> None:
        heapq.heappush(self._events, (time, next(self._seq), rank, value))

    def _resume(self, rank: int, time: float, value: Any) -> None:
        state = self._ranks[rank]
        if state.done:
            raise RuntimeError(f"resume of finished rank {rank}")
        if state.blocked_since is not None:
            state.stats.blocked_s += max(time - state.blocked_since, 0.0)
            if time > state.blocked_since:
                why = state.blocked_on
                self.observer.add_span(
                    why or "blocked",
                    state.blocked_since,
                    time,
                    track=rank,
                    cat="collective" if why.startswith("collective") else "blocked",
                    args=state.blocked_args,
                )
            state.blocked_since = None
            state.blocked_on = ""
            state.blocked_args = None
        state.clock = max(state.clock, time)
        try:
            op = state.gen.send(value)
        except StopIteration as stop:
            state.done = True
            state.return_value = stop.value
            return
        self._dispatch(rank, op)

    def _block(self, rank: int, why: str, args: dict[str, Any] | None = None) -> None:
        state = self._ranks[rank]
        state.blocked_since = state.clock
        state.blocked_on = why
        state.blocked_args = dict(args) if args else {}

    # -- operation dispatch ----------------------------------------------
    def _dispatch(self, rank: int, op: Op) -> None:
        state = self._ranks[rank]
        t = state.clock
        if isinstance(op, Compute):
            dt = self.cost.compute_time(rank, Workload(op.flops, op.mem_bytes, op.flop_efficiency))
            if self.faults is not None:
                dt *= self.faults.compute_factor(rank, t)
            state.stats.compute_s += dt
            if dt > 0:
                self.observer.add_span(
                    op.label or "compute", t, t + dt, track=rank, cat="compute"
                )
            self._schedule(t + dt, rank)
        elif isinstance(op, Elapse):
            if op.seconds < 0:
                self._throw(rank, ValueError("cannot elapse negative time"))
                return
            state.stats.compute_s += op.seconds
            if op.seconds > 0:
                self.observer.add_span(
                    op.label or "elapse", t, t + op.seconds, track=rank, cat="compute"
                )
            self._schedule(t + op.seconds, rank)
        elif isinstance(op, Now):
            self._schedule(t, rank, t)
        elif isinstance(op, (Send, Isend)):
            self._post_send(rank, op, t)
        elif isinstance(op, (Recv, Irecv)):
            self._post_recv(rank, op, t)
        elif isinstance(op, Wait):
            self._post_wait(rank, (op.request,), t, single=True)
        elif isinstance(op, Waitall):
            self._post_wait(rank, op.requests, t, single=False)
        elif isinstance(op, Probe):
            self._schedule(t, rank, self._probe(rank, op))
        elif isinstance(op, CollectiveOp):
            self._post_collective(rank, op, t)
        else:
            self._throw(rank, TypeError(f"rank {rank} yielded non-operation {op!r}"))

    def _throw(self, rank: int, exc: Exception) -> None:
        state = self._ranks[rank]
        try:
            state.gen.throw(exc)
        except StopIteration as stop:
            state.done = True
            state.return_value = stop.value
            return
        except Exception:
            raise
        raise RuntimeError(f"rank {rank} swallowed engine exception and kept yielding")

    # -- point to point ---------------------------------------------------
    def _post_send(self, rank: int, op: Send | Isend, t: float) -> None:
        req = Request(rank, "send", next(self._seq))
        rec = _SendRec(rank, op.dest, op.tag, op.payload, op.nbytes, t, req.seq, req)
        self._ranks[rank].stats.bytes_sent += op.nbytes
        self._ranks[rank].stats.msgs_sent += 1
        self.observer.count("simmpi.bytes_sent", op.nbytes)
        self.observer.count("simmpi.msgs_sent")
        eager = op.nbytes <= self.eager_nbytes
        if eager:
            # Buffered: sender's obligation ends after the injection
            # overhead, match or no match.
            inject = self.cost.p2p_time(rank, op.dest, 0)
            if self.faults is not None:
                inject *= self.faults.link_factor(rank, op.dest, t)
            req.complete_time = t + inject
        self._pending_sends[op.dest].append(rec)
        self._try_match(op.dest)
        if isinstance(op, Isend):
            self._schedule(t, rank, req)
        elif req.is_complete:
            self._schedule(req.complete_time, rank)
        else:
            self._block(
                rank,
                f"send to {op.dest} tag {op.tag}",
                {"wait": "send", "peer": op.dest, "tag": op.tag, "seq": req.seq},
            )
            self._waiters.append(_Waiter(rank, (req,), t, single=True))
            self._check_waiters()

    def _post_recv(self, rank: int, op: Recv | Irecv, t: float) -> None:
        req = Request(rank, "recv", next(self._seq))
        rec = _RecvRec(rank, op.source, op.tag, t, req.seq, req)
        self._pending_recvs[rank].append(rec)
        self._try_match(rank)
        if isinstance(op, Irecv):
            self._schedule(t, rank, req)
        elif req.is_complete:
            self._schedule(req.complete_time, rank, req.value)
        else:
            self._block(
                rank,
                f"recv from {op.source} tag {op.tag}",
                {"wait": "recv", "peer": op.source, "tag": op.tag, "seq": req.seq},
            )
            self._waiters.append(_Waiter(rank, (req,), t, single=True))
            self._check_waiters()

    @staticmethod
    def _matches(send: _SendRec, recv: _RecvRec) -> bool:
        if recv.source != ANY_SOURCE and recv.source != send.src:
            return False
        if recv.tag != ANY_TAG and recv.tag != send.tag:
            return False
        return True

    def _try_match(self, dst: int) -> None:
        """Match pending recvs at ``dst`` against pending sends, FIFO."""
        recvs = self._pending_recvs[dst]
        sends = self._pending_sends[dst]
        matched_any = True
        while matched_any:
            matched_any = False
            for r_idx, recv in enumerate(recvs):
                for s_idx, send in enumerate(sends):
                    if self._matches(send, recv):
                        recvs.pop(r_idx)
                        sends.pop(s_idx)
                        self._complete_transfer(send, recv)
                        matched_any = True
                        break
                if matched_any:
                    break
        if matched_any or True:
            self._check_waiters()

    def _complete_transfer(self, send: _SendRec, recv: _RecvRec) -> None:
        start = max(send.t_posted, recv.t_posted)
        transfer = self.cost.p2p_time(send.src, recv.dst, send.nbytes)
        if self.faults is not None:
            transfer *= self.faults.link_factor(send.src, recv.dst, start)
        t_done = start + transfer
        recv.request.complete_time = t_done
        recv.request.value = send.payload
        # Matching metadata for the wait-state analyzer: which peer, at
        # what post time, satisfied this operation (the happens-before
        # edge of the message).  ``t_peer`` is always the *other* side's
        # post time, so a late peer reads as t_peer > the wait's start.
        recv.request.match = {
            "req_kind": "recv", "peer": send.src, "tag": send.tag,
            "seq": send.seq, "nbytes": send.nbytes,
            "t_peer": send.t_posted, "t_self": recv.t_posted,
        }
        send.request.match = {
            "req_kind": "send", "peer": recv.dst, "tag": send.tag,
            "seq": send.seq, "nbytes": send.nbytes,
            "t_peer": recv.t_posted, "t_self": send.t_posted,
        }
        stats = self._ranks[recv.dst].stats
        stats.bytes_received += send.nbytes
        stats.msgs_received += 1
        self.observer.count("simmpi.bytes_received", send.nbytes)
        self.observer.count("simmpi.msgs_received")
        if not send.request.is_complete:
            # Rendezvous: sender is released when the transfer lands.
            send.request.complete_time = t_done

    def _probe(self, rank: int, op: Probe) -> tuple[int, int, int] | None:
        candidates = [
            s
            for s in self._pending_sends[rank]
            if (op.source == ANY_SOURCE or op.source == s.src)
            and (op.tag == ANY_TAG or op.tag == s.tag)
        ]
        if not candidates:
            return None
        first = min(candidates, key=lambda s: (s.t_posted, s.seq))
        return (first.src, first.tag, first.nbytes)

    # -- waiting ----------------------------------------------------------
    def _post_wait(self, rank: int, requests: tuple[Request, ...], t: float, single: bool) -> None:
        for req in requests:
            if not isinstance(req, Request):
                self._throw(rank, TypeError(f"wait on non-request {req!r}"))
                return
        waiter = _Waiter(rank, requests, t, single)
        self._waiters.append(waiter)
        if not self._fire_waiter_if_ready(waiter):
            self._block(
                rank,
                f"wait on {len(requests)} request(s)",
                {"wait": "wait", "n_reqs": len(requests)},
            )

    def _fire_waiter_if_ready(self, waiter: _Waiter) -> bool:
        if any(not r.is_complete for r in waiter.requests):
            return False
        t_done = max([waiter.t_posted] + [r.complete_time for r in waiter.requests])
        state = self._ranks[waiter.rank]
        if state.blocked_since is not None and state.blocked_args is not None:
            # The binding request — the one completing last — decides
            # how the blocked span is classified downstream.
            binding = max(waiter.requests, key=lambda r: (r.complete_time, r.seq))
            if binding.match is not None:
                state.blocked_args.update(binding.match)
        if waiter.single:
            value = waiter.requests[0].value
        else:
            value = [r.value for r in waiter.requests]
        self._waiters.remove(waiter)
        self._schedule(t_done, waiter.rank, value)
        return True

    def _check_waiters(self) -> None:
        for waiter in list(self._waiters):
            if waiter in self._waiters:
                self._fire_waiter_if_ready(waiter)

    # -- collectives -------------------------------------------------------
    def _post_collective(self, rank: int, op: CollectiveOp, t: float) -> None:
        state = self._ranks[rank]
        state.stats.bytes_sent += op.nbytes
        state.stats.msgs_sent += 1
        self.observer.count("simmpi.bytes_sent", op.nbytes)
        self.observer.count("simmpi.collective_calls")
        idx = state.coll_count
        state.coll_count += 1
        group = self._collectives.setdefault(idx, {})
        group[rank] = (op, t)
        self._block(
            rank,
            f"collective #{idx} ({op.kind})",
            {"wait": "collective", "coll": idx, "kind": op.kind, "t_arrive": t},
        )
        if len(group) == self.size:
            self._finish_collective(idx, group)

    def _finish_collective(self, idx: int, group: dict[int, tuple[CollectiveOp, float]]) -> None:
        kinds = {op.kind for op, _ in group.values()}
        if len(kinds) != 1:
            raise CollectiveMismatchError(
                f"collective #{idx}: ranks disagree on operation kind: {sorted(kinds)}"
            )
        kind = kinds.pop()
        arrivals = [t for _, t in group.values()]
        nbytes = max(op.nbytes for op, _ in group.values())
        t_last = max(arrivals)
        last_rank = max(group, key=lambda r: (group[r][1], r))
        t_op = self.cost.collective_time(kind, self.size, nbytes)
        t_done = t_last + t_op
        # Stamp the synchronization structure onto every member's
        # pending blocked span: who arrived last, and how much of the
        # wait is the operation itself vs. waiting for stragglers.
        for rank in group:
            st = self._ranks[rank]
            if st.blocked_since is not None and st.blocked_args is not None:
                st.blocked_args.update(
                    {"t_last": t_last, "last_rank": last_rank, "t_op": t_op}
                )
        values = self._collective_values(kind, group)
        del self._collectives[idx]
        for rank in range(self.size):
            self._schedule(t_done, rank, values[rank])

    def _collective_values(self, kind: str, group: dict[int, tuple[CollectiveOp, float]]) -> list[Any]:
        ops = {rank: op for rank, (op, _) in group.items()}
        size = self.size
        if kind == "barrier":
            return [None] * size
        if kind == "bcast":
            root = ops[0].root
            payload = ops[root].payload
            return [payload] * size
        if kind in ("reduce", "allreduce"):
            payloads = [ops[r].payload for r in range(size)]
            folded = _fold(ops[0].op, payloads)
            if kind == "allreduce":
                return [folded] * size
            root = ops[0].root
            return [folded if r == root else None for r in range(size)]
        if kind in ("gather", "allgather"):
            everything = [ops[r].payload for r in range(size)]
            if kind == "allgather":
                return [list(everything) for _ in range(size)]
            root = ops[0].root
            return [list(everything) if r == root else None for r in range(size)]
        if kind == "scatter":
            root = ops[0].root
            items = ops[root].payload
            return [items[r] for r in range(size)]
        if kind == "alltoall":
            return [[ops[src].payload[dst] for src in range(size)] for dst in range(size)]
        raise ValueError(f"unknown collective kind {kind!r}")

    # -- main loop ----------------------------------------------------------
    def run(self, max_events: int = 50_000_000) -> SimResult:
        if self.faults is not None:
            # Armed before the t=0 resumes so a crash sorts ahead of any
            # rank activity at the same virtual time.
            for crash in self.faults.crashes():
                self._schedule(crash.time, crash.rank, _CRASH)
        for rank in range(self.size):
            self._schedule(0.0, rank)
        processed = 0
        while self._events:
            time, _, rank, value = heapq.heappop(self._events)
            if value is _CRASH:
                if self._ranks[rank].done:
                    continue  # node died after its rank finished: job survives
                self.observer.add_span("node crash", time, time, track=rank, cat="failed")
                if self.record_trace:
                    self.trace.append(TraceEvent(rank, time, time, "failed", "node crash"))
                raise RankFailedError(rank, time)
            if self._ranks[rank].done:
                continue
            self._resume(rank, time, value)
            processed += 1
            if processed > max_events:
                raise RuntimeError(f"exceeded {max_events} events; runaway simulation?")
        unfinished = [i for i, s in enumerate(self._ranks) if not s.done]
        if unfinished:
            detail = ", ".join(
                f"rank {i}: {self._ranks[i].blocked_on or 'never blocked'}" for i in unfinished
            )
            raise DeadlockError(f"simulation deadlocked with {len(unfinished)} rank(s) blocked ({detail})")
        if self.record_trace:
            self.trace = spans_to_trace(list(self.observer.spans))
        return SimResult(
            clocks=[s.clock for s in self._ranks],
            stats=[s.stats for s in self._ranks],
            returns=[s.return_value for s in self._ranks],
            trace=self.trace,
            observer=self.observer if self.observer is not NULL else None,
        )


def run(
    program: Callable[[Comm], Generator] | Sequence[Callable[[Comm], Generator]],
    n_ranks: int | None = None,
    cost: CostModel | None = None,
    max_events: int = 50_000_000,
    faults: FaultPlan | None = None,
    observer: Recorder | None = None,
) -> SimResult:
    """Convenience front door: run one program SPMD-style or a list MPMD-style.

    ``run(worker, 8)`` launches eight ranks of ``worker``;
    ``run([master, worker, worker])`` launches heterogeneous programs.
    With ``faults``, the run executes under an injected failure schedule
    and may raise :class:`~repro.simmpi.faults.RankFailedError`.
    With ``observer``, the engine records its spans and counters into
    the given :class:`~repro.obs.Recorder` instead of a private one.
    """
    if callable(program):
        if n_ranks is None or n_ranks <= 0:
            raise ValueError("SPMD launch requires a positive n_ranks")
        programs: Sequence = [program] * n_ranks
    else:
        programs = list(program)
        if n_ranks is not None and n_ranks != len(programs):
            raise ValueError("n_ranks disagrees with the number of programs")
    return Engine(programs, cost, faults=faults, observer=observer).run(max_events=max_events)
