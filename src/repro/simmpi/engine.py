"""Deterministic discrete-event execution of SimMPI programs.

The engine resumes rank generators in global virtual-time order.  Every
operation a rank yields is processed at that rank's current virtual
time; matches between sends and receives, collective completions, and
compute segments all schedule future resume events on a single heap
keyed by ``(time, sequence)``, so the simulation is bit-reproducible
regardless of host scheduling.

Message semantics follow MPI:

* point-to-point matching is FIFO per (source, dest) with tag and
  ``ANY_SOURCE``/``ANY_TAG`` wildcards, non-overtaking;
* sends at or below the cost model's eager threshold complete locally
  (buffered), larger sends complete only when matched (rendezvous);
* collectives match by per-rank call order and must agree in kind
  across the communicator, as the standard requires.

Scale: the engine is built to make 1000+-rank runs routine.  Pending
point-to-point operations are indexed per destination by ``(source,
tag)`` so matching a post is O(1) amortized instead of a scan over all
pending operations; waiters register on the requests they wait for and
are woken by completion, never polled; collectives rendezvous
incrementally (arrival count, running straggler max) instead of
re-deriving group state per arrival; and all per-operation records use
``__slots__``.  ``trace_sample=`` decimates per-rank span emission so
observability cost stays bounded at large P (see :class:`Engine`).

Time accounting: each rank carries its own clock; a resumed rank's
blocked interval is charged to ``blocked_s`` so benches can separate
compute from communication wait, which is exactly the decomposition the
paper's scaling discussions rely on.

Fault injection: an optional :class:`~repro.simmpi.faults.FaultPlan`
schedules §2.1-style failures against the run.  Slow-node and
link-degradation events stretch compute segments and transfers while
active; a node crash aborts the whole job (the 2003 MPI reality) by
raising :class:`~repro.simmpi.faults.RankFailedError` at exactly the
crash's virtual time — unless the doomed rank already finished, in
which case its node dying no longer takes the job down.  Checkpoint /
restart on top of this lives in :mod:`repro.resilience`.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from functools import reduce as _fold
from typing import Any, Callable, Generator, Sequence

from ..machine.perfmodel import Workload
from ..obs import NULL, Recorder
from ..obs.wallclock import bucket as _wall_bucket
from .api import (
    ANY_SOURCE,
    ANY_TAG,
    CollectiveOp,
    Comm,
    Compute,
    Elapse,
    Irecv,
    Isend,
    Now,
    Op,
    Probe,
    Recv,
    Request,
    Send,
    Wait,
    Waitall,
)
from .cost import CostModel, ZeroCost
from .faults import FaultPlan, RankFailedError
from .trace import TraceEvent, spans_to_trace

__all__ = [
    "DeadlockError",
    "CollectiveMismatchError",
    "EventBudgetError",
    "RankFailedError",
    "RankStats",
    "SimResult",
    "Engine",
    "run",
]

#: Heap sentinel marking a scheduled node-crash event.
_CRASH = object()

#: Messages at or below this size complete at the sender immediately
#: (models MPI eager-protocol buffering). Cost models may override via
#: an ``eager_nbytes`` attribute.
DEFAULT_EAGER_NBYTES = 64 * 1024

#: Historical flat event cap; the default budget never drops below it
#: so pre-existing callers keep their headroom.
DEFAULT_MAX_EVENTS = 50_000_000

#: Default per-rank slice of the event budget.  The effective default
#: cap is ``max(DEFAULT_MAX_EVENTS, DEFAULT_EVENTS_PER_RANK * size)``:
#: scale-aware, and never stricter than the old flat 50 M.
DEFAULT_EVENTS_PER_RANK = 250_000


class DeadlockError(RuntimeError):
    """All ranks blocked with no pending events: a genuine deadlock."""


class CollectiveMismatchError(RuntimeError):
    """Ranks disagreed on the kind of their n-th collective call."""


class EventBudgetError(RuntimeError):
    """The event budget was exhausted before the simulation finished.

    Carries a ``diagnostic`` dict naming the hottest ranks by resume
    count and a histogram of what every rank was doing when the budget
    ran out — the first things to look at when deciding whether the
    run is a runaway or just bigger than the cap.
    """

    def __init__(self, message: str, diagnostic: dict[str, Any] | None = None):
        super().__init__(message)
        self.diagnostic = diagnostic or {}


@dataclass(slots=True)
class RankStats:
    """Per-rank accounting accumulated during the run."""

    compute_s: float = 0.0
    blocked_s: float = 0.0
    bytes_sent: int = 0
    msgs_sent: int = 0
    bytes_received: int = 0
    msgs_received: int = 0


@dataclass
class SimResult:
    """Outcome of a simulation: per-rank clocks, stats, return values.

    ``observer`` is the :class:`~repro.obs.Recorder` that captured the
    run's spans and counters (None when tracing was disabled and no
    external observer was supplied); ``trace`` is the legacy per-rank
    interval view derived from it.  ``trace_sample`` records the span
    decimation the engine ran with (1.0 = every rank traced).
    """

    clocks: list[float]
    stats: list[RankStats]
    returns: list[Any]
    trace: list[TraceEvent] = field(default_factory=list)
    observer: Recorder | None = None
    trace_sample: float = 1.0

    @property
    def elapsed(self) -> float:
        """Virtual wall-clock of the parallel job (slowest rank)."""
        return max(self.clocks) if self.clocks else 0.0

    @property
    def total_compute_s(self) -> float:
        return sum(s.compute_s for s in self.stats)

    @property
    def total_bytes_sent(self) -> int:
        return sum(s.bytes_sent for s in self.stats)

    def parallel_efficiency(self) -> float:
        """compute-time / (ranks * elapsed): 1.0 means no comm wait."""
        if self.elapsed == 0.0 or not self.clocks:
            return 1.0
        return self.total_compute_s / (len(self.clocks) * self.elapsed)


@dataclass(slots=True)
class _SendRec:
    src: int
    dst: int
    tag: int
    payload: Any
    nbytes: int
    t_posted: float
    seq: int
    request: Request


@dataclass(slots=True)
class _RecvRec:
    dst: int
    source: int
    tag: int
    t_posted: float
    seq: int
    request: Request


class _Waiter:
    """One blocked wait/waitall (or blocking send/recv) with a live
    count of incomplete requests; woken by request completion."""

    __slots__ = ("rank", "requests", "t_posted", "single", "seq", "n_pending")

    def __init__(self, rank: int, requests: tuple[Request, ...], t_posted: float,
                 single: bool, seq: int):
        self.rank = rank
        self.requests = requests
        self.t_posted = t_posted
        self.single = single
        self.seq = seq
        self.n_pending = 0


class _Rendezvous:
    """Incremental per-call-index collective matching state.

    Arrivals fold into a count, a running ``(t_last, last_rank)``
    straggler max, and a running payload-size max, so finishing the
    collective is O(1) bookkeeping per arrival instead of a group-wide
    re-derivation — the piece that used to go O(P²)-ish at high rank
    counts with many in-flight collectives.
    """

    __slots__ = ("kind", "ops", "count", "t_last", "last_rank", "nbytes")

    def __init__(self, size: int):
        self.kind: str | None = None
        self.ops: list[CollectiveOp | None] = [None] * size
        self.count = 0
        self.t_last = float("-inf")
        self.last_rank = -1
        self.nbytes = 0


@dataclass(slots=True)
class _RankState:
    gen: Generator
    clock: float = 0.0
    done: bool = False
    blocked_since: float | None = None
    blocked_on: str = ""
    blocked_args: dict[str, Any] | None = None
    return_value: Any = None
    coll_count: int = 0
    stats: RankStats = field(default_factory=RankStats)


class Engine:
    """Runs a set of rank programs to completion under a cost model.

    ``trace_sample`` decimates per-rank span emission: at 0.25 only
    every 4th rank (0, 4, 8, ...) emits compute/blocked spans, cutting
    observer memory at large P while counters and virtual-time
    accounting stay exact.  1.0 (the default) traces every rank.
    """

    def __init__(
        self,
        programs: Sequence[Callable[[Comm], Generator]],
        cost: CostModel | None = None,
        record_trace: bool = True,
        faults: FaultPlan | None = None,
        observer: Recorder | None = None,
        trace_sample: float = 1.0,
    ):
        if not programs:
            raise ValueError("at least one rank program is required")
        if not 0.0 < trace_sample <= 1.0:
            raise ValueError(f"trace_sample must be in (0, 1], got {trace_sample}")
        self.cost = cost if cost is not None else ZeroCost()
        self.record_trace = record_trace
        self.faults = faults
        if faults is not None:
            faults.validate_ranks(len(programs))
        # Observation: an explicit observer wins; otherwise tracing
        # allocates a private recorder, and disabled runs share the
        # no-op NULL recorder (zero-cost hooks).
        if observer is not None:
            self.observer = observer
        elif record_trace:
            self.observer = Recorder()
        else:
            self.observer = NULL
        self.trace: list[TraceEvent] = []
        self.eager_nbytes = getattr(self.cost, "eager_nbytes", DEFAULT_EAGER_NBYTES)
        self.size = len(programs)
        self.trace_sample = trace_sample
        stride = 1 if trace_sample >= 1.0 else max(1, round(1.0 / trace_sample))
        self._trace_stride = stride
        observing = bool(getattr(self.observer, "enabled", True))
        self._traced = [observing and (i % stride == 0) for i in range(self.size)]
        self._seq = itertools.count()
        self._events: list[tuple[float, int, int, Any]] = []  # (time, seq, rank, value)
        self._ranks: list[_RankState] = []
        # Pending p2p indexes, keyed by destination rank:
        #   sends[dst]: src -> tag -> FIFO of _SendRec
        #   recvs[dst]: (source, tag) incl. wildcards -> FIFO of _RecvRec
        # Each deque is FIFO in post (seq) order, so matching inspects
        # at most a handful of heads instead of scanning every pending
        # operation — the difference between O(1) and O(P) per post
        # during a request storm.
        self._sends: list[dict[int, dict[int, deque[_SendRec]]]] = [
            {} for _ in range(self.size)
        ]
        self._recvs: list[dict[tuple[int, int], deque[_RecvRec]]] = [
            {} for _ in range(self.size)
        ]
        #: Waiters whose last pending request just completed; flushed
        #: (fired in creation order) before control returns to the loop.
        self._ready: list[_Waiter] = []
        self._waiter_seq = itertools.count()
        self._collectives: dict[int, _Rendezvous] = {}
        self._resume_counts = [0] * self.size
        self.comms = [Comm(rank=i, size=self.size) for i in range(self.size)]
        for i, prog in enumerate(programs):
            gen = prog(self.comms[i])
            if not hasattr(gen, "send") or not hasattr(gen, "throw"):
                raise TypeError(
                    f"rank {i} program did not return a generator; "
                    "SimMPI programs must use 'yield' for every operation"
                )
            self._ranks.append(_RankState(gen=gen))

    # -- scheduling -----------------------------------------------------
    def _schedule(self, time: float, rank: int, value: Any = None) -> None:
        heapq.heappush(self._events, (time, next(self._seq), rank, value))

    def _resume(self, rank: int, time: float, value: Any) -> None:
        state = self._ranks[rank]
        if state.done:
            raise RuntimeError(f"resume of finished rank {rank}")
        if state.blocked_since is not None:
            state.stats.blocked_s += max(time - state.blocked_since, 0.0)
            if time > state.blocked_since and self._traced[rank]:
                why = state.blocked_on
                self.observer.add_span(
                    why or "blocked",
                    state.blocked_since,
                    time,
                    track=rank,
                    cat="collective" if why.startswith("collective") else "blocked",
                    args=state.blocked_args,
                )
            state.blocked_since = None
            state.blocked_on = ""
            state.blocked_args = None
        state.clock = max(state.clock, time)
        try:
            op = state.gen.send(value)
        except StopIteration as stop:
            state.done = True
            state.return_value = stop.value
            return
        self._dispatch(rank, op)

    def _block(self, rank: int, why: str, args: dict[str, Any] | None = None) -> None:
        state = self._ranks[rank]
        state.blocked_since = state.clock
        state.blocked_on = why
        # Classification metadata feeds the blocked span; untraced
        # ranks never emit one, so skip building the dict for them.
        state.blocked_args = (dict(args) if args else {}) if self._traced[rank] else None

    # -- operation dispatch ----------------------------------------------
    def _dispatch(self, rank: int, op: Op) -> None:
        state = self._ranks[rank]
        t = state.clock
        if isinstance(op, Compute):
            dt = self.cost.compute_time(rank, Workload(op.flops, op.mem_bytes, op.flop_efficiency))
            if self.faults is not None:
                dt *= self.faults.compute_factor(rank, t)
            state.stats.compute_s += dt
            if dt > 0 and self._traced[rank]:
                self.observer.add_span(
                    op.label or "compute", t, t + dt, track=rank, cat="compute"
                )
            self._schedule(t + dt, rank)
        elif isinstance(op, Elapse):
            if op.seconds < 0:
                self._throw(rank, ValueError("cannot elapse negative time"))
                return
            state.stats.compute_s += op.seconds
            if op.seconds > 0 and self._traced[rank]:
                self.observer.add_span(
                    op.label or "elapse", t, t + op.seconds, track=rank, cat="compute"
                )
            self._schedule(t + op.seconds, rank)
        elif isinstance(op, Now):
            self._schedule(t, rank, t)
        elif isinstance(op, (Send, Isend)):
            with _wall_bucket("comm"):
                self._post_send(rank, op, t)
        elif isinstance(op, (Recv, Irecv)):
            with _wall_bucket("comm"):
                self._post_recv(rank, op, t)
        elif isinstance(op, Wait):
            with _wall_bucket("comm"):
                self._post_wait(rank, (op.request,), t, single=True)
        elif isinstance(op, Waitall):
            with _wall_bucket("comm"):
                self._post_wait(rank, op.requests, t, single=False)
        elif isinstance(op, Probe):
            with _wall_bucket("comm"):
                self._schedule(t, rank, self._probe(rank, op))
        elif isinstance(op, CollectiveOp):
            with _wall_bucket("comm"):
                self._post_collective(rank, op, t)
        else:
            self._throw(rank, TypeError(f"rank {rank} yielded non-operation {op!r}"))

    def _throw(self, rank: int, exc: Exception) -> None:
        state = self._ranks[rank]
        try:
            state.gen.throw(exc)
        except StopIteration as stop:
            state.done = True
            state.return_value = stop.value
            return
        except Exception:
            raise
        raise RuntimeError(f"rank {rank} swallowed engine exception and kept yielding")

    # -- point to point ---------------------------------------------------
    def _post_send(self, rank: int, op: Send | Isend, t: float) -> None:
        req = Request(rank, "send", next(self._seq))
        rec = _SendRec(rank, op.dest, op.tag, op.payload, op.nbytes, t, req.seq, req)
        stats = self._ranks[rank].stats
        stats.bytes_sent += op.nbytes
        stats.msgs_sent += 1
        self.observer.count("simmpi.bytes_sent", op.nbytes)
        self.observer.count("simmpi.msgs_sent")
        if op.nbytes <= self.eager_nbytes:
            # Buffered: sender's obligation ends after the injection
            # overhead, match or no match.
            inject = self.cost.p2p_time(rank, op.dest, 0)
            if self.faults is not None:
                inject *= self.faults.link_factor(rank, op.dest, t)
            req.complete_time = t + inject
        recv = self._match_new_send(rec)
        if recv is not None:
            self._complete_transfer(rec, recv)
        else:
            by_tag = self._sends[op.dest].setdefault(rank, {})
            dq = by_tag.get(op.tag)
            if dq is None:
                by_tag[op.tag] = deque((rec,))
            else:
                dq.append(rec)
        if self._ready:
            self._flush_ready()
        if isinstance(op, Isend):
            self._schedule(t, rank, req)
        elif req.is_complete:
            self._schedule(req.complete_time, rank)
        else:
            self._block(
                rank,
                f"send to {op.dest} tag {op.tag}",
                {"wait": "send", "peer": op.dest, "tag": op.tag, "seq": req.seq},
            )
            self._register_waiter(
                _Waiter(rank, (req,), t, True, next(self._waiter_seq)), (req,)
            )

    def _post_recv(self, rank: int, op: Recv | Irecv, t: float) -> None:
        req = Request(rank, "recv", next(self._seq))
        rec = _RecvRec(rank, op.source, op.tag, t, req.seq, req)
        send = self._match_new_recv(rec)
        if send is not None:
            self._complete_transfer(send, rec)
        else:
            key = (op.source, op.tag)
            dq = self._recvs[rank].get(key)
            if dq is None:
                self._recvs[rank][key] = deque((rec,))
            else:
                dq.append(rec)
        if self._ready:
            self._flush_ready()
        if isinstance(op, Irecv):
            self._schedule(t, rank, req)
        elif req.is_complete:
            self._schedule(req.complete_time, rank, req.value)
        else:
            self._block(
                rank,
                f"recv from {op.source} tag {op.tag}",
                {"wait": "recv", "peer": op.source, "tag": op.tag, "seq": req.seq},
            )
            self._register_waiter(
                _Waiter(rank, (req,), t, True, next(self._waiter_seq)), (req,)
            )

    def _match_new_send(self, send: _SendRec) -> _RecvRec | None:
        """Earliest-posted pending recv at ``send.dst`` matching ``send``.

        Deques are FIFO in post order, so only the four candidate key
        heads — (src, tag), (src, ANY), (ANY, tag), (ANY, ANY) — need
        comparing; the winner is popped and returned.
        """
        recvs = self._recvs[send.dst]
        if not recvs:
            return None
        best_key: tuple[int, int] | None = None
        best_seq = -1
        for key in (
            (send.src, send.tag),
            (send.src, ANY_TAG),
            (ANY_SOURCE, send.tag),
            (ANY_SOURCE, ANY_TAG),
        ):
            dq = recvs.get(key)
            if dq and (best_key is None or dq[0].seq < best_seq):
                best_key = key
                best_seq = dq[0].seq
        if best_key is None:
            return None
        dq = recvs[best_key]
        rec = dq.popleft()
        if not dq:
            del recvs[best_key]
        return rec

    def _match_new_recv(self, recv: _RecvRec) -> _SendRec | None:
        """Earliest-posted pending send matching ``recv`` (at its rank).

        Specific (source, tag) looks at one deque head; each wildcard
        widens the scan to the matching heads only — non-overtaking
        FIFO order within a (src, dst, tag) channel is free because the
        deques are FIFO.
        """
        sends = self._sends[recv.dst]
        if not sends:
            return None
        best: _SendRec | None = None
        if recv.source != ANY_SOURCE:
            by_tag = sends.get(recv.source)
            if not by_tag:
                return None
            if recv.tag != ANY_TAG:
                dq = by_tag.get(recv.tag)
                if dq:
                    best = dq[0]
            else:
                for dq in by_tag.values():
                    head = dq[0]
                    if best is None or head.seq < best.seq:
                        best = head
        elif recv.tag != ANY_TAG:
            for by_tag in sends.values():
                dq = by_tag.get(recv.tag)
                if dq:
                    head = dq[0]
                    if best is None or head.seq < best.seq:
                        best = head
        else:
            for by_tag in sends.values():
                for dq in by_tag.values():
                    head = dq[0]
                    if best is None or head.seq < best.seq:
                        best = head
        if best is None:
            return None
        by_tag = sends[best.src]
        dq = by_tag[best.tag]
        dq.popleft()
        if not dq:
            del by_tag[best.tag]
            if not by_tag:
                del sends[best.src]
        return best

    def _complete_transfer(self, send: _SendRec, recv: _RecvRec) -> None:
        start = max(send.t_posted, recv.t_posted)
        transfer = self.cost.p2p_time(send.src, recv.dst, send.nbytes)
        if self.faults is not None:
            transfer *= self.faults.link_factor(send.src, recv.dst, start)
        t_done = start + transfer
        recv.request.complete_time = t_done
        recv.request.value = send.payload
        # Matching metadata for the wait-state analyzer: which peer, at
        # what post time, satisfied this operation (the happens-before
        # edge of the message).  ``t_peer`` is always the *other* side's
        # post time, so a late peer reads as t_peer > the wait's start.
        recv.request.match = {
            "req_kind": "recv", "peer": send.src, "tag": send.tag,
            "seq": send.seq, "nbytes": send.nbytes,
            "t_peer": send.t_posted, "t_self": recv.t_posted,
        }
        send.request.match = {
            "req_kind": "send", "peer": recv.dst, "tag": send.tag,
            "seq": send.seq, "nbytes": send.nbytes,
            "t_peer": recv.t_posted, "t_self": send.t_posted,
        }
        stats = self._ranks[recv.dst].stats
        stats.bytes_received += send.nbytes
        stats.msgs_received += 1
        self.observer.count("simmpi.bytes_received", send.nbytes)
        self.observer.count("simmpi.msgs_received")
        self._notify_completion(recv.request)
        if not send.request.is_complete:
            # Rendezvous: sender is released when the transfer lands.
            send.request.complete_time = t_done
            self._notify_completion(send.request)

    def _probe(self, rank: int, op: Probe) -> tuple[int, int, int] | None:
        sends = self._sends[rank]
        if not sends:
            return None
        best: _SendRec | None = None
        if op.source != ANY_SOURCE:
            by_tag = sends.get(op.source)
            if not by_tag:
                return None
            if op.tag != ANY_TAG:
                dq = by_tag.get(op.tag)
                if dq:
                    best = dq[0]
            else:
                for dq in by_tag.values():
                    head = dq[0]
                    if best is None or head.seq < best.seq:
                        best = head
        else:
            for by_tag in sends.values():
                if op.tag != ANY_TAG:
                    dq = by_tag.get(op.tag)
                    if not dq:
                        continue
                    head = dq[0]
                else:
                    head = None
                    for dq in by_tag.values():
                        h = dq[0]
                        if head is None or h.seq < head.seq:
                            head = h
                if head is not None and (best is None or head.seq < best.seq):
                    best = head
        if best is None:
            return None
        return (best.src, best.tag, best.nbytes)

    # -- waiting ----------------------------------------------------------
    def _post_wait(self, rank: int, requests: tuple[Request, ...], t: float, single: bool) -> None:
        for req in requests:
            if not isinstance(req, Request):
                self._throw(rank, TypeError(f"wait on non-request {req!r}"))
                return
        waiter = _Waiter(rank, requests, t, single, next(self._waiter_seq))
        pending = tuple(r for r in requests if not r.is_complete)
        if not pending:
            self._fire_waiter(waiter)
            return
        self._block(
            rank,
            f"wait on {len(requests)} request(s)",
            {"wait": "wait", "n_reqs": len(requests)},
        )
        self._register_waiter(waiter, pending)

    def _register_waiter(self, waiter: _Waiter, pending: tuple[Request, ...]) -> None:
        waiter.n_pending = len(pending)
        for req in pending:
            if req.waiters is None:
                req.waiters = [waiter]
            else:
                req.waiters.append(waiter)

    def _notify_completion(self, req: Request) -> None:
        waiters = req.waiters
        if waiters:
            req.waiters = None
            for w in waiters:
                w.n_pending -= 1
                if w.n_pending == 0:
                    self._ready.append(w)

    def _flush_ready(self) -> None:
        """Fire every waiter whose requests all completed, in waiter
        creation order — the same order the old full-list scan fired
        them, so traces and event sequencing are unchanged."""
        ready = self._ready
        if len(ready) > 1:
            ready.sort(key=lambda w: w.seq)
        for waiter in ready:
            self._fire_waiter(waiter)
        ready.clear()

    def _fire_waiter(self, waiter: _Waiter) -> None:
        requests = waiter.requests
        t_done = waiter.t_posted
        for r in requests:
            if r.complete_time > t_done:
                t_done = r.complete_time
        state = self._ranks[waiter.rank]
        if state.blocked_since is not None and state.blocked_args is not None:
            # The binding request — the one completing last — decides
            # how the blocked span is classified downstream.
            binding = max(requests, key=lambda r: (r.complete_time, r.seq))
            if binding.match is not None:
                state.blocked_args.update(binding.match)
        if waiter.single:
            value = requests[0].value
        else:
            value = [r.value for r in requests]
        self._schedule(t_done, waiter.rank, value)

    # -- collectives -------------------------------------------------------
    def _post_collective(self, rank: int, op: CollectiveOp, t: float) -> None:
        state = self._ranks[rank]
        state.stats.bytes_sent += op.nbytes
        state.stats.msgs_sent += 1
        self.observer.count("simmpi.bytes_sent", op.nbytes)
        self.observer.count("simmpi.collective_calls")
        idx = state.coll_count
        state.coll_count += 1
        rv = self._collectives.get(idx)
        if rv is None:
            rv = self._collectives[idx] = _Rendezvous(self.size)
        if rv.kind is None:
            rv.kind = op.kind
        elif op.kind != rv.kind:
            raise CollectiveMismatchError(
                f"collective #{idx}: ranks disagree on operation kind: "
                f"{sorted({rv.kind, op.kind})}"
            )
        rv.ops[rank] = op
        rv.count += 1
        if t > rv.t_last or (t == rv.t_last and rank > rv.last_rank):
            rv.t_last = t
            rv.last_rank = rank
        if op.nbytes > rv.nbytes:
            rv.nbytes = op.nbytes
        self._block(
            rank,
            f"collective #{idx} ({op.kind})",
            {"wait": "collective", "coll": idx, "kind": op.kind, "t_arrive": t},
        )
        if rv.count == self.size:
            self._finish_collective(idx, rv)

    def _finish_collective(self, idx: int, rv: _Rendezvous) -> None:
        kind = rv.kind
        t_last = rv.t_last
        last_rank = rv.last_rank
        t_op = self.cost.collective_time(kind, self.size, rv.nbytes)
        t_done = t_last + t_op
        # Stamp the synchronization structure onto every member's
        # pending blocked span: who arrived last, and how much of the
        # wait is the operation itself vs. waiting for stragglers.
        for st in self._ranks:
            if st.blocked_since is not None and st.blocked_args is not None:
                st.blocked_args.update(
                    {"t_last": t_last, "last_rank": last_rank, "t_op": t_op}
                )
        values = self._collective_values(kind, rv.ops)
        del self._collectives[idx]
        for rank in range(self.size):
            self._schedule(t_done, rank, values[rank])

    def _collective_values(self, kind: str, ops: list[CollectiveOp]) -> list[Any]:
        size = self.size
        if kind == "barrier":
            return [None] * size
        if kind == "bcast":
            root = ops[0].root
            payload = ops[root].payload
            return [payload] * size
        if kind in ("reduce", "allreduce"):
            payloads = [op.payload for op in ops]
            folded = _fold(ops[0].op, payloads)
            if kind == "allreduce":
                return [folded] * size
            root = ops[0].root
            return [folded if r == root else None for r in range(size)]
        if kind in ("gather", "allgather"):
            everything = [op.payload for op in ops]
            if kind == "allgather":
                return [list(everything) for _ in range(size)]
            root = ops[0].root
            return [list(everything) if r == root else None for r in range(size)]
        if kind == "scatter":
            root = ops[0].root
            items = ops[root].payload
            return [items[r] for r in range(size)]
        if kind == "alltoall":
            return [[ops[src].payload[dst] for src in range(size)] for dst in range(size)]
        raise ValueError(f"unknown collective kind {kind!r}")

    # -- event budget diagnostics ------------------------------------------
    def _resolve_event_budget(
        self, max_events: int | None, max_events_per_rank: int | None
    ) -> int:
        if max_events_per_rank is not None:
            return max_events_per_rank * self.size
        if max_events is not None:
            return max_events
        return max(DEFAULT_MAX_EVENTS, DEFAULT_EVENTS_PER_RANK * self.size)

    def _event_budget_error(self, cap: int) -> EventBudgetError:
        counts = self._resume_counts
        hottest = sorted(range(self.size), key=lambda r: (-counts[r], r))[:5]
        states: dict[str, int] = {}
        for st in self._ranks:
            if st.done:
                key = "finished"
            elif st.blocked_since is None:
                key = "running"
            else:
                # 'send', 'recv', 'wait', 'collective' — the leading
                # word of the blocked_on description.
                key = st.blocked_on.split(" ", 1)[0] or "blocked"
            states[key] = states.get(key, 0) + 1
        diagnostic = {
            "cap": cap,
            "size": self.size,
            "per_rank_budget": cap / self.size,
            "hottest_ranks": [(r, counts[r]) for r in hottest],
            "rank_states": states,
            "pending_sends": sum(
                len(dq) for sq in self._sends for by_tag in sq.values()
                for dq in by_tag.values()
            ),
            "pending_recvs": sum(
                len(dq) for rq in self._recvs for dq in rq.values()
            ),
            "collectives_in_flight": len(self._collectives),
        }
        hot = ", ".join(f"rank {r}: {n} resumes" for r, n in diagnostic["hottest_ranks"])
        hist = ", ".join(f"{k}={v}" for k, v in sorted(states.items()))
        msg = (
            f"event budget exhausted: {cap} events across {self.size} rank(s) "
            f"(~{cap / self.size:.0f}/rank). Hottest ranks: {hot}. "
            f"Rank states: {hist}. Pending ops: "
            f"{diagnostic['pending_sends']} send(s), "
            f"{diagnostic['pending_recvs']} recv(s), "
            f"{diagnostic['collectives_in_flight']} collective(s) in flight. "
            "Runaway simulation? If the workload is genuinely this large, "
            "raise max_events or max_events_per_rank."
        )
        return EventBudgetError(msg, diagnostic)

    # -- main loop ----------------------------------------------------------
    def run(
        self,
        max_events: int | None = None,
        *,
        max_events_per_rank: int | None = None,
    ) -> SimResult:
        """Run to completion; returns the :class:`SimResult`.

        The event budget is scale-aware: by default it is
        ``max(50_000_000, 250_000 * n_ranks)`` so big simulations get
        budget proportional to their size.  An explicit ``max_events``
        sets the total cap directly; ``max_events_per_rank`` wins over
        both and caps at ``max_events_per_rank * n_ranks``.  Exhausting
        the budget raises :class:`EventBudgetError` with per-rank
        diagnostics instead of an opaque failure.
        """
        cap = self._resolve_event_budget(max_events, max_events_per_rank)
        if self.faults is not None:
            # Armed before the t=0 resumes so a crash sorts ahead of any
            # rank activity at the same virtual time.
            for crash in self.faults.crashes():
                self._schedule(crash.time, crash.rank, _CRASH)
        for rank in range(self.size):
            self._schedule(0.0, rank)
        processed = 0
        events = self._events
        ranks = self._ranks
        counts = self._resume_counts
        pop = heapq.heappop
        # Everything inside the event loop is charged to the "engine"
        # wall-clock bucket unless a deeper section (comm dispatch,
        # kernel backend, serialization) claims it first.
        with _wall_bucket("engine"):
            while events:
                time, _, rank, value = pop(events)
                if value is _CRASH:
                    if ranks[rank].done:
                        continue  # node died after its rank finished: job survives
                    self.observer.add_span("node crash", time, time, track=rank, cat="failed")
                    if self.record_trace:
                        self.trace.append(TraceEvent(rank, time, time, "failed", "node crash"))
                    raise RankFailedError(rank, time)
                if ranks[rank].done:
                    continue
                self._resume(rank, time, value)
                counts[rank] += 1
                processed += 1
                if processed > cap:
                    raise self._event_budget_error(cap)
        unfinished = [i for i, s in enumerate(ranks) if not s.done]
        if unfinished:
            detail = ", ".join(
                f"rank {i}: {ranks[i].blocked_on or 'never blocked'}" for i in unfinished
            )
            raise DeadlockError(f"simulation deadlocked with {len(unfinished)} rank(s) blocked ({detail})")
        if self.record_trace:
            self.trace = spans_to_trace(list(self.observer.spans))
        return SimResult(
            clocks=[s.clock for s in ranks],
            stats=[s.stats for s in ranks],
            returns=[s.return_value for s in ranks],
            trace=self.trace,
            observer=self.observer if self.observer is not NULL else None,
            trace_sample=self.trace_sample,
        )


def run(
    program: Callable[[Comm], Generator] | Sequence[Callable[[Comm], Generator]],
    n_ranks: int | None = None,
    cost: CostModel | None = None,
    max_events: int | None = None,
    faults: FaultPlan | None = None,
    observer: Recorder | None = None,
    record_trace: bool = True,
    trace_sample: float = 1.0,
    max_events_per_rank: int | None = None,
) -> SimResult:
    """Convenience front door: run one program SPMD-style or a list MPMD-style.

    ``run(worker, 8)`` launches eight ranks of ``worker``;
    ``run([master, worker, worker])`` launches heterogeneous programs.
    With ``faults``, the run executes under an injected failure schedule
    and may raise :class:`~repro.simmpi.faults.RankFailedError`.
    With ``observer``, the engine records its spans and counters into
    the given :class:`~repro.obs.Recorder` instead of a private one.
    ``trace_sample`` decimates span emission (see :class:`Engine`) and
    ``max_events`` / ``max_events_per_rank`` size the event budget (see
    :meth:`Engine.run`).
    """
    if callable(program):
        if n_ranks is None or n_ranks <= 0:
            raise ValueError("SPMD launch requires a positive n_ranks")
        programs: Sequence = [program] * n_ranks
    else:
        programs = list(program)
        if n_ranks is not None and n_ranks != len(programs):
            raise ValueError("n_ranks disagrees with the number of programs")
    return Engine(
        programs, cost, record_trace=record_trace, faults=faults,
        observer=observer, trace_sample=trace_sample,
    ).run(max_events=max_events, max_events_per_rank=max_events_per_rank)
