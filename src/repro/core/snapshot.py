"""Snapshot I/O: checkpoint/restart for simulation state.

Section 4.3's production run "saved 1.5 Tbytes of data ... in parallel
to and from the local disk on each processor"; Section 2.1's failure
record is why long runs checkpoint at all (see
:mod:`repro.cluster.checkpoint` for the economics).  This module is
the data plane: a snapshot is a directory of ``.npy`` arrays plus a
JSON header carrying scalar metadata and SHA-256 checksums of every
array — corruption from the paper's flaky disks is *detected*, not
silently propagated.

Arrays are stored exactly as passed; simulation drivers that keep
particles Morton-sorted therefore write contiguous, locality-preserving
files, which is what made the original's parallel local-disk I/O run at
device speed.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass

import numpy as np

__all__ = ["SnapshotError", "write_snapshot", "read_snapshot", "snapshot_nbytes", "Snapshot"]

_HEADER = "snapshot.json"
_FORMAT_VERSION = 1


class SnapshotError(RuntimeError):
    """Missing, inconsistent, or corrupted snapshot data."""


@dataclass
class Snapshot:
    """An in-memory snapshot: named arrays plus scalar metadata."""

    arrays: dict[str, np.ndarray]
    meta: dict

    def __getitem__(self, name: str) -> np.ndarray:
        return self.arrays[name]


def _checksum(arr: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()


def snapshot_nbytes(arrays: dict[str, np.ndarray]) -> int:
    """Payload size of a snapshot — what a dump writes to local disk.

    The resilience layer uses this to charge checkpoint I/O into
    virtual time (see :mod:`repro.cluster.checkpoint` for why the dump
    cost sets Young's interval).
    """
    return int(sum(np.asarray(a).nbytes for a in arrays.values()))


def write_snapshot(directory: str, arrays: dict[str, np.ndarray], meta: dict | None = None) -> str:
    """Write arrays + metadata to ``directory``; returns the header path.

    Metadata must be JSON-serializable scalars/strings/lists.  Existing
    snapshots in the directory are overwritten atomically enough for a
    single writer (header written last, so a torn write is detected as
    a missing/invalid header rather than silently stale data).
    """
    if not arrays:
        raise ValueError("snapshot must contain at least one array")
    for name in arrays:
        if not name.isidentifier():
            raise ValueError(f"array name {name!r} must be a valid identifier")
    os.makedirs(directory, exist_ok=True)
    header = {
        "format_version": _FORMAT_VERSION,
        "meta": dict(meta or {}),
        "arrays": {},
    }
    for name, arr in arrays.items():
        arr = np.asarray(arr)
        path = os.path.join(directory, f"{name}.npy")
        np.save(path, arr)
        header["arrays"][name] = {
            "dtype": str(arr.dtype),
            "shape": list(arr.shape),
            "sha256": _checksum(arr),
        }
    header_path = os.path.join(directory, _HEADER)
    tmp = header_path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(header, fh, indent=1, sort_keys=True)
    os.replace(tmp, header_path)
    return header_path


def read_snapshot(directory: str, verify: bool = True) -> Snapshot:
    """Load a snapshot; checksums verified unless ``verify=False``."""
    header_path = os.path.join(directory, _HEADER)
    if not os.path.exists(header_path):
        raise SnapshotError(f"no snapshot header in {directory}")
    with open(header_path) as fh:
        header = json.load(fh)
    if header.get("format_version") != _FORMAT_VERSION:
        raise SnapshotError(f"unsupported snapshot format {header.get('format_version')}")
    arrays: dict[str, np.ndarray] = {}
    for name, info in header["arrays"].items():
        path = os.path.join(directory, f"{name}.npy")
        if not os.path.exists(path):
            raise SnapshotError(f"snapshot array file missing: {path}")
        arr = np.load(path)
        if list(arr.shape) != info["shape"] or str(arr.dtype) != info["dtype"]:
            raise SnapshotError(f"array {name} shape/dtype mismatch with header")
        if verify and _checksum(arr) != info["sha256"]:
            raise SnapshotError(f"checksum mismatch in array {name}: corrupted snapshot")
        arrays[name] = arr
    return Snapshot(arrays, header["meta"])
