"""The gravitational micro-kernel, in both Table 5 variants.

The inner loop of the treecode is the pairwise interaction

.. math:: a_i \\mathrel{+}= -G\\, m_j\\, (x_i - x_j)\\,(r^2+\\epsilon^2)^{-3/2}

whose cost is dominated by the reciprocal square root.  Table 5 of the
paper benchmarks two implementations across eleven processors:

``libm``
    the straightforward ``1/sqrt`` via the math library;
``karp``
    Alan Karp's decomposition of the reciprocal square root into a
    table lookup, Chebyshev interpolation, and one Newton–Raphson
    iteration — *"which uses only adds and multiplies"* — a huge win on
    processors with slow hardware sqrt/divide.

:func:`reciprocal_sqrt_karp` implements the real algorithm (64-entry
table of quadratic Chebyshev-node interpolants on [0.5, 1), exponent
handled by ``frexp``/``ldexp``, one NR polish), runtime-div-free and
accurate to ~1e-13 relative.  :func:`interaction_kernel` evaluates the
full interaction with either variant, and
:func:`measure_kernel_mflops` times them on the host with the paper's
38-flop accounting so benches can print a real "this machine" row next
to the Table 5 survey.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..machine.specs import FLOPS_PER_INTERACTION

__all__ = [
    "reciprocal_sqrt_karp",
    "reciprocal_sqrt_libm",
    "interaction_kernel",
    "KernelTiming",
    "measure_kernel_mflops",
]

_TABLE_SIZE = 64
_INV_SQRT2 = 1.0 / np.sqrt(2.0)


def _build_table() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Quadratic interpolants of 1/sqrt on 64 subintervals of [0.5, 1).

    Per subinterval, the polynomial interpolating 1/sqrt at the three
    Chebyshev nodes is expressed in the power basis for a two-mul,
    two-add Horner evaluation at runtime.  Table construction may use
    sqrt freely (it happens once, like Karp's precomputed ROM table).
    """
    c0 = np.empty(_TABLE_SIZE)
    c1 = np.empty(_TABLE_SIZE)
    c2 = np.empty(_TABLE_SIZE)
    width = 0.5 / _TABLE_SIZE
    cheb = np.cos((2 * np.arange(3) + 1) * np.pi / 6.0)  # nodes on [-1, 1]
    for i in range(_TABLE_SIZE):
        a = 0.5 + i * width
        mid, half = a + width / 2.0, width / 2.0
        x = mid + half * cheb
        y = 1.0 / np.sqrt(x)
        coeffs = np.polyfit(x, y, 2)  # exact interpolation through 3 pts
        c2[i], c1[i], c0[i] = coeffs
    return c0, c1, c2


_C0, _C1, _C2 = _build_table()


def reciprocal_sqrt_libm(x: np.ndarray) -> np.ndarray:
    """Reference reciprocal square root via the math library."""
    return 1.0 / np.sqrt(x)


def reciprocal_sqrt_karp(x: np.ndarray) -> np.ndarray:
    """Karp's add/multiply-only reciprocal square root.

    Runtime operations: frexp (exponent extraction), table lookup,
    Horner quadratic (2 mul + 2 add), one Newton–Raphson step
    (3 mul + 1 sub + 1 mul), ldexp rescale — no division or sqrt.
    """
    x = np.asarray(x, dtype=np.float64)
    if np.any(x <= 0):
        raise ValueError("reciprocal sqrt requires positive input")
    m, e = np.frexp(x)  # x = m * 2**e, m in [0.5, 1)
    idx = np.clip(((m - 0.5) * (2 * _TABLE_SIZE)).astype(np.int64), 0, _TABLE_SIZE - 1)
    y = _C0[idx] + m * (_C1[idx] + m * _C2[idx])
    # One Newton-Raphson iteration: y <- y * (1.5 - 0.5 * m * y * y).
    y = y * (1.5 - 0.5 * m * y * y)
    # Scale by 2**(-e/2): halve the exponent, fold odd exponents into
    # a multiply by 1/sqrt(2).
    half_e = e >> 1
    odd = (e & 1).astype(bool)
    y = np.ldexp(y, -half_e)
    return np.where(odd, y * _INV_SQRT2, y)


def interaction_kernel(
    sink: np.ndarray,
    sources: np.ndarray,
    masses: np.ndarray,
    *,
    eps: float = 0.0,
    G: float = 1.0,
    method: str = "libm",
) -> tuple[np.ndarray, float]:
    """Acceleration and potential at one sink from a source list.

    This is the Table 5 micro-kernel, payload-for-payload: 3 position
    differences, the squared radius with softening, a reciprocal square
    root (by the chosen method), its cube, and three multiply-adds.
    """
    sink = np.asarray(sink, dtype=np.float64)
    sources = np.asarray(sources, dtype=np.float64)
    masses = np.asarray(masses, dtype=np.float64)
    if sink.shape != (3,) or sources.ndim != 2 or sources.shape[1] != 3:
        raise ValueError("sink must be (3,), sources (N, 3)")
    if method == "libm":
        rsqrt = reciprocal_sqrt_libm
    elif method == "karp":
        rsqrt = reciprocal_sqrt_karp
    else:
        raise ValueError(f"unknown method {method!r}; expected 'libm' or 'karp'")
    dx = sources[:, 0] - sink[0]
    dy = sources[:, 1] - sink[1]
    dz = sources[:, 2] - sink[2]
    r2 = dx * dx + dy * dy + dz * dz + eps * eps
    inv_r = rsqrt(r2)
    mr3 = G * masses * inv_r * inv_r * inv_r
    acc = np.array([np.dot(mr3, dx), np.dot(mr3, dy), np.dot(mr3, dz)])
    pot = -G * float(np.dot(masses, inv_r))
    return acc, pot


@dataclass
class KernelTiming:
    """Measured micro-kernel rate on the host running this code."""

    method: str
    interactions: int
    seconds: float

    @property
    def mflops(self) -> float:
        """Rate under the paper's 38-flops-per-interaction convention."""
        return self.interactions * FLOPS_PER_INTERACTION / self.seconds / 1e6

    @property
    def interactions_per_second(self) -> float:
        return self.interactions / self.seconds


def measure_kernel_mflops(
    method: str = "libm",
    n_sources: int = 4096,
    repeats: int = 20,
    seed: int = 20031115,
) -> KernelTiming:
    """Time the micro-kernel on this host (the "your machine" Table 5 row)."""
    if repeats < 1 or n_sources < 1:
        raise ValueError("repeats and n_sources must be positive")
    rng = np.random.default_rng(seed)
    sources = rng.standard_normal((n_sources, 3))
    masses = rng.random(n_sources) + 0.5
    sink = np.zeros(3)
    interaction_kernel(sink, sources, masses, eps=0.01, method=method)  # warm up
    t0 = time.perf_counter()
    for _ in range(repeats):
        interaction_kernel(sink, sources, masses, eps=0.01, method=method)
    dt = time.perf_counter() - t0
    return KernelTiming(method, n_sources * repeats, dt)
