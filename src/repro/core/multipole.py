"""Multipole moments of tree cells: mass, center of mass, quadrupole.

Because Morton-sorted particles make every cell a contiguous run, all
cell moments are differences of prefix sums — an O(N + C) computation
with no per-cell Python loops.  The quadrupole is stored traceless in
packed symmetric order ``(xx, yy, zz, xy, xz, yz)``:

.. math::

    Q_{ij} = \\sum_k m_k \\left(3\\, r_{k,i} r_{k,j} - r_k^2\\,
    \\delta_{ij}\\right), \\qquad r_k = x_k - X_\\mathrm{com}

``bmax`` is a conservative bound on the distance from the center of
mass to any particle in the cell (cell half-diagonal plus the COM's
offset from the geometric center), used by the multipole acceptance
criterion.
"""

from __future__ import annotations

import numpy as np

from .tree import Tree

__all__ = ["compute_multipoles", "cell_geometric_centers"]


def cell_geometric_centers(tree: Tree) -> np.ndarray:
    """Geometric centers of every cell, derived from particle runs.

    Uses each cell's key-defined level and the position of its first
    particle (any member identifies the cell cube).
    """
    sizes = tree.box.size / np.power(2.0, tree.level.astype(np.float64))
    first_pos = tree.positions[tree.start]
    rel = (first_pos - tree.box.corner) / sizes[:, None]
    return tree.box.corner + (np.floor(rel) + 0.5) * sizes[:, None]


def compute_multipoles(tree: Tree) -> None:
    """Fill ``tree.mass``, ``tree.com``, ``tree.quad``, ``tree.bmax``."""
    pos = tree.positions
    m = tree.masses
    n = tree.n_particles

    # Prefix sums with a leading zero so cell sums are cum[e] - cum[s].
    cm = np.zeros(n + 1)
    np.cumsum(m, out=cm[1:])
    cmx = np.zeros((n + 1, 3))
    np.cumsum(m[:, None] * pos, axis=0, out=cmx[1:])
    # Raw second moments, packed (xx, yy, zz, xy, xz, yz).
    second = np.empty((n, 6))
    second[:, 0] = m * pos[:, 0] * pos[:, 0]
    second[:, 1] = m * pos[:, 1] * pos[:, 1]
    second[:, 2] = m * pos[:, 2] * pos[:, 2]
    second[:, 3] = m * pos[:, 0] * pos[:, 1]
    second[:, 4] = m * pos[:, 0] * pos[:, 2]
    second[:, 5] = m * pos[:, 1] * pos[:, 2]
    cs = np.zeros((n + 1, 6))
    np.cumsum(second, axis=0, out=cs[1:])

    s = tree.start
    e = tree.start + tree.count
    mass = cm[e] - cm[s]
    if np.any(mass < 0):
        raise ValueError("negative cell mass; check particle masses")
    mx = cmx[e] - cmx[s]
    raw2 = cs[e] - cs[s]

    # Massless cells (all member particles massless) get their first
    # particle's position as a degenerate COM.
    safe = np.where(mass > 0, mass, 1.0)
    com = mx / safe[:, None]
    zero = mass == 0
    if np.any(zero):
        com[zero] = pos[s[zero]]

    # Central second moments P_ij = raw_ij - M X_i X_j.
    P = np.empty_like(raw2)
    P[:, 0] = raw2[:, 0] - mass * com[:, 0] * com[:, 0]
    P[:, 1] = raw2[:, 1] - mass * com[:, 1] * com[:, 1]
    P[:, 2] = raw2[:, 2] - mass * com[:, 2] * com[:, 2]
    P[:, 3] = raw2[:, 3] - mass * com[:, 0] * com[:, 1]
    P[:, 4] = raw2[:, 4] - mass * com[:, 0] * com[:, 2]
    P[:, 5] = raw2[:, 5] - mass * com[:, 1] * com[:, 2]
    trace = P[:, 0] + P[:, 1] + P[:, 2]
    quad = np.empty_like(P)
    quad[:, :3] = 3.0 * P[:, :3] - trace[:, None]
    quad[:, 3:] = 3.0 * P[:, 3:]

    centers = cell_geometric_centers(tree)
    sizes = tree.box.size / np.power(2.0, tree.level.astype(np.float64))
    half_diag = (np.sqrt(3.0) / 2.0) * sizes
    off = np.linalg.norm(com - centers, axis=1)
    bmax = half_diag + off

    tree.mass = mass
    tree.com = com
    tree.quad = quad
    tree.bmax = bmax
