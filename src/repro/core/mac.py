"""Multipole acceptance criteria (MAC).

The MAC decides, during traversal, whether a cell's multipole expansion
is an acceptable stand-in for its particles.  The paper (Section 4.1):
*"These methods obtain greatly increased efficiency by approximating
the forces on particles.  Properly used, these methods do not
contribute significantly to the total solution error."*

Two criteria are provided:

* :class:`OpeningAngleMAC` — the classic Barnes–Hut test, generalized
  to sink *groups*: accept cell ``c`` for group ``g`` when

  .. math:: d(c, g) > b_c/\\theta + b_g

  where ``d`` is the COM separation and ``b`` the cells' ``bmax``
  bounds.  Using ``bmax`` rather than the raw edge length makes the
  test robust for cells whose mass is concentrated off-center.

* :class:`AbsoluteErrorMAC` — a simplified Salmon–Warren style bound
  that opens cells whose worst-case monopole force error exceeds a
  user budget, making force errors uniform instead of geometric.
"""

from __future__ import annotations

import numpy as np

__all__ = ["OpeningAngleMAC", "AbsoluteErrorMAC"]


class OpeningAngleMAC:
    """Barnes–Hut opening-angle criterion for group traversals."""

    def __init__(self, theta: float = 0.6):
        # theta <= 1 guarantees a group's ancestors always fail the
        # test (they contain the group, so d <= b_c), which is what
        # lets the traversal add the group's own particles exactly once.
        if not 0.0 < theta <= 1.0:
            raise ValueError(f"theta must be in (0, 1], got {theta}")
        self.theta = theta

    def accept(
        self,
        dist: np.ndarray,
        cell_bmax: np.ndarray,
        group_bmax: float,
        cell_mass: np.ndarray,
    ) -> np.ndarray:
        return dist > cell_bmax / self.theta + group_bmax

    def __repr__(self) -> str:
        return f"OpeningAngleMAC(theta={self.theta})"


class AbsoluteErrorMAC:
    """Accept a cell when its worst-case monopole error is below budget.

    The bound used is the leading truncation term of the multipole
    expansion, ``G M b^2 / (d - b)^4 <= max_error`` — conservative and
    cheap.  ``max_error`` is an acceleration in simulation units.
    """

    def __init__(self, max_error: float, G: float = 1.0):
        if max_error <= 0:
            raise ValueError(f"max_error must be positive, got {max_error}")
        self.max_error = max_error
        self.G = G

    def accept(
        self,
        dist: np.ndarray,
        cell_bmax: np.ndarray,
        group_bmax: float,
        cell_mass: np.ndarray,
    ) -> np.ndarray:
        gap = dist - cell_bmax - group_bmax
        ok = gap > 0
        err = np.full_like(dist, np.inf)
        np.divide(
            self.G * cell_mass * cell_bmax**2,
            gap**4,
            out=err,
            where=ok,
        )
        return ok & (err <= self.max_error)

    def __repr__(self) -> str:
        return f"AbsoluteErrorMAC(max_error={self.max_error})"
