"""The parallel hashed oct-tree N-body code, on SimMPI.

This module reassembles the full HOT pipeline of Section 4.2:

1. **Key assignment & parallel sort** — every rank keys its particles
   (global bounding box agreed by allreduce), samples splitter
   candidates, and the ranks agree on key-space splitters; an alltoall
   moves each particle to its owner.  This is the "domain decomposition
   … practically identical to a parallel sorting algorithm".
2. **Branch cells** — each rank computes the coarsest cells fully
   inside its key range (:func:`~repro.core.cellserver.cover_interval`)
   and the ranks allgather those cells' multipoles; everyone assembles
   the shared top of the global tree ("frame") by parallel-axis
   aggregation.
3. **Traversal with deferral** — sink groups walk the global tree by
   key.  Misses on remote cells do not stall the walk: the group is
   parked on a software deferral queue and its key requests are
   *batched per destination* through
   :class:`~repro.core.abm.ABMChannel`; other groups keep walking.
   Replies (cell records, or particles for leaves) land in a local
   cache keyed by the global key namespace, and parked groups resume.
4. **Evaluation** — interaction lists are evaluated with the same
   vectorized monopole+quadrupole / direct kernels as the serial code.

Because a cell's leaf-or-internal status depends only on its *global*
particle count, every rank derives the same virtual global tree, and
the result approximates the serial treecode to within MAC error for
any number of ranks.

Virtual time: compute segments charge the cost model with the real
interaction counts (38 flops per particle-particle, 70 per
particle-cell — the paper's accounting), so
:class:`~repro.simmpi.engine.SimResult` timings are meaningful and feed
the Table 6 benchmark.

Resilience: the rank program optionally carries a
:class:`~repro.resilience.checkpoint.Checkpointer`.  Right after the
particle exchange — the point where the expensive-to-recreate
*distributed* state (sorted keyed particles plus the splitter
agreement) first exists — each rank dumps that state through the
two-phase checkpoint store.  On an injected node crash
(:class:`~repro.simmpi.faults.RankFailedError`), the restart loop in
:mod:`repro.resilience.runner` relaunches the program, which restores
the decomposition from its committed snapshot and redoes only the
traversal.  Because the traversal is a deterministic function of that
state, the recovered accelerations are **bit-for-bit identical** to the
fault-free run's — the property ``tests/test_cross_consistency.py``
pins.
"""

from __future__ import annotations

import bisect
import tempfile
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from ..obs import Recorder
from ..simmpi.api import MAX as MPI_MAX
from ..simmpi.api import MIN as MPI_MIN
from ..simmpi.cost import CostModel
from ..simmpi.engine import SimResult, run
from ..simmpi.faults import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (resilience -> core)
    from ..resilience.checkpoint import Checkpointer
    from ..resilience.runner import ResilienceConfig, ResilientResult
from .abm import ABMChannel
from .backend import get_backend
from .cellserver import CellRecord, CellServer, combine_records, cover_interval, key_interval
from .keys import ROOT_KEY, BoundingBox, key_level, keys_from_positions
from .mac import OpeningAngleMAC
from .traversal import (
    FLOPS_PER_CELL_INTERACTION,
    InteractionCounts,
)
from ..machine.specs import FLOPS_PER_INTERACTION

__all__ = ["ParallelConfig", "ParallelGravityResult", "parallel_tree_accelerations"]

_MIN_PKEY = 1 << 63
_END_PKEY = 1 << 64

#: Modeled flop cost of one MAC evaluation during list construction.
FLOPS_PER_MAC_TEST = 12.0


@dataclass(frozen=True)
class ParallelConfig:
    """Tunables of the parallel treecode."""

    theta: float = 0.6
    eps: float = 0.05
    G: float = 1.0
    bucket_size: int = 32
    oversample: int = 16
    kernel_efficiency: float = 0.25  # fraction of peak the inner loop sustains
    max_rounds: int = 200
    #: Kernel backend name (``None`` -> ``$REPRO_BACKEND``/numpy).
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.eps < 0 or self.bucket_size < 1 or self.oversample < 1:
            raise ValueError("invalid configuration")
        if not 0 < self.kernel_efficiency <= 1:
            raise ValueError("kernel_efficiency must be in (0, 1]")
        if self.backend is not None:
            get_backend(self.backend)  # fail fast on unknown names


@dataclass
class ParallelGravityResult:
    """Assembled output of a parallel force calculation."""

    accelerations: np.ndarray
    potentials: np.ndarray
    counts: InteractionCounts
    sim: SimResult
    #: Restart bookkeeping when the run executed under a fault plan.
    resilience: "ResilientResult | None" = None

    @property
    def mflops_per_proc(self) -> float:
        """Achieved Mflop/s per processor in virtual time (Table 6's metric)."""
        p = len(self.sim.clocks)
        if self.sim.elapsed == 0:
            return 0.0
        return self.counts.flops / (p * self.sim.elapsed) / 1e6


def _rec_to_wire(rec: CellRecord) -> tuple:
    return (
        rec.key,
        rec.count,
        rec.mass,
        rec.com,
        rec.quad,
        rec.bmax,
        rec.is_leaf,
        tuple(rec.children),
        rec.positions,
        rec.masses,
    )


def _rec_from_wire(w: tuple) -> CellRecord:
    return CellRecord(
        key=w[0], count=w[1], mass=w[2], com=w[3], quad=w[4], bmax=w[5],
        is_leaf=w[6], children=tuple(w[7]), positions=w[8], masses=w[9],
    )


def _build_frame(branch_records: list[CellRecord], owners: dict[int, int]) -> dict[int, CellRecord]:
    """Aggregate branch cells upward to the root; returns key -> record.

    Branch keys themselves are included; their ``children`` stay empty
    here because their subtrees live on their owners (descending into
    a branch is what triggers an ABM request).
    """
    frame: dict[int, CellRecord] = {r.key: r for r in branch_records}
    if not branch_records:
        raise ValueError("no branch records; empty simulation?")
    # Aggregate level by level from the deepest branch upward.
    by_level: dict[int, dict[int, list[CellRecord]]] = {}
    current = {r.key: r for r in branch_records}
    while True:
        deepest = max(key_level(k) for k in current)
        if deepest == 0:
            break
        parents: dict[int, list[CellRecord]] = {}
        next_current: dict[int, CellRecord] = {}
        for k, rec in current.items():
            lvl = key_level(k)
            if lvl == deepest:
                parents.setdefault(k >> 3, []).append(rec)
            else:
                next_current[k] = rec
        for pk, kids in parents.items():
            if pk in next_current:
                # A shallower branch sharing this key cannot happen
                # (branch intervals are disjoint), but guard anyway.
                kids.append(next_current[pk])
            merged = combine_records(pk, kids)
            frame[pk] = merged
            next_current[pk] = merged
        current = next_current
    if ROOT_KEY not in frame:
        raise RuntimeError("frame aggregation failed to reach the root")
    return frame


class _GroupWalk:
    """One sink group's traversal state (the deferral-queue entry)."""

    __slots__ = (
        "key", "start", "stop", "com", "bmax",
        "frontier", "waiting", "cells", "direct", "mac_tests",
    )

    def __init__(self, key: int, start: int, stop: int, positions: np.ndarray):
        self.key = key
        self.start = start
        self.stop = stop
        sinks = positions[start:stop]
        self.com = sinks.mean(axis=0)
        self.bmax = float(np.linalg.norm(sinks - self.com, axis=1).max())
        self.frontier: list[int] = [ROOT_KEY]
        self.waiting: list[int] = []
        self.cells: list[CellRecord] = []
        self.direct: list[CellRecord] = []
        self.mac_tests = 0

    @property
    def blocked(self) -> bool:
        return bool(self.waiting)

    @property
    def finished(self) -> bool:
        return not self.frontier and not self.waiting

    def advance(self, resolve, mac) -> list[int]:
        """Walk until the frontier drains; returns keys that missed.

        ``resolve(key)`` returns a CellRecord or None (non-local miss);
        missed keys move to ``waiting`` and are retried on the next
        advance (after the ABM round fills the cache).
        """
        self.frontier.extend(self.waiting)
        self.waiting = []
        while self.frontier:
            batch = self.frontier
            self.frontier = []
            records: list[CellRecord] = []
            for key in batch:
                rec = resolve(key)
                if rec is None:
                    self.waiting.append(key)
                elif rec.count > 0:
                    records.append(rec)
            if not records:
                continue
            dist = np.array([np.linalg.norm(r.com - self.com) for r in records])
            bmaxes = np.array([r.bmax for r in records])
            masses = np.array([r.mass for r in records])
            ok = mac.accept(dist, bmaxes, self.bmax, masses)
            ok &= np.array([r.key != self.key for r in records])
            self.mac_tests += len(records)
            for rec, accept in zip(records, ok):
                if accept:
                    self.cells.append(rec)
                elif rec.is_leaf and rec.positions is not None:
                    self.direct.append(rec)
                elif not rec.is_leaf and rec.children:
                    self.frontier.extend(rec.children)
                else:
                    # A remote branch known only by its multipole: the
                    # MAC wants to open it, so its real record (children
                    # or particles) must be fetched — park on it.
                    self.waiting.append(rec.key)
        return list(self.waiting)


def _make_program(
    chunks: list[tuple[np.ndarray, np.ndarray, np.ndarray]],
    config: ParallelConfig,
    ckpt: "Checkpointer | None" = None,
):
    """Build the SPMD rank program closure over the scattered input.

    With a checkpointer, the program dumps its post-exchange particle
    state (the recovery point) and, when handed a restored snapshot,
    skips straight past decomposition to the traversal.
    """

    def program(comm):
        rank, size = comm.rank, comm.size
        kb = get_backend(config.backend)
        snap = ckpt.restored(rank) if ckpt is not None else None
        if snap is not None:
            # -- restart: resume the step from the committed checkpoint --
            keys = snap["keys"]
            pos = snap["pos"]
            mass = snap["mass"]
            ids = snap["ids"]
            n_owned = keys.shape[0]
            splitters = [int(s) for s in snap.meta["splitters"]]
            box = BoundingBox(np.asarray(snap.meta["box_corner"]), snap.meta["box_size"])
            nbytes = keys.nbytes + pos.nbytes + mass.nbytes + ids.nbytes
            # Reading the dump back from local disk costs real time.
            yield comm.elapse(ckpt.dump_time_s(nbytes), label="checkpoint-restore")
        else:
            my_pos, my_mass, my_ids = chunks[rank]
            n_local = my_pos.shape[0]

            # -- global bounding box by reduction --------------------------
            lo = my_pos.min(axis=0) if n_local else np.full(3, np.inf)
            hi = my_pos.max(axis=0) if n_local else np.full(3, -np.inf)
            glo = yield comm.allreduce(lo, op=MPI_MIN)
            ghi = yield comm.allreduce(hi, op=MPI_MAX)
            span = float((ghi - glo).max())
            span = span if span > 0 else 1.0
            box = BoundingBox(glo - 1e-6 * span, span * (1.0 + 2e-6))

            # -- key assignment and local sort ------------------------------
            keys = keys_from_positions(my_pos, box) if n_local else np.empty(0, dtype=np.uint64)
            order = np.argsort(keys, kind="stable")
            keys, pos, mass, ids = keys[order], my_pos[order], my_mass[order], my_ids[order]
            yield comm.compute(flops=30.0 * n_local * max(np.log2(max(n_local, 2)), 1.0),
                               mem_bytes=48.0 * n_local, label="key-sort")

            # -- splitter agreement (sample sort) ---------------------------
            if n_local:
                k = min(n_local, config.oversample * size)
                sample = keys[np.linspace(0, n_local - 1, k).astype(np.int64)]
            else:
                sample = np.empty(0, dtype=np.uint64)
            all_samples = yield comm.allgather(sample)
            merged = np.sort(np.concatenate([s for s in all_samples if s.size]))
            if merged.size == 0:
                raise RuntimeError("no particles anywhere")
            picks = (np.arange(1, size) * merged.size) // size
            splitters = [int(_MIN_PKEY)] + [int(merged[p]) for p in picks] + [int(_END_PKEY)]
            # Enforce monotonicity (duplicate samples give empty ranges).
            for i in range(1, len(splitters)):
                splitters[i] = max(splitters[i], splitters[i - 1])

            # -- particle exchange ------------------------------------------
            bounds = np.searchsorted(keys, np.array(splitters[1:-1], dtype=np.uint64), side="left")
            bounds = np.concatenate([[0], bounds, [n_local]]).astype(np.int64)
            sendbuf = [
                (keys[bounds[d]:bounds[d + 1]], pos[bounds[d]:bounds[d + 1]],
                 mass[bounds[d]:bounds[d + 1]], ids[bounds[d]:bounds[d + 1]])
                for d in range(size)
            ]
            received = yield comm.alltoall(sendbuf)
            keys = np.concatenate([r[0] for r in received])
            pos = np.concatenate([r[1] for r in received]) if keys.size else np.empty((0, 3))
            mass = np.concatenate([r[2] for r in received])
            ids = np.concatenate([r[3] for r in received])
            order = np.argsort(keys, kind="stable")
            keys, pos, mass, ids = keys[order], pos[order], mass[order], ids[order]
            n_owned = keys.shape[0]
            yield comm.compute(flops=30.0 * n_owned * max(np.log2(max(n_owned, 2)), 1.0),
                               mem_bytes=48.0 * n_owned, label="exchange-sort")

            if ckpt is not None:
                # The decomposition is the state worth protecting: dump
                # it the moment it exists (gated by the configured
                # interval), so a crash only ever repeats the traversal.
                yield from ckpt.save(
                    comm,
                    {"keys": keys, "pos": pos, "mass": mass, "ids": ids},
                    meta={
                        "phase": "post-exchange",
                        "splitters": [int(s) for s in splitters],
                        "box_corner": box.corner.tolist(),
                        "box_size": box.size,
                    },
                )

        # -- server, branches, frame -------------------------------------
        server = CellServer(keys, pos, mass, box, bucket_size=config.bucket_size)
        my_lo, my_hi = splitters[rank], splitters[rank + 1]
        branches = []
        if my_hi > my_lo:
            for bk in cover_interval(my_lo, my_hi):
                rec = server.record(bk, with_particles=False)
                if rec.count > 0:
                    branches.append(rec)
        yield comm.compute(flops=120.0 * n_owned, mem_bytes=96.0 * n_owned,
                           label="tree-build")

        wires = [_rec_to_wire(b) for b in branches]
        all_wires = yield comm.allgather(wires)
        owners: dict[int, int] = {}
        branch_records: list[CellRecord] = []
        branch_keys_mine: list[int] = [b.key for b in branches]
        for owner_rank, batch in enumerate(all_wires):
            for w in batch:
                rec = _rec_from_wire(w)
                owners[rec.key] = owner_rank
                branch_records.append(rec)
        frame = _build_frame(branch_records, owners)

        # -- traversal with the ABM deferral queue ------------------------
        def serve(requester: int, items: list[Any]) -> list[Any]:
            return [_rec_to_wire(server.record(int(k))) for k in items]

        abm = ABMChannel(comm, serve)
        cache: dict[int, CellRecord] = {}
        my_branch_set = set(branch_keys_mine)

        def resolve(key: int) -> CellRecord | None:
            if key in cache:
                return cache[key]
            ilo, ihi = key_interval(key)
            if my_lo <= ilo and ihi <= my_hi:
                rec = server.record(key)
                cache[key] = rec
                return rec
            if key in frame and key not in owners:
                return frame[key]  # shared top: aggregated locally
            if key in frame and owners.get(key) == rank:
                rec = server.record(key)
                cache[key] = rec
                return rec
            if key in frame:
                # Remote branch: its multipole is known from the
                # allgather; if the MAC opens it, the walk will park on
                # it and its real record arrives by ABM into the cache.
                return frame[key]
            return None

        def owner_of(key: int) -> int:
            ilo, _ = key_interval(key)
            return min(bisect.bisect_right(splitters, ilo) - 1, size - 1)

        acc = np.zeros((n_owned, 3))
        pot = np.zeros(n_owned)
        counts = InteractionCounts()
        walks = [
            _GroupWalk(k, s, e, pos) for (k, s, e) in server.leaf_groups(branch_keys_mine)
        ]
        mac = OpeningAngleMAC(config.theta)
        eps2 = config.eps * config.eps
        pending = list(walks)
        rounds = 0
        while True:
            still: list[_GroupWalk] = []
            walk_flops = 0.0
            round_flops = 0.0
            round_bytes = 0.0
            for walk in pending:
                missing = walk.advance(resolve, mac)
                walk_flops += walk.mac_tests * FLOPS_PER_MAC_TEST
                walk.mac_tests = 0
                if missing:
                    for k in set(missing):
                        abm.request(owner_of(k), k)
                    still.append(walk)
                    continue
                # Evaluate the completed group.
                sinks = pos[walk.start:walk.stop]
                ns = sinks.shape[0]
                counts.groups += 1
                if walk.cells:
                    walk.cells.sort(key=lambda r: r.key)
                    c_com = np.array([r.com for r in walk.cells])
                    c_mass = np.array([r.mass for r in walk.cells])
                    c_quad = np.array([r.quad for r in walk.cells])
                    a, p = kb.eval_cells_dense(sinks, c_com, c_mass, c_quad, eps2, config.G)
                    acc[walk.start:walk.stop] += a
                    pot[walk.start:walk.stop] += p
                    counts.p2c += ns * len(walk.cells)
                    round_flops += ns * len(walk.cells) * FLOPS_PER_CELL_INTERACTION
                    round_bytes += ns * len(walk.cells) * 80.0
                if walk.direct:
                    walk.direct.sort(key=lambda r: r.key)
                    src_pos = np.concatenate([r.positions for r in walk.direct])
                    src_mass = np.concatenate([r.masses for r in walk.direct])
                    a, p = kb.eval_direct_dense(sinks, src_pos, src_mass, eps2, config.G)
                    acc[walk.start:walk.stop] += a
                    pot[walk.start:walk.stop] += p
                    counts.p2p += ns * src_pos.shape[0]
                    round_flops += ns * src_pos.shape[0] * FLOPS_PER_INTERACTION
                    round_bytes += ns * src_pos.shape[0] * 32.0
                    if eps2 > 0:
                        pot[walk.start:walk.stop] += config.G * mass[walk.start:walk.stop] / config.eps
            # The MAC walk and the kernel evaluation are charged as
            # separate labeled phases so traces attribute time to tree
            # traversal vs. force computation (the split Table 6 cares
            # about); the modeled work is the same as the old combined
            # charge.
            if walk_flops:
                yield comm.compute(
                    flops=walk_flops,
                    flop_efficiency=config.kernel_efficiency,
                    label="traversal",
                )
            if round_flops:
                yield comm.compute(
                    flops=round_flops,
                    mem_bytes=round_bytes,
                    flop_efficiency=config.kernel_efficiency,
                    label="force",
                )
            done = yield from abm.globally_done(len(still))
            if done:
                break
            replies = yield from abm.exchange()
            for batch in replies:
                for w in batch:
                    rec = _rec_from_wire(w)
                    cache[rec.key] = rec
            pending = still
            rounds += 1
            if rounds > config.max_rounds:
                raise RuntimeError("traversal did not converge; ABM round limit hit")

        return {
            "ids": ids,
            "acc": acc,
            "pot": pot,
            "counts": (counts.p2p, counts.p2c, counts.groups),
            "abm_rounds": abm.rounds,
            "requests": abm.requests_sent,
        }

    return program


def parallel_tree_accelerations(
    positions: np.ndarray,
    masses: np.ndarray | None = None,
    *,
    n_ranks: int,
    config: ParallelConfig | None = None,
    cost: CostModel | None = None,
    faults: FaultPlan | None = None,
    resilience: "ResilienceConfig | None" = None,
    observer: "Recorder | None" = None,
) -> ParallelGravityResult:
    """Run the parallel treecode on a simulated cluster.

    The input is scattered block-wise over ``n_ranks`` simulated
    processors; the result is gathered back into input order.  Pass a
    :class:`~repro.simmpi.cost.SpaceSimulatorCost` (or any cost model)
    to obtain meaningful virtual timings; the default ``ZeroCost``
    checks algorithm semantics only.

    With ``faults`` (and optionally an explicit ``resilience``
    configuration) the run executes under the injected failure
    schedule: ranks checkpoint their post-exchange state, node crashes
    abort the job, and the restart loop resumes from the last committed
    epoch until the calculation completes.  The returned result then
    carries the :class:`~repro.resilience.runner.ResilientResult`
    bookkeeping, and its forces are bit-for-bit the fault-free ones.
    """
    positions = np.ascontiguousarray(positions, dtype=np.float64)
    n = positions.shape[0]
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError("positions must be (N, 3)")
    if masses is None:
        masses = np.full(n, 1.0 / n)
    else:
        masses = np.ascontiguousarray(masses, dtype=np.float64)
        if masses.shape != (n,):
            raise ValueError("masses must be (N,)")
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    if n < n_ranks:
        raise ValueError("need at least one particle per rank")
    config = config or ParallelConfig()

    ids = np.arange(n, dtype=np.int64)
    bounds = np.linspace(0, n, n_ranks + 1).astype(np.int64)
    chunks = [
        (positions[bounds[r]:bounds[r + 1]], masses[bounds[r]:bounds[r + 1]],
         ids[bounds[r]:bounds[r + 1]])
        for r in range(n_ranks)
    ]
    resilient: "ResilientResult | None" = None
    if faults is not None or resilience is not None:
        from ..resilience.runner import ResilienceConfig, run_resilient

        if resilience is None:
            resilience = ResilienceConfig(
                checkpoint_dir=tempfile.mkdtemp(prefix="ss-treecode-ckpt-")
            )
        resilient = run_resilient(
            lambda ckpt: _make_program(chunks, config, ckpt),
            n_ranks,
            cost=cost,
            faults=faults,
            config=resilience,
            observer=observer,
        )
        sim = resilient.sim
    else:
        sim = run(_make_program(chunks, config), n_ranks, cost, observer=observer)

    acc = np.zeros((n, 3))
    pot = np.zeros(n)
    counts = InteractionCounts()
    for ret in sim.returns:
        acc[ret["ids"]] = ret["acc"]
        pot[ret["ids"]] = ret["pot"]
        counts = counts.merged(InteractionCounts(*ret["counts"]))
    return ParallelGravityResult(acc, pot, counts, sim, resilience=resilient)
