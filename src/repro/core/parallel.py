"""The parallel hashed oct-tree N-body code, on SimMPI.

This module reassembles the full HOT pipeline of Section 4.2:

1. **Key assignment & parallel sort** — every rank keys its particles
   (global bounding box agreed by allreduce), samples splitter
   candidates, and the ranks agree on key-space splitters; an alltoall
   moves each particle to its owner.  This is the "domain decomposition
   … practically identical to a parallel sorting algorithm".
2. **Branch cells** — each rank computes the coarsest cells fully
   inside its key range (:func:`~repro.core.cellserver.cover_interval`)
   and the ranks allgather those cells' multipoles; everyone assembles
   the shared top of the global tree ("frame") by parallel-axis
   aggregation.
3. **Traversal with deferral** — sink groups walk the global tree by
   key.  Misses on remote cells do not stall the walk: the group is
   parked on a software deferral queue and its key requests are
   *batched per destination*; other groups keep walking.  Replies
   (cell records, or particles for leaves) land in a local cache keyed
   by the global key namespace, and parked groups resume.
4. **Evaluation** — interaction lists are evaluated with the same
   vectorized monopole+quadrupole / direct kernels as the serial code.

Two communication schedules drive step 3, selected by
``ParallelConfig.comm``:

``"async"`` (default)
    The latency-hiding schedule the paper's HOT library uses over
    commodity networks.  Outstanding misses are deduplicated into one
    coalesced request batch per owner and sent with nonblocking
    point-to-point messages
    (:func:`~repro.simmpi.patterns.batched_request_reply`); while the
    requests are on the wire, the rank *evaluates the force kernels of
    every group that already completed its walk* — computation covers
    communication.  Replies land in a persistent
    :class:`~repro.core.cellcache.CellCache` that survives rounds (and,
    in the multi-step driver, timesteps), and a locally-essential-tree
    prefetch (:attr:`ParallelConfig.prefetch`) MAC-tests the domain
    boundary to bulk-fetch likely-needed cells before the walk starts.

``"blocking"``
    The bulk-synchronous reference: each round is an alltoall of
    request batches, a serve step, and an alltoall of replies
    (:class:`~repro.core.abm.ABMChannel`), with all evaluation *after*
    the exchange.  Kept for differential testing — both schedules
    produce bit-identical accelerations and interaction counts, the
    same convention PR 4 established for kernel backends.

Because a cell's leaf-or-internal status depends only on its *global*
particle count, every rank derives the same virtual global tree, and
the result approximates the serial treecode to within MAC error for
any number of ranks.

Virtual time: compute segments charge the cost model with the real
interaction counts (38 flops per particle-particle, 70 per
particle-cell — the paper's accounting), so
:class:`~repro.simmpi.engine.SimResult` timings are meaningful and feed
the Table 6 benchmark.

Resilience: the rank program optionally carries a
:class:`~repro.resilience.checkpoint.Checkpointer`.  Right after the
particle exchange — the point where the expensive-to-recreate
*distributed* state (sorted keyed particles plus the splitter
agreement) first exists — each rank dumps that state through the
two-phase checkpoint store.  On an injected node crash
(:class:`~repro.simmpi.faults.RankFailedError`), the restart loop in
:mod:`repro.resilience.runner` relaunches the program, which restores
the decomposition from its committed snapshot and redoes only the
traversal.  Because the traversal is a deterministic function of that
state, the recovered accelerations are **bit-for-bit identical** to the
fault-free run's — the property ``tests/test_cross_consistency.py``
pins.

Multiple timesteps: :func:`parallel_nbody_run` integrates the system
through ``n_steps`` kick–drift steps inside one SimMPI run, reusing the
remote-cell cache across steps (entries are invalidated by branch
fingerprint when an owner's subtree changes) and *incrementally*
rebalancing the domain boundaries from the measured per-particle
interaction work of the previous step
(:func:`~repro.core.domain.splitter_candidates`) — the paper's
work-weighted decomposition fed by real measurements instead of uniform
weights.
"""

from __future__ import annotations

import bisect
import tempfile
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from ..obs import Recorder
from ..simmpi.api import MAX as MPI_MAX
from ..simmpi.api import MIN as MPI_MIN
from ..simmpi.cost import CostModel
from ..simmpi.engine import SimResult, run
from ..simmpi.faults import FaultPlan
from ..simmpi import patterns as mpi_patterns
from ..simmpi.patterns import batched_request_reply

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (resilience -> core)
    from ..resilience.checkpoint import Checkpointer
    from ..resilience.runner import ResilienceConfig, ResilientResult
from .abm import ABMChannel
from .backend import get_backend
from .cellcache import CellCache
from .cellserver import CellRecord, CellServer, combine_records, cover_interval, key_interval
from .domain import merge_splitter_candidates, splitter_candidates
from .keys import ROOT_KEY, BoundingBox, key_level, keys_from_positions
from .mac import OpeningAngleMAC
from ..obs.wallclock import bucket as _wall_bucket
from .traversal import (
    DEFAULT_PAIR_CHUNK,
    FLOPS_PER_CELL_INTERACTION,
    InteractionCounts,
)
from ..machine.specs import FLOPS_PER_INTERACTION

__all__ = [
    "ParallelConfig",
    "ParallelGravityResult",
    "ParallelRunResult",
    "parallel_tree_accelerations",
    "parallel_nbody_run",
]

_MIN_PKEY = 1 << 63
_END_PKEY = 1 << 64

#: Modeled flop cost of one MAC evaluation during list construction.
FLOPS_PER_MAC_TEST = 12.0

#: Base tag of the traversal's batched request/reply rounds (prefetch
#: waves use ``_FETCH_TAG + 10`` so traces distinguish the phases).
_FETCH_TAG = 7_200


@dataclass(frozen=True)
class ParallelConfig:
    """Tunables of the parallel treecode.

    Parameters
    ----------
    theta:
        Opening angle of the multipole acceptance criterion
        (dimensionless; smaller is more accurate and more expensive).
    eps:
        Plummer softening length, in position units.
    G:
        Gravitational constant (sets the unit system; accelerations
        come out in ``G * mass / length**2`` units).
    bucket_size:
        Maximum particles per leaf of the global virtual tree.
    oversample:
        Splitter samples per rank in the parallel sample sort.
    kernel_efficiency:
        Fraction of machine peak the force inner loops sustain; scales
        every modeled compute charge (Table 6 calibration knob).
    max_rounds:
        Safety bound on traversal request/reply rounds.
    backend:
        Kernel backend name (``None`` -> ``$REPRO_BACKEND``/numpy).
    eval:
        Force-evaluation strategy for completed walks: ``"batched"``
        (default) concatenates every ready group's interaction list
        into flat CSR rectangles and issues **one** cell and one
        direct kernel call per round — the shape the ``numba`` and
        ``multiprocess`` backends accelerate; ``"pergroup"`` is the
        historical one-dense-call-per-group walker, kept as the
        differential reference.  Both charge identical virtual time
        (same flop/byte totals) and agree to float tolerance.
    comm:
        Communication schedule for the traversal: ``"async"``
        (latency-hiding batched nonblocking messages, the default) or
        ``"blocking"`` (bulk-synchronous ABM reference).  Both produce
        bit-identical physics.
    prefetch:
        Enable the locally-essential-tree prefetch before the walk
        (``"async"`` schedule only).
    prefetch_rounds:
        Maximum prefetch waves (each wave descends one tree level along
        the domain boundary).
    cache_capacity:
        Entry bound of the remote-cell :class:`CellCache`; ``None`` is
        unbounded.  Must comfortably exceed a round's working set or
        eviction thrash will stretch (never corrupt) the traversal.
    """

    theta: float = 0.6
    eps: float = 0.05
    G: float = 1.0
    bucket_size: int = 32
    oversample: int = 16
    kernel_efficiency: float = 0.25  # fraction of peak the inner loop sustains
    max_rounds: int = 200
    #: Kernel backend name (``None`` -> ``$REPRO_BACKEND``/numpy).
    backend: str | None = None
    eval: str = "batched"
    comm: str = "async"
    prefetch: bool = True
    prefetch_rounds: int = 8
    cache_capacity: int | None = None

    def __post_init__(self) -> None:
        if self.eps < 0 or self.bucket_size < 1 or self.oversample < 1:
            raise ValueError("invalid configuration")
        if not 0 < self.kernel_efficiency <= 1:
            raise ValueError("kernel_efficiency must be in (0, 1]")
        if self.eval not in ("batched", "pergroup"):
            raise ValueError("eval must be 'batched' or 'pergroup'")
        if self.comm not in ("async", "blocking"):
            raise ValueError("comm must be 'async' or 'blocking'")
        if self.prefetch_rounds < 0:
            raise ValueError("prefetch_rounds must be >= 0")
        if self.cache_capacity is not None and self.cache_capacity < 1:
            raise ValueError("cache_capacity must be positive or None")
        if self.backend is not None:
            get_backend(self.backend)  # fail fast on unknown names


@dataclass
class ParallelGravityResult:
    """Assembled output of a parallel force calculation."""

    accelerations: np.ndarray
    potentials: np.ndarray
    counts: InteractionCounts
    sim: SimResult
    #: Restart bookkeeping when the run executed under a fault plan.
    resilience: "ResilientResult | None" = None
    #: Aggregated communication-layer statistics (requests, batches,
    #: rounds, cache hit/miss/eviction counters, prefetch accuracy),
    #: summed over ranks.
    comm: dict[str, float] = field(default_factory=dict)

    @property
    def mflops_per_proc(self) -> float:
        """Achieved Mflop/s per processor in virtual time (Table 6's metric)."""
        p = len(self.sim.clocks)
        if self.sim.elapsed == 0:
            return 0.0
        return self.counts.flops / (p * self.sim.elapsed) / 1e6


@dataclass
class ParallelRunResult:
    """Assembled output of a multi-timestep parallel N-body run."""

    #: Final particle state, in input order.
    positions: np.ndarray
    velocities: np.ndarray
    #: Accelerations of the last force evaluation, in input order.
    accelerations: np.ndarray
    #: Per-step accelerations (one ``(N, 3)`` array per step, input order).
    step_accelerations: list[np.ndarray]
    #: Interaction totals summed over all steps.
    counts: InteractionCounts
    sim: SimResult
    #: Aggregated communication statistics, summed over ranks and steps.
    comm: dict[str, float] = field(default_factory=dict)
    #: Per-step work imbalance: max over ranks of measured interaction
    #: work divided by the mean (1.0 is perfect balance).
    work_imbalance: list[float] = field(default_factory=list)


def _rec_to_wire(rec: CellRecord) -> tuple:
    return (
        rec.key,
        rec.count,
        rec.mass,
        rec.com,
        rec.quad,
        rec.bmax,
        rec.is_leaf,
        tuple(rec.children),
        rec.positions,
        rec.masses,
    )


def _rec_from_wire(w: tuple) -> CellRecord:
    return CellRecord(
        key=w[0], count=w[1], mass=w[2], com=w[3], quad=w[4], bmax=w[5],
        is_leaf=w[6], children=tuple(w[7]), positions=w[8], masses=w[9],
    )


#: Identity-keyed memo for :func:`_frame_from_wires`.  Entries keep a
#: strong reference to their wire batches, so a cached id can never be
#: recycled by a new object; collective semantics bound the number of
#: wire sets live at once (ranks cannot run more than one step apart),
#: hence the tiny capacity.
_FRAME_MEMO: dict[tuple, tuple] = {}
_FRAME_MEMO_CAP = 4


def _frame_from_wires(all_wires: list) -> tuple[dict[int, int], dict[int, CellRecord]]:
    """Owners map + aggregated frame for one allgathered wire set.

    On a real machine every rank assembles the frame from its own copy
    of the allgathered branch cells.  In the one-process simulation the
    engine hands every rank references to the *same* per-owner batch
    objects, and the frame is a pure function of them — so it is
    computed once and shared.  Safe because both returned structures
    are read-only after construction (the traversal only looks cells
    up), and it turns an O(P) replicated build into O(1) per rank —
    the difference between minutes and hours at P = 2560.
    """
    memo_key = tuple(map(id, all_wires))
    hit = _FRAME_MEMO.get(memo_key)
    if hit is not None:
        return hit[1], hit[2]
    owners: dict[int, int] = {}
    branch_records: list[CellRecord] = []
    for owner_rank, batch in enumerate(all_wires):
        for w in batch:
            rec = _rec_from_wire(w)
            owners[rec.key] = owner_rank
            branch_records.append(rec)
    frame = _build_frame(branch_records, owners)
    _FRAME_MEMO[memo_key] = (list(all_wires), owners, frame)
    while len(_FRAME_MEMO) > _FRAME_MEMO_CAP:
        del _FRAME_MEMO[next(iter(_FRAME_MEMO))]
    return owners, frame


def _build_frame(branch_records: list[CellRecord], owners: dict[int, int]) -> dict[int, CellRecord]:
    """Aggregate branch cells upward to the root; returns key -> record.

    Branch keys themselves are included; their ``children`` stay empty
    here because their subtrees live on their owners (descending into
    a branch is what triggers a remote request).
    """
    frame: dict[int, CellRecord] = {r.key: r for r in branch_records}
    if not branch_records:
        raise ValueError("no branch records; empty simulation?")
    # Aggregate level by level from the deepest branch upward.
    current = {r.key: r for r in branch_records}
    while True:
        deepest = max(key_level(k) for k in current)
        if deepest == 0:
            break
        parents: dict[int, list[CellRecord]] = {}
        next_current: dict[int, CellRecord] = {}
        for k, rec in current.items():
            lvl = key_level(k)
            if lvl == deepest:
                parents.setdefault(k >> 3, []).append(rec)
            else:
                next_current[k] = rec
        for pk, kids in parents.items():
            if pk in next_current:
                # A shallower branch sharing this key cannot happen
                # (branch intervals are disjoint), but guard anyway.
                kids.append(next_current[pk])
            merged = combine_records(pk, kids)
            frame[pk] = merged
            next_current[pk] = merged
        current = next_current
    if ROOT_KEY not in frame:
        raise RuntimeError("frame aggregation failed to reach the root")
    return frame


class _GroupWalk:
    """One sink group's traversal state (the deferral-queue entry)."""

    __slots__ = (
        "key", "start", "stop", "com", "bmax",
        "frontier", "waiting", "cells", "direct", "mac_tests",
    )

    def __init__(self, key: int, start: int, stop: int, positions: np.ndarray):
        self.key = key
        self.start = start
        self.stop = stop
        sinks = positions[start:stop]
        self.com = sinks.mean(axis=0)
        self.bmax = float(np.linalg.norm(sinks - self.com, axis=1).max())
        self.frontier: list[int] = [ROOT_KEY]
        self.waiting: list[int] = []
        self.cells: list[CellRecord] = []
        self.direct: list[CellRecord] = []
        self.mac_tests = 0

    @property
    def blocked(self) -> bool:
        return bool(self.waiting)

    @property
    def finished(self) -> bool:
        return not self.frontier and not self.waiting

    def advance(self, resolve, mac) -> list[int]:
        """Walk until the frontier drains; returns keys that missed.

        ``resolve(key)`` returns a CellRecord or None (non-local miss);
        missed keys move to ``waiting`` and are retried on the next
        advance (after a request round fills the cache).
        """
        self.frontier.extend(self.waiting)
        self.waiting = []
        while self.frontier:
            batch = self.frontier
            self.frontier = []
            records: list[CellRecord] = []
            for key in batch:
                rec = resolve(key)
                if rec is None:
                    self.waiting.append(key)
                elif rec.count > 0:
                    records.append(rec)
            if not records:
                continue
            # One vectorized MAC pass per frontier batch (same float
            # semantics as the serial batched traversal's einsum form;
            # per-record np.linalg.norm here used to dominate the whole
            # parallel run's wall-clock).
            d = np.array([r.com for r in records]) - self.com
            dist = np.sqrt(np.einsum("ij,ij->i", d, d))
            bmaxes = np.array([r.bmax for r in records])
            masses = np.array([r.mass for r in records])
            ok = mac.accept(dist, bmaxes, self.bmax, masses)
            self.mac_tests += len(records)
            cells, direct, frontier, waiting = (
                self.cells, self.direct, self.frontier, self.waiting
            )
            for rec, accept in zip(records, ok):
                if accept and rec.key != self.key:
                    cells.append(rec)
                elif rec.is_leaf and rec.positions is not None:
                    direct.append(rec)
                elif not rec.is_leaf and rec.children:
                    frontier.extend(rec.children)
                else:
                    # A remote branch known only by its multipole: the
                    # MAC wants to open it, so its real record (children
                    # or particles) must be fetched — park on it.
                    waiting.append(rec.key)
        return list(self.waiting)


def _run_traversal(
    comm,
    config: ParallelConfig,
    kb,
    server: CellServer,
    frame: dict[int, CellRecord],
    owners: dict[int, int],
    branch_keys_mine: list[int],
    splitters: list[int],
    pos: np.ndarray,
    mass: np.ndarray,
    remote_cache: CellCache,
    branch_fps: dict[int, bytes] | None = None,
):
    """Tree traversal + force evaluation for one rank's particles.

    A generator to be delegated from a rank program.  Returns
    ``(acc, pot, counts, work, stats)`` where ``work`` is the measured
    per-particle interaction flops (the weight the next step's
    incremental rebalancing consumes) and ``stats`` the rank-local
    communication counters.

    The interaction list of every sink group is a pure function of the
    global tree and the group geometry, and evaluation order within a
    group is fixed by sorting records on key — so the ``"async"`` and
    ``"blocking"`` schedules (and any cache state) produce bit-identical
    ``acc``/``pot``/``counts``.
    """
    rank, size = comm.rank, comm.size
    n_owned = pos.shape[0]
    my_lo, my_hi = splitters[rank], splitters[rank + 1]
    mac = OpeningAngleMAC(config.theta)
    eps2 = config.eps * config.eps
    local_records: dict[int, CellRecord] = {}
    prefetched: set[int] = set()
    stats: dict[str, float] = {
        "rounds": 0, "requests": 0, "batches": 0,
        "prefetch_rounds": 0, "prefetch_fetched": 0, "prefetch_used": 0,
    }

    # Covering-branch lookup, for stamping cache entries with the
    # branch whose fingerprint governs their cross-step validity.
    all_branch_keys = sorted(owners.keys(), key=lambda k: key_interval(k)[0])
    branch_los = [key_interval(k)[0] for k in all_branch_keys]

    def covering_branch(key: int) -> int:
        ilo, _ = key_interval(key)
        i = bisect.bisect_right(branch_los, ilo) - 1
        return all_branch_keys[max(i, 0)]

    def admit(w: tuple) -> CellRecord:
        rec = _rec_from_wire(w)
        bkey = covering_branch(rec.key)
        fp = b"" if branch_fps is None else branch_fps.get(bkey, b"")
        remote_cache.insert(rec.key, rec, branch_key=bkey, fingerprint=fp)
        return rec

    # Step-local alias of remote-cache hits, valid only while the cache
    # cannot evict (unbounded).  A memo hit logs the same cache hit a
    # direct ask would, so hit/miss counters — which benches gate on —
    # are unchanged; only the OrderedDict/LRU bookkeeping is skipped.
    remote_memo: dict[int, CellRecord] = {}
    memo_remote = remote_cache.capacity is None

    def resolve(key: int) -> CellRecord | None:
        rec = local_records.get(key)
        if rec is not None:
            return rec
        rec = remote_memo.get(key)
        if rec is not None:
            remote_cache.stats["hits"] += 1
            return rec
        ilo, ihi = key_interval(key)
        if my_lo <= ilo and ihi <= my_hi:
            rec = server.record(key)
            local_records[key] = rec
            return rec
        if key in frame and key not in owners:
            rec = frame[key]  # shared top: aggregated locally
            local_records[key] = rec  # memoize: every walk re-asks
            return rec
        rec = remote_cache.get(key)
        if rec is not None:
            if memo_remote:
                remote_memo[key] = rec
            if key in prefetched:
                stats["prefetch_used"] += 1
                prefetched.discard(key)
            return rec
        if key in frame and owners.get(key) == rank:
            rec = server.record(key)
            local_records[key] = rec
            return rec
        if key in frame:
            # Remote branch: its multipole is known from the
            # allgather; if the MAC opens it, the walk will park on
            # it and its real record arrives by request into the cache.
            return frame[key]
        return None

    def owner_of(key: int) -> int:
        ilo, _ = key_interval(key)
        return min(bisect.bisect_right(splitters, ilo) - 1, size - 1)

    def serve_batch(requester: int, items: list[Any]) -> list[Any]:
        with _wall_bucket("serialization"):
            return [_rec_to_wire(server.record(int(k))) for k in items]

    acc = np.zeros((n_owned, 3))
    pot = np.zeros(n_owned)
    work = np.zeros(n_owned)
    counts = InteractionCounts()
    walks = [
        _GroupWalk(k, s, e, pos) for (k, s, e) in server.leaf_groups(branch_keys_mine)
    ]

    def evaluate(walk: _GroupWalk) -> tuple[float, float]:
        """Evaluate a completed walk's interaction lists; returns the
        (flops, bytes) to charge the cost model."""
        sinks = pos[walk.start:walk.stop]
        ns = sinks.shape[0]
        counts.groups += 1
        flops = 0.0
        mem = 0.0
        if walk.cells:
            walk.cells.sort(key=lambda r: r.key)
            c_com = np.array([r.com for r in walk.cells])
            c_mass = np.array([r.mass for r in walk.cells])
            c_quad = np.array([r.quad for r in walk.cells])
            a, p = kb.eval_cells_dense(sinks, c_com, c_mass, c_quad, eps2, config.G)
            acc[walk.start:walk.stop] += a
            pot[walk.start:walk.stop] += p
            counts.p2c += ns * len(walk.cells)
            work[walk.start:walk.stop] += len(walk.cells) * FLOPS_PER_CELL_INTERACTION
            flops += ns * len(walk.cells) * FLOPS_PER_CELL_INTERACTION
            mem += ns * len(walk.cells) * 80.0
        if walk.direct:
            walk.direct.sort(key=lambda r: r.key)
            src_pos = np.concatenate([r.positions for r in walk.direct])
            src_mass = np.concatenate([r.masses for r in walk.direct])
            a, p = kb.eval_direct_dense(sinks, src_pos, src_mass, eps2, config.G)
            acc[walk.start:walk.stop] += a
            pot[walk.start:walk.stop] += p
            counts.p2p += ns * src_pos.shape[0]
            work[walk.start:walk.stop] += src_pos.shape[0] * FLOPS_PER_INTERACTION
            flops += ns * src_pos.shape[0] * FLOPS_PER_INTERACTION
            mem += ns * src_pos.shape[0] * 32.0
            if eps2 > 0:
                pot[walk.start:walk.stop] += config.G * mass[walk.start:walk.stop] / config.eps
        return flops, mem

    pos3_owned = np.ascontiguousarray(pos.T) if n_owned else np.zeros((3, 0))

    def evaluate_batch(ready: list[_GroupWalk]) -> tuple[float, float]:
        """Evaluate a batch of completed walks as flat CSR rectangles:
        one cell and one direct kernel call for the whole batch.

        Identical bookkeeping (counts, per-particle work, flop/byte
        charges) to the per-group path.  A rectangle's per-sink result
        is independent of the batch it is evaluated in (backend
        contract), and each sink group completes in exactly one batch,
        so accelerations stay bit-identical across comm schedules,
        cache states, and round boundaries — the same invariant the
        per-group path has.
        """
        flops = 0.0
        mem = 0.0
        c_starts: list[int] = []
        c_counts: list[int] = []
        c_widths: list[int] = []
        com_parts: list[np.ndarray] = []
        mass_parts: list[np.ndarray] = []
        quad_parts: list[np.ndarray] = []
        d_starts: list[int] = []
        d_counts: list[int] = []
        d_widths: list[int] = []
        src_pos_parts: list[np.ndarray] = []
        src_mass_parts: list[np.ndarray] = []
        for walk in ready:
            ns = walk.stop - walk.start
            counts.groups += 1
            if walk.cells:
                walk.cells.sort(key=lambda r: r.key)
                nc = len(walk.cells)
                com_parts.append(np.array([r.com for r in walk.cells]))
                mass_parts.append(np.array([r.mass for r in walk.cells]))
                quad_parts.append(np.array([r.quad for r in walk.cells]))
                c_starts.append(walk.start)
                c_counts.append(ns)
                c_widths.append(nc)
                counts.p2c += ns * nc
                work[walk.start:walk.stop] += nc * FLOPS_PER_CELL_INTERACTION
                flops += ns * nc * FLOPS_PER_CELL_INTERACTION
                mem += ns * nc * 80.0
            if walk.direct:
                walk.direct.sort(key=lambda r: r.key)
                sp = np.concatenate([r.positions for r in walk.direct])
                sm = np.concatenate([r.masses for r in walk.direct])
                src_pos_parts.append(sp)
                src_mass_parts.append(sm)
                d_starts.append(walk.start)
                d_counts.append(ns)
                d_widths.append(sp.shape[0])
                counts.p2p += ns * sp.shape[0]
                work[walk.start:walk.stop] += sp.shape[0] * FLOPS_PER_INTERACTION
                flops += ns * sp.shape[0] * FLOPS_PER_INTERACTION
                mem += ns * sp.shape[0] * 32.0
                if eps2 > 0:
                    # The rectangle includes each sink's softened
                    # self-pair (same as the dense kernel); remove the
                    # self-energy -G m / eps it adds to the potential.
                    pot[walk.start:walk.stop] += config.G * mass[walk.start:walk.stop] / config.eps
        if c_starts:
            com3 = np.ascontiguousarray(np.concatenate(com_parts).T)
            cmass = np.ascontiguousarray(np.concatenate(mass_parts))
            quad6 = np.ascontiguousarray(np.concatenate(quad_parts).T)
            offs = np.zeros(len(c_widths) + 1, dtype=np.int64)
            np.cumsum(c_widths, out=offs[1:])
            kb.eval_cell_rects(
                pos3_owned,
                np.asarray(c_starts, dtype=np.int64),
                np.asarray(c_counts, dtype=np.int64),
                offs, np.arange(offs[-1], dtype=np.int64),
                com3, cmass, quad6, eps2, config.G, acc, pot, DEFAULT_PAIR_CHUNK,
            )
        if d_starts:
            spool = np.concatenate(src_pos_parts)
            # Sources live after the rank's own particles in the pool;
            # sink rows stay < n_owned, so writes into acc/pot are safe.
            pos3_all = np.ascontiguousarray(np.concatenate([pos, spool]).T)
            mass_all = np.concatenate([mass, np.concatenate(src_mass_parts)])
            offs = np.zeros(len(d_widths) + 1, dtype=np.int64)
            np.cumsum(d_widths, out=offs[1:])
            src_ids = n_owned + np.arange(offs[-1], dtype=np.int64)
            kb.eval_direct_rects(
                pos3_all, mass_all,
                np.asarray(d_starts, dtype=np.int64),
                np.asarray(d_counts, dtype=np.int64),
                offs, src_ids, eps2, config.G, acc, pot, DEFAULT_PAIR_CHUNK,
            )
        return flops, mem

    def evaluate_many(ready: list[_GroupWalk]):
        """Generator charging one labeled compute span for a batch of
        completed walks — the overlap work of an async round."""
        if config.eval == "batched":
            flops, mem = evaluate_batch(ready)
        else:
            flops = 0.0
            mem = 0.0
            for walk in ready:
                f, m = evaluate(walk)
                flops += f
                mem += m
        if flops:
            yield comm.compute(
                flops=flops,
                mem_bytes=mem,
                flop_efficiency=config.kernel_efficiency,
                label="force",
            )
        return None

    def prefetch_boundary():
        """Locally-essential-tree prefetch (async schedule only).

        MAC-tests remote cells against the *whole local domain* —
        modeled as the bounding sphere of this rank's particles — and
        bulk-fetches, one tree level per wave, every cell some local
        group might open.  A cell at distance ``d`` from the domain
        center can only be opened by a local group if
        ``d - R <= bmax / theta`` (the domain sphere contains every
        group sphere), so cells failing that test are skipped.  The
        test is conservative per *domain* but heuristic per *group*:
        anything it misses is fetched by the main loop, so accuracy
        affects only timing, never results.
        """
        if n_owned:
            center = pos.mean(axis=0)
            radius = float(np.linalg.norm(pos - center, axis=1).max())
        else:
            center = np.zeros(3)
            radius = 0.0
        inv_theta = 1.0 / config.theta
        frontier = [frame[k] for k in all_branch_keys if owners[k] != rank]
        wave = 0
        while wave < config.prefetch_rounds:
            need: dict[int, list[int]] = {}
            seen: set[int] = set()
            tests = 0
            next_frontier: list[CellRecord] = []
            for rec in frontier:
                if rec.count == 0:
                    continue
                tests += 1
                dist = float(np.linalg.norm(rec.com - center))
                if dist - radius > rec.bmax * inv_theta:
                    continue  # every local group's MAC accepts it
                if rec.is_leaf:
                    if rec.positions is None and remote_cache.peek(rec.key) is None:
                        if rec.key not in seen:
                            seen.add(rec.key)
                            need.setdefault(owner_of(rec.key), []).append(rec.key)
                    continue
                for ck in rec.children:
                    crec = remote_cache.peek(ck)
                    if crec is not None:
                        next_frontier.append(crec)
                    elif ck not in seen:
                        seen.add(ck)
                        need.setdefault(owner_of(ck), []).append(ck)
            if tests:
                yield comm.compute(
                    flops=tests * FLOPS_PER_MAC_TEST,
                    flop_efficiency=config.kernel_efficiency,
                    label="prefetch",
                )
            n_need = sum(len(v) for v in need.values())
            total = yield from mpi_patterns.allreduce(comm, n_need)
            if total == 0:
                break
            reqs: list[list[int]] = [[] for _ in range(size)]
            for owner, ks in need.items():
                reqs[owner] = sorted(ks)
            stats["requests"] += len(seen)
            stats["batches"] += sum(1 for r in reqs if r)
            replies, _ = yield from batched_request_reply(
                comm, reqs, serve_batch, tag=_FETCH_TAG + 10
            )
            for batch in replies:
                if batch:
                    for w in batch:
                        rec = admit(w)
                        prefetched.add(rec.key)
                        stats["prefetch_fetched"] += 1
                        next_frontier.append(rec)
            frontier = next_frontier
            wave += 1
            stats["prefetch_rounds"] = wave

    def traverse_async():
        """Latency-hiding main loop: per-owner deduplicated request
        batches in flight while completed walks evaluate their forces."""
        pending = list(walks)
        ready: list[_GroupWalk] = []
        rounds = 0
        while True:
            still: list[_GroupWalk] = []
            walk_flops = 0.0
            need: dict[int, list[int]] = {}
            requested: set[int] = set()
            for walk in pending:
                missing = walk.advance(resolve, mac)
                walk_flops += walk.mac_tests * FLOPS_PER_MAC_TEST
                walk.mac_tests = 0
                if missing:
                    for k in missing:
                        if k not in requested:
                            requested.add(k)
                            need.setdefault(owner_of(k), []).append(k)
                    still.append(walk)
                else:
                    ready.append(walk)
            if walk_flops:
                yield comm.compute(
                    flops=walk_flops,
                    flop_efficiency=config.kernel_efficiency,
                    label="traversal",
                )
            blocked = yield from mpi_patterns.allreduce(comm, len(still))
            if blocked == 0:
                yield from evaluate_many(ready)
                break
            reqs: list[list[int]] = [[] for _ in range(size)]
            for owner, ks in need.items():
                reqs[owner] = sorted(ks)
            stats["requests"] += len(requested)
            stats["batches"] += sum(1 for r in reqs if r)
            replies, _ = yield from batched_request_reply(
                comm, reqs, serve_batch,
                overlap=evaluate_many(ready), tag=_FETCH_TAG,
            )
            ready = []
            for batch in replies:
                if batch:
                    for w in batch:
                        admit(w)
            pending = still
            rounds += 1
            stats["rounds"] = rounds
            if rounds > config.max_rounds:
                raise RuntimeError(
                    "traversal did not converge; request round limit hit"
                )

    def traverse_blocking():
        """Bulk-synchronous ABM reference: alltoall request/reply rounds
        with all force evaluation after the exchange (the pre-PR-5
        schedule, kept for differential testing)."""
        abm = ABMChannel(comm, serve_batch)
        pending = list(walks)
        rounds = 0
        while True:
            still: list[_GroupWalk] = []
            walk_flops = 0.0
            ready: list[_GroupWalk] = []
            for walk in pending:
                missing = walk.advance(resolve, mac)
                walk_flops += walk.mac_tests * FLOPS_PER_MAC_TEST
                walk.mac_tests = 0
                if missing:
                    for k in set(missing):
                        abm.request(owner_of(k), k)
                    still.append(walk)
                else:
                    ready.append(walk)
            if walk_flops:
                yield comm.compute(
                    flops=walk_flops,
                    flop_efficiency=config.kernel_efficiency,
                    label="traversal",
                )
            yield from evaluate_many(ready)
            done = yield from abm.globally_done(len(still))
            if done:
                break
            replies = yield from abm.exchange()
            for batch in replies:
                for w in batch:
                    admit(w)
            pending = still
            rounds += 1
            if rounds > config.max_rounds:
                raise RuntimeError("traversal did not converge; ABM round limit hit")
        stats["rounds"] = abm.rounds
        stats["requests"] = abm.requests_sent

    if config.comm == "async":
        if config.prefetch and size > 1:
            yield from prefetch_boundary()
        yield from traverse_async()
    else:
        yield from traverse_blocking()
    return acc, pot, counts, work, stats


def _cache_stats(remote_cache: CellCache) -> dict[str, int]:
    return {f"cache_{k}": v for k, v in remote_cache.snapshot_stats().items()}


def _make_program(
    chunks: list[tuple[np.ndarray, np.ndarray, np.ndarray]],
    config: ParallelConfig,
    ckpt: "Checkpointer | None" = None,
):
    """Build the SPMD rank program closure over the scattered input.

    With a checkpointer, the program dumps its post-exchange particle
    state (the recovery point) and, when handed a restored snapshot,
    skips straight past decomposition to the traversal.
    """

    def program(comm):
        rank, size = comm.rank, comm.size
        kb = get_backend(config.backend)
        snap = ckpt.restored(rank) if ckpt is not None else None
        if snap is not None:
            # -- restart: resume the step from the committed checkpoint --
            keys = snap["keys"]
            pos = snap["pos"]
            mass = snap["mass"]
            ids = snap["ids"]
            n_owned = keys.shape[0]
            splitters = [int(s) for s in snap.meta["splitters"]]
            box = BoundingBox(np.asarray(snap.meta["box_corner"]), snap.meta["box_size"])
            nbytes = keys.nbytes + pos.nbytes + mass.nbytes + ids.nbytes
            # Reading the dump back from local disk costs real time.
            yield comm.elapse(ckpt.dump_time_s(nbytes), label="checkpoint-restore")
        else:
            my_pos, my_mass, my_ids = chunks[rank]
            n_local = my_pos.shape[0]

            # -- global bounding box by reduction --------------------------
            lo = my_pos.min(axis=0) if n_local else np.full(3, np.inf)
            hi = my_pos.max(axis=0) if n_local else np.full(3, -np.inf)
            glo = yield from mpi_patterns.allreduce(comm, lo, op=MPI_MIN)
            ghi = yield from mpi_patterns.allreduce(comm, hi, op=MPI_MAX)
            span = float((ghi - glo).max())
            span = span if span > 0 else 1.0
            box = BoundingBox(glo - 1e-6 * span, span * (1.0 + 2e-6))

            # -- key assignment and local sort ------------------------------
            keys = keys_from_positions(my_pos, box) if n_local else np.empty(0, dtype=np.uint64)
            order = np.argsort(keys, kind="stable")
            keys, pos, mass, ids = keys[order], my_pos[order], my_mass[order], my_ids[order]
            yield comm.compute(flops=30.0 * n_local * max(np.log2(max(n_local, 2)), 1.0),
                               mem_bytes=48.0 * n_local, label="key-sort")

            # -- splitter agreement (sample sort) ---------------------------
            if n_local:
                k = min(n_local, config.oversample * size)
                sample = keys[np.linspace(0, n_local - 1, k).astype(np.int64)]
            else:
                sample = np.empty(0, dtype=np.uint64)
            all_samples = yield from mpi_patterns.allgather(comm, sample)
            merged = np.sort(np.concatenate([s for s in all_samples if s.size]))
            if merged.size == 0:
                raise RuntimeError("no particles anywhere")
            picks = (np.arange(1, size) * merged.size) // size
            splitters = [int(_MIN_PKEY)] + [int(merged[p]) for p in picks] + [int(_END_PKEY)]
            # Enforce monotonicity (duplicate samples give empty ranges).
            for i in range(1, len(splitters)):
                splitters[i] = max(splitters[i], splitters[i - 1])

            # -- particle exchange ------------------------------------------
            bounds = np.searchsorted(keys, np.array(splitters[1:-1], dtype=np.uint64), side="left")
            bounds = np.concatenate([[0], bounds, [n_local]]).astype(np.int64)
            sendbuf = [
                (keys[bounds[d]:bounds[d + 1]], pos[bounds[d]:bounds[d + 1]],
                 mass[bounds[d]:bounds[d + 1]], ids[bounds[d]:bounds[d + 1]])
                for d in range(size)
            ]
            received = yield comm.alltoall(
                sendbuf,
                nbytes=keys.nbytes + pos.nbytes + mass.nbytes + ids.nbytes + 40 * size,
            )
            keys = np.concatenate([r[0] for r in received])
            pos = np.concatenate([r[1] for r in received]) if keys.size else np.empty((0, 3))
            mass = np.concatenate([r[2] for r in received])
            ids = np.concatenate([r[3] for r in received])
            order = np.argsort(keys, kind="stable")
            keys, pos, mass, ids = keys[order], pos[order], mass[order], ids[order]
            n_owned = keys.shape[0]
            yield comm.compute(flops=30.0 * n_owned * max(np.log2(max(n_owned, 2)), 1.0),
                               mem_bytes=48.0 * n_owned, label="exchange-sort")

            if ckpt is not None:
                # The decomposition is the state worth protecting: dump
                # it the moment it exists (gated by the configured
                # interval), so a crash only ever repeats the traversal.
                yield from ckpt.save(
                    comm,
                    {"keys": keys, "pos": pos, "mass": mass, "ids": ids},
                    meta={
                        "phase": "post-exchange",
                        "splitters": [int(s) for s in splitters],
                        "box_corner": box.corner.tolist(),
                        "box_size": box.size,
                    },
                )

        # -- server, branches, frame -------------------------------------
        server = CellServer(keys, pos, mass, box, bucket_size=config.bucket_size)
        my_lo, my_hi = splitters[rank], splitters[rank + 1]
        branches = []
        if my_hi > my_lo:
            for bk in cover_interval(my_lo, my_hi):
                rec = server.record(bk, with_particles=False)
                if rec.count > 0:
                    branches.append(rec)
        yield comm.compute(flops=120.0 * n_owned, mem_bytes=96.0 * n_owned,
                           label="tree-build")

        wires = [_rec_to_wire(b) for b in branches]
        all_wires = yield from mpi_patterns.allgather(comm, wires)
        branch_keys_mine: list[int] = [b.key for b in branches]
        owners, frame = _frame_from_wires(all_wires)

        # -- traversal + evaluation ---------------------------------------
        remote_cache = CellCache(config.cache_capacity)
        acc, pot, counts, _work, stats = yield from _run_traversal(
            comm, config, kb, server, frame, owners, branch_keys_mine,
            splitters, pos, mass, remote_cache,
        )
        stats.update(_cache_stats(remote_cache))
        return {
            "ids": ids,
            "acc": acc,
            "pot": pot,
            "counts": (counts.p2p, counts.p2c, counts.groups),
            "comm": stats,
        }

    return program


def _aggregate_comm(returns, observer: "Recorder | None" = None) -> dict[str, float]:
    """Sum the per-rank ``comm`` stat dicts; optionally publish them as
    ``treecode.comm.*`` counters on the observer."""
    total: dict[str, float] = {}
    for ret in returns:
        for k, v in (ret.get("comm") or {}).items():
            total[k] = total.get(k, 0.0) + float(v)
    if observer is not None:
        for k, v in total.items():
            observer.count(f"treecode.comm.{k}", v)
    return total


def parallel_tree_accelerations(
    positions: np.ndarray,
    masses: np.ndarray | None = None,
    *,
    n_ranks: int,
    config: ParallelConfig | None = None,
    cost: CostModel | None = None,
    faults: FaultPlan | None = None,
    resilience: "ResilienceConfig | None" = None,
    observer: "Recorder | None" = None,
    record_trace: bool = True,
    trace_sample: float = 1.0,
) -> ParallelGravityResult:
    """Run one parallel treecode force calculation on a simulated cluster.

    Parameters
    ----------
    positions:
        ``(N, 3)`` float64 particle positions (any length unit; the
        code is unit-agnostic, ``config.eps`` shares this unit).
    masses:
        ``(N,)`` masses; defaults to ``1/N`` each (total mass 1).
    n_ranks:
        Number of simulated processors; the input is scattered
        block-wise and the result gathered back into input order.
    config:
        :class:`ParallelConfig`; the default uses the latency-hiding
        ``"async"`` communication schedule.
    cost:
        Pass a :class:`~repro.simmpi.cost.SpaceSimulatorCost` (or any
        cost model) to obtain meaningful virtual timings; the default
        ``ZeroCost`` checks algorithm semantics only.
    faults, resilience:
        With ``faults`` (and optionally an explicit ``resilience``
        configuration) the run executes under the injected failure
        schedule: ranks checkpoint their post-exchange state, node
        crashes abort the job, and the restart loop resumes from the
        last committed epoch until the calculation completes.  The
        returned result then carries the
        :class:`~repro.resilience.runner.ResilientResult` bookkeeping,
        and its forces are bit-for-bit the fault-free ones.
    observer:
        A :class:`~repro.obs.Recorder` receiving spans from the engine
        plus aggregated ``treecode.comm.*`` counters.
    record_trace, trace_sample:
        Forwarded to the engine (fault-free path only): disable or
        decimate per-event trace retention so large-``n_ranks`` scaling
        runs keep their memory bounded.  Physics is unaffected.

    Invariants: for a fixed ``n_ranks`` the returned accelerations are
    bit-identical across ``config.comm`` schedules, cache capacities,
    and prefetch settings — communication strategy never touches the
    physics.  Different rank counts group sink particles differently,
    so results vary across ``n_ranks`` at the MAC-error scale (exactly
    as they do versus the serial treecode), never more.
    """
    positions = np.ascontiguousarray(positions, dtype=np.float64)
    n = positions.shape[0]
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError("positions must be (N, 3)")
    if masses is None:
        masses = np.full(n, 1.0 / n)
    else:
        masses = np.ascontiguousarray(masses, dtype=np.float64)
        if masses.shape != (n,):
            raise ValueError("masses must be (N,)")
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    if n < n_ranks:
        raise ValueError("need at least one particle per rank")
    config = config or ParallelConfig()

    ids = np.arange(n, dtype=np.int64)
    bounds = np.linspace(0, n, n_ranks + 1).astype(np.int64)
    chunks = [
        (positions[bounds[r]:bounds[r + 1]], masses[bounds[r]:bounds[r + 1]],
         ids[bounds[r]:bounds[r + 1]])
        for r in range(n_ranks)
    ]
    resilient: "ResilientResult | None" = None
    if faults is not None or resilience is not None:
        from ..resilience.runner import ResilienceConfig, run_resilient

        if resilience is None:
            resilience = ResilienceConfig(
                checkpoint_dir=tempfile.mkdtemp(prefix="ss-treecode-ckpt-")
            )
        resilient = run_resilient(
            lambda ckpt: _make_program(chunks, config, ckpt),
            n_ranks,
            cost=cost,
            faults=faults,
            config=resilience,
            observer=observer,
        )
        sim = resilient.sim
    else:
        sim = run(_make_program(chunks, config), n_ranks, cost, observer=observer,
                  record_trace=record_trace, trace_sample=trace_sample)

    acc = np.zeros((n, 3))
    pot = np.zeros(n)
    counts = InteractionCounts()
    for ret in sim.returns:
        acc[ret["ids"]] = ret["acc"]
        pot[ret["ids"]] = ret["pot"]
        counts = counts.merged(InteractionCounts(*ret["counts"]))
    comm_stats = _aggregate_comm(sim.returns, observer)
    return ParallelGravityResult(acc, pot, counts, sim, resilience=resilient,
                                 comm=comm_stats)


def _make_run_program(
    chunks: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]],
    config: ParallelConfig,
    n_steps: int,
    dt: float,
    cache_across_steps: bool,
    rebalance: bool,
):
    """Rank program of the multi-timestep driver.

    One SimMPI program covers all steps, so the remote-cell cache, the
    splitters, and the virtual clocks persist across timesteps — the
    regime the HOT cache and incremental rebalancing were built for.
    """

    def program(comm):
        rank, size = comm.rank, comm.size
        kb = get_backend(config.backend)
        my_pos, my_mass, my_vel, my_ids = chunks[rank]
        n_local = my_pos.shape[0]

        # -- global bounding box, fixed for the whole run -----------------
        # Keys from different steps must live in one namespace (the
        # cache is keyed by them), so the box is agreed once, padded for
        # the expected drift.  A particle escaping the padded box raises
        # from key assignment — enlarge the pad via shorter runs or
        # smaller dt rather than silently re-keying.
        lo = my_pos.min(axis=0) if n_local else np.full(3, np.inf)
        hi = my_pos.max(axis=0) if n_local else np.full(3, -np.inf)
        vmax_l = float(np.linalg.norm(my_vel, axis=1).max()) if n_local else 0.0
        glo = yield from mpi_patterns.allreduce(comm, lo, op=MPI_MIN)
        ghi = yield from mpi_patterns.allreduce(comm, hi, op=MPI_MAX)
        vmax = yield from mpi_patterns.allreduce(comm, vmax_l, op=MPI_MAX)
        span = float((ghi - glo).max())
        span = span if span > 0 else 1.0
        pad = 2.0 * vmax * abs(dt) * n_steps + 0.125 * span
        box = BoundingBox(glo - pad, span + 2.0 * pad)

        # -- initial decomposition (sample sort + exchange) ---------------
        keys = keys_from_positions(my_pos, box) if n_local else np.empty(0, dtype=np.uint64)
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        pos, mass, vel, ids = my_pos[order], my_mass[order], my_vel[order], my_ids[order]
        yield comm.compute(flops=30.0 * n_local * max(np.log2(max(n_local, 2)), 1.0),
                           mem_bytes=48.0 * n_local, label="key-sort")
        if n_local:
            k = min(n_local, config.oversample * size)
            sample = keys[np.linspace(0, n_local - 1, k).astype(np.int64)]
        else:
            sample = np.empty(0, dtype=np.uint64)
        all_samples = yield from mpi_patterns.allgather(comm, sample)
        merged = np.sort(np.concatenate([s for s in all_samples if s.size]))
        if merged.size == 0:
            raise RuntimeError("no particles anywhere")
        picks = (np.arange(1, size) * merged.size) // size
        splitters = [int(_MIN_PKEY)] + [int(merged[p]) for p in picks] + [int(_END_PKEY)]
        for i in range(1, len(splitters)):
            splitters[i] = max(splitters[i], splitters[i - 1])

        def exchange_particles(keys, pos, mass, vel, ids):
            cut_keys = np.array(
                [min(int(s), _END_PKEY - 1) for s in splitters[1:-1]], dtype=np.uint64
            )
            bounds = np.searchsorted(keys, cut_keys, side="left")
            bounds = np.concatenate([[0], bounds, [keys.shape[0]]]).astype(np.int64)
            sendbuf = [
                tuple(a[bounds[d]:bounds[d + 1]] for a in (keys, pos, mass, vel, ids))
                for d in range(size)
            ]
            received = yield comm.alltoall(
                sendbuf,
                nbytes=(keys.nbytes + pos.nbytes + mass.nbytes + vel.nbytes
                        + ids.nbytes + 48 * size),
            )
            keys = np.concatenate([r[0] for r in received])
            pos = (np.concatenate([r[1] for r in received])
                   if keys.size else np.empty((0, 3)))
            mass = np.concatenate([r[2] for r in received])
            vel = (np.concatenate([r[3] for r in received])
                   if keys.size else np.empty((0, 3)))
            ids = np.concatenate([r[4] for r in received])
            order = np.argsort(keys, kind="stable")
            n_owned = keys.shape[0]
            yield comm.compute(
                flops=30.0 * n_owned * max(np.log2(max(n_owned, 2)), 1.0),
                mem_bytes=48.0 * n_owned, label="exchange-sort")
            return tuple(a[order] for a in (keys, pos, mass, vel, ids))

        keys, pos, mass, vel, ids = yield from exchange_particles(keys, pos, mass, vel, ids)

        remote_cache = CellCache(config.cache_capacity)
        counts_total = InteractionCounts()
        stats_total: dict[str, float] = {}
        step_outs: list[dict[str, np.ndarray]] = []
        step_work: list[float] = []

        for step in range(n_steps):
            n_owned = keys.shape[0]
            # -- tree build + branch/fingerprint allgather ----------------
            server = CellServer(keys, pos, mass, box, bucket_size=config.bucket_size)
            my_lo, my_hi = splitters[rank], splitters[rank + 1]
            branches = []
            if my_hi > my_lo:
                for bk in cover_interval(my_lo, my_hi):
                    rec = server.record(bk, with_particles=False)
                    if rec.count > 0:
                        branches.append(rec)
            yield comm.compute(flops=120.0 * n_owned, mem_bytes=96.0 * n_owned,
                               label="tree-build")
            wires = [_rec_to_wire(b) for b in branches]
            fps_mine = [(b.key, server.branch_fingerprint(b.key)) for b in branches]
            all_wires = yield from mpi_patterns.allgather(comm, wires)
            all_fps = yield from mpi_patterns.allgather(comm, fps_mine)
            owners, frame = _frame_from_wires(all_wires)
            branch_fps = {k: fp for batch in all_fps for (k, fp) in batch}

            # -- cache carry-over -----------------------------------------
            if cache_across_steps:
                remote_cache.retain_valid(branch_fps)
            else:
                remote_cache.clear()

            # -- traversal + evaluation -----------------------------------
            acc, pot, counts, work, stats = yield from _run_traversal(
                comm, config, kb, server, frame, owners,
                [b.key for b in branches], splitters, pos, mass,
                remote_cache, branch_fps,
            )
            counts_total = counts_total.merged(counts)
            for k_, v in stats.items():
                stats_total[k_] = stats_total.get(k_, 0.0) + float(v)
            step_outs.append({"ids": ids.copy(), "acc": acc, "pot": pot})
            step_work.append(float(work.sum()))

            # -- kick + drift (symplectic Euler) --------------------------
            vel = vel + acc * dt
            pos = pos + vel * dt
            yield comm.compute(flops=12.0 * n_owned, mem_bytes=96.0 * n_owned,
                               label="integrate")
            if step == n_steps - 1:
                break

            # -- incremental work-weighted rebalancing --------------------
            # Uses the interaction work just measured, while keys are
            # still the pre-drift ones the work was measured against.
            if rebalance and size > 1:
                totals = yield from mpi_patterns.allgather(comm, float(work.sum()))
                total = float(sum(totals))
                before = float(sum(totals[:rank]))
                props = splitter_candidates(keys, work, before, total, size)
                all_props = yield from mpi_patterns.allgather(comm, props)
                splitters = merge_splitter_candidates(splitters, list(all_props))

            # -- re-key (fixed box) and migrate to owners -----------------
            keys = keys_from_positions(pos, box) if n_owned else keys
            order = np.argsort(keys, kind="stable")
            keys = keys[order]
            pos, mass, vel, ids = pos[order], mass[order], vel[order], ids[order]
            yield comm.compute(
                flops=30.0 * n_owned * max(np.log2(max(n_owned, 2)), 1.0),
                mem_bytes=48.0 * n_owned, label="key-sort")
            keys, pos, mass, vel, ids = yield from exchange_particles(
                keys, pos, mass, vel, ids)

        stats_total.update(_cache_stats(remote_cache))
        return {
            "ids": ids,
            "pos": pos,
            "vel": vel,
            "steps": step_outs,
            "counts": (counts_total.p2p, counts_total.p2c, counts_total.groups),
            "comm": stats_total,
            "step_work": step_work,
        }

    return program


def parallel_nbody_run(
    positions: np.ndarray,
    masses: np.ndarray | None = None,
    velocities: np.ndarray | None = None,
    *,
    n_ranks: int,
    n_steps: int,
    dt: float,
    config: ParallelConfig | None = None,
    cost: CostModel | None = None,
    observer: "Recorder | None" = None,
    cache_across_steps: bool = True,
    rebalance: bool = True,
    record_trace: bool = True,
    trace_sample: float = 1.0,
) -> ParallelRunResult:
    """Integrate an N-body system for ``n_steps`` kick–drift steps.

    The multi-timestep driver the latency-hiding layer was built for:
    one SimMPI run covers every step, so the remote-cell cache persists
    across steps (entries invalidated by branch fingerprint when an
    owner's subtree changes) and the domain boundaries are rebalanced
    *incrementally* from the interaction work measured in the previous
    step (``rebalance=True``) instead of re-running the sample sort.

    Parameters
    ----------
    positions, masses, velocities:
        ``(N, 3)`` positions, ``(N,)`` masses (default ``1/N``), and
        ``(N, 3)`` velocities (default zero), in a consistent unit
        system with ``config.G`` and ``dt``.
    n_ranks, n_steps, dt:
        Simulated processor count, number of steps, and timestep.  The
        key namespace's bounding box is fixed once, padded for the
        expected drift; particles escaping it raise a ``ValueError``.
    cache_across_steps:
        ``False`` clears the remote-cell cache at every step — the
        "cold" reference the cross-timestep consistency tests compare
        against.  Results are bit-identical either way.
    rebalance:
        ``False`` freezes the initial sample-sort splitters.

    Returns a :class:`ParallelRunResult`; ``step_accelerations`` holds
    every step's accelerations in input order, and ``work_imbalance``
    the measured per-step max/mean work ratio across ranks (the curve
    incremental rebalancing drives toward 1).
    """
    positions = np.ascontiguousarray(positions, dtype=np.float64)
    n = positions.shape[0]
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError("positions must be (N, 3)")
    if masses is None:
        masses = np.full(n, 1.0 / n)
    else:
        masses = np.ascontiguousarray(masses, dtype=np.float64)
        if masses.shape != (n,):
            raise ValueError("masses must be (N,)")
    if velocities is None:
        velocities = np.zeros((n, 3))
    else:
        velocities = np.ascontiguousarray(velocities, dtype=np.float64)
        if velocities.shape != (n, 3):
            raise ValueError("velocities must be (N, 3)")
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    if n < n_ranks:
        raise ValueError("need at least one particle per rank")
    if n_steps < 1:
        raise ValueError("n_steps must be >= 1")
    config = config or ParallelConfig()

    ids = np.arange(n, dtype=np.int64)
    bounds = np.linspace(0, n, n_ranks + 1).astype(np.int64)
    chunks = [
        (positions[bounds[r]:bounds[r + 1]], masses[bounds[r]:bounds[r + 1]],
         velocities[bounds[r]:bounds[r + 1]], ids[bounds[r]:bounds[r + 1]])
        for r in range(n_ranks)
    ]
    sim = run(
        _make_run_program(chunks, config, n_steps, dt, cache_across_steps, rebalance),
        n_ranks, cost, observer=observer,
        record_trace=record_trace, trace_sample=trace_sample,
    )

    final_pos = np.zeros((n, 3))
    final_vel = np.zeros((n, 3))
    step_acc = [np.zeros((n, 3)) for _ in range(n_steps)]
    counts = InteractionCounts()
    work_totals = [np.zeros(len(sim.returns)) for _ in range(n_steps)]
    for r, ret in enumerate(sim.returns):
        final_pos[ret["ids"]] = ret["pos"]
        final_vel[ret["ids"]] = ret["vel"]
        counts = counts.merged(InteractionCounts(*ret["counts"]))
        for s, out in enumerate(ret["steps"]):
            step_acc[s][out["ids"]] = out["acc"]
        for s, w in enumerate(ret["step_work"]):
            work_totals[s][r] = w
    imbalance = [
        float(w.max() / w.mean()) if w.mean() > 0 else 1.0 for w in work_totals
    ]
    comm_stats = _aggregate_comm(sim.returns, observer)
    return ParallelRunResult(
        positions=final_pos,
        velocities=final_vel,
        accelerations=step_acc[-1],
        step_accelerations=step_acc,
        counts=counts,
        sim=sim,
        comm=comm_stats,
        work_imbalance=imbalance,
    )
