"""Real-core process pool with crash containment, and the
``multiprocess`` kernel backend built on it.

SimMPI simulates parallelism inside one interpreter; this module is
where the simulator itself uses *real* cores.  Two consumers:

* :func:`run_tasks` / :class:`ProcPool` — generic fan-out of
  independent picklable tasks over OS processes with **errors as
  data**: a task that raises becomes an ``"error"``
  :class:`TaskResult`, and a task whose worker dies (SIGKILL, OOM)
  is retried once in a fresh pool before it too becomes an error
  entry.  A dying worker can therefore never corrupt or abort the
  merged result — the exact contract the campaign runner and the
  hypothesis suite (``tests/test_procpool_property.py``) pin.
* :class:`MultiprocessBackend` — a :class:`~repro.core.backend.KernelBackend`
  registered as ``"multiprocess"`` that shards the two CSR rectangle
  kernels across a persistent pool.  Every sink belongs to exactly one
  rectangle per call and a rectangle's per-sink result is independent
  of how rectangles are batched (padding depends only on the
  rectangle's own width), so the sharded merge is **bit-identical** to
  the serial base backend no matter the worker count, shard order, or
  chunk boundaries.  Calls below ``min_pairs`` evaluated pairs run
  inline — process fan-out only pays above the pickling cost.

Worker-count resolution: explicit ``workers=`` kwarg, then the
``REPRO_PROCPOOL_WORKERS`` environment variable, then ``os.cpu_count()``.
With one worker everything runs inline (a pool of one is pure
overhead), which also makes ``backend="multiprocess"`` safe and cheap
on single-core hosts.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

import multiprocessing
import numpy as np

from .backend import KernelBackend, NumpyBackend, _rect_rows, get_backend

__all__ = [
    "POOL_WORKERS_ENV",
    "TaskResult",
    "ProcPool",
    "resolve_pool_workers",
    "run_tasks",
    "MultiprocessBackend",
]

POOL_WORKERS_ENV = "REPRO_PROCPOOL_WORKERS"


def resolve_pool_workers(workers: int | None = None) -> int:
    """Effective worker count (>= 1); see module docstring for order."""
    if workers is None:
        env = os.environ.get(POOL_WORKERS_ENV, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(f"{POOL_WORKERS_ENV} must be an integer, got {env!r}")
        else:
            workers = os.cpu_count() or 1
    return max(1, int(workers))


@dataclass(frozen=True)
class TaskResult:
    """Outcome of one task: a value or an error, never an exception."""

    index: int
    status: str  # "ok" | "error"
    value: Any = None
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _error_result(index: int, exc: BaseException) -> TaskResult:
    return TaskResult(index, "error", None, f"{type(exc).__name__}: {exc}")


def _run_inline(fn: Callable, args_list: Sequence[tuple]) -> Iterator[TaskResult]:
    for i, args in enumerate(args_list):
        try:
            yield TaskResult(i, "ok", fn(*args))
        except Exception as exc:  # noqa: BLE001 — error becomes data
            yield _error_result(i, exc)


class ProcPool:
    """Persistent OS-process pool that survives its workers.

    The executor is created lazily and rebuilt whenever a worker death
    breaks it; tasks in flight at the break are retried (``retries``
    per task) in the fresh pool.  ``fork`` start method where the
    platform offers it — workers inherit imported modules instead of
    re-importing them per pool.
    """

    def __init__(self, workers: int | None = None, mp_context=None):
        self.workers = resolve_pool_workers(workers)
        if mp_context is None and "fork" in multiprocessing.get_all_start_methods():
            mp_context = multiprocessing.get_context("fork")
        self._mp_context = mp_context
        self._executor: ProcessPoolExecutor | None = None

    # -- lifecycle -------------------------------------------------------
    def _ensure(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self._mp_context
            )
        return self._executor

    def _discard(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "ProcPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- execution -------------------------------------------------------
    def imap_unordered(
        self, fn: Callable, args_list: Sequence[tuple], *, retries: int = 1
    ) -> Iterator[TaskResult]:
        """Run ``fn(*args)`` per entry, yielding results as they finish.

        A task exception yields an ``"error"`` result immediately.  A
        broken pool (worker killed) rebuilds the executor and re-runs
        every task that had no result yet; a task that breaks the pool
        ``retries + 1`` times is reported as an error, so one poisoned
        task cannot starve the rest.
        """
        args_list = list(args_list)
        if self.workers <= 1 or len(args_list) <= 1:
            yield from _run_inline(fn, args_list)
            return
        todo = list(range(len(args_list)))
        attempts = dict.fromkeys(todo, 0)
        while todo:
            executor = self._ensure()
            futures = {}
            broken = False
            try:
                for i in todo:
                    futures[executor.submit(fn, *args_list[i])] = i
            except BrokenProcessPool:
                broken = True
            redo: list[int] = []
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in done:
                    i = futures[future]
                    try:
                        yield TaskResult(i, "ok", future.result())
                    except BrokenProcessPool:
                        broken = True
                        redo.append(i)
                    except Exception as exc:  # noqa: BLE001
                        yield _error_result(i, exc)
            unsubmitted = set(todo) - set(futures.values())
            redo.extend(sorted(unsubmitted))
            todo = []
            for i in redo:
                attempts[i] += 1
                if attempts[i] > retries:
                    yield TaskResult(
                        i, "error", None,
                        "BrokenProcessPool: worker died; retries exhausted",
                    )
                else:
                    todo.append(i)
            if broken:
                self._discard()

    def map(
        self, fn: Callable, args_list: Sequence[tuple], *, retries: int = 1
    ) -> list[TaskResult]:
        """Like :meth:`imap_unordered` but returned in task order —
        the deterministic merge shape callers reduce over."""
        args_list = list(args_list)
        out: list[TaskResult | None] = [None] * len(args_list)
        for result in self.imap_unordered(fn, args_list, retries=retries):
            out[result.index] = result
        return out  # type: ignore[return-value]


def run_tasks(
    fn: Callable,
    args_list: Sequence[tuple],
    *,
    workers: int | None = None,
    retries: int = 1,
) -> list[TaskResult]:
    """One-shot :class:`ProcPool` convenience: ordered errors-as-data
    results for independent tasks; serial inline when ``workers <= 1``."""
    with ProcPool(workers=workers) as pool:
        return pool.map(fn, args_list, retries=retries)


# -- multiprocess kernel backend ----------------------------------------

#: Base backend used inside workers.  Module-level so fork children
#: share it and pickled task functions resolve by reference.
_WORKER_BASE = NumpyBackend()


def _run_pickled(fn, blob):
    """Worker trampoline: args travel as one explicitly-pickled blob so
    the coordinator can *measure* marshalling (the wall-clock report's
    serialization bucket) instead of hiding it in the executor's feeder
    thread."""
    return fn(*pickle.loads(blob))


def _cell_shard(pos3, starts, counts, offsets, cell_ids, com3, mass, quad6, eps2, G, pair_chunk):
    n = pos3.shape[1]
    acc = np.zeros((n, 3))
    pot = np.zeros(n)
    _WORKER_BASE.eval_cell_rects(
        pos3, starts, counts, offsets, cell_ids, com3, mass, quad6, eps2, G, acc, pot, pair_chunk
    )
    _, pids = _rect_rows(starts, counts)
    return pids, acc[pids], pot[pids]


def _direct_shard(pos3, masses, starts, counts, offsets, src_ids, eps2, G, pair_chunk):
    n = pos3.shape[1]
    acc = np.zeros((n, 3))
    pot = np.zeros(n)
    _WORKER_BASE.eval_direct_rects(
        pos3, masses, starts, counts, offsets, src_ids, eps2, G, acc, pot, pair_chunk
    )
    _, pids = _rect_rows(starts, counts)
    return pids, acc[pids], pot[pids]


def _shard_bounds(counts: np.ndarray, widths: np.ndarray, shards: int) -> list[tuple[int, int]]:
    """Split rectangles into <= ``shards`` contiguous runs of roughly
    equal evaluated-pair weight, never splitting a rectangle."""
    pairs = (counts * widths).astype(np.float64)
    cum = np.concatenate([[0.0], np.cumsum(pairs)])
    total = cum[-1]
    bounds: list[tuple[int, int]] = []
    lo = 0
    n = counts.shape[0]
    for s in range(shards):
        target = total * (s + 1) / shards
        hi = int(np.searchsorted(cum, target, side="left"))
        hi = min(max(hi, lo + 1), n)
        if lo < hi:
            bounds.append((lo, hi))
        lo = hi
        if lo >= n:
            break
    return bounds


class MultiprocessBackend(KernelBackend):
    """Shard the rectangle kernels over real cores; inline otherwise.

    Wraps a serial base backend (default numpy).  Per-rectangle results
    are independent of batching, and sinks are disjoint across
    rectangles within a call, so merging shard outputs by row is
    bit-identical to one serial call.  A worker crash mid-call falls
    back to recomputing the whole call inline — chaos can cost time,
    never correctness.
    """

    name = "multiprocess"

    #: Below this many evaluated (sink, source) pairs a call runs
    #: inline: pickling the arrays costs more than it saves.
    DEFAULT_MIN_PAIRS = 1 << 21

    def __init__(self, base=None, workers: int | None = None, min_pairs: int | None = None):
        self.base = get_backend(base) if base is not None else NumpyBackend()
        self.workers = resolve_pool_workers(workers)
        self.min_pairs = self.DEFAULT_MIN_PAIRS if min_pairs is None else int(min_pairs)
        self._pool: ProcPool | None = None

    def _ensure_pool(self) -> ProcPool:
        if self._pool is None:
            self._pool = ProcPool(workers=self.workers)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _sharded(self, counts, widths) -> bool:
        if self.workers <= 1:
            return False
        return int((counts * widths).sum()) >= self.min_pairs

    def _run_shards(self, fn, shard_args, merge) -> bool:
        """Fan shard tasks out; returns False when the pool path could
        not complete (caller then recomputes inline)."""
        from ..obs.wallclock import bucket  # runtime import: no core->obs cycle

        pool = self._ensure_pool()
        try:
            with bucket("serialization"):
                blobs = [
                    (fn, pickle.dumps(args, protocol=pickle.HIGHEST_PROTOCOL))
                    for args in shard_args
                ]
            with bucket("kernel"):
                results = pool.map(_run_pickled, blobs, retries=1)
        except Exception:  # pragma: no cover - defensive
            self.close()
            return False
        if not all(r.ok for r in results):
            return False
        for r in results:
            pids, acc_rows, pot_rows = r.value
            merge(pids, acc_rows, pot_rows)
        return True

    def eval_cell_rects(self, pos3, starts, counts, offsets, cell_ids, com3, mass, quad6, eps2, G, acc, pot, pair_chunk):
        if cell_ids.size == 0:
            return
        widths = np.diff(offsets)
        if not self._sharded(counts, widths):
            self.base.eval_cell_rects(pos3, starts, counts, offsets, cell_ids, com3, mass, quad6, eps2, G, acc, pot, pair_chunk)
            return
        shard_args = []
        for lo, hi in _shard_bounds(counts, widths, self.workers):
            off = offsets[lo:hi + 1] - offsets[lo]
            ids = cell_ids[offsets[lo]:offsets[hi]]
            shard_args.append((pos3, starts[lo:hi], counts[lo:hi], off, ids, com3, mass, quad6, eps2, G, pair_chunk))

        def merge(pids, acc_rows, pot_rows):
            acc[pids] += acc_rows
            pot[pids] += pot_rows

        if not self._run_shards(_cell_shard, shard_args, merge):
            self.base.eval_cell_rects(pos3, starts, counts, offsets, cell_ids, com3, mass, quad6, eps2, G, acc, pot, pair_chunk)

    def eval_direct_rects(self, pos3, masses, starts, counts, offsets, src_ids, eps2, G, acc, pot, pair_chunk):
        if src_ids.size == 0:
            return
        widths = np.diff(offsets)
        if not self._sharded(counts, widths):
            self.base.eval_direct_rects(pos3, masses, starts, counts, offsets, src_ids, eps2, G, acc, pot, pair_chunk)
            return
        shard_args = []
        for lo, hi in _shard_bounds(counts, widths, self.workers):
            off = offsets[lo:hi + 1] - offsets[lo]
            ids = src_ids[offsets[lo]:offsets[hi]]
            shard_args.append((pos3, masses, starts[lo:hi], counts[lo:hi], off, ids, eps2, G, pair_chunk))

        def merge(pids, acc_rows, pot_rows):
            acc[pids] += acc_rows
            pot[pids] += pot_rows

        if not self._run_shards(_direct_shard, shard_args, merge):
            self.base.eval_direct_rects(pos3, masses, starts, counts, offsets, src_ids, eps2, G, acc, pot, pair_chunk)

    # -- everything else runs inline on the base backend -----------------
    def eval_cells_dense(self, sinks, com, mass, quad, eps2, G):
        return self.base.eval_cells_dense(sinks, com, mass, quad, eps2, G)

    def eval_direct_dense(self, sinks, src_pos, src_mass, eps2, G):
        return self.base.eval_direct_dense(sinks, src_pos, src_mass, eps2, G)

    def segment_sum(self, values, offsets):
        return self.base.segment_sum(values, offsets)

    def scatter_add(self, target, idx, values):
        return self.base.scatter_add(target, idx, values)

    def bincount_sum(self, idx, weights=None, minlength=0):
        return self.base.bincount_sum(idx, weights=weights, minlength=minlength)

    def scatter_min(self, target, idx, values):
        return self.base.scatter_min(target, idx, values)

    def pair_within(self, pos, i_idx, j_idx, r2):
        return self.base.pair_within(pos, i_idx, j_idx, r2)
