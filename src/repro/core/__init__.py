"""The Hashed Oct-Tree (HOT) N-body library — the paper's flagship code.

Public surface:

* key arithmetic (:mod:`~repro.core.keys`) — Morton keys with the
  Warren–Salmon placeholder-bit convention;
* :class:`~repro.core.hashtable.KeyHashTable` — the key -> cell map that
  names the method;
* :func:`~repro.core.tree.build_tree` /
  :func:`~repro.core.gravity.tree_accelerations` — serial treecode;
* :func:`~repro.core.gravity.direct_accelerations` — O(N^2) reference;
* kernel backends (:mod:`~repro.core.backend`) — the registry behind
  the batched hot loops (``numpy`` reference, optional ``numba``);
* MACs (:mod:`~repro.core.mac`), micro-kernels
  (:mod:`~repro.core.kernels`, the Table 5 benchmark), domain
  decomposition (:mod:`~repro.core.domain`, Figure 6), leapfrog
  integration (:mod:`~repro.core.integrator`);
* the SimMPI parallel treecode with asynchronous batched messages
  (:mod:`~repro.core.abm`, :mod:`~repro.core.parallel`, Table 6).
"""

from .abm import ABMChannel
from .backend import (
    KernelBackend,
    NumpyBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .cellserver import (
    CellRecord,
    CellServer,
    combine_records,
    content_fingerprint,
    cover_interval,
    key_interval,
    shift_quadrupole,
)
from .cellcache import CellCache
from .domain import (
    DomainDecomposition,
    decompose,
    merge_splitter_candidates,
    morton_traversal_order_2d,
    sample_splitters,
    split_weighted,
    splitter_candidates,
)
from .gravity import (
    GravityResult,
    direct_accelerations,
    total_energy,
    tree_accelerations,
)
from .hashtable import KeyHashTable
from .hilbert import (
    axes_to_hilbert,
    hilbert_keys_from_positions,
    hilbert_to_axes,
)
from .integrator import LeapfrogIntegrator, StepStats, nbody_simulate
from .kernels import (
    KernelTiming,
    interaction_kernel,
    measure_kernel_mflops,
    reciprocal_sqrt_karp,
    reciprocal_sqrt_libm,
)
from .keys import (
    KEY_BITS,
    MAX_LEVEL,
    ROOT_KEY,
    BoundingBox,
    ancestor_at_level,
    cell_center_and_size,
    child_keys,
    key_level,
    key_level_2d,
    keys_from_positions,
    keys_from_positions_2d,
    octant_of,
    parent_key,
    positions_from_keys,
)
from .mac import AbsoluteErrorMAC, OpeningAngleMAC
from .outofcore import (
    OutOfCoreParticles,
    OutOfCoreResult,
    out_of_core_accelerations,
)
from .snapshot import Snapshot, SnapshotError, read_snapshot, snapshot_nbytes, write_snapshot
from .parallel import (
    ParallelConfig,
    ParallelGravityResult,
    ParallelRunResult,
    parallel_nbody_run,
    parallel_tree_accelerations,
)
from .traversal import (
    InteractionCounts,
    InteractionLists,
    TraversalResult,
    build_interaction_lists,
    compute_forces,
    compute_forces_reference,
    evaluate_interaction_lists,
)
from .tree import Tree, build_tree

__all__ = [
    "KEY_BITS",
    "MAX_LEVEL",
    "ROOT_KEY",
    "BoundingBox",
    "keys_from_positions",
    "positions_from_keys",
    "keys_from_positions_2d",
    "key_level",
    "key_level_2d",
    "parent_key",
    "child_keys",
    "ancestor_at_level",
    "octant_of",
    "cell_center_and_size",
    "KeyHashTable",
    "Tree",
    "build_tree",
    "OpeningAngleMAC",
    "AbsoluteErrorMAC",
    "InteractionCounts",
    "InteractionLists",
    "TraversalResult",
    "build_interaction_lists",
    "compute_forces",
    "compute_forces_reference",
    "evaluate_interaction_lists",
    "KernelBackend",
    "NumpyBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "GravityResult",
    "direct_accelerations",
    "tree_accelerations",
    "total_energy",
    "reciprocal_sqrt_libm",
    "reciprocal_sqrt_karp",
    "interaction_kernel",
    "KernelTiming",
    "measure_kernel_mflops",
    "split_weighted",
    "decompose",
    "DomainDecomposition",
    "sample_splitters",
    "splitter_candidates",
    "merge_splitter_candidates",
    "morton_traversal_order_2d",
    "LeapfrogIntegrator",
    "StepStats",
    "nbody_simulate",
    "ABMChannel",
    "CellCache",
    "CellRecord",
    "CellServer",
    "content_fingerprint",
    "cover_interval",
    "key_interval",
    "shift_quadrupole",
    "combine_records",
    "ParallelConfig",
    "ParallelGravityResult",
    "ParallelRunResult",
    "parallel_tree_accelerations",
    "parallel_nbody_run",
    "OutOfCoreParticles",
    "OutOfCoreResult",
    "out_of_core_accelerations",
    "hilbert_keys_from_positions",
    "axes_to_hilbert",
    "hilbert_to_axes",
    "Snapshot",
    "SnapshotError",
    "read_snapshot",
    "snapshot_nbytes",
    "write_snapshot",
]
