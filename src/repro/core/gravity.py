"""High-level gravity API: direct summation and the treecode front door.

``direct_accelerations`` is the O(N^2) reference every approximation is
pinned against in the test suite; ``tree_accelerations`` is the public
one-call treecode (build + multipoles + traversal).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import NULL
from .keys import BoundingBox
from .mac import OpeningAngleMAC
from .traversal import DEFAULT_PAIR_CHUNK, InteractionCounts, compute_forces
from .tree import Tree, build_tree

__all__ = ["GravityResult", "direct_accelerations", "tree_accelerations", "total_energy"]


@dataclass
class GravityResult:
    """Accelerations (N, 3) and potentials (N,) in input order."""

    accelerations: np.ndarray
    potentials: np.ndarray
    counts: InteractionCounts
    tree: Tree | None = None

    def potential_energy(self, masses: np.ndarray) -> float:
        """Total gravitational potential energy, (1/2) sum m_i phi_i."""
        return 0.5 * float(np.dot(masses, self.potentials))


def direct_accelerations(
    positions: np.ndarray,
    masses: np.ndarray,
    *,
    eps: float = 0.0,
    G: float = 1.0,
    block: int = 1024,
) -> GravityResult:
    """Plummer-softened direct N-body sum, evaluated in memory blocks.

    Self-interactions are excluded exactly (zero force contribution and
    no self-energy in the potential).  Handles every degenerate input
    the treecode accepts: N in {0, 1}, N not divisible by ``block``,
    zero-mass particles, and unsoftened coincident pairs.
    """
    if block < 1:
        raise ValueError("block must be positive")
    positions = np.ascontiguousarray(positions, dtype=np.float64)
    masses = np.ascontiguousarray(masses, dtype=np.float64)
    n = positions.shape[0]
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError("positions must have shape (N, 3)")
    if masses.shape != (n,):
        raise ValueError("masses must have shape (N,)")
    if eps < 0:
        raise ValueError("softening must be non-negative")
    eps2 = eps * eps
    acc = np.zeros_like(positions)
    pot = np.zeros(n)
    for lo in range(0, n, block):
        hi = min(lo + block, n)
        dr = positions[lo:hi, None, :] - positions[None, :, :]
        r2 = np.einsum("ijk,ijk->ij", dr, dr)
        rs2 = r2 + eps2
        own = np.arange(lo, hi)
        rs2[np.arange(hi - lo), own] = 1.0  # placeholder; masked below
        if eps2 == 0.0:
            rs2 = np.where(r2 == 0.0, 1.0, rs2)  # coincident pairs masked below
        inv_r = 1.0 / np.sqrt(rs2)
        inv_r3 = inv_r / rs2
        inv_r[np.arange(hi - lo), own] = 0.0
        inv_r3[np.arange(hi - lo), own] = 0.0
        if eps2 == 0.0:
            zero = r2 == 0.0
            inv_r = np.where(zero, 0.0, inv_r)
            inv_r3 = np.where(zero, 0.0, inv_r3)
        acc[lo:hi] = -(np.einsum("j,ijk,ij->ik", G * masses, dr, inv_r3))
        pot[lo:hi] = -(inv_r @ (G * masses))
    counts = InteractionCounts(p2p=n * (n - 1), p2c=0, groups=0)
    return GravityResult(acc, pot, counts)


def tree_accelerations(
    positions: np.ndarray,
    masses: np.ndarray | None = None,
    *,
    theta: float = 0.6,
    eps: float = 0.0,
    G: float = 1.0,
    bucket_size: int = 32,
    box: BoundingBox | None = None,
    mac=None,
    backend=None,
    pair_chunk: int = DEFAULT_PAIR_CHUNK,
    observer=NULL,
) -> GravityResult:
    """One-call hashed oct-tree gravity.

    Parameters mirror the serial HOT code: ``theta`` is the Barnes–Hut
    opening angle (accuracy knob), ``eps`` the Plummer softening,
    ``bucket_size`` the leaf capacity.  Pass a custom ``mac`` to use a
    different acceptance criterion, and ``backend`` (name, instance, or
    ``None`` for ``$REPRO_BACKEND``/numpy) to pick the kernel backend.
    """
    tree = build_tree(positions, masses, bucket_size=bucket_size, box=box)
    mac = mac if mac is not None else OpeningAngleMAC(theta)
    res = compute_forces(
        tree, mac=mac, eps=eps, G=G,
        backend=backend, pair_chunk=pair_chunk, observer=observer,
    )
    return GravityResult(res.accelerations, res.potentials, res.counts, tree)


def total_energy(
    positions: np.ndarray,
    velocities: np.ndarray,
    masses: np.ndarray,
    *,
    eps: float = 0.0,
    G: float = 1.0,
) -> tuple[float, float, float]:
    """(kinetic, potential, total) energy via direct summation.

    The diagnostic used by integrator tests; O(N^2), so keep N modest.
    """
    ke = 0.5 * float(np.sum(masses * np.einsum("ij,ij->i", velocities, velocities)))
    pe = direct_accelerations(positions, masses, eps=eps, G=G).potential_energy(masses)
    return ke, pe, ke + pe
