"""Serving cell data out of the global key namespace.

In the hashed oct-tree, any processor can name any cell of the global
tree by its Morton key.  A processor that *owns* a contiguous key range
can answer queries about every cell whose key interval lies inside that
range — mass, center of mass, quadrupole, children, or (for leaves) the
particles themselves.  :class:`CellServer` implements that service with
prefix sums over the Morton-sorted local particles: any cell is a
contiguous run, so its record is O(log N) searchsorted plus O(1)
arithmetic, with no explicit tree stored at all.

This is the data-plane half of the paper's "request and receive data
from other processors using the global key name space"; the control
plane (batching, deferral) lives in :mod:`repro.core.abm` and
:mod:`repro.core.parallel`.

Also here: :func:`cover_interval`, the minimal aligned-cell cover of a
key interval, which yields each processor's **branch cells** (the
coarsest cells fully owned by one processor), and
:func:`shift_quadrupole`, the parallel-axis combination used to
aggregate branch multipoles into the shared top of the tree.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .keys import KEY_BITS, MAX_LEVEL, BoundingBox, cell_center_and_size, key_level

__all__ = [
    "CellRecord",
    "CellServer",
    "content_fingerprint",
    "cover_interval",
    "key_interval",
    "shift_quadrupole",
    "combine_records",
]

_PLACEHOLDER = 1 << (3 * KEY_BITS)


def content_fingerprint(chunks, digest_size: int = 16) -> bytes:
    """Content-addressed digest of an ordered sequence of byte chunks.

    The repo-wide fingerprint primitive (blake2b, 16 bytes by default):
    equal content yields equal digests in every process — unlike
    ``hash()``, there is no per-process randomization — so a fingerprint
    can name work across restarts.  :meth:`CellServer.branch_fingerprint`
    applies it to a branch cell's particle data for cache invalidation;
    :func:`repro.campaign.fingerprint.scenario_fingerprint` applies it
    to canonical scenario JSON so identical simulation requests dedupe
    to cache hits.

    Only the concatenated content matters, not the chunk boundaries —
    callers that need boundary sensitivity (none today) must frame
    their chunks explicitly.

    >>> content_fingerprint([b"ab", b"c"]) == content_fingerprint([b"abc"])
    True
    >>> content_fingerprint([b"abc"]) == content_fingerprint([b"abd"])
    False
    """
    h = hashlib.blake2b(digest_size=digest_size)
    for chunk in chunks:
        h.update(chunk)
    return h.digest()


@lru_cache(maxsize=1 << 20)
def key_interval(key: int) -> tuple[int, int]:
    """Particle-key interval [lo, hi) covered by a cell key.

    Cached: every sink group's walk re-derives intervals for the same
    shared top-of-tree keys, so this sits on the traversal hot path.
    """
    level = key_level(key)
    width = 3 * (MAX_LEVEL - level)
    body = (key - (1 << (3 * level))) << width
    return body + _PLACEHOLDER, body + (1 << width) + _PLACEHOLDER


def cover_interval(lo: int, hi: int) -> list[int]:
    """Minimal set of aligned cell keys exactly covering [lo, hi).

    ``lo``/``hi`` are particle-level keys (placeholder bit set); the
    result is ordered by key interval.  This is the branch-cell
    computation: applied to a processor's key range it yields the
    coarsest cells that are entirely local to that processor.
    """
    if not (_PLACEHOLDER <= lo <= hi <= 2 * _PLACEHOLDER):
        raise ValueError("interval must lie in particle-key space")
    cells: list[int] = []
    cur = lo - _PLACEHOLDER
    end = hi - _PLACEHOLDER
    while cur < end:
        step = 1
        # Grow the block while it stays aligned and inside the interval.
        while cur % (step * 8) == 0 and cur + step * 8 <= end and step * 8 <= 8**MAX_LEVEL:
            step *= 8
        level = MAX_LEVEL
        s = step
        while s > 1:
            s //= 8
            level -= 1
        cells.append((cur // step) + (1 << (3 * level)))
        cur += step
    return cells


def shift_quadrupole(quad: np.ndarray, mass: float, d: np.ndarray) -> np.ndarray:
    """Parallel-axis shift of a packed traceless quadrupole.

    Moving the expansion center by ``-d`` (child COM minus parent COM)
    adds ``m (3 d d^T - |d|^2 I)``; the result stays traceless.
    """
    d2 = float(d @ d)
    out = quad.copy()
    out[0] += mass * (3.0 * d[0] * d[0] - d2)
    out[1] += mass * (3.0 * d[1] * d[1] - d2)
    out[2] += mass * (3.0 * d[2] * d[2] - d2)
    out[3] += mass * 3.0 * d[0] * d[1]
    out[4] += mass * 3.0 * d[0] * d[2]
    out[5] += mass * 3.0 * d[1] * d[2]
    return out


@dataclass
class CellRecord:
    """Everything a remote traversal needs to know about one cell."""

    key: int
    count: int
    mass: float
    com: np.ndarray  # (3,)
    quad: np.ndarray  # (6,) packed traceless
    bmax: float
    is_leaf: bool
    children: tuple[int, ...] = ()  # child keys (internal cells only)
    # Leaf payload (filled when served with particles).
    positions: np.ndarray | None = None
    masses: np.ndarray | None = None


def combine_records(key: int, children: list[CellRecord]) -> CellRecord:
    """Aggregate child records into their parent's record.

    Used to build the shared top of the global tree from the gathered
    branch cells of all processors.
    """
    if not children:
        raise ValueError("cannot combine zero children")
    mass = sum(c.mass for c in children)
    count = sum(c.count for c in children)
    if mass > 0:
        com = sum(c.mass * c.com for c in children) / mass
    else:
        com = children[0].com.copy()
    quad = np.zeros(6)
    bmax = 0.0
    for c in children:
        d = c.com - com
        quad += shift_quadrupole(c.quad, c.mass, d)
        bmax = max(bmax, float(np.linalg.norm(d)) + c.bmax)
    return CellRecord(
        key=key,
        count=count,
        mass=mass,
        com=np.asarray(com, dtype=np.float64),
        quad=quad,
        bmax=bmax,
        is_leaf=False,
        children=tuple(sorted(c.key for c in children)),
    )


class CellServer:
    """Answers cell queries for one processor's Morton-sorted particles.

    Parameters
    ----------
    keys, positions, masses:
        The local particle set, already sorted by ``keys``.
    box:
        The *global* bounding box (all processors must agree on it, or
        keys would not form a common namespace).
    bucket_size:
        Cells with at most this many particles are leaves.  Because the
        rule depends only on global cell content, every processor
        derives the same virtual global tree.
    """

    def __init__(
        self,
        keys: np.ndarray,
        positions: np.ndarray,
        masses: np.ndarray,
        box: BoundingBox,
        bucket_size: int = 32,
    ):
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        if keys.size > 1 and np.any(keys[1:] < keys[:-1]):
            raise ValueError("keys must be sorted")
        if bucket_size < 1:
            raise ValueError("bucket_size must be >= 1")
        self.keys = keys
        self.positions = np.ascontiguousarray(positions, dtype=np.float64)
        self.masses = np.ascontiguousarray(masses, dtype=np.float64)
        self.box = box
        self.bucket_size = bucket_size
        n = keys.shape[0]
        self._cm = np.zeros(n + 1)
        np.cumsum(self.masses, out=self._cm[1:])
        self._cmx = np.zeros((n + 1, 3))
        np.cumsum(self.masses[:, None] * self.positions, axis=0, out=self._cmx[1:])
        second = np.empty((n, 6))
        p = self.positions
        second[:, 0] = self.masses * p[:, 0] * p[:, 0]
        second[:, 1] = self.masses * p[:, 1] * p[:, 1]
        second[:, 2] = self.masses * p[:, 2] * p[:, 2]
        second[:, 3] = self.masses * p[:, 0] * p[:, 1]
        second[:, 4] = self.masses * p[:, 0] * p[:, 2]
        second[:, 5] = self.masses * p[:, 1] * p[:, 2]
        self._cs = np.zeros((n + 1, 6))
        np.cumsum(second, axis=0, out=self._cs[1:])
        # Default-variant record memo: records are immutable once built
        # and a server's particle data never changes, so every repeat
        # ask (local walks, remote serving, prefetch) shares one record.
        self._record_memo: dict[int, CellRecord] = {}

    @property
    def n_particles(self) -> int:
        return self.keys.shape[0]

    def run_of(self, key: int) -> tuple[int, int]:
        """Local particle run [s, e) of a cell key."""
        lo, hi = key_interval(key)
        s = int(np.searchsorted(self.keys, np.uint64(lo), side="left"))
        e = int(np.searchsorted(self.keys, np.uint64(hi - 1), side="right"))
        return s, e

    def branch_fingerprint(self, key: int) -> bytes:
        """Digest of the particle data inside cell ``key``.

        Hashes the Morton keys, positions, and masses of the cell's
        local run plus the server's prefix-sum state at the run start
        (16 bytes, blake2b).  :meth:`record` values are *differences of
        prefix sums*, so they depend on the accumulated floating-point
        prefix as well as the run itself; including both makes an
        unchanged fingerprint a proof that every record under this
        branch is bit-identical to the one a fresh fetch would return
        (assuming the global box and ``bucket_size`` are unchanged).
        Used by :meth:`repro.core.cellcache.CellCache.retain_valid` to
        invalidate cross-timestep cache entries.
        """
        s, e = self.run_of(key)
        return content_fingerprint([
            np.ascontiguousarray(self.keys[s:e]).tobytes(),
            np.ascontiguousarray(self.positions[s:e]).tobytes(),
            np.ascontiguousarray(self.masses[s:e]).tobytes(),
            self._cm[s : s + 1].tobytes(),
            np.ascontiguousarray(self._cmx[s : s + 1]).tobytes(),
            np.ascontiguousarray(self._cs[s : s + 1]).tobytes(),
        ])

    def record(self, key: int, *, with_particles: bool | None = None) -> CellRecord:
        """Full cell record; empty cells yield ``count == 0`` records.

        ``with_particles`` defaults to "yes if leaf" (what a remote
        requester needs); pass False to suppress the payload.
        """
        default = with_particles is None
        if default:
            memo = self._record_memo.get(key)
            if memo is not None:
                return memo
        s, e = self.run_of(key)
        count = e - s
        level = key_level(key)
        if count == 0:
            rec = CellRecord(key, 0, 0.0, np.zeros(3), np.zeros(6), 0.0, True)
            if default:
                self._record_memo[key] = rec
            return rec
        mass = float(self._cm[e] - self._cm[s])
        mx = self._cmx[e] - self._cmx[s]
        raw2 = self._cs[e] - self._cs[s]
        com = mx / mass if mass > 0 else self.positions[s].copy()
        quad = np.empty(6)
        quad[0] = raw2[0] - mass * com[0] * com[0]
        quad[1] = raw2[1] - mass * com[1] * com[1]
        quad[2] = raw2[2] - mass * com[2] * com[2]
        quad[3] = raw2[3] - mass * com[0] * com[1]
        quad[4] = raw2[4] - mass * com[0] * com[2]
        quad[5] = raw2[5] - mass * com[1] * com[2]
        trace = quad[0] + quad[1] + quad[2]
        quad[:3] = 3.0 * quad[:3] - trace
        quad[3:] *= 3.0
        center, size = cell_center_and_size(key, self.box)
        bmax = float(np.sqrt(3.0) / 2.0 * size + np.linalg.norm(com - center))
        is_leaf = count <= self.bucket_size or level >= MAX_LEVEL
        children: tuple[int, ...] = ()
        if not is_leaf:
            kids = []
            for octant in range(8):
                ck = (key << 3) | octant
                cs_, ce_ = self.run_of(ck)
                if ce_ > cs_:
                    kids.append(ck)
            children = tuple(kids)
        rec = CellRecord(key, count, mass, com, quad, bmax, is_leaf, children)
        if with_particles is None:
            with_particles = is_leaf
        if with_particles and is_leaf:
            rec.positions = self.positions[s:e].copy()
            rec.masses = self.masses[s:e].copy()
        if default:
            self._record_memo[key] = rec
        return rec

    def leaf_groups(self, branch_keys: list[int]) -> list[tuple[int, int, int]]:
        """Virtual-tree leaves under the given branch cells.

        Returns ``(key, start, end)`` runs covering every local
        particle exactly once — the sink groups of the parallel
        traversal.
        """
        groups: list[tuple[int, int, int]] = []
        stack = list(branch_keys)
        while stack:
            key = stack.pop()
            s, e = self.run_of(key)
            if e == s:
                continue
            if e - s <= self.bucket_size or key_level(key) >= MAX_LEVEL:
                groups.append((key, s, e))
                continue
            for octant in range(8):
                stack.append((key << 3) | octant)
        groups.sort(key=lambda g: g[1])
        return groups
