"""Persistent remote-cell cache for the parallel treecode.

Each rank of the parallel hashed oct-tree keeps the remote cell records
it has fetched so a key missed in one traversal round — or one
*timestep* — need not cross the network again.  The paper's HOT library
calls this structure the hash-table cache of nonlocal data; together
with request batching it is what hides commodity-network latency
(PAPER.md §4).

The cache is a bounded LRU keyed by Morton cell key.  Three properties
matter for correctness and the tests pin all of them:

* **Determinism** — contents depend only on the sequence of
  ``insert``/``get`` calls, never on wall-clock time, so SimMPI replays
  are bit-identical.
* **Capacity bounds** — at most ``capacity`` entries; inserting into a
  full cache evicts the least recently used entry and counts it.
* **Safe cross-step reuse** — every entry is stamped with the owner's
  branch key and a fingerprint of that branch's underlying particle
  data.  After particles move, :meth:`retain_valid` drops exactly the
  entries whose source branch changed, so stale multipoles can never be
  served (see ``CellServer.branch_fingerprint``).

>>> cache = CellCache(capacity=2)
>>> cache.insert(5, "rec5", branch_key=1, fingerprint=b"a")
>>> cache.insert(6, "rec6", branch_key=1, fingerprint=b"a")
>>> cache.get(5)
'rec5'
>>> cache.insert(7, "rec7", branch_key=2, fingerprint=b"b")  # evicts 6 (LRU)
>>> cache.get(6) is None
True
>>> cache.retain_valid({1: b"CHANGED", 2: b"b"})  # branch 1 moved
>>> sorted(cache.keys())
[7]
>>> cache.stats["evictions"], cache.stats["invalidated"]
(1, 1)
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Iterable, Mapping

__all__ = ["CellCache"]


class CellCache:
    """Bounded LRU cache of remote ``CellRecord`` wire tuples.

    Parameters
    ----------
    capacity:
        Maximum number of entries (> 0).  ``None`` means unbounded —
        useful for tests and small runs.

    Counters (``stats`` dict, all monotonically increasing):

    ``hits`` / ``misses``
        ``get`` outcomes.
    ``inserts``
        successful ``insert`` calls (re-inserting a present key counts
        but does not grow the cache).
    ``evictions``
        entries dropped by the capacity bound.
    ``invalidated``
        entries dropped by :meth:`retain_valid` because their source
        branch changed between timesteps.
    """

    def __init__(self, capacity: int | None = None):
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive (or None for unbounded)")
        self.capacity = capacity
        self._entries: OrderedDict[int, tuple[Any, int, bytes]] = OrderedDict()
        self.stats: dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "inserts": 0,
            "evictions": 0,
            "invalidated": 0,
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    def keys(self) -> Iterable[int]:
        return self._entries.keys()

    def get(self, key: int) -> Any | None:
        """Return the cached record for ``key`` (marking it recently
        used) or ``None``; every call counts as a hit or a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats["misses"] += 1
            return None
        self._entries.move_to_end(key)
        self.stats["hits"] += 1
        return entry[0]

    def peek(self, key: int) -> Any | None:
        """Like :meth:`get` but touching neither LRU order nor counters."""
        entry = self._entries.get(key)
        return None if entry is None else entry[0]

    def insert(self, key: int, record: Any, branch_key: int, fingerprint: bytes) -> None:
        """Store ``record`` under ``key``, evicting the LRU entry if full.

        ``branch_key`` is the owner's branch-cell key whose subtree
        produced this record and ``fingerprint`` that branch's data
        fingerprint at fetch time; the pair decides survival in
        :meth:`retain_valid`.
        """
        if key in self._entries:
            self._entries.move_to_end(key)
        elif self.capacity is not None and len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats["evictions"] += 1
        self._entries[key] = (record, branch_key, fingerprint)
        self.stats["inserts"] += 1

    def retain_valid(self, branch_fingerprints: Mapping[int, bytes]) -> None:
        """Drop every entry whose source branch changed (or vanished).

        ``branch_fingerprints`` maps branch key → current fingerprint,
        as gathered from all owners at the start of a timestep.  An
        entry survives iff its stamped ``(branch_key, fingerprint)``
        still matches; matching fingerprints guarantee the branch's
        particle data — hence every record derived from it — is
        byte-identical, so surviving entries are exact, not heuristic.
        """
        stale = [
            key
            for key, (_, bkey, fp) in self._entries.items()
            if branch_fingerprints.get(bkey) != fp
        ]
        for key in stale:
            del self._entries[key]
        self.stats["invalidated"] += len(stale)

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        self._entries.clear()

    def snapshot_stats(self) -> dict[str, int]:
        """Copy of the counters plus the current ``size``."""
        out = dict(self.stats)
        out["size"] = len(self._entries)
        return out
