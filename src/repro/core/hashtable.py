"""The key -> cell hash table that gives the Hashed Oct-Tree its name.

Section 4.2: *"A hash table is used in order to translate the key into
a pointer to the location where the cell data are stored.  This level
of indirection through a hash table can also be used to catch accesses
to non-local data, and allows us to request and receive data from other
processors using the global key name space."*

:class:`KeyHashTable` is an open-addressing (linear probing) table over
NumPy arrays, with batch insert/lookup vectorized across probe rounds —
a faithful stand-in for the C original's performance structure.  Lookup
of an absent key is not an error: it returns a miss mask, which is
exactly the "catch" mechanism the parallel traversal uses to detect
that a cell lives on another processor.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KeyHashTable"]

_U = np.uint64

#: Fibonacci-style 64-bit multiplicative hashing constant.
_HASH_MULT = _U(0x9E3779B97F4A7C15)

#: Sentinel for an empty slot (no valid Morton key is 0: all carry the
#: placeholder bit).
_EMPTY = _U(0)


class KeyHashTable:
    """Open-addressing hash map from uint64 Morton keys to int64 values.

    Grows automatically past ``max_load`` occupancy.  Duplicate inserts
    overwrite (last write wins), matching the treecode's use where a
    cell's slot is updated as data arrives from remote processors.
    """

    def __init__(self, capacity: int = 1024, max_load: float = 0.65):
        if capacity < 8:
            capacity = 8
        if not 0.1 <= max_load <= 0.9:
            raise ValueError(f"max_load must be in [0.1, 0.9], got {max_load}")
        self._bits = max(3, int(np.ceil(np.log2(capacity))))
        self.max_load = max_load
        self._alloc(self._bits)

    def _alloc(self, bits: int) -> None:
        self._bits = bits
        size = 1 << bits
        self._keys = np.zeros(size, dtype=np.uint64)
        self._values = np.zeros(size, dtype=np.int64)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def capacity(self) -> int:
        return self._keys.shape[0]

    @property
    def load_factor(self) -> float:
        return self._count / self.capacity

    def _slots(self, keys: np.ndarray) -> np.ndarray:
        shift = _U(64 - self._bits)
        return ((keys * _HASH_MULT) >> shift).astype(np.int64)

    def insert(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Insert (or overwrite) a batch of key -> value mappings."""
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        values = np.ascontiguousarray(values, dtype=np.int64)
        if keys.shape != values.shape or keys.ndim != 1:
            raise ValueError("keys and values must be matching 1-D arrays")
        if keys.size == 0:
            return
        if np.any(keys == _EMPTY):
            raise ValueError("key 0 is reserved (Morton keys always carry the placeholder bit)")
        # A batch may itself contain duplicate keys; keep the last
        # occurrence to preserve overwrite semantics.
        _, last_idx = np.unique(keys[::-1], return_index=True)
        keep = np.sort(keys.size - 1 - last_idx)
        keys, values = keys[keep], values[keep]
        while (self._count + keys.size) / self.capacity > self.max_load:
            self._grow()
        self._insert_unique(keys, values)

    def _grow(self) -> None:
        old_keys, old_values = self._keys, self._values
        live = old_keys != _EMPTY
        self._alloc(self._bits + 1)
        self._insert_unique(old_keys[live], old_values[live])

    def _insert_unique(self, keys: np.ndarray, values: np.ndarray) -> None:
        slots = self._slots(keys)
        pending = np.arange(keys.size)
        mask = np.int64(self.capacity - 1)
        while pending.size:
            s = slots[pending]
            slot_keys = self._keys[s]
            empty = slot_keys == _EMPTY
            match = slot_keys == keys[pending]
            placeable = empty | match
            if np.any(placeable):
                idx = pending[placeable]
                target = s[placeable]
                # Two distinct new keys can hash to the same empty slot in
                # the same round; keep the first of each target slot and
                # retry the rest next round.
                uniq_target, first = np.unique(target, return_index=True)
                chosen = idx[first]
                was_empty = self._keys[uniq_target] == _EMPTY
                self._keys[uniq_target] = keys[chosen]
                self._values[uniq_target] = values[chosen]
                self._count += int(was_empty.sum())
                placed = np.zeros(pending.size, dtype=bool)
                placeable_idx = np.flatnonzero(placeable)
                placed[placeable_idx[first]] = True
                pending = pending[~placed]
            slots[pending] = (slots[pending] + 1) & mask

    def lookup(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batch lookup: ``(values, found)`` arrays.

        ``values[i]`` is meaningful only where ``found[i]``; misses are
        the non-local-data signal in the parallel traversal.
        """
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        if keys.ndim != 1:
            raise ValueError("keys must be a 1-D array")
        values = np.zeros(keys.shape, dtype=np.int64)
        found = np.zeros(keys.shape, dtype=bool)
        if keys.size == 0:
            return values, found
        slots = self._slots(keys)
        pending = np.arange(keys.size)
        mask = np.int64(self.capacity - 1)
        # Linear probing terminates at an empty slot: the key is absent.
        for _ in range(self.capacity):
            if pending.size == 0:
                break
            s = slots[pending]
            slot_keys = self._keys[s]
            hit = slot_keys == keys[pending]
            miss = slot_keys == _EMPTY
            values[pending[hit]] = self._values[s[hit]]
            found[pending[hit]] = True
            pending = pending[~(hit | miss)]
            slots[pending] = (slots[pending] + 1) & mask
        return values, found

    def get(self, key: int, default: int | None = None) -> int | None:
        """Scalar convenience lookup."""
        values, found = self.lookup(np.array([key], dtype=np.uint64))
        if found[0]:
            return int(values[0])
        return default

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def keys(self) -> np.ndarray:
        """All stored keys (unordered)."""
        return self._keys[self._keys != _EMPTY].copy()
