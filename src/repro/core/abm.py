"""Asynchronous Batched Messages (ABM) over SimMPI.

Section 4.2: *"To avoid stalls during non-local data access, we
effectively do explicit 'context switching' using a software queue to
keep track of which computations have been put aside waiting for
messages to arrive.  In order to manage the complexities of the
required asynchronous message traffic, we have developed a paradigm
called 'asynchronous batched messages (ABM)' built from primitive
send/recv functions whose interface is modeled after that of active
messages."*

The reproduction keeps both halves of that design — per-destination
request *batching* and a *deferral queue* of computations parked on
missing data — but drives the message traffic in bulk-synchronous
rounds (an alltoall of request batches, serve, an alltoall of reply
batches).  Rounds make the simulation deterministic while preserving
the communication volume and batching granularity that determine
performance; DESIGN.md records this as the one structural divergence
from the original's fully asynchronous traffic.

Usage, inside a SimMPI rank program::

    abm = ABMChannel(comm, serve_fn)
    abm.request(dest, item)         # queue, no traffic yet
    replies = yield from abm.exchange()   # one batched round
    done = yield from abm.globally_done(n_local_pending)
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from ..simmpi import patterns as mpi_patterns
from ..simmpi.api import Comm

__all__ = ["ABMChannel"]

ServeFn = Callable[[int, list[Any]], list[Any]]


class ABMChannel:
    """Batched request/reply channel for one communicator.

    Parameters
    ----------
    comm:
        The rank's :class:`~repro.simmpi.api.Comm`.
    serve:
        ``serve(requester_rank, items) -> replies`` called once per
        incoming batch; must return one reply per item.
    """

    def __init__(self, comm: Comm, serve: ServeFn):
        self.comm = comm
        self.serve = serve
        self._outgoing: list[list[Any]] = [[] for _ in range(comm.size)]
        self.rounds = 0
        self.requests_sent = 0
        self.requests_served = 0

    def request(self, dest: int, item: Any) -> None:
        """Queue one request item for ``dest`` (sent at next exchange)."""
        if not 0 <= dest < self.comm.size:
            raise ValueError(f"destination {dest} out of range")
        if dest == self.comm.rank:
            raise ValueError("local data should be served locally, not requested")
        self._outgoing[dest].append(item)
        self.requests_sent += 1

    @property
    def pending_requests(self) -> int:
        return sum(len(batch) for batch in self._outgoing)

    def exchange(self) -> Generator:
        """One batched round; returns ``replies`` keyed like the requests.

        The return value is a list with one entry per destination rank:
        ``replies[d][i]`` answers the ``i``-th item queued for rank
        ``d`` since the previous exchange.
        """
        outgoing = self._outgoing
        self._outgoing = [[] for _ in range(self.comm.size)]
        incoming = yield self.comm.alltoall(outgoing)
        reply_batches: list[list[Any]] = []
        for src, items in enumerate(incoming):
            if items:
                replies = self.serve(src, list(items))
                if len(replies) != len(items):
                    raise RuntimeError(
                        f"serve returned {len(replies)} replies for {len(items)} requests"
                    )
                self.requests_served += len(items)
            else:
                replies = []
            reply_batches.append(replies)
        answered = yield self.comm.alltoall(reply_batches)
        self.rounds += 1
        return list(answered)

    def globally_done(self, local_pending: int) -> Generator:
        """True when *no* rank still has work (allreduce of counters).

        Routed through the size-selecting collective wrapper: the flat
        engine primitive below :data:`~repro.simmpi.patterns.FLAT_COLLECTIVE_MAX`
        ranks, the binomial tree above it."""
        total = yield from mpi_patterns.allreduce(
            self.comm, int(local_pending) + self.pending_requests
        )
        return total == 0
