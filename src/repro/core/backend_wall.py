"""Wall-clock instrumented kernel backend.

:class:`WallBackend` wraps any registered backend and charges every
kernel call to the ``"kernel"`` bucket of the active
:class:`repro.obs.wallclock.WallProfiler` — the measurement side of
the ``python -m repro.obs wallclock`` report.  Arithmetic is untouched
(every call delegates verbatim), so results are bit-identical to the
wrapped backend; :func:`repro.core.backend.get_backend` passes
instances through, which is how a wrapped backend rides an existing
``backend=`` kwarg, e.g.::

    config = ParallelConfig(backend=WallBackend("numpy"))

Timing wraps the synchronous call only — safe because kernel calls
never yield to the engine.
"""

from __future__ import annotations

from ..obs.wallclock import bucket
from .backend import KernelBackend, get_backend

__all__ = ["WallBackend"]


class WallBackend(KernelBackend):
    """Delegating backend that wall-times every kernel call."""

    def __init__(self, base=None):
        self.base = get_backend(base)
        self.name = f"wall+{self.base.name}"

    def eval_cells_dense(self, *args):
        with bucket("kernel"):
            return self.base.eval_cells_dense(*args)

    def eval_direct_dense(self, *args):
        with bucket("kernel"):
            return self.base.eval_direct_dense(*args)

    def eval_cell_rects(self, *args):
        with bucket("kernel"):
            return self.base.eval_cell_rects(*args)

    def eval_direct_rects(self, *args):
        with bucket("kernel"):
            return self.base.eval_direct_rects(*args)

    def segment_sum(self, *args):
        with bucket("kernel"):
            return self.base.segment_sum(*args)

    def scatter_add(self, *args):
        with bucket("kernel"):
            return self.base.scatter_add(*args)

    def bincount_sum(self, idx, weights=None, minlength=0):
        with bucket("kernel"):
            return self.base.bincount_sum(idx, weights=weights, minlength=minlength)

    def scatter_min(self, *args):
        with bucket("kernel"):
            return self.base.scatter_min(*args)

    def pair_within(self, *args):
        with bucket("kernel"):
            return self.base.pair_within(*args)
