"""Work-weighted domain decomposition along the Morton curve.

Section 4.2: *"The domain decomposition is obtained by splitting this
list into N_p (number of processors) pieces … practically identical to
a parallel sorting algorithm, with the modification that the amount of
data that ends up in each processor is weighted by the work associated
with each item."*

:func:`split_weighted` performs the serial splitting primitive —
choosing key-space boundaries so each piece carries an equal share of
the total work — and :func:`decompose` applies it to particle sets.
:func:`sample_splitters` is the sampling step of the parallel sort the
parallel treecode runs over SimMPI.  :func:`morton_traversal_order_2d`
produces the self-similar load-balancing curve of Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .keys import BoundingBox, keys_from_positions, keys_from_positions_2d

__all__ = [
    "split_weighted",
    "DomainDecomposition",
    "decompose",
    "sample_splitters",
    "splitter_candidates",
    "merge_splitter_candidates",
    "morton_traversal_order_2d",
]


def split_weighted(work: np.ndarray, n_pieces: int) -> np.ndarray:
    """Boundaries splitting a work array into balanced contiguous runs.

    Returns ``n_pieces + 1`` indices ``b`` with ``b[0] == 0`` and
    ``b[-1] == len(work)``; piece ``p`` is ``[b[p], b[p+1])``.  The cut
    points are where cumulative work crosses equal shares, so no piece
    exceeds the ideal share by more than one item's work.

    ``work`` must be 1-D, non-negative, and finite.  A zero-total work
    array is an explicitly defined degenerate case: the split falls
    back to balancing by *count* (a uniform split of the indices), so
    first-step callers that have no work measurements yet get the same
    decomposition as passing uniform weights.

    >>> split_weighted(np.array([1.0, 1.0, 4.0, 1.0, 1.0]), 2)
    array([0, 2, 5])
    >>> split_weighted(np.zeros(12), 3)  # degenerate: count-balanced
    array([ 0,  4,  8, 12])
    """
    work = np.asarray(work, dtype=np.float64)
    if work.ndim != 1:
        raise ValueError("work must be 1-D")
    if not np.all(np.isfinite(work)):
        raise ValueError("work must be finite")
    if np.any(work < 0):
        raise ValueError("work must be non-negative")
    if n_pieces < 1:
        raise ValueError("n_pieces must be >= 1")
    total = work.sum()
    if total == 0:
        # Degenerate: balance by count instead.
        return np.linspace(0, work.size, n_pieces + 1).astype(np.int64)
    cum = np.concatenate([[0.0], np.cumsum(work)])
    targets = total * np.arange(1, n_pieces) / n_pieces
    # Nearest-rounding of each boundary: cut where cumulative work is
    # closest to the target share, so no piece misses its share by more
    # than one item's work.
    hi = np.searchsorted(cum, targets, side="left")
    hi = np.clip(hi, 1, work.size)
    lo = hi - 1
    pick_lo = np.abs(cum[lo] - targets) <= np.abs(cum[hi] - targets)
    inner = np.where(pick_lo, lo, hi)
    bounds = np.concatenate([[0], inner, [work.size]]).astype(np.int64)
    return np.maximum.accumulate(bounds)


@dataclass
class DomainDecomposition:
    """Result of splitting a particle set across processors."""

    boundaries: np.ndarray  # (P+1,) indices into the Morton-sorted arrays
    order: np.ndarray  # Morton sort permutation of the input
    keys: np.ndarray  # sorted keys
    work: np.ndarray  # sorted per-particle work

    @property
    def n_pieces(self) -> int:
        return self.boundaries.size - 1

    def owner_of(self, sorted_index: np.ndarray | int) -> np.ndarray | int:
        """Which piece a Morton-sorted particle index belongs to."""
        return np.searchsorted(self.boundaries, sorted_index, side="right") - 1

    def piece(self, p: int) -> slice:
        if not 0 <= p < self.n_pieces:
            raise ValueError(f"piece {p} out of range")
        return slice(int(self.boundaries[p]), int(self.boundaries[p + 1]))

    def counts(self) -> np.ndarray:
        return np.diff(self.boundaries)

    def work_shares(self) -> np.ndarray:
        """Per-piece work divided by the ideal equal share."""
        cum = np.concatenate([[0.0], np.cumsum(self.work)])
        per = cum[self.boundaries[1:]] - cum[self.boundaries[:-1]]
        total = self.work.sum()
        if total == 0:
            return np.ones(self.n_pieces)
        return per / (total / self.n_pieces)


def decompose(
    positions: np.ndarray,
    work: np.ndarray | None = None,
    *,
    n_pieces: int,
    box: BoundingBox | None = None,
) -> DomainDecomposition:
    """Morton-sort particles and split them into work-balanced pieces.

    ``work`` defaults to uniform (pure count balancing); in production
    runs the treecode feeds back the previous step's interaction counts,
    as the original HOT code does.
    """
    positions = np.asarray(positions, dtype=np.float64)
    n = positions.shape[0]
    if work is None:
        work = np.ones(n)
    else:
        work = np.asarray(work, dtype=np.float64)
        if work.shape != (n,):
            raise ValueError("work must have shape (N,)")
    keys = keys_from_positions(positions, box)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_work = work[order]
    boundaries = split_weighted(sorted_work, n_pieces)
    return DomainDecomposition(boundaries, order, sorted_keys, sorted_work)


def sample_splitters(
    local_keys: np.ndarray,
    local_work: np.ndarray,
    n_pieces: int,
    oversample: int = 32,
    seed: int = 0,
) -> np.ndarray:
    """Candidate splitter keys from a local sample (parallel-sort step).

    Each rank calls this on its local data; gathering and merging the
    samples, then splitting the merged sample with
    :func:`split_weighted`, yields global splitter keys without moving
    the full particle set — the classic sample-sort construction.
    """
    local_keys = np.asarray(local_keys, dtype=np.uint64)
    if local_keys.size == 0:
        return np.empty(0, dtype=np.uint64)
    rng = np.random.default_rng(seed)
    k = min(local_keys.size, n_pieces * oversample)
    idx = rng.choice(local_keys.size, size=k, replace=False)
    return np.sort(local_keys[idx])


def splitter_candidates(
    local_keys: np.ndarray,
    local_work: np.ndarray,
    work_before: float,
    total: float,
    n_pieces: int,
) -> dict[int, int]:
    """Splitter keys this rank proposes for incremental rebalancing.

    Incremental, work-weighted rebalancing (paper §4.2): instead of
    re-running the full sample sort every step, each rank measures the
    work its particles actually cost last step and moves the existing
    domain boundaries to re-equalize it.  Boundary ``b`` of an
    ``n_pieces``-way split belongs at global cumulative work
    ``b * total / n_pieces``; the rank whose work range contains that
    target proposes the Morton key to cut at.

    Parameters
    ----------
    local_keys, local_work:
        This rank's particle keys (globally Morton-sorted across ranks)
        and their measured per-particle work (arbitrary units, e.g.
        interaction counts).
    work_before:
        Sum of all lower-ranked processors' work (an exclusive scan of
        the per-rank totals).
    total:
        Global work sum.  Zero/non-positive totals propose nothing —
        callers keep the old splitters (degenerate case mirrors
        :func:`split_weighted`).
    n_pieces:
        Number of domains (interior boundaries are ``1 .. n_pieces-1``).

    Returns
    -------
    Mapping of boundary index → proposed splitter key.  A proposed key
    ``k`` means "particles with key >= k start piece ``b``"; cut points
    round to the nearest particle edge, and each target is claimed by
    exactly one rank (targets on a rank seam go to the higher rank).

    >>> keys = np.array([10, 20, 30, 40], dtype=np.uint64)
    >>> splitter_candidates(keys, np.array([1.0, 1, 1, 1]), 0.0, 4.0, 2)
    {1: 21}
    """
    local_keys = np.asarray(local_keys, dtype=np.uint64)
    local_work = np.asarray(local_work, dtype=np.float64)
    out: dict[int, int] = {}
    if total <= 0 or local_keys.size == 0:
        return out
    cum = np.cumsum(local_work)
    local_total = float(cum[-1])
    for b in range(1, n_pieces):
        t = total * b / n_pieces - work_before
        if t <= 0 or t > local_total:
            continue
        j = int(np.searchsorted(cum, t, side="left"))
        below = float(cum[j - 1]) if j > 0 else 0.0
        n_left = j + 1 if abs(float(cum[j]) - t) <= abs(t - below) else j
        if n_left == 0:
            out[b] = int(local_keys[0])
        else:
            out[b] = int(local_keys[n_left - 1]) + 1
    return out


def merge_splitter_candidates(
    old_splitters: list[int], proposals: list[dict[int, int]]
) -> list[int]:
    """Combine per-rank proposals into a full monotone splitter list.

    ``old_splitters`` is the current length-``P+1`` list (sentinels at
    both ends are kept verbatim); ``proposals`` holds every rank's
    :func:`splitter_candidates` result.  Boundaries nobody proposed
    keep their old key; the merged list is forced non-decreasing so a
    pathological proposal can never invert two domains.

    >>> merge_splitter_candidates([0, 25, 50, 100], [{1: 31}, {}])
    [0, 31, 50, 100]
    """
    new = list(old_splitters)
    for prop in proposals:
        for b, key in prop.items():
            if 0 < b < len(new) - 1:
                new[b] = int(key)
    for i in range(1, len(new)):
        if new[i] < new[i - 1]:
            new[i] = new[i - 1]
    return new


def morton_traversal_order_2d(positions: np.ndarray, box: BoundingBox | None = None) -> np.ndarray:
    """Indices ordering 2-D points along the self-similar Morton curve.

    Connecting the points in this order draws the left panel of
    Figure 6; splitting the order into equal-work runs shows the
    processor domains.
    """
    keys = keys_from_positions_2d(positions, box)
    return np.argsort(keys, kind="stable")
