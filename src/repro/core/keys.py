"""Morton (Z-order) key arithmetic — the heart of the hashed oct-tree.

Section 4.2: *"we assign a Key to each particle, which is based on
Morton ordering.  This maps the points in 3-dimensional space to a
1-dimensional list, while maintaining as much spatial locality as
possible … The Morton ordered key labeling scheme implicitly defines
the topology of the tree, and makes it possible to easily compute the
key of a parent, daughter, or boundary cell for a given key."*

Keys follow the Warren–Salmon convention: coordinates are quantized to
``KEY_BITS`` (21) bits per dimension, bit-interleaved (x in the least
significant position), and prefixed with a **placeholder bit** one
position above the coordinate bits.  The placeholder makes every key's
tree level self-describing and makes the root key ``1``:

* particle key: placeholder at bit 63, level 21;
* a cell's parent is ``key >> 3``;
* a cell's eight daughters are ``key << 3 | octant``;
* a key's level is ``(bit_length(key) - 1) // 3``.

All hot paths are vectorized over ``uint64`` arrays; scalar helpers for
single keys accept/return Python ints.  A 2-D variant (quadtree keys,
``KEY_BITS_2D`` = 31 bits per dimension) supports the Figure 6
load-balancing curve.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "KEY_BITS",
    "MAX_LEVEL",
    "ROOT_KEY",
    "KEY_BITS_2D",
    "MAX_LEVEL_2D",
    "keys_from_positions",
    "positions_from_keys",
    "key_level",
    "parent_key",
    "child_keys",
    "ancestor_at_level",
    "octant_of",
    "cell_center_and_size",
    "keys_from_positions_2d",
    "key_level_2d",
    "BoundingBox",
]

#: Bits per dimension for 3-D keys (63 coordinate bits + placeholder).
KEY_BITS = 21
#: Deepest 3-D tree level addressable by a key.
MAX_LEVEL = KEY_BITS
#: The root cell's key (just the placeholder bit).
ROOT_KEY = 1

#: Bits per dimension for 2-D keys (62 coordinate bits + placeholder).
KEY_BITS_2D = 31
MAX_LEVEL_2D = KEY_BITS_2D

_U = np.uint64


class BoundingBox:
    """Cubical key-space domain: the root cell in world coordinates.

    Morton quantization requires a common cube.  ``from_points`` pads
    the tight bounding box slightly so no particle lands exactly on the
    upper boundary (which would quantize out of range).
    """

    __slots__ = ("corner", "size")

    def __init__(self, corner: np.ndarray, size: float):
        corner = np.asarray(corner, dtype=np.float64)
        if corner.ndim != 1:
            raise ValueError("corner must be a 1-D coordinate")
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self.corner = corner
        self.size = float(size)

    @classmethod
    def from_points(cls, positions: np.ndarray, pad: float = 1e-6) -> "BoundingBox":
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[0] == 0:
            raise ValueError("positions must be a non-empty (N, dim) array")
        lo = positions.min(axis=0)
        hi = positions.max(axis=0)
        span = float((hi - lo).max())
        if span == 0.0:
            span = 1.0
        size = span * (1.0 + 2.0 * pad)
        corner = lo - span * pad
        return cls(corner, size)

    def __repr__(self) -> str:
        return f"BoundingBox(corner={self.corner.tolist()}, size={self.size})"


def _dilate3(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of each element 3 positions apart."""
    x = x.astype(np.uint64)
    x = (x | (x << _U(32))) & _U(0x1F00000000FFFF)
    x = (x | (x << _U(16))) & _U(0x1F0000FF0000FF)
    x = (x | (x << _U(8))) & _U(0x100F00F00F00F00F)
    x = (x | (x << _U(4))) & _U(0x10C30C30C30C30C3)
    x = (x | (x << _U(2))) & _U(0x1249249249249249)
    return x


def _undilate3(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_dilate3`."""
    x = x & _U(0x1249249249249249)
    x = (x | (x >> _U(2))) & _U(0x10C30C30C30C30C3)
    x = (x | (x >> _U(4))) & _U(0x100F00F00F00F00F)
    x = (x | (x >> _U(8))) & _U(0x1F0000FF0000FF)
    x = (x | (x >> _U(16))) & _U(0x1F00000000FFFF)
    x = (x | (x >> _U(32))) & _U(0x1FFFFF)
    return x


def _dilate2(x: np.ndarray) -> np.ndarray:
    """Spread the low 31 bits of each element 2 positions apart."""
    x = x.astype(np.uint64)
    x = (x | (x << _U(16))) & _U(0x0000FFFF0000FFFF)
    x = (x | (x << _U(8))) & _U(0x00FF00FF00FF00FF)
    x = (x | (x << _U(4))) & _U(0x0F0F0F0F0F0F0F0F)
    x = (x | (x << _U(2))) & _U(0x3333333333333333)
    x = (x | (x << _U(1))) & _U(0x5555555555555555)
    return x


def _quantize(positions: np.ndarray, box: BoundingBox, bits: int) -> np.ndarray:
    scale = (1 << bits) / box.size
    cells = np.floor((positions - box.corner) * scale).astype(np.int64)
    if cells.min() < 0 or cells.max() >= (1 << bits):
        raise ValueError("positions fall outside the bounding box")
    return cells.astype(np.uint64)


def keys_from_positions(positions: np.ndarray, box: BoundingBox | None = None) -> np.ndarray:
    """Full-depth Morton keys (uint64) for an ``(N, 3)`` position array."""
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError("positions must have shape (N, 3)")
    if box is None:
        box = BoundingBox.from_points(positions)
    q = _quantize(positions, box, KEY_BITS)
    keys = _dilate3(q[:, 0]) | (_dilate3(q[:, 1]) << _U(1)) | (_dilate3(q[:, 2]) << _U(2))
    return keys | _U(1 << (3 * KEY_BITS))


def positions_from_keys(keys: np.ndarray, box: BoundingBox) -> np.ndarray:
    """Cell-corner positions of full-depth keys (inverse quantization).

    Returns the lower corner of each key's depth-21 cell; the maximum
    round-trip error versus the original position is one cell size,
    ``box.size / 2**21``.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    body = keys & _U((1 << (3 * KEY_BITS)) - 1)
    ix = _undilate3(body)
    iy = _undilate3(body >> _U(1))
    iz = _undilate3(body >> _U(2))
    cell = box.size / (1 << KEY_BITS)
    out = np.empty((keys.shape[0], 3), dtype=np.float64)
    out[:, 0] = ix.astype(np.float64) * cell + box.corner[0]
    out[:, 1] = iy.astype(np.float64) * cell + box.corner[1]
    out[:, 2] = iz.astype(np.float64) * cell + box.corner[2]
    return out


def key_level(keys: np.ndarray | int) -> np.ndarray | int:
    """Tree level encoded by the placeholder bit position.

    Root (key 1) is level 0; particle keys are level ``MAX_LEVEL``.
    """
    if isinstance(keys, (int, np.integer)):
        k = int(keys)
        if k < 1:
            raise ValueError(f"invalid key {k}")
        return (k.bit_length() - 1) // 3
    keys = np.asarray(keys, dtype=np.uint64)
    if keys.size and keys.min() < 1:
        raise ValueError("keys must be >= 1 (placeholder bit required)")
    level = np.zeros(keys.shape, dtype=np.int64)
    for lvl in range(1, MAX_LEVEL + 1):
        level += (keys >= _U(1 << (3 * lvl))).astype(np.int64)
    return level


def parent_key(keys: np.ndarray | int) -> np.ndarray | int:
    """Key of the containing cell one level up (``key >> 3``)."""
    if isinstance(keys, (int, np.integer)):
        k = int(keys)
        if k <= 1:
            raise ValueError("the root key has no parent")
        return k >> 3
    keys = np.asarray(keys, dtype=np.uint64)
    if keys.size and keys.min() <= 1:
        raise ValueError("the root key has no parent")
    return keys >> _U(3)


def child_keys(key: int) -> np.ndarray:
    """The eight daughter keys of ``key``, octant order 0..7."""
    key = int(key)
    if key_level(key) >= MAX_LEVEL:
        raise ValueError("cannot descend below the deepest level")
    return (_U(key) << _U(3)) | np.arange(8, dtype=np.uint64)


def ancestor_at_level(keys: np.ndarray | int, level: int) -> np.ndarray | int:
    """The enclosing cell key at the given (shallower) level."""
    if isinstance(keys, (int, np.integer)):
        own = key_level(keys)
        if level > own or level < 0:
            raise ValueError(f"level {level} is not an ancestor level of a level-{own} key")
        return int(keys) >> (3 * (own - level))
    keys = np.asarray(keys, dtype=np.uint64)
    own = key_level(keys)
    if np.any(own < level) or level < 0:
        raise ValueError("requested level deeper than some keys")
    shift = (3 * (own - level)).astype(np.uint64)
    return keys >> shift


def octant_of(keys: np.ndarray | int) -> np.ndarray | int:
    """Which daughter of its parent a key is (its low 3 bits)."""
    if isinstance(keys, (int, np.integer)):
        return int(keys) & 7
    return np.asarray(keys, dtype=np.uint64) & _U(7)


def cell_center_and_size(key: int, box: BoundingBox) -> tuple[np.ndarray, float]:
    """World-space center and edge length of a cell key."""
    level = key_level(key)
    body = key & ((1 << (3 * level)) - 1)
    # Undilate at this level: shift body up to full depth alignment.
    shift = 3 * (KEY_BITS - level)
    arr = np.array([body << shift], dtype=np.uint64)
    ix = int(_undilate3(arr)[0]) >> (KEY_BITS - level)
    iy = int(_undilate3(arr >> _U(1))[0]) >> (KEY_BITS - level)
    iz = int(_undilate3(arr >> _U(2))[0]) >> (KEY_BITS - level)
    size = box.size / (1 << level)
    center = box.corner + (np.array([ix, iy, iz], dtype=np.float64) + 0.5) * size
    return center, size


# -- 2-D (quadtree) keys for the Figure 6 demonstration ------------------


def keys_from_positions_2d(positions: np.ndarray, box: BoundingBox | None = None) -> np.ndarray:
    """Full-depth 2-D Morton keys for an ``(N, 2)`` position array."""
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError("positions must have shape (N, 2)")
    if box is None:
        box = BoundingBox.from_points(positions)
    q = _quantize(positions, box, KEY_BITS_2D)
    keys = _dilate2(q[:, 0]) | (_dilate2(q[:, 1]) << _U(1))
    return keys | _U(1 << (2 * KEY_BITS_2D))


def key_level_2d(keys: np.ndarray | int) -> np.ndarray | int:
    """Quadtree level of a 2-D key (root = 0)."""
    if isinstance(keys, (int, np.integer)):
        k = int(keys)
        if k < 1:
            raise ValueError(f"invalid key {k}")
        return (k.bit_length() - 1) // 2
    keys = np.asarray(keys, dtype=np.uint64)
    level = np.zeros(keys.shape, dtype=np.int64)
    for lvl in range(1, MAX_LEVEL_2D + 1):
        level += (keys >= _U(1 << (2 * lvl))).astype(np.int64)
    return level
