"""Batched tree traversal and force evaluation.

The tree is walked for *all* sink groups per frontier pass: every round
MAC-tests one flat array of (group, candidate-cell) pairs — a shared
distance computation over the whole frontier — and the survivors are
emitted as flat CSR-style interaction lists (accepted cells and direct
source leaves per group).  The lists are then evaluated in a handful of
dense kernel calls through a pluggable :mod:`~repro.core.backend`, with
pair expansion chunked so memory stays bounded at any N.

This replaces the historical one-group-at-a-time walker, which is kept
verbatim as :func:`compute_forces_reference`: the differential-physics
suite pins the batched path to it (accelerations within 1e-10,
bit-identical :class:`InteractionCounts`), and the Table 5 benchmark
measures the batched path's speedup against it.

The structure still mirrors the original HOT code (interaction lists
built per group, then a vectorizable inner loop), which is what makes
the flop accounting honest: the returned :class:`InteractionCounts`
feed the Table 6 performance model with the same
38-flop-per-interaction convention the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..machine.specs import FLOPS_PER_INTERACTION
from ..obs import NULL
from .backend import NumpyBackend, get_backend
from .mac import OpeningAngleMAC
from .tree import Tree

__all__ = [
    "InteractionCounts",
    "InteractionLists",
    "TraversalResult",
    "build_interaction_lists",
    "compute_forces",
    "compute_forces_reference",
    "evaluate_interaction_lists",
]

#: Flop convention for a cell (monopole+quadrupole) interaction.
FLOPS_PER_CELL_INTERACTION = 70.0

#: Default cap on expanded (sink, source) pairs held live per dense
#: kernel evaluation.  Sized so the ~10 live (rows x width) temporaries
#: (~100 B/pair) stay cache-resident — the kernels are memory-bound,
#: and a chunk that spills to DRAM costs more than the batching saves.
DEFAULT_PAIR_CHUNK = 1 << 16

_NP_BACKEND = NumpyBackend()


@dataclass
class InteractionCounts:
    """Interaction totals accumulated by a traversal."""

    p2p: int = 0
    p2c: int = 0
    groups: int = 0

    @property
    def flops(self) -> float:
        """Total flops under the paper's accounting convention."""
        return self.p2p * FLOPS_PER_INTERACTION + self.p2c * FLOPS_PER_CELL_INTERACTION

    def merged(self, other: "InteractionCounts") -> "InteractionCounts":
        return InteractionCounts(
            self.p2p + other.p2p, self.p2c + other.p2c, self.groups + other.groups
        )


@dataclass
class TraversalResult:
    """Accelerations/potentials in the *caller's* particle order."""

    accelerations: np.ndarray
    potentials: np.ndarray
    counts: InteractionCounts


@dataclass
class InteractionLists:
    """Flat CSR interaction lists for every sink group of a tree.

    ``groups[g]`` is a leaf cell id; its accepted cells are
    ``cell_ids[cell_offsets[g]:cell_offsets[g+1]]`` and its *external*
    direct-source leaves ``leaf_ids[leaf_offsets[g]:leaf_offsets[g+1]]``
    (the group's own particle run is implied and appended last during
    evaluation, exactly as the reference walker did).  Per-group list
    order matches the reference walker's breadth-first emission order.
    """

    groups: np.ndarray
    cell_offsets: np.ndarray
    cell_ids: np.ndarray
    leaf_offsets: np.ndarray
    leaf_ids: np.ndarray
    counts: InteractionCounts = field(default_factory=InteractionCounts)
    mac_tests: int = 0
    passes: int = 0

    def cells_of(self, g: int) -> np.ndarray:
        return self.cell_ids[self.cell_offsets[g]:self.cell_offsets[g + 1]]

    def leaves_of(self, g: int) -> np.ndarray:
        return self.leaf_ids[self.leaf_offsets[g]:self.leaf_offsets[g + 1]]


def _expand_children(tree: Tree, g_idx: np.ndarray, cells: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Replace internal cells by their children, keeping group pairing."""
    cnt = tree.n_children[cells]
    first = tree.first_child[cells]
    total = int(cnt.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    offs = np.repeat(np.cumsum(cnt) - cnt, cnt)
    children = np.repeat(first, cnt) + (np.arange(total, dtype=np.int64) - offs)
    return np.repeat(g_idx, cnt), children


def _csr_by_group(g_idx: np.ndarray, items: np.ndarray, n_groups: int) -> tuple[np.ndarray, np.ndarray]:
    """Sort (group, item) pairs into CSR form, stable within group."""
    order = np.argsort(g_idx, kind="stable")
    offsets = np.zeros(n_groups + 1, dtype=np.int64)
    np.cumsum(np.bincount(g_idx, minlength=n_groups), out=offsets[1:])
    return offsets, items[order]


def build_interaction_lists(tree: Tree, mac=None, *, observer=NULL) -> InteractionLists:
    """Walk the tree for all sink groups per frontier pass.

    Each pass MAC-tests the full (groups x frontier) candidate set as
    one flat array: accepted cells join their group's cell list,
    rejected external leaves join its direct list, rejected internal
    cells are replaced by their children.  Per-group results are
    identical (same lists, same order) to running the reference
    one-group walker on every leaf.
    """
    if tree.mass is None:
        raise ValueError("tree has no multipoles; build with with_multipoles=True")
    mac = mac if mac is not None else OpeningAngleMAC()
    groups = tree.leaf_ids
    n_groups = groups.shape[0]
    g_com = tree.com[groups]
    g_bmax = tree.bmax[groups]

    g_idx = np.arange(n_groups, dtype=np.int64)
    cells = np.zeros(n_groups, dtype=np.int64)  # every group starts at the root
    acc_g: list[np.ndarray] = []
    acc_c: list[np.ndarray] = []
    dir_g: list[np.ndarray] = []
    dir_c: list[np.ndarray] = []
    mac_tests = 0
    passes = 0

    while cells.size:
        passes += 1
        mac_tests += cells.size
        d = tree.com[cells] - g_com[g_idx]
        dist = np.sqrt(np.einsum("ij,ij->i", d, d))
        # The MAC criteria are elementwise, so the group-side bound may
        # be an array: one shared test over the whole frontier.
        ok = mac.accept(dist, tree.bmax[cells], g_bmax[g_idx], tree.mass[cells])
        ok &= cells != groups[g_idx]  # never approximate the group by itself
        acc_g.append(g_idx[ok])
        acc_c.append(cells[ok])
        og, oc = g_idx[~ok], cells[~ok]
        if oc.size == 0:
            break
        is_leaf = tree.n_children[oc] == 0
        # The group itself is excluded: its own run is appended to the
        # direct list exactly once, at evaluation time.
        ext = is_leaf & (oc != groups[og])
        dir_g.append(og[ext])
        dir_c.append(oc[ext])
        g_idx, cells = _expand_children(tree, og[~is_leaf], oc[~is_leaf])

    ag = np.concatenate(acc_g) if acc_g else np.empty(0, dtype=np.int64)
    ac = np.concatenate(acc_c) if acc_c else np.empty(0, dtype=np.int64)
    dg = np.concatenate(dir_g) if dir_g else np.empty(0, dtype=np.int64)
    dc = np.concatenate(dir_c) if dir_c else np.empty(0, dtype=np.int64)
    cell_offsets, cell_ids = _csr_by_group(ag, ac, n_groups)
    leaf_offsets, leaf_ids = _csr_by_group(dg, dc, n_groups)

    ns = tree.count[groups]
    n_src = ns + _NP_BACKEND.segment_sum(
        tree.count[leaf_ids].astype(np.float64), leaf_offsets
    ).astype(np.int64)
    counts = InteractionCounts(
        p2p=int(np.dot(ns, n_src)),
        p2c=int(np.dot(ns, np.diff(cell_offsets))),
        groups=n_groups,
    )
    lists = InteractionLists(
        groups=groups,
        cell_offsets=cell_offsets,
        cell_ids=cell_ids,
        leaf_offsets=leaf_offsets,
        leaf_ids=leaf_ids,
        counts=counts,
        mac_tests=mac_tests,
        passes=passes,
    )
    observer.count("gravity.mac_tests", mac_tests)
    observer.count("gravity.traversal_passes", passes)
    return lists


def evaluate_interaction_lists(
    tree: Tree,
    lists: InteractionLists,
    *,
    eps: float = 0.0,
    G: float = 1.0,
    backend=None,
    exclude_self_potential: bool = True,
    pair_chunk: int = DEFAULT_PAIR_CHUNK,
    observer=NULL,
) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate batched interaction lists; returns (acc, pot) tree-order."""
    if eps < 0:
        raise ValueError("softening must be non-negative")
    if pair_chunk < 1:
        raise ValueError("pair_chunk must be positive")
    kb = get_backend(backend)
    eps2 = eps * eps
    acc = np.zeros_like(tree.positions)
    pot = np.zeros(tree.n_particles)

    groups = lists.groups
    ns = tree.count[groups]
    g_start = tree.start[groups]

    # Component-major copies (each row contiguous): the pair kernels
    # work on 1-D per-component arrays, so every step is a contiguous
    # ufunc instead of a strided column access.
    pos3 = np.ascontiguousarray(tree.positions.T)
    com3 = np.ascontiguousarray(tree.com.T)
    quad6 = np.ascontiguousarray(tree.quad.T)

    # -- cell (monopole+quadrupole) interactions ------------------------
    with observer.span("gravity.kernel.cells", cat="gravity", backend=kb.name):
        kb.eval_cell_rects(
            pos3, g_start, ns, lists.cell_offsets, lists.cell_ids,
            com3, tree.mass, quad6, eps2, G, acc, pot, pair_chunk,
        )

    # -- direct (particle-particle) interactions ------------------------
    # Augment each group's external source leaves with the group itself
    # (its own run interacts directly, appended last — the reference
    # walker's convention), then expand leaves to particle indices.
    ext = np.diff(lists.leaf_offsets)
    aug_cnt = ext + 1
    aug_off = np.zeros(groups.shape[0] + 1, dtype=np.int64)
    np.cumsum(aug_cnt, out=aug_off[1:])
    aug = np.empty(int(aug_off[-1]), dtype=np.int64)
    own_slots = np.zeros(aug.size, dtype=bool)
    own_slots[aug_off[1:] - 1] = True
    aug[~own_slots] = lists.leaf_ids
    aug[own_slots] = groups
    lcnt = tree.count[aug]
    tot = int(lcnt.sum())
    src_flat = np.arange(tot, dtype=np.int64)
    src_flat += np.repeat(tree.start[aug] - (np.cumsum(lcnt) - lcnt), lcnt)
    src_off = np.zeros(groups.shape[0] + 1, dtype=np.int64)
    np.cumsum(_NP_BACKEND.segment_sum(
        lcnt.astype(np.float64), aug_off
    ).astype(np.int64), out=src_off[1:])

    with observer.span("gravity.kernel.direct", cat="gravity", backend=kb.name):
        kb.eval_direct_rects(
            pos3, tree.masses, g_start, ns, src_off, src_flat,
            eps2, G, acc, pot, pair_chunk,
        )

    if exclude_self_potential and eps2 > 0.0:
        # Remove each particle's softened self-energy -G m / eps.
        pot += G * tree.masses / eps

    observer.count("gravity.p2p", lists.counts.p2p)
    observer.count("gravity.p2c", lists.counts.p2c)
    observer.count("gravity.groups", lists.counts.groups)
    return acc, pot


def compute_forces(
    tree: Tree,
    *,
    mac=None,
    eps: float = 0.0,
    G: float = 1.0,
    exclude_self_potential: bool = True,
    backend=None,
    pair_chunk: int = DEFAULT_PAIR_CHUNK,
    observer=NULL,
) -> TraversalResult:
    """Gravitational accelerations and potentials for all particles.

    Batched: interaction lists for every sink group are built in shared
    frontier passes, then evaluated by the selected kernel backend in
    dense chunked calls.  The group's own particles always interact
    directly (including the softened self-term exclusion), so the
    result converges to the direct O(N^2) sum as the MAC tightens.
    """
    if tree.mass is None:
        raise ValueError("tree has no multipoles; build with with_multipoles=True")
    if eps < 0:
        raise ValueError("softening must be non-negative")
    kb = get_backend(backend)
    with observer.span("gravity.compute_forces", cat="gravity", backend=kb.name):
        with observer.span("gravity.traversal", cat="gravity"):
            lists = build_interaction_lists(tree, mac, observer=observer)
        acc, pot = evaluate_interaction_lists(
            tree, lists, eps=eps, G=G, backend=kb,
            exclude_self_potential=exclude_self_potential,
            pair_chunk=pair_chunk, observer=observer,
        )

    # Undo the Morton sort: return in the caller's original order.
    acc_out = np.empty_like(acc)
    pot_out = np.empty_like(pot)
    acc_out[tree.order] = acc
    pot_out[tree.order] = pot
    return TraversalResult(acc_out, pot_out, lists.counts)


# -- the historical one-group-at-a-time walker --------------------------
#
# Kept verbatim as the pinning reference: the differential suite holds
# the batched path to within 1e-10 of this walker with bit-identical
# counts, and bench_table5 measures the batched speedup against it.


def _collect_lists(tree: Tree, group: int, mac) -> tuple[np.ndarray, np.ndarray]:
    """Interaction lists for one sink group: (cell ids, particle idx)."""
    g_com = tree.com[group]
    g_bmax = float(tree.bmax[group])
    accepted: list[np.ndarray] = []
    direct: list[np.ndarray] = []
    frontier = np.array([0], dtype=np.int64)
    while frontier.size:
        dist = np.linalg.norm(tree.com[frontier] - g_com, axis=1)
        ok = mac.accept(dist, tree.bmax[frontier], g_bmax, tree.mass[frontier])
        ok &= frontier != group  # never approximate the group by itself
        accepted.append(frontier[ok])
        opened = frontier[~ok]
        if opened.size == 0:
            break
        # The group itself is excluded: the caller adds its own run to
        # the direct list exactly once.
        leaves = opened[(tree.n_children[opened] == 0) & (opened != group)]
        for leaf in leaves:
            s, c = tree.start[leaf], tree.count[leaf]
            direct.append(np.arange(s, s + c, dtype=np.int64))
        internal = opened[tree.n_children[opened] > 0]
        if internal.size:
            counts = tree.n_children[internal]
            firsts = tree.first_child[internal]
            frontier = np.concatenate(
                [np.arange(f, f + c, dtype=np.int64) for f, c in zip(firsts, counts)]
            )
        else:
            frontier = np.empty(0, dtype=np.int64)
    cells = np.concatenate(accepted) if accepted else np.empty(0, dtype=np.int64)
    parts = np.concatenate(direct) if direct else np.empty(0, dtype=np.int64)
    return cells, parts


def _eval_cells(sinks, com, mass, quad, eps2, G):
    """Monopole + quadrupole field of cells at sink positions."""
    return _NP_BACKEND.eval_cells_dense(sinks, com, mass, quad, eps2, G)


def _eval_direct(sinks, sources, src_mass, eps2, G):
    """Plummer-softened direct sum; zero-distance pairs contribute 0."""
    return _NP_BACKEND.eval_direct_dense(sinks, sources, src_mass, eps2, G)


def compute_forces_reference(
    tree: Tree,
    *,
    mac=None,
    eps: float = 0.0,
    G: float = 1.0,
    exclude_self_potential: bool = True,
) -> TraversalResult:
    """The pre-batching walker: one sink group per frontier walk."""
    if tree.mass is None:
        raise ValueError("tree has no multipoles; build with with_multipoles=True")
    if eps < 0:
        raise ValueError("softening must be non-negative")
    mac = mac if mac is not None else OpeningAngleMAC()
    eps2 = eps * eps

    acc = np.zeros_like(tree.positions)
    pot = np.zeros(tree.n_particles)
    counts = InteractionCounts()

    for group in tree.leaf_ids:
        sl = tree.particles_of(group)
        sinks = tree.positions[sl]
        cells, parts = _collect_lists(tree, group, mac)
        ns = sinks.shape[0]
        counts.groups += 1
        if cells.size:
            a, p = _eval_cells(sinks, tree.com[cells], tree.mass[cells], tree.quad[cells], eps2, G)
            acc[sl] += a
            pot[sl] += p
            counts.p2c += ns * cells.size
        # Direct: external leaf particles plus the group's own run.
        own = np.arange(sl.start, sl.stop, dtype=np.int64)
        all_parts = np.concatenate([parts, own]) if parts.size else own
        a, p = _eval_direct(sinks, tree.positions[all_parts], tree.masses[all_parts], eps2, G)
        acc[sl] += a
        pot[sl] += p
        counts.p2p += ns * all_parts.size
        if exclude_self_potential and eps2 > 0.0:
            # Remove each particle's softened self-energy -G m / eps.
            pot[sl] += G * tree.masses[sl] / eps

    # Undo the Morton sort: return in the caller's original order.
    acc_out = np.empty_like(acc)
    pot_out = np.empty_like(pot)
    acc_out[tree.order] = acc
    pot_out[tree.order] = pot
    return TraversalResult(acc_out, pot_out, counts)
