"""Vectorized group-wise tree traversal and force evaluation.

For every sink group (a leaf bucket), the tree is walked breadth-first:
each frontier of candidate cells is MAC-tested *as an array*; accepted
cells join the group's cell-interaction list, rejected internal cells
are replaced by their children, and rejected leaves contribute their
particles to the direct list.  Forces are then evaluated with dense
NumPy kernels — monopole + quadrupole for the cell list, Plummer-
softened direct summation for the particle list.

This mirrors the original HOT code's structure (interaction lists built
per group, then a vectorizable inner loop), which is also what makes
the flop accounting honest: the returned
:class:`InteractionCounts` feed the Table 6 performance model with the
same 38-flop-per-interaction convention the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.specs import FLOPS_PER_INTERACTION
from .mac import OpeningAngleMAC
from .tree import Tree

__all__ = ["InteractionCounts", "TraversalResult", "compute_forces"]

#: Flop convention for a cell (monopole+quadrupole) interaction.
FLOPS_PER_CELL_INTERACTION = 70.0


@dataclass
class InteractionCounts:
    """Interaction totals accumulated by a traversal."""

    p2p: int = 0
    p2c: int = 0
    groups: int = 0

    @property
    def flops(self) -> float:
        """Total flops under the paper's accounting convention."""
        return self.p2p * FLOPS_PER_INTERACTION + self.p2c * FLOPS_PER_CELL_INTERACTION

    def merged(self, other: "InteractionCounts") -> "InteractionCounts":
        return InteractionCounts(
            self.p2p + other.p2p, self.p2c + other.p2c, self.groups + other.groups
        )


@dataclass
class TraversalResult:
    """Accelerations/potentials in the *caller's* particle order."""

    accelerations: np.ndarray
    potentials: np.ndarray
    counts: InteractionCounts


def _collect_lists(tree: Tree, group: int, mac) -> tuple[np.ndarray, np.ndarray]:
    """Interaction lists for one sink group: (cell ids, particle idx)."""
    g_com = tree.com[group]
    g_bmax = float(tree.bmax[group])
    accepted: list[np.ndarray] = []
    direct: list[np.ndarray] = []
    frontier = np.array([0], dtype=np.int64)
    while frontier.size:
        dist = np.linalg.norm(tree.com[frontier] - g_com, axis=1)
        ok = mac.accept(dist, tree.bmax[frontier], g_bmax, tree.mass[frontier])
        ok &= frontier != group  # never approximate the group by itself
        accepted.append(frontier[ok])
        opened = frontier[~ok]
        if opened.size == 0:
            break
        # The group itself is excluded: the caller adds its own run to
        # the direct list exactly once.
        leaves = opened[(tree.n_children[opened] == 0) & (opened != group)]
        for leaf in leaves:
            s, c = tree.start[leaf], tree.count[leaf]
            direct.append(np.arange(s, s + c, dtype=np.int64))
        internal = opened[tree.n_children[opened] > 0]
        if internal.size:
            counts = tree.n_children[internal]
            firsts = tree.first_child[internal]
            frontier = np.concatenate(
                [np.arange(f, f + c, dtype=np.int64) for f, c in zip(firsts, counts)]
            )
        else:
            frontier = np.empty(0, dtype=np.int64)
    cells = np.concatenate(accepted) if accepted else np.empty(0, dtype=np.int64)
    parts = np.concatenate(direct) if direct else np.empty(0, dtype=np.int64)
    return cells, parts


def _eval_cells(
    sinks: np.ndarray, com: np.ndarray, mass: np.ndarray, quad: np.ndarray, eps2: float, G: float
) -> tuple[np.ndarray, np.ndarray]:
    """Monopole + quadrupole field of cells at sink positions."""
    dr = sinks[:, None, :] - com[None, :, :]  # (ns, nc, 3)
    rs2 = np.einsum("ijk,ijk->ij", dr, dr) + eps2
    inv_r = 1.0 / np.sqrt(rs2)
    inv_r3 = inv_r / rs2
    inv_r5 = inv_r3 / rs2
    inv_r7 = inv_r5 / rs2

    acc = -(G * mass)[None, :, None] * dr * inv_r3[:, :, None]
    pot = -(G * mass)[None, :] * inv_r

    # Quadrupole: Qr vector and r.Qr scalar from packed symmetric Q.
    qxx, qyy, qzz, qxy, qxz, qyz = (quad[:, i] for i in range(6))
    qr = np.empty_like(dr)
    qr[:, :, 0] = qxx * dr[:, :, 0] + qxy * dr[:, :, 1] + qxz * dr[:, :, 2]
    qr[:, :, 1] = qxy * dr[:, :, 0] + qyy * dr[:, :, 1] + qyz * dr[:, :, 2]
    qr[:, :, 2] = qxz * dr[:, :, 0] + qyz * dr[:, :, 1] + qzz * dr[:, :, 2]
    rqr = np.einsum("ijk,ijk->ij", dr, qr)
    acc += G * (qr * inv_r5[:, :, None] - 2.5 * (rqr * inv_r7)[:, :, None] * dr)
    pot += -G * 0.5 * rqr * inv_r5
    return acc.sum(axis=1), pot.sum(axis=1)


def _eval_direct(
    sinks: np.ndarray, sources: np.ndarray, src_mass: np.ndarray, eps2: float, G: float
) -> tuple[np.ndarray, np.ndarray]:
    """Plummer-softened direct sum; zero-distance pairs contribute 0."""
    dr = sinks[:, None, :] - sources[None, :, :]
    r2 = np.einsum("ijk,ijk->ij", dr, dr)
    rs2 = r2 + eps2
    self_pair = rs2 == 0.0
    if np.any(self_pair):
        rs2 = np.where(self_pair, 1.0, rs2)
    inv_r = 1.0 / np.sqrt(rs2)
    inv_r3 = inv_r / rs2
    if eps2 == 0.0:
        # Unsoftened: exclude exact overlaps (self-interaction).
        zero = r2 == 0.0
        inv_r = np.where(zero, 0.0, inv_r)
        inv_r3 = np.where(zero, 0.0, inv_r3)
    elif np.any(self_pair):
        inv_r = np.where(self_pair, 0.0, inv_r)
        inv_r3 = np.where(self_pair, 0.0, inv_r3)
    acc = -(G * src_mass)[None, :, None] * dr * inv_r3[:, :, None]
    pot = -(G * src_mass)[None, :] * inv_r
    return acc.sum(axis=1), pot.sum(axis=1)


def compute_forces(
    tree: Tree,
    *,
    mac=None,
    eps: float = 0.0,
    G: float = 1.0,
    exclude_self_potential: bool = True,
) -> TraversalResult:
    """Gravitational accelerations and potentials for all particles.

    The group's own particles always interact directly (including the
    softened self-term exclusion), so the result converges to the
    direct O(N^2) sum as the MAC tightens.
    """
    if tree.mass is None:
        raise ValueError("tree has no multipoles; build with with_multipoles=True")
    if eps < 0:
        raise ValueError("softening must be non-negative")
    mac = mac if mac is not None else OpeningAngleMAC()
    eps2 = eps * eps

    acc = np.zeros_like(tree.positions)
    pot = np.zeros(tree.n_particles)
    counts = InteractionCounts()

    for group in tree.leaf_ids:
        sl = tree.particles_of(group)
        sinks = tree.positions[sl]
        cells, parts = _collect_lists(tree, group, mac)
        ns = sinks.shape[0]
        counts.groups += 1
        if cells.size:
            a, p = _eval_cells(sinks, tree.com[cells], tree.mass[cells], tree.quad[cells], eps2, G)
            acc[sl] += a
            pot[sl] += p
            counts.p2c += ns * cells.size
        # Direct: external leaf particles plus the group's own run.
        own = np.arange(sl.start, sl.stop, dtype=np.int64)
        all_parts = np.concatenate([parts, own]) if parts.size else own
        a, p = _eval_direct(sinks, tree.positions[all_parts], tree.masses[all_parts], eps2, G)
        acc[sl] += a
        pot[sl] += p
        counts.p2p += ns * all_parts.size
        if exclude_self_potential and eps2 > 0.0:
            # Remove each particle's softened self-energy -G m / eps.
            pot[sl] += G * tree.masses[sl] / eps

    # Undo the Morton sort: return in the caller's original order.
    acc_out = np.empty_like(acc)
    pot_out = np.empty_like(pot)
    acc_out[tree.order] = acc
    pot_out[tree.order] = pot
    return TraversalResult(acc_out, pot_out, counts)
