"""Adaptive oct-tree construction from Morton-sorted particles.

The build follows the hashed oct-tree recipe: particles are sorted by
Morton key, after which every tree cell corresponds to a *contiguous
run* of the particle array (the defining property of Z-order).  Cells
are produced top-down by splitting runs at octant boundaries (found
with ``searchsorted`` — no per-particle Python work), stopping when a
run fits in a leaf bucket.  Every cell is entered into a
:class:`~repro.core.hashtable.KeyHashTable` under its Morton key, which
is how all traversal-time cell addressing works — locally here, and via
the global key namespace in the parallel code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .hashtable import KeyHashTable
from .keys import MAX_LEVEL, ROOT_KEY, BoundingBox, keys_from_positions

__all__ = ["Tree", "build_tree"]

_U = np.uint64


@dataclass
class Tree:
    """A built oct-tree over a particle set.

    Particle arrays are stored in Morton order; ``order`` maps sorted
    positions back to the caller's original indexing
    (``positions[i] == original_positions[order[i]]``).

    Cell arrays are indexed by cell id (root = 0).  Children of a cell
    are contiguous: ``first_child : first_child + n_children``.
    Multipole arrays (``mass``, ``com``, ``quad``, ``bmax``) are filled
    by :func:`repro.core.multipole.compute_multipoles`.
    """

    # particle data, Morton-sorted
    positions: np.ndarray
    masses: np.ndarray
    keys: np.ndarray
    order: np.ndarray
    box: BoundingBox
    bucket_size: int

    # cell topology
    cell_keys: np.ndarray = field(default=None)
    level: np.ndarray = field(default=None)
    start: np.ndarray = field(default=None)
    count: np.ndarray = field(default=None)
    parent: np.ndarray = field(default=None)
    first_child: np.ndarray = field(default=None)
    n_children: np.ndarray = field(default=None)

    # multipoles (filled post-build)
    mass: np.ndarray = field(default=None)
    com: np.ndarray = field(default=None)
    quad: np.ndarray = field(default=None)
    bmax: np.ndarray = field(default=None)

    hash: KeyHashTable = field(default=None)

    @property
    def n_particles(self) -> int:
        return self.positions.shape[0]

    @property
    def n_cells(self) -> int:
        return self.cell_keys.shape[0]

    @property
    def is_leaf(self) -> np.ndarray:
        return self.n_children == 0

    @property
    def leaf_ids(self) -> np.ndarray:
        return np.flatnonzero(self.is_leaf)

    def cell_size(self, cells: np.ndarray | int) -> np.ndarray | float:
        """Edge length of cell(s) from their level."""
        lv = self.level[cells]
        return self.box.size / np.power(2.0, lv)

    def children_of(self, cell: int) -> np.ndarray:
        fc = self.first_child[cell]
        return np.arange(fc, fc + self.n_children[cell])

    def particles_of(self, cell: int) -> slice:
        return slice(int(self.start[cell]), int(self.start[cell] + self.count[cell]))

    def find_cell(self, key: int) -> int | None:
        """Look a cell up by Morton key through the hash table."""
        return self.hash.get(int(key))

    def validate(self) -> None:
        """Structural invariants; raises AssertionError on violation.

        Used by tests and by the parallel code's debug mode.
        """
        assert self.cell_keys[0] == ROOT_KEY
        assert self.count[0] == self.n_particles
        for c in range(self.n_cells):
            kids = self.children_of(c)
            if kids.size:
                assert int(self.count[kids].sum()) == int(self.count[c]), c
                assert int(self.start[kids[0]]) == int(self.start[c]), c
                assert np.all(self.parent[kids] == c)
                assert np.all(self.level[kids] == self.level[c] + 1)
            else:
                assert self.count[c] <= self.bucket_size or self.level[c] == MAX_LEVEL


def build_tree(
    positions: np.ndarray,
    masses: np.ndarray | None = None,
    *,
    bucket_size: int = 32,
    box: BoundingBox | None = None,
    with_multipoles: bool = True,
) -> Tree:
    """Build an adaptive oct-tree (and optionally its multipoles).

    Parameters
    ----------
    positions:
        ``(N, 3)`` particle coordinates.
    masses:
        ``(N,)`` masses; defaults to ``1/N`` each (unit total mass).
    bucket_size:
        Maximum particles in a leaf.  Smaller buckets mean a deeper
        tree: more cells but shorter direct-interaction lists.
    box:
        Key-space cube; computed from the points when omitted.
    """
    positions = np.ascontiguousarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError("positions must have shape (N, 3)")
    n = positions.shape[0]
    if n == 0:
        raise ValueError("cannot build a tree with no particles")
    if masses is None:
        masses = np.full(n, 1.0 / n)
    else:
        masses = np.ascontiguousarray(masses, dtype=np.float64)
        if masses.shape != (n,):
            raise ValueError("masses must have shape (N,)")
        if np.any(masses < 0):
            raise ValueError("masses must be non-negative")
    if bucket_size < 1:
        raise ValueError("bucket_size must be >= 1")
    if box is None:
        box = BoundingBox.from_points(positions)

    keys = keys_from_positions(positions, box)
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    positions = positions[order]
    masses = masses[order]

    # Top-down subdivision.  Each stack entry is a cell whose particle
    # run [s, e) is known; children are discovered by octant boundaries
    # inside the run.
    cell_keys: list[int] = [ROOT_KEY]
    level: list[int] = [0]
    start: list[int] = [0]
    count: list[int] = [n]
    parent: list[int] = [-1]
    first_child: list[int] = [0]
    n_children: list[int] = [0]

    stack = [0]
    while stack:
        c = stack.pop()
        if count[c] <= bucket_size or level[c] >= MAX_LEVEL:
            continue  # leaf
        s, e = start[c], start[c] + count[c]
        child_level = level[c] + 1
        shift = _U(3 * (MAX_LEVEL - child_level))
        run = keys[s:e] >> shift
        # Octant boundaries within the sorted run.
        boundaries = np.searchsorted(run, (_U(cell_keys[c]) << _U(3)) + np.arange(9, dtype=np.uint64))
        first_child[c] = len(cell_keys)
        for octant in range(8):
            lo, hi = int(boundaries[octant]), int(boundaries[octant + 1])
            if lo == hi:
                continue
            child_id = len(cell_keys)
            cell_keys.append((cell_keys[c] << 3) | octant)
            level.append(child_level)
            start.append(s + lo)
            count.append(hi - lo)
            parent.append(c)
            first_child.append(0)
            n_children.append(0)
            n_children[c] += 1
            stack.append(child_id)

    tree = Tree(
        positions=positions,
        masses=masses,
        keys=keys,
        order=order,
        box=box,
        bucket_size=bucket_size,
        cell_keys=np.array(cell_keys, dtype=np.uint64),
        level=np.array(level, dtype=np.int64),
        start=np.array(start, dtype=np.int64),
        count=np.array(count, dtype=np.int64),
        parent=np.array(parent, dtype=np.int64),
        first_child=np.array(first_child, dtype=np.int64),
        n_children=np.array(n_children, dtype=np.int64),
    )
    tree.hash = KeyHashTable(capacity=2 * tree.n_cells)
    tree.hash.insert(tree.cell_keys, np.arange(tree.n_cells, dtype=np.int64))
    if with_multipoles:
        from .multipole import compute_multipoles

        compute_multipoles(tree)
    return tree
