"""Time integration for N-body systems: kick-drift-kick leapfrog.

The treecode's standard integrator.  Leapfrog is symplectic and
time-reversible, so energy errors are bounded rather than secular —
the property the paper leans on when it argues force errors are
"exceeded by or comparable to the time integration error".
:class:`LeapfrogIntegrator` works with any callable returning
accelerations, so the same driver runs direct-sum tests, serial
treecode runs, and the cosmology module's comoving variant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .gravity import tree_accelerations

__all__ = ["StepStats", "LeapfrogIntegrator", "nbody_simulate"]

AccelFn = Callable[[np.ndarray], np.ndarray]


@dataclass
class StepStats:
    """Diagnostics recorded after each step."""

    time: float
    kinetic: float
    max_accel: float


@dataclass
class LeapfrogIntegrator:
    """Kick-drift-kick leapfrog over a user-supplied acceleration field.

    ``accel_fn(positions) -> accelerations`` is evaluated once per step
    (at the synchronized position), giving the standard KDK scheme:

        v += a dt/2 ; x += v dt ; a = accel(x) ; v += a dt/2
    """

    accel_fn: AccelFn
    positions: np.ndarray
    velocities: np.ndarray
    masses: np.ndarray
    time: float = 0.0
    history: list[StepStats] = field(default_factory=list)
    _accel: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.positions = np.ascontiguousarray(self.positions, dtype=np.float64)
        self.velocities = np.ascontiguousarray(self.velocities, dtype=np.float64)
        self.masses = np.ascontiguousarray(self.masses, dtype=np.float64)
        n = self.positions.shape[0]
        if self.positions.shape != (n, 3) or self.velocities.shape != (n, 3):
            raise ValueError("positions and velocities must both be (N, 3)")
        if self.masses.shape != (n,):
            raise ValueError("masses must be (N,)")

    def step(self, dt: float) -> StepStats:
        """Advance the system one KDK step of size ``dt``."""
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        if self._accel is None:
            self._accel = self.accel_fn(self.positions)
        self.velocities += 0.5 * dt * self._accel
        self.positions += dt * self.velocities
        self._accel = self.accel_fn(self.positions)
        self.velocities += 0.5 * dt * self._accel
        self.time += dt
        stats = StepStats(
            time=self.time,
            kinetic=0.5 * float(
                np.sum(self.masses * np.einsum("ij,ij->i", self.velocities, self.velocities))
            ),
            max_accel=float(np.abs(self._accel).max()),
        )
        self.history.append(stats)
        return stats

    def run(self, dt: float, n_steps: int) -> list[StepStats]:
        if n_steps < 0:
            raise ValueError("n_steps must be non-negative")
        return [self.step(dt) for _ in range(n_steps)]

    def suggest_dt(self, eta: float = 0.05, eps: float = 1e-3) -> float:
        """Accuracy-based step size ``eta * sqrt(eps / a_max)``."""
        if self._accel is None:
            self._accel = self.accel_fn(self.positions)
        a_max = float(np.linalg.norm(self._accel, axis=1).max())
        if a_max == 0.0:
            return eta
        return eta * float(np.sqrt(eps / a_max))


def nbody_simulate(
    positions: np.ndarray,
    velocities: np.ndarray,
    masses: np.ndarray,
    *,
    dt: float,
    n_steps: int,
    theta: float = 0.6,
    eps: float = 1e-3,
    G: float = 1.0,
    bucket_size: int = 32,
) -> LeapfrogIntegrator:
    """Run a self-gravitating treecode simulation; returns the integrator.

    The convenience driver behind ``examples/quickstart.py``.
    """

    def accel(x: np.ndarray) -> np.ndarray:
        return tree_accelerations(
            x, masses, theta=theta, eps=eps, G=G, bucket_size=bucket_size
        ).accelerations

    integ = LeapfrogIntegrator(accel, positions.copy(), velocities.copy(), masses)
    integ.run(dt, n_steps)
    return integ
