"""Hilbert-curve keys: the locality ablation for Morton ordering.

Section 4.2 chooses Morton ordering because it "maps the points in
3-dimensional space to a 1-dimensional list, while maintaining as much
spatial locality as possible" — with the advantage that parent/child
keys are pure bit arithmetic.  The Hilbert curve is the classic
alternative: *strictly better* locality (consecutive curve cells are
always face-adjacent; Morton takes long diagonal jumps between octant
blocks) at the cost of more expensive key computation and no simple
parent arithmetic.

This module implements 3-D Hilbert indices with Skilling's
transpose algorithm (vectorized over particle arrays), plus the
locality metrics the ablation bench uses to quantify the tradeoff —
curve jump lengths and the domain-decomposition surface area that
drives parallel communication volume.
"""

from __future__ import annotations

import numpy as np

from .keys import KEY_BITS, BoundingBox, _dilate3, _quantize

__all__ = [
    "hilbert_keys_from_positions",
    "axes_to_hilbert",
    "hilbert_to_axes",
    "curve_jump_stats",
    "decomposition_surface",
]

_U = np.uint64


def axes_to_hilbert(coords: np.ndarray, bits: int = KEY_BITS) -> np.ndarray:
    """Hilbert indices for integer coordinate triples (Skilling 2004).

    ``coords`` is (N, 3) with entries in ``[0, 2**bits)``; the result is
    uint64 Hilbert indices in ``[0, 8**bits)``.
    """
    coords = np.asarray(coords)
    if coords.ndim != 2 or coords.shape[1] != 3:
        raise ValueError("coords must be (N, 3)")
    if bits < 1 or 3 * bits > 63:
        raise ValueError("bits must be in [1, 21]")
    if coords.min() < 0 or coords.max() >= (1 << bits):
        raise ValueError("coordinates out of range for the bit depth")
    x = [coords[:, i].astype(np.uint64).copy() for i in range(3)]

    # Inverse-undo pass (Skilling's AxesToTranspose).
    q = _U(1 << (bits - 1))
    while q > _U(1):
        p = q - _U(1)
        for i in range(3):
            hi = (x[i] & q) != 0
            # Where the bit is set: invert x[0]'s low bits; otherwise
            # exchange low bits of x[0] and x[i].
            x[0] = np.where(hi, x[0] ^ p, x[0])
            t = (x[0] ^ x[i]) & p
            x[0] = np.where(hi, x[0], x[0] ^ t)
            x[i] = np.where(hi, x[i], x[i] ^ t)
        q >>= _U(1)

    # Gray-code the transpose.
    for i in range(1, 3):
        x[i] ^= x[i - 1]
    t = np.zeros_like(x[0])
    q = _U(1 << (bits - 1))
    while q > _U(1):
        t = np.where((x[2] & q) != 0, t ^ (q - _U(1)), t)
        q >>= _U(1)
    for i in range(3):
        x[i] ^= t

    # Interleave the transpose: within each 3-bit group (MSB first)
    # the order is x[0], x[1], x[2].
    return (_dilate3(x[0]) << _U(2)) | (_dilate3(x[1]) << _U(1)) | _dilate3(x[2])


def hilbert_to_axes(indices: np.ndarray, bits: int = KEY_BITS) -> np.ndarray:
    """Inverse of :func:`axes_to_hilbert` (Skilling's TransposeToAxes)."""
    indices = np.asarray(indices, dtype=np.uint64)
    if bits < 1 or 3 * bits > 63:
        raise ValueError("bits must be in [1, 21]")
    from .keys import _undilate3

    x = [
        _undilate3(indices >> _U(2)),
        _undilate3(indices >> _U(1)),
        _undilate3(indices),
    ]
    n = _U(1 << bits)

    # Gray decode.
    t = x[2] >> _U(1)
    for i in range(2, 0, -1):
        x[i] ^= x[i - 1]
    x[0] ^= t

    # Undo excess work.
    q = _U(2)
    while q != n:
        p = q - _U(1)
        for i in range(2, -1, -1):
            hi = (x[i] & q) != 0
            x[0] = np.where(hi, x[0] ^ p, x[0])
            tt = (x[0] ^ x[i]) & p
            x[0] = np.where(hi, x[0], x[0] ^ tt)
            x[i] = np.where(hi, x[i], x[i] ^ tt)
        q <<= _U(1)
    return np.stack(x, axis=1)


def hilbert_keys_from_positions(
    positions: np.ndarray, box: BoundingBox | None = None, bits: int = KEY_BITS
) -> np.ndarray:
    """Hilbert indices for positions (analogous to keys_from_positions).

    Note these are plain curve indices (no placeholder bit): Hilbert
    indices do not support the Morton parent/child arithmetic, which is
    exactly the tradeoff the paper's choice reflects.
    """
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError("positions must be (N, 3)")
    if box is None:
        box = BoundingBox.from_points(positions)
    q = _quantize(positions, box, bits)
    return axes_to_hilbert(q.astype(np.int64), bits)


def curve_jump_stats(positions: np.ndarray, order: np.ndarray) -> tuple[float, float]:
    """(median, max) spatial jump between curve-consecutive points."""
    curve = positions[order]
    jumps = np.linalg.norm(np.diff(curve, axis=0), axis=1)
    return float(np.median(jumps)), float(jumps.max())


def decomposition_surface(
    positions: np.ndarray, order: np.ndarray, n_pieces: int, radius: float
) -> int:
    """Neighbor pairs split across domain boundaries (comm-volume proxy).

    Splits the ordered particle list into equal pieces and counts pairs
    closer than ``radius`` whose members land in different pieces —
    proportional to the halo-exchange volume a parallel code pays.
    """
    if n_pieces < 2:
        raise ValueError("need at least 2 pieces")
    n = positions.shape[0]
    owner = np.empty(n, dtype=np.int64)
    bounds = np.linspace(0, n, n_pieces + 1).astype(np.int64)
    for p in range(n_pieces):
        owner[order[bounds[p] : bounds[p + 1]]] = p
    count = 0
    r2 = radius * radius
    for lo in range(0, n, 1024):
        hi = min(lo + 1024, n)
        d = positions[lo:hi, None, :] - positions[None, :, :]
        close = (d**2).sum(axis=2) <= r2
        cross = owner[lo:hi, None] != owner[None, :]
        count += int((close & cross).sum())
    return count // 2
