"""Kernel backends for the gravity/SPH hot loops.

The treecode's value lives in its vectorizable inner loops — the
38-flop gravity interaction kernel of Table 5 is what a decade of
processors is measured against.  This module puts those inner loops
behind a small registry so the *same* batched interaction lists can be
evaluated by interchangeable implementations:

* ``numpy`` — the always-present reference backend: dense vectorized
  kernels, identical in arithmetic to the historical per-group walker.
* ``numba`` — an optional JIT backend, auto-registered when numba is
  importable.  It evaluates the flat CSR pair lists with explicit
  loops (no temporaries), the shape the paper's hand-tuned C kernels
  had.

Selection: pass ``backend=`` (a name or a :class:`KernelBackend`
instance) to any hot-path entry point, or set the ``REPRO_BACKEND``
environment variable; the default is ``numpy``.  Every backend must
satisfy the differential-physics suite
(``tests/test_backend_differential.py``): accelerations within tight
bounds of direct summation at every MAC setting, and
:class:`~repro.core.traversal.InteractionCounts` identical across
backends — the counts are a property of the traversal, never of the
kernel that evaluates it.

Interface (all arrays float64, C-contiguous; ``acc``/``pot`` are
accumulated in place):

* ``eval_cells_dense(sinks, com, mass, quad, eps2, G)`` — monopole +
  quadrupole field of a cell list at a dense block of sinks; returns
  ``(acc, pot)``.  Used by the per-group deferral walker in
  :mod:`repro.core.parallel`.
* ``eval_direct_dense(sinks, src_pos, src_mass, eps2, G)`` —
  Plummer-softened direct sum for a dense block; zero-distance
  unsoftened pairs contribute nothing.
* ``eval_cell_rects(pos3, starts, counts, offsets, cell_ids, com3,
  mass, quad6, eps2, G, acc, pot, pair_chunk)`` — evaluate flat CSR
  interaction *rectangles*: rectangle ``r`` is the contiguous sink
  run ``starts[r] : starts[r] + counts[r]`` against the cell list
  ``cell_ids[offsets[r]:offsets[r+1]]``.  Every sink belongs to at
  most one rectangle per call, so backends may reduce per sink
  without atomics.  Positions/centres arrive *component-major*
  (``pos3`` is ``(3, N)``, ``com3`` is ``(3, n_cells)``, ``quad6``
  is ``(6, n_cells)``, each row C-contiguous) so kernel steps are
  contiguous operations — the strided column access of an ``(N,
  3)`` layout is what makes vectorized pair kernels memory-bound.
  ``pair_chunk`` bounds the expanded (sink, source) pairs held live
  at once.
* ``eval_direct_rects(pos3, masses, starts, counts, offsets,
  src_ids, eps2, G, acc, pot, pair_chunk)`` — the same rectangle
  shape for flat (sink particle, source particle) lists.
* ``segment_sum(values, offsets)`` — CSR segment reduction (the SPH
  gather sum); empty segments produce exact zeros.
* ``scatter_add(target, idx, values)`` — unordered scatter-add (the
  SPH pairwise force accumulation).
* ``bincount_sum(idx, weights, minlength)`` — weighted bincount that
  accumulates **in input order** (the contract the CIC deposit and the
  histogram binners rely on for bit-identity with their references;
  ``weights=None`` counts into int64).
* ``scatter_min(target, idx, values)`` — unordered scatter-minimum
  (the FoF hook step; minimum is order-independent, so it needs no
  ordering contract).
* ``pair_within(pos, i_idx, j_idx, r2)`` — boolean mask of index
  pairs with squared separation ``<= r2`` (the SPH neighbor distance
  filter; pure comparisons, exact on every backend).

The ``multiprocess`` backend (see :mod:`repro.core.procpool`) wraps a
base backend and shards the two rectangle kernels across an OS-process
pool; everything else runs inline.  Because each rectangle's per-sink
result is independent of how rectangles are batched (padding is a
function of the rectangle's own width only), the sharded evaluation is
bit-identical to serial.
"""

from __future__ import annotations

import os
from typing import Callable

import numpy as np

__all__ = [
    "KernelBackend",
    "NumpyBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "DEFAULT_BACKEND",
    "BACKEND_ENV",
]

#: Environment variable consulted when no explicit backend is given.
BACKEND_ENV = "REPRO_BACKEND"
DEFAULT_BACKEND = "numpy"


class KernelBackend:
    """Abstract kernel backend; concrete backends override everything."""

    name = "abstract"

    # -- dense per-group kernels ----------------------------------------
    def eval_cells_dense(self, sinks, com, mass, quad, eps2, G):
        raise NotImplementedError

    def eval_direct_dense(self, sinks, src_pos, src_mass, eps2, G):
        raise NotImplementedError

    # -- flat CSR rectangle kernels -------------------------------------
    def eval_cell_rects(self, pos3, starts, counts, offsets, cell_ids, com3, mass, quad6, eps2, G, acc, pot, pair_chunk):
        raise NotImplementedError

    def eval_direct_rects(self, pos3, masses, starts, counts, offsets, src_ids, eps2, G, acc, pot, pair_chunk):
        raise NotImplementedError

    # -- reductions ------------------------------------------------------
    def segment_sum(self, values, offsets):
        raise NotImplementedError

    def scatter_add(self, target, idx, values):
        raise NotImplementedError

    def bincount_sum(self, idx, weights=None, minlength=0):
        raise NotImplementedError

    def scatter_min(self, target, idx, values):
        raise NotImplementedError

    def pair_within(self, pos, i_idx, j_idx, r2):
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def _pad_bins(widths: np.ndarray):
    """Group rectangles of similar source-list width into padded bins.

    Yields ``(sel, W)``: rectangle indices whose lists, padded to the
    common width ``W``, waste at most 1/8 of the evaluated pairs.
    Gathering source data once per (rectangle, source) and broadcasting
    over the rectangle's sinks turns the hot loops into dense 2-D
    kernels; the padding entries are made exact zeros by the caller.
    """
    live = widths > 0
    if not np.any(live):
        return
    idx = np.flatnonzero(live)
    wl = widths[idx]
    # pad step 2^(floor(log2 w) - 3): 8 bins per octave, <= 12.5% waste
    _, e = np.frexp(wl.astype(np.float64))
    step = np.left_shift(1, np.maximum(e - 4, 0))
    wpad = ((wl + step - 1) // step) * step
    for w in np.unique(wpad):
        yield idx[wpad == w], int(w)


def _rect_rows(starts: np.ndarray, counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Expand rectangle sink runs to (row -> rect, row -> particle)."""
    n_rows = int(counts.sum())
    local = np.arange(n_rows, dtype=np.int64)
    local -= np.repeat(np.cumsum(counts) - counts, counts)
    pids = np.repeat(starts, counts)
    pids += local
    return np.repeat(np.arange(counts.shape[0], dtype=np.int64), counts), pids


def _chunk_rects(counts: np.ndarray, width: int, pair_chunk: int):
    """Split rect indices into slices of <= pair_chunk padded pairs."""
    n = counts.shape[0]
    lo = 0
    budget = max(1, pair_chunk // max(width, 1))
    cum = np.concatenate([[0], np.cumsum(counts)])
    while lo < n:
        hi = int(np.searchsorted(cum, cum[lo] + budget, side="right")) - 1
        hi = min(max(hi, lo + 1), n)
        yield lo, hi
        lo = hi


class NumpyBackend(KernelBackend):
    """Reference backend: dense vectorized NumPy kernels."""

    name = "numpy"

    def eval_cells_dense(self, sinks, com, mass, quad, eps2, G):
        """Monopole + quadrupole field of cells at sink positions."""
        dr = sinks[:, None, :] - com[None, :, :]  # (ns, nc, 3)
        rs2 = np.einsum("ijk,ijk->ij", dr, dr) + eps2
        inv_r = 1.0 / np.sqrt(rs2)
        inv_r3 = inv_r / rs2
        inv_r5 = inv_r3 / rs2
        inv_r7 = inv_r5 / rs2

        acc = -(G * mass)[None, :, None] * dr * inv_r3[:, :, None]
        pot = -(G * mass)[None, :] * inv_r

        # Quadrupole: Qr vector and r.Qr scalar from packed symmetric Q.
        qxx, qyy, qzz, qxy, qxz, qyz = (quad[:, i] for i in range(6))
        qr = np.empty_like(dr)
        qr[:, :, 0] = qxx * dr[:, :, 0] + qxy * dr[:, :, 1] + qxz * dr[:, :, 2]
        qr[:, :, 1] = qxy * dr[:, :, 0] + qyy * dr[:, :, 1] + qyz * dr[:, :, 2]
        qr[:, :, 2] = qxz * dr[:, :, 0] + qyz * dr[:, :, 1] + qzz * dr[:, :, 2]
        rqr = np.einsum("ijk,ijk->ij", dr, qr)
        acc += G * (qr * inv_r5[:, :, None] - 2.5 * (rqr * inv_r7)[:, :, None] * dr)
        pot += -G * 0.5 * rqr * inv_r5
        return acc.sum(axis=1), pot.sum(axis=1)

    def eval_direct_dense(self, sinks, src_pos, src_mass, eps2, G):
        """Plummer-softened direct sum; zero-distance pairs contribute 0."""
        dr = sinks[:, None, :] - src_pos[None, :, :]
        r2 = np.einsum("ijk,ijk->ij", dr, dr)
        rs2 = r2 + eps2
        self_pair = rs2 == 0.0
        if np.any(self_pair):
            rs2 = np.where(self_pair, 1.0, rs2)
        inv_r = 1.0 / np.sqrt(rs2)
        inv_r3 = inv_r / rs2
        if eps2 == 0.0:
            # Unsoftened: exclude exact overlaps (self-interaction).
            zero = r2 == 0.0
            inv_r = np.where(zero, 0.0, inv_r)
            inv_r3 = np.where(zero, 0.0, inv_r3)
        elif np.any(self_pair):
            inv_r = np.where(self_pair, 0.0, inv_r)
            inv_r3 = np.where(self_pair, 0.0, inv_r3)
        acc = -(G * src_mass)[None, :, None] * dr * inv_r3[:, :, None]
        pot = -(G * src_mass)[None, :] * inv_r
        return acc.sum(axis=1), pot.sum(axis=1)

    def eval_cell_rects(self, pos3, starts, counts, offsets, cell_ids, com3, mass, quad6, eps2, G, acc, pot, pair_chunk):
        if cell_ids.size == 0:
            return
        widths = np.diff(offsets)
        for sel, W in _pad_bins(widths):
            # W can exceed widths.max() (it pads *up*), so build the
            # column index per bin: a rect's padded row length must be a
            # function of its own width only, or per-rect results would
            # depend on call composition through the reduction grouping.
            col = np.arange(W, dtype=np.int64)
            for lo, hi in _chunk_rects(counts[sel], W, pair_chunk):
                sub = sel[lo:hi]
                wv = widths[sub]
                # Gather per (rect, cell) once — amortized over the
                # rect's sinks.  Padded slots repeat the last real cell
                # with mass and quadrupole zeroed, so they contribute
                # exact zeros (an accepted cell is never at zero
                # distance: the MAC cannot accept one).
                gi = offsets[sub][:, None] + np.minimum(col, wv[:, None] - 1)
                cid = cell_ids[gi]
                pad = col >= wv[:, None]
                gm = mass[cid]
                gm[pad] = 0.0
                if G != 1.0:
                    gm *= G
                qxx = quad6[0][cid]
                qyy = quad6[1][cid]
                qzz = quad6[2][cid]
                qxy = quad6[3][cid]
                qxz = quad6[4][cid]
                qyz = quad6[5][cid]
                for q in (qxx, qyy, qzz, qxy, qxz, qyz):
                    q[pad] = 0.0
                cx = com3[0][cid]
                cy = com3[1][cid]
                cz = com3[2][cid]
                rows, pids = _rect_rows(starts[sub], counts[sub])
                # (R, W) dense arithmetic, all contiguous.  Expand the
                # cell stream first and subtract in place: a broadcast
                # ufunc into a fresh output is several times slower
                # than an equal-shape in-place one.
                dx = cx[rows]
                np.subtract(pos3[0][pids][:, None], dx, out=dx)
                dy = cy[rows]
                np.subtract(pos3[1][pids][:, None], dy, out=dy)
                dz = cz[rows]
                np.subtract(pos3[2][pids][:, None], dz, out=dz)
                rs2 = dx * dx
                rs2 += dy * dy
                rs2 += dz * dz
                rs2 += eps2
                inv_r = np.sqrt(rs2)
                np.divide(1.0, inv_r, out=inv_r)
                inv_r2 = np.divide(1.0, rs2, out=rs2)
                inv_r3 = inv_r * inv_r2
                inv_r5 = inv_r3 * inv_r2
                inv_r7 = inv_r5 * inv_r2
                gm2 = gm[rows]
                # Qr vector and r.Qr scalar from the packed symmetric Q;
                # the off-diagonal rows are each used twice, so expand
                # them to (R, W) once.
                qxy2 = qxy[rows]
                qxz2 = qxz[rows]
                qyz2 = qyz[rows]
                qrx = qxx[rows] * dx
                qrx += qxy2 * dy
                qrx += qxz2 * dz
                qry = qxy2 * dx
                qry += qyy[rows] * dy
                qry += qyz2 * dz
                qrz = qxz2 * dx
                qrz += qyz2 * dy
                qrz += qzz[rows] * dz
                rqr = qrx * dx
                rqr += qry * dy
                rqr += qrz * dz
                # a = -(gm r^-3 + 2.5 G rqr r^-7) dr + G r^-5 Qr
                c1 = gm2 * inv_r3
                c2 = rqr * inv_r7
                c2 *= 2.5 * G
                c1 += c2
                np.negative(c1, out=c1)
                inv_r5G = inv_r5
                if G != 1.0:
                    inv_r5G = inv_r5 * G
                qrx *= inv_r5G
                qry *= inv_r5G
                qrz *= inv_r5G
                dx *= c1
                qrx += dx
                dy *= c1
                qry += dy
                dz *= c1
                qrz += dz
                # p = -gm r^-1 - 0.5 G rqr r^-5
                gm2 *= inv_r
                rqr *= inv_r5G
                rqr *= 0.5
                gm2 += rqr
                acc[pids, 0] += qrx.sum(axis=1)
                acc[pids, 1] += qry.sum(axis=1)
                acc[pids, 2] += qrz.sum(axis=1)
                pot[pids] -= gm2.sum(axis=1)

    def eval_direct_rects(self, pos3, masses, starts, counts, offsets, src_ids, eps2, G, acc, pot, pair_chunk):
        if src_ids.size == 0:
            return
        widths = np.diff(offsets)
        for sel, W in _pad_bins(widths):
            col = np.arange(W, dtype=np.int64)  # per bin: W can exceed widths.max()
            for lo, hi in _chunk_rects(counts[sel], W, pair_chunk):
                sub = sel[lo:hi]
                wv = widths[sub]
                # Padded slots repeat the last real source with mass
                # zeroed: exact zero contribution (the zero-distance
                # rule below covers an unsoftened coincident pad too).
                gi = offsets[sub][:, None] + np.minimum(col, wv[:, None] - 1)
                sid = src_ids[gi]
                pad = col >= wv[:, None]
                gm = masses[sid]
                gm[pad] = 0.0
                if G != 1.0:
                    gm *= G
                sx = pos3[0][sid]
                sy = pos3[1][sid]
                sz = pos3[2][sid]
                rows, pids = _rect_rows(starts[sub], counts[sub])
                dx = sx[rows]
                np.subtract(pos3[0][pids][:, None], dx, out=dx)
                dy = sy[rows]
                np.subtract(pos3[1][pids][:, None], dy, out=dy)
                dz = sz[rows]
                np.subtract(pos3[2][pids][:, None], dz, out=dz)
                rs2 = dx * dx
                rs2 += dy * dy
                rs2 += dz * dz
                rs2 += eps2
                # A pair at exactly zero softened distance is a
                # self-interaction (or an unsoftened coincidence): it
                # contributes nothing.  With eps2 > 0 the softened
                # radius is strictly positive everywhere.
                zero = None
                if eps2 == 0.0:
                    zero = rs2 == 0.0
                    if np.any(zero):
                        rs2[zero] = 1.0
                    else:
                        zero = None
                inv_r = np.sqrt(rs2)
                np.divide(1.0, inv_r, out=inv_r)
                inv_r3 = np.divide(inv_r, rs2, out=rs2)
                if zero is not None:
                    inv_r[zero] = 0.0
                    inv_r3[zero] = 0.0
                gm2 = gm[rows]
                c = gm2 * inv_r3
                dx *= c
                dy *= c
                dz *= c
                gm2 *= inv_r
                acc[pids, 0] -= dx.sum(axis=1)
                acc[pids, 1] -= dy.sum(axis=1)
                acc[pids, 2] -= dz.sum(axis=1)
                pot[pids] -= gm2.sum(axis=1)

    def segment_sum(self, values, offsets):
        values = np.asarray(values, dtype=np.float64)
        offsets = np.asarray(offsets, dtype=np.int64)
        nseg = offsets.shape[0] - 1
        out = np.zeros((nseg,) + values.shape[1:], dtype=np.float64)
        if nseg == 0 or values.shape[0] == 0:
            return out
        nonempty = offsets[:-1] < offsets[1:]
        if not np.any(nonempty):
            return out
        # Starts of the non-empty segments are strictly increasing, and
        # the gaps between them contain exactly the skipped (empty)
        # segments' zero elements — reduceat over them is exact.
        out[nonempty] = np.add.reduceat(values, offsets[:-1][nonempty], axis=0)
        return out

    def scatter_add(self, target, idx, values):
        np.add.at(target, idx, values)

    def bincount_sum(self, idx, weights=None, minlength=0):
        # np.bincount accumulates weights sequentially in input order,
        # the same order np.add.at applies them — the property the CIC
        # deposit's bit-identity with its reference rests on.
        return np.bincount(idx, weights=weights, minlength=minlength)

    def scatter_min(self, target, idx, values):
        np.minimum.at(target, idx, values)

    def pair_within(self, pos, i_idx, j_idx, r2):
        d = pos[i_idx] - pos[j_idx]
        return np.einsum("ij,ij->i", d, d) <= r2


# -- registry -----------------------------------------------------------

_FACTORIES: dict[str, Callable[[], KernelBackend]] = {}
_INSTANCES: dict[str, KernelBackend] = {}


def register_backend(name: str, factory: Callable[[], KernelBackend]) -> None:
    """Register a backend factory under ``name`` (lower-cased)."""
    _FACTORIES[name.lower()] = factory
    _INSTANCES.pop(name.lower(), None)


def available_backends() -> tuple[str, ...]:
    """Names of every registered (importable) backend, sorted."""
    return tuple(sorted(_FACTORIES))


def get_backend(backend: "str | KernelBackend | None" = None) -> KernelBackend:
    """Resolve a backend choice to an instance.

    ``None`` consults ``$REPRO_BACKEND`` and falls back to ``numpy``;
    a :class:`KernelBackend` instance passes through unchanged.
    """
    if isinstance(backend, KernelBackend):
        return backend
    name = backend if backend is not None else os.environ.get(BACKEND_ENV) or DEFAULT_BACKEND
    name = name.lower()
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown kernel backend {name!r}; available: {', '.join(available_backends())}"
        )
    inst = _INSTANCES.get(name)
    if inst is None:
        inst = _INSTANCES[name] = _FACTORIES[name]()
    return inst


register_backend("numpy", NumpyBackend)


def _numba_importable() -> bool:
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


def _make_numba() -> KernelBackend:
    from .backend_numba import NumbaBackend

    return NumbaBackend()


if _numba_importable():  # pragma: no cover - exercised on the numba CI leg
    register_backend("numba", _make_numba)


def _make_multiprocess() -> KernelBackend:
    from .procpool import MultiprocessBackend

    return MultiprocessBackend()


register_backend("multiprocess", _make_multiprocess)
