"""Optional numba-JIT kernel backend.

Imported only when numba is installed (see
:func:`repro.core.backend.get_backend`); the base install never touches
this module.  The kernels are explicit-loop transcriptions of the
:class:`~repro.core.backend.NumpyBackend` arithmetic — same softening
rules, same zero-distance exclusions — so the differential suite holds
for both.  Loops over flat CSR pair lists run with no temporaries,
which is the shape the paper's hand-tuned interaction kernels had.
"""

from __future__ import annotations

import numpy as np
from numba import njit

from .backend import KernelBackend


@njit(cache=True)
def _cell_rects_kernel(pos3, starts, counts, offsets, cell_ids, com, mass, quad, eps2, G, acc, pot):
    for r in range(starts.shape[0]):
        for i in range(starts[r], starts[r] + counts[r]):
            px, py, pz = pos3[0, i], pos3[1, i], pos3[2, i]
            ax = 0.0
            ay = 0.0
            az = 0.0
            ph = 0.0
            for k in range(offsets[r], offsets[r + 1]):
                c = cell_ids[k]
                dx = px - com[0, c]
                dy = py - com[1, c]
                dz = pz - com[2, c]
                rs2 = dx * dx + dy * dy + dz * dz + eps2
                inv_r = 1.0 / np.sqrt(rs2)
                inv_r3 = inv_r / rs2
                inv_r5 = inv_r3 / rs2
                inv_r7 = inv_r5 / rs2
                gm = G * mass[c]
                qrx = quad[0, c] * dx + quad[3, c] * dy + quad[4, c] * dz
                qry = quad[3, c] * dx + quad[1, c] * dy + quad[5, c] * dz
                qrz = quad[4, c] * dx + quad[5, c] * dy + quad[2, c] * dz
                rqr = dx * qrx + dy * qry + dz * qrz
                f = 2.5 * rqr * inv_r7
                ax += -gm * dx * inv_r3 + G * (qrx * inv_r5 - f * dx)
                ay += -gm * dy * inv_r3 + G * (qry * inv_r5 - f * dy)
                az += -gm * dz * inv_r3 + G * (qrz * inv_r5 - f * dz)
                ph += -gm * inv_r - G * 0.5 * rqr * inv_r5
            acc[i, 0] += ax
            acc[i, 1] += ay
            acc[i, 2] += az
            pot[i] += ph


@njit(cache=True)
def _direct_rects_kernel(pos3, masses, starts, counts, offsets, src_ids, eps2, G, acc, pot):
    for r in range(starts.shape[0]):
        for i in range(starts[r], starts[r] + counts[r]):
            px, py, pz = pos3[0, i], pos3[1, i], pos3[2, i]
            ax = 0.0
            ay = 0.0
            az = 0.0
            ph = 0.0
            for k in range(offsets[r], offsets[r + 1]):
                j = src_ids[k]
                dx = px - pos3[0, j]
                dy = py - pos3[1, j]
                dz = pz - pos3[2, j]
                rs2 = dx * dx + dy * dy + dz * dz + eps2
                if rs2 == 0.0:
                    continue  # unsoftened self/coincident pair contributes nothing
                inv_r = 1.0 / np.sqrt(rs2)
                inv_r3 = inv_r / rs2
                gm = G * masses[j]
                ax -= gm * dx * inv_r3
                ay -= gm * dy * inv_r3
                az -= gm * dz * inv_r3
                ph -= gm * inv_r
            acc[i, 0] += ax
            acc[i, 1] += ay
            acc[i, 2] += az
            pot[i] += ph


@njit(cache=True)
def _cells_dense_kernel(sinks, com, mass, quad, eps2, G, acc, pot):
    for i in range(sinks.shape[0]):
        for c in range(com.shape[0]):
            dx = sinks[i, 0] - com[c, 0]
            dy = sinks[i, 1] - com[c, 1]
            dz = sinks[i, 2] - com[c, 2]
            rs2 = dx * dx + dy * dy + dz * dz + eps2
            inv_r = 1.0 / np.sqrt(rs2)
            inv_r3 = inv_r / rs2
            inv_r5 = inv_r3 / rs2
            inv_r7 = inv_r5 / rs2
            gm = G * mass[c]
            qrx = quad[c, 0] * dx + quad[c, 3] * dy + quad[c, 4] * dz
            qry = quad[c, 3] * dx + quad[c, 1] * dy + quad[c, 5] * dz
            qrz = quad[c, 4] * dx + quad[c, 5] * dy + quad[c, 2] * dz
            rqr = dx * qrx + dy * qry + dz * qrz
            f = 2.5 * rqr * inv_r7
            acc[i, 0] += -gm * dx * inv_r3 + G * (qrx * inv_r5 - f * dx)
            acc[i, 1] += -gm * dy * inv_r3 + G * (qry * inv_r5 - f * dy)
            acc[i, 2] += -gm * dz * inv_r3 + G * (qrz * inv_r5 - f * dz)
            pot[i] += -gm * inv_r - G * 0.5 * rqr * inv_r5


@njit(cache=True)
def _direct_dense_kernel(sinks, src_pos, src_mass, eps2, G, acc, pot):
    for i in range(sinks.shape[0]):
        for j in range(src_pos.shape[0]):
            dx = sinks[i, 0] - src_pos[j, 0]
            dy = sinks[i, 1] - src_pos[j, 1]
            dz = sinks[i, 2] - src_pos[j, 2]
            rs2 = dx * dx + dy * dy + dz * dz + eps2
            if rs2 == 0.0:
                continue
            inv_r = 1.0 / np.sqrt(rs2)
            inv_r3 = inv_r / rs2
            gm = G * src_mass[j]
            acc[i, 0] -= gm * dx * inv_r3
            acc[i, 1] -= gm * dy * inv_r3
            acc[i, 2] -= gm * dz * inv_r3
            pot[i] -= gm * inv_r


@njit(cache=True)
def _segment_sum_1d(values, offsets, out):
    for s in range(offsets.shape[0] - 1):
        total = 0.0
        for k in range(offsets[s], offsets[s + 1]):
            total += values[k]
        out[s] = total


@njit(cache=True)
def _segment_sum_2d(values, offsets, out):
    for s in range(offsets.shape[0] - 1):
        for d in range(values.shape[1]):
            total = 0.0
            for k in range(offsets[s], offsets[s + 1]):
                total += values[k, d]
            out[s, d] = total


@njit(cache=True)
def _scatter_add_1d(target, idx, values):
    for k in range(idx.shape[0]):
        target[idx[k]] += values[k]


@njit(cache=True)
def _bincount_weighted(idx, weights, out):
    # Sequential in input order — same accumulation order as
    # np.bincount/np.add.at, so the deposit bit-identity holds here too.
    for k in range(idx.shape[0]):
        out[idx[k]] += weights[k]


@njit(cache=True)
def _bincount_plain(idx, out):
    for k in range(idx.shape[0]):
        out[idx[k]] += 1


@njit(cache=True)
def _scatter_min_kernel(target, idx, values):
    for k in range(idx.shape[0]):
        if values[k] < target[idx[k]]:
            target[idx[k]] = values[k]


@njit(cache=True)
def _pair_within_kernel(pos, i_idx, j_idx, r2, out):
    for k in range(i_idx.shape[0]):
        dx = pos[i_idx[k], 0] - pos[j_idx[k], 0]
        dy = pos[i_idx[k], 1] - pos[j_idx[k], 1]
        dz = pos[i_idx[k], 2] - pos[j_idx[k], 2]
        out[k] = dx * dx + dy * dy + dz * dz <= r2[k]


@njit(cache=True)
def _scatter_add_2d(target, idx, values):
    for k in range(idx.shape[0]):
        for d in range(values.shape[1]):
            target[idx[k], d] += values[k, d]


class NumbaBackend(KernelBackend):
    """JIT backend over the flat CSR pair lists."""

    name = "numba"

    def eval_cells_dense(self, sinks, com, mass, quad, eps2, G):
        acc = np.zeros((sinks.shape[0], 3))
        pot = np.zeros(sinks.shape[0])
        _cells_dense_kernel(
            np.ascontiguousarray(sinks), np.ascontiguousarray(com),
            np.ascontiguousarray(mass), np.ascontiguousarray(quad),
            float(eps2), float(G), acc, pot,
        )
        return acc, pot

    def eval_direct_dense(self, sinks, src_pos, src_mass, eps2, G):
        acc = np.zeros((sinks.shape[0], 3))
        pot = np.zeros(sinks.shape[0])
        _direct_dense_kernel(
            np.ascontiguousarray(sinks), np.ascontiguousarray(src_pos),
            np.ascontiguousarray(src_mass), float(eps2), float(G), acc, pot,
        )
        return acc, pot

    def eval_cell_rects(self, pos3, starts, counts, offsets, cell_ids, com3, mass, quad6, eps2, G, acc, pot, pair_chunk):
        if cell_ids.size == 0:
            return
        _cell_rects_kernel(
            pos3, np.ascontiguousarray(starts, dtype=np.int64),
            np.ascontiguousarray(counts, dtype=np.int64),
            np.ascontiguousarray(offsets, dtype=np.int64),
            np.ascontiguousarray(cell_ids, dtype=np.int64),
            com3, mass, quad6, float(eps2), float(G), acc, pot,
        )

    def eval_direct_rects(self, pos3, masses, starts, counts, offsets, src_ids, eps2, G, acc, pot, pair_chunk):
        if src_ids.size == 0:
            return
        _direct_rects_kernel(
            pos3, masses, np.ascontiguousarray(starts, dtype=np.int64),
            np.ascontiguousarray(counts, dtype=np.int64),
            np.ascontiguousarray(offsets, dtype=np.int64),
            np.ascontiguousarray(src_ids, dtype=np.int64), float(eps2), float(G), acc, pot,
        )

    def segment_sum(self, values, offsets):
        values = np.ascontiguousarray(values, dtype=np.float64)
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        nseg = offsets.shape[0] - 1
        out = np.zeros((nseg,) + values.shape[1:], dtype=np.float64)
        if nseg == 0:
            return out
        if values.ndim == 1:
            _segment_sum_1d(values, offsets, out)
        else:
            _segment_sum_2d(values, offsets, out)
        return out

    def scatter_add(self, target, idx, values):
        idx = np.ascontiguousarray(idx, dtype=np.int64)
        values = np.ascontiguousarray(values, dtype=np.float64)
        if idx.size == 0:
            return
        if target.ndim == 1:
            _scatter_add_1d(target, idx, values)
        else:
            _scatter_add_2d(target, idx, values)

    def bincount_sum(self, idx, weights=None, minlength=0):
        idx = np.ascontiguousarray(idx, dtype=np.int64)
        length = max(int(minlength), int(idx.max()) + 1 if idx.size else 0)
        if weights is None:
            out = np.zeros(length, dtype=np.int64)
            if idx.size:
                _bincount_plain(idx, out)
            return out
        out = np.zeros(length, dtype=np.float64)
        if idx.size:
            _bincount_weighted(idx, np.ascontiguousarray(weights, dtype=np.float64), out)
        return out

    def scatter_min(self, target, idx, values):
        idx = np.ascontiguousarray(idx, dtype=np.int64)
        values = np.ascontiguousarray(values, dtype=target.dtype)
        if idx.size:
            _scatter_min_kernel(target, idx, values)

    def pair_within(self, pos, i_idx, j_idx, r2):
        i_idx = np.ascontiguousarray(i_idx, dtype=np.int64)
        out = np.empty(i_idx.shape[0], dtype=np.bool_)
        if i_idx.size:
            _pair_within_kernel(
                np.ascontiguousarray(pos, dtype=np.float64), i_idx,
                np.ascontiguousarray(j_idx, dtype=np.int64),
                np.ascontiguousarray(r2, dtype=np.float64), out,
            )
        return out
