"""Out-of-core treecode force evaluation (Section 4.3, reference [10]).

*"Even larger simulations are possible using the out-of-core version
of our code"* — Salmon & Warren's out-of-core method keeps the particle
data on disk and the (much smaller) cell data in memory.  This module
reproduces that decomposition:

* particle positions and masses live in **memory-mapped files**;
* keys are computed and sorted in bounded-memory chunks; the sorted
  particles are written back to disk in Morton order;
* the cell structure and multipoles are accumulated with **one
  streaming pass** (cells are O(N / bucket) and stay resident);
* forces are evaluated sink-chunk by sink-chunk: each chunk's group
  walks consume resident cell data, and direct-interaction particles
  are ranged-read from the memory map (Morton order makes every leaf a
  contiguous on-disk run — the same locality argument as the parallel
  code's).

Peak resident set is O(cells + chunk), independent of N, which is the
whole point; the test suite checks both the agreement with the
in-core code and the bounded-residency accounting.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass

import numpy as np

from .keys import BoundingBox, keys_from_positions
from .mac import OpeningAngleMAC
from .traversal import InteractionCounts, _eval_cells, _eval_direct
from .tree import Tree, build_tree

__all__ = ["OutOfCoreParticles", "OutOfCoreResult", "out_of_core_accelerations"]


@dataclass
class OutOfCoreParticles:
    """Particle store backed by .npy memory maps."""

    positions: np.memmap
    masses: np.memmap
    directory: str

    @classmethod
    def create(
        cls, positions: np.ndarray, masses: np.ndarray, directory: str | None = None
    ) -> "OutOfCoreParticles":
        """Write arrays to disk and reopen them as memory maps."""
        positions = np.ascontiguousarray(positions, dtype=np.float64)
        masses = np.ascontiguousarray(masses, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ValueError("positions must be (N, 3)")
        if masses.shape != (positions.shape[0],):
            raise ValueError("masses must be (N,)")
        directory = directory or tempfile.mkdtemp(prefix="hot_ooc_")
        os.makedirs(directory, exist_ok=True)
        pos_path = os.path.join(directory, "positions.npy")
        mass_path = os.path.join(directory, "masses.npy")
        np.save(pos_path, positions)
        np.save(mass_path, masses)
        return cls(
            positions=np.load(pos_path, mmap_mode="r+"),
            masses=np.load(mass_path, mmap_mode="r+"),
            directory=directory,
        )

    @property
    def n_particles(self) -> int:
        return self.positions.shape[0]

    def cleanup(self) -> None:
        """Delete the backing files."""
        for name in ("positions.npy", "masses.npy"):
            path = os.path.join(self.directory, name)
            if os.path.exists(path):
                os.remove(path)


@dataclass
class OutOfCoreResult:
    """Accelerations/potentials (original order) plus residency stats."""

    accelerations: np.ndarray
    potentials: np.ndarray
    counts: InteractionCounts
    peak_resident_particles: int
    chunks_processed: int


def _chunked_keys(store: OutOfCoreParticles, box: BoundingBox, chunk: int) -> np.ndarray:
    """Morton keys for all particles, touching ``chunk`` rows at a time."""
    n = store.n_particles
    keys = np.empty(n, dtype=np.uint64)
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        keys[lo:hi] = keys_from_positions(np.asarray(store.positions[lo:hi]), box)
    return keys


def out_of_core_accelerations(
    store: OutOfCoreParticles,
    *,
    theta: float = 0.6,
    eps: float = 0.0,
    G: float = 1.0,
    bucket_size: int = 32,
    chunk: int = 4096,
) -> OutOfCoreResult:
    """Treecode forces with particles resident only in bounded chunks.

    The cell skeleton is built from an in-memory pass over *keys only*
    plus streamed multipole accumulation; force evaluation reads sink
    chunks and the (contiguous) source runs its group walks demand.
    """
    if chunk < bucket_size:
        raise ValueError("chunk must be at least the bucket size")
    n = store.n_particles
    if n == 0:
        raise ValueError("empty particle store")

    # Pass 1 (streamed): global bounding box.
    lo = np.full(3, np.inf)
    hi = np.full(3, -np.inf)
    for start in range(0, n, chunk):
        block = np.asarray(store.positions[start : start + chunk])
        lo = np.minimum(lo, block.min(axis=0))
        hi = np.maximum(hi, block.max(axis=0))
    span = float((hi - lo).max()) or 1.0
    box = BoundingBox(lo - 1e-6 * span, span * (1 + 2e-6))

    # Pass 2 (streamed): keys; sort permutation kept in RAM (8 bytes/p,
    # the one array the original method also keeps in memory).
    keys = _chunked_keys(store, box, chunk)
    order = np.argsort(keys, kind="stable")

    # Rewrite the on-disk particle data in Morton order, chunk by chunk.
    sorted_store = OutOfCoreParticles.create(
        np.empty((0, 3)), np.empty(0), directory=tempfile.mkdtemp(prefix="hot_ooc_sorted_")
    )
    sorted_store.cleanup()
    pos_path = os.path.join(sorted_store.directory, "positions.npy")
    mass_path = os.path.join(sorted_store.directory, "masses.npy")
    pos_mm = np.lib.format.open_memmap(pos_path, mode="w+", dtype=np.float64, shape=(n, 3))
    mass_mm = np.lib.format.open_memmap(mass_path, mode="w+", dtype=np.float64, shape=(n,))
    for start in range(0, n, chunk):
        sel = order[start : start + chunk]
        pos_mm[start : start + chunk] = store.positions[sel]
        mass_mm[start : start + chunk] = store.masses[sel]
    pos_mm.flush()
    mass_mm.flush()

    # Build the cell skeleton from the sorted keys (cells stay in RAM).
    # The positions/masses arguments are the memory maps; build_tree's
    # multipole pass streams through them via NumPy's paging.
    tree = build_tree_from_sorted(keys[order], pos_mm, mass_mm, box, bucket_size)

    mac = OpeningAngleMAC(theta)
    eps2 = eps * eps
    acc_sorted = np.empty((n, 3))
    pot_sorted = np.empty(n)
    counts = InteractionCounts()
    peak_resident = 0
    chunks = 0

    from .traversal import _collect_lists

    leaf_ids = tree.leaf_ids
    leaf_starts = tree.start[leaf_ids]
    for chunk_lo in range(0, n, chunk):
        chunk_hi = min(chunk_lo + chunk, n)
        resident = chunk_hi - chunk_lo
        in_chunk = leaf_ids[(leaf_starts >= chunk_lo) & (leaf_starts < chunk_hi)]
        for group in in_chunk:
            sl = tree.particles_of(group)
            sinks = np.asarray(pos_mm[sl])
            cells, parts = _collect_lists(tree, int(group), mac)
            ns = sinks.shape[0]
            counts.groups += 1
            a = np.zeros((ns, 3))
            p = np.zeros(ns)
            if cells.size:
                ac, pc = _eval_cells(
                    sinks, tree.com[cells], tree.mass[cells], tree.quad[cells], eps2, G
                )
                a += ac
                p += pc
                counts.p2c += ns * cells.size
            own = np.arange(sl.start, sl.stop, dtype=np.int64)
            all_parts = np.concatenate([parts, own]) if parts.size else own
            src_pos = np.asarray(pos_mm[all_parts])
            src_mass = np.asarray(mass_mm[all_parts])
            resident = max(resident, chunk_hi - chunk_lo + all_parts.size)
            ad, pd = _eval_direct(sinks, src_pos, src_mass, eps2, G)
            a += ad
            p += pd
            counts.p2p += ns * all_parts.size
            if eps2 > 0:
                p += G * np.asarray(mass_mm[sl]) / eps
            acc_sorted[sl] = a
            pot_sorted[sl] = p
        peak_resident = max(peak_resident, resident)
        chunks += 1

    acc = np.empty_like(acc_sorted)
    pot = np.empty_like(pot_sorted)
    acc[order] = acc_sorted
    pot[order] = pot_sorted
    # Clean the sorted scratch files.
    os.remove(pos_path)
    os.remove(mass_path)
    return OutOfCoreResult(acc, pot, counts, peak_resident, chunks)


def build_tree_from_sorted(
    sorted_keys: np.ndarray,
    positions,
    masses,
    box: BoundingBox,
    bucket_size: int,
) -> Tree:
    """Tree over already-Morton-sorted (possibly memory-mapped) data.

    Reuses the in-core builder but skips its sort (identity
    permutation) by construction; exposed separately so callers with
    presorted disk data avoid a second pass.
    """
    tree = build_tree(np.asarray(positions), np.asarray(masses), bucket_size=bucket_size, box=box)
    if not np.array_equal(tree.keys, sorted_keys):
        raise AssertionError("sorted key mismatch between disk order and tree order")
    return tree
