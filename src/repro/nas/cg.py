"""NPB CG mini-kernel: conjugate gradient eigenvalue estimation.

The real computation of NPB CG: estimate the largest eigenvalue of a
sparse symmetric positive-definite matrix by inverse power iteration,
solving each linear system with 25 unpreconditioned conjugate-gradient
iterations.  The matrix here is a random symmetric diagonally-dominant
sparse matrix with the class's order and row density (NPB's generator
builds a specific random pattern; ours preserves order, density, and
spectral character rather than the exact bitstream).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .classes import NpbProblem, problem, total_ops

__all__ = ["CgResult", "make_matrix", "cg_solve", "run_cg"]

INNER_ITERS = 25


@dataclass(frozen=True)
class CgResult:
    """Outcome of one CG benchmark run."""

    problem: NpbProblem
    zeta: float
    final_rnorm: float
    ops: float
    verified: bool


def make_matrix(n: int, nonzer: int, shift: float, seed: int = 314159) -> sp.csr_matrix:
    """Random sparse SPD matrix of order ``n``, ~``nonzer`` off-diagonals/row.

    Symmetric, diagonally dominant (hence SPD), with the NPB shift added
    to the diagonal, giving a well-clustered spectrum like the original
    generator's.
    """
    if n < 2 or nonzer < 1:
        raise ValueError("n >= 2 and nonzer >= 1 required")
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(n), nonzer)
    cols = rng.integers(0, n, n * nonzer)
    vals = rng.random(n * nonzer) * 2.0 - 1.0
    a = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    a = a + a.T  # symmetrize
    row_sums = np.abs(a).sum(axis=1).A1 if hasattr(np.abs(a).sum(axis=1), "A1") else np.asarray(np.abs(a).sum(axis=1)).ravel()
    d = sp.diags(row_sums + shift)
    return (a + d).tocsr()


def cg_solve(a: sp.csr_matrix, b: np.ndarray, iters: int = INNER_ITERS) -> tuple[np.ndarray, float]:
    """``iters`` steps of conjugate gradients; returns (x, ||r||)."""
    x = np.zeros_like(b)
    r = b.copy()
    p = r.copy()
    rho = float(r @ r)
    for _ in range(iters):
        q = a @ p
        denom = float(p @ q)
        if denom == 0.0:
            break
        alpha = rho / denom
        x += alpha * p
        r -= alpha * q
        rho_new = float(r @ r)
        if rho == 0.0:
            break
        p = r + (rho_new / rho) * p
        rho = rho_new
    return x, float(np.sqrt(rho))


def run_cg(klass: str = "S", seed: int = 314159) -> CgResult:
    """Run the CG benchmark at a given class (S/W are laptop-friendly).

    NPB verification compares zeta to a reference value; since our
    matrix generator is not bit-identical, verification here checks the
    physical invariants instead: zeta exceeds the diagonal shift (the
    matrix is positive definite with smallest eigenvalue > shift is not
    guaranteed, but zeta must be finite and the inner solves must
    reduce the residual by orders of magnitude).
    """
    prob = problem("CG", klass)
    n, nonzer, shift = prob.size
    a = make_matrix(n, nonzer, shift, seed)
    x = np.ones(n)
    zeta = 0.0
    rnorm = np.inf
    for _ in range(prob.niter):
        z, rnorm = cg_solve(a, x)
        zx = float(x @ z)
        if zx == 0.0:
            raise RuntimeError("CG broke down: x . z == 0")
        zeta = shift + 1.0 / zx
        x = z / np.linalg.norm(z)
    verified = bool(np.isfinite(zeta) and rnorm < 1e-8 * n)
    return CgResult(prob, zeta, rnorm, total_ops(prob), verified)
