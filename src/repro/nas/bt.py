"""NPB BT mini-kernel: alternating-direction implicit (ADI) solver.

NPB BT solves the 3-D compressible Navier-Stokes equations with a
Beam-Warming approximate factorization, sweeping block-tridiagonal
(5x5) systems along x, then y, then z every time step.  The mini-kernel
keeps that structure exactly — three factored implicit line-solve
sweeps per step on a cubic grid — on the scalar diffusion model problem

.. math:: (I - \\mu\\,\\delta^2_x)(I - \\mu\\,\\delta^2_y)
          (I - \\mu\\,\\delta^2_z)\\, u^{n+1} = u^n

with Dirichlet walls (the 5x5 blocks degenerate to scalars; DESIGN.md
notes the reduction).  Each sweep is one banded solve with the full
plane of right-hand sides, the same vectorization shape as the Fortran.

Verification is exact: for a ``sin(pi x) sin(pi y) sin(pi z)`` initial
field the factored scheme damps the amplitude by an analytically known
factor per step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import solve_banded

from .classes import NpbProblem, problem, total_ops

__all__ = ["AdiResult", "adi_step_tridiagonal", "run_bt"]


@dataclass(frozen=True)
class AdiResult:
    problem: NpbProblem
    amplitude_error: float
    ops: float
    verified: bool
    steps_run: int = 0  # iterations actually executed (may be truncated)


def _tridiag_banded(n: int, mu_h2: float) -> np.ndarray:
    """Banded form of (I - mu d^2/dx^2) on n interior points."""
    ab = np.zeros((3, n))
    ab[0, 1:] = -mu_h2
    ab[1, :] = 1.0 + 2.0 * mu_h2
    ab[2, :-1] = -mu_h2
    return ab


def adi_step_tridiagonal(u: np.ndarray, mu_h2: float) -> np.ndarray:
    """One factored implicit step: x, y, z tridiagonal sweeps."""
    n = u.shape[0]
    ab = _tridiag_banded(n, mu_h2)
    for axis in range(3):
        moved = np.moveaxis(u, axis, 0).reshape(n, -1)
        solved = solve_banded((1, 1), ab, moved)
        u = np.moveaxis(solved.reshape(n, n, n), 0, axis)
    return u


def run_bt(klass: str = "S", mu: float = 0.1, steps: int | None = None) -> AdiResult:
    """Run the BT-structure ADI solver and verify against the exact decay.

    ``steps`` defaults to ``min(niter, 20)`` — the decay check is per
    step, so a truncated run verifies the same arithmetic at class W+.
    """
    prob = problem("BT", klass)
    n = prob.size[0]
    steps = min(prob.niter, 20) if steps is None else steps
    h = 1.0 / (n + 1)
    x = np.arange(1, n + 1) * h
    s = np.sin(np.pi * x)
    u = s[:, None, None] * s[None, :, None] * s[None, None, :]
    mu_h2 = mu  # mu expressed in units of h^2 (mu * dt / h^2 collapsed)
    # Eigenvalue of -d^2 (scaled by h^2) for the sine mode.
    lam = 2.0 - 2.0 * np.cos(np.pi * h)
    decay = 1.0 / (1.0 + mu_h2 * lam) ** 3
    for _ in range(steps):
        u = adi_step_tridiagonal(u, mu_h2)
    expected = decay**steps
    center = u[n // 2, n // 2, n // 2] / (
        s[n // 2] ** 3
    )
    err = abs(center - expected) / expected
    return AdiResult(prob, float(err), total_ops(prob), bool(err < 1e-10), steps)
