"""NPB LU mini-kernel: SSOR relaxation solver.

NPB LU solves the same equations as BT/SP but by symmetric successive
over-relaxation: a lower-triangular wavefront sweep followed by an
upper-triangular one each iteration.  The mini-kernel keeps the SSOR
iteration structure on the scalar model problem

.. math:: (I - \\mu \\nabla^2)\\, u = f

with red-black coloring standing in for the wavefront (both expose the
same per-sweep data dependence pattern; red-black vectorizes in
NumPy).  Verification compares the converged iterate against a direct
sparse solve of the identical system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .classes import NpbProblem, problem, total_ops

__all__ = ["LuResult", "ssor_solve", "run_lu"]


@dataclass(frozen=True)
class LuResult:
    problem: NpbProblem
    iterations: int
    final_residual: float
    direct_error: float
    ops: float
    verified: bool


def _color_masks(n: int) -> tuple[np.ndarray, np.ndarray]:
    idx = np.add.outer(np.add.outer(np.arange(n), np.arange(n)), np.arange(n))
    red = (idx % 2) == 0
    return red, ~red


def _apply(u: np.ndarray, mu_h2: float) -> np.ndarray:
    """(I - mu del^2) with Dirichlet-0 walls, mu in units of h^2."""
    out = (1.0 + 6.0 * mu_h2) * u
    for axis in range(3):
        lo = np.roll(u, 1, axis)
        hi = np.roll(u, -1, axis)
        # Dirichlet: zero the wrapped entries.
        sl = [slice(None)] * 3
        sl[axis] = 0
        lo[tuple(sl)] = 0.0
        sl[axis] = -1
        hi[tuple(sl)] = 0.0
        out -= mu_h2 * (lo + hi)
    return out


def ssor_solve(
    f: np.ndarray, mu_h2: float, omega: float = 1.2, tol: float = 1e-10, max_iters: int = 500
) -> tuple[np.ndarray, int, float]:
    """SSOR iteration (red-black forward + backward sweeps)."""
    if not 0 < omega < 2:
        raise ValueError("omega must be in (0, 2) for SSOR convergence")
    n = f.shape[0]
    red, black = _color_masks(n)
    diag = 1.0 + 6.0 * mu_h2
    u = np.zeros_like(f)
    f_norm = float(np.linalg.norm(f)) or 1.0
    for it in range(1, max_iters + 1):
        for first, second in ((red, black), (black, red)):  # forward, backward
            for mask in (first, second):
                r = f - _apply(u, mu_h2)
                u[mask] += omega * r[mask] / diag
        resid = float(np.linalg.norm(f - _apply(u, mu_h2))) / f_norm
        if resid < tol:
            return u, it, resid
    return u, max_iters, resid


def _direct_solve(f: np.ndarray, mu_h2: float) -> np.ndarray:
    """Sparse direct reference solution of the same operator."""
    n = f.shape[0]
    eye = sp.identity(n, format="csr")
    band = sp.diags([-1.0, 0.0, -1.0], [-1, 0, 1], shape=(n, n), format="csr")
    lap = (
        sp.kron(sp.kron(band, eye), eye)
        + sp.kron(sp.kron(eye, band), eye)
        + sp.kron(sp.kron(eye, eye), band)
    )
    a = sp.identity(n**3, format="csr") * (1.0 + 6.0 * mu_h2) + mu_h2 * lap
    return spla.spsolve(a.tocsc(), f.ravel()).reshape(f.shape)


def run_lu(klass: str = "S", mu: float = 0.5, seed: int = 314159) -> LuResult:
    """Run the LU-structure SSOR solver and verify against a direct solve.

    Class S (12^3) keeps the reference sparse solve cheap; larger
    classes skip the direct comparison and verify by residual alone.
    """
    prob = problem("LU", klass)
    n = prob.size[0]
    rng = np.random.default_rng(seed)
    f = rng.standard_normal((n, n, n))
    u, iters, resid = ssor_solve(f, mu)
    if n <= 16:
        ref = _direct_solve(f, mu)
        direct_err = float(np.abs(u - ref).max() / np.abs(ref).max())
    else:
        direct_err = float("nan")
    verified = bool(resid < 1e-9 and (np.isnan(direct_err) or direct_err < 1e-6))
    return LuResult(prob, iters, resid, direct_err, total_ops(prob), verified)
