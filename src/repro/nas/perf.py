"""Parallel NPB performance model (Tables 3-4, Figures 4-5).

The model splits each benchmark's time into compute and communication::

    T(P, class) = ops / (P * r1 * cache_factor)  +  k_comm * t_comm(P, class)

* ``r1`` — single-processor rate, anchored by the Table 2 normal column
  (e.g. LU 404.3 Mop/s).
* ``cache_factor`` — a working-set model of the L2 effect: the ADI /
  wavefront codes (BT, SP, LU) work plane-by-plane, so their active set
  is a *face* of the local subgrid; when that face drops under the
  P4's 512 KB L2 the rate rises.  This is precisely the paper's
  explanation for LU's super-linear bump in Figure 5 ("the problem
  [is] divided into enough pieces that it fits into L2").
* ``t_comm`` — analytic per-benchmark message counts and volumes
  (faces for BT/SP, pipelined wavefronts for LU, halos+allreduce for
  CG, transpose all-to-all for FT, key exchange for IS, V-cycle halos
  for MG), costed with a latency/bandwidth network model.
* ``k_comm`` — one constant per benchmark, calibrated from the Table 3
  (64-processor, class C) measurement.  Everything else — Table 4,
  both scaling figures, and the class-B Loki comparison in Section 5 —
  is prediction.

Two calibrated instances ship: the Space Simulator (LAM over gigabit)
and ASCI Q (Quadrics), each fit to its own Table 3 column.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..machine.node import NodeSpec, SPACE_SIMULATOR_NODE
from ..machine.specs import ASCI_Q_NODE
from .classes import NpbProblem, problem, total_ops

__all__ = [
    "NetworkParams",
    "SS_NETWORK",
    "Q_NETWORK",
    "SS_SERIAL_MOPS",
    "SS_MEASURED_C64",
    "Q_MEASURED_C64",
    "SS_MEASURED_D256",
    "Q_MEASURED_D256",
    "NpbPerfModel",
    "space_simulator_npb_model",
    "asci_q_npb_model",
]

WORD = 8.0  # bytes


@dataclass(frozen=True)
class NetworkParams:
    """Latency/bandwidth network model, with an optional trunk bottleneck.

    The Space Simulator's fabric is two chassis joined by an 8 Gbit/s
    trunk; jobs larger than the first chassis (224 ports) push part of
    every balanced exchange across it.  ``effective_bytes_s`` blends
    the intra-switch rate with each crossing flow's trunk share
    (harmonic mean — the phases serialize), reproducing the paper's
    ">about 256 processors" scaling warning.
    """

    latency_s: float
    bytes_s: float
    trunk_bytes_s: float | None = None
    first_switch_ports: int = 224

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.bytes_s <= 0:
            raise ValueError("invalid network parameters")
        if self.trunk_bytes_s is not None and self.trunk_bytes_s <= 0:
            raise ValueError("trunk_bytes_s must be positive")

    def effective_bytes_s(self, p: int) -> float:
        if self.trunk_bytes_s is None or p <= self.first_switch_ports:
            return self.bytes_s
        a = self.first_switch_ports
        b = p - a
        # Fraction of uniform-random pairs crossing the trunk, and the
        # per-flow trunk share when they all push at once.
        frac = 2.0 * a * b / (p * p)
        crossing_flows = max(frac * p, 1.0)
        trunk_share = self.trunk_bytes_s / crossing_flows
        inv = (1.0 - frac) / self.bytes_s + frac / min(self.bytes_s, trunk_share)
        return 1.0 / inv


#: LAM over the gigabit fabric (Fig 2 calibration); 8 Gbit/s trunk.
SS_NETWORK = NetworkParams(latency_s=83e-6, bytes_s=90e6, trunk_bytes_s=1e9)
#: Quadrics QsNet on ASCI Q (full fat tree, no trunk bottleneck).
Q_NETWORK = NetworkParams(latency_s=5e-6, bytes_s=250e6)

#: Table 2 normal column: single-processor Mop/s on the SS node.
SS_SERIAL_MOPS = {
    "BT": 321.2, "SP": 216.5, "LU": 404.3, "MG": 385.1,
    "CG": 313.1, "FT": 351.0, "IS": 27.2, "EP": 12.0,
}

#: Table 3: 64-processor class C totals (Mop/s).
SS_MEASURED_C64 = {"BT": 17032.0, "SP": 7822.0, "LU": 27942.0, "CG": 3291.0, "FT": 9860.0, "IS": 232.0}
Q_MEASURED_C64 = {"BT": 22540.0, "SP": 17775.0, "LU": 40916.0, "CG": 4129.0, "FT": 7275.0, "IS": 286.0}

#: Table 4: 256-processor class D totals (Mop/s).
SS_MEASURED_D256 = {"BT": 63044.0, "SP": 29348.0, "LU": 81472.0, "CG": 4913.0, "FT": 21995.0}
Q_MEASURED_D256 = {"BT": 80418.0, "SP": 55327.0, "LU": 135650.0, "CG": 10149.0, "FT": 30100.0}

#: Bytes of state per grid point (used by the working-set model).
_BYTES_PER_POINT = {"BT": 320.0, "SP": 280.0, "LU": 320.0, "MG": 64.0, "FT": 16.0, "CG": 24.0, "IS": 8.0, "EP": 0.0}

#: Peak cache boost when the active working set fits in L2.
_L2_BOOST = {"BT": 1.25, "SP": 1.20, "LU": 1.40, "MG": 1.05, "CG": 1.05, "FT": 1.05, "IS": 1.0, "EP": 1.0}

#: Benchmarks whose active set is a plane of the local grid (ADI /
#: wavefront sweeps), not its volume.
_PLANE_WORKING_SET = {"BT", "SP", "LU"}


def _comm_per_iteration(prob: NpbProblem, p: int) -> tuple[float, float]:
    """(bytes, messages) per processor per iteration, before k_comm."""
    b = prob.benchmark
    n = prob.size[0]
    if b == "BT":
        return 6.0 * (n * n / p ** (2.0 / 3.0)) * 5.0 * WORD, 6.0
    if b == "SP":
        return 12.0 * (n * n / p ** (2.0 / 3.0)) * 5.0 * WORD, 12.0
    if b == "LU":
        return 4.0 * (n * n / math.sqrt(p)) * 5.0 * WORD, 2.0 * n
    if b == "MG":
        return 9.0 * (n / p ** (1.0 / 3.0)) ** 2 * WORD, 12.0 * max(math.log2(n), 1.0)
    if b == "CG":
        na = prob.size[0]
        return 25.0 * 2.0 * (na / math.sqrt(p)) * WORD, 25.0 * 3.0 * max(math.log2(p), 1.0)
    if b == "FT":
        ntotal = prob.gridpoints
        return 2.0 * (ntotal / p) * 2.0 * WORD, float(p)
    if b == "IS":
        nkeys = prob.gridpoints
        return (nkeys / p) * 4.0, float(p) + max(math.log2(p), 1.0)
    if b == "EP":
        return 0.0, max(math.log2(p), 1.0)
    raise ValueError(b)


@dataclass
class NpbPerfModel:
    """Calibrated NPB model for one machine."""

    name: str
    node: NodeSpec
    network: NetworkParams
    r1: dict[str, float]
    k_comm: dict[str, float] = field(default_factory=dict)

    def cache_factor(self, prob: NpbProblem, p: int) -> float:
        b = prob.benchmark
        boost = _L2_BOOST.get(b, 1.0)
        if boost == 1.0 or b in ("CG", "IS", "EP"):
            return 1.0
        local_points = prob.gridpoints / p
        if b in _PLANE_WORKING_SET:
            working = local_points ** (2.0 / 3.0) * _BYTES_PER_POINT[b]
        else:
            working = local_points * _BYTES_PER_POINT[b]
        l2 = self.node.l2_kb * 1024.0
        if working <= l2:
            return boost
        if working >= 8.0 * l2:
            return 1.0
        # Log-linear roll-off between 1x and 8x the cache size.
        frac = 1.0 - math.log(working / l2) / math.log(8.0)
        return 1.0 + (boost - 1.0) * frac

    def compute_time(self, prob: NpbProblem, p: int) -> float:
        rate = self.r1[prob.benchmark] * 1e6 * self.cache_factor(prob, p)
        return total_ops(prob) / (p * rate)

    def comm_time(self, prob: NpbProblem, p: int) -> float:
        if p == 1:
            return 0.0
        vol, msgs = _comm_per_iteration(prob, p)
        k = self.k_comm.get(prob.benchmark, 1.0)
        per_iter = msgs * self.network.latency_s + vol / self.network.effective_bytes_s(p)
        return k * prob.niter * per_iter

    def time(self, benchmark: str, klass: str, p: int) -> float:
        prob = problem(benchmark, klass)
        return self.compute_time(prob, p) + self.comm_time(prob, p)

    def mops(self, benchmark: str, klass: str, p: int) -> float:
        """Total Mop/s, the number the NPB (and the paper) report."""
        prob = problem(benchmark, klass)
        return total_ops(prob) / self.time(benchmark, klass, p) / 1e6

    def mops_per_proc(self, benchmark: str, klass: str, p: int) -> float:
        return self.mops(benchmark, klass, p) / p

    def calibrate(self, measured: dict[str, float], klass: str, p: int) -> "NpbPerfModel":
        """Fit ``k_comm`` per benchmark so the model hits ``measured``.

        Where the measurement is *faster* than the pure-compute bound
        (model error in r1 or cache factor), ``k_comm`` clamps at 0 and
        r1 is rescaled to absorb the residual, keeping the model exact
        at the calibration point.
        """
        for bench, target in measured.items():
            prob = problem(bench, klass)
            t_target = total_ops(prob) / (target * 1e6)
            t_comp = self.compute_time(prob, p)
            vol, msgs = _comm_per_iteration(prob, p)
            unit = prob.niter * (
                msgs * self.network.latency_s + vol / self.network.effective_bytes_s(p)
            )
            if t_target > t_comp and unit > 0:
                self.k_comm[bench] = (t_target - t_comp) / unit
            else:
                self.k_comm[bench] = 0.0
                scale = t_comp / t_target
                self.r1[bench] = self.r1[bench] * scale
        return self


def space_simulator_npb_model() -> NpbPerfModel:
    """SS model calibrated on the Table 3 (class C, 64 procs) column."""
    model = NpbPerfModel("Space Simulator", SPACE_SIMULATOR_NODE, SS_NETWORK, dict(SS_SERIAL_MOPS))
    return model.calibrate(SS_MEASURED_C64, "C", 64)


def asci_q_npb_model() -> NpbPerfModel:
    """ASCI Q model: r1 scaled from the node specs, then calibrated.

    Q's serial rates are estimated by scaling the SS rates with each
    benchmark's memory-boundedness and the two nodes' bandwidth/compute
    ratios, then ``k_comm`` is fit to the Table 3 Q column.
    """
    bw_ratio = ASCI_Q_NODE.stream_mbytes_s / SPACE_SIMULATOR_NODE.stream_mbytes_s
    peak_ratio = ASCI_Q_NODE.peak_mflops / SPACE_SIMULATOR_NODE.peak_mflops
    from ..machine.clocking import table2_profiles

    profiles = table2_profiles()
    r1 = {}
    for bench, rate in SS_SERIAL_MOPS.items():
        m = profiles[bench].memory_boundedness if bench in profiles else 0.5
        r1[bench] = rate * (m * bw_ratio + (1.0 - m) * peak_ratio)
    model = NpbPerfModel("ASCI Q", ASCI_Q_NODE, Q_NETWORK, r1)
    return model.calibrate(Q_MEASURED_C64, "C", 64)
