"""NAS Parallel Benchmark problem classes and operation accounting.

The NPB define problem classes S, W, A, B, C, D per benchmark; Mop/s
figures (Tables 2-4, Figures 4-5) are total operations divided by wall
time.  This module records the standard class sizes and provides
analytic operation counts.  Per-gridpoint flop constants for the three
pseudo-applications are derived from the published NPB reference
operation counts (e.g. BT class A = 168.3 Gop over 64^3 x 200
iterations); the kernels' counts follow their textbook formulas.  Our
mini-kernels execute classes S/W for real; classes A-D feed the
performance model only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["NpbProblem", "CLASSES", "problem", "total_ops", "BENCHMARKS"]

BENCHMARKS = ("BT", "SP", "LU", "MG", "CG", "FT", "IS", "EP")


@dataclass(frozen=True)
class NpbProblem:
    """One (benchmark, class) instance."""

    benchmark: str
    klass: str
    size: tuple
    niter: int

    @property
    def gridpoints(self) -> float:
        if self.benchmark in ("BT", "SP", "LU", "MG"):
            return float(self.size[0]) ** 3
        if self.benchmark == "FT":
            nx, ny, nz = self.size
            return float(nx) * ny * nz
        if self.benchmark == "CG":
            return float(self.size[0])  # matrix order
        if self.benchmark in ("IS", "EP"):
            return float(2 ** self.size[0])
        raise ValueError(self.benchmark)


#: (benchmark, class) -> (size tuple, iterations).
_SIZES: dict[tuple[str, str], tuple[tuple, int]] = {
    # BT: cubic grid, 200ish iterations.
    ("BT", "S"): ((12,), 60), ("BT", "W"): ((24,), 200),
    ("BT", "A"): ((64,), 200), ("BT", "B"): ((102,), 200),
    ("BT", "C"): ((162,), 200), ("BT", "D"): ((408,), 250),
    # SP
    ("SP", "S"): ((12,), 100), ("SP", "W"): ((36,), 400),
    ("SP", "A"): ((64,), 400), ("SP", "B"): ((102,), 400),
    ("SP", "C"): ((162,), 400), ("SP", "D"): ((408,), 500),
    # LU
    ("LU", "S"): ((12,), 50), ("LU", "W"): ((33,), 300),
    ("LU", "A"): ((64,), 250), ("LU", "B"): ((102,), 250),
    ("LU", "C"): ((162,), 250), ("LU", "D"): ((408,), 300),
    # MG
    ("MG", "S"): ((32,), 4), ("MG", "W"): ((128,), 4),
    ("MG", "A"): ((256,), 4), ("MG", "B"): ((256,), 20),
    ("MG", "C"): ((512,), 20), ("MG", "D"): ((1024,), 50),
    # CG: (order, nonzeros/row, shift)
    ("CG", "S"): ((1400, 7, 10.0), 15), ("CG", "W"): ((7000, 8, 12.0), 15),
    ("CG", "A"): ((14000, 11, 20.0), 15), ("CG", "B"): ((75000, 13, 60.0), 75),
    ("CG", "C"): ((150000, 15, 110.0), 75), ("CG", "D"): ((1500000, 21, 500.0), 100),
    # FT: (nx, ny, nz)
    ("FT", "S"): ((64, 64, 64), 6), ("FT", "W"): ((128, 128, 32), 6),
    ("FT", "A"): ((256, 256, 128), 6), ("FT", "B"): ((512, 256, 256), 20),
    ("FT", "C"): ((512, 512, 512), 20), ("FT", "D"): ((2048, 1024, 1024), 25),
    # IS: (log2 total keys, log2 max key)
    ("IS", "S"): ((16, 11), 10), ("IS", "W"): ((20, 16), 10),
    ("IS", "A"): ((23, 19), 10), ("IS", "B"): ((25, 21), 10),
    ("IS", "C"): ((27, 23), 10), ("IS", "D"): ((31, 27), 10),
    # EP: (log2 pairs,)
    ("EP", "S"): ((24,), 1), ("EP", "W"): ((25,), 1),
    ("EP", "A"): ((28,), 1), ("EP", "B"): ((30,), 1),
    ("EP", "C"): ((32,), 1), ("EP", "D"): ((36,), 1),
}

CLASSES = ("S", "W", "A", "B", "C", "D")

#: Flops per gridpoint per iteration for the pseudo-applications,
#: back-derived from the NPB reference operation counts at class A.
_OPS_PER_POINT_ITER = {"BT": 3210.0, "SP": 973.0, "LU": 1820.0, "MG": 54.0}


def problem(benchmark: str, klass: str) -> NpbProblem:
    benchmark = benchmark.upper()
    try:
        size, niter = _SIZES[(benchmark, klass)]
    except KeyError:
        raise ValueError(f"unknown NPB problem {benchmark} class {klass}") from None
    return NpbProblem(benchmark, klass, size, niter)


def total_ops(prob: NpbProblem) -> float:
    """Total operation count used for Mop/s accounting."""
    b = prob.benchmark
    if b in _OPS_PER_POINT_ITER:
        return _OPS_PER_POINT_ITER[b] * prob.gridpoints * prob.niter
    if b == "CG":
        na, nonzer, _shift = prob.size
        nnz = na * (nonzer + 1) * (nonzer + 1)  # NPB's nonzero estimate
        # 25 inner CG iterations per outer: one SpMV (2 nnz) plus five
        # vector ops (10 na) each.
        return prob.niter * 25.0 * (2.0 * nnz + 10.0 * na)
    if b == "FT":
        n = prob.gridpoints
        # One forward 3-D FFT at startup, one inverse per iteration,
        # plus the 6-flop evolve per point per iteration.
        fft = 5.0 * n * math.log2(n)
        return fft + prob.niter * (fft + 6.0 * n)
    if b == "IS":
        # Integer ops: ~3 passes over the keys per ranking iteration.
        return prob.niter * 3.0 * prob.gridpoints
    if b == "EP":
        # ~90 flops per pair attempt (rejection + polar transform).
        return 90.0 * prob.gridpoints
    raise ValueError(b)
