"""NAS Parallel Benchmarks: real mini-kernels + calibrated perf model.

Eight benchmarks (BT, SP, LU, MG, CG, FT, IS, EP) with genuinely
executing, verifying mini-kernels at laptop classes, NPB-standard class
definitions with operation accounting, and the parallel performance
model that regenerates Tables 3-4 and the scaling Figures 4-5.
"""

from .bt import AdiResult, adi_step_tridiagonal, run_bt
from .cg import CgResult, cg_solve, make_matrix, run_cg
from .classes import BENCHMARKS, CLASSES, NpbProblem, problem, total_ops
from .ep import EpResult, run_ep
from .ft import FtResult, run_ft
from .harness import RUNNERS, NpbReport, run_benchmark, run_suite
from .is_ import IsResult, rank_keys, run_is
from .lu import LuResult, run_lu, ssor_solve
from .mg import MgResult, run_mg, v_cycle
from .perf import (
    Q_MEASURED_C64,
    Q_MEASURED_D256,
    Q_NETWORK,
    SS_MEASURED_C64,
    SS_MEASURED_D256,
    SS_NETWORK,
    SS_SERIAL_MOPS,
    NetworkParams,
    NpbPerfModel,
    asci_q_npb_model,
    space_simulator_npb_model,
)
from .sp import adi_step_pentadiagonal, run_sp

__all__ = [
    "BENCHMARKS",
    "CLASSES",
    "NpbProblem",
    "problem",
    "total_ops",
    "run_bt",
    "run_sp",
    "run_lu",
    "run_mg",
    "run_cg",
    "run_ft",
    "run_is",
    "run_ep",
    "AdiResult",
    "CgResult",
    "LuResult",
    "MgResult",
    "FtResult",
    "IsResult",
    "EpResult",
    "adi_step_tridiagonal",
    "adi_step_pentadiagonal",
    "ssor_solve",
    "v_cycle",
    "cg_solve",
    "make_matrix",
    "rank_keys",
    "NetworkParams",
    "NpbPerfModel",
    "space_simulator_npb_model",
    "asci_q_npb_model",
    "SS_NETWORK",
    "Q_NETWORK",
    "SS_SERIAL_MOPS",
    "SS_MEASURED_C64",
    "Q_MEASURED_C64",
    "SS_MEASURED_D256",
    "Q_MEASURED_D256",
    "NpbReport",
    "run_benchmark",
    "run_suite",
    "RUNNERS",
]
