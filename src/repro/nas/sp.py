"""NPB SP mini-kernel: scalar-pentadiagonal ADI solver.

NPB SP differs from BT in that its approximate factorization
diagonalizes the 5x5 blocks, leaving *scalar pentadiagonal* systems
along each direction.  The mini-kernel mirrors that: the same factored
diffusion model problem as :mod:`repro.nas.bt`, but discretized with
the 4th-order five-point second-derivative stencil, so each sweep is a
pentadiagonal banded solve.  Verified against the analytically exact
per-step damping of a sine mode under the 4th-order operator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import solve_banded

from .classes import NpbProblem, problem, total_ops
from .bt import AdiResult

__all__ = ["adi_step_pentadiagonal", "run_sp"]


def _penta_banded(n: int, mu_h2: float) -> np.ndarray:
    """Banded (I - mu d^2) with the 4th-order stencil on n points."""
    ab = np.zeros((5, n))
    ab[0, 2:] = mu_h2 / 12.0          # +2 off-diagonal: -(-1/12)
    ab[1, 1:] = -mu_h2 * 16.0 / 12.0  # +1
    ab[2, :] = 1.0 + mu_h2 * 30.0 / 12.0
    ab[3, :-1] = -mu_h2 * 16.0 / 12.0
    ab[4, :-2] = mu_h2 / 12.0
    return ab


def adi_step_pentadiagonal(u: np.ndarray, mu_h2: float) -> np.ndarray:
    """One factored step: pentadiagonal sweeps along x, y, z."""
    n = u.shape[0]
    ab = _penta_banded(n, mu_h2)
    for axis in range(3):
        moved = np.moveaxis(u, axis, 0).reshape(n, -1)
        solved = solve_banded((2, 2), ab, moved)
        u = np.moveaxis(solved.reshape(n, n, n), 0, axis)
    return u


def run_sp(klass: str = "S", mu: float = 0.1, steps: int | None = None) -> AdiResult:
    """Run the SP-structure solver; see :func:`repro.nas.bt.run_bt`.

    The sine-mode decay test uses the 4th-order stencil's symbol
    ``lam = (30 - 32 cos(pi h) + 2 cos(2 pi h)) / 12``.
    """
    prob = problem("SP", klass)
    n = prob.size[0]
    steps = min(prob.niter, 20) if steps is None else steps
    h = 1.0 / (n + 1)
    x = np.arange(1, n + 1) * h
    s = np.sin(np.pi * x)
    u = s[:, None, None] * s[None, :, None] * s[None, None, :]
    lam = (30.0 - 32.0 * np.cos(np.pi * h) + 2.0 * np.cos(2.0 * np.pi * h)) / 12.0
    decay = 1.0 / (1.0 + mu * lam) ** 3
    for _ in range(steps):
        u = adi_step_pentadiagonal(u, mu)
    expected = decay**steps
    center = u[n // 2, n // 2, n // 2] / (s[n // 2] ** 3)
    err = abs(center - expected) / expected
    # The 4th-order stencil is not exactly diagonalized by the sine
    # mode near Dirichlet walls (its 5-point foot crosses the boundary),
    # so the tolerance is looser than BT's.
    return AdiResult(prob, float(err), total_ops(prob), bool(err < 5e-3), steps)
