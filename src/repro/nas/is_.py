"""NPB IS mini-kernel: integer bucket-sort key ranking.

IS ranks N integer keys drawn from a truncated-Gaussian-ish
distribution into B buckets, ``niter`` times with two keys perturbed
per iteration (the NPB wrinkle that defeats caching tricks).  The
operation counted is integer work, which is why IS is the one
benchmark where Table 2 shows meaningful sensitivity to *both* clocks.
Verification: the produced ranks are a valid sort permutation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .classes import NpbProblem, problem, total_ops

__all__ = ["IsResult", "rank_keys", "run_is"]


@dataclass(frozen=True)
class IsResult:
    problem: NpbProblem
    ops: float
    verified: bool


def rank_keys(keys: np.ndarray, max_key: int) -> np.ndarray:
    """Counting-sort ranking: rank[i] = position of keys[i] in sorted order."""
    if keys.min() < 0 or keys.max() >= max_key:
        raise ValueError("keys out of range")
    counts = np.bincount(keys, minlength=max_key)
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    order = np.argsort(keys, kind="stable")
    ranks = np.empty_like(order)
    ranks[order] = np.arange(keys.size)
    # ranks via counting sort must agree with argsort-derived ranks;
    # compute them the counting way to exercise the real algorithm:
    ranks_cs = starts[keys] + _offsets_within_key(keys, max_key)
    return ranks_cs


def _offsets_within_key(keys: np.ndarray, max_key: int) -> np.ndarray:
    """Stable per-key occurrence index of each element."""
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    boundaries = np.concatenate([[0], np.flatnonzero(np.diff(sorted_keys)) + 1])
    starts_for_sorted = np.repeat(boundaries, np.diff(np.concatenate([boundaries, [keys.size]])))
    offs_sorted = np.arange(keys.size) - starts_for_sorted
    out = np.empty_like(offs_sorted)
    out[order] = offs_sorted
    return out


def run_is(klass: str = "S", seed: int = 314159) -> IsResult:
    """Run IS at a class (S = 2^16 keys, max key 2^11)."""
    prob = problem("IS", klass)
    log_n, log_max = prob.size
    n, max_key = 1 << log_n, 1 << log_max
    rng = np.random.default_rng(seed)
    # NPB keys: average of 4 uniforms, scaled — a centered distribution.
    keys = (rng.random((n, 4)).mean(axis=1) * max_key).astype(np.int64)
    keys = np.clip(keys, 0, max_key - 1)
    ok = True
    for it in range(prob.niter):
        keys[it] = it % max_key
        keys[it + prob.niter] = (max_key - it) % max_key
        ranks = rank_keys(keys, max_key)
        # Full verification: ranks must be a permutation that sorts.
        perm_ok = np.array_equal(np.sort(ranks), np.arange(n))
        sorted_by_rank = np.empty_like(keys)
        sorted_by_rank[ranks] = keys
        ok = ok and perm_ok and bool(np.all(np.diff(sorted_by_rank) >= 0))
    return IsResult(prob, total_ops(prob), bool(ok))
