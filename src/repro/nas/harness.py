"""Timed execution harness for the NPB mini-kernels.

Runs a benchmark class for real, times it, and reports measured Mop/s
with the NPB operation accounting — the same "class X, N iterations,
Mop/s total, verification successful" report the Fortran originals
print.  This grounds the modeled Tables 3-4 rates in executed
arithmetic on whatever host runs the reproduction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from ..obs import NULL, Recorder
from .bt import run_bt
from .cg import run_cg
from .classes import problem, total_ops
from .ep import run_ep
from .ft import run_ft
from .is_ import run_is
from .lu import run_lu
from .mg import run_mg
from .sp import run_sp

__all__ = ["NpbReport", "run_benchmark", "run_suite", "RUNNERS", "REDUCED_FIDELITY"]

RUNNERS: dict[str, Callable] = {
    "BT": run_bt,
    "SP": run_sp,
    "LU": run_lu,
    "MG": run_mg,
    "CG": run_cg,
    "FT": run_ft,
    "IS": run_is,
    "EP": run_ep,
}


#: Benchmarks whose mini-kernels are scalar reductions of the 5x5-block
#: originals: their NPB-convention op counts (used for Mop/s) charge the
#: full original arithmetic, so host Mop/s overstates executed flops.
REDUCED_FIDELITY = frozenset({"BT", "SP", "LU"})


@dataclass(frozen=True)
class NpbReport:
    """One timed benchmark execution."""

    benchmark: str
    klass: str
    seconds: float
    ops: float
    verified: bool

    @property
    def reduced_fidelity(self) -> bool:
        return self.benchmark in REDUCED_FIDELITY

    @property
    def mops(self) -> float:
        """Measured Mop/s on this host (NPB accounting)."""
        if self.seconds <= 0:
            return 0.0
        return self.ops / self.seconds / 1e6

    def summary(self) -> str:
        prob = problem(self.benchmark, self.klass)
        status = "SUCCESSFUL" if self.verified else "FAILED"
        note = " [reduced-fidelity kernel]" if self.reduced_fidelity else ""
        return (
            f"{self.benchmark} class {self.klass}: size {prob.size}, "
            f"{prob.niter} iterations, {self.seconds:.3f} s, "
            f"{self.mops:.1f} Mop/s (NPB accounting), verification {status}{note}"
        )


def run_benchmark(
    benchmark: str, klass: str = "S", observer: Recorder | None = None
) -> NpbReport:
    """Execute one mini-kernel and time it.

    With ``observer``, the execution is recorded as a wall-clock span
    (``npb.<BENCH>.<CLASS>``, cat ``bench``) plus ``npb.ops`` /
    ``npb.verified`` counters, comparable across the whole suite.
    """
    obs = observer if observer is not None else NULL
    benchmark = benchmark.upper()
    if benchmark not in RUNNERS:
        raise ValueError(f"unknown benchmark {benchmark!r}; choose from {sorted(RUNNERS)}")
    prob = problem(benchmark, klass)  # validates the class too
    with obs.span(f"npb.{benchmark}.{klass}", cat="bench"):
        t0 = time.perf_counter()
        result = RUNNERS[benchmark](klass)
        dt = time.perf_counter() - t0
    # The ADI kernels truncate iterations at big classes (the decay
    # check is per-step); charge only the steps actually executed.
    ops = total_ops(prob)
    steps_run = getattr(result, "steps_run", 0)
    if steps_run and steps_run != prob.niter:
        ops *= steps_run / prob.niter
    obs.count("npb.ops", ops)
    obs.count("npb.verified", int(bool(result.verified)))
    return NpbReport(benchmark, klass, dt, ops, bool(result.verified))


def run_suite(
    klass: str = "S",
    benchmarks: tuple[str, ...] | None = None,
    observer: Recorder | None = None,
) -> list[NpbReport]:
    """Run several benchmarks at one class; returns their reports."""
    names = tuple(RUNNERS) if benchmarks is None else tuple(b.upper() for b in benchmarks)
    return [run_benchmark(b, klass, observer=observer) for b in names]
