"""NPB FT mini-kernel: 3-D FFT solution of a diffusion equation.

NPB FT evolves ``du/dt = alpha del^2 u`` spectrally: FFT the random
initial state once, multiply by ``exp(-4 pi^2 alpha t |k|^2)`` each
iteration, inverse-FFT, and checksum.  We use NumPy's FFT (the original
uses its own radix kernels; the arithmetic is identical) and verify the
physics: diffusion strictly damps every mode, so the field norm must
decrease monotonically in t, and checksums must be finite and stable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .classes import NpbProblem, problem, total_ops

__all__ = ["FtResult", "run_ft"]

ALPHA = 1e-6


@dataclass(frozen=True)
class FtResult:
    problem: NpbProblem
    checksums: list[complex]
    norms: list[float]
    ops: float
    verified: bool


def _k2(shape: tuple[int, int, int]) -> np.ndarray:
    axes = [np.fft.fftfreq(n) * n for n in shape]
    kx, ky, kz = np.meshgrid(*axes, indexing="ij")
    return kx**2 + ky**2 + kz**2


def run_ft(klass: str = "S", seed: int = 314159) -> FtResult:
    """Run FT at a class (S = 64^3 x 6 iterations)."""
    prob = problem("FT", klass)
    shape = prob.size
    rng = np.random.default_rng(seed)
    u0 = rng.random(shape) + 1j * rng.random(shape)
    u_hat = np.fft.fftn(u0)
    k2 = _k2(shape)
    checksums: list[complex] = []
    norms: list[float] = []
    n_total = int(np.prod(shape))
    idx = (np.arange(1024) * 5 + 3) % n_total  # fixed checksum subset
    for it in range(1, prob.niter + 1):
        w = u_hat * np.exp(-4.0 * np.pi**2 * ALPHA * it * k2)
        u = np.fft.ifftn(w)
        checksums.append(complex(u.flat[idx].sum()))
        norms.append(float(np.linalg.norm(u)))
    monotone = all(b <= a * (1 + 1e-12) for a, b in zip(norms, norms[1:]))
    finite = all(np.isfinite([c.real for c in checksums]))
    verified = bool(monotone and finite)
    return FtResult(prob, checksums, norms, total_ops(prob), verified)
