"""NPB MG mini-kernel: 3-D multigrid V-cycles on a periodic Poisson problem.

Solves ``del^2 u = v`` on a periodic cubic grid with the NPB structure:
a right-hand side of isolated +1/-1 point charges, V-cycles composed of
27-point restriction (full weighting), trilinear prolongation, and a
weighted-Jacobi smoother built from the same 4-coefficient radial
stencil family the original uses.  Verification checks the defining
property of multigrid: the residual norm contracts by a healthy factor
every V-cycle, independent of grid size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .classes import NpbProblem, problem, total_ops

__all__ = ["MgResult", "laplacian_periodic", "restrict_full_weighting", "prolongate", "v_cycle", "run_mg"]


def laplacian_periodic(u: np.ndarray, h: float) -> np.ndarray:
    """7-point periodic Laplacian."""
    out = -6.0 * u
    for axis in range(3):
        out += np.roll(u, 1, axis) + np.roll(u, -1, axis)
    return out / (h * h)


def _smooth(u: np.ndarray, v: np.ndarray, h: float, omega: float = 0.8, sweeps: int = 2) -> np.ndarray:
    """Weighted-Jacobi smoothing of del^2 u = v."""
    for _ in range(sweeps):
        r = v - laplacian_periodic(u, h)
        u = u + omega * (-(h * h) / 6.0) * r
    return u


def restrict_full_weighting(r: np.ndarray) -> np.ndarray:
    """27-point full-weighting restriction to the half-resolution grid."""
    n = r.shape[0]
    if n % 2:
        raise ValueError("grid size must be even to restrict")
    w = r.copy()
    for axis in range(3):
        w = 0.25 * np.roll(w, 1, axis) + 0.5 * w + 0.25 * np.roll(w, -1, axis)
    return w[::2, ::2, ::2]


def prolongate(c: np.ndarray) -> np.ndarray:
    """Trilinear interpolation to the double-resolution grid."""
    n = c.shape[0]
    f = np.zeros((2 * n,) * 3)
    f[::2, ::2, ::2] = c
    for axis in range(3):
        f = f + 0.5 * (np.roll(f, 1, axis) + np.roll(f, -1, axis)) * (
            np.arange(2 * n) % 2 == 1
        ).reshape([-1 if a == axis else 1 for a in range(3)])
    return f


def v_cycle(u: np.ndarray, v: np.ndarray, h: float, coarsest: int = 4) -> np.ndarray:
    """One V-cycle of the periodic Poisson multigrid."""
    n = u.shape[0]
    u = _smooth(u, v, h)
    if n <= coarsest:
        return _smooth(u, v, h, sweeps=8)
    r = v - laplacian_periodic(u, h)
    rc = restrict_full_weighting(r)
    ec = v_cycle(np.zeros_like(rc), rc, 2 * h, coarsest)
    u = u + prolongate(ec)
    return _smooth(u, v, h)


@dataclass(frozen=True)
class MgResult:
    problem: NpbProblem
    rnorms: list[float]
    ops: float
    verified: bool


def run_mg(klass: str = "S", seed: int = 314159) -> MgResult:
    """Run the MG benchmark class (S = 32^3 x 4 cycles is fast).

    The right-hand side places +1 at ten random points and -1 at ten
    others (mean zero, as periodicity demands), like NPB's charges.
    """
    prob = problem("MG", klass)
    n = prob.size[0]
    rng = np.random.default_rng(seed)
    v = np.zeros((n, n, n))
    flat = rng.choice(n**3, size=20, replace=False)
    v.flat[flat[:10]] = 1.0
    v.flat[flat[10:]] = -1.0
    h = 1.0 / n
    u = np.zeros_like(v)
    rnorms = [float(np.linalg.norm(v - laplacian_periodic(u, h)))]
    for _ in range(prob.niter):
        u = v_cycle(u, v, h)
        rnorms.append(float(np.linalg.norm(v - laplacian_periodic(u, h))))
    # Multigrid property: sizable contraction every cycle.
    contractions = [b / a for a, b in zip(rnorms, rnorms[1:])]
    verified = bool(max(contractions) < 0.35)
    return MgResult(prob, rnorms, total_ops(prob), verified)
