"""NPB EP mini-kernel: embarrassingly parallel Gaussian deviates.

EP generates pairs of uniform deviates, applies the Marsaglia polar
method's acceptance test, and histograms the resulting Gaussian pairs
by their maximum magnitude — no communication at all, which is why the
paper's clusters all scale it perfectly.  Verification checks the
acceptance fraction (pi/4) and the unit variance of the deviates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .classes import NpbProblem, problem, total_ops

__all__ = ["EpResult", "run_ep"]


@dataclass(frozen=True)
class EpResult:
    problem: NpbProblem
    counts: np.ndarray  # annulus histogram, 10 bins
    sx: float
    sy: float
    accepted: int
    ops: float
    verified: bool


def run_ep(klass: str = "S", seed: int = 314159, max_pairs: int = 1 << 22) -> EpResult:
    """Run EP; classes above S are truncated to ``max_pairs`` pairs.

    The statistical checks are scale-invariant, so truncation keeps
    laptop runtimes sane while exercising the identical arithmetic.
    """
    prob = problem("EP", klass)
    n_pairs = min(int(prob.gridpoints), max_pairs)
    rng = np.random.default_rng(seed)
    x = 2.0 * rng.random(n_pairs) - 1.0
    y = 2.0 * rng.random(n_pairs) - 1.0
    t = x * x + y * y
    accept = (t <= 1.0) & (t > 0.0)
    t = t[accept]
    factor = np.sqrt(-2.0 * np.log(t) / t)
    gx = x[accept] * factor
    gy = y[accept] * factor
    m = np.maximum(np.abs(gx), np.abs(gy))
    counts = np.bincount(np.minimum(m.astype(np.int64), 9), minlength=10)
    sx, sy = float(gx.sum()), float(gy.sum())
    accepted = int(accept.sum())
    frac = accepted / n_pairs
    var = float(np.var(np.concatenate([gx, gy]))) if accepted else 0.0
    verified = bool(abs(frac - np.pi / 4.0) < 0.01 and abs(var - 1.0) < 0.02)
    return EpResult(prob, counts, sx, sy, accepted, total_ops(prob), verified)
