"""Node hardware models: clocks, memory, roofline timing, catalogs.

This subpackage is the reproduction's stand-in for the physical Shuttle
XPC node (see DESIGN.md, substitution table).  It provides:

* :class:`~repro.machine.node.NodeSpec` — parametric node description
  (CPU/memory clocks, bandwidths, disk, NIC) with BIOS-style independent
  clock scaling.
* :mod:`~repro.machine.clocking` — the four Table 2 clock configurations
  and the two-component CPU/memory sensitivity model.
* :class:`~repro.machine.perfmodel.PerfModel` — roofline execution-time
  model used by every higher-level performance model.
* :mod:`~repro.machine.specs` — Table 5 processor survey and Table 6
  historical machine catalog.
"""

from .clocking import (
    NORMAL,
    OVERCLOCK,
    SLOW_CPU,
    SLOW_MEM,
    TABLE2_CONFIGS,
    TABLE2_MEASURED,
    ClockConfig,
    WorkloadProfile,
    fit_workload,
    table2_profiles,
)
from .node import LOKI_NODE, SPACE_SIMULATOR_NODE, DiskSpec, NicSpec, NodeSpec
from .perfmodel import PerfModel, Workload
from .specs import (
    ASCI_Q_NODE,
    FLOPS_PER_INTERACTION,
    TABLE5_PROCESSORS,
    TABLE6_MACHINES,
    MachineRecord,
    ProcessorSpec,
)

__all__ = [
    "NodeSpec",
    "DiskSpec",
    "NicSpec",
    "SPACE_SIMULATOR_NODE",
    "LOKI_NODE",
    "ClockConfig",
    "WorkloadProfile",
    "fit_workload",
    "table2_profiles",
    "NORMAL",
    "SLOW_MEM",
    "SLOW_CPU",
    "OVERCLOCK",
    "TABLE2_CONFIGS",
    "TABLE2_MEASURED",
    "PerfModel",
    "Workload",
    "ProcessorSpec",
    "MachineRecord",
    "TABLE5_PROCESSORS",
    "TABLE6_MACHINES",
    "ASCI_Q_NODE",
    "FLOPS_PER_INTERACTION",
]
