"""BIOS clock configurations and the Table 2 sensitivity model.

Section 3.2 of the paper exploits the Shuttle XPC BIOS, which allows the
CPU and memory-bus frequencies to be set independently, to measure how a
suite of benchmarks responds to memory bandwidth versus processor speed.
Four configurations are used:

========== =========== ============ =============================
name        cpu scale   mem scale    paper description
========== =========== ============ =============================
normal      1.0         1.0          2.53 GHz P4, DDR333
slow mem    1.0         0.6          memory clocked to DDR200
slow CPU    0.75        1.0          processor clocked to 1.9 GHz
overclock   1.0526      1.0526       FSB raised 133 -> 140 MHz
========== =========== ============ =============================

The sensitivity model here decomposes each benchmark's runtime into a
CPU-scaled component ``fc`` and a memory-scaled component ``fm``::

    t(config) = fc / cpu_scale + fm / mem_scale

normalized so the *rates* of the normal configuration equal the measured
values.  Given the measured slow-mem and slow-CPU rate ratios, ``fc`` and
``fm`` are recovered exactly from a 2x2 linear solve
(:func:`fit_workload`).  The model then *predicts* the overclock column
(and anything else), which EXPERIMENTS.md compares against the paper.

``fc + fm`` would be exactly 1 for a perfectly additive machine; its
deviation from 1 is a built-in diagnostic of how well the two-component
decomposition describes a given benchmark (exposed as
:attr:`WorkloadProfile.consistency`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ClockConfig",
    "NORMAL",
    "SLOW_MEM",
    "SLOW_CPU",
    "OVERCLOCK",
    "TABLE2_CONFIGS",
    "WorkloadProfile",
    "fit_workload",
    "TABLE2_MEASURED",
    "table2_profiles",
]


@dataclass(frozen=True)
class ClockConfig:
    """One row of BIOS settings: independent CPU and memory multipliers."""

    name: str
    cpu_scale: float
    mem_scale: float

    def __post_init__(self) -> None:
        if self.cpu_scale <= 0 or self.mem_scale <= 0:
            raise ValueError("clock scales must be positive")


NORMAL = ClockConfig("normal", 1.0, 1.0)
SLOW_MEM = ClockConfig("slow mem", 1.0, 0.6)
SLOW_CPU = ClockConfig("slow CPU", 0.75, 1.0)
OVERCLOCK = ClockConfig("overclock", 140.0 / 133.0, 140.0 / 133.0)

#: The four configurations of Table 2, in paper column order.
TABLE2_CONFIGS = (NORMAL, SLOW_MEM, SLOW_CPU, OVERCLOCK)


@dataclass(frozen=True)
class WorkloadProfile:
    """Two-component CPU/memory time decomposition of one benchmark.

    ``normal_rate`` carries the benchmark's measured rate in its native
    unit (Mbyte/s for STREAM, Mop/s for NPB, SPEC marks, Gflop/s for
    Linpack); ``fc``/``fm`` are the CPU- and memory-scaled time shares
    at normal clocks (they need not sum exactly to 1, see module doc).
    """

    name: str
    normal_rate: float
    fc: float
    fm: float
    unit: str = ""

    def __post_init__(self) -> None:
        if self.normal_rate <= 0:
            raise ValueError(f"normal_rate must be positive, got {self.normal_rate}")
        if self.fc < 0 or self.fm < 0:
            raise ValueError(f"time shares must be non-negative (fc={self.fc}, fm={self.fm})")
        if self.fc + self.fm <= 0:
            raise ValueError("at least one time share must be positive")

    @property
    def memory_boundedness(self) -> float:
        """Fraction of normal-clock runtime attributed to memory."""
        return self.fm / (self.fc + self.fm)

    @property
    def consistency(self) -> float:
        """``fc + fm``; deviation from 1 measures model adequacy."""
        return self.fc + self.fm

    def rate_ratio(self, config: ClockConfig) -> float:
        """Predicted rate relative to the normal configuration."""
        t_normal = self.fc + self.fm
        t_config = self.fc / config.cpu_scale + self.fm / config.mem_scale
        return t_normal / t_config

    def rate(self, config: ClockConfig) -> float:
        """Predicted absolute rate under ``config``."""
        return self.normal_rate * self.rate_ratio(config)


def fit_workload(
    name: str,
    normal_rate: float,
    slow_mem_ratio: float,
    slow_cpu_ratio: float,
    unit: str = "",
    *,
    slow_mem: ClockConfig = SLOW_MEM,
    slow_cpu: ClockConfig = SLOW_CPU,
) -> WorkloadProfile:
    """Recover ``(fc, fm)`` from two measured rate ratios.

    Solves the exact 2x2 system

    .. math::

        1/r_\\mathrm{mem} &= f_c / c_1 + f_m / b_1 \\\\
        1/r_\\mathrm{cpu} &= f_c / c_2 + f_m / b_2

    where :math:`(c_i, b_i)` are the clock scales of the two calibration
    configurations.  Raises ``ValueError`` if the measured ratios are
    inconsistent with non-negative time shares (i.e. a benchmark that
    *speeds up* when clocks are lowered).
    """
    if not 0 < slow_mem_ratio <= 1.1 or not 0 < slow_cpu_ratio <= 1.1:
        raise ValueError(
            "rate ratios must be positive and <= 1.1: slowing a clock "
            "cannot meaningfully speed a benchmark up"
        )
    a11, a12 = 1.0 / slow_mem.cpu_scale, 1.0 / slow_mem.mem_scale
    a21, a22 = 1.0 / slow_cpu.cpu_scale, 1.0 / slow_cpu.mem_scale
    b1, b2 = 1.0 / slow_mem_ratio, 1.0 / slow_cpu_ratio
    det = a11 * a22 - a12 * a21
    if abs(det) < 1e-12:
        raise ValueError("calibration configurations are degenerate")
    fc = (b1 * a22 - a12 * b2) / det
    fm = (a11 * b2 - b1 * a21) / det
    # Tiny negative shares from measurement noise are clamped; large ones
    # indicate the two-component model cannot represent the benchmark.
    if fc < -0.05 or fm < -0.05:
        raise ValueError(
            f"{name}: measured ratios ({slow_mem_ratio}, {slow_cpu_ratio}) imply "
            f"negative time shares (fc={fc:.3f}, fm={fm:.3f})"
        )
    return WorkloadProfile(name, normal_rate, max(fc, 0.0), max(fm, 0.0), unit)


#: Table 2 as printed: benchmark -> (normal, slow-mem, slow-CPU, overclock).
#: STREAM rows in Mbyte/s, NPB rows in Mop/s, SPEC rows are marks,
#: Linpack in Gflop/s.
TABLE2_MEASURED: dict[str, tuple[float, float, float, float]] = {
    "copy": (1203.5, 761.8, 1143.4, 1268.5),
    "add": (1237.2, 749.8, 1165.3, 1302.8),
    "scale": (1201.8, 756.1, 1142.8, 1267.0),
    "triad": (1238.2, 748.9, 1160.7, 1304.1),
    "BT": (321.2, 204.1, 293.9, 342.3),
    "SP": (216.5, 131.7, 200.1, 229.6),
    "LU": (404.3, 262.2, 366.2, 427.4),
    "MG": (385.1, 231.4, 360.8, 400.1),
    "CG": (313.1, 189.4, 273.9, 330.2),
    "FT": (351.0, 248.7, 302.9, 385.1),
    "IS": (27.2, 21.2, 22.5, 28.9),
    "CINT2000": (790.0, 655.0, 640.0, 830.0),
    "CFP2000": (742.0, 527.0, 646.0, 782.0),
    "Linpack": (3.302, 2.865, 2.602, 3.476),
}

_UNITS = {
    "copy": "Mbyte/s",
    "add": "Mbyte/s",
    "scale": "Mbyte/s",
    "triad": "Mbyte/s",
    "BT": "Mop/s",
    "SP": "Mop/s",
    "LU": "Mop/s",
    "MG": "Mop/s",
    "CG": "Mop/s",
    "FT": "Mop/s",
    "IS": "Mop/s",
    "CINT2000": "mark",
    "CFP2000": "mark",
    "Linpack": "Gflop/s",
}


def table2_profiles() -> dict[str, WorkloadProfile]:
    """Fit a :class:`WorkloadProfile` for every Table 2 benchmark.

    Calibration uses only the slow-mem and slow-CPU columns; the normal
    column anchors absolute rates and the overclock column is left as a
    genuine prediction target.
    """
    profiles: dict[str, WorkloadProfile] = {}
    for name, (normal, slow_mem, slow_cpu, _overclock) in TABLE2_MEASURED.items():
        profiles[name] = fit_workload(
            name, normal, slow_mem / normal, slow_cpu / normal, _UNITS[name]
        )
    return profiles
