"""Hardware model of a single compute node.

The Space Simulator node (Shuttle XPC SS51G) is characterized in the paper
by a handful of architectural parameters: a 2.53 GHz Pentium 4 with a
533 MHz front-side bus, 1 GB of DDR333 SDRAM whose effective bandwidth is
reduced ~10% by the integrated video controller sharing the memory bus,
a 5400 rpm IDE disk, and a 3c996B-T gigabit NIC on a 32-bit/33 MHz PCI
bus.  This module captures those parameters in :class:`NodeSpec` so that
the performance models elsewhere in the package (STREAM, Linpack, NPB,
the gravity kernel, application extrapolations) can all consume a single
description of the hardware.

Clock frequencies are stored in MHz, bandwidths in Mbyte/s, and peak
floating-point rates in Mflop/s, matching the units the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["DiskSpec", "NicSpec", "NodeSpec", "SPACE_SIMULATOR_NODE", "LOKI_NODE"]


@dataclass(frozen=True)
class DiskSpec:
    """Local disk of a node.

    Parameters mirror the Maxtor 4K080H4 (80 GB, 5400 rpm) used in the
    Space Simulator.  ``sustained_mbytes_s`` is the streaming transfer
    rate used for the application I/O model (the paper's cosmology run
    sustained ~28 Mbyte/s per disk: 7 Gbyte/s peak over 250 disks).
    """

    capacity_gb: float = 80.0
    rpm: int = 5400
    sustained_mbytes_s: float = 28.0
    seek_ms: float = 12.0

    def read_time_s(self, mbytes: float) -> float:
        """Time to stream ``mbytes`` from the disk, including one seek."""
        if mbytes < 0:
            raise ValueError(f"mbytes must be non-negative, got {mbytes}")
        return self.seek_ms * 1e-3 + mbytes / self.sustained_mbytes_s

    write_time_s = read_time_s


@dataclass(frozen=True)
class NicSpec:
    """Network interface model.

    ``wire_mbits_s`` is the physical line rate; ``pci_mbits_s`` is the
    ceiling imposed by the host bus (the Shuttle's single 32-bit/33 MHz
    PCI slot tops out near 1 Gbit/s of useful payload, which is why NIC
    selection mattered so much in Section 3.1).
    """

    name: str = "3c996B-T"
    wire_mbits_s: float = 1000.0
    pci_mbits_s: float = 1014.0  # 32-bit * 33 MHz * ~96% efficiency

    @property
    def effective_mbits_s(self) -> float:
        """Payload ceiling: min of the wire and the host bus."""
        return min(self.wire_mbits_s, self.pci_mbits_s)


@dataclass(frozen=True)
class NodeSpec:
    """Parametric description of a compute node.

    The defaults describe the Space Simulator node.  All performance
    models accept a :class:`NodeSpec`, so alternative machines (Loki,
    ASCI Q, the Table 5 processor zoo) are just different instances.

    Attributes
    ----------
    cpu_mhz:
        Core clock.  The P4's SSE2 unit can retire 2 double-precision
        flops per cycle, giving the paper's quoted 5.06 Gflop/s peak
        (2 x 2530 MHz).
    flops_per_cycle:
        Peak double-precision flops per cycle.
    mem_mhz:
        Memory *data* clock (DDR333 -> 333).  Table 2's "slow mem"
        configuration drops this to 200.
    mem_width_bytes:
        Memory bus width (8 bytes for the single-channel DDR system).
    mem_efficiency:
        Fraction of theoretical memory bandwidth sustained by STREAM.
        Calibrated so that the normal configuration reproduces the
        paper's measured ~1203-1238 Mbyte/s STREAM figures; includes
        the ~10% tax from the integrated video controller.
    fsb_mhz:
        Front-side-bus base clock (133 MHz for the 533 MT/s quad-pumped
        bus).  Overclocking in Table 2 raises this to 140.
    ram_mb:
        Installed memory, used to size Linpack problems (HPL N).
    """

    name: str = "Shuttle XPC SS51G / P4 2.53GHz"
    cpu_mhz: float = 2530.0
    flops_per_cycle: float = 2.0
    mem_mhz: float = 333.0
    mem_width_bytes: float = 8.0
    mem_efficiency: float = 0.452
    fsb_mhz: float = 133.0
    ram_mb: float = 1024.0
    l2_kb: float = 512.0
    disk: DiskSpec = field(default_factory=DiskSpec)
    nic: NicSpec = field(default_factory=NicSpec)

    def __post_init__(self) -> None:
        for attr in ("cpu_mhz", "mem_mhz", "mem_width_bytes", "ram_mb"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive, got {getattr(self, attr)}")
        if not 0.0 < self.mem_efficiency <= 1.0:
            raise ValueError(f"mem_efficiency must be in (0, 1], got {self.mem_efficiency}")

    @property
    def peak_mflops(self) -> float:
        """Theoretical peak in Mflop/s (paper: 5060 for the SS node)."""
        return self.cpu_mhz * self.flops_per_cycle

    @property
    def peak_gflops(self) -> float:
        return self.peak_mflops / 1000.0

    @property
    def stream_mbytes_s(self) -> float:
        """Sustained STREAM bandwidth in Mbyte/s.

        theoretical = mem_mhz (data rate, MT/s) * bus width; sustained
        applies ``mem_efficiency``.  DDR333 x 8 bytes = 2664 MB/s
        theoretical; at the calibrated efficiency this yields the
        ~1204 MB/s STREAM-copy figure of Table 2.
        """
        return self.mem_mhz * self.mem_width_bytes * self.mem_efficiency

    def without_onboard_vga(self) -> "NodeSpec":
        """The Section 3.2 tweak: disable the integrated video controller.

        "It is possible to disable the on-board VGA controller and
        increase memory copy bandwidth by 10%, but you must then insert
        an AGP video card into the system in order for it to boot."
        Returns a node with the frame-buffer tax removed.
        """
        return replace(
            self,
            name=f"{self.name} (VGA disabled)",
            mem_efficiency=min(self.mem_efficiency * 1.10, 1.0),
        )

    def with_clocks(self, *, cpu_scale: float = 1.0, mem_scale: float = 1.0) -> "NodeSpec":
        """Return a copy with independently scaled CPU and memory clocks.

        This mirrors the BIOS control the paper exploited in Section 3.2:
        the XPC BIOS lets the processor and memory-bus frequencies be set
        independently, enabling the slow-mem / slow-CPU / overclock
        experiments of Table 2.
        """
        if cpu_scale <= 0 or mem_scale <= 0:
            raise ValueError("clock scales must be positive")
        return replace(
            self,
            name=f"{self.name} (cpu x{cpu_scale:g}, mem x{mem_scale:g})",
            cpu_mhz=self.cpu_mhz * cpu_scale,
            mem_mhz=self.mem_mhz * mem_scale,
            fsb_mhz=self.fsb_mhz * cpu_scale,
        )


#: The node the paper is about (Table 1 / Section 3).
SPACE_SIMULATOR_NODE = NodeSpec()

#: A Loki node (Table 7): 200 MHz Pentium Pro, 1 flop/cycle, EDO/FPM
#: memory.  Peak 200 Mflop/s as the paper states.
LOKI_NODE = NodeSpec(
    name="Loki / Pentium Pro 200MHz",
    cpu_mhz=200.0,
    flops_per_cycle=1.0,
    mem_mhz=66.0,
    mem_width_bytes=8.0,
    mem_efficiency=0.33,
    fsb_mhz=66.0,
    ram_mb=128.0,
    l2_kb=256.0,
    disk=DiskSpec(capacity_gb=3.24, rpm=5400, sustained_mbytes_s=4.0),
    nic=NicSpec(name="DFE-500TX", wire_mbits_s=100.0, pci_mbits_s=1014.0),
)
