"""Catalogs of processors and machines appearing in the paper.

Two surveys anchor the paper's historical narrative:

* **Table 5** — the gravity micro-kernel benchmark across eleven
  processors spanning 1996-2003, with two inner-loop variants (libm
  ``sqrt`` versus Karp's reciprocal-square-root decomposition).
* **Table 6** — a decade of full-scale treecode runs, from the 1993
  Intel Delta (19.6 Mflop/s per processor) to the 2003 ASCI QB
  (775.8 Mflop/s per processor).

:class:`ProcessorSpec` stores each processor's measured kernel rates and
derives an implied micro-architecture interpretation: an effective
flops-per-cycle for the Karp path (pure adds/multiplies) and an implied
square-root + divide latency for the libm path.  The paper's Table 5
discussion — that Karp's trick wins big on machines with slow hardware
sqrt, and that icc's use of SSE/SSE2 gives the P4 a large boost — falls
directly out of these derived numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "FLOPS_PER_INTERACTION",
    "KARP_EXTRA_FLOPS",
    "ProcessorSpec",
    "TABLE5_PROCESSORS",
    "MachineRecord",
    "TABLE6_MACHINES",
    "ASCI_Q_NODE",
]

#: Nominal flop count per gravitational interaction used by the paper's
#: Mflop/s accounting (monopole interaction: 3 subs, 3 mults + 2 adds for
#: r^2, softening add, rsqrt expansion, m/r^3 scaling, 3 multiply-adds
#: for the acceleration; the community convention for this kernel is 38).
FLOPS_PER_INTERACTION = 38.0

#: Additional adds/multiplies Karp's method spends to avoid sqrt and
#: divide (table lookup + Chebyshev interpolation + one Newton step).
KARP_EXTRA_FLOPS = 10.0


@dataclass(frozen=True)
class ProcessorSpec:
    """One row of the Table 5 processor survey."""

    name: str
    mhz: float
    measured_libm_mflops: float
    measured_karp_mflops: float

    def __post_init__(self) -> None:
        if self.mhz <= 0:
            raise ValueError("mhz must be positive")
        if self.measured_libm_mflops <= 0 or self.measured_karp_mflops <= 0:
            raise ValueError("measured rates must be positive")

    @property
    def cycles_per_interaction_libm(self) -> float:
        return FLOPS_PER_INTERACTION * self.mhz / self.measured_libm_mflops

    @property
    def cycles_per_interaction_karp(self) -> float:
        return FLOPS_PER_INTERACTION * self.mhz / self.measured_karp_mflops

    @property
    def effective_flops_per_cycle(self) -> float:
        """Sustained adds+multiplies per cycle on the Karp (no-sqrt) path."""
        return (FLOPS_PER_INTERACTION + KARP_EXTRA_FLOPS) / self.cycles_per_interaction_karp

    @property
    def implied_sqrtdiv_cycles(self) -> float:
        """Serialized sqrt+divide cost implied by the libm/Karp gap.

        ``cycles_libm = arith_cycles + sqrtdiv``, where the arithmetic
        portion (the interaction minus its sqrt and divide, ~36 flops)
        runs at the Karp path's effective issue rate.  Negative values
        (possible when hardware rsqrt is faster than Karp, as on the
        2200 MHz P4 with x87 code) are reported as 0.
        """
        arith = (FLOPS_PER_INTERACTION - 2.0) / self.effective_flops_per_cycle
        return max(self.cycles_per_interaction_libm - arith, 0.0)

    @property
    def karp_speedup(self) -> float:
        """Karp-over-libm rate ratio (3.2x on the EV56, ~1.16x on icc/P4)."""
        return self.measured_karp_mflops / self.measured_libm_mflops

    def model_mflops(self, variant: str) -> float:
        """Modeled rate from the derived micro-architecture parameters.

        By construction this inverts the calibration exactly; it exists
        so benches can project rates under clock scaling
        (``model_mflops`` is linear in ``mhz``).
        """
        if variant == "karp":
            cycles = (FLOPS_PER_INTERACTION + KARP_EXTRA_FLOPS) / self.effective_flops_per_cycle
        elif variant == "libm":
            cycles = (
                (FLOPS_PER_INTERACTION - 2.0) / self.effective_flops_per_cycle
                + self.implied_sqrtdiv_cycles
            )
        else:
            raise ValueError(f"unknown variant {variant!r}; expected 'libm' or 'karp'")
        return FLOPS_PER_INTERACTION * self.mhz / cycles


#: Table 5 of the paper, in its row order.
TABLE5_PROCESSORS: tuple[ProcessorSpec, ...] = (
    ProcessorSpec("533-MHz Alpha EV56", 533.0, 76.2, 242.2),
    ProcessorSpec("667-MHz Transmeta TM5600", 667.0, 128.7, 297.5),
    ProcessorSpec("933-MHz Transmeta TM5800", 933.0, 189.5, 373.2),
    ProcessorSpec("375-MHz IBM Power3", 375.0, 298.5, 514.4),
    ProcessorSpec("1133-MHz Intel P3", 1133.0, 292.2, 594.9),
    ProcessorSpec("1200-MHz AMD Athlon MP", 1200.0, 350.7, 614.0),
    ProcessorSpec("2200-MHz Intel P4", 2200.0, 668.0, 655.5),
    ProcessorSpec("2530-MHz Intel P4", 2530.0, 779.3, 792.6),
    ProcessorSpec("1800-MHz AMD Athlon XP", 1800.0, 609.9, 951.9),
    ProcessorSpec("1250-MHz Alpha 21264C", 1250.0, 935.2, 1141.0),
    ProcessorSpec("2530-MHz Intel P4 (icc)", 2530.0, 1170.0, 1357.0),
)


@dataclass(frozen=True)
class MachineRecord:
    """One row of Table 6: a historical full-scale treecode run."""

    year: int
    site: str
    machine: str
    procs: int
    gflops: float
    mflops_per_proc: float

    def __post_init__(self) -> None:
        if self.procs <= 0:
            raise ValueError("procs must be positive")
        if self.gflops <= 0 or self.mflops_per_proc <= 0:
            raise ValueError("performance figures must be positive")

    @property
    def parallel_consistency(self) -> float:
        """``gflops / (procs * mflops_per_proc)`` — ~1 when the row is
        self-consistent (Table 6 quotes independently rounded figures)."""
        return self.gflops * 1000.0 / (self.procs * self.mflops_per_proc)


#: Table 6 of the paper, newest first as printed.
TABLE6_MACHINES: tuple[MachineRecord, ...] = (
    MachineRecord(2003, "LANL", "ASCI QB", 3600, 2793.0, 775.8),
    MachineRecord(2003, "LANL", "Space Simulator", 288, 179.7, 623.9),
    MachineRecord(2002, "NERSC", "IBM SP-3(375/W)", 256, 57.70, 225.0),
    MachineRecord(2002, "LANL", "Green Destiny", 212, 38.9, 183.5),
    MachineRecord(2000, "LANL", "SGI Origin 2000", 64, 13.10, 205.0),
    MachineRecord(1998, "LANL", "Avalon", 128, 16.16, 126.0),
    MachineRecord(1996, "LANL", "Loki", 16, 1.28, 80.0),
    MachineRecord(1996, "SC '96", "Loki+Hyglac", 32, 2.19, 68.4),
    MachineRecord(1996, "Sandia", "ASCI Red", 6800, 464.9, 68.4),
    MachineRecord(1995, "JPL", "Cray T3D", 256, 7.94, 31.0),
    MachineRecord(1995, "LANL", "TMC CM-5", 512, 14.06, 27.5),
    MachineRecord(1993, "Caltech", "Intel Delta", 512, 10.02, 19.6),
)


def _asci_q_node():
    """ASCI Q node model used by the NPB comparison columns (Tables 3-4).

    Q nodes are AlphaServer ES45s: 1.25 GHz Alpha EV68 (2 flops/cycle,
    2.5 Gflop/s peak per CPU) with much higher sustained memory bandwidth
    per processor than the P4 node, connected by Quadrics QsNet.
    Imported lazily to avoid a circular import at package init.
    """
    from .node import DiskSpec, NicSpec, NodeSpec

    return NodeSpec(
        name="ASCI Q / AlphaServer ES45, EV68 1.25GHz",
        cpu_mhz=1250.0,
        flops_per_cycle=2.0,
        mem_mhz=500.0,  # effective per-CPU share of the ES45 memory system
        mem_width_bytes=8.0,
        mem_efficiency=0.55,
        fsb_mhz=125.0,
        ram_mb=4096.0,
        l2_kb=16384.0,
        disk=DiskSpec(capacity_gb=36.0, rpm=10000, sustained_mbytes_s=50.0),
        nic=NicSpec(name="Quadrics QsNet", wire_mbits_s=2500.0, pci_mbits_s=4000.0),
    )


ASCI_Q_NODE = _asci_q_node()
