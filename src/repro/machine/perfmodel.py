"""Roofline-style execution-time model.

Section 3.2 concludes that "the factor limiting node performance for a
large fraction of scientific applications is the local node memory
bandwidth".  The model here encodes exactly that observation: a
computation is characterized by its operation count and its memory
traffic (:class:`Workload`), and a node executes it at whichever of the
two resources is the bottleneck (:class:`PerfModel`).

Two composition rules are offered:

``overlap``
    ``t = max(t_flops, t_mem)`` — the classic roofline, appropriate for
    well-pipelined kernels where prefetching hides memory behind
    arithmetic (STREAM, dense BLAS-3).
``serial``
    ``t = t_flops + t_mem`` — appropriate for latency-exposed codes
    where stalls add to compute (pointer chasing, short loops).

Real codes fall between; ``overlap_fraction`` interpolates.
"""

from __future__ import annotations

from dataclasses import dataclass

from .node import NodeSpec

__all__ = ["Workload", "PerfModel"]


@dataclass(frozen=True)
class Workload:
    """Resource demands of one computation phase.

    Attributes
    ----------
    flops:
        Floating-point (or integer op, for IS-like kernels) count.
    mem_bytes:
        Bytes moved to/from DRAM (not cache traffic).
    flop_efficiency:
        Fraction of node peak the arithmetic can sustain when
        compute-bound (dense kernels ~0.65 with ATLAS; irregular codes
        much lower).
    overlap_fraction:
        1.0 = perfect overlap of memory and arithmetic (roofline max),
        0.0 = fully serialized.
    """

    flops: float
    mem_bytes: float = 0.0
    flop_efficiency: float = 1.0
    overlap_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.flops < 0 or self.mem_bytes < 0:
            raise ValueError("flops and mem_bytes must be non-negative")
        if not 0.0 < self.flop_efficiency <= 1.0:
            raise ValueError(f"flop_efficiency must be in (0, 1], got {self.flop_efficiency}")
        if not 0.0 <= self.overlap_fraction <= 1.0:
            raise ValueError(f"overlap_fraction must be in [0, 1], got {self.overlap_fraction}")

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per DRAM byte (``inf`` for in-cache workloads)."""
        if self.mem_bytes == 0:
            return float("inf")
        return self.flops / self.mem_bytes

    def scaled(self, factor: float) -> "Workload":
        """A workload ``factor`` times larger (same intensity)."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return Workload(
            self.flops * factor,
            self.mem_bytes * factor,
            self.flop_efficiency,
            self.overlap_fraction,
        )


class PerfModel:
    """Executes :class:`Workload` descriptions against a :class:`NodeSpec`."""

    def __init__(self, node: NodeSpec):
        self.node = node

    def flop_time_s(self, workload: Workload) -> float:
        """Time attributable to arithmetic alone."""
        peak = self.node.peak_mflops * 1e6 * workload.flop_efficiency
        return workload.flops / peak

    def mem_time_s(self, workload: Workload) -> float:
        """Time attributable to DRAM traffic alone."""
        if workload.mem_bytes == 0:
            return 0.0
        bw = self.node.stream_mbytes_s * 1e6
        return workload.mem_bytes / bw

    def time_s(self, workload: Workload) -> float:
        """Execution time under the interpolated roofline rule."""
        tf = self.flop_time_s(workload)
        tm = self.mem_time_s(workload)
        overlapped = max(tf, tm)
        serialized = tf + tm
        w = workload.overlap_fraction
        return w * overlapped + (1.0 - w) * serialized

    def mflops(self, workload: Workload) -> float:
        """Achieved Mflop/s on this workload."""
        t = self.time_s(workload)
        if t == 0.0:
            return 0.0
        return workload.flops / t / 1e6

    def ridge_intensity(self) -> float:
        """Arithmetic intensity (flops/byte) at the roofline ridge point.

        Workloads below this intensity are memory-bound on this node.
        The SS node's ridge sits near 4.2 flops/byte, which is why the
        NPB kernels (intensity ~0.5-2) track memory frequency so closely
        in Table 2.
        """
        return (self.node.peak_mflops * 1e6) / (self.node.stream_mbytes_s * 1e6)
