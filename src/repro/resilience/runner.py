"""Restart orchestration: run a SimMPI job to completion under faults.

The control loop that §2.1's failure record implies but the paper never
spells out, because in 2003 it was an operator with a pager: launch the
job; when a node death kills it
(:class:`~repro.simmpi.faults.RankFailedError`), pay the restart
overhead, re-express the fault schedule relative to the relaunch, hand
every rank its last *committed* checkpoint, and go again.  Virtual time
accumulates across attempts, so the resulting wall-clock is directly
comparable to the analytic
:func:`repro.cluster.checkpoint.expected_runtime` — which is exactly
what ``benchmarks/bench_resilience.py`` validates.

The contract with the application is a **program factory**: a callable
that, given the attempt's :class:`~repro.resilience.checkpoint.Checkpointer`,
returns the rank program (SPMD) or list of programs (MPMD).  Programs
consult ``ckpt.restored(rank)`` to skip already-checkpointed work and
call ``yield from ckpt.save(...)`` at their natural consistency points.

Everything is deterministic: same programs, same cost model, same fault
plan ⇒ the same failures at the same virtual times, the same number of
restarts, and a bit-identical final :class:`~repro.simmpi.engine.SimResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..machine.node import NodeSpec, SPACE_SIMULATOR_NODE
from ..obs import NULL, Recorder
from ..simmpi.cost import CostModel
from ..simmpi.engine import SimResult, run
from ..simmpi.faults import FaultPlan, RankFailedError
from .checkpoint import Checkpointer, CheckpointStore

__all__ = ["ResilienceConfig", "FailureRecord", "ResilientResult", "run_resilient"]

ProgramFactory = Callable[[Checkpointer], Callable | Sequence[Callable]]


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the restart loop.

    ``interval_s`` is the checkpoint cadence handed to the
    :class:`~repro.resilience.checkpoint.Checkpointer`; 0 means "dump at
    every opportunity the program offers".  Use
    :func:`repro.cluster.checkpoint.young_interval_seconds` for the
    analytically optimal cadence.  ``restart_s`` models detection,
    reboot/replacement, and relaunch (the paper-era half hour).
    """

    checkpoint_dir: str
    interval_s: float = 0.0
    restart_s: float = 1800.0
    max_restarts: int = 16
    node: NodeSpec = SPACE_SIMULATOR_NODE

    def __post_init__(self) -> None:
        if self.interval_s < 0 or self.restart_s < 0 or self.max_restarts < 0:
            raise ValueError("invalid resilience configuration")


@dataclass(frozen=True)
class FailureRecord:
    """One consumed crash: which rank died, and when (cumulative time)."""

    rank: int
    attempt: int
    time_in_attempt_s: float
    cumulative_time_s: float


@dataclass
class ResilientResult:
    """Outcome of a run that survived its fault schedule."""

    sim: SimResult
    attempts: int
    failures: list[FailureRecord] = field(default_factory=list)
    wall_s: float = 0.0  # lost attempts + restart overheads + final attempt
    checkpoints: int = 0
    restored_from_epoch: int | None = None  # epoch the final attempt resumed from

    @property
    def lost_s(self) -> float:
        """Virtual time burned on failed attempts and restarts."""
        return self.wall_s - self.sim.elapsed


def run_resilient(
    program_factory: ProgramFactory,
    n_ranks: int,
    *,
    cost: CostModel | None = None,
    faults: FaultPlan | None = None,
    config: ResilienceConfig,
    max_events: int = 50_000_000,
    observer: Recorder | None = None,
) -> ResilientResult:
    """Run a checkpointing SimMPI job to completion under a fault plan.

    Raises ``RuntimeError`` if the job still cannot finish after
    ``config.max_restarts`` relaunches — the schedule is then denser
    than the checkpoint cadence can absorb, which is itself a finding
    (see the bench's expected-runtime blow-up at tiny MTBF).

    With ``observer``, the restart loop records job-level spans in
    cumulative virtual time — one ``attempt-N`` span per launch and a
    ``restart`` span for each repair/relaunch window — plus
    ``resilience.*`` counters, so a Chrome trace shows the whole
    checkpointed campaign, not just the surviving attempt.
    """
    obs = observer if observer is not None else NULL
    store = CheckpointStore(config.checkpoint_dir)
    plan = faults if faults is not None else FaultPlan()
    failures: list[FailureRecord] = []
    wall_s = 0.0
    checkpoints = 0
    for attempt in range(config.max_restarts + 1):
        latest = store.latest_committed()
        restored = (
            [store.load_rank(latest, r) for r in range(n_ranks)]
            if latest is not None
            else None
        )
        ckpt = Checkpointer(
            store,
            n_ranks,
            interval_s=config.interval_s,
            node=config.node,
            start_epoch=0 if latest is None else latest + 1,
            restored=restored,
        )
        programs = program_factory(ckpt)
        try:
            sim = run(programs, n_ranks, cost, max_events=max_events, faults=plan)
        except RankFailedError as crash:
            checkpoints += ckpt.checkpoints_written
            failures.append(
                FailureRecord(
                    rank=crash.rank,
                    attempt=attempt,
                    time_in_attempt_s=crash.time,
                    cumulative_time_s=wall_s + crash.time,
                )
            )
            obs.add_span(
                f"attempt-{attempt}", wall_s, wall_s + crash.time,
                cat="attempt", args={"crashed_rank": crash.rank},
            )
            obs.add_span(
                "restart", wall_s + crash.time,
                wall_s + crash.time + config.restart_s, cat="restart",
            )
            obs.count("resilience.failures")
            obs.count("resilience.lost_s", crash.time + config.restart_s)
            # The crashed attempt burned its virtual time up to the
            # crash, then the cluster sat in repair/relaunch; the fault
            # schedule advances past both (maintenance clears pending
            # events inside the downtime window).
            wall_s += crash.time + config.restart_s
            plan = plan.shifted(crash.time + config.restart_s)
            continue
        checkpoints += ckpt.checkpoints_written
        obs.add_span(f"attempt-{attempt}", wall_s, wall_s + sim.elapsed, cat="attempt")
        obs.count("resilience.checkpoints", checkpoints)
        return ResilientResult(
            sim=sim,
            attempts=attempt + 1,
            failures=failures,
            wall_s=wall_s + sim.elapsed,
            checkpoints=checkpoints,
            restored_from_epoch=latest,
        )
    raise RuntimeError(
        f"job failed to complete within {config.max_restarts} restarts "
        f"({len(failures)} node crashes consumed)"
    )
