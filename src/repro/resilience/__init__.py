"""Fault-injection resilience for SimMPI runs (§2.1 made executable).

The paper's nine months of component-failure bookkeeping exist because
a 294-node commodity cluster *will* lose nodes during a multi-month
run; this package closes the loop between that failure record and the
simulation engine:

* :mod:`~repro.resilience.sampling` draws seeded
  :class:`~repro.simmpi.faults.FaultPlan` schedules from the measured
  §2.1 rates (:class:`~repro.cluster.reliability.FailureModel`);
* :mod:`~repro.resilience.checkpoint` is the data plane — a two-phase
  commit checkpoint store over :mod:`repro.core.snapshot` and the
  collective :class:`~repro.resilience.checkpoint.Checkpointer` facade
  rank programs dump through at Young's interval;
* :mod:`~repro.resilience.runner` is the control loop — catch the
  crash, pay the restart, resume every rank from the last committed
  epoch, and keep cumulative virtual time honest so results line up
  with :func:`repro.cluster.checkpoint.expected_runtime`.

Quick example::

    from repro.resilience import (
        ResilienceConfig, run_resilient, sample_fault_plan,
    )

    def factory(ckpt):
        def program(comm):
            snap = ckpt.restored(comm.rank)
            step = int(snap.meta["step"]) if snap else 0
            while step < 100:
                yield comm.elapse(360.0)   # one step of "science"
                step += 1
                yield from ckpt.save(
                    comm, {"x": state}, meta={"step": step})
            return step
        return program

    faults = sample_fault_plan(8, hours=10.0, seed=7, crash_rate_scale=2e4)
    out = run_resilient(
        factory, 8, faults=faults,
        config=ResilienceConfig(checkpoint_dir="ckpt", interval_s=1800.0),
    )
"""

from .checkpoint import Checkpointer, CheckpointStore
from .runner import FailureRecord, ResilienceConfig, ResilientResult, run_resilient
from .sampling import node_crash_rate_per_hour, sample_fault_plan

__all__ = [
    "Checkpointer",
    "CheckpointStore",
    "FailureRecord",
    "ResilienceConfig",
    "ResilientResult",
    "run_resilient",
    "node_crash_rate_per_hour",
    "sample_fault_plan",
]
