"""Checkpoint data plane for resilient SimMPI runs.

Two layers:

* :class:`CheckpointStore` — an on-disk epoch directory tree built on
  :mod:`repro.core.snapshot` (checksummed ``.npy`` dumps, §4.3's
  parallel-local-disk strategy) with a **two-phase commit**: every rank
  writes its snapshot under ``epoch_NNNN/rank_NNN/``, and only after a
  barrier does rank 0 drop the ``COMMIT`` marker.  A crash anywhere
  before the marker leaves a torn epoch that restart simply ignores, so
  recovery always starts from a globally consistent cut.
* :class:`Checkpointer` — the rank-facing collective API.  Rank
  programs call ``yield from ckpt.save(comm, arrays, meta)``; the save
  is gated by the checkpoint interval (Young's interval, typically —
  see :func:`repro.cluster.checkpoint.young_interval_seconds`), charges
  the node's real local-disk write time into virtual time, and agrees
  across ranks by allreduce so no rank dumps alone.

The store holds real files with real checksums: the same corruption
detection the production snapshot path has also guards restart.
"""

from __future__ import annotations

import json
import os
import re
import shutil
from typing import Any, Generator

import numpy as np

from ..core.snapshot import (
    Snapshot,
    SnapshotError,
    read_snapshot,
    snapshot_nbytes,
    write_snapshot,
)
from ..machine.node import NodeSpec, SPACE_SIMULATOR_NODE
from ..simmpi.api import MAX as MPI_MAX
from ..simmpi.api import Comm

__all__ = ["CheckpointStore", "Checkpointer"]

_COMMIT = "COMMIT"
_EPOCH_RE = re.compile(r"^epoch_(\d{4,})$")


class CheckpointStore:
    """Epoch-structured checkpoint directory with two-phase commit."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)

    # -- paths ----------------------------------------------------------
    def epoch_dir(self, epoch: int) -> str:
        return os.path.join(self.root, f"epoch_{epoch:04d}")

    def rank_dir(self, epoch: int, rank: int) -> str:
        return os.path.join(self.epoch_dir(epoch), f"rank_{rank:03d}")

    def _commit_path(self, epoch: int) -> str:
        return os.path.join(self.epoch_dir(epoch), _COMMIT)

    # -- write side -----------------------------------------------------
    def write_rank(
        self, epoch: int, rank: int, arrays: dict[str, np.ndarray], meta: dict | None = None
    ) -> int:
        """Write one rank's snapshot for ``epoch``; returns bytes written."""
        write_snapshot(self.rank_dir(epoch, rank), arrays, meta)
        return snapshot_nbytes(arrays)

    def commit(self, epoch: int, meta: dict | None = None) -> None:
        """Drop the commit marker: the epoch is now the restart point."""
        path = self._commit_path(epoch)
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump({"epoch": epoch, "meta": dict(meta or {})}, fh)
        os.replace(tmp, path)

    # -- read side ------------------------------------------------------
    def epochs(self) -> list[int]:
        """All epoch directories present (committed or torn), sorted."""
        out = []
        for name in os.listdir(self.root):
            m = _EPOCH_RE.match(name)
            if m:
                out.append(int(m.group(1)))
        return sorted(out)

    def latest_committed(self) -> int | None:
        """Newest epoch with a COMMIT marker, or None if no restart point."""
        for epoch in reversed(self.epochs()):
            if os.path.exists(self._commit_path(epoch)):
                return epoch
        return None

    def commit_meta(self, epoch: int) -> dict:
        with open(self._commit_path(epoch)) as fh:
            return json.load(fh)["meta"]

    def load_rank(self, epoch: int, rank: int) -> Snapshot:
        """Load (and checksum-verify) one rank's committed snapshot."""
        if not os.path.exists(self._commit_path(epoch)):
            raise SnapshotError(f"epoch {epoch} was never committed; refusing torn restart")
        return read_snapshot(self.rank_dir(epoch, rank))

    # -- maintenance ----------------------------------------------------
    def prune(self, keep_last: int = 2) -> list[int]:
        """Drop superseded epochs, keeping the newest ``keep_last``
        committed ones; returns the epochs removed.

        Torn epochs (no COMMIT marker) older than the newest kept epoch
        are removed too — they can never become a restart point.  A
        torn epoch *newer* than every committed one is left alone: with
        a single writer it is the epoch currently being written.
        Callers that checkpoint every unit of progress (the campaign
        runner commits one epoch per completed shard) use this to keep
        disk usage bounded by ``keep_last`` ledgers instead of one per
        shard.
        """
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        committed = [e for e in self.epochs() if os.path.exists(self._commit_path(e))]
        if not committed:
            return []
        keep = set(committed[-keep_last:])
        newest_kept = max(keep)
        removed = []
        for epoch in self.epochs():
            if epoch in keep or epoch > newest_kept:
                continue
            shutil.rmtree(self.epoch_dir(epoch), ignore_errors=True)
            removed.append(epoch)
        return removed


class Checkpointer:
    """Collective checkpoint/restore facade handed to rank programs.

    One instance is shared by every rank of one engine attempt (SimMPI
    runs in a single process).  All cross-rank agreement goes through
    real collectives, so per-rank bookkeeping is keyed by rank and the
    object never needs locking.
    """

    def __init__(
        self,
        store: CheckpointStore,
        n_ranks: int,
        *,
        interval_s: float = 0.0,
        node: NodeSpec = SPACE_SIMULATOR_NODE,
        start_epoch: int = 0,
        restored: list[Snapshot | None] | None = None,
    ):
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if interval_s < 0:
            raise ValueError("interval_s must be non-negative")
        self.store = store
        self.n_ranks = n_ranks
        self.interval_s = interval_s
        self.node = node
        self.start_epoch = start_epoch
        self._restored = restored if restored is not None else [None] * n_ranks
        self._next_epoch = [start_epoch] * n_ranks
        self._last_save_t = [0.0] * n_ranks
        self.dump_seconds_total = 0.0

    # -- restart side ---------------------------------------------------
    def restored(self, rank: int) -> Snapshot | None:
        """This rank's committed snapshot from the previous attempt."""
        return self._restored[rank]

    @property
    def checkpoints_written(self) -> int:
        """Committed epochs produced through this checkpointer."""
        return max(self._next_epoch) - self.start_epoch

    # -- save side ------------------------------------------------------
    def dump_time_s(self, nbytes: int) -> float:
        """Virtual cost of dumping ``nbytes`` to the node's local disk."""
        return self.node.disk.write_time_s(nbytes / 1e6)

    def save(
        self,
        comm: Comm,
        arrays: dict[str, np.ndarray],
        meta: dict | None = None,
        force: bool = False,
    ) -> Generator[Any, Any, bool]:
        """Collective checkpoint; returns True if a dump happened.

        Every rank must call this at the same point in its program (it
        contains collectives).  The dump is taken when any rank's clock
        has advanced ``interval_s`` past its last checkpoint — ranks
        agree by allreduce, so clock skew cannot tear an epoch — or when
        ``force`` is set.  The write charges the local-disk time into
        the rank's virtual clock; rank 0 commits after the barrier.
        """
        rank = comm.rank
        now = yield comm.now()
        due = force or (now - self._last_save_t[rank] >= self.interval_s)
        agreed = yield comm.allreduce(1 if due else 0, op=MPI_MAX)
        if not agreed:
            return False
        epoch = self._next_epoch[rank]
        self._next_epoch[rank] = epoch + 1
        nbytes = self.store.write_rank(epoch, rank, arrays, meta)
        dump_s = self.dump_time_s(nbytes)
        self.dump_seconds_total += dump_s
        yield comm.elapse(dump_s, label="checkpoint-dump")
        yield comm.barrier()
        if rank == 0:
            # Reached only when every rank survived its dump: the commit
            # point of the two-phase protocol.
            self.store.commit(epoch, meta)
        self._last_save_t[rank] = yield comm.now()
        return True
