"""Sample fault schedules from the §2.1 failure statistics.

This is the bridge between the analytic reliability model
(:mod:`repro.cluster.reliability`) and the executable fault taxonomy
(:mod:`repro.simmpi.faults`): given a job of ``n_ranks`` simulated
nodes and a virtual duration, draw a deterministic, seeded
:class:`~repro.simmpi.faults.FaultPlan` whose event rates are the
paper's measured ones.

* **Node crashes** follow a per-node exponential process at the summed
  per-node component failure rate (the same rate that underlies
  :func:`repro.cluster.checkpoint.job_mtbf_hours`); a crashed node is
  repaired after ``repair_hours`` and can fail again.
* **Slow nodes** replay the "<10 soft node errors" as Poisson arrivals;
  each event throttles the node's compute by a sampled factor for a
  sampled window (soft errors of the era meant ECC storms, thermal
  throttling, or a wedged daemon stealing cycles).
* **Degraded links** replay the 4 soft switch-port failures: the
  affected rank's point-to-point traffic is slowed until the virtual
  power-cycle ends the window.

Sampling is rank-major with a fixed draw order, so a plan is a pure
function of ``(n_ranks, hours, seed, model)`` — rerunning a failed job
with the same seed reproduces the identical failure schedule, which is
what makes resilience regressions testable at all.
"""

from __future__ import annotations

import numpy as np

from ..cluster.reliability import (
    HOURS_9MO,
    SOFT_NODE_ERRORS_9MO,
    SWITCH_PORT_SOFT_FAILURES_9MO,
    FailureModel,
)
from ..simmpi.faults import FaultEvent, FaultPlan

__all__ = ["node_crash_rate_per_hour", "sample_fault_plan"]


def node_crash_rate_per_hour(model: FailureModel | None = None) -> float:
    """Summed per-node hard-failure rate (any component downs the node)."""
    model = model or FailureModel()
    return sum(
        c.failures_per_hour * c.count / model.n_nodes for c in model.components
    )


def _poisson_times(rng: np.random.Generator, rate_per_hour: float, hours: float) -> list[float]:
    """Arrival times (hours) of a Poisson process on [0, hours)."""
    times: list[float] = []
    if rate_per_hour <= 0:
        return times
    t = float(rng.exponential(1.0 / rate_per_hour))
    while t < hours:
        times.append(t)
        t += float(rng.exponential(1.0 / rate_per_hour))
    return times


def sample_fault_plan(
    n_ranks: int,
    hours: float,
    *,
    seed: int = 0,
    model: FailureModel | None = None,
    crash_rate_scale: float = 1.0,
    repair_hours: float = 24.0,
    soft_rate_per_node_hour: float | None = None,
    link_rate_per_node_hour: float | None = None,
    slow_factor_range: tuple[float, float] = (2.0, 8.0),
    slow_hours_range: tuple[float, float] = (0.25, 2.0),
    link_factor_range: tuple[float, float] = (4.0, 20.0),
    link_hours_range: tuple[float, float] = (0.5, 6.0),
) -> FaultPlan:
    """Draw a seeded fault schedule for an ``n_ranks``-node virtual job.

    ``crash_rate_scale`` compresses the nine-month statistics into
    test-sized windows (e.g. ``1e4`` makes crashes likely within a few
    virtual hours) without distorting the relative §2.1 rates.  The
    soft/link rates default to the paper's counts over the 294-node,
    nine-month observation.
    """
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    if hours <= 0:
        raise ValueError("hours must be positive")
    if crash_rate_scale < 0:
        raise ValueError("crash_rate_scale must be non-negative")
    model = model or FailureModel()
    rng = np.random.default_rng(seed)
    crash_rate = node_crash_rate_per_hour(model) * crash_rate_scale
    if soft_rate_per_node_hour is None:
        soft_rate_per_node_hour = (
            SOFT_NODE_ERRORS_9MO / (294.0 * HOURS_9MO) * crash_rate_scale
        )
    if link_rate_per_node_hour is None:
        link_rate_per_node_hour = (
            SWITCH_PORT_SOFT_FAILURES_9MO / (294.0 * HOURS_9MO) * crash_rate_scale
        )

    events: list[FaultEvent] = []
    for rank in range(n_ranks):
        # Crashes: renewal process with a repair gap after each failure.
        if crash_rate > 0:
            t = float(rng.exponential(1.0 / crash_rate))
            while t < hours:
                events.append(FaultEvent("crash", rank, t * 3600.0))
                t += repair_hours + float(rng.exponential(1.0 / crash_rate))
        for t in _poisson_times(rng, soft_rate_per_node_hour, hours):
            factor = float(rng.uniform(*slow_factor_range))
            dur = float(rng.uniform(*slow_hours_range)) * 3600.0
            events.append(FaultEvent("slow", rank, t * 3600.0, factor, dur))
        for t in _poisson_times(rng, link_rate_per_node_hour, hours):
            factor = float(rng.uniform(*link_factor_range))
            dur = float(rng.uniform(*link_hours_range)) * 3600.0
            events.append(FaultEvent("link", rank, t * 3600.0, factor, dur))
    return FaultPlan(events)
