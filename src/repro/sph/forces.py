"""SPH momentum and energy equations with artificial viscosity.

The symmetrized pressure-gradient form,

.. math::

    \\frac{dv_i}{dt} = -\\sum_j m_j \\left( \\frac{P_i}{\\rho_i^2} +
        \\frac{P_j}{\\rho_j^2} + \\Pi_{ij} \\right)
        \\bar{\\nabla W}_{ij},

with Monaghan's standard artificial viscosity (the alpha/beta form
with the usual epsilon h^2 regularization) and the compatible thermal
energy equation.  The kernel gradient is symmetrized between h_i and
h_j, so momentum and energy are conserved to machine precision —
asserted by the test suite, since that conservation is what makes long
supernova runs (0.1-0.2 million timesteps, Section 4.4) possible at
all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.backend import get_backend
from ..core.tree import Tree
from ..obs import NULL
from .kernel import dw_dr_cubic
from .neighbors import NeighborLists, symmetric_pairs

__all__ = ["ViscosityParams", "SphForces", "compute_sph_forces"]


@dataclass(frozen=True)
class ViscosityParams:
    """Monaghan alpha/beta artificial viscosity."""

    alpha: float = 1.0
    beta: float = 2.0
    eta2: float = 0.01  # softens r -> 0 in mu_ij, units of h^2

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0 or self.eta2 <= 0:
            raise ValueError("invalid viscosity parameters")


@dataclass
class SphForces:
    """Accelerations and heating rates, in tree order."""

    dv_dt: np.ndarray  # (N, 3)
    du_dt: np.ndarray  # (N,)
    max_signal_speed: float  # for CFL timestep control


def compute_sph_forces(
    tree: Tree,
    neighbors: NeighborLists,
    *,
    rho: np.ndarray,
    pressure: np.ndarray,
    sound_speed: np.ndarray,
    velocities: np.ndarray,
    h: np.ndarray,
    visc: ViscosityParams | None = None,
    backend=None,
    observer=NULL,
) -> SphForces:
    """Evaluate the SPH equations of motion (all arrays tree-order).

    Pairwise contributions are accumulated through the selected kernel
    backend's scatter-add.
    """
    visc = visc or ViscosityParams()
    kb = get_backend(backend)
    n = tree.n_particles
    for name, arr, shape in (
        ("rho", rho, (n,)),
        ("pressure", pressure, (n,)),
        ("sound_speed", sound_speed, (n,)),
        ("velocities", velocities, (n, 3)),
        ("h", h, (n,)),
    ):
        if np.asarray(arr).shape != shape:
            raise ValueError(f"{name} must have shape {shape}")
    if np.any(rho <= 0):
        raise ValueError("densities must be positive")

    # Unique unordered pairs: conservation requires each interaction to
    # act on both members exactly once (gather lists are asymmetric
    # with adaptive h — see neighbors.symmetric_pairs).
    i_idx, j_idx = symmetric_pairs(neighbors)

    dr = tree.positions[i_idx] - tree.positions[j_idx]
    r = np.sqrt(np.einsum("ij,ij->i", dr, dr))
    r_safe = np.maximum(r, 1e-300)
    unit = dr / r_safe[:, None]

    # Symmetrized kernel gradient magnitude.
    dw = 0.5 * (dw_dr_cubic(r, h[i_idx]) + dw_dr_cubic(r, h[j_idx]))

    dv = velocities[i_idx] - velocities[j_idx]
    vdotr = np.einsum("ij,ij->i", dv, dr)

    # Monaghan viscosity.
    h_bar = 0.5 * (h[i_idx] + h[j_idx])
    rho_bar = 0.5 * (rho[i_idx] + rho[j_idx])
    c_bar = 0.5 * (sound_speed[i_idx] + sound_speed[j_idx])
    mu = np.where(
        vdotr < 0.0,
        h_bar * vdotr / (r_safe**2 + visc.eta2 * h_bar**2),
        0.0,
    )
    pi_ij = (-visc.alpha * c_bar * mu + visc.beta * mu**2) / rho_bar

    term = (
        pressure[i_idx] / rho[i_idx] ** 2
        + pressure[j_idx] / rho[j_idx] ** 2
        + pi_ij
    )
    # Action on i, reaction on j (momentum conservation by construction).
    with observer.span("sph.forces", cat="sph", backend=kb.name):
        kernel_force = (term * dw)[:, None] * unit
        dv_dt = np.zeros((n, 3))
        kb.scatter_add(dv_dt, i_idx, -tree.masses[j_idx][:, None] * kernel_force)
        kb.scatter_add(dv_dt, j_idx, tree.masses[i_idx][:, None] * kernel_force)

        # Compatible thermal energy: du_i/dt gets (m_j/2) X, du_j
        # (m_i/2) X with X = term * (v_ij . grad W) — total energy then
        # conserves exactly against the momentum equation.
        x_pair = term * dw * np.einsum("ij,ij->i", dv, unit)
        du_dt = np.zeros(n)
        kb.scatter_add(du_dt, i_idx, 0.5 * tree.masses[j_idx] * x_pair)
        kb.scatter_add(du_dt, j_idx, 0.5 * tree.masses[i_idx] * x_pair)
        observer.count("sph.force_pairs", int(i_idx.shape[0]))

    signal = sound_speed[i_idx] + sound_speed[j_idx] - np.minimum(mu, 0.0)
    max_signal = float(signal.max()) if signal.size else float(sound_speed.max())
    return SphForces(dv_dt, du_dt, max_signal)
