"""Gray flux-limited-diffusion neutrino transport on SPH particles.

Section 4.4: the supernova code couples the hydrodynamics to "a
flux-limited diffusion algorithm to model the neutrino transport".
This module implements the gray (frequency-integrated) version of that
scheme on the SPH particle set:

* each particle carries a neutrino energy ``E_nu`` (per unit mass);
* **emission/absorption** locally exchanges energy between gas thermal
  energy and the neutrino field at a rate ``~ kappa_a rho (u - u_eq)``;
* **diffusion** moves neutrino energy between neighbor pairs through
  the SPH gradient with the Levermore-Pomraning flux limiter
  ``lambda(R) = (2 + R) / (6 + 3R + R^2)``, which interpolates between
  optically-thick diffusion (lambda -> 1/3) and the free-streaming
  causal limit (flux <= c E);
* pairwise antisymmetry makes the diffusion exactly conservative.

The scheme is deliberately gray and one-species (DESIGN.md records the
reduction); it produces the qualitative supernova energetics — the
collapsing core traps neutrinos at high optical depth and radiates
them from the neutrinosphere — that Figure 8's simulations rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.tree import Tree
from .kernel import dw_dr_cubic
from .neighbors import NeighborLists, symmetric_pairs

__all__ = ["FldParams", "flux_limiter", "NeutrinoStep", "neutrino_step"]


def flux_limiter(r_knudsen: np.ndarray) -> np.ndarray:
    """Levermore-Pomraning limiter lambda(R)."""
    r = np.asarray(r_knudsen, dtype=np.float64)
    if np.any(r < 0):
        raise ValueError("the Knudsen ratio R is non-negative by construction")
    return (2.0 + r) / (6.0 + 3.0 * r + r * r)


@dataclass(frozen=True)
class FldParams:
    """Transport constants (code units)."""

    c_light: float = 10.0  # signal speed; >> dynamical speeds
    kappa: float = 50.0  # specific opacity (absorption + scattering)
    emit_rate: float = 2.0  # gas -> neutrino coupling rate
    trap_fraction: float = 0.3  # equilibrium E_nu / u at high depth

    def __post_init__(self) -> None:
        if min(self.c_light, self.kappa, self.emit_rate) <= 0:
            raise ValueError("transport constants must be positive")
        if not 0 < self.trap_fraction < 1:
            raise ValueError("trap_fraction must be a fraction")


@dataclass
class NeutrinoStep:
    """Result of one transport substep (tree order)."""

    e_nu: np.ndarray  # updated neutrino energy per mass
    du_dt_gas: np.ndarray  # heating(+)/cooling(-) applied to the gas
    luminosity: float  # energy leaving through low-density particles


def neutrino_step(
    tree: Tree,
    neighbors: NeighborLists,
    *,
    rho: np.ndarray,
    u: np.ndarray,
    e_nu: np.ndarray,
    h: np.ndarray,
    dt: float,
    params: FldParams | None = None,
    surface_rho: float | None = None,
) -> NeutrinoStep:
    """Advance the neutrino field by ``dt`` (explicit, conservative).

    ``surface_rho``: particles below this density radiate their
    neutrino energy freely (the neutrinosphere escape term); defaults
    to the 5th percentile of the density field.
    """
    if dt <= 0:
        raise ValueError("dt must be positive")
    params = params or FldParams()
    n = tree.n_particles
    e_nu = np.array(e_nu, dtype=np.float64, copy=True)
    if np.any(e_nu < -1e-12):
        raise ValueError("neutrino energies must be non-negative")
    if surface_rho is None:
        surface_rho = float(np.percentile(rho, 5.0))

    # -- emission / absorption toward local equilibrium ----------------
    u_eq = params.trap_fraction * np.maximum(u, 0.0)
    rate = params.emit_rate * np.clip(rho / rho.max(), 0.0, 1.0)
    exchange = rate * (u_eq - e_nu)  # >0: gas feeds the field
    exchange = np.clip(exchange, -e_nu / dt, np.maximum(u, 0.0) / dt)
    e_nu = e_nu + exchange * dt
    du_dt_gas = -exchange

    # -- flux-limited diffusion between neighbor pairs -----------------
    i_idx, j_idx = symmetric_pairs(neighbors)
    if i_idx.size:
        dr = tree.positions[i_idx] - tree.positions[j_idx]
        r = np.sqrt(np.einsum("ij,ij->i", dr, dr))
        r = np.maximum(r, 1e-300)
        dw = 0.5 * (dw_dr_cubic(r, h[i_idx]) + dw_dr_cubic(r, h[j_idx]))
        rho_bar = 0.5 * (rho[i_idx] + rho[j_idx])
        # Energy densities and the local Knudsen ratio R = |grad E|/(kappa rho E).
        e_i, e_j = e_nu[i_idx] * rho[i_idx], e_nu[j_idx] * rho[j_idx]
        grad_scale = np.abs(e_i - e_j) / np.maximum(r, 1e-300)
        mean_e = 0.5 * (e_i + e_j)
        knudsen = grad_scale / np.maximum(params.kappa * rho_bar * mean_e, 1e-300)
        lam = flux_limiter(knudsen)
        diff_coeff = lam * params.c_light / (params.kappa * rho_bar)
        # Standard SPH diffusion pair term (antisymmetric, conservative).
        pair_flux = (
            2.0
            * tree.masses[i_idx]
            * tree.masses[j_idx]
            / (rho[i_idx] * rho[j_idx])
            * diff_coeff
            * (e_nu[i_idx] - e_nu[j_idx])
            * dw
            / r
        )
        de = np.zeros(n)
        np.add.at(de, i_idx, pair_flux / np.maximum(tree.masses[i_idx], 1e-300))
        np.add.at(de, j_idx, -pair_flux / np.maximum(tree.masses[j_idx], 1e-300))
        # Explicit stability: cap the step's relative change.
        scale = np.max(np.abs(de) * dt / np.maximum(e_nu.max(), 1e-300))
        if scale > 0.5:
            de *= 0.5 / scale
        e_nu = np.maximum(e_nu + de * dt, 0.0)

    # -- free escape at the neutrinosphere ------------------------------
    surface = rho <= surface_rho
    escaping = e_nu[surface].copy()
    lum = float((tree.masses[surface] * escaping).sum() / dt) if np.any(surface) else 0.0
    e_nu[surface] = 0.0

    return NeutrinoStep(e_nu, du_dt_gas, lum)
