"""Exact Riemann solver for the 1-D Euler equations (ideal gas).

The reference solution for shock-tube validation of the SPH code: the
classic exact solver (Toro's algorithm) — Newton iteration on the
star-region pressure with shock/rarefaction branch functions, then
sampling of the self-similar solution.  The Sod problem's star-state
values (p* = 0.30313, u* = 0.92745 for gamma = 1.4) are pinned in the
tests against the literature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RiemannState", "SOD_LEFT", "SOD_RIGHT", "solve_star", "sample", "sod_solution"]


@dataclass(frozen=True)
class RiemannState:
    """Primitive state on one side of the diaphragm."""

    rho: float
    u: float
    p: float

    def __post_init__(self) -> None:
        if self.rho <= 0 or self.p <= 0:
            raise ValueError("density and pressure must be positive")

    def sound_speed(self, gamma: float) -> float:
        return float(np.sqrt(gamma * self.p / self.rho))


#: The standard Sod (1978) initial states.
SOD_LEFT = RiemannState(rho=1.0, u=0.0, p=1.0)
SOD_RIGHT = RiemannState(rho=0.125, u=0.0, p=0.1)


def _pressure_function(p: float, s: RiemannState, gamma: float) -> tuple[float, float]:
    """f(p, state) and f'(p, state): shock or rarefaction branch."""
    a = s.sound_speed(gamma)
    if p > s.p:  # shock
        big_a = 2.0 / ((gamma + 1.0) * s.rho)
        big_b = (gamma - 1.0) / (gamma + 1.0) * s.p
        root = np.sqrt(big_a / (p + big_b))
        f = (p - s.p) * root
        df = root * (1.0 - 0.5 * (p - s.p) / (p + big_b))
    else:  # rarefaction
        exp = (gamma - 1.0) / (2.0 * gamma)
        f = 2.0 * a / (gamma - 1.0) * ((p / s.p) ** exp - 1.0)
        df = (p / s.p) ** (-(gamma + 1.0) / (2.0 * gamma)) / (s.rho * a)
    return float(f), float(df)


def solve_star(
    left: RiemannState, right: RiemannState, gamma: float = 1.4, tol: float = 1e-12
) -> tuple[float, float]:
    """(p*, u*) of the star region by Newton iteration."""
    if gamma <= 1.0:
        raise ValueError("gamma must exceed 1")
    du = right.u - left.u
    # Vacuum check.
    if (2.0 / (gamma - 1.0)) * (left.sound_speed(gamma) + right.sound_speed(gamma)) <= du:
        raise ValueError("initial states generate vacuum")
    p = max(0.5 * (left.p + right.p), 1e-8)
    for _ in range(100):
        fl, dfl = _pressure_function(p, left, gamma)
        fr, dfr = _pressure_function(p, right, gamma)
        delta = (fl + fr + du) / (dfl + dfr)
        p_new = max(p - delta, 1e-12)
        if abs(p_new - p) < tol * max(p, 1.0):
            p = p_new
            break
        p = p_new
    fl, _ = _pressure_function(p, left, gamma)
    fr, _ = _pressure_function(p, right, gamma)
    u = 0.5 * (left.u + right.u) + 0.5 * (fr - fl)
    return float(p), float(u)


def sample(
    xi: np.ndarray,
    left: RiemannState,
    right: RiemannState,
    gamma: float = 1.4,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Self-similar solution at xi = x/t: (rho, u, p) arrays."""
    xi = np.asarray(xi, dtype=np.float64)
    p_star, u_star = solve_star(left, right, gamma)
    rho = np.empty_like(xi)
    u = np.empty_like(xi)
    p = np.empty_like(xi)
    al, ar = left.sound_speed(gamma), right.sound_speed(gamma)
    gm, gp = gamma - 1.0, gamma + 1.0

    for i, s in enumerate(xi):
        if s <= u_star:  # left of the contact
            if p_star > left.p:  # left shock
                sl = left.u - al * np.sqrt(gp / (2 * gamma) * p_star / left.p + gm / (2 * gamma))
                if s < sl:
                    rho[i], u[i], p[i] = left.rho, left.u, left.p
                else:
                    ratio = p_star / left.p
                    rho[i] = left.rho * (ratio + gm / gp) / (gm / gp * ratio + 1.0)
                    u[i], p[i] = u_star, p_star
            else:  # left rarefaction
                head = left.u - al
                a_star = al * (p_star / left.p) ** (gm / (2 * gamma))
                tail = u_star - a_star
                if s < head:
                    rho[i], u[i], p[i] = left.rho, left.u, left.p
                elif s > tail:
                    rho[i] = left.rho * (p_star / left.p) ** (1.0 / gamma)
                    u[i], p[i] = u_star, p_star
                else:  # inside the fan
                    u[i] = 2.0 / gp * (al + gm / 2.0 * left.u + s)
                    a_loc = 2.0 / gp * (al + gm / 2.0 * (left.u - s))
                    rho[i] = left.rho * (a_loc / al) ** (2.0 / gm)
                    p[i] = left.p * (a_loc / al) ** (2.0 * gamma / gm)
        else:  # right of the contact
            if p_star > right.p:  # right shock
                sr = right.u + ar * np.sqrt(gp / (2 * gamma) * p_star / right.p + gm / (2 * gamma))
                if s > sr:
                    rho[i], u[i], p[i] = right.rho, right.u, right.p
                else:
                    ratio = p_star / right.p
                    rho[i] = right.rho * (ratio + gm / gp) / (gm / gp * ratio + 1.0)
                    u[i], p[i] = u_star, p_star
            else:  # right rarefaction
                head = right.u + ar
                a_star = ar * (p_star / right.p) ** (gm / (2 * gamma))
                tail = u_star + a_star
                if s > head:
                    rho[i], u[i], p[i] = right.rho, right.u, right.p
                elif s < tail:
                    rho[i] = right.rho * (p_star / right.p) ** (1.0 / gamma)
                    u[i], p[i] = u_star, p_star
                else:
                    u[i] = 2.0 / gp * (-ar + gm / 2.0 * right.u + s)
                    a_loc = 2.0 / gp * (ar - gm / 2.0 * (right.u - s))
                    rho[i] = right.rho * (a_loc / ar) ** (2.0 / gm)
                    p[i] = right.p * (a_loc / ar) ** (2.0 * gamma / gm)
    return rho, u, p


def sod_solution(x: np.ndarray, t: float, x0: float = 0.0, gamma: float = 1.4):
    """Sod-problem (rho, u, p) at positions ``x`` and time ``t``."""
    if t <= 0:
        raise ValueError("t must be positive")
    return sample((np.asarray(x) - x0) / t, SOD_LEFT, SOD_RIGHT, gamma)
