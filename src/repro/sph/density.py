"""SPH density summation with adaptive smoothing lengths.

Density is the gather sum ``rho_i = sum_j m_j W(r_ij, h_i)`` over the
tree-found neighbor lists; smoothing lengths adapt so every particle
sees approximately ``n_target`` neighbors (the Lagrangian resolution
the paper's code relies on: "Taking advantage of the Lagrangian nature
of smooth particle hydrodynamics …").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.backend import get_backend
from ..core.tree import Tree, build_tree
from ..obs import NULL
from .kernel import SUPPORT_RADIUS, w_cubic
from .neighbors import NeighborLists, find_neighbors

__all__ = ["DensityResult", "density_sum", "adapt_smoothing", "initial_smoothing"]


@dataclass
class DensityResult:
    rho: np.ndarray
    h: np.ndarray
    neighbors: NeighborLists
    n_iterations: int


def initial_smoothing(positions: np.ndarray, n_target: int = 40) -> np.ndarray:
    """First-guess h from the mean interparticle spacing."""
    positions = np.asarray(positions, dtype=np.float64)
    n = positions.shape[0]
    span = positions.max(axis=0) - positions.min(axis=0)
    volume = float(np.prod(np.maximum(span, 1e-12)))
    spacing = (volume / n) ** (1.0 / 3.0)
    h0 = spacing * (n_target / (4.0 / 3.0 * np.pi * SUPPORT_RADIUS**3)) ** (1.0 / 3.0)
    return np.full(n, max(h0, 1e-12))


def density_sum(
    tree: Tree,
    h: np.ndarray,
    neighbors: NeighborLists | None = None,
    *,
    backend=None,
    observer=NULL,
) -> tuple[np.ndarray, NeighborLists]:
    """Gather-form density over tree-order particles.

    The neighbor lists are CSR by sink particle, so the gather sum is a
    segment reduction through the selected kernel backend.
    """
    kb = get_backend(backend)
    if neighbors is None:
        neighbors = find_neighbors(tree, SUPPORT_RADIUS * h, backend=kb, observer=observer)
    with observer.span("sph.density", cat="sph", backend=kb.name):
        i_idx = np.repeat(np.arange(tree.n_particles), neighbors.counts())
        j_idx = neighbors.neighbors
        dr = tree.positions[i_idx] - tree.positions[j_idx]
        r = np.sqrt(np.einsum("ij,ij->i", dr, dr))
        w = w_cubic(r, h[i_idx])
        rho = kb.segment_sum(tree.masses[j_idx] * w, neighbors.offsets)
        observer.count("sph.density_pairs", int(j_idx.shape[0]))
    return rho, neighbors


def adapt_smoothing(
    positions: np.ndarray,
    masses: np.ndarray,
    h: np.ndarray | None = None,
    *,
    n_target: int = 40,
    max_iters: int = 4,
    bucket_size: int = 16,
    backend=None,
    observer=NULL,
) -> tuple[Tree, DensityResult]:
    """Iterate h toward the target neighbor count; returns (tree, result).

    Inputs are in caller order; the returned tree (and all arrays in the
    result) are in tree (Morton) order — use ``tree.order`` to map back.
    """
    positions = np.ascontiguousarray(positions, dtype=np.float64)
    masses = np.ascontiguousarray(masses, dtype=np.float64)
    n = positions.shape[0]
    if n_target < 1 or max_iters < 1:
        raise ValueError("n_target and max_iters must be positive")
    if h is None:
        h = initial_smoothing(positions, n_target)
    else:
        h = np.asarray(h, dtype=np.float64)
        if h.shape != (n,) or np.any(h <= 0):
            raise ValueError("h must be positive with one entry per particle")
    tree = build_tree(positions, masses, bucket_size=bucket_size)
    h = h[tree.order]
    rho, neigh = density_sum(tree, h, backend=backend, observer=observer)
    iterations = 1
    for _ in range(max_iters - 1):
        counts = neigh.counts()
        if np.all(np.abs(counts - n_target) <= max(2, n_target // 5)):
            break
        # Move h toward the count target (cube-root rule), damped.
        factor = (n_target / np.maximum(counts, 1)) ** (1.0 / 3.0)
        h = h * np.clip(factor, 0.7, 1.5)
        rho, neigh = density_sum(tree, h, backend=backend, observer=observer)
        iterations += 1
    return tree, DensityResult(rho, h, neigh, iterations)
