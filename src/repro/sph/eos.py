"""Equations of state for the SPH code.

Three levels, matching how the supernova problem is usually staged:

* :class:`IdealGas` — thermal pressure ``P = (gamma-1) rho u``;
* :class:`Polytrope` — barotropic ``P = K rho^gamma`` (initial models);
* :class:`HybridCollapseEOS` — the standard simplified collapse EOS:
  a soft polytrope below nuclear density and a stiff one above (the
  stiffening is what halts collapse and drives the core *bounce*),
  plus an ideal-gas thermal component.  This is the "complex
  description of pressure forces for matter at nuclear densities" of
  Section 4.4, reduced to its established two-regime parametrization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["IdealGas", "Polytrope", "HybridCollapseEOS"]


@dataclass(frozen=True)
class IdealGas:
    """P = (gamma - 1) rho u."""

    gamma: float = 5.0 / 3.0

    def __post_init__(self) -> None:
        if self.gamma <= 1.0:
            raise ValueError("gamma must exceed 1")

    def pressure(self, rho: np.ndarray, u: np.ndarray) -> np.ndarray:
        return (self.gamma - 1.0) * rho * u

    def sound_speed(self, rho: np.ndarray, u: np.ndarray) -> np.ndarray:
        return np.sqrt(self.gamma * np.maximum(self.gamma - 1.0, 0.0) * np.maximum(u, 0.0))


@dataclass(frozen=True)
class Polytrope:
    """Barotropic P = K rho^gamma (u is ignored)."""

    k: float = 1.0
    gamma: float = 4.0 / 3.0

    def __post_init__(self) -> None:
        if self.k <= 0 or self.gamma <= 1.0:
            raise ValueError("invalid polytrope parameters")

    def pressure(self, rho: np.ndarray, u: np.ndarray | None = None) -> np.ndarray:
        return self.k * np.asarray(rho, dtype=np.float64) ** self.gamma

    def sound_speed(self, rho: np.ndarray, u: np.ndarray | None = None) -> np.ndarray:
        rho = np.asarray(rho, dtype=np.float64)
        return np.sqrt(self.gamma * self.pressure(rho) / np.maximum(rho, 1e-300))


@dataclass(frozen=True)
class HybridCollapseEOS:
    """Two-regime cold pressure plus thermal pressure.

    Below ``rho_nuc``: ``P_cold = k1 rho^gamma1`` (soft, collapse
    proceeds).  Above: ``P_cold = k2 rho^gamma2`` with ``k2`` fixed by
    pressure continuity at ``rho_nuc`` (stiff, gamma2 ~ 2.5-3: the
    bounce).  Thermal part: ``(gamma_th - 1) rho u``.
    """

    k1: float = 1.0
    gamma1: float = 4.0 / 3.0
    gamma2: float = 2.75
    rho_nuc: float = 100.0
    gamma_th: float = 1.5

    def __post_init__(self) -> None:
        if self.k1 <= 0 or self.rho_nuc <= 0:
            raise ValueError("k1 and rho_nuc must be positive")
        if not (1.0 < self.gamma1 < self.gamma2):
            raise ValueError("need 1 < gamma1 < gamma2 for a stiffening EOS")
        if self.gamma_th <= 1.0:
            raise ValueError("gamma_th must exceed 1")

    @property
    def k2(self) -> float:
        """Continuity: k1 rho_nuc^g1 == k2 rho_nuc^g2."""
        return self.k1 * self.rho_nuc ** (self.gamma1 - self.gamma2)

    def cold_pressure(self, rho: np.ndarray) -> np.ndarray:
        rho = np.asarray(rho, dtype=np.float64)
        soft = self.k1 * rho**self.gamma1
        stiff = self.k2 * rho**self.gamma2
        return np.where(rho < self.rho_nuc, soft, stiff)

    def pressure(self, rho: np.ndarray, u: np.ndarray) -> np.ndarray:
        rho = np.asarray(rho, dtype=np.float64)
        u = np.asarray(u, dtype=np.float64)
        return self.cold_pressure(rho) + (self.gamma_th - 1.0) * rho * np.maximum(u, 0.0)

    def sound_speed(self, rho: np.ndarray, u: np.ndarray) -> np.ndarray:
        rho = np.asarray(rho, dtype=np.float64)
        gamma_eff = np.where(rho < self.rho_nuc, self.gamma1, self.gamma2)
        return np.sqrt(
            np.maximum(gamma_eff * self.pressure(rho, u) / np.maximum(rho, 1e-300), 0.0)
        )
