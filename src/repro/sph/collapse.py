"""Rotating core-collapse setup and driver (Section 4.4, Figure 8).

Builds a rotating polytropic stellar core (Lane-Emden structure,
differential rotation) and collapses it under self-gravity (the
treecode), SPH hydrodynamics, the stiffening nuclear EOS (bounce), and
gray FLD neutrino transport.  The Figure 8 diagnostic — the specific
angular momentum distribution versus polar angle, with the equator
carrying ~2 orders of magnitude more than the polar cones — is
computed by :func:`angular_momentum_by_angle`.

Units: G = M_core = R_core = 1 ("code units"); the dynamical time is
then order unity and the bounce occurs within a few dynamical times
once pressure support is reduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.gravity import tree_accelerations
from .density import adapt_smoothing
from .eos import HybridCollapseEOS
from .forces import ViscosityParams, compute_sph_forces
from .neutrino import FldParams, neutrino_step

__all__ = [
    "lane_emden",
    "polytrope_particles",
    "add_rotation",
    "angular_momentum_by_angle",
    "CollapseConfig",
    "CollapseHistory",
    "CollapseSimulation",
    "run_campaign_scenario",
]


def run_campaign_scenario(params) -> dict:
    """Campaign entry point: one supernova-progenitor scenario.

    ``params`` are the fields of
    :class:`repro.campaign.spec.SupernovaSpec`: progenitor resolution
    and structure (``n_particles``, ``n_poly``, ``seed``), rotation law
    (``omega0``, ``r0``), the pressure deficit that triggers collapse,
    and the step budget.  Builds the rotating polytrope, runs the
    coupled gravity + SPH + EOS driver, and returns JSON scalars only —
    the campaign scenario contract.  Neutrino transport defaults off so
    a campaign-sized progenitor (tens of particles) runs in tens of
    milliseconds; production sweeps turn it back on.
    """
    n_particles = int(params.get("n_particles", 48))
    n_steps = int(params.get("n_steps", 3))
    pos, masses, u = polytrope_particles(
        n_particles,
        n_poly=float(params.get("n_poly", 3.0)),
        seed=int(params.get("seed", 20031115)),
    )
    vel = add_rotation(pos, omega0=float(params.get("omega0", 0.3)),
                       r0=float(params.get("r0", 0.3)))
    cfg = CollapseConfig(
        n_target_neighbors=int(params.get("n_target_neighbors", 12)),
        pressure_deficit=float(params.get("pressure_deficit", 0.55)),
        with_neutrinos=bool(params.get("with_neutrinos", False)),
    )
    sim = CollapseSimulation(pos, vel, masses, u, cfg)
    hist = sim.run(n_steps)
    return {
        "n_particles": n_particles,
        "steps": len(hist.times),
        "time_final": float(sim.time),
        "max_density": float(hist.max_density),
        "bounced": bool(hist.bounced(cfg.eos.rho_nuc)),
        "central_density_final": float(hist.central_density[-1]) if hist.central_density else 0.0,
        "total_energy_final": float(hist.total_energy[-1]) if hist.total_energy else 0.0,
    }


def lane_emden(n_poly: float = 3.0, dxi: float = 1e-3, xi_max: float = 20.0):
    """Integrate the Lane-Emden equation to the first zero of theta.

    Returns ``(xi, theta, xi1, dtheta_dxi_at_xi1)`` — everything needed
    to build a polytropic density profile ``rho ~ theta^n``.
    """
    if n_poly < 0 or dxi <= 0:
        raise ValueError("invalid Lane-Emden parameters")
    xis = [dxi]
    thetas = [1.0 - dxi * dxi / 6.0]
    phi = -dxi / 3.0  # dtheta/dxi
    xi, theta = xis[0], thetas[0]
    while theta > 0 and xi < xi_max:
        # RK2 (midpoint) on theta'' = -theta^n - 2 theta'/xi.
        def rhs(x, t, p):
            return p, -(max(t, 0.0) ** n_poly) - 2.0 * p / x

        k1t, k1p = rhs(xi, theta, phi)
        k2t, k2p = rhs(xi + dxi / 2, theta + k1t * dxi / 2, phi + k1p * dxi / 2)
        theta += k2t * dxi
        phi += k2p * dxi
        xi += dxi
        xis.append(xi)
        thetas.append(theta)
    if theta > 0:
        raise RuntimeError(f"no Lane-Emden zero before xi = {xi_max}")
    # Linear interpolation for the zero crossing.
    x0, x1 = xis[-2], xis[-1]
    t0, t1 = thetas[-2], thetas[-1]
    xi1 = x0 + (x1 - x0) * t0 / (t0 - t1)
    return np.array(xis), np.array(thetas), float(xi1), float(phi)


def polytrope_particles(
    n_particles: int, n_poly: float = 3.0, seed: int = 20031115
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample a unit-mass, unit-radius polytrope: (positions, masses, u).

    Radii are drawn from the enclosed-mass profile
    ``m(xi) ~ -xi^2 theta'`` by inverse-transform sampling; specific
    internal energies follow the polytropic temperature profile
    ``u ~ theta``.
    """
    if n_particles < 1:
        raise ValueError("need at least one particle")
    xis, thetas, xi1, _ = lane_emden(n_poly)
    inside = xis <= xi1
    xis, thetas = xis[inside], np.maximum(thetas[inside], 0.0)
    dens = thetas**n_poly
    # Enclosed mass by trapezoid of 4 pi xi^2 rho.
    integrand = xis**2 * dens
    m_enc = np.concatenate([[0.0], np.cumsum(0.5 * (integrand[1:] + integrand[:-1]) * np.diff(xis))])
    m_enc /= m_enc[-1]
    rng = np.random.default_rng(seed)
    u_draw = rng.random(n_particles)
    radii = np.interp(u_draw, m_enc, xis) / xi1  # scaled to unit radius
    direction = rng.standard_normal((n_particles, 3))
    direction /= np.linalg.norm(direction, axis=1, keepdims=True)
    positions = radii[:, None] * direction
    masses = np.full(n_particles, 1.0 / n_particles)
    u_internal = 0.05 + 0.5 * np.interp(radii * xi1, xis, thetas)
    return positions, masses, u_internal


def add_rotation(
    positions: np.ndarray, omega0: float = 0.3, r0: float = 0.3
) -> np.ndarray:
    """Velocities for differential rotation about z: Omega = Omega0 / (1 + (R/r0)^2).

    The standard pre-collapse rotation law (constant specific angular
    momentum at large cylindrical radius R).
    """
    if omega0 < 0 or r0 <= 0:
        raise ValueError("invalid rotation parameters")
    positions = np.asarray(positions, dtype=np.float64)
    big_r2 = positions[:, 0] ** 2 + positions[:, 1] ** 2
    omega = omega0 / (1.0 + big_r2 / r0**2)
    vel = np.zeros_like(positions)
    vel[:, 0] = -omega * positions[:, 1]
    vel[:, 1] = omega * positions[:, 0]
    return vel


def angular_momentum_by_angle(
    positions: np.ndarray, velocities: np.ndarray, masses: np.ndarray, n_bins: int = 9
) -> tuple[np.ndarray, np.ndarray]:
    """Mean specific angular momentum |j_z| binned by polar angle.

    Returns ``(bin_centers_deg, j_mean)`` where 0 deg is the pole and
    90 deg the equator — the Figure 8 axes.  Bins are in ``|cos|`` so
    each subtends equal solid angle per hemisphere pair.
    """
    positions = np.asarray(positions, dtype=np.float64)
    velocities = np.asarray(velocities, dtype=np.float64)
    r = np.linalg.norm(positions, axis=1)
    r = np.maximum(r, 1e-300)
    cos_theta = np.abs(positions[:, 2]) / r
    jz = np.abs(positions[:, 0] * velocities[:, 1] - positions[:, 1] * velocities[:, 0])
    theta_deg = np.degrees(np.arccos(np.clip(cos_theta, 0.0, 1.0)))
    edges = np.linspace(0.0, 90.0, n_bins + 1)
    centers = 0.5 * (edges[:-1] + edges[1:])
    j_mean = np.zeros(n_bins)
    for b in range(n_bins):
        mask = (theta_deg >= edges[b]) & (theta_deg < edges[b + 1])
        if np.any(mask):
            j_mean[b] = float(np.average(jz[mask], weights=masses[mask]))
    return centers, j_mean


def cone_vs_equator_angular_momentum(
    positions: np.ndarray,
    velocities: np.ndarray,
    masses: np.ndarray,
    cone_deg: float = 15.0,
) -> tuple[float, float]:
    """Total |L_z| in the polar cones versus the equatorial band.

    Figure 8's caption: "the angular momentum in the 15 degree cone
    along the poles is 2 orders of magnitude less than that in the
    equator."  Returns ``(L_cone, L_equator)`` where the equatorial
    band spans the same angular width about the equator.
    """
    if not 0 < cone_deg < 45:
        raise ValueError("cone_deg must be in (0, 45)")
    positions = np.asarray(positions, dtype=np.float64)
    velocities = np.asarray(velocities, dtype=np.float64)
    masses = np.asarray(masses, dtype=np.float64)
    r = np.maximum(np.linalg.norm(positions, axis=1), 1e-300)
    theta = np.degrees(np.arccos(np.clip(np.abs(positions[:, 2]) / r, 0.0, 1.0)))
    lz = masses * (positions[:, 0] * velocities[:, 1] - positions[:, 1] * velocities[:, 0])
    cone = theta < cone_deg
    equator = theta > 90.0 - cone_deg
    return float(np.abs(lz[cone]).sum()), float(np.abs(lz[equator]).sum())


@dataclass(frozen=True)
class CollapseConfig:
    """Knobs of the collapse driver."""

    n_target_neighbors: int = 32
    theta_mac: float = 0.7
    eps: float = 0.02
    cfl: float = 0.3
    pressure_deficit: float = 0.55  # initial cold-pressure reduction triggering collapse
    eos: HybridCollapseEOS = field(default_factory=lambda: HybridCollapseEOS(k1=0.12, rho_nuc=60.0))
    visc: ViscosityParams = field(default_factory=ViscosityParams)
    fld: FldParams = field(default_factory=FldParams)
    with_neutrinos: bool = True

    def __post_init__(self) -> None:
        if not 0 < self.pressure_deficit <= 1:
            raise ValueError("pressure_deficit must be in (0, 1]")
        if self.cfl <= 0 or self.eps < 0:
            raise ValueError("invalid CFL or softening")


@dataclass
class CollapseHistory:
    """Per-step diagnostics of a collapse run."""

    times: list[float] = field(default_factory=list)
    central_density: list[float] = field(default_factory=list)
    neutrino_luminosity: list[float] = field(default_factory=list)
    total_energy: list[float] = field(default_factory=list)

    @property
    def max_density(self) -> float:
        return max(self.central_density) if self.central_density else 0.0

    def bounced(self, rho_nuc: float) -> bool:
        """True when the core reached nuclear density and rebounded."""
        if not self.central_density:
            return False
        dens = np.array(self.central_density)
        peak = int(np.argmax(dens))
        return bool(dens[peak] >= rho_nuc and peak < len(dens) - 1 and dens[-1] < dens[peak])


class CollapseSimulation:
    """The coupled gravity + SPH + EOS + FLD driver."""

    def __init__(
        self,
        positions: np.ndarray,
        velocities: np.ndarray,
        masses: np.ndarray,
        u_internal: np.ndarray,
        config: CollapseConfig | None = None,
    ):
        self.config = config or CollapseConfig()
        self.positions = np.ascontiguousarray(positions, dtype=np.float64)
        self.velocities = np.ascontiguousarray(velocities, dtype=np.float64)
        self.masses = np.ascontiguousarray(masses, dtype=np.float64)
        # Reduce effective pressure support to trigger collapse (stands
        # in for the iron-core instability: electron capture +
        # photodissociation robbing the core of pressure).
        self.u = np.ascontiguousarray(u_internal, dtype=np.float64) * (
            1.0 - self.config.pressure_deficit
        )
        self.e_nu = np.zeros_like(self.u)
        self.time = 0.0
        self.history = CollapseHistory()
        self._h = None

    def _rates(self):
        """One full right-hand-side evaluation at the current state."""
        cfg = self.config
        tree, dens = adapt_smoothing(
            self.positions, self.masses, self._h_caller(), n_target=cfg.n_target_neighbors
        )
        order = tree.order
        inv = np.empty_like(order)
        inv[order] = np.arange(order.size)
        rho_t = dens.rho
        u_t = self.u[order]
        vel_t = self.velocities[order]
        p = cfg.eos.pressure(rho_t, u_t)
        cs = cfg.eos.sound_speed(rho_t, u_t)
        hydro = compute_sph_forces(
            tree, dens.neighbors, rho=rho_t, pressure=p, sound_speed=cs,
            velocities=vel_t, h=dens.h, visc=cfg.visc,
        )
        grav = tree_accelerations(
            self.positions, self.masses, theta=cfg.theta_mac, eps=cfg.eps
        )
        self._h = dens.h[inv]
        return tree, dens, inv, rho_t, hydro, grav

    def _h_caller(self):
        return self._h

    def step(self, dt: float | None = None) -> float:
        """One KDK step; returns the dt actually used."""
        cfg = self.config
        tree, dens, inv, rho_t, hydro, grav = self._rates()
        acc = hydro.dv_dt[inv] + grav.accelerations
        du = hydro.du_dt[inv]
        if dt is None:
            dt = cfg.cfl * float(dens.h.min()) / max(hydro.max_signal_speed, 1e-12)
            a_max = float(np.linalg.norm(acc, axis=1).max())
            if a_max > 0:
                dt = min(dt, cfg.cfl * np.sqrt(float(dens.h.min()) / a_max))
        if dt <= 0:
            raise ValueError("dt must be positive")
        # Kick-drift (single-evaluation KDK variant: drift with the
        # half-kicked velocity, then finish the kick at the new state
        # next step — adequate for the shock-dominated collapse).
        self.velocities += acc * dt
        self.positions += self.velocities * dt
        self.u = np.maximum(self.u + du * dt, 0.0)
        if cfg.with_neutrinos:
            nu = neutrino_step(
                tree, dens.neighbors, rho=rho_t, u=self.u[tree.order],
                e_nu=self.e_nu[tree.order], h=dens.h, dt=dt, params=cfg.fld,
            )
            self.e_nu = nu.e_nu[inv]
            self.u = np.maximum(self.u + nu.du_dt_gas[inv] * dt, 0.0)
            lum = nu.luminosity
        else:
            lum = 0.0
        self.time += dt
        ke = 0.5 * float(np.sum(self.masses * np.einsum("ij,ij->i", self.velocities, self.velocities)))
        pe = grav.potential_energy(self.masses)
        te = ke + pe + float(np.sum(self.masses * self.u))
        self.history.times.append(self.time)
        self.history.central_density.append(float(rho_t.max()))
        self.history.neutrino_luminosity.append(lum)
        self.history.total_energy.append(te)
        return dt

    def run(self, n_steps: int) -> CollapseHistory:
        if n_steps < 0:
            raise ValueError("n_steps must be non-negative")
        for _ in range(n_steps):
            self.step()
        return self.history
